#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "partition/coarsen.h"
#include "partition/fm.h"
#include "partition/hypergraph.h"
#include "partition/partitioner.h"
#include "util/rng.h"

namespace p3d::partition {
namespace {

/// Two cliques of `k` vertices each, joined by `bridges` weak nets. The
/// optimal bisection cuts exactly the bridges.
Hypergraph TwoCliques(int k, int bridges) {
  Hypergraph hg;
  for (int i = 0; i < 2 * k; ++i) hg.AddVertex(1.0);
  auto add2 = [&](std::int32_t a, std::int32_t b) {
    const std::int32_t v[2] = {a, b};
    hg.AddNet(1.0, v);
  };
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      add2(i, j);
      add2(k + i, k + j);
    }
  }
  for (int i = 0; i < bridges; ++i) add2(i % k, k + (i % k));
  hg.Finalize();
  return hg;
}

TEST(Hypergraph, BasicConstruction) {
  Hypergraph hg;
  hg.AddVertex(2.0);
  hg.AddVertex(3.0);
  hg.AddVertex(1.0, FixedSide::kPart1);
  const std::int32_t pins[3] = {0, 1, 2};
  hg.AddNet(1.5, pins);
  const std::int32_t pins2[2] = {0, 0};  // duplicate pin collapses
  hg.AddNet(1.0, pins2);
  hg.Finalize();

  EXPECT_EQ(hg.NumVerts(), 3);
  EXPECT_EQ(hg.NumNets(), 2);
  EXPECT_EQ(hg.NetVerts(0).size(), 3u);
  EXPECT_EQ(hg.NetVerts(1).size(), 1u);  // deduplicated
  EXPECT_EQ(hg.Fixed(2), FixedSide::kPart1);
  EXPECT_EQ(hg.VertNets(0).size(), 2u);
  EXPECT_EQ(hg.VertNets(1).size(), 1u);
}

TEST(Hypergraph, QuantizationPreservesRatios) {
  Hypergraph hg;
  hg.AddVertex(1.0);
  hg.AddVertex(1.0);
  const std::int32_t pins[2] = {0, 1};
  hg.AddNet(1.0, pins);
  hg.AddNet(2.0, pins);
  hg.AddNet(0.5, pins);
  hg.Finalize();
  // q(2.0)/q(1.0) ~ 2, q(0.5)/q(1.0) ~ 0.5 within rounding.
  EXPECT_NEAR(static_cast<double>(hg.NetWeightQ(1)) / hg.NetWeightQ(0), 2.0,
              0.01);
  EXPECT_NEAR(static_cast<double>(hg.NetWeightQ(2)) / hg.NetWeightQ(0), 0.5,
              0.01);
}

TEST(Hypergraph, TinyWeightsDoNotSaturateLargeOnes) {
  Hypergraph hg;
  hg.AddVertex(1.0);
  hg.AddVertex(1.0);
  const std::int32_t pins[2] = {0, 1};
  hg.AddNet(1.0, pins);
  hg.AddNet(1e-9, pins);  // e.g. a feeble TRR net
  hg.Finalize();
  EXPECT_GT(hg.NetWeightQ(0), 1000);  // regular net keeps resolution
  EXPECT_EQ(hg.NetWeightQ(1), 0);     // below resolution: no influence
}

TEST(Hypergraph, ZeroWeightVerticesIgnoredInBalance) {
  Hypergraph hg;
  hg.AddVertex(1.0);
  hg.AddVertex(0.0, FixedSide::kPart0);  // terminal
  hg.Finalize();
  EXPECT_EQ(hg.VertWeightQ(1), 0);
  EXPECT_GT(hg.TotalVertWeightQ(), 0);
}

TEST(Hypergraph, CutCost) {
  Hypergraph hg = TwoCliques(4, 2);
  std::vector<std::int8_t> side(8, 0);
  for (int i = 4; i < 8; ++i) side[static_cast<std::size_t>(i)] = 1;
  EXPECT_DOUBLE_EQ(hg.CutCost(side), 2.0);  // only the bridges
  std::vector<std::int8_t> all_same(8, 0);
  EXPECT_DOUBLE_EQ(hg.CutCost(all_same), 0.0);
}

TEST(Fm, ImprovesBadPartition) {
  Hypergraph hg = TwoCliques(8, 1);
  // Interleaved start: awful cut.
  std::vector<std::int8_t> side(16);
  for (int i = 0; i < 16; ++i) side[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(i % 2);
  const double bad = hg.CutCost(side);
  FmOptions opt;
  opt.min_part0_weight_q = hg.TotalVertWeightQ() * 4 / 10;
  opt.max_part0_weight_q = hg.TotalVertWeightQ() * 6 / 10;
  util::Rng rng(1);
  const FmStats stats = RefineFm(hg, &side, opt, rng);
  EXPECT_LT(hg.CutCost(side), bad);
  EXPECT_TRUE(stats.feasible);
  EXPECT_DOUBLE_EQ(hg.CutCost(side), 1.0);  // finds the optimal single-bridge cut
}

TEST(Fm, RespectsFixedVertices) {
  Hypergraph hg;
  for (int i = 0; i < 4; ++i) {
    hg.AddVertex(1.0, i == 0 ? FixedSide::kPart0
                             : (i == 3 ? FixedSide::kPart1 : FixedSide::kFree));
  }
  const std::int32_t p01[2] = {0, 1};
  const std::int32_t p23[2] = {2, 3};
  hg.AddNet(1.0, p01);
  hg.AddNet(1.0, p23);
  hg.Finalize();
  std::vector<std::int8_t> side = {0, 1, 0, 1};
  FmOptions opt;
  opt.min_part0_weight_q = 0;
  opt.max_part0_weight_q = hg.TotalVertWeightQ();
  util::Rng rng(2);
  RefineFm(hg, &side, opt, rng);
  EXPECT_EQ(side[0], 0);  // fixed stayed
  EXPECT_EQ(side[3], 1);
  EXPECT_EQ(side[1], 0);  // free vertices joined their anchors
  EXPECT_EQ(side[2], 1);
}

TEST(Fm, RepairsInfeasibleBalance) {
  Hypergraph hg;
  for (int i = 0; i < 10; ++i) hg.AddVertex(1.0);
  const std::int32_t pins[2] = {0, 1};
  hg.AddNet(1.0, pins);
  hg.Finalize();
  std::vector<std::int8_t> side(10, 0);  // everything on side 0: infeasible
  FmOptions opt;
  opt.min_part0_weight_q = hg.TotalVertWeightQ() * 4 / 10;
  opt.max_part0_weight_q = hg.TotalVertWeightQ() * 6 / 10;
  util::Rng rng(3);
  const FmStats stats = RefineFm(hg, &side, opt, rng);
  EXPECT_TRUE(stats.feasible);
}

TEST(Coarsen, PreservesTotalWeightAndMapsAllVertices) {
  Hypergraph hg = TwoCliques(16, 2);
  util::Rng rng(4);
  const CoarseLevel level = CoarsenOnce(hg, hg.TotalVertWeightQ(), rng);
  EXPECT_LT(level.hg.NumVerts(), hg.NumVerts());
  EXPECT_GE(level.hg.NumVerts(), hg.NumVerts() / 2);
  double fine_w = 0.0, coarse_w = 0.0;
  for (std::int32_t v = 0; v < hg.NumVerts(); ++v) {
    fine_w += hg.VertWeight(v);
    ASSERT_GE(level.fine_to_coarse[static_cast<std::size_t>(v)], 0);
    ASSERT_LT(level.fine_to_coarse[static_cast<std::size_t>(v)],
              level.hg.NumVerts());
  }
  for (std::int32_t v = 0; v < level.hg.NumVerts(); ++v) {
    coarse_w += level.hg.VertWeight(v);
  }
  EXPECT_NEAR(fine_w, coarse_w, 1e-9);
}

TEST(Coarsen, FixedVerticesStaySingletons) {
  Hypergraph hg;
  hg.AddVertex(1.0, FixedSide::kPart0);
  hg.AddVertex(1.0);
  hg.AddVertex(1.0);
  const std::int32_t pins[3] = {0, 1, 2};
  hg.AddNet(1.0, pins);
  hg.Finalize();
  util::Rng rng(5);
  const CoarseLevel level = CoarsenOnce(hg, 1000, rng);
  const std::int32_t c0 = level.fine_to_coarse[0];
  EXPECT_EQ(level.hg.Fixed(c0), FixedSide::kPart0);
  // No free vertex merged into the fixed one.
  EXPECT_NE(level.fine_to_coarse[1], c0);
  EXPECT_NE(level.fine_to_coarse[2], c0);
}

TEST(Bipartition, FindsObviousCut) {
  Hypergraph hg = TwoCliques(20, 3);
  PartitionOptions opt;
  opt.tolerance = 0.1;
  opt.seed = 7;
  const PartitionResult r = Bipartition(hg, opt);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cut_cost, 3.0);
  // Each clique ends up whole on one side.
  for (int i = 1; i < 20; ++i) {
    EXPECT_EQ(r.side[static_cast<std::size_t>(i)], r.side[0]);
    EXPECT_EQ(r.side[static_cast<std::size_t>(20 + i)], r.side[20]);
  }
  EXPECT_NE(r.side[0], r.side[20]);
}

TEST(Bipartition, Deterministic) {
  Hypergraph hg = TwoCliques(12, 2);
  PartitionOptions opt;
  opt.seed = 11;
  const PartitionResult a = Bipartition(hg, opt);
  const PartitionResult b = Bipartition(hg, opt);
  EXPECT_EQ(a.side, b.side);
  EXPECT_DOUBLE_EQ(a.cut_cost, b.cut_cost);
}

TEST(Bipartition, HonorsTargetFraction) {
  // 30 unit vertices, no nets: any split works; check the 1/3 target.
  Hypergraph hg;
  for (int i = 0; i < 30; ++i) hg.AddVertex(1.0);
  hg.Finalize();
  PartitionOptions opt;
  opt.target_fraction = 1.0 / 3.0;
  opt.tolerance = 0.02;
  opt.seed = 13;
  const PartitionResult r = Bipartition(hg, opt);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.part0_fraction, 1.0 / 3.0, 0.05);
}

TEST(Bipartition, FixedSeedsRespectedInResult) {
  Hypergraph hg = TwoCliques(6, 1);
  // Re-build with vertex 0 fixed to part 1 (against its clique).
  Hypergraph hg2;
  for (int i = 0; i < 12; ++i) {
    hg2.AddVertex(1.0, i == 0 ? FixedSide::kPart1 : FixedSide::kFree);
  }
  for (std::int32_t n = 0; n < hg.NumNets(); ++n) {
    std::vector<std::int32_t> verts(hg.NetVerts(n).begin(),
                                    hg.NetVerts(n).end());
    hg2.AddNet(hg.NetWeight(n), verts);
  }
  hg2.Finalize();
  const PartitionResult r = Bipartition(hg2, {.tolerance = 0.2, .seed = 17});
  EXPECT_EQ(r.side[0], 1);
}

class BipartitionQuality : public ::testing::TestWithParam<int> {};

TEST_P(BipartitionQuality, BeatsRandomSplit) {
  const int n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n) * 31);
  Hypergraph hg;
  for (int i = 0; i < n; ++i) hg.AddVertex(1.0 + rng.NextDouble());
  // Local-structure nets: each connects 2-4 nearby vertices.
  for (int i = 0; i < 2 * n; ++i) {
    const int deg = 2 + static_cast<int>(rng.NextBounded(3));
    const int base = static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(n)));
    std::vector<std::int32_t> verts;
    for (int d = 0; d < deg; ++d) {
      verts.push_back((base + static_cast<int>(rng.NextBounded(8))) % n);
    }
    hg.AddNet(1.0, verts);
  }
  hg.Finalize();

  const PartitionResult r = Bipartition(hg, {.tolerance = 0.1, .seed = 19});
  EXPECT_TRUE(r.feasible);

  // Random balanced split for comparison.
  std::vector<std::int8_t> random_side(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    random_side[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(i % 2);
  }
  EXPECT_LT(r.cut_cost, 0.7 * hg.CutCost(random_side));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BipartitionQuality,
                         ::testing::Values(64, 256, 1024, 4096));

// Property: starting from a feasible partition, FM never increases the cut
// and never leaves the balance window.
class FmNeverWorsens : public ::testing::TestWithParam<int> {};

TEST_P(FmNeverWorsens, CutMonotoneFromFeasibleStart) {
  const int n = 300;
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  Hypergraph hg;
  for (int i = 0; i < n; ++i) hg.AddVertex(1.0 + rng.NextDouble());
  for (int i = 0; i < 3 * n / 2; ++i) {
    const int base = static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(n)));
    std::vector<std::int32_t> verts = {base};
    const int deg = 2 + static_cast<int>(rng.NextBounded(4));
    for (int d = 1; d < deg; ++d) {
      verts.push_back(static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(n))));
    }
    hg.AddNet(0.2 + rng.NextDouble(), verts);
  }
  hg.Finalize();

  // Feasible alternating start.
  std::vector<std::int8_t> side(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) side[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(i % 2);
  const std::int64_t w0 = hg.PartWeightQ(side, 0);
  FmOptions opt;
  opt.min_part0_weight_q = std::min(w0, hg.TotalVertWeightQ() * 45 / 100);
  opt.max_part0_weight_q = std::max(w0, hg.TotalVertWeightQ() * 55 / 100);
  const std::int64_t before = hg.CutCostQ(side);
  util::Rng fm_rng(static_cast<std::uint64_t>(GetParam()));
  const FmStats stats = RefineFm(hg, &side, opt, fm_rng);
  EXPECT_LE(hg.CutCostQ(side), before);
  EXPECT_EQ(stats.final_cut_q, hg.CutCostQ(side));  // reported = actual
  EXPECT_TRUE(stats.feasible);
  const std::int64_t w0_after = hg.PartWeightQ(side, 0);
  EXPECT_GE(w0_after, opt.min_part0_weight_q);
  EXPECT_LE(w0_after, opt.max_part0_weight_q);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmNeverWorsens, ::testing::Values(1, 2, 3, 4));

// Regression: multi-pass FM once corrupted its balance bookkeeping during
// rollback (sign error), producing wildly infeasible partitions. Tight
// tolerances over many random graphs keep that path exercised.
class BipartitionTightBalance : public ::testing::TestWithParam<int> {};

TEST_P(BipartitionTightBalance, StaysWithinTightBounds) {
  const int n = 500;
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101);
  Hypergraph hg;
  for (int i = 0; i < n; ++i) hg.AddVertex(1.0 + 3.0 * rng.NextDouble());
  for (int i = 0; i < 2 * n; ++i) {
    const int base = static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(n)));
    std::vector<std::int32_t> verts = {base};
    const int deg = 2 + static_cast<int>(rng.NextBounded(3));
    for (int d = 1; d < deg; ++d) {
      verts.push_back((base + 1 + static_cast<int>(rng.NextBounded(16))) % n);
    }
    hg.AddNet(0.5 + rng.NextDouble(), verts);
  }
  hg.Finalize();
  PartitionOptions opt;
  opt.tolerance = 0.012;  // the placer's tight z-cut tolerance
  opt.fm_passes = 6;
  opt.seed = static_cast<std::uint64_t>(GetParam());
  const PartitionResult r = Bipartition(hg, opt);
  EXPECT_TRUE(r.feasible) << "fraction " << r.part0_fraction;
  EXPECT_NEAR(r.part0_fraction, 0.5, 0.015);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BipartitionTightBalance,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Bipartition, MoreStartsNeverHurt) {
  util::Rng rng(404);
  Hypergraph hg;
  const int n = 400;
  for (int i = 0; i < n; ++i) hg.AddVertex(1.0);
  for (int i = 0; i < 2 * n; ++i) {
    const int base = static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(n)));
    std::vector<std::int32_t> verts = {base,
        (base + 1 + static_cast<int>(rng.NextBounded(12))) % n,
        (base + 1 + static_cast<int>(rng.NextBounded(24))) % n};
    hg.AddNet(1.0, verts);
  }
  hg.Finalize();
  PartitionOptions one;
  one.num_starts = 1;
  one.seed = 5;
  PartitionOptions four = one;
  four.num_starts = 4;
  const double cut1 = Bipartition(hg, one).cut_cost;
  const double cut4 = Bipartition(hg, four).cut_cost;
  // Starts use independent RNG forks, so best-of-4 is not a strict superset
  // of the single start; assert no meaningful regression.
  EXPECT_LE(cut4, cut1 * 1.15);
}

TEST(Bipartition, EmptyAndTinyGraphs) {
  Hypergraph empty;
  empty.Finalize();
  const PartitionResult r0 = Bipartition(empty, {});
  EXPECT_TRUE(r0.side.empty());

  Hypergraph one;
  one.AddVertex(1.0);
  one.Finalize();
  const PartitionResult r1 = Bipartition(one, {.tolerance = 0.5});
  EXPECT_EQ(r1.side.size(), 1u);
}

}  // namespace
}  // namespace p3d::partition
