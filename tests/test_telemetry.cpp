// Live-telemetry tests (obs v2): the TelemetryServer endpoints over a real
// JobEngine, phase heartbeats and their monotonicity under concurrent jobs,
// the stall watchdog (forced stall -> flag + black-box dump + 503 + batch
// report), and the acceptance pin that full telemetry never perturbs
// placement bytes.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/synthetic.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/ring.h"
#include "serve/batch.h"
#include "serve/job_engine.h"
#include "serve/telemetry.h"
#include "util/log.h"
#include "util/timer.h"

namespace p3d::serve {
namespace {

netlist::Netlist Circuit(int cells, std::uint64_t seed = 51) {
  io::SyntheticSpec spec;
  spec.name = "telemetry";
  spec.num_cells = cells;
  spec.total_area_m2 = cells * 4.9e-12;
  spec.seed = seed;
  return io::Generate(spec);
}

JobSpec SpecFor(const netlist::Netlist& nl, const std::string& name) {
  JobSpec spec;
  spec.name = name;
  spec.netlist = &nl;
  spec.params.num_layers = 2;
  spec.params.alpha_ilv = 1e-5;
  spec.options.with_fea = false;
  return spec;
}

/// Minimal HTTP GET against 127.0.0.1:<port>; returns the raw response
/// (status line + headers + body), or "" on connect failure.
std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

/// Parks the calling worker inside the placer at the first phase boundary
/// until Unblock(), so a test can force a watchdog stall.
class PhaseBlocker : public place::PhaseObserver {
 public:
  void OnPhase(const char* /*phase*/, int /*round*/,
               const place::ObjectiveEvaluator& /*eval*/,
               const place::GlobalPlaceStats* /*stats*/) override {
    std::unique_lock<std::mutex> lock(mutex_);
    if (fired_) return;  // block only at the first boundary
    fired_ = true;
    blocked_ = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return released_; });
    blocked_ = false;
  }

  void WaitUntilBlocked() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return blocked_; });
  }

  void Unblock() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool fired_ = false;
  bool blocked_ = false;
  bool released_ = false;
};

TEST(Telemetry, EndpointsServeMetricsJobsAndHealth) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = Circuit(300);
  JobEngine engine;
  std::vector<JobHandle> handles;
  for (const char* name : {"a", "b"}) {
    auto handle = engine.Submit(SpecFor(nl, name));
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  engine.WaitAll();

  obs::MetricsRegistry metrics;
  metrics.Add("cg/solves", 5);
  for (int i = 1; i <= 8; ++i) metrics.Observe("legalize/window_cells", i);

  TelemetryServer server;
  TelemetryOptions options;
  options.port = 0;  // ephemeral
  options.metrics = &metrics;
  options.engine = &engine;
  ASSERT_TRUE(server.Start(options).ok());
  ASSERT_GT(server.port(), 0);

  const std::string metrics_rsp = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics_rsp.find("HTTP/1.1 200"), std::string::npos);
  const std::string body = BodyOf(metrics_rsp);
  EXPECT_NE(body.find("placer3d_cg_solves 5"), std::string::npos);
  EXPECT_NE(body.find("placer3d_legalize_window_cells{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(body.find("placer3d_jobs_done 2"), std::string::npos);

  const std::string jobs_rsp = HttpGet(server.port(), "/jobs");
  EXPECT_NE(jobs_rsp.find("HTTP/1.1 200"), std::string::npos);
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(BodyOf(jobs_rsp), &doc, &error)) << error;
  EXPECT_EQ(doc.Find("schema")->AsString(), kJobsSchema);
  const auto& jobs = doc.Find("jobs")->AsArray();
  ASSERT_EQ(jobs.size(), 2u);
  for (const obs::JsonValue& job : jobs) {
    EXPECT_EQ(job.Find("state")->AsString(), "done");
    EXPECT_GT(job.Find("heartbeats")->AsNumber(), 0.0);
    EXPECT_FALSE(job.Find("stalled")->AsBool());
  }

  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(BodyOf(health), "ok\n");

  EXPECT_NE(HttpGet(server.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  // Stop is idempotent and Start works again after Stop.
  server.Stop();
  ASSERT_TRUE(server.Start(options).ok());
  server.Stop();
}

TEST(Telemetry, HeartbeatsAreMonotonicUnderConcurrentJobs) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = Circuit(400);
  JobEngineOptions options;
  options.num_workers = 2;
  JobEngine engine(options);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 4; ++i) {
    auto handle = engine.Submit(SpecFor(nl, "job" + std::to_string(i)));
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }

  // Poll the live snapshot while the jobs run: per-job heartbeat counts
  // must never decrease, and a beat timestamp must never be in the future.
  std::map<std::uint64_t, long long> last;
  bool done = false;
  while (!done) {
    done = true;
    for (const JobEngine::JobView& v : engine.SnapshotJobs()) {
      auto [it, inserted] = last.try_emplace(v.id, v.heartbeats);
      if (!inserted) {
        EXPECT_GE(v.heartbeats, it->second) << "job " << v.name;
        it->second = v.heartbeats;
      }
      EXPECT_GE(v.since_beat_s, 0.0);
      if (v.state != JobState::kDone) done = false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  engine.WaitAll();

  for (const JobHandle handle : handles) {
    const JobResult* result = engine.Wait(handle);
    ASSERT_NE(result, nullptr);
    ASSERT_TRUE(result->status.ok()) << result->status.ToString();
    EXPECT_FALSE(result->stalled);
  }
  // Every job beat at least once per flow phase (global/coarse/detailed/
  // final at minimum).
  for (const JobEngine::JobView& v : engine.SnapshotJobs()) {
    EXPECT_GE(v.heartbeats, 4) << "job " << v.name;
    EXPECT_EQ(v.phase, "final");
  }
}

TEST(Telemetry, WatchdogFlagsStalledJobAndDumpsBlackBox) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = Circuit(300);

  const std::string blackbox = testing::TempDir() + "/stall_blackbox.json";
  std::remove(blackbox.c_str());
  obs::RingRecorder ring;
  obs::InstallRingRecorder(&ring);
  ASSERT_TRUE(obs::SetBlackBoxPath(blackbox));

  JobEngineOptions options;
  options.stall_timeout_s = 0.15;
  options.watchdog_poll_s = 0.03;
  JobEngine engine(options);

  TelemetryServer server;
  TelemetryOptions topts;
  topts.engine = &engine;
  ASSERT_TRUE(server.Start(topts).ok());

  PhaseBlocker blocker;
  JobSpec spec = SpecFor(nl, "stall_me");
  spec.observers.push_back(&blocker);
  auto handle = engine.Submit(std::move(spec));
  ASSERT_TRUE(handle.ok());

  // The blocker parks the worker inside the first phase boundary, after its
  // first heartbeat — the watchdog must flag the job within ~0.2s.
  blocker.WaitUntilBlocked();
  util::Timer timer;
  bool flagged = false;
  while (!flagged && timer.Seconds() < 10.0) {
    for (const JobEngine::JobView& v : engine.SnapshotJobs()) {
      flagged |= v.stalled;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(flagged) << "watchdog never flagged the blocked job";

  // Stalled job surfaces as 503 on /healthz, naming the job.
  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(health.find("stall_me"), std::string::npos);

  blocker.Unblock();
  engine.WaitAll();
  server.Stop();

  const JobResult* result = engine.Wait(*handle);
  ASSERT_NE(result, nullptr);
  ASSERT_TRUE(result->status.ok()) << result->status.ToString();
  EXPECT_TRUE(result->stalled);  // sticky even though the job recovered

  const JobEngine::Stats stats = engine.GetStats();
  EXPECT_GE(stats.stalled, 1);

  // The stall triggered a black-box dump, and it is a loadable Chrome trace.
  std::ifstream in(blackbox);
  std::ostringstream text;
  text << in.rdbuf();
  obs::InstallRingRecorder(nullptr);
  obs::SetBlackBoxPath("");
  ASSERT_FALSE(text.str().empty()) << "no black-box dump at " << blackbox;
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(text.str(), &doc, &error)) << error;
  EXPECT_TRUE(obs::ValidateChromeTrace(doc, &error)) << error;
  EXPECT_NE(text.str().find("watchdog_stall"), std::string::npos);

  // The batch report carries the stall, per job and in the engine block.
  const obs::JsonValue report = BuildBatchReport(engine, {*handle});
  ASSERT_TRUE(ValidateBatchReport(report, &error)) << error;
  EXPECT_GE(report.Find("engine")->Find("stalled")->AsNumber(), 1.0);
  EXPECT_TRUE(report.Find("jobs")->AsArray()[0].Find("stalled")->AsBool());
}

TEST(Telemetry, PlacementBytesUnchangedByFullTelemetry) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = Circuit(300);

  // Plain run: no telemetry at all.
  JobEngine plain;
  auto plain_handle = plain.Submit(SpecFor(nl, "job"));
  ASSERT_TRUE(plain_handle.ok());
  const JobResult* plain_result = plain.Wait(*plain_handle);
  ASSERT_TRUE(plain_result->status.ok());

  // Instrumented run: ring recorder installed, watchdog armed, telemetry
  // server answering requests mid-run.
  obs::RingRecorder ring;
  obs::InstallRingRecorder(&ring);
  JobEngineOptions options;
  options.stall_timeout_s = 30.0;  // armed but never firing
  JobEngine live(options);
  TelemetryServer server;
  TelemetryOptions topts;
  topts.engine = &live;
  ASSERT_TRUE(server.Start(topts).ok());
  auto live_handle = live.Submit(SpecFor(nl, "job"));
  ASSERT_TRUE(live_handle.ok());
  HttpGet(server.port(), "/jobs");
  HttpGet(server.port(), "/metrics");
  const JobResult* live_result = live.Wait(*live_handle);
  ASSERT_TRUE(live_result->status.ok());
  server.Stop();
  obs::InstallRingRecorder(nullptr);

  EXPECT_EQ(plain_result->placement.placement.x,
            live_result->placement.placement.x);
  EXPECT_EQ(plain_result->placement.placement.y,
            live_result->placement.placement.y);
  EXPECT_EQ(plain_result->placement.placement.layer,
            live_result->placement.placement.layer);
  EXPECT_EQ(plain_result->metrics_dump, live_result->metrics_dump);
}

}  // namespace
}  // namespace p3d::serve
