#include <gtest/gtest.h>

#include <cmath>

#include "check/replay.h"
#include "io/synthetic.h"
#include "place/legalize.h"
#include "util/rng.h"

namespace p3d::place {
namespace {

struct Fixture {
  netlist::Netlist nl;
  Chip chip;
  PlacerParams params;

  explicit Fixture(int cells = 500, int layers = 4, std::uint64_t seed = 41) {
    io::SyntheticSpec spec;
    spec.name = "leg";
    spec.num_cells = cells;
    spec.total_area_m2 = cells * 4.9e-12;
    spec.seed = seed;
    nl = io::Generate(spec);
    params.num_layers = layers;
    params.alpha_ilv = 1e-5;
    params.SyncStack();
    chip = *Chip::Build(nl, layers, params.whitespace, params.inter_row_space);
  }

  Placement RandomSpread(std::uint64_t seed) const {
    util::Rng rng(seed);
    Placement p;
    p.Resize(static_cast<std::size_t>(nl.NumCells()));
    for (std::size_t i = 0; i < p.size(); ++i) {
      p.x[i] = rng.NextDouble(0.0, chip.width());
      p.y[i] = rng.NextDouble(0.0, chip.height());
      p.layer[i] = rng.NextInt(0, chip.num_layers() - 1);
    }
    return p;
  }
};

void ExpectFullyLegal(const Fixture& f, const Placement& p) {
  // 1. No overlaps.
  EXPECT_EQ(DetailedLegalizer::CountOverlaps(f.nl, p), 0);
  // 2. Every movable cell centred on a row, fully inside the chip.
  for (std::int32_t c = 0; c < f.nl.NumCells(); ++c) {
    if (f.nl.cell(c).fixed) continue;
    const std::size_t i = static_cast<std::size_t>(c);
    const double half_w = f.nl.cell(c).width / 2.0;
    EXPECT_GE(p.x[i] - half_w, -1e-12);
    EXPECT_LE(p.x[i] + half_w, f.chip.width() + 1e-12);
    EXPECT_GE(p.layer[i], 0);
    EXPECT_LT(p.layer[i], f.chip.num_layers());
    const int row = f.chip.NearestRow(p.y[i]);
    EXPECT_NEAR(p.y[i], f.chip.RowCenterY(row), 1e-12) << "cell " << c;
  }
}

TEST(Legalize, FromRandomSpread) {
  Fixture f;
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  eval.SetPlacement(f.RandomSpread(1));
  DetailedLegalizer legalizer(eval);
  const LegalizeStats stats = legalizer.Run();
  EXPECT_TRUE(stats.success);
  EXPECT_EQ(stats.placed, f.nl.NumMovableCells());
  ExpectFullyLegal(f, eval.placement());
}

TEST(Legalize, FromPointPileUpUsesSqueezes) {
  Fixture f(400);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  Placement p;
  p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = f.chip.width() / 2;
    p.y[i] = f.chip.height() / 2;
    p.layer[i] = 1;
  }
  eval.SetPlacement(p);
  DetailedLegalizer legalizer(eval);
  const LegalizeStats stats = legalizer.Run();
  EXPECT_TRUE(stats.success);
  ExpectFullyLegal(f, eval.placement());
}

TEST(Legalize, SingleLayer) {
  Fixture f(300, 1);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  eval.SetPlacement(f.RandomSpread(2));
  DetailedLegalizer legalizer(eval);
  EXPECT_TRUE(legalizer.Run().success);
  ExpectFullyLegal(f, eval.placement());
  for (std::size_t i = 0; i < eval.placement().size(); ++i) {
    EXPECT_EQ(eval.placement().layer[i], 0);
  }
}

TEST(Legalize, ObjectiveDegradationBounded) {
  Fixture f(600);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  eval.SetPlacement(f.RandomSpread(3));
  const double before = eval.Total();
  DetailedLegalizer legalizer(eval);
  ASSERT_TRUE(legalizer.Run().success);
  // Legalizing an already spread placement should not blow up the objective.
  EXPECT_LT(eval.Total(), before * 1.5);
}

TEST(Legalize, IncrementalEvaluatorConsistent) {
  Fixture f(300);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  eval.SetPlacement(f.RandomSpread(4));
  DetailedLegalizer legalizer(eval);
  ASSERT_TRUE(legalizer.Run().success);
  const double cached = eval.Total();
  EXPECT_NEAR(eval.RecomputeFull(), cached, std::abs(cached) * 1e-9);
}

TEST(Legalize, CountOverlapsDetectsCollisions) {
  Fixture f(10);
  Placement p;
  p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  // All cells at the exact same spot on the same row/layer.
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = 5e-6;
    p.y[i] = f.chip.RowCenterY(0);
    p.layer[i] = 0;
  }
  EXPECT_GT(DetailedLegalizer::CountOverlaps(f.nl, p), 0);
  // Spread them: no overlaps.
  double cursor = 0.0;
  for (std::int32_t c = 0; c < f.nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    p.x[i] = cursor + f.nl.cell(c).width / 2.0;
    cursor += f.nl.cell(c).width + 1e-9;
  }
  EXPECT_EQ(DetailedLegalizer::CountOverlaps(f.nl, p), 0);
}

TEST(Legalize, RespectsFixedBlockages) {
  // A fixed block covering the middle of every row on layer 0 must not be
  // overlapped by any movable cell.
  netlist::Netlist nl;
  for (int c = 0; c < 60; ++c) {
    nl.AddCell("c" + std::to_string(c), 2e-6, 1.4e-6);
  }
  const std::int32_t blk = nl.AddCell("block", 3e-6, 200e-6, /*fixed=*/true);
  nl.AddNet("n");
  nl.AddPin(0, netlist::PinDir::kOutput);
  nl.AddPin(1, netlist::PinDir::kInput);
  ASSERT_TRUE(nl.Finalize());
  PlacerParams params;
  params.num_layers = 1;
  params.SyncStack();
  params.num_layers = 1;
  const Chip chip = *Chip::Build(nl, 1, 0.40, 0.25);  // extra whitespace
  ObjectiveEvaluator eval(nl, chip, params);
  Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  util::Rng rng(5);
  for (std::int32_t c = 0; c < 60; ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    p.x[i] = rng.NextDouble(0.0, chip.width());
    p.y[i] = rng.NextDouble(0.0, chip.height());
  }
  const std::size_t bi = static_cast<std::size_t>(blk);
  p.x[bi] = chip.width() / 2;
  p.y[bi] = chip.height() / 2;
  eval.SetPlacement(p);
  DetailedLegalizer legalizer(eval);
  ASSERT_TRUE(legalizer.Run().success);
  const Placement& out = eval.placement();
  const double b_lo = out.x[bi] - 1.5e-6, b_hi = out.x[bi] + 1.5e-6;
  for (std::int32_t c = 0; c < 60; ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    const double lo = out.x[i] - nl.cell(c).width / 2.0;
    const double hi = out.x[i] + nl.cell(c).width / 2.0;
    EXPECT_TRUE(hi <= b_lo + 1e-12 || lo >= b_hi - 1e-12)
        << "cell " << c << " overlaps the blockage";
  }
}

// ----- pad-ring walls: degenerate row segments in PlanSqueeze ---------------
//
// Fixed cells become immovable walls in the legalizer's row model. Walls that
// overlap the row start, abut each other, or nest inside a wider wall all
// produce degenerate (zero- or negative-width) free segments; PlanSqueeze
// must skip those instead of squeezing cells into an interval that sits
// inside a fixed obstruction. Each harness pins the chip to one layer, piles
// every movable cell onto one point so rows fill up and the squeeze path is
// exercised, then checks no movable cell overlaps any wall span.
struct WallFixture {
  netlist::Netlist nl;
  PlacerParams params;
  std::vector<std::int32_t> walls;  // fixed cell ids

  // `wall_widths` in metres; placement positions are set later relative to
  // the built chip width.
  explicit WallFixture(int movable, const std::vector<double>& wall_widths) {
    for (int c = 0; c < movable; ++c) {
      // Heterogeneous widths: uniform cells pack with gaps that are either
      // zero or cell-sized, which never exercises the squeeze path.
      const double width = (1.2 + 0.8 * (c % 4)) * 1e-6;
      nl.AddCell("c" + std::to_string(c), width, 1.4e-6);
    }
    for (std::size_t w = 0; w < wall_widths.size(); ++w) {
      // Tall blocks: every row of the (single) layer is walled.
      walls.push_back(nl.AddCell("wall" + std::to_string(w), wall_widths[w],
                                 400e-6, /*fixed=*/true));
    }
    nl.AddNet("n");
    nl.AddPin(0, netlist::PinDir::kOutput);
    nl.AddPin(1, netlist::PinDir::kInput);
    EXPECT_TRUE(nl.Finalize());
    params.num_layers = 1;
    params.SyncStack();
  }
};

void RunWallCase(WallFixture& f, const Chip& chip,
                 const std::vector<double>& wall_x) {
  ObjectiveEvaluator eval(f.nl, chip, f.params);
  Placement p;
  p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    // Point pile-up at mid-die: rows fill as legalization proceeds, so late
    // cells have no free gap and must go through PlanSqueeze.
    p.x[i] = chip.width() / 2;
    p.y[i] = chip.height() / 2;
    p.layer[i] = 0;
  }
  for (std::size_t w = 0; w < f.walls.size(); ++w) {
    const std::size_t wi = static_cast<std::size_t>(f.walls[w]);
    p.x[wi] = wall_x[w];
    p.y[wi] = chip.height() / 2;
    p.layer[wi] = 0;
  }
  eval.SetPlacement(p);
  DetailedLegalizer legalizer(eval);
  const LegalizeStats stats = legalizer.Run();
  EXPECT_TRUE(stats.success);
  // The point pile-up must actually drive rows through PlanSqueeze — that's
  // the code path whose segment handling these cases pin down.
  EXPECT_GT(stats.squeezes, 0);
  EXPECT_EQ(DetailedLegalizer::CountOverlaps(f.nl, eval.placement()), 0);

  // CountOverlaps skips fixed cells; check movable-vs-wall explicitly.
  const Placement& out = eval.placement();
  for (const std::int32_t wall : f.walls) {
    const std::size_t wi = static_cast<std::size_t>(wall);
    const double w_lo = out.x[wi] - f.nl.cell(wall).width / 2.0;
    const double w_hi = out.x[wi] + f.nl.cell(wall).width / 2.0;
    for (std::int32_t c = 0; c < f.nl.NumCells(); ++c) {
      if (f.nl.cell(c).fixed) continue;
      const std::size_t i = static_cast<std::size_t>(c);
      const double lo = out.x[i] - f.nl.cell(c).width / 2.0;
      const double hi = out.x[i] + f.nl.cell(c).width / 2.0;
      EXPECT_TRUE(hi <= w_lo + 1e-12 || lo >= w_hi - 1e-12)
          << "cell " << c << " [" << lo << ", " << hi << "] overlaps wall "
          << wall << " [" << w_lo << ", " << w_hi << "]";
    }
  }
}

// The die is sized from MOVABLE area only (walls get no capacity of their
// own), so each case budgets ~3e-6 of wall width against 15% whitespace on a
// ~40e-6-wide die: rows end up ~93% full, which both forces the squeeze path
// and stays legalizable.

TEST(Legalize, WallOverlappingRowStart) {
  // A wall clamped to the die edge makes the first free segment degenerate
  // ([0, 0]); the segment builder must drop it.
  WallFixture f(400, {3e-6});
  const Chip chip = *Chip::Build(f.nl, 1, 0.15, 0.25);
  RunWallCase(f, chip, {1e-6});  // span [-0.5e-6, 2.5e-6] clamps at 0
}

TEST(Legalize, AbuttingWallsLeaveNoZeroWidthSegment) {
  // Two walls sharing an edge produce a zero-width segment between them.
  WallFixture f(400, {1.5e-6, 1.5e-6});
  const Chip chip = *Chip::Build(f.nl, 1, 0.15, 0.25);
  const double mid = chip.width() / 3;
  // Spans abut exactly at mid + 0.75e-6.
  RunWallCase(f, chip, {mid, mid + 1.5e-6});
}

TEST(Legalize, NestedWallsNeverSqueezeIntoEncloser) {
  // Walls sorted by lo: a wall nested inside a wider one REGRESSES the
  // running segment start (its hi is below the encloser's hi). Without the
  // monotone seg_lo guard the segment after the nested wall started inside
  // the enclosing wall, and squeezed cells landed on top of it.
  WallFixture f(400, {3e-6, 1e-6});
  const Chip chip = *Chip::Build(f.nl, 1, 0.12, 0.25);
  const double mid = chip.width() / 3;
  // Nested span [mid-1.25e-6, mid-0.25e-6] inside [mid +- 1.5e-6].
  RunWallCase(f, chip, {mid, mid - 0.75e-6});
}

// ----- windowed parallel schedule ------------------------------------------

TEST(Legalize, ThreadCountDoesNotChangePlacementBytes) {
  // The windowed slot-assignment schedule (DESIGN.md §5) screens candidate
  // slots concurrently per row block and replays the chosen candidates
  // serially in ascending window order, so the legalized placement must be
  // byte-identical at any thread count. Small windows force many blocks even
  // on this small die.
  Placement reference;
  LegalizeStats ref_stats;
  for (const int threads : {1, 3, 4}) {
    Fixture f(700);
    f.params.legalize_threads = threads;
    f.params.legalize_window_rows = 4;
    ObjectiveEvaluator eval(f.nl, f.chip, f.params);
    eval.SetPlacement(f.RandomSpread(9));
    DetailedLegalizer legalizer(eval);
    const LegalizeStats stats = legalizer.Run();
    ASSERT_TRUE(stats.success);
    if (threads == 1) {
      reference = eval.placement();
      ref_stats = stats;
    } else {
      EXPECT_EQ(reference.x, eval.placement().x) << "threads=" << threads;
      EXPECT_EQ(reference.y, eval.placement().y) << "threads=" << threads;
      EXPECT_EQ(reference.layer, eval.placement().layer)
          << "threads=" << threads;
      // The schedule (not just the result) must match: same work, same stats.
      EXPECT_EQ(stats.placed, ref_stats.placed);
      EXPECT_EQ(stats.squeezes, ref_stats.squeezes);
      EXPECT_EQ(stats.deferred, ref_stats.deferred);
    }
  }
}

TEST(Legalize, OversizedWindowMatchesSerialSchedule) {
  // legalize_window_rows beyond the row count degenerates to one window —
  // the parallel protocol must reduce to the serial schedule exactly.
  Placement reference;
  for (const int window_rows : {1 << 20, 8}) {
    Fixture f(400);
    f.params.legalize_threads = 2;
    f.params.legalize_window_rows = window_rows;
    ObjectiveEvaluator eval(f.nl, f.chip, f.params);
    eval.SetPlacement(f.RandomSpread(12));
    DetailedLegalizer legalizer(eval);
    ASSERT_TRUE(legalizer.Run().success);
    ExpectFullyLegal(f, eval.placement());
    if (window_rows == 1 << 20) reference = eval.placement();
  }
  // (Different window sizes may legitimately differ; the loop only checks
  // both extremes stay legal. The 1-window case IS the serial schedule.)
  SUCCEED();
}

TEST(Legalize, ParallelRunReplaysUnderParanoidAudit) {
  // Paranoid audit: record every commit of a 4-thread legalization and
  // replay the full operation sequence on a fresh evaluator — every applied
  // delta must match a freshly computed one and the final placement must
  // reproduce bitwise.
  Fixture f(400);
  f.params.legalize_threads = 4;
  f.params.legalize_window_rows = 4;
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  check::MoveLog log;
  eval.AddCommitListener(&log);
  eval.SetPlacement(f.RandomSpread(10));
  DetailedLegalizer legalizer(eval);
  ASSERT_TRUE(legalizer.Run().success);
  ASSERT_TRUE(log.has_start());
  ASSERT_EQ(log.dropped(), 0u);
  const check::ReplayResult result = check::ReplayAndVerify(
      f.nl, f.chip, f.params, log, &eval.placement());
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_GT(result.ops_checked, 0u);
}

class LegalizeSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LegalizeSweep, AlwaysLegal) {
  const auto [cells, layers] = GetParam();
  Fixture f(cells, layers, static_cast<std::uint64_t>(cells + layers));
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  eval.SetPlacement(f.RandomSpread(static_cast<std::uint64_t>(cells)));
  DetailedLegalizer legalizer(eval);
  EXPECT_TRUE(legalizer.Run().success);
  ExpectFullyLegal(f, eval.placement());
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndLayers, LegalizeSweep,
    ::testing::Combine(::testing::Values(100, 400, 1200),
                       ::testing::Values(1, 2, 4, 8)));

}  // namespace
}  // namespace p3d::place
