// Unit tests of the audit subsystem (src/check): each invariant checker
// against hand-built violations, the replay verifier against tampered
// histories (the ISSUE acceptance "injected overlap / stale-delta mutation
// is caught"), resync equivalence, and the auditor over real flows.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "check/audit.h"
#include "check/fuzz.h"
#include "check/invariants.h"
#include "check/replay.h"
#include "io/synthetic.h"
#include "partition/partitioner.h"
#include "place/legalize.h"
#include "place/placer.h"
#include "util/log.h"
#include "util/rng.h"

namespace p3d::check {
namespace {

netlist::Netlist SmallCircuit(std::int32_t cells, std::uint64_t seed,
                              std::int32_t pads = 0) {
  io::SyntheticSpec spec;
  spec.name = "chk";
  spec.num_cells = cells;
  spec.total_area_m2 = cells * 4.9e-12;
  spec.num_pads = pads;
  spec.seed = seed;
  return io::Generate(spec);
}

/// A placed flow result plus everything needed to audit it.
struct PlacedFlow {
  netlist::Netlist nl;
  place::PlacerParams params;
  place::PlacementResult result;
  place::Chip chip;
};

PlacedFlow RunSmallFlow(std::int32_t cells, std::uint64_t seed,
                        double alpha_temp = 0.0) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  PlacedFlow f;
  f.nl = SmallCircuit(cells, seed);
  f.params.num_layers = 3;
  f.params.alpha_temp = alpha_temp;
  f.params.seed = seed * 31 + 7;
  place::Placer3D placer(f.nl, f.params);
  f.result = *placer.Run({.with_fea = false});
  f.chip = placer.chip();
  return f;
}

// ----- legality invariants --------------------------------------------------

TEST(Invariants, BoundsCatchesEscapedCell) {
  PlacedFlow f = RunSmallFlow(80, 3);
  ASSERT_TRUE(f.result.legal);
  std::vector<Violation> out;
  EXPECT_EQ(0, CheckBounds(f.nl, f.chip, f.result.placement, true, &out));

  place::Placement bad = f.result.placement;
  bad.x[5] = 2.0 * f.chip.width();
  EXPECT_EQ(1, CheckBounds(f.nl, f.chip, bad, true, &out));
  ASSERT_EQ(1u, out.size());
  EXPECT_EQ(5, out[0].cell);
  EXPECT_NE(out[0].message.find("outside die"), std::string::npos);
}

TEST(Invariants, LayerRangeChecked) {
  PlacedFlow f = RunSmallFlow(80, 4);
  std::vector<Violation> out;
  EXPECT_EQ(0, CheckLayers(f.nl, f.result.placement, 3, &out));
  place::Placement bad = f.result.placement;
  bad.layer[2] = 7;
  bad.layer[3] = -1;
  EXPECT_EQ(2, CheckLayers(f.nl, bad, 3, &out));
}

TEST(Invariants, FiniteCatchesNan) {
  PlacedFlow f = RunSmallFlow(60, 5);
  std::vector<Violation> out;
  place::Placement bad = f.result.placement;
  bad.y[1] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(1, CheckFinite(f.nl, bad, &out));
  EXPECT_EQ(1, out[0].cell);
}

TEST(Invariants, RowAlignmentDetectsOffRowCell) {
  PlacedFlow f = RunSmallFlow(80, 6);
  ASSERT_TRUE(f.result.legal);
  std::vector<Violation> out;
  EXPECT_EQ(0, CheckRowAlignment(f.nl, f.chip, f.result.placement, &out));
  place::Placement bad = f.result.placement;
  bad.y[0] += 0.3 * f.chip.row_height();
  EXPECT_EQ(1, CheckRowAlignment(f.nl, f.chip, bad, &out));
}

TEST(Invariants, FixedUntouchedDetectsMovedPad) {
  const netlist::Netlist nl = SmallCircuit(60, 7, /*pads=*/8);
  place::Placement base;
  base.Resize(static_cast<std::size_t>(nl.NumCells()));
  io::PlacePadRing(nl, 1e-4, 1e-4, &base);
  place::Placement moved = base;
  std::vector<Violation> out;
  EXPECT_EQ(0, CheckFixedUntouched(nl, base, moved, &out));
  // First pad cell is the first fixed cell.
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    if (nl.cell(c).fixed) {
      moved.x[static_cast<std::size_t>(c)] += 1e-6;
      break;
    }
  }
  EXPECT_EQ(1, CheckFixedUntouched(nl, base, moved, &out));
  EXPECT_NE(out[0].message.find("moved from"), std::string::npos);
}

// ----- overlap sweep-line ---------------------------------------------------

TEST(OverlapSweep, ZeroOnLegalPlacementAndAgreesWithLegalizer) {
  PlacedFlow f = RunSmallFlow(120, 8);
  ASSERT_TRUE(f.result.legal);
  EXPECT_EQ(0, CountOverlapsSweep(f.nl, f.result.placement, nullptr));
  EXPECT_EQ(0, place::DetailedLegalizer::CountOverlaps(f.nl,
                                                       f.result.placement));
}

TEST(OverlapSweep, InjectedOverlapCaughtWithActionableMessage) {
  // Acceptance: a deliberately injected overlap must be caught, naming both
  // cells with coordinates.
  PlacedFlow f = RunSmallFlow(120, 9);
  ASSERT_TRUE(f.result.legal);
  place::Placement bad = f.result.placement;
  // Park cell 1 exactly on top of cell 0: same center, same layer.
  bad.x[1] = bad.x[0];
  bad.y[1] = bad.y[0];
  bad.layer[1] = bad.layer[0];
  Violation first;
  EXPECT_GE(CountOverlapsSweep(f.nl, bad, &first), 1);
  EXPECT_NE(first.message.find("overlap on layer"), std::string::npos);
  EXPECT_NE(first.message.find("cell"), std::string::npos);

  std::vector<Violation> out;
  EXPECT_EQ(1, CheckNoOverlap(f.nl, bad, &out));
}

TEST(OverlapSweep, CountsAllPairsInStack) {
  // Three cells stacked at one spot = 3 overlapping pairs; the sweep must
  // count every pair, not just band-adjacent ones.
  netlist::Netlist nl;
  for (int i = 0; i < 3; ++i) nl.AddCell("c" + std::to_string(i), 2e-6, 1e-6);
  ASSERT_TRUE(nl.Finalize());
  place::Placement p;
  p.Resize(3);
  for (std::size_t i = 0; i < 3; ++i) {
    p.x[i] = 5e-6;
    p.y[i] = 5e-6;
    p.layer[i] = 0;
  }
  EXPECT_EQ(3, CountOverlapsSweep(nl, p, nullptr));
  // A touching (abutted) neighbour does not overlap.
  p.x[2] = 5e-6 + 2e-6;
  EXPECT_EQ(1, CountOverlapsSweep(nl, p, nullptr));
  // Different layer never overlaps.
  p.layer[1] = 1;
  p.x[2] = 5e-6;
  EXPECT_EQ(1, CountOverlapsSweep(nl, p, nullptr));
}

// ----- conservation ---------------------------------------------------------

TEST(Conservation, DetectsPlacementResize) {
  const netlist::Netlist nl = SmallCircuit(50, 10);
  const ConservationSnapshot snap = ConservationSnapshot::Of(nl);
  place::Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  std::vector<Violation> out;
  EXPECT_EQ(0, CheckConservation(nl, snap, p, &out));
  p.x.pop_back();
  EXPECT_GT(CheckConservation(nl, snap, p, &out), 0);
}

TEST(Conservation, SnapshotSensitiveToPinMembership) {
  const netlist::Netlist a = SmallCircuit(50, 11);
  const netlist::Netlist b = SmallCircuit(50, 12);  // different wiring
  EXPECT_NE(ConservationSnapshot::Of(a).pin_checksum,
            ConservationSnapshot::Of(b).pin_checksum);
}

// ----- objective consistency & resync ---------------------------------------

TEST(ObjectiveConsistency, HoldsAfterThousandsOfCommitsAndResyncIsExact) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = SmallCircuit(150, 13);
  place::PlacerParams params;
  params.num_layers = 3;
  params.alpha_temp = 5e-6;  // exercise the thermal term too
  params.SyncStack();
  const place::Chip chip =
      *place::Chip::Build(nl, params.num_layers, params.whitespace,
                         params.inter_row_space);
  place::ObjectiveEvaluator eval(nl, chip, params);
  place::Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  util::Rng rng(99);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = rng.NextDouble(0.0, chip.width());
    p.y[i] = rng.NextDouble(0.0, chip.height());
    p.layer[i] = rng.NextInt(0, params.num_layers - 1);
  }
  eval.SetPlacement(p);
  for (int i = 0; i < 5000; ++i) {
    const auto cell = static_cast<std::int32_t>(
        rng.NextBounded(static_cast<std::uint64_t>(nl.NumCells())));
    if (rng.NextBool()) {
      eval.CommitMove(cell, rng.NextDouble(0.0, chip.width()),
                      rng.NextDouble(0.0, chip.height()),
                      rng.NextInt(0, params.num_layers - 1));
    } else {
      const auto other = static_cast<std::int32_t>(
          rng.NextBounded(static_cast<std::uint64_t>(nl.NumCells())));
      if (other != cell) eval.CommitSwap(cell, other);
    }
  }
  std::vector<Violation> out;
  EXPECT_EQ(0, CheckObjectiveConsistency(eval, ObjectiveTolerance{}, &out))
      << (out.empty() ? "" : out[0].message);

  // ResyncTotals must land bit-identical to a from-scratch recomputation.
  eval.ResyncTotals();
  const double synced = eval.Total();
  const double synced_hpwl = eval.TotalHpwl();
  const long long synced_ilv = eval.TotalIlv();
  const double fresh = eval.RecomputeFull();
  EXPECT_EQ(synced, fresh);
  EXPECT_EQ(synced_hpwl, eval.TotalHpwl());
  EXPECT_EQ(synced_ilv, eval.TotalIlv());
}

// ----- replay ---------------------------------------------------------------

struct ReplayFixture {
  netlist::Netlist nl;
  place::PlacerParams params;
  place::Chip chip;
  std::unique_ptr<place::ObjectiveEvaluator> eval;
  MoveLog log;
  place::Placement final_placement;

  explicit ReplayFixture(std::uint64_t seed, int commits = 400) {
    nl = SmallCircuit(100, seed);
    params.num_layers = 3;
    params.alpha_temp = 5e-6;
    params.SyncStack();
    chip = *place::Chip::Build(nl, params.num_layers, params.whitespace,
                              params.inter_row_space);
    eval = std::make_unique<place::ObjectiveEvaluator>(nl, chip, params);
    eval->AddCommitListener(&log);
    place::Placement p;
    p.Resize(static_cast<std::size_t>(nl.NumCells()));
    util::Rng rng(seed);
    for (std::size_t i = 0; i < p.size(); ++i) {
      p.x[i] = rng.NextDouble(0.0, chip.width());
      p.y[i] = rng.NextDouble(0.0, chip.height());
      p.layer[i] = rng.NextInt(0, params.num_layers - 1);
    }
    eval->SetPlacement(p);  // anchors the log
    for (int i = 0; i < commits; ++i) {
      const auto cell = static_cast<std::int32_t>(
          rng.NextBounded(static_cast<std::uint64_t>(nl.NumCells())));
      const auto other = static_cast<std::int32_t>(
          rng.NextBounded(static_cast<std::uint64_t>(nl.NumCells())));
      if (rng.NextBool() || other == cell) {
        eval->CommitMove(cell, rng.NextDouble(0.0, chip.width()),
                         rng.NextDouble(0.0, chip.height()),
                         rng.NextInt(0, params.num_layers - 1));
      } else {
        eval->CommitSwap(cell, other);
      }
    }
    final_placement = eval->placement();
  }
};

TEST(Replay, FaithfulHistoryVerifies) {
  ReplayFixture f(21);
  const ReplayResult r =
      ReplayAndVerify(f.nl, f.chip, f.params, f.log, &f.final_placement);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_EQ(400u, r.ops_checked);
  EXPECT_LT(r.max_delta_err, 1e-9);
}

TEST(Replay, StaleDeltaMutationCaught) {
  // Acceptance: an injected stale-delta (a recorded incremental delta that
  // disagrees with the true objective change) must be caught.
  ReplayFixture f(22);
  f.log.ops()[200].delta += 1e-3;
  const ReplayResult r =
      ReplayAndVerify(f.nl, f.chip, f.params, f.log, &f.final_placement);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("op 200"), std::string::npos);
  EXPECT_NE(r.message.find("mismatch"), std::string::npos);
}

TEST(Replay, TamperedTargetPositionCaught) {
  ReplayFixture f(23);
  // Find a move op and bend its target: the replayed placement diverges.
  auto& ops = f.log.ops();
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    if (!it->is_swap) {
      it->x += 1e-6;
      break;
    }
  }
  const ReplayResult r =
      ReplayAndVerify(f.nl, f.chip, f.params, f.log, &f.final_placement);
  EXPECT_FALSE(r.ok);
}

// ----- partition balance ----------------------------------------------------

TEST(PartitionBalance, AuditAgreesWithFeasibility) {
  const netlist::Netlist nl = SmallCircuit(200, 14);
  partition::Hypergraph hg;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    hg.AddVertex(nl.cell(c).Area());
  }
  std::vector<std::int32_t> verts;
  for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
    verts.clear();
    for (const auto& pin : nl.NetPins(n)) verts.push_back(pin.cell);
    hg.AddNet(1.0, verts);
  }
  hg.Finalize();
  partition::PartitionOptions opt;
  opt.tolerance = 0.05;
  opt.seed = 3;
  const partition::PartitionResult r = partition::Bipartition(hg, opt);
  const partition::BalanceAudit audit =
      partition::AuditBalance(hg, r.side, opt.target_fraction, opt.tolerance);
  EXPECT_EQ(r.feasible, audit.within);
  EXPECT_NEAR(audit.fraction, r.part0_fraction, 1e-12);

  // A grossly unbalanced assignment must fail the audit.
  std::vector<std::int8_t> all0(static_cast<std::size_t>(hg.NumVerts()), 0);
  EXPECT_FALSE(
      partition::AuditBalance(hg, all0, 0.5, 0.1).within);
}

// ----- the auditor over real flows ------------------------------------------

TEST(PlacementAuditor, CleanFlowPassesPhaseAudit) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = SmallCircuit(120, 15, /*pads=*/10);
  place::PlacerParams params;
  params.num_layers = 3;
  params.alpha_temp = 5e-6;
  params.audit_level = place::AuditLevel::kPhase;
  place::Placer3D placer(nl, params);
  place::Placement initial;
  initial.Resize(static_cast<std::size_t>(nl.NumCells()));
  io::PlacePadRing(nl, placer.chip().width(), placer.chip().height(),
                   &initial);
  PlacementAuditor auditor(nl, params.audit_level);
  auditor.Attach(&placer);
  auditor.SetFixedBaseline(initial);
  const place::PlacementResult r = *placer.Run({.initial = initial, .with_fea = false});
  EXPECT_TRUE(r.legal);
  EXPECT_TRUE(auditor.ok()) << auditor.report().Summary();
  EXPECT_GE(auditor.report().phases_audited, 4);
  EXPECT_EQ(0u, auditor.report().replayed_ops);  // phase mode: no replay
}

TEST(PlacementAuditor, ParanoidFlowReplaysCommits) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = SmallCircuit(100, 16);
  place::PlacerParams params;
  params.num_layers = 3;
  params.audit_level = place::AuditLevel::kParanoid;
  place::Placer3D placer(nl, params);
  PlacementAuditor auditor(nl, params.audit_level);
  auditor.Attach(&placer);
  const place::PlacementResult r = *placer.Run({.with_fea = false});
  EXPECT_TRUE(r.legal);
  EXPECT_TRUE(auditor.ok()) << auditor.report().Summary();
  EXPECT_GT(auditor.report().replayed_ops, 0u);
}

TEST(PlacementAuditor, AuditNowFlagsCorruptedState) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  PlacedFlow f = RunSmallFlow(100, 17);
  ASSERT_TRUE(f.result.legal);
  f.params.SyncStack();
  place::ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  place::Placement bad = f.result.placement;
  bad.x[3] = bad.x[2];  // stack cell 3 on cell 2
  bad.y[3] = bad.y[2];
  bad.layer[3] = bad.layer[2];
  eval.SetPlacement(bad);
  PlacementAuditor auditor(f.nl, place::AuditLevel::kPhase);
  auditor.AuditNow("final", eval);
  ASSERT_FALSE(auditor.ok());
  const Violation& v = auditor.report().violations.front();
  EXPECT_EQ("overlap", v.check);
  EXPECT_EQ("final", v.phase);
}

TEST(PlacementAuditor, SummaryIsActionable) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  PlacedFlow f = RunSmallFlow(80, 18);
  f.params.SyncStack();
  place::ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  place::Placement bad = f.result.placement;
  bad.x[0] = -1.0;
  eval.SetPlacement(bad);
  PlacementAuditor auditor(f.nl, place::AuditLevel::kPhase);
  auditor.AuditNow("detailed", eval);
  ASSERT_FALSE(auditor.ok());
  const std::string summary = auditor.report().Summary();
  EXPECT_NE(summary.find("VIOLATION"), std::string::npos);
  EXPECT_NE(summary.find("cell 0"), std::string::npos);   // which cell
  EXPECT_NE(summary.find("detailed"), std::string::npos); // which phase
}

// ----- fuzz harness plumbing ------------------------------------------------

TEST(Fuzz, CaseDerivationIsDeterministicAndVaried) {
  const FuzzCase a = MakeFuzzCase(42);
  const FuzzCase b = MakeFuzzCase(42);
  EXPECT_EQ(ReproLine(a), ReproLine(b));
  const FuzzCase c = MakeFuzzCase(43);
  EXPECT_NE(ReproLine(a), ReproLine(c));
  EXPECT_EQ(place::AuditLevel::kParanoid, a.params.audit_level);
}

TEST(Fuzz, ReproLineNamesEveryKnob) {
  const std::string line = ReproLine(MakeFuzzCase(7));
  for (const char* key :
       {"seed=", "cells=", "pads=", "layers=", "alpha_ilv=", "alpha_temp=",
        "threads=", "starts=", "repeats=", "resync="}) {
    EXPECT_NE(line.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace p3d::check
