#include <gtest/gtest.h>

#include <cstring>

#include "check/audit.h"
#include "io/synthetic.h"
#include "place/global.h"
#include "place/global_analytic.h"
#include "place/global_backend.h"
#include "place/placer.h"
#include "util/log.h"
#include "util/rng.h"

namespace p3d::place {
namespace {

struct Fixture {
  netlist::Netlist nl;
  Chip chip;
  PlacerParams params;

  Fixture(int cells, int layers, double alpha_ilv, double alpha_temp,
          std::uint64_t seed = 21) {
    io::SyntheticSpec spec;
    spec.name = "gp";
    spec.num_cells = cells;
    spec.total_area_m2 = cells * 4.9e-12;
    spec.seed = seed;
    nl = io::Generate(spec);
    params.num_layers = layers;
    params.alpha_ilv = alpha_ilv;
    params.alpha_temp = alpha_temp;
    params.SyncStack();
    chip = *Chip::Build(nl, layers, params.whitespace, params.inter_row_space);
  }

  Placement Run() {
    ObjectiveEvaluator eval(nl, chip, params);
    GlobalPlacer gp(eval);
    Placement init;
    init.Resize(static_cast<std::size_t>(nl.NumCells()));
    return *gp.Run(init);
  }

  /// Runs whichever backend `params.global_backend` selects via the factory.
  Placement RunBackend() {
    ObjectiveEvaluator eval(nl, chip, params);
    auto backend = MakeGlobalPlacerBackend(eval);
    EXPECT_TRUE(backend.ok()) << backend.status().ToString();
    Placement init;
    init.Resize(static_cast<std::size_t>(nl.NumCells()));
    return *(*backend)->Run(init);
  }
};

TEST(GlobalPlacer, AllCellsInsideChip) {
  Fixture f(600, 4, 1e-5, 0.0);
  const Placement p = f.Run();
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_GE(p.x[i], 0.0);
    EXPECT_LE(p.x[i], f.chip.width());
    EXPECT_GE(p.y[i], 0.0);
    EXPECT_LE(p.y[i], f.chip.height());
    EXPECT_GE(p.layer[i], 0);
    EXPECT_LT(p.layer[i], 4);
  }
}

TEST(GlobalPlacer, BeatsRandomPlacementOnWirelength) {
  Fixture f(800, 4, 1e-5, 0.0);
  const Placement p = f.Run();
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  eval.SetPlacement(p);
  const double placed_hpwl = eval.TotalHpwl();

  util::Rng rng(99);
  Placement random;
  random.Resize(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    random.x[i] = rng.NextDouble(0.0, f.chip.width());
    random.y[i] = rng.NextDouble(0.0, f.chip.height());
    random.layer[i] = rng.NextInt(0, 3);
  }
  eval.SetPlacement(random);
  EXPECT_LT(placed_hpwl, 0.6 * eval.TotalHpwl());
}

TEST(GlobalPlacer, HighIlvCoefficientCutsFewerVias) {
  Fixture cheap(800, 4, 5e-9, 0.0);
  Fixture costly(800, 4, 1e-3, 0.0);
  ObjectiveEvaluator ev_cheap(cheap.nl, cheap.chip, cheap.params);
  ev_cheap.SetPlacement(cheap.Run());
  ObjectiveEvaluator ev_costly(costly.nl, costly.chip, costly.params);
  ev_costly.SetPlacement(costly.Run());
  // The paper's Figure 3 monotonicity, at the two extremes.
  EXPECT_LT(ev_costly.TotalIlv(), ev_cheap.TotalIlv() / 2);
  EXPECT_GT(ev_costly.TotalHpwl(), ev_cheap.TotalHpwl());
}

TEST(GlobalPlacer, SingleLayerNeverUsesVias) {
  Fixture f(400, 1, 1e-5, 0.0);
  const Placement p = f.Run();
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  eval.SetPlacement(p);
  EXPECT_EQ(eval.TotalIlv(), 0);
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_EQ(p.layer[i], 0);
}

TEST(GlobalPlacer, UsesAllLayers) {
  Fixture f(800, 4, 1e-5, 0.0);
  const Placement p = f.Run();
  std::vector<int> count(4, 0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    count[static_cast<std::size_t>(p.layer[i])] += 1;
  }
  for (int l = 0; l < 4; ++l) {
    EXPECT_GT(count[static_cast<std::size_t>(l)], 800 / 8) << "layer " << l;
  }
}

TEST(GlobalPlacer, LayerAreasRoughlyBalanced) {
  Fixture f(1000, 4, 1e-5, 0.0);
  const Placement p = f.Run();
  std::vector<double> area(4, 0.0);
  for (std::int32_t c = 0; c < f.nl.NumCells(); ++c) {
    area[static_cast<std::size_t>(p.layer[static_cast<std::size_t>(c)])] +=
        f.nl.cell(c).Area();
  }
  const double per_layer = f.nl.MovableArea() / 4;
  for (int l = 0; l < 4; ++l) {
    EXPECT_NEAR(area[static_cast<std::size_t>(l)], per_layer, per_layer * 0.2)
        << "layer " << l;
  }
}

TEST(GlobalPlacer, DeterministicForFixedSeed) {
  Fixture a(500, 4, 1e-5, 1e-6, 5);
  Fixture b(500, 4, 1e-5, 1e-6, 5);
  const Placement pa = a.Run();
  const Placement pb = b.Run();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa.x[i], pb.x[i]);
    EXPECT_EQ(pa.layer[i], pb.layer[i]);
  }
}

TEST(GlobalPlacer, ThermalPullsPowerTowardHeatSink) {
  // Compare the power-weighted mean layer with and without a strong
  // thermal coefficient; the TRR nets must bias power downward. A single
  // run is one random trajectory and too noisy to test the mechanism, so
  // average over a few placer seeds.
  Fixture base(1000, 4, 1e-5, 0.0, 33);
  Fixture therm(1000, 4, 1e-5, 1e-4, 33);
  auto mean_layer = [](Fixture& f, const Placement& p) {
    ObjectiveEvaluator eval(f.nl, f.chip, f.params);
    eval.SetPlacement(p);
    const PekoFloors floors = ComputePekoFloors(f.nl, f.params.alpha_ilv);
    const auto power = ComputeCellPowerWithFloors(eval, floors);
    double ws = 0, ls = 0;
    for (std::int32_t c = 0; c < f.nl.NumCells(); ++c) {
      ws += power[static_cast<std::size_t>(c)];
      ls += power[static_cast<std::size_t>(c)] *
            p.layer[static_cast<std::size_t>(c)];
    }
    return ls / ws;
  };
  double m_base = 0.0, m_therm = 0.0;
  for (const std::uint64_t seed : {1, 2, 3}) {
    base.params.seed = seed;
    therm.params.seed = seed;
    m_base += mean_layer(base, base.Run());
    m_therm += mean_layer(therm, therm.Run());
  }
  EXPECT_LT(m_therm, m_base);
}

TEST(GlobalPlacer, StatsPopulated) {
  Fixture f(300, 2, 1e-5, 0.0);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  GlobalPlacer gp(eval);
  Placement init;
  init.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  ASSERT_TRUE(gp.Run(init).ok());
  EXPECT_STREQ(gp.stats().backend, "bisection");
  EXPECT_GT(gp.stats().bisection.levels, 3);
  EXPECT_GT(gp.stats().bisection.partitions, 50);
  EXPECT_GT(gp.stats().bisection.partitioned_cells, 300);
  EXPECT_EQ(gp.stats().iterations, gp.stats().bisection.levels);
  EXPECT_EQ(gp.stats().cells_placed, f.nl.NumMovableCells());
}

TEST(GlobalPlacer, PartitionsAlmostAlwaysFeasible) {
  // Regression guard for partitioner balance quality: with healthy FM and
  // repair, only a handful of tiny end-game regions may miss their window.
  Fixture f(1000, 4, 1e-5, 0.0);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  GlobalPlacer gp(eval);
  Placement init;
  init.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  ASSERT_TRUE(gp.Run(init).ok());
  EXPECT_LT(gp.stats().bisection.infeasible_partitions,
            std::max(2, gp.stats().bisection.partitions / 20));
}

TEST(GlobalPlacer, ZeroIlvCoefficientTreatsLayersAsFreeArea) {
  // With alpha_ILV = 0, z-cuts have zero weighted depth and never win, so
  // leftover multi-layer regions round-robin their layers — maximal via use,
  // minimal wirelength (the left end of the paper's Figure 3 curves).
  Fixture free_vias(600, 4, 0.0, 0.0);
  Fixture costly(600, 4, 1e-3, 0.0);
  ObjectiveEvaluator ef(free_vias.nl, free_vias.chip, free_vias.params);
  ef.SetPlacement(free_vias.Run());
  ObjectiveEvaluator ec(costly.nl, costly.chip, costly.params);
  ec.SetPlacement(costly.Run());
  EXPECT_GT(ef.TotalIlv(), 4 * ec.TotalIlv());
  EXPECT_LT(ef.TotalHpwl(), ec.TotalHpwl());
  // Still uses every layer and stays inside the chip.
  const Placement& p = ef.placement();
  std::vector<int> count(4, 0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    ASSERT_GE(p.layer[i], 0);
    ASSERT_LT(p.layer[i], 4);
    count[static_cast<std::size_t>(p.layer[i])] += 1;
  }
  for (int l = 0; l < 4; ++l) EXPECT_GT(count[static_cast<std::size_t>(l)], 0);
}

TEST(GlobalPlacer, FixedCellsUntouched) {
  Fixture f(300, 4, 1e-5, 0.0);
  // Rebuild the netlist with an extra fixed pad.
  netlist::Netlist nl2;
  for (std::int32_t c = 0; c < f.nl.NumCells(); ++c) {
    nl2.AddCell(f.nl.cell(c).name, f.nl.cell(c).width, f.nl.cell(c).height);
  }
  const std::int32_t pad = nl2.AddCell("pad", 1e-6, 1e-6, /*fixed=*/true);
  for (std::int32_t n = 0; n < f.nl.NumNets(); ++n) {
    nl2.AddNet(f.nl.net(n).name, f.nl.net(n).activity);
    for (const auto& pin : f.nl.NetPins(n)) {
      nl2.AddPin(pin.cell, pin.dir, pin.dx, pin.dy);
    }
  }
  ASSERT_TRUE(nl2.Finalize());
  const Chip chip = *Chip::Build(nl2, 4, 0.05, 0.25);
  ObjectiveEvaluator eval(nl2, chip, f.params);
  GlobalPlacer gp(eval);
  Placement init;
  init.Resize(static_cast<std::size_t>(nl2.NumCells()));
  init.x[static_cast<std::size_t>(pad)] = 123e-6;
  init.y[static_cast<std::size_t>(pad)] = 45e-6;
  init.layer[static_cast<std::size_t>(pad)] = 2;
  const Placement p = *gp.Run(init);
  EXPECT_DOUBLE_EQ(p.x[static_cast<std::size_t>(pad)], 123e-6);
  EXPECT_DOUBLE_EQ(p.y[static_cast<std::size_t>(pad)], 45e-6);
  EXPECT_EQ(p.layer[static_cast<std::size_t>(pad)], 2);
}

// ---------------------------------------------------------------------------
// Multi-backend interface + analytic backend (place/global_backend.h).

bool BytesEqual(const Placement& a, const Placement& b) {
  return a.size() == b.size() &&
         std::memcmp(a.x.data(), b.x.data(), a.size() * sizeof(double)) == 0 &&
         std::memcmp(a.y.data(), b.y.data(), a.size() * sizeof(double)) == 0 &&
         std::memcmp(a.layer.data(), b.layer.data(),
                     a.size() * sizeof(int)) == 0;
}

TEST(GlobalBackendFactory, ParsesKnownNames) {
  const auto bis = ParseGlobalBackend("bisection");
  ASSERT_TRUE(bis.ok());
  EXPECT_EQ(*bis, GlobalBackend::kBisection);
  const auto ana = ParseGlobalBackend("analytic");
  ASSERT_TRUE(ana.ok());
  EXPECT_EQ(*ana, GlobalBackend::kAnalytic);
  EXPECT_STREQ(GlobalBackendName(GlobalBackend::kBisection), "bisection");
  EXPECT_STREQ(GlobalBackendName(GlobalBackend::kAnalytic), "analytic");
}

TEST(GlobalBackendFactory, UnknownNameIsInvalidArgument) {
  const auto r = ParseGlobalBackend("simulated-annealing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(GlobalBackendFactory, OutOfRangeEnumIsInvalidArgument) {
  Fixture f(60, 2, 1e-5, 0.0);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  const auto r = MakeGlobalPlacerBackend(static_cast<GlobalBackend>(99), eval);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(GlobalBackendFactory, BuildsSelectedBackend) {
  Fixture f(60, 2, 1e-5, 0.0);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  for (const GlobalBackend kind :
       {GlobalBackend::kBisection, GlobalBackend::kAnalytic}) {
    const auto backend = MakeGlobalPlacerBackend(kind, eval);
    ASSERT_TRUE(backend.ok());
    EXPECT_STREQ((*backend)->name(), GlobalBackendName(kind));
  }
}

TEST(AnalyticPlacer, AllCellsInsideChipAndOnAllLayers) {
  Fixture f(800, 4, 1e-5, 0.0);
  f.params.global_backend = GlobalBackend::kAnalytic;
  const Placement p = f.RunBackend();
  std::vector<int> count(4, 0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    ASSERT_GE(p.x[i], 0.0);
    ASSERT_LE(p.x[i], f.chip.width());
    ASSERT_GE(p.y[i], 0.0);
    ASSERT_LE(p.y[i], f.chip.height());
    ASSERT_GE(p.layer[i], 0);
    ASSERT_LT(p.layer[i], 4);
    count[static_cast<std::size_t>(p.layer[i])] += 1;
  }
  for (int l = 0; l < 4; ++l) {
    EXPECT_GT(count[static_cast<std::size_t>(l)], 800 / 16) << "layer " << l;
  }
}

TEST(AnalyticPlacer, StatsPopulated) {
  Fixture f(400, 4, 1e-5, 0.0);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  AnalyticPlacer gp(eval);
  Placement init;
  init.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  ASSERT_TRUE(gp.Run(init).ok());
  EXPECT_STREQ(gp.stats().backend, "analytic");
  // The overflow early-stop usually ends the loop before the iteration cap.
  EXPECT_GT(gp.stats().analytic.iterations, 0);
  EXPECT_LE(gp.stats().analytic.iterations, f.params.analytic_iterations);
  EXPECT_GT(gp.stats().analytic.solves, 0);
  EXPECT_GT(gp.stats().analytic.cg_iters, 0);
  EXPECT_EQ(gp.stats().iterations, gp.stats().analytic.iterations);
  EXPECT_EQ(gp.stats().cells_placed, f.nl.NumMovableCells());
}

TEST(AnalyticPlacer, ByteIdenticalAtOneVsEightThreads) {
  Fixture f(600, 4, 1e-5, 1e-6);
  f.params.global_backend = GlobalBackend::kAnalytic;
  f.params.threads = 1;
  const Placement p1 = f.RunBackend();
  f.params.threads = 8;
  const Placement p8 = f.RunBackend();
  EXPECT_TRUE(BytesEqual(p1, p8));
}

TEST(AnalyticPlacer, MismatchedInitialIsInvalidArgument) {
  Fixture f(100, 2, 1e-5, 0.0);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  AnalyticPlacer gp(eval);
  Placement init;
  init.Resize(static_cast<std::size_t>(f.nl.NumCells()) + 7);
  const auto r = gp.Run(init);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
}

/// Runs the full flow with `backend` at `threads` under a paranoid audit;
/// fails the test on any audit violation.
Placement RunAuditedFlow(const Fixture& f, GlobalBackend backend,
                         int threads) {
  PlacerParams params = f.params;
  params.global_backend = backend;
  params.threads = threads;
  params.audit_level = AuditLevel::kParanoid;
  auto placer = Placer3D::Create(f.nl, params);
  EXPECT_TRUE(placer.ok());
  check::PlacementAuditor auditor(f.nl, AuditLevel::kParanoid);
  auditor.Attach(&*placer);
  RunOptions opts;
  opts.with_fea = false;
  const auto r = placer->Run(opts);
  auditor.Detach(&*placer);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(auditor.ok()) << auditor.report().Summary();
  return r->placement;
}

TEST(GlobalBackends, FullFlowByteIdenticalUnderParanoidAudit) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  Fixture f(500, 4, 1e-5, 1e-6);
  for (const GlobalBackend kind :
       {GlobalBackend::kBisection, GlobalBackend::kAnalytic}) {
    const Placement p1 = RunAuditedFlow(f, kind, 1);
    const Placement p8 = RunAuditedFlow(f, kind, 8);
    EXPECT_TRUE(BytesEqual(p1, p8))
        << "backend " << GlobalBackendName(kind)
        << " is thread-count sensitive";
  }
}

TEST(GlobalBackends, AnalyticQualityWithin35PctOfBisection) {
  // The fig3-sized quality gate: at an equal alpha_ILV budget on the small
  // harness, the analytic backend's end-of-flow wirelength must stay within
  // 35% of bisection's. Measured today it lands at ~1.3x: the flow's move
  // engines are co-tuned with bisection handoffs, and the quadratic model's
  // fine-scale structure still loses ~30% through legalization. The bound is
  // a regression gate at the achievable level; tightening it toward the 10%
  // target is tracked in ROADMAP.md.
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  Fixture f(800, 4, 1e-5, 0.0);
  double hpwl[2] = {0.0, 0.0};
  int i = 0;
  for (const GlobalBackend kind :
       {GlobalBackend::kBisection, GlobalBackend::kAnalytic}) {
    PlacerParams params = f.params;
    params.global_backend = kind;
    auto placer = Placer3D::Create(f.nl, params);
    ASSERT_TRUE(placer.ok());
    RunOptions opts;
    opts.with_fea = false;
    const auto r = placer->Run(opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->legal);
    hpwl[i++] = r->hpwl_m;
  }
  EXPECT_LE(hpwl[1], 1.35 * hpwl[0])
      << "analytic hpwl " << hpwl[1] << " vs bisection " << hpwl[0];
}

}  // namespace
}  // namespace p3d::place
