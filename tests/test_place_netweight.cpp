#include <gtest/gtest.h>

#include <cmath>

#include "io/synthetic.h"
#include "place/netweight.h"
#include "util/rng.h"

namespace p3d::place {
namespace {

struct Fixture {
  netlist::Netlist nl;
  Chip chip;
  PlacerParams params;

  explicit Fixture(double alpha_temp, double alpha_ilv = 1e-5) {
    io::SyntheticSpec spec;
    spec.name = "nw";
    spec.num_cells = 150;
    spec.total_area_m2 = 150 * 4.9e-12;
    spec.seed = 9;
    nl = io::Generate(spec);
    chip = *Chip::Build(nl, 4, 0.05, 0.25);
    params.num_layers = 4;
    params.alpha_ilv = alpha_ilv;
    params.alpha_temp = alpha_temp;
    params.SyncStack();
  }
};

Placement CenterPlacement(const netlist::Netlist& nl, const Chip& chip) {
  Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = chip.width() / 2;
    p.y[i] = chip.height() / 2;
    p.layer[i] = 1;
  }
  return p;
}

TEST(NetWeights, AllOnesWithoutThermal) {
  Fixture f(0.0);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  eval.SetPlacement(CenterPlacement(f.nl, f.chip));
  const NetWeights w = ComputeNetWeights(eval);
  for (std::int32_t n = 0; n < f.nl.NumNets(); ++n) {
    EXPECT_DOUBLE_EQ(w.lateral[static_cast<std::size_t>(n)], 1.0);
    EXPECT_DOUBLE_EQ(w.vertical[static_cast<std::size_t>(n)], 1.0);
  }
}

TEST(NetWeights, MatchEquation8) {
  Fixture f(3e-6);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  eval.SetPlacement(CenterPlacement(f.nl, f.chip));
  const NetWeights w = ComputeNetWeights(eval);
  for (std::int32_t n = 0; n < std::min(f.nl.NumNets(), 30); ++n) {
    const std::int32_t d = f.nl.DriverCell(n);
    ASSERT_GE(d, 0);
    const double r = eval.CellResistance(d);
    const std::size_t i = static_cast<std::size_t>(n);
    EXPECT_NEAR(w.lateral[i], 1.0 + f.params.alpha_temp * r * eval.SWl(n),
                1e-12 + w.lateral[i] * 1e-12);
    EXPECT_NEAR(w.vertical[i],
                1.0 + f.params.alpha_temp * r * eval.SIlv(n) / f.params.alpha_ilv,
                1e-12 + w.vertical[i] * 1e-12);
    EXPECT_GE(w.lateral[i], 1.0);
    EXPECT_GE(w.vertical[i], 1.0);
  }
}

TEST(NetWeights, HotterNetsWeighHeavier) {
  Fixture f(3e-6);
  // Give net 0 the max activity and net 1 the min, same driver resistance
  // by placing everything identically.
  f.nl.SetNetActivity(0, 0.5);
  f.nl.SetNetActivity(1, 0.01);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  eval.SetPlacement(CenterPlacement(f.nl, f.chip));
  const NetWeights w = ComputeNetWeights(eval);
  EXPECT_GT(w.lateral[0], w.lateral[1]);
}

TEST(NetWeights, ZeroAlphaIlvKeepsVerticalFinite) {
  Fixture f(3e-6, /*alpha_ilv=*/0.0);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  eval.SetPlacement(CenterPlacement(f.nl, f.chip));
  const NetWeights w = ComputeNetWeights(eval);
  for (std::int32_t n = 0; n < f.nl.NumNets(); ++n) {
    EXPECT_DOUBLE_EQ(w.vertical[static_cast<std::size_t>(n)], 1.0);
  }
}

TEST(PekoFloors, MatchEquations13To15) {
  Fixture f(0.0);
  const double a = 1e-5;
  const PekoFloors floors = ComputePekoFloors(f.nl, a);
  for (std::int32_t n = 0; n < std::min(f.nl.NumNets(), 30); ++n) {
    const auto pins = f.nl.NetPins(n);
    double w_sum = 0, h_sum = 0;
    for (const auto& pin : pins) {
      w_sum += f.nl.cell(pin.cell).width;
      h_sum += f.nl.cell(pin.cell).height;
    }
    const double w_ave = w_sum / static_cast<double>(pins.size());
    const double h_ave = h_sum / static_cast<double>(pins.size());
    const double np = static_cast<double>(pins.size());
    const std::size_t i = static_cast<std::size_t>(n);
    EXPECT_NEAR(floors.wl_x[i],
                std::max(0.0, std::cbrt(a * w_ave * h_ave * np) - w_ave), 1e-15);
    EXPECT_NEAR(floors.wl_y[i],
                std::max(0.0, std::cbrt(a * w_ave * h_ave * np) - h_ave), 1e-15);
    EXPECT_NEAR(floors.ilv[i],
                std::max(0.0, std::cbrt(w_ave * h_ave * np / (a * a)) - 1.0),
                1e-9);
  }
}

TEST(PekoFloors, NonNegativeAndMonotoneInPins) {
  Fixture f(0.0);
  const PekoFloors floors = ComputePekoFloors(f.nl, 1e-5);
  for (std::int32_t n = 0; n < f.nl.NumNets(); ++n) {
    const std::size_t i = static_cast<std::size_t>(n);
    EXPECT_GE(floors.wl_x[i], 0.0);
    EXPECT_GE(floors.wl_y[i], 0.0);
    EXPECT_GE(floors.ilv[i], 0.0);
  }
}

TEST(PekoFloors, TwoDimensionalDegenerateCase) {
  Fixture f(0.0);
  const PekoFloors floors = ComputePekoFloors(f.nl, 0.0);
  for (std::int32_t n = 0; n < f.nl.NumNets(); ++n) {
    EXPECT_DOUBLE_EQ(floors.ilv[static_cast<std::size_t>(n)], 0.0);
    EXPECT_GE(floors.wl_x[static_cast<std::size_t>(n)], 0.0);
  }
}

TEST(CellPower, FloorsRaiseZeroLengthNets) {
  Fixture f(1e-6);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  // All cells at one point: measured WL and ILV are all zero.
  eval.SetPlacement(CenterPlacement(f.nl, f.chip));
  EXPECT_NEAR(eval.TotalHpwl(), 0.0, 1e-18);

  const PekoFloors floors = ComputePekoFloors(f.nl, f.params.alpha_ilv);
  const auto power = ComputeCellPowerWithFloors(eval, floors);
  double total = 0.0;
  for (const double p : power) total += p;
  // Despite zero measured metrics, floored power is strictly positive.
  EXPECT_GT(total, 0.0);

  // And it exceeds the floor-free pin-only power.
  double pin_only = 0.0;
  for (std::int32_t n = 0; n < f.nl.NumNets(); ++n) pin_only += eval.SPinTerm(n);
  EXPECT_GT(total, pin_only);
}

TEST(CellPower, UsesMeasuredWhenAboveFloor) {
  Fixture f(1e-6);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  // Spread cells far: measured metrics dominate the floors.
  Placement p;
  p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  util::Rng rng(4);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = rng.NextDouble(0.0, f.chip.width());
    p.y[i] = rng.NextDouble(0.0, f.chip.height());
    p.layer[i] = rng.NextInt(0, 3);
  }
  eval.SetPlacement(p);
  const PekoFloors floors = ComputePekoFloors(f.nl, f.params.alpha_ilv);
  const auto power = ComputeCellPowerWithFloors(eval, floors);

  // Cross-check one driver by hand.
  const std::int32_t n0 = 0;
  const std::int32_t d = f.nl.DriverCell(n0);
  ASSERT_GE(d, 0);
  double expected = 0.0;
  for (const std::int32_t pid : f.nl.CellPinIds(d)) {
    const auto& pin = f.nl.pin(pid);
    if (pin.dir != netlist::PinDir::kOutput) continue;
    const std::int32_t n = pin.net;
    const std::size_t i = static_cast<std::size_t>(n);
    const double wl = std::max(eval.NetHpwl(n), floors.wl_x[i] + floors.wl_y[i]);
    const double ilv =
        std::max(static_cast<double>(eval.NetSpan(n)), floors.ilv[i]);
    expected += eval.SWl(n) * wl + eval.SIlv(n) * ilv + eval.SPinTerm(n);
  }
  EXPECT_NEAR(power[static_cast<std::size_t>(d)], expected, expected * 1e-9);
}

}  // namespace
}  // namespace p3d::place
