#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/cg.h"
#include "linalg/csr.h"
#include "util/rng.h"

namespace p3d::linalg {
namespace {

TEST(Csr, FromCooSumsDuplicates) {
  CooBuilder coo(3);
  coo.Add(0, 0, 1.0);
  coo.Add(0, 0, 2.0);
  coo.Add(1, 2, 5.0);
  coo.Add(2, 1, -1.0);
  const CsrMatrix m = CsrMatrix::FromCoo(coo);
  EXPECT_EQ(m.Dim(), 3);
  EXPECT_EQ(m.NumNonZeros(), 3u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);  // absent
}

TEST(Csr, Multiply) {
  CooBuilder coo(2);
  coo.Add(0, 0, 2.0);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 0, 1.0);
  coo.Add(1, 1, 3.0);
  const CsrMatrix m = CsrMatrix::FromCoo(coo);
  std::vector<double> y;
  m.Multiply({1.0, 2.0}, &y);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Csr, Diagonal) {
  CooBuilder coo(3);
  coo.Add(0, 0, 4.0);
  coo.Add(2, 2, 9.0);
  coo.Add(0, 1, 7.0);
  const CsrMatrix m = CsrMatrix::FromCoo(coo);
  const auto d = m.Diagonal();
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 9.0);
}

TEST(Csr, SymmetryError) {
  CooBuilder coo(2);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 0, 1.5);
  const CsrMatrix m = CsrMatrix::FromCoo(coo);
  EXPECT_NEAR(m.SymmetryError(), 0.5, 1e-15);
}

TEST(Cg, SolvesSmallSpdSystem) {
  // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11].
  CooBuilder coo(2);
  coo.Add(0, 0, 4.0);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 0, 1.0);
  coo.Add(1, 1, 3.0);
  const CsrMatrix a = CsrMatrix::FromCoo(coo);
  std::vector<double> x;
  const CgResult r = SolveCg(a, {1.0, 2.0}, &x);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-8);
  EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-8);
}

TEST(Cg, ZeroRhsGivesZero) {
  CooBuilder coo(2);
  coo.Add(0, 0, 1.0);
  coo.Add(1, 1, 1.0);
  const CsrMatrix a = CsrMatrix::FromCoo(coo);
  std::vector<double> x = {5.0, -2.0};  // nonzero initial guess
  const CgResult r = SolveCg(a, {0.0, 0.0}, &x);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

/// 1D Laplacian with Dirichlet-like end anchors: classic SPD test with a
/// known solution structure.
TEST(Cg, OneDimensionalLaplacian) {
  const int n = 50;
  CooBuilder coo(n);
  for (int i = 0; i < n; ++i) {
    coo.Add(i, i, 2.0);
    if (i > 0) coo.Add(i, i - 1, -1.0);
    if (i + 1 < n) coo.Add(i, i + 1, -1.0);
  }
  const CsrMatrix a = CsrMatrix::FromCoo(coo);
  // b = A * ones -> solution must be ones.
  std::vector<double> ones(n, 1.0), b;
  a.Multiply(ones, &b);
  std::vector<double> x;
  const CgResult r = SolveCg(a, b, &x, {.max_iters = 500, .rel_tolerance = 1e-10});
  ASSERT_TRUE(r.converged);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], 1.0, 1e-6);
}

class CgRandomSpd : public ::testing::TestWithParam<int> {};

TEST_P(CgRandomSpd, RecoversKnownSolution) {
  const int n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n));
  // SPD by construction: diagonally dominant symmetric matrix.
  CooBuilder coo(n);
  std::vector<double> row_abs(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < std::min(n, i + 4); ++j) {
      const double v = rng.NextDouble(-1.0, 1.0);
      coo.Add(i, j, v);
      coo.Add(j, i, v);
      row_abs[static_cast<std::size_t>(i)] += std::abs(v);
      row_abs[static_cast<std::size_t>(j)] += std::abs(v);
    }
  }
  for (int i = 0; i < n; ++i) {
    coo.Add(i, i, row_abs[static_cast<std::size_t>(i)] + 1.0);
  }
  const CsrMatrix a = CsrMatrix::FromCoo(coo);
  EXPECT_LT(a.SymmetryError(), 1e-14);

  std::vector<double> truth(static_cast<std::size_t>(n));
  for (auto& v : truth) v = rng.NextDouble(-10.0, 10.0);
  std::vector<double> b;
  a.Multiply(truth, &b);
  std::vector<double> x;
  const CgResult r = SolveCg(a, b, &x, {.max_iters = 2000, .rel_tolerance = 1e-12});
  ASSERT_TRUE(r.converged);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                truth[static_cast<std::size_t>(i)], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgRandomSpd, ::testing::Values(5, 20, 100, 400));

}  // namespace
}  // namespace p3d::linalg
