#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "linalg/cg.h"
#include "linalg/csr.h"
#include "linalg/multigrid.h"
#include "util/rng.h"

namespace p3d::linalg {
namespace {

TEST(Csr, FromCooSumsDuplicates) {
  CooBuilder coo(3);
  coo.Add(0, 0, 1.0);
  coo.Add(0, 0, 2.0);
  coo.Add(1, 2, 5.0);
  coo.Add(2, 1, -1.0);
  const CsrMatrix m = CsrMatrix::FromCoo(coo);
  EXPECT_EQ(m.Dim(), 3);
  EXPECT_EQ(m.NumNonZeros(), 3u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);  // absent
}

TEST(Csr, Multiply) {
  CooBuilder coo(2);
  coo.Add(0, 0, 2.0);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 0, 1.0);
  coo.Add(1, 1, 3.0);
  const CsrMatrix m = CsrMatrix::FromCoo(coo);
  std::vector<double> y;
  m.Multiply({1.0, 2.0}, &y);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Csr, Diagonal) {
  CooBuilder coo(3);
  coo.Add(0, 0, 4.0);
  coo.Add(2, 2, 9.0);
  coo.Add(0, 1, 7.0);
  const CsrMatrix m = CsrMatrix::FromCoo(coo);
  const auto d = m.Diagonal();
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 9.0);
}

TEST(Csr, SymmetryError) {
  CooBuilder coo(2);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 0, 1.5);
  const CsrMatrix m = CsrMatrix::FromCoo(coo);
  EXPECT_NEAR(m.SymmetryError(), 0.5, 1e-15);
}

TEST(Cg, SolvesSmallSpdSystem) {
  // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11].
  CooBuilder coo(2);
  coo.Add(0, 0, 4.0);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 0, 1.0);
  coo.Add(1, 1, 3.0);
  const CsrMatrix a = CsrMatrix::FromCoo(coo);
  std::vector<double> x;
  const CgResult r = SolveCg(a, {1.0, 2.0}, &x);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-8);
  EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-8);
}

TEST(Cg, ZeroRhsGivesZero) {
  CooBuilder coo(2);
  coo.Add(0, 0, 1.0);
  coo.Add(1, 1, 1.0);
  const CsrMatrix a = CsrMatrix::FromCoo(coo);
  std::vector<double> x = {5.0, -2.0};  // nonzero initial guess
  const CgResult r = SolveCg(a, {0.0, 0.0}, &x);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

/// 1D Laplacian with Dirichlet-like end anchors: classic SPD test with a
/// known solution structure.
TEST(Cg, OneDimensionalLaplacian) {
  const int n = 50;
  CooBuilder coo(n);
  for (int i = 0; i < n; ++i) {
    coo.Add(i, i, 2.0);
    if (i > 0) coo.Add(i, i - 1, -1.0);
    if (i + 1 < n) coo.Add(i, i + 1, -1.0);
  }
  const CsrMatrix a = CsrMatrix::FromCoo(coo);
  // b = A * ones -> solution must be ones.
  std::vector<double> ones(n, 1.0), b;
  a.Multiply(ones, &b);
  std::vector<double> x;
  const CgResult r = SolveCg(a, b, &x, {.max_iters = 500, .rel_tolerance = 1e-10});
  ASSERT_TRUE(r.converged);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], 1.0, 1e-6);
}

class CgRandomSpd : public ::testing::TestWithParam<int> {};

TEST_P(CgRandomSpd, RecoversKnownSolution) {
  const int n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n));
  // SPD by construction: diagonally dominant symmetric matrix.
  CooBuilder coo(n);
  std::vector<double> row_abs(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < std::min(n, i + 4); ++j) {
      const double v = rng.NextDouble(-1.0, 1.0);
      coo.Add(i, j, v);
      coo.Add(j, i, v);
      row_abs[static_cast<std::size_t>(i)] += std::abs(v);
      row_abs[static_cast<std::size_t>(j)] += std::abs(v);
    }
  }
  for (int i = 0; i < n; ++i) {
    coo.Add(i, i, row_abs[static_cast<std::size_t>(i)] + 1.0);
  }
  const CsrMatrix a = CsrMatrix::FromCoo(coo);
  EXPECT_LT(a.SymmetryError(), 1e-14);

  std::vector<double> truth(static_cast<std::size_t>(n));
  for (auto& v : truth) v = rng.NextDouble(-10.0, 10.0);
  std::vector<double> b;
  a.Multiply(truth, &b);
  std::vector<double> x;
  const CgResult r = SolveCg(a, b, &x, {.max_iters = 2000, .rel_tolerance = 1e-12});
  ASSERT_TRUE(r.converged);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                truth[static_cast<std::size_t>(i)], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgRandomSpd, ::testing::Values(5, 20, 100, 400));


/// 2D Laplacian (5-point stencil) on an nx * ny grid: the same structure as
/// the FEA thermal matrices, where IC(0) is meant to earn its keep.
CsrMatrix Laplacian2d(int nx, int ny) {
  CooBuilder coo(nx * ny);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const int at = j * nx + i;
      coo.Add(at, at, 4.0 + 1e-3);  // small shift keeps it SPD
      if (i > 0) coo.Add(at, at - 1, -1.0);
      if (i + 1 < nx) coo.Add(at, at + 1, -1.0);
      if (j > 0) coo.Add(at, at - nx, -1.0);
      if (j + 1 < ny) coo.Add(at, at + nx, -1.0);
    }
  }
  return CsrMatrix::FromCoo(coo);
}

TEST(CgIc0, ConvergesAndBeatsJacobiOnLaplacian) {
  const CsrMatrix a = Laplacian2d(24, 24);
  std::vector<double> truth(static_cast<std::size_t>(a.Dim()), 0.0);
  util::Rng rng(7);
  for (auto& v : truth) v = rng.NextDouble(-1.0, 1.0);
  std::vector<double> b;
  a.Multiply(truth, &b);

  CgOptions opt;
  opt.rel_tolerance = 1e-10;
  std::vector<double> x_j;
  opt.preconditioner = PreconditionerKind::kJacobi;
  const CgResult rj = SolveCg(a, b, &x_j, opt);
  std::vector<double> x_ic;
  opt.preconditioner = PreconditionerKind::kIc0;
  const CgResult ric = SolveCg(a, b, &x_ic, opt);

  ASSERT_TRUE(rj.converged);
  ASSERT_TRUE(ric.converged);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(x_j[i], truth[i], 1e-6);
    EXPECT_NEAR(x_ic[i], truth[i], 1e-6);
  }
  // The point of IC(0): materially fewer iterations than Jacobi.
  EXPECT_LT(ric.iters, rj.iters);
}

TEST(CgIc0, CleanFactorNeedsNoShift) {
  const CsrMatrix a = Laplacian2d(8, 8);
  const CgPreconditioner p = CgPreconditioner::Build(a, PreconditionerKind::kIc0);
  EXPECT_EQ(p.kind(), PreconditionerKind::kIc0);
  EXPECT_FALSE(p.empty());
  EXPECT_DOUBLE_EQ(p.ic_shift(), 0.0);
}

TEST(CgIc0, PrebuiltPreconditionerReusesAcrossRhs) {
  const CsrMatrix a = Laplacian2d(16, 16);
  const CgPreconditioner p = CgPreconditioner::Build(a, PreconditionerKind::kIc0);
  util::Rng rng(11);
  CgOptions opt;
  opt.rel_tolerance = 1e-10;
  for (int rhs = 0; rhs < 3; ++rhs) {
    std::vector<double> truth(static_cast<std::size_t>(a.Dim()));
    for (auto& v : truth) v = rng.NextDouble(-5.0, 5.0);
    std::vector<double> b;
    a.Multiply(truth, &b);
    std::vector<double> x;
    const CgResult r = SolveCgPreconditioned(a, p, b, &x, opt);
    ASSERT_TRUE(r.converged) << "rhs " << rhs;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      EXPECT_NEAR(x[i], truth[i], 1e-6);
    }
  }
}

TEST(CgIc0, WarmStartFromSolutionExitsImmediately) {
  const CsrMatrix a = Laplacian2d(12, 12);
  std::vector<double> truth(static_cast<std::size_t>(a.Dim()), 1.0), b;
  a.Multiply(truth, &b);
  CgOptions opt;
  opt.preconditioner = PreconditionerKind::kIc0;
  std::vector<double> x;
  const CgResult cold = SolveCg(a, b, &x, opt);
  ASSERT_TRUE(cold.converged);
  EXPECT_GT(cold.iters, 0);
  // Seeding with the previous solution: the initial residual is already
  // below tolerance, so the solve must early-exit without iterating.
  const CgResult warm = SolveCg(a, b, &x, opt);
  EXPECT_TRUE(warm.converged);
  EXPECT_EQ(warm.iters, 0);
}

TEST(CgIc0, MatchesJacobiBitwiseAcrossThreadCounts) {
  // The determinism contract: for a fixed preconditioner, the solution bytes
  // do not depend on the thread count.
  const CsrMatrix a = Laplacian2d(10, 14);
  std::vector<double> truth(static_cast<std::size_t>(a.Dim())), b;
  util::Rng rng(3);
  for (auto& v : truth) v = rng.NextDouble(-2.0, 2.0);
  a.Multiply(truth, &b);
  for (const PreconditionerKind kind :
       {PreconditionerKind::kJacobi, PreconditionerKind::kIc0}) {
    CgOptions opt;
    opt.preconditioner = kind;
    opt.threads = 1;
    std::vector<double> x1;
    const CgResult r1 = SolveCg(a, b, &x1, opt);
    opt.threads = 4;
    std::vector<double> x4;
    const CgResult r4 = SolveCg(a, b, &x4, opt);
    ASSERT_TRUE(r1.converged);
    EXPECT_EQ(r1.iters, r4.iters);
    for (std::size_t i = 0; i < x1.size(); ++i) {
      EXPECT_EQ(x1[i], x4[i]) << PreconditionerName(kind) << " row " << i;
    }
  }
}

// --- geometric multigrid ----------------------------------------------------

/// Trilinear hex-FEM Poisson assembly (unit conductivity, Robin bottom face)
/// on the MgGrid node layout — the same element family the thermal FEA uses,
/// so re-assembling on a 2x-coarser lateral grid produces exactly the
/// Galerkin coarse operator (nested spaces). Domain is 1 x 1 x (nz_elems*hz).
CsrMatrix PoissonHex(const MgGrid& g, double hz) {
  const double hx = 1.0 / g.nx;
  const double hy = 1.0 / g.ny;
  const int nz_elems = g.nz_nodes - 1;
  const auto node = [&](int ix, int iy, int iz) {
    return ix + (g.nx + 1) * (iy + (g.ny + 1) * iz);
  };

  // 8x8 element stiffness by 2x2x2 Gauss quadrature of the trilinear shape
  // gradients (local node order: bit 0 = x, bit 1 = y, bit 2 = z).
  double ke[8][8] = {};
  const double gp = 1.0 / std::sqrt(3.0);
  const double jac[3] = {hx / 2.0, hy / 2.0, hz / 2.0};
  const double det = jac[0] * jac[1] * jac[2];
  for (int q = 0; q < 8; ++q) {
    const double p[3] = {(q & 1) ? gp : -gp, (q & 2) ? gp : -gp,
                         (q & 4) ? gp : -gp};
    double grad[8][3];
    for (int i = 0; i < 8; ++i) {
      const double xi = (i & 1) ? 1.0 : -1.0;
      const double et = (i & 2) ? 1.0 : -1.0;
      const double ze = (i & 4) ? 1.0 : -1.0;
      grad[i][0] = 0.125 * xi * (1 + et * p[1]) * (1 + ze * p[2]) / jac[0];
      grad[i][1] = 0.125 * et * (1 + xi * p[0]) * (1 + ze * p[2]) / jac[1];
      grad[i][2] = 0.125 * ze * (1 + xi * p[0]) * (1 + et * p[1]) / jac[2];
    }
    for (int i = 0; i < 8; ++i) {
      for (int j = 0; j < 8; ++j) {
        ke[i][j] += det * (grad[i][0] * grad[j][0] + grad[i][1] * grad[j][1] +
                           grad[i][2] * grad[j][2]);
      }
    }
  }

  CooBuilder coo(g.NumNodes());
  for (int ez = 0; ez < nz_elems; ++ez) {
    for (int ey = 0; ey < g.ny; ++ey) {
      for (int ex = 0; ex < g.nx; ++ex) {
        int n[8];
        for (int i = 0; i < 8; ++i) {
          n[i] = node(ex + (i & 1), ey + ((i >> 1) & 1), ez + ((i >> 2) & 1));
        }
        for (int i = 0; i < 8; ++i) {
          for (int j = 0; j < 8; ++j) coo.Add(n[i], n[j], ke[i][j]);
        }
      }
    }
  }
  // Robin term on the bottom face (bilinear face mass, h = 5) pins the
  // otherwise-singular pure-Neumann operator; a face integral of nested
  // spaces, so it stays variational under re-assembly.
  const double h_face = 5.0 * (hx * hy) / 36.0;
  for (int ey = 0; ey < g.ny; ++ey) {
    for (int ex = 0; ex < g.nx; ++ex) {
      const int fn[4] = {node(ex, ey, 0), node(ex + 1, ey, 0),
                         node(ex, ey + 1, 0), node(ex + 1, ey + 1, 0)};
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
          const int manhattan = (((i ^ j) & 1) ? 1 : 0) + (((i ^ j) & 2) ? 1 : 0);
          const double base =
              manhattan == 0 ? 4.0 : (manhattan == 1 ? 2.0 : 1.0);
          coo.Add(fn[i], fn[j], h_face * base);
        }
      }
    }
  }
  return CsrMatrix::FromCoo(coo);
}

MultigridHierarchy BuildPoissonHierarchy(int nx, int ny, int nz_nodes,
                                         const MultigridOptions& options = {}) {
  const MgGrid fine{nx, ny, nz_nodes};
  const std::vector<MgGrid> plan = MultigridHierarchy::CoarsenPlan(fine, options);
  std::vector<CsrMatrix> mats;
  mats.reserve(plan.size());
  for (const MgGrid& g : plan) mats.push_back(PoissonHex(g, 0.25));
  return MultigridHierarchy::Build(std::move(mats), plan, options);
}

TEST(Multigrid, CoarsenPlanHalvesLateralGridAndKeepsZ) {
  const auto plan = MultigridHierarchy::CoarsenPlan({24, 24, 12});
  ASSERT_EQ(plan.size(), 4u);  // 24 -> 12 -> 6 -> 3 (odd: stop)
  EXPECT_EQ(plan[1].nx, 12);
  EXPECT_EQ(plan[3].nx, 3);
  EXPECT_EQ(plan[3].ny, 3);
  for (const auto& g : plan) EXPECT_EQ(g.nz_nodes, 12);
  // Odd lateral grids cannot be coarsened at all.
  EXPECT_EQ(MultigridHierarchy::CoarsenPlan({25, 24, 12}).size(), 1u);
  // min_lateral_elems stops the descent.
  MultigridOptions opt;
  opt.min_lateral_elems = 6;
  EXPECT_EQ(MultigridHierarchy::CoarsenPlan({24, 24, 12}, opt).size(), 3u);
}

TEST(Multigrid, StandaloneSolveConvergesFast) {
  const MultigridHierarchy mg = BuildPoissonHierarchy(16, 16, 4);
  ASSERT_EQ(mg.NumLevels(), 4);  // 16 -> 8 -> 4 -> 2
  EXPECT_TRUE(mg.CoarseDirect());
  util::Rng rng(17);
  std::vector<double> truth(static_cast<std::size_t>(mg.Dim()));
  for (auto& v : truth) v = rng.NextDouble(-1.0, 1.0);
  std::vector<double> b;
  mg.Matrix(0).Multiply(truth, &b);
  std::vector<double> x;
  const CgResult r = mg.Solve(b, &x, /*max_cycles=*/50, 1e-10);
  ASSERT_TRUE(r.converged);
  // Mesh-independent convergence is the whole point: a handful of V-cycles,
  // not the O(n) iterations an unpreconditioned Krylov method would need.
  EXPECT_LE(r.iters, 25);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(x[i], truth[i], 1e-6);
  }
  // A warm start from the solution early-exits without cycling.
  const CgResult warm = mg.Solve(b, &x, 50, 1e-10);
  EXPECT_TRUE(warm.converged);
  EXPECT_EQ(warm.iters, 0);
}

TEST(Multigrid, PreconditionerIsSymmetric) {
  // CG requires a symmetric preconditioner: check <B u, v> == <u, B v> for
  // random vectors (equal pre/post weighted-Jacobi sweeps keep it so).
  const MultigridHierarchy mg = BuildPoissonHierarchy(8, 8, 3);
  util::Rng rng(23);
  const std::size_t n = static_cast<std::size_t>(mg.Dim());
  std::vector<double> u(n), v(n), bu, bv;
  for (auto& e : u) e = rng.NextDouble(-1.0, 1.0);
  for (auto& e : v) e = rng.NextDouble(-1.0, 1.0);
  mg.PrecondApply(u, &bu);
  mg.PrecondApply(v, &bv);
  double buv = 0.0, ubv = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    buv += bu[i] * v[i];
    ubv += u[i] * bv[i];
    scale += std::abs(bu[i] * v[i]);
  }
  EXPECT_NEAR(buv, ubv, 1e-10 * scale + 1e-14);
}

TEST(Multigrid, PreconditionedCgMatchesIc0AtEqualTolerance) {
  const MultigridHierarchy mg = BuildPoissonHierarchy(32, 32, 4);
  const CsrMatrix& a = mg.Matrix(0);
  util::Rng rng(5);
  std::vector<double> truth(static_cast<std::size_t>(a.Dim()));
  for (auto& v : truth) v = rng.NextDouble(-2.0, 2.0);
  std::vector<double> b;
  a.Multiply(truth, &b);

  CgOptions opt;
  opt.rel_tolerance = 1e-10;
  std::vector<double> x_ic;
  opt.preconditioner = PreconditionerKind::kIc0;
  const CgResult ric = SolveCg(a, b, &x_ic, opt);

  auto shared = std::make_shared<const MultigridHierarchy>(
      BuildPoissonHierarchy(32, 32, 4));
  const CgPreconditioner pmg = CgPreconditioner::BuildMultigrid(shared);
  EXPECT_EQ(pmg.kind(), PreconditionerKind::kMultigrid);
  EXPECT_FALSE(pmg.empty());
  std::vector<double> x_mg;
  const CgResult rmg = SolveCgPreconditioned(a, pmg, b, &x_mg, opt);

  ASSERT_TRUE(ric.converged);
  ASSERT_TRUE(rmg.converged);
  EXPECT_LE(rmg.iters, ric.iters);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(x_mg[i], x_ic[i], 1e-7);
  }
}

TEST(Multigrid, DeterministicAcrossThreadCounts) {
  const MultigridHierarchy mg = BuildPoissonHierarchy(16, 16, 4);
  util::Rng rng(29);
  std::vector<double> truth(static_cast<std::size_t>(mg.Dim()));
  for (auto& v : truth) v = rng.NextDouble(-3.0, 3.0);
  std::vector<double> b;
  mg.Matrix(0).Multiply(truth, &b);

  // Standalone V-cycle solve: bitwise-equal at 1 and 8 threads.
  std::vector<double> x1, x8;
  const CgResult r1 =
      mg.Solve(b, &x1, 50, 1e-10, runtime::SharedPool(1));
  const CgResult r8 =
      mg.Solve(b, &x8, 50, 1e-10, runtime::SharedPool(8));
  ASSERT_TRUE(r1.converged);
  EXPECT_EQ(r1.iters, r8.iters);
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_EQ(x1[i], x8[i]);

  // Same contract through the CG preconditioner path.
  auto shared =
      std::make_shared<const MultigridHierarchy>(BuildPoissonHierarchy(16, 16, 4));
  const CgPreconditioner pmg = CgPreconditioner::BuildMultigrid(shared);
  CgOptions opt;
  opt.rel_tolerance = 1e-10;
  opt.threads = 1;
  std::vector<double> y1;
  const CgResult c1 = SolveCgPreconditioned(mg.Matrix(0), pmg, b, &y1, opt);
  opt.threads = 8;
  std::vector<double> y8;
  const CgResult c8 = SolveCgPreconditioned(mg.Matrix(0), pmg, b, &y8, opt);
  ASSERT_TRUE(c1.converged);
  EXPECT_EQ(c1.iters, c8.iters);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_EQ(y1[i], y8[i]);
}

TEST(Multigrid, CoarseCgFallbackMatchesDirectSolve) {
  MultigridOptions direct_opt;
  const MultigridHierarchy direct = BuildPoissonHierarchy(8, 8, 3, direct_opt);
  MultigridOptions cg_opt;
  cg_opt.coarse_direct_max_dim = 0;  // force the CG coarse path
  const MultigridHierarchy iterative = BuildPoissonHierarchy(8, 8, 3, cg_opt);
  EXPECT_TRUE(direct.CoarseDirect());
  EXPECT_FALSE(iterative.CoarseDirect());

  util::Rng rng(31);
  std::vector<double> truth(static_cast<std::size_t>(direct.Dim()));
  for (auto& v : truth) v = rng.NextDouble(-1.0, 1.0);
  std::vector<double> b;
  direct.Matrix(0).Multiply(truth, &b);
  std::vector<double> xd, xi;
  const CgResult rd = direct.Solve(b, &xd, 50, 1e-10);
  const CgResult ri = iterative.Solve(b, &xi, 50, 1e-10);
  ASSERT_TRUE(rd.converged);
  ASSERT_TRUE(ri.converged);
  for (std::size_t i = 0; i < xd.size(); ++i) EXPECT_NEAR(xd[i], xi[i], 1e-8);
}

TEST(Multigrid, BareMatrixBuildDegradesToJacobi) {
  // Build(a, kMultigrid) has no grid information: documented Jacobi fallback.
  const CsrMatrix a = Laplacian2d(8, 8);
  const CgPreconditioner p =
      CgPreconditioner::Build(a, PreconditionerKind::kMultigrid);
  EXPECT_EQ(p.kind(), PreconditionerKind::kJacobi);
  EXPECT_FALSE(p.empty());
  std::vector<double> truth(static_cast<std::size_t>(a.Dim()), 1.0), b, x;
  a.Multiply(truth, &b);
  const CgResult r = SolveCgPreconditioned(a, p, b, &x, {.rel_tolerance = 1e-10});
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace p3d::linalg
