#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/cg.h"
#include "linalg/csr.h"
#include "util/rng.h"

namespace p3d::linalg {
namespace {

TEST(Csr, FromCooSumsDuplicates) {
  CooBuilder coo(3);
  coo.Add(0, 0, 1.0);
  coo.Add(0, 0, 2.0);
  coo.Add(1, 2, 5.0);
  coo.Add(2, 1, -1.0);
  const CsrMatrix m = CsrMatrix::FromCoo(coo);
  EXPECT_EQ(m.Dim(), 3);
  EXPECT_EQ(m.NumNonZeros(), 3u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);  // absent
}

TEST(Csr, Multiply) {
  CooBuilder coo(2);
  coo.Add(0, 0, 2.0);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 0, 1.0);
  coo.Add(1, 1, 3.0);
  const CsrMatrix m = CsrMatrix::FromCoo(coo);
  std::vector<double> y;
  m.Multiply({1.0, 2.0}, &y);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Csr, Diagonal) {
  CooBuilder coo(3);
  coo.Add(0, 0, 4.0);
  coo.Add(2, 2, 9.0);
  coo.Add(0, 1, 7.0);
  const CsrMatrix m = CsrMatrix::FromCoo(coo);
  const auto d = m.Diagonal();
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 9.0);
}

TEST(Csr, SymmetryError) {
  CooBuilder coo(2);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 0, 1.5);
  const CsrMatrix m = CsrMatrix::FromCoo(coo);
  EXPECT_NEAR(m.SymmetryError(), 0.5, 1e-15);
}

TEST(Cg, SolvesSmallSpdSystem) {
  // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11].
  CooBuilder coo(2);
  coo.Add(0, 0, 4.0);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 0, 1.0);
  coo.Add(1, 1, 3.0);
  const CsrMatrix a = CsrMatrix::FromCoo(coo);
  std::vector<double> x;
  const CgResult r = SolveCg(a, {1.0, 2.0}, &x);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-8);
  EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-8);
}

TEST(Cg, ZeroRhsGivesZero) {
  CooBuilder coo(2);
  coo.Add(0, 0, 1.0);
  coo.Add(1, 1, 1.0);
  const CsrMatrix a = CsrMatrix::FromCoo(coo);
  std::vector<double> x = {5.0, -2.0};  // nonzero initial guess
  const CgResult r = SolveCg(a, {0.0, 0.0}, &x);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

/// 1D Laplacian with Dirichlet-like end anchors: classic SPD test with a
/// known solution structure.
TEST(Cg, OneDimensionalLaplacian) {
  const int n = 50;
  CooBuilder coo(n);
  for (int i = 0; i < n; ++i) {
    coo.Add(i, i, 2.0);
    if (i > 0) coo.Add(i, i - 1, -1.0);
    if (i + 1 < n) coo.Add(i, i + 1, -1.0);
  }
  const CsrMatrix a = CsrMatrix::FromCoo(coo);
  // b = A * ones -> solution must be ones.
  std::vector<double> ones(n, 1.0), b;
  a.Multiply(ones, &b);
  std::vector<double> x;
  const CgResult r = SolveCg(a, b, &x, {.max_iters = 500, .rel_tolerance = 1e-10});
  ASSERT_TRUE(r.converged);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], 1.0, 1e-6);
}

class CgRandomSpd : public ::testing::TestWithParam<int> {};

TEST_P(CgRandomSpd, RecoversKnownSolution) {
  const int n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n));
  // SPD by construction: diagonally dominant symmetric matrix.
  CooBuilder coo(n);
  std::vector<double> row_abs(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < std::min(n, i + 4); ++j) {
      const double v = rng.NextDouble(-1.0, 1.0);
      coo.Add(i, j, v);
      coo.Add(j, i, v);
      row_abs[static_cast<std::size_t>(i)] += std::abs(v);
      row_abs[static_cast<std::size_t>(j)] += std::abs(v);
    }
  }
  for (int i = 0; i < n; ++i) {
    coo.Add(i, i, row_abs[static_cast<std::size_t>(i)] + 1.0);
  }
  const CsrMatrix a = CsrMatrix::FromCoo(coo);
  EXPECT_LT(a.SymmetryError(), 1e-14);

  std::vector<double> truth(static_cast<std::size_t>(n));
  for (auto& v : truth) v = rng.NextDouble(-10.0, 10.0);
  std::vector<double> b;
  a.Multiply(truth, &b);
  std::vector<double> x;
  const CgResult r = SolveCg(a, b, &x, {.max_iters = 2000, .rel_tolerance = 1e-12});
  ASSERT_TRUE(r.converged);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                truth[static_cast<std::size_t>(i)], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgRandomSpd, ::testing::Values(5, 20, 100, 400));


/// 2D Laplacian (5-point stencil) on an nx * ny grid: the same structure as
/// the FEA thermal matrices, where IC(0) is meant to earn its keep.
CsrMatrix Laplacian2d(int nx, int ny) {
  CooBuilder coo(nx * ny);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const int at = j * nx + i;
      coo.Add(at, at, 4.0 + 1e-3);  // small shift keeps it SPD
      if (i > 0) coo.Add(at, at - 1, -1.0);
      if (i + 1 < nx) coo.Add(at, at + 1, -1.0);
      if (j > 0) coo.Add(at, at - nx, -1.0);
      if (j + 1 < ny) coo.Add(at, at + nx, -1.0);
    }
  }
  return CsrMatrix::FromCoo(coo);
}

TEST(CgIc0, ConvergesAndBeatsJacobiOnLaplacian) {
  const CsrMatrix a = Laplacian2d(24, 24);
  std::vector<double> truth(static_cast<std::size_t>(a.Dim()), 0.0);
  util::Rng rng(7);
  for (auto& v : truth) v = rng.NextDouble(-1.0, 1.0);
  std::vector<double> b;
  a.Multiply(truth, &b);

  CgOptions opt;
  opt.rel_tolerance = 1e-10;
  std::vector<double> x_j;
  opt.preconditioner = PreconditionerKind::kJacobi;
  const CgResult rj = SolveCg(a, b, &x_j, opt);
  std::vector<double> x_ic;
  opt.preconditioner = PreconditionerKind::kIc0;
  const CgResult ric = SolveCg(a, b, &x_ic, opt);

  ASSERT_TRUE(rj.converged);
  ASSERT_TRUE(ric.converged);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(x_j[i], truth[i], 1e-6);
    EXPECT_NEAR(x_ic[i], truth[i], 1e-6);
  }
  // The point of IC(0): materially fewer iterations than Jacobi.
  EXPECT_LT(ric.iters, rj.iters);
}

TEST(CgIc0, CleanFactorNeedsNoShift) {
  const CsrMatrix a = Laplacian2d(8, 8);
  const CgPreconditioner p = CgPreconditioner::Build(a, PreconditionerKind::kIc0);
  EXPECT_EQ(p.kind(), PreconditionerKind::kIc0);
  EXPECT_FALSE(p.empty());
  EXPECT_DOUBLE_EQ(p.ic_shift(), 0.0);
}

TEST(CgIc0, PrebuiltPreconditionerReusesAcrossRhs) {
  const CsrMatrix a = Laplacian2d(16, 16);
  const CgPreconditioner p = CgPreconditioner::Build(a, PreconditionerKind::kIc0);
  util::Rng rng(11);
  CgOptions opt;
  opt.rel_tolerance = 1e-10;
  for (int rhs = 0; rhs < 3; ++rhs) {
    std::vector<double> truth(static_cast<std::size_t>(a.Dim()));
    for (auto& v : truth) v = rng.NextDouble(-5.0, 5.0);
    std::vector<double> b;
    a.Multiply(truth, &b);
    std::vector<double> x;
    const CgResult r = SolveCgPreconditioned(a, p, b, &x, opt);
    ASSERT_TRUE(r.converged) << "rhs " << rhs;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      EXPECT_NEAR(x[i], truth[i], 1e-6);
    }
  }
}

TEST(CgIc0, WarmStartFromSolutionExitsImmediately) {
  const CsrMatrix a = Laplacian2d(12, 12);
  std::vector<double> truth(static_cast<std::size_t>(a.Dim()), 1.0), b;
  a.Multiply(truth, &b);
  CgOptions opt;
  opt.preconditioner = PreconditionerKind::kIc0;
  std::vector<double> x;
  const CgResult cold = SolveCg(a, b, &x, opt);
  ASSERT_TRUE(cold.converged);
  EXPECT_GT(cold.iters, 0);
  // Seeding with the previous solution: the initial residual is already
  // below tolerance, so the solve must early-exit without iterating.
  const CgResult warm = SolveCg(a, b, &x, opt);
  EXPECT_TRUE(warm.converged);
  EXPECT_EQ(warm.iters, 0);
}

TEST(CgIc0, MatchesJacobiBitwiseAcrossThreadCounts) {
  // The determinism contract: for a fixed preconditioner, the solution bytes
  // do not depend on the thread count.
  const CsrMatrix a = Laplacian2d(10, 14);
  std::vector<double> truth(static_cast<std::size_t>(a.Dim())), b;
  util::Rng rng(3);
  for (auto& v : truth) v = rng.NextDouble(-2.0, 2.0);
  a.Multiply(truth, &b);
  for (const PreconditionerKind kind :
       {PreconditionerKind::kJacobi, PreconditionerKind::kIc0}) {
    CgOptions opt;
    opt.preconditioner = kind;
    opt.threads = 1;
    std::vector<double> x1;
    const CgResult r1 = SolveCg(a, b, &x1, opt);
    opt.threads = 4;
    std::vector<double> x4;
    const CgResult r4 = SolveCg(a, b, &x4, opt);
    ASSERT_TRUE(r1.converged);
    EXPECT_EQ(r1.iters, r4.iters);
    for (std::size_t i = 0; i < x1.size(); ++i) {
      EXPECT_EQ(x1[i], x4[i]) << PreconditionerName(kind) << " row " << i;
    }
  }
}

}  // namespace
}  // namespace p3d::linalg
