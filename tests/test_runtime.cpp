#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/parallel.h"
#include "runtime/stream.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace p3d::runtime {
namespace {

TEST(ThreadPool, ResolveThreadsDefaultsToHardware) {
  EXPECT_GE(ResolveThreads(0), 1);
  EXPECT_GE(ResolveThreads(-3), 1);
  EXPECT_EQ(ResolveThreads(5), 5);
}

TEST(ThreadPool, RunChunksExecutesEveryChunkOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);  // per-chunk slots: no two chunks collide
  pool.RunChunks(1000, [&](std::int64_t c, int slot) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, pool.NumThreads());
    hits[static_cast<std::size_t>(c)] += 1;
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, NestedRunChunksCompletesInline) {
  ThreadPool pool(4);
  std::vector<int> outer(8, 0);
  std::vector<std::vector<int>> inner(8, std::vector<int>(16, 0));
  pool.RunChunks(8, [&](std::int64_t c, int /*slot*/) {
    outer[static_cast<std::size_t>(c)] += 1;
    // A nested call from a worker must not deadlock; it runs inline.
    pool.RunChunks(16, [&](std::int64_t k, int /*s*/) {
      inner[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)] += 1;
    });
  });
  for (const int h : outer) EXPECT_EQ(h, 1);
  for (const auto& row : inner) {
    for (const int h : row) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.RunChunks(64,
                              [&](std::int64_t c, int) {
                                if (c == 13) throw std::runtime_error("boom");
                              }),
               std::runtime_error);
  // The pool must stay usable after a failed job.
  std::vector<int> hits(32, 0);
  pool.RunChunks(32, [&](std::int64_t c, int) {
    hits[static_cast<std::size_t>(c)] += 1;
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, SharedPoolSerialIsNull) {
  EXPECT_EQ(SharedPool(1), nullptr);
  ThreadPool* p4 = SharedPool(4);
  ASSERT_NE(p4, nullptr);
  EXPECT_EQ(p4->NumThreads(), 4);
  EXPECT_EQ(SharedPool(4), p4);  // same size: reused, not recreated
}

TEST(ThreadBudget, DefaultIsUnlimited) {
  EXPECT_EQ(CurrentThreadBudget(), 0);
  EXPECT_EQ(EffectiveThreads(4), 4);
}

TEST(ThreadBudget, ScopedBudgetClampsAndRestores) {
  {
    ScopedThreadBudget budget(2);
    EXPECT_EQ(CurrentThreadBudget(), 2);
    EXPECT_EQ(EffectiveThreads(8), 2);
    EXPECT_EQ(EffectiveThreads(1), 1);  // only clamps down
    // Budget 1 makes SharedPool resolve serial — the serve engine's
    // no-oversubscription guarantee rides on this.
    ScopedThreadBudget inner(1);
    EXPECT_EQ(EffectiveThreads(8), 1);
    EXPECT_EQ(SharedPool(8), nullptr);
  }
  EXPECT_EQ(CurrentThreadBudget(), 0);
}

TEST(ThreadBudget, NestedScopesTakeTheMinimum) {
  ScopedThreadBudget outer(2);
  {
    // A nested wider budget cannot widen the outer constraint.
    ScopedThreadBudget inner(8);
    EXPECT_EQ(CurrentThreadBudget(), 2);
  }
  EXPECT_EQ(CurrentThreadBudget(), 2);
  {
    ScopedThreadBudget inner(1);
    EXPECT_EQ(CurrentThreadBudget(), 1);
  }
  EXPECT_EQ(CurrentThreadBudget(), 2);
}

TEST(ThreadBudget, BudgetIsThreadLocal) {
  ScopedThreadBudget budget(1);
  EXPECT_EQ(CurrentThreadBudget(), 1);
  int seen = -1;
  std::thread other([&] { seen = CurrentThreadBudget(); });
  other.join();
  EXPECT_EQ(seen, 0);  // a fresh thread starts unbudgeted
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (const std::int64_t grain : {1, 3, 64, 1000}) {
      std::vector<int> hits(777, 0);  // per-index writes: race-free by contract
      ParallelFor(&pool, 0, 777, grain,
                  [&](std::int64_t i) { hits[static_cast<std::size_t>(i)] += 1; });
      for (const int h : hits) EXPECT_EQ(h, 1);
    }
  }
}

TEST(ParallelFor, HandlesEmptyAndOffsetRanges) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelFor(&pool, 5, 5, 4, [&](std::int64_t) { ++calls; });
  ParallelFor(&pool, 9, 3, 4, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<int> hits(20, 0);
  ParallelFor(nullptr, 10, 20, 4,
              [&](std::int64_t i) { hits[static_cast<std::size_t>(i)] += 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], i >= 10 ? 1 : 0);
  }
}

TEST(ParallelForChunks, ChunkBoundariesAreAFunctionOfGrainOnly) {
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks(4);
    ParallelForChunks(&pool, 0, 10, 3,
                      [&](std::int64_t lo, std::int64_t hi, int /*slot*/) {
                        chunks[static_cast<std::size_t>(lo / 3)] = {lo, hi};
                      });
    const std::vector<std::pair<std::int64_t, std::int64_t>> want = {
        {0, 3}, {3, 6}, {6, 9}, {9, 10}};
    EXPECT_EQ(chunks, want);
  }
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  // Doubles with wildly mixed magnitudes: any reassociation of the sum
  // changes the result, so exact equality proves the chunking and the
  // combination order are independent of the thread count.
  std::vector<double> v(100000);
  util::Rng rng(11);
  for (double& d : v) {
    d = (rng.NextDouble() - 0.5) * std::pow(10.0, rng.NextInt(-12, 12));
  }
  auto sum_with = [&](ThreadPool* pool) {
    return ParallelReduce(
        pool, 0, static_cast<std::int64_t>(v.size()), 1024, 0.0,
        [&](std::int64_t lo, std::int64_t hi) {
          double acc = 0.0;
          for (std::int64_t i = lo; i < hi; ++i) {
            acc += v[static_cast<std::size_t>(i)];
          }
          return acc;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = sum_with(nullptr);
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    const double parallel = sum_with(&pool);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;  // bitwise
  }
}

TEST(ParallelReduce, CombinesPartialsInChunkOrder) {
  ThreadPool pool(8);
  const std::vector<std::int64_t> order = ParallelReduce(
      &pool, 0, 100, 7, std::vector<std::int64_t>{},
      [](std::int64_t lo, std::int64_t) { return std::vector<std::int64_t>{lo}; },
      [](std::vector<std::int64_t> acc, std::vector<std::int64_t> part) {
        acc.insert(acc.end(), part.begin(), part.end());
        return acc;
      });
  ASSERT_EQ(order.size(), 15u);
  for (std::size_t c = 0; c < order.size(); ++c) {
    EXPECT_EQ(order[c], static_cast<std::int64_t>(c) * 7);
  }
}

TEST(DeriveStream, ReproducibleAndIndexed) {
  for (std::uint64_t task = 0; task < 64; ++task) {
    util::Rng a = DeriveStream(99, task);
    util::Rng b = DeriveStream(99, task);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(DeriveStream, StreamsAreIndependent) {
  // Distinct tasks (and distinct seeds) must yield distinct streams; collect
  // the first outputs of many streams and require them all unique.
  std::set<std::uint64_t> first;
  for (std::uint64_t task = 0; task < 10000; ++task) {
    first.insert(DeriveStream(7, task).NextU64());
  }
  EXPECT_EQ(first.size(), 10000u);
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
  // A derived stream must not be a shifted copy of its neighbour: compare a
  // window of outputs pairwise.
  util::Rng s0 = DeriveStream(7, 0);
  util::Rng s1 = DeriveStream(7, 1);
  int matches = 0;
  std::vector<std::uint64_t> w0, w1;
  for (int i = 0; i < 64; ++i) w0.push_back(s0.NextU64());
  for (int i = 0; i < 64; ++i) w1.push_back(s1.NextU64());
  for (const std::uint64_t a : w0) {
    for (const std::uint64_t b : w1) {
      if (a == b) ++matches;
    }
  }
  EXPECT_EQ(matches, 0);
}

}  // namespace
}  // namespace p3d::runtime
