// Property-based fuzz harness over the full placement flow (ISSUE 2
// acceptance): 25 seeded randomized benchmarks + configurations, each run
// with audit_level=paranoid, must produce zero audit violations, a legal
// final placement, and a byte-identical threads=1/audit-off rerun. On
// failure the harness shrinks and prints a one-line repro.
//
// Seeds are SeedBase()..SeedBase()+24; the nightly CI job rolls
// P3D_FUZZ_SEED_BASE so coverage accumulates across runs while any single
// run stays reproducible from the logged repro line.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "check/fuzz.h"

namespace p3d::check {
namespace {

std::uint64_t SeedBase() {
  const char* env = std::getenv("P3D_FUZZ_SEED_BASE");
  if (env == nullptr || env[0] == '\0') return 1;
  const unsigned long long v = std::strtoull(env, nullptr, 10);
  return v == 0 ? 1 : static_cast<std::uint64_t>(v);
}

class FuzzFlow : public ::testing::TestWithParam<int> {};

TEST_P(FuzzFlow, SeededFlowPassesParanoidAudit) {
  const std::uint64_t seed =
      SeedBase() + static_cast<std::uint64_t>(GetParam());
  const FuzzOutcome o = RunSeed(seed);
  EXPECT_TRUE(o.ok) << "fuzz repro " << o.repro << "\n"
                    << o.failure << "\n"
                    << o.audit.Summary();
  // Paranoid mode must actually have replayed the flow's commit history.
  EXPECT_GT(o.audit.replayed_ops, 0u) << o.repro;
  EXPECT_GT(o.audit.phases_audited, 2) << o.repro;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFlow, ::testing::Range(0, 25));

}  // namespace
}  // namespace p3d::check
