#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "io/bookshelf.h"
#include "io/synthetic.h"
#include "util/log.h"

namespace p3d::io {
namespace {

class BookshelfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "p3d_bs_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    const std::string cmd = "mkdir -p " + dir_;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream f(dir_ + "/" + name);
    f << content;
  }

  std::string dir_;
};

constexpr char kNodes[] = R"(UCLA nodes 1.0
# comment line

NumNodes : 4
NumTerminals : 1
  a 2 1
  b 3 1
  c 4 1
  p0 10 10 terminal
)";

constexpr char kNets[] = R"(UCLA nets 1.0

NumNets : 2
NumPins : 5
NetDegree : 3 n0
  a O : 0.5 0
  b I : -0.5 0
  c I
NetDegree : 2
  b O
  p0 I
)";

constexpr char kPl[] = R"(UCLA pl 1.0

a 10 20 : N
b 30 40 : N 2
c 0 0 : N
p0 100 100 : N /FIXED
)";

constexpr char kScl[] = R"(UCLA scl 1.0

NumRows : 2
CoreRow Horizontal
  Coordinate : 0
  Height : 12
  Sitewidth : 1
  SubrowOrigin : 0 NumSites : 100
End
CoreRow Horizontal
  Coordinate : 12
  Height : 12
  Sitewidth : 2
  SubrowOrigin : 5 NumSites : 50
End
)";

TEST_F(BookshelfTest, ParseNodes) {
  WriteFile("d.nodes", kNodes);
  netlist::Netlist nl;
  ASSERT_TRUE(ParseNodesFile(dir_ + "/d.nodes", 1e-6, &nl).ok());
  ASSERT_EQ(nl.NumCells(), 4);
  EXPECT_EQ(nl.cell(0).name, "a");
  EXPECT_DOUBLE_EQ(nl.cell(0).width, 2e-6);
  EXPECT_DOUBLE_EQ(nl.cell(1).height, 1e-6);
  EXPECT_FALSE(nl.cell(0).fixed);
  EXPECT_TRUE(nl.cell(3).fixed);
}

TEST_F(BookshelfTest, ParseNetsWithDirectionsAndOffsets) {
  WriteFile("d.nodes", kNodes);
  WriteFile("d.nets", kNets);
  netlist::Netlist nl;
  ASSERT_TRUE(ParseNodesFile(dir_ + "/d.nodes", 1e-6, &nl).ok());
  ASSERT_TRUE(ParseNetsFile(dir_ + "/d.nets", 1e-6, &nl).ok());
  ASSERT_TRUE(nl.Finalize());
  ASSERT_EQ(nl.NumNets(), 2);
  EXPECT_EQ(nl.net(0).name, "n0");
  EXPECT_EQ(nl.net(1).name, "net1");  // auto-named
  const auto pins = nl.NetPins(0);
  ASSERT_EQ(pins.size(), 3u);
  EXPECT_EQ(pins[0].dir, netlist::PinDir::kOutput);
  EXPECT_DOUBLE_EQ(pins[0].dx, 0.5e-6);
  EXPECT_EQ(pins[1].dir, netlist::PinDir::kInput);
  EXPECT_DOUBLE_EQ(pins[1].dx, -0.5e-6);
  EXPECT_EQ(nl.DriverCell(0), 0);
  EXPECT_EQ(nl.DriverCell(1), 1);
}

TEST_F(BookshelfTest, ParsePlWithLayerColumn) {
  WriteFile("d.nodes", kNodes);
  WriteFile("d.nets", kNets);
  WriteFile("d.pl", kPl);
  netlist::Netlist nl;
  ASSERT_TRUE(ParseNodesFile(dir_ + "/d.nodes", 1e-6, &nl).ok());
  ASSERT_TRUE(ParseNetsFile(dir_ + "/d.nets", 1e-6, &nl).ok());
  ASSERT_TRUE(nl.Finalize());
  std::vector<double> x, y;
  std::vector<int> layer;
  ASSERT_TRUE(ParsePlFile(dir_ + "/d.pl", 1e-6, nl, &x, &y, &layer).ok());
  EXPECT_DOUBLE_EQ(x[0], 10e-6);
  EXPECT_DOUBLE_EQ(y[0], 20e-6);
  EXPECT_EQ(layer[0], 0);
  EXPECT_EQ(layer[1], 2);  // explicit layer column
  EXPECT_DOUBLE_EQ(x[3], 100e-6);
}

TEST_F(BookshelfTest, ParseScl) {
  WriteFile("d.scl", kScl);
  std::vector<BookshelfRow> rows;
  ASSERT_TRUE(ParseSclFile(dir_ + "/d.scl", &rows).ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].y, 0.0);
  EXPECT_DOUBLE_EQ(rows[0].height, 12.0);
  EXPECT_DOUBLE_EQ(rows[0].width, 100.0);
  EXPECT_DOUBLE_EQ(rows[1].x, 5.0);
  EXPECT_DOUBLE_EQ(rows[1].width, 100.0);  // 50 sites * sitewidth 2
}

TEST_F(BookshelfTest, LoadAuxFullDesign) {
  WriteFile("d.nodes", kNodes);
  WriteFile("d.nets", kNets);
  WriteFile("d.pl", kPl);
  WriteFile("d.scl", kScl);
  WriteFile("d.aux", "RowBasedPlacement : d.nodes d.nets d.pl d.scl\n");
  BookshelfDesign design;
  ASSERT_TRUE(LoadBookshelf(dir_ + "/d.aux", 1e-6, &design).ok());
  EXPECT_EQ(design.netlist.NumCells(), 4);
  EXPECT_EQ(design.netlist.NumNets(), 2);
  EXPECT_EQ(design.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(design.x[1], 30e-6);
}

TEST_F(BookshelfTest, MissingFileFails) {
  util::ScopedLogLevel quiet(util::LogLevel::kSilent);
  netlist::Netlist nl;
  const util::Status nodes = ParseNodesFile(dir_ + "/nope.nodes", 1e-6, &nl);
  EXPECT_EQ(nodes.code(), util::StatusCode::kIoError) << nodes.ToString();
  EXPECT_NE(nodes.message().find("nope.nodes"), std::string::npos);
  BookshelfDesign design;
  const util::Status aux = LoadBookshelf(dir_ + "/nope.aux", 1e-6, &design);
  EXPECT_EQ(aux.code(), util::StatusCode::kIoError) << aux.ToString();
}

TEST_F(BookshelfTest, AuxWithoutNodesFails) {
  util::ScopedLogLevel quiet(util::LogLevel::kSilent);
  WriteFile("d.aux", "RowBasedPlacement : only.pl\n");
  BookshelfDesign design;
  EXPECT_FALSE(LoadBookshelf(dir_ + "/d.aux", 1e-6, &design).ok());
}

TEST_F(BookshelfTest, UnknownCellInNetsFails) {
  util::ScopedLogLevel quiet(util::LogLevel::kSilent);
  WriteFile("d.nodes", "NumNodes : 1\nNumTerminals : 0\na 1 1\n");
  WriteFile("d.nets", "NumNets : 1\nNumPins : 1\nNetDegree : 1 n\n  ghost I\n");
  netlist::Netlist nl;
  ASSERT_TRUE(ParseNodesFile(dir_ + "/d.nodes", 1e-6, &nl).ok());
  const util::Status s = ParseNetsFile(dir_ + "/d.nets", 1e-6, &nl);
  EXPECT_EQ(s.code(), util::StatusCode::kParseError) << s.ToString();
  EXPECT_NE(s.message().find("ghost"), std::string::npos) << s.ToString();
}

TEST_F(BookshelfTest, WriteReadRoundTrip) {
  WriteFile("d.nodes", kNodes);
  WriteFile("d.nets", kNets);
  netlist::Netlist nl;
  ASSERT_TRUE(ParseNodesFile(dir_ + "/d.nodes", 1e-6, &nl).ok());
  ASSERT_TRUE(ParseNetsFile(dir_ + "/d.nets", 1e-6, &nl).ok());
  ASSERT_TRUE(nl.Finalize());

  std::vector<double> x = {1e-6, 2e-6, 3e-6, 4e-6};
  std::vector<double> y = {5e-6, 6e-6, 7e-6, 8e-6};
  std::vector<int> layer = {0, 1, 2, 3};
  ASSERT_TRUE(WritePlFile(dir_ + "/out.pl", nl, x, y, layer, 1e-6));

  std::vector<double> x2, y2;
  std::vector<int> layer2;
  ASSERT_TRUE(ParsePlFile(dir_ + "/out.pl", 1e-6, nl, &x2, &y2, &layer2).ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x2[i], x[i], 1e-12) << i;
    EXPECT_NEAR(y2[i], y[i], 1e-12) << i;
    EXPECT_EQ(layer2[i], layer[i]) << i;
  }
}

TEST_F(BookshelfTest, MalformedInputsDoNotCrash) {
  util::ScopedLogLevel quiet(util::LogLevel::kSilent);
  // A grab-bag of malformed files: parsers may reject them (false) or
  // salvage what they can (true), but must never crash.
  const char* bad_nodes[] = {
      "",
      "NumNodes : -5\n",
      "garbage line\n",
      "a 1\n",                       // too few columns
      "NumNodes : 1\n a width h\n",  // non-numeric dims -> atof 0
  };
  for (const char* content : bad_nodes) {
    WriteFile("bad.nodes", content);
    netlist::Netlist nl;
    (void)ParseNodesFile(dir_ + "/bad.nodes", 1e-6, &nl);
  }

  const char* bad_nets[] = {
      "NetDegree : 2 n\n",               // pins missing entirely
      "stray_pin I\n",                   // pin before any net
      "NumPins : 99\nNetDegree : 1 n\n", // wrong counts
  };
  for (const char* content : bad_nets) {
    WriteFile("bad.nodes", "NumNodes : 1\nNumTerminals : 0\nstray_pin 1 1\n");
    WriteFile("bad.nets", content);
    netlist::Netlist nl;
    ASSERT_TRUE(ParseNodesFile(dir_ + "/bad.nodes", 1e-6, &nl).ok());
    (void)ParseNetsFile(dir_ + "/bad.nets", 1e-6, &nl);
  }

  // .pl with unknown cells and truncated rows.
  WriteFile("bad.pl", "ghost 1 2 : N\nshort\n");
  netlist::Netlist nl;
  nl.AddCell("a", 1e-6, 1e-6);
  ASSERT_TRUE(nl.Finalize());
  std::vector<double> x, y;
  std::vector<int> layer;
  EXPECT_TRUE(ParsePlFile(dir_ + "/bad.pl", 1e-6, nl, &x, &y, &layer).ok());

  // .scl with an unterminated CoreRow.
  WriteFile("bad.scl", "CoreRow Horizontal\n  Coordinate : 1\n");
  std::vector<BookshelfRow> rows;
  EXPECT_TRUE(ParseSclFile(dir_ + "/bad.scl", &rows).ok());
  EXPECT_TRUE(rows.empty());
}

TEST_F(BookshelfTest, FullDesignExportRoundTrip) {
  // Generate a synthetic circuit, export it as a complete Bookshelf design,
  // re-load it, and check the netlist and placement survive.
  SyntheticSpec spec;
  spec.name = "exp";
  spec.num_cells = 120;
  spec.total_area_m2 = 120 * 4.9e-12;
  spec.seed = 8;
  const netlist::Netlist nl = Generate(spec);
  const place::Chip chip = *place::Chip::Build(nl, 4, 0.05, 0.25);
  place::Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    p.x[i] = (c % 9 + 0.5) * chip.width() / 9;
    p.y[i] = chip.RowCenterY(c % chip.num_rows());
    p.layer[i] = c % 4;
  }
  ASSERT_TRUE(WriteBookshelf(dir_, "exp", nl, 1e-6, &chip, &p));

  BookshelfDesign design;
  ASSERT_TRUE(LoadBookshelf(dir_ + "/exp.aux", 1e-6, &design).ok());
  ASSERT_EQ(design.netlist.NumCells(), nl.NumCells());
  ASSERT_EQ(design.netlist.NumNets(), nl.NumNets());
  ASSERT_EQ(design.netlist.NumPins(), nl.NumPins());
  EXPECT_EQ(design.rows.size(), static_cast<std::size_t>(chip.num_rows()));
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    EXPECT_EQ(design.netlist.cell(c).name, nl.cell(c).name);
    EXPECT_NEAR(design.netlist.cell(c).width, nl.cell(c).width,
                nl.cell(c).width * 1e-9);
    EXPECT_NEAR(design.x[i], p.x[i], 1e-11) << c;
    EXPECT_NEAR(design.y[i], p.y[i], 1e-11) << c;
    EXPECT_EQ(design.layer[i], p.layer[i]) << c;
  }
  // Drivers preserved through the direction column.
  for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
    EXPECT_EQ(design.netlist.DriverCell(n), nl.DriverCell(n)) << n;
  }
}

TEST_F(BookshelfTest, FullDesignExportWithoutChipOrPlacement) {
  SyntheticSpec spec;
  spec.name = "bare";
  spec.num_cells = 40;
  spec.total_area_m2 = 40 * 4.9e-12;
  spec.seed = 9;
  const netlist::Netlist nl = Generate(spec);
  ASSERT_TRUE(WriteBookshelf(dir_, "bare", nl, 1e-6));
  BookshelfDesign design;
  ASSERT_TRUE(LoadBookshelf(dir_ + "/bare.aux", 1e-6, &design).ok());
  EXPECT_EQ(design.netlist.NumCells(), 40);
  EXPECT_TRUE(design.rows.empty());
  EXPECT_DOUBLE_EQ(design.x[0], 0.0);
}

}  // namespace
}  // namespace p3d::io
