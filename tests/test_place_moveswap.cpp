#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "io/synthetic.h"
#include "place/bins.h"
#include "place/moveswap.h"
#include "util/rng.h"

namespace p3d::place {
namespace {

struct Fixture {
  netlist::Netlist nl;
  Chip chip;
  PlacerParams params;
  ObjectiveEvaluator eval;

  explicit Fixture(int cells = 500, double alpha_temp = 0.0)
      : nl(MakeNetlist(cells)),
        chip(*Chip::Build(nl, 4, 0.05, 0.25)),
        params(MakeParams(alpha_temp)),
        eval(nl, chip, params) {}

  static netlist::Netlist MakeNetlist(int cells) {
    io::SyntheticSpec spec;
    spec.name = "msw";
    spec.num_cells = cells;
    spec.total_area_m2 = cells * 4.9e-12;
    spec.seed = 17;
    return io::Generate(spec);
  }
  static PlacerParams MakeParams(double alpha_temp) {
    PlacerParams p;
    p.num_layers = 4;
    p.alpha_ilv = 1e-5;
    p.alpha_temp = alpha_temp;
    p.SyncStack();
    return p;
  }

  void RandomStart(std::uint64_t seed) {
    util::Rng rng(seed);
    Placement p;
    p.Resize(static_cast<std::size_t>(nl.NumCells()));
    for (std::size_t i = 0; i < p.size(); ++i) {
      p.x[i] = rng.NextDouble(0.0, chip.width());
      p.y[i] = rng.NextDouble(0.0, chip.height());
      p.layer[i] = rng.NextInt(0, 3);
    }
    eval.SetPlacement(p);
  }
};

TEST(MoveSwap, LocalPassNeverWorsensObjective) {
  Fixture f;
  f.RandomStart(1);
  const double before = f.eval.Total();
  MoveSwapOptimizer mso(f.eval, 2);
  const MoveSwapStats stats = mso.RunLocal();
  EXPECT_LE(f.eval.Total(), before + before * 1e-12);
  EXPECT_NEAR(before - f.eval.Total(), stats.gain, before * 1e-9);
}

TEST(MoveSwap, GlobalPassNeverWorsensObjective) {
  Fixture f;
  f.RandomStart(3);
  const double before = f.eval.Total();
  MoveSwapOptimizer mso(f.eval, 4);
  const MoveSwapStats stats = mso.RunGlobal(27);
  EXPECT_LE(f.eval.Total(), before + before * 1e-12);
  EXPECT_GE(stats.gain, 0.0);
}

TEST(MoveSwap, GlobalPassImprovesRandomStartSubstantially) {
  Fixture f(800);
  f.RandomStart(5);
  const double before = f.eval.Total();
  MoveSwapOptimizer mso(f.eval, 6);
  mso.RunGlobal(27);
  mso.RunLocal();
  // From a random start, optimal-region moves recover a lot of wirelength.
  EXPECT_LT(f.eval.Total(), 0.8 * before);
}

TEST(MoveSwap, ReportsActionCounts) {
  Fixture f;
  f.RandomStart(7);
  MoveSwapOptimizer mso(f.eval, 8);
  const MoveSwapStats stats = mso.RunGlobal(27);
  EXPECT_GT(stats.moves + stats.swaps, 0);
}

TEST(MoveSwap, IncrementalStateStaysConsistent) {
  Fixture f(300, /*alpha_temp=*/2e-6);
  f.RandomStart(9);
  MoveSwapOptimizer mso(f.eval, 10);
  mso.RunGlobal(27);
  mso.RunLocal();
  const double incremental = f.eval.Total();
  const double full = f.eval.RecomputeFull();
  EXPECT_NEAR(incremental, full, std::abs(full) * 1e-9);
}

TEST(MoveSwap, CellsStayInsideChip) {
  Fixture f;
  f.RandomStart(11);
  MoveSwapOptimizer mso(f.eval, 12);
  mso.RunGlobal(64);
  mso.RunLocal();
  const Placement& p = f.eval.placement();
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_GE(p.x[i], 0.0);
    EXPECT_LE(p.x[i], f.chip.width());
    EXPECT_GE(p.y[i], 0.0);
    EXPECT_LE(p.y[i], f.chip.height());
    EXPECT_GE(p.layer[i], 0);
    EXPECT_LT(p.layer[i], 4);
  }
}

class MoveSwapTargetRegion : public ::testing::TestWithParam<int> {};

TEST_P(MoveSwapTargetRegion, LargerRegionsFindAtLeastAsMuchGain) {
  // Not strictly guaranteed per-run, but region=9 vs region=125 on the same
  // start should show a clear trend; we only assert the big-region result
  // is not drastically worse.
  const int bins = GetParam();
  Fixture f(400);
  f.RandomStart(13);
  MoveSwapOptimizer mso(f.eval, 14);
  const MoveSwapStats stats = mso.RunGlobal(bins);
  EXPECT_GT(stats.gain, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RegionSizes, MoveSwapTargetRegion,
                         ::testing::Values(9, 27, 64, 125));

// ----- windowed parallel schedule (DESIGN.md §5) ---------------------------

TEST(MoveSwap, ThreadCountDoesNotChangePlacementBytes) {
  // The determinism contract of the windowed propose/commit schedule: the
  // exact same pass sequence at 1, 3, and 4 legalization threads must land
  // on the thread=1 placement to the byte.
  Placement reference;
  for (const int threads : {1, 3, 4}) {
    Fixture f(600);
    f.params.legalize_threads = threads;
    ObjectiveEvaluator eval(f.nl, f.chip, f.params);
    util::Rng rng(99);
    Placement p;
    p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
    for (std::size_t i = 0; i < p.size(); ++i) {
      p.x[i] = rng.NextDouble(0.0, f.chip.width());
      p.y[i] = rng.NextDouble(0.0, f.chip.height());
      p.layer[i] = rng.NextInt(0, 3);
    }
    eval.SetPlacement(p);
    MoveSwapOptimizer mso(eval, 7);
    mso.RunGlobal(27);
    mso.RunLocal();
    if (threads == 1) {
      reference = eval.placement();
    } else {
      EXPECT_EQ(reference.x, eval.placement().x) << "threads=" << threads;
      EXPECT_EQ(reference.y, eval.placement().y) << "threads=" << threads;
      EXPECT_EQ(reference.layer, eval.placement().layer)
          << "threads=" << threads;
    }
  }
}

class WindowTilingShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WindowTilingShapes, CoversEveryBinExactlyOnce) {
  const auto [nx, ny, wb] = GetParam();
  const WindowTiling tiling(nx, ny, wb);
  std::vector<int> covered(static_cast<std::size_t>(nx * ny), 0);
  for (int w = 0; w < tiling.NumWindows(); ++w) {
    const BinWindow& win = tiling.window(w);
    EXPECT_LT(win.x0, win.x1);
    EXPECT_LT(win.y0, win.y1);
    EXPECT_LE(win.x1, nx);
    EXPECT_LE(win.y1, ny);
    EXPECT_EQ(win.color, tiling.colors()[static_cast<std::size_t>(w)]);
    EXPECT_GE(win.color, 0);
    EXPECT_LT(win.color, WindowTiling::kNumColors);
    for (int by = win.y0; by < win.y1; ++by) {
      for (int bx = win.x0; bx < win.x1; ++bx) {
        covered[static_cast<std::size_t>(by * nx + bx)] += 1;
        EXPECT_EQ(tiling.WindowOf(bx, by), w)
            << "bin (" << bx << "," << by << ")";
      }
    }
  }
  for (int b = 0; b < nx * ny; ++b) {
    EXPECT_EQ(covered[static_cast<std::size_t>(b)], 1) << "bin " << b;
  }
}

TEST_P(WindowTilingShapes, SameColorWindowsAreSeparated) {
  // Two windows of one color must be at least window_bins apart along x or
  // y, so halo-expanded candidate regions of concurrently-proposing windows
  // can never touch the same bin.
  const auto [nx, ny, wb] = GetParam();
  const WindowTiling tiling(nx, ny, wb);
  for (int a = 0; a < tiling.NumWindows(); ++a) {
    for (int b = a + 1; b < tiling.NumWindows(); ++b) {
      const BinWindow& wa = tiling.window(a);
      const BinWindow& wb2 = tiling.window(b);
      if (wa.color != wb2.color) continue;
      const int gap_x = std::max(wa.x0 - wb2.x1, wb2.x0 - wa.x1);
      const int gap_y = std::max(wa.y0 - wb2.y1, wb2.y0 - wa.y1);
      EXPECT_TRUE(gap_x >= tiling.window_bins() || gap_y >= tiling.window_bins())
          << "windows " << a << " and " << b << " share color " << wa.color
          << " but are only gap_x=" << gap_x << " gap_y=" << gap_y << " apart";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, WindowTilingShapes,
    ::testing::Values(std::tuple{16, 16, 8}, std::tuple{17, 23, 8},
                      std::tuple{7, 5, 8}, std::tuple{33, 9, 4},
                      std::tuple{2, 2, 2}, std::tuple{1, 1, 8}));

// ----- epsilon policy (params.h, DESIGN.md §5) ------------------------------

TEST(EpsilonPolicy, StrictImprovementRejectsDeadZoneDeltas) {
  // Deltas in the dead zone [-kStrictImprovementEps, inf) are "no
  // improvement" to EVERY engine. -1e-20 was an improvement to rowopt's old
  // 1e-30 threshold while moveswap refused it — the churn this sweep kills.
  EXPECT_FALSE(StrictlyImproves(0.0));
  EXPECT_FALSE(StrictlyImproves(-1e-20));
  EXPECT_FALSE(StrictlyImproves(-kStrictImprovementEps));
  EXPECT_FALSE(StrictlyImproves(1e-6));
  EXPECT_TRUE(StrictlyImproves(-1e-17));
  EXPECT_TRUE(StrictlyImproves(-1.0));
}

TEST(EpsilonPolicy, TieBreakKeepsEarlierCandidate) {
  const double incumbent = -3.0e-7;
  // A challenger must beat the incumbent by MORE than kTieBreakEps; exact
  // ties and sub-epsilon wins keep the earlier candidate, so the winner is
  // independent of candidate evaluation concurrency.
  EXPECT_FALSE(BeatsIncumbent(incumbent, incumbent));
  EXPECT_FALSE(BeatsIncumbent(incumbent - 1e-20, incumbent));
  EXPECT_FALSE(BeatsIncumbent(incumbent - kTieBreakEps, incumbent));
  EXPECT_TRUE(BeatsIncumbent(incumbent - 1e-16, incumbent));
  EXPECT_FALSE(BeatsIncumbent(incumbent + 1e-16, incumbent));
}

TEST(EpsilonPolicy, ConvergedLocalPassDoesNotChurn) {
  // Once a local pass accepts nothing, the state is a fixed point: every
  // candidate delta sits in the shared dead zone, so further passes must
  // accept nothing and move nothing — regardless of the per-pass visit
  // order reshuffle. An engine accepting noise deltas another engine
  // refuses would oscillate here instead.
  Fixture f(300);
  f.RandomStart(23);
  MoveSwapOptimizer mso(f.eval, 24);
  int passes = 0;
  MoveSwapStats stats;
  do {
    stats = mso.RunLocal();
  } while (stats.moves + stats.swaps > 0 && ++passes < 60);
  ASSERT_EQ(stats.moves + stats.swaps, 0) << "local pass never converged";
  const Placement before = f.eval.placement();
  for (int i = 0; i < 3; ++i) {
    const MoveSwapStats again = mso.RunLocal();
    EXPECT_EQ(again.moves, 0);
    EXPECT_EQ(again.swaps, 0);
    EXPECT_EQ(again.gain, 0.0);
  }
  EXPECT_EQ(before.x, f.eval.placement().x);
  EXPECT_EQ(before.y, f.eval.placement().y);
  EXPECT_EQ(before.layer, f.eval.placement().layer);
}

// ----- bin-occupancy drift (the fuzz seed behind kBinAreaRelTol) ------------

TEST(BinGridFuzz, SeededChurnDriftStaysUnderToleranceAndResyncIsCanonical) {
  // Incremental MoveCell bookkeeping accumulates area in commit order;
  // moving cells out and back lands on the same occupancy through a
  // different accumulation order, so the running areas drift from the
  // rebuild-order bytes. The capacity tolerance must cover that drift, and
  // ResyncAreas must restore the canonical (fresh-Rebuild) bytes exactly.
  Fixture f(400);
  BinGrid grid(f.chip, f.nl.AvgCellWidth(), f.nl.AvgCellHeight());
  BinGrid canonical(f.chip, f.nl.AvgCellWidth(), f.nl.AvgCellHeight());
  util::Rng rng(0x5eedf00d);
  Placement p;
  p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = rng.NextDouble(0.0, f.chip.width());
    p.y[i] = rng.NextDouble(0.0, f.chip.height());
    p.layer[i] = rng.NextInt(0, 3);
  }
  grid.Rebuild(f.nl, p);
  canonical.Rebuild(f.nl, p);

  // Net-zero churn: every excursion moves a cell to a random bin and
  // straight back, so the final occupancy equals the rebuilt one while the
  // running float sums walk through 40k foreign-magnitude additions.
  for (int iter = 0; iter < 20000; ++iter) {
    const std::int32_t cell = rng.NextInt(0, f.nl.NumCells() - 1);
    if (f.nl.cell(cell).fixed) continue;
    const std::size_t ci = static_cast<std::size_t>(cell);
    const int home = grid.BinOf(p.x[ci], p.y[ci], p.layer[ci]);
    const int away = rng.NextInt(0, grid.NumBins() - 1);
    if (away == home) continue;
    const double area = f.nl.cell(cell).Area();
    grid.MoveCell(cell, area, home, away);
    grid.MoveCell(cell, area, away, home);
  }

  double max_drift = 0.0;
  for (int b = 0; b < grid.NumBins(); ++b) {
    max_drift = std::max(max_drift, std::abs(grid.Area(b) - canonical.Area(b)));
  }
  EXPECT_LE(max_drift, grid.BinCapacity() * kBinAreaRelTol)
      << "capacity tolerance does not cover accumulation drift";
  // Capacity decisions must agree between the drifted and canonical grids —
  // the tolerance is what keeps an accept/reject from flipping on drift.
  const double probe = f.nl.AvgCellWidth() * f.nl.AvgCellHeight();
  for (int b = 0; b < grid.NumBins(); ++b) {
    EXPECT_EQ(grid.FitsWithSlack(b, probe, 1.10),
              canonical.FitsWithSlack(b, probe, 1.10))
        << "bin " << b;
  }

  grid.ResyncAreas(f.nl);
  for (int b = 0; b < grid.NumBins(); ++b) {
    EXPECT_EQ(grid.Area(b), canonical.Area(b)) << "bin " << b;  // bytes
  }
}

}  // namespace
}  // namespace p3d::place
