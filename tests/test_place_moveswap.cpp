#include <gtest/gtest.h>

#include "io/synthetic.h"
#include "place/moveswap.h"
#include "util/rng.h"

namespace p3d::place {
namespace {

struct Fixture {
  netlist::Netlist nl;
  Chip chip;
  PlacerParams params;
  ObjectiveEvaluator eval;

  explicit Fixture(int cells = 500, double alpha_temp = 0.0)
      : nl(MakeNetlist(cells)),
        chip(*Chip::Build(nl, 4, 0.05, 0.25)),
        params(MakeParams(alpha_temp)),
        eval(nl, chip, params) {}

  static netlist::Netlist MakeNetlist(int cells) {
    io::SyntheticSpec spec;
    spec.name = "msw";
    spec.num_cells = cells;
    spec.total_area_m2 = cells * 4.9e-12;
    spec.seed = 17;
    return io::Generate(spec);
  }
  static PlacerParams MakeParams(double alpha_temp) {
    PlacerParams p;
    p.num_layers = 4;
    p.alpha_ilv = 1e-5;
    p.alpha_temp = alpha_temp;
    p.SyncStack();
    return p;
  }

  void RandomStart(std::uint64_t seed) {
    util::Rng rng(seed);
    Placement p;
    p.Resize(static_cast<std::size_t>(nl.NumCells()));
    for (std::size_t i = 0; i < p.size(); ++i) {
      p.x[i] = rng.NextDouble(0.0, chip.width());
      p.y[i] = rng.NextDouble(0.0, chip.height());
      p.layer[i] = rng.NextInt(0, 3);
    }
    eval.SetPlacement(p);
  }
};

TEST(MoveSwap, LocalPassNeverWorsensObjective) {
  Fixture f;
  f.RandomStart(1);
  const double before = f.eval.Total();
  MoveSwapOptimizer mso(f.eval, 2);
  const MoveSwapStats stats = mso.RunLocal();
  EXPECT_LE(f.eval.Total(), before + before * 1e-12);
  EXPECT_NEAR(before - f.eval.Total(), stats.gain, before * 1e-9);
}

TEST(MoveSwap, GlobalPassNeverWorsensObjective) {
  Fixture f;
  f.RandomStart(3);
  const double before = f.eval.Total();
  MoveSwapOptimizer mso(f.eval, 4);
  const MoveSwapStats stats = mso.RunGlobal(27);
  EXPECT_LE(f.eval.Total(), before + before * 1e-12);
  EXPECT_GE(stats.gain, 0.0);
}

TEST(MoveSwap, GlobalPassImprovesRandomStartSubstantially) {
  Fixture f(800);
  f.RandomStart(5);
  const double before = f.eval.Total();
  MoveSwapOptimizer mso(f.eval, 6);
  mso.RunGlobal(27);
  mso.RunLocal();
  // From a random start, optimal-region moves recover a lot of wirelength.
  EXPECT_LT(f.eval.Total(), 0.8 * before);
}

TEST(MoveSwap, ReportsActionCounts) {
  Fixture f;
  f.RandomStart(7);
  MoveSwapOptimizer mso(f.eval, 8);
  const MoveSwapStats stats = mso.RunGlobal(27);
  EXPECT_GT(stats.moves + stats.swaps, 0);
}

TEST(MoveSwap, IncrementalStateStaysConsistent) {
  Fixture f(300, /*alpha_temp=*/2e-6);
  f.RandomStart(9);
  MoveSwapOptimizer mso(f.eval, 10);
  mso.RunGlobal(27);
  mso.RunLocal();
  const double incremental = f.eval.Total();
  const double full = f.eval.RecomputeFull();
  EXPECT_NEAR(incremental, full, std::abs(full) * 1e-9);
}

TEST(MoveSwap, CellsStayInsideChip) {
  Fixture f;
  f.RandomStart(11);
  MoveSwapOptimizer mso(f.eval, 12);
  mso.RunGlobal(64);
  mso.RunLocal();
  const Placement& p = f.eval.placement();
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_GE(p.x[i], 0.0);
    EXPECT_LE(p.x[i], f.chip.width());
    EXPECT_GE(p.y[i], 0.0);
    EXPECT_LE(p.y[i], f.chip.height());
    EXPECT_GE(p.layer[i], 0);
    EXPECT_LT(p.layer[i], 4);
  }
}

class MoveSwapTargetRegion : public ::testing::TestWithParam<int> {};

TEST_P(MoveSwapTargetRegion, LargerRegionsFindAtLeastAsMuchGain) {
  // Not strictly guaranteed per-run, but region=9 vs region=125 on the same
  // start should show a clear trend; we only assert the big-region result
  // is not drastically worse.
  const int bins = GetParam();
  Fixture f(400);
  f.RandomStart(13);
  MoveSwapOptimizer mso(f.eval, 14);
  const MoveSwapStats stats = mso.RunGlobal(bins);
  EXPECT_GT(stats.gain, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RegionSizes, MoveSwapTargetRegion,
                         ::testing::Values(9, 27, 64, 125));

}  // namespace
}  // namespace p3d::place
