// Flight-recorder tests (src/obs): JSON round-trips, Chrome trace
// well-formedness and span nesting, metric determinism across thread counts,
// the zero-cost-when-disabled guarantee, run-report schema round-trips, and
// the acceptance pin that observability never perturbs placement bytes.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/synthetic.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/ring.h"
#include "obs/trace.h"
#include "place/instrument.h"
#include "place/placer.h"
#include "util/log.h"
#include "util/timer.h"

namespace p3d {
namespace {

// ---------------------------------------------------------------- JSON -----

TEST(Json, RoundTripScalarsAndContainers) {
  obs::JsonValue doc = obs::JsonValue::MakeObject();
  doc.Set("str", "a \"quoted\" \\ line\nwith\ttabs");
  doc.Set("int", 1234567);
  doc.Set("neg", -42);
  doc.Set("dbl", 0.1);
  doc.Set("sci", 3.25e-19);
  doc.Set("yes", true);
  doc.Set("no", false);
  doc.Set("nil", obs::JsonValue());
  obs::JsonValue arr = obs::JsonValue::MakeArray();
  arr.Push(1);
  arr.Push("two");
  arr.Push(obs::JsonValue::MakeObject());
  doc.Set("arr", std::move(arr));

  for (const std::string& text : {doc.Serialize(), doc.SerializePretty()}) {
    obs::JsonValue parsed;
    std::string error;
    ASSERT_TRUE(ParseJson(text, &parsed, &error)) << error;
    ASSERT_TRUE(parsed.is_object());
    EXPECT_EQ(parsed.Find("str")->AsString(), "a \"quoted\" \\ line\nwith\ttabs");
    EXPECT_EQ(parsed.Find("int")->AsNumber(), 1234567.0);
    EXPECT_EQ(parsed.Find("neg")->AsNumber(), -42.0);
    EXPECT_EQ(parsed.Find("dbl")->AsNumber(), 0.1);
    EXPECT_EQ(parsed.Find("sci")->AsNumber(), 3.25e-19);
    EXPECT_TRUE(parsed.Find("yes")->AsBool());
    EXPECT_FALSE(parsed.Find("no")->AsBool());
    EXPECT_TRUE(parsed.Find("nil")->is_null());
    ASSERT_TRUE(parsed.Find("arr")->is_array());
    EXPECT_EQ(parsed.Find("arr")->AsArray().size(), 3u);
  }
}

TEST(Json, ParserRejectsMalformedInput) {
  obs::JsonValue v;
  EXPECT_FALSE(ParseJson("", &v));
  EXPECT_FALSE(ParseJson("{", &v));
  EXPECT_FALSE(ParseJson("[1,]", &v));
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing", &v));
  EXPECT_FALSE(ParseJson("{'single':1}", &v));
  EXPECT_FALSE(ParseJson("nul", &v));
}

// --------------------------------------------------------------- trace -----

TEST(Trace, ChromeJsonIsWellFormedAndValidates) {
  obs::TraceSink sink;
  obs::InstallTraceSink(&sink);
  {
    obs::TraceScope outer("outer");
    {
      obs::TraceScope inner("inner");
      obs::TraceCounter("work", 7);
    }
    obs::TraceInstant("marker");
  }
  obs::InstallTraceSink(nullptr);

  EXPECT_EQ(sink.NumEvents(), 4u);
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(sink.SerializeChromeJson(), &doc, &error)) << error;
  ASSERT_TRUE(ValidateChromeTrace(doc, &error)) << error;
}

TEST(Trace, NestedSpansEmitParentFirst) {
  obs::TraceSink sink;
  obs::InstallTraceSink(&sink);
  {
    obs::TraceScope outer("outer");
    obs::TraceScope inner("inner");
  }
  obs::InstallTraceSink(nullptr);

  obs::JsonValue doc;
  ASSERT_TRUE(ParseJson(sink.SerializeChromeJson(), &doc));
  const obs::JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  int outer_idx = -1, inner_idx = -1;
  double outer_ts = 0, outer_dur = 0, inner_ts = 0, inner_dur = 0;
  for (std::size_t i = 0; i < events->AsArray().size(); ++i) {
    const obs::JsonValue& e = events->AsArray()[i];
    if (e.Find("ph")->AsString() != "X") continue;
    if (e.Find("name")->AsString() == "outer") {
      outer_idx = static_cast<int>(i);
      outer_ts = e.Find("ts")->AsNumber();
      outer_dur = e.Find("dur")->AsNumber();
    } else if (e.Find("name")->AsString() == "inner") {
      inner_idx = static_cast<int>(i);
      inner_ts = e.Find("ts")->AsNumber();
      inner_dur = e.Find("dur")->AsNumber();
    }
  }
  ASSERT_GE(outer_idx, 0);
  ASSERT_GE(inner_idx, 0);
  // Parent precedes child in the serialized array, and encloses it in time.
  EXPECT_LT(outer_idx, inner_idx);
  EXPECT_LE(outer_ts, inner_ts);
  EXPECT_GE(outer_ts + outer_dur, inner_ts + inner_dur);
}

TEST(Trace, ParallelWritersAllRecorded) {
  obs::TraceSink sink;
  obs::InstallTraceSink(&sink);
  constexpr int kThreads = 4;
  constexpr int kSpansEach = 250;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansEach; ++i) obs::TraceScope span("worker.span");
    });
  }
  for (std::thread& w : workers) w.join();
  obs::InstallTraceSink(nullptr);

  EXPECT_EQ(sink.NumEvents(),
            static_cast<std::size_t>(kThreads) * kSpansEach);
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(sink.SerializeChromeJson(), &doc, &error)) << error;
  ASSERT_TRUE(ValidateChromeTrace(doc, &error)) << error;
}

TEST(Trace, DisabledPathIsCheap) {
  ASSERT_EQ(obs::CurrentTraceSink(), nullptr);
  constexpr int kIterations = 1000000;
  util::Timer timer;
  for (int i = 0; i < kIterations; ++i) {
    obs::TraceScope span("noop");
    obs::TraceCounter("noop", i);
  }
  // One relaxed atomic load + branch per entry point: microseconds of real
  // cost. The bound is deliberately loose (sanitizer/debug builds, loaded CI
  // machines) — it exists to catch an accidental clock read or allocation on
  // the disabled path, which would blow past it by orders of magnitude.
  EXPECT_LT(timer.Seconds(), 1.0);
}

// ------------------------------------------------- ring black box ----------

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Ring, WraparoundKeepsLastEvents) {
  obs::RingRecorder ring(obs::RingOptions{/*capacity_per_thread=*/64});
  EXPECT_EQ(ring.capacity_per_thread(), 64u);
  for (std::int64_t i = 0; i < 200; ++i) {
    ring.RecordInstant("tick", i);
  }
  EXPECT_EQ(ring.NumThreads(), 1u);
  EXPECT_EQ(ring.NumEvents(), 64u);
  const std::vector<obs::RingRecorder::EventView> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 64u);
  // Only the last 64 of the 200 records survive, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 136u + i);
    EXPECT_EQ(events[i].value, static_cast<std::int64_t>(136 + i));
    EXPECT_STREQ(events[i].name, "tick");
  }
}

TEST(Ring, CapacityRoundsUpToPowerOfTwo) {
  obs::RingRecorder ring(obs::RingOptions{/*capacity_per_thread=*/100});
  EXPECT_EQ(ring.capacity_per_thread(), 128u);
  obs::RingRecorder tiny(obs::RingOptions{/*capacity_per_thread=*/1});
  EXPECT_EQ(tiny.capacity_per_thread(), 64u);  // floor
}

TEST(Ring, EachThreadGetsItsOwnRing) {
  obs::RingRecorder ring(obs::RingOptions{/*capacity_per_thread=*/64});
  constexpr int kThreads = 4;
  constexpr int kEach = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ring, t] {
      for (int i = 0; i < kEach; ++i) {
        ring.RecordInstant("w", t * 1000 + i);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(ring.NumThreads(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(ring.NumEvents(), static_cast<std::size_t>(kThreads * kEach));
}

TEST(Ring, DumpIsValidChromeTraceWithReason) {
  obs::RingRecorder ring;
  ring.RecordSpan("span.a", ring.NowNs(), 1500);
  ring.RecordCounter("count.b", 7);
  ring.RecordInstant("mark.c", 3);
  const std::string path = testing::TempDir() + "/ring_dump.json";
  ASSERT_TRUE(ring.DumpToFile(path.c_str(), "unit_test"));

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(ReadFileOrEmpty(path), &doc, &error)) << error;
  EXPECT_TRUE(obs::ValidateChromeTrace(doc, &error)) << error;
  const auto& events = doc.Find("traceEvents")->AsArray();
  bool saw_span = false, saw_counter = false, saw_mark = false,
       saw_dump = false;
  for (const obs::JsonValue& ev : events) {
    const std::string& name = ev.Find("name")->AsString();
    saw_span |= name == "span.a";
    saw_counter |= name == "count.b";
    saw_mark |= name == "mark.c";
    if (name == "blackbox.dump") {
      saw_dump = true;
      EXPECT_EQ(ev.Find("args")->Find("reason")->AsString(), "unit_test");
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_mark);
  EXPECT_TRUE(saw_dump);
}

TEST(Ring, DumpBlackBoxRequiresRecorderAndPath) {
  ASSERT_EQ(obs::CurrentRingRecorder(), nullptr);
  EXPECT_FALSE(obs::DumpBlackBox("no_recorder"));

  obs::RingRecorder ring;
  obs::InstallRingRecorder(&ring);
  obs::SetBlackBoxPath("");
  EXPECT_FALSE(obs::DumpBlackBox("no_path"));

  const std::string path = testing::TempDir() + "/blackbox.json";
  ASSERT_TRUE(obs::SetBlackBoxPath(path));
  ring.RecordInstant("before.dump", 1);
  const std::int64_t dumps_before = obs::BlackBoxDumps();
  EXPECT_TRUE(obs::DumpBlackBox("configured"));
  EXPECT_EQ(obs::BlackBoxDumps(), dumps_before + 1);
  obs::InstallRingRecorder(nullptr);
  obs::SetBlackBoxPath("");

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(ReadFileOrEmpty(path), &doc, &error)) << error;
  EXPECT_TRUE(obs::ValidateChromeTrace(doc, &error)) << error;
}

TEST(Ring, RecordPathIsCheap) {
  obs::RingRecorder ring;
  obs::RingRecorder* previous = obs::InstallRingRecorder(&ring);
  constexpr int kIterations = 1000000;
  util::Timer timer;
  for (int i = 0; i < kIterations; ++i) {
    obs::RingNote("noop", i);
  }
  const double elapsed = timer.Seconds();
  obs::InstallRingRecorder(previous);
  // A record is a TLS lookup plus a handful of relaxed stores — tens of
  // nanoseconds. As in DisabledPathIsCheap, the bound is loose on purpose:
  // it exists to catch an accidental lock, clock read, or allocation.
  EXPECT_LT(elapsed, 1.0);
  EXPECT_EQ(ring.NumEvents(), ring.capacity_per_thread());
}

#if defined(__SANITIZE_THREAD__)
#define P3D_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define P3D_TEST_TSAN 1
#endif
#endif

// Death tests fork; under TSan the forked child of a multi-threaded gtest
// process is unreliable, so the crash-handler pin runs un-sanitized only.
#if !defined(P3D_TEST_TSAN)

TEST(RingDeathTest, CrashHandlerDumpsBlackBox) {
  const std::string path = testing::TempDir() + "/blackbox_crash.json";
  std::remove(path.c_str());
  obs::RingRecorder ring;
  obs::InstallRingRecorder(&ring);
  ASSERT_TRUE(obs::SetBlackBoxPath(path));
  obs::InstallCrashHandler();
  // The child inherits recorder + handler; the handler dumps and re-raises
  // with the default disposition, so the child still dies of SIGSEGV.
  EXPECT_DEATH(
      {
        obs::RingNote("about.to.crash", 42);
        std::raise(SIGSEGV);
      },
      "");
  obs::InstallRingRecorder(nullptr);
  obs::SetBlackBoxPath("");

  obs::JsonValue doc;
  std::string error;
  const std::string text = ReadFileOrEmpty(path);
  ASSERT_FALSE(text.empty()) << "crash handler did not write " << path;
  ASSERT_TRUE(obs::ParseJson(text, &doc, &error)) << error;
  EXPECT_TRUE(obs::ValidateChromeTrace(doc, &error)) << error;
  EXPECT_NE(text.find("fatal_signal"), std::string::npos);
  EXPECT_NE(text.find("about.to.crash"), std::string::npos);
}
#endif  // !P3D_TEST_TSAN

// ------------------------------------------------------------- metrics -----

TEST(Metrics, CountersGaugesHistogramsSeries) {
  obs::MetricsRegistry m;
  m.Add("c", 2);
  m.Add("c", 3);
  EXPECT_EQ(m.Counter("c"), 5);
  EXPECT_EQ(m.Counter("absent"), 0);

  m.Set("g", 1.5);
  m.Set("g", 2.5);  // last write wins
  EXPECT_EQ(m.Gauge("g"), 2.5);

  m.Observe("h", 0);
  m.Observe("h", 1);
  m.Observe("h", 9);
  const obs::MetricsRegistry::Histogram* h = m.Hist("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3);
  EXPECT_EQ(h->sum, 10);
  EXPECT_EQ(h->min, 0);
  EXPECT_EQ(h->max, 9);

  m.Append("s", 1.0);
  m.Append("s", 2.0);
  const std::vector<double>* s = m.Series("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(*s, (std::vector<double>{1.0, 2.0}));

  const obs::JsonValue json = m.ToJson();
  ASSERT_TRUE(json.is_object());
  EXPECT_NE(json.Find("counters"), nullptr);
  EXPECT_NE(json.Find("gauges"), nullptr);
  EXPECT_NE(json.Find("histograms"), nullptr);
  EXPECT_NE(json.Find("series"), nullptr);
  EXPECT_EQ(json.Find("counters")->Find("c")->AsNumber(), 5.0);

  m.Clear();
  EXPECT_EQ(m.Counter("c"), 0);
  EXPECT_EQ(m.Hist("h"), nullptr);
}

TEST(Metrics, HistogramQuantilesAreOrderedAndClamped) {
  obs::MetricsRegistry m;
  // A constant distribution: every quantile is that constant (the clamp to
  // [min, max] beats the pow2 bucket bounds).
  for (int i = 0; i < 100; ++i) m.Observe("const", 7);
  const obs::MetricsRegistry::Histogram* c = m.Hist("const");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(*c, 0.50), 7.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(*c, 0.95), 7.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(*c, 0.99), 7.0);

  // A spread distribution: quantiles are monotone in q and stay inside the
  // observed [min, max].
  for (int i = 1; i <= 1000; ++i) m.Observe("spread", i);
  const obs::MetricsRegistry::Histogram* s = m.Hist("spread");
  ASSERT_NE(s, nullptr);
  const double p50 = obs::HistogramQuantile(*s, 0.50);
  const double p95 = obs::HistogramQuantile(*s, 0.95);
  const double p99 = obs::HistogramQuantile(*s, 0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // Pow2 buckets bound the estimate to the true value's bucket: p50 of
  // 1..1000 is 500.5, whose bucket is [256, 511].
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 511.0);
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(*s, 0.0), 1.0);    // q<=0 -> min
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(*s, 1.0), 1000.0);  // q>=1 -> max

  const obs::MetricsRegistry::Histogram empty;
  EXPECT_DOUBLE_EQ(obs::HistogramQuantile(empty, 0.5), 0.0);
}

TEST(Metrics, DeterministicDumpCarriesQuantiles) {
  obs::MetricsRegistry m;
  for (int i = 0; i < 10; ++i) m.Observe("h", i);
  const std::string dump = m.DumpDeterministic();
  EXPECT_NE(dump.find(" p50 "), std::string::npos);
  EXPECT_NE(dump.find(" p95 "), std::string::npos);
  EXPECT_NE(dump.find(" p99 "), std::string::npos);

  const obs::JsonValue json = m.ToJson();
  const obs::JsonValue* h = json.Find("histograms")->Find("h");
  ASSERT_NE(h, nullptr);
  for (const char* key : {"p50", "p95", "p99"}) {
    ASSERT_NE(h->Find(key), nullptr) << key;
    EXPECT_TRUE(h->Find(key)->is_number()) << key;
  }
}

TEST(Metrics, RenderPrometheusExposesAllFamilies) {
  obs::MetricsRegistry m;
  m.Add("cg/solves", 3);
  m.Set("flow/alpha_temp", 1.5);
  m.Accumulate("flow/t_fea_s", 0.25);
  for (int i = 1; i <= 16; ++i) m.Observe("legalize/window_cells", i);

  const std::string text = obs::RenderPrometheus(m);
  // Names are sanitized under the placer3d_ prefix; each family carries a
  // TYPE line; histograms render as summaries with quantiles + sum/count.
  EXPECT_NE(text.find("# TYPE placer3d_cg_solves counter\n"
                      "placer3d_cg_solves 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE placer3d_flow_alpha_temp gauge"),
            std::string::npos);
  EXPECT_NE(text.find("placer3d_flow_t_fea_s 0.25"), std::string::npos);
  EXPECT_NE(text.find("# TYPE placer3d_legalize_window_cells summary"),
            std::string::npos);
  EXPECT_NE(text.find("placer3d_legalize_window_cells{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("placer3d_legalize_window_cells_sum 136"),
            std::string::npos);
  EXPECT_NE(text.find("placer3d_legalize_window_cells_count 16"),
            std::string::npos);
}

TEST(Metrics, CommutativeRecordingFromParallelWorkers) {
  // Two interleavings of the same Add/Observe multiset must dump equal.
  obs::MetricsRegistry a, b;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&a, t] {
      for (int i = 0; i < 1000; ++i) {
        a.Add("adds", t + 1);
        a.Observe("obs", i % 17);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 1000; ++i) {
      b.Add("adds", t + 1);
      b.Observe("obs", i % 17);
    }
  }
  EXPECT_EQ(a.DumpDeterministic(), b.DumpDeterministic());
}

TEST(Metrics, ScopedThreadMetricsOverridesCurrentRegistry) {
  obs::MetricsRegistry process;
  obs::InstallMetrics(&process);
  obs::MetricAdd("before", 1);
  {
    obs::MetricsRegistry job;
    obs::ScopedThreadMetrics scope(&job);
    obs::MetricAdd("inside", 1);  // routed to the thread-local override
    EXPECT_EQ(job.Counter("inside"), 1);
    EXPECT_EQ(process.Counter("inside"), 0);
    {
      // A nested null override silences recording without falling through
      // to the process registry.
      obs::ScopedThreadMetrics silence(nullptr);
      obs::MetricAdd("silenced", 1);
      EXPECT_EQ(job.Counter("silenced"), 0);
      EXPECT_EQ(process.Counter("silenced"), 0);
    }
    obs::MetricAdd("inside", 1);  // inner scope restored the outer override
    EXPECT_EQ(job.Counter("inside"), 2);
  }
  obs::MetricAdd("after", 1);  // override popped: back to the process registry
  EXPECT_EQ(process.Counter("before"), 1);
  EXPECT_EQ(process.Counter("after"), 1);
  obs::InstallMetrics(nullptr);
}

TEST(Metrics, ThreadMetricsOverrideIsPerThread) {
  obs::MetricsRegistry job, other;
  obs::ScopedThreadMetrics scope(&job);
  std::thread t([&] {
    // The override does not leak across threads; this thread installs its
    // own and the two registries stay disjoint.
    obs::ScopedThreadMetrics inner(&other);
    obs::MetricAdd("theirs", 1);
  });
  t.join();
  obs::MetricAdd("mine", 1);
  EXPECT_EQ(job.Counter("mine"), 1);
  EXPECT_EQ(job.Counter("theirs"), 0);
  EXPECT_EQ(other.Counter("theirs"), 1);
}

// ----------------------------------------- full-flow acceptance checks -----

struct InstrumentedRun {
  place::PlacementResult result;
  std::string metrics_dump;
  std::vector<obs::PhaseSample> samples;
};

InstrumentedRun RunWithObservability(const netlist::Netlist& nl, int threads,
                                     bool install) {
  place::PlacerParams params;
  params.num_layers = 4;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 1e-6;
  params.threads = threads;

  obs::TraceSink sink;
  obs::MetricsRegistry registry;
  obs::RingRecorder ring;
  place::Placer3D placer(nl, params);
  place::PhaseMetricsSampler sampler;
  if (install) {
    obs::InstallTraceSink(&sink);
    obs::InstallMetrics(&registry);
    obs::InstallRingRecorder(&ring);  // the black box rides along
    placer.AddPhaseObserver(&sampler);
  }
  InstrumentedRun out;
  out.result = *placer.Run({.with_fea = false});
  obs::InstallTraceSink(nullptr);
  obs::InstallMetrics(nullptr);
  obs::InstallRingRecorder(nullptr);
  out.metrics_dump = registry.DumpDeterministic();
  out.samples = sampler.samples();
  return out;
}

TEST(ObsAcceptance, MetricsIdenticalAcrossThreadCounts) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = io::Generate(io::Table1Spec("ibm01", 0.01));
  const InstrumentedRun r1 = RunWithObservability(nl, 1, true);
  const InstrumentedRun r4 = RunWithObservability(nl, 4, true);
  EXPECT_FALSE(r1.metrics_dump.empty());
  EXPECT_EQ(r1.metrics_dump, r4.metrics_dump);
  ASSERT_EQ(r1.samples.size(), r4.samples.size());
  for (std::size_t i = 0; i < r1.samples.size(); ++i) {
    EXPECT_EQ(r1.samples[i].phase, r4.samples[i].phase);
    EXPECT_EQ(r1.samples[i].total_m, r4.samples[i].total_m);  // bitwise
    EXPECT_EQ(r1.samples[i].ilv, r4.samples[i].ilv);
    EXPECT_EQ(r1.samples[i].commits, r4.samples[i].commits);
  }
}

TEST(ObsAcceptance, PlacementBytesUnchangedByObservability) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = io::Generate(io::Table1Spec("ibm01", 0.01));
  for (const int threads : {1, 4}) {
    const InstrumentedRun off = RunWithObservability(nl, threads, false);
    const InstrumentedRun on = RunWithObservability(nl, threads, true);
    EXPECT_EQ(off.result.placement.x, on.result.placement.x)
        << "threads=" << threads;
    EXPECT_EQ(off.result.placement.y, on.result.placement.y)
        << "threads=" << threads;
    EXPECT_EQ(off.result.placement.layer, on.result.placement.layer)
        << "threads=" << threads;
  }
}

TEST(ObsAcceptance, PhaseSamplesCarryEq3Decomposition) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = io::Generate(io::Table1Spec("ibm01", 0.01));
  const InstrumentedRun r = RunWithObservability(nl, 1, true);
  ASSERT_GE(r.samples.size(), 4u);  // global, coarse, detailed, final at least
  for (const obs::PhaseSample& s : r.samples) {
    EXPECT_FALSE(s.phase.empty());
    EXPECT_GT(s.wl_m, 0.0);
    EXPECT_NEAR(s.total_m, s.wl_m + s.ilv_cost_m + s.thermal_cost_m,
                1e-6 * s.total_m + 1e-12);
  }
}

// -------------------------------------------------------------- report -----

TEST(Report, RoundTripAndValidate) {
  obs::MetricsRegistry registry;
  registry.Add("cg/solves", 3);
  registry.Append("phase/total_m", 1.25);

  obs::RunReport report;
  report.circuit = "ibm01";
  report.cells = 123;
  report.nets = 129;
  report.pins = 403;
  report.params.emplace_back("alpha_ilv", 1e-5);
  report.params.emplace_back("seed", 12345);
  obs::PhaseSample s;
  s.phase = "global";
  s.wl_m = 0.25;
  s.ilv_cost_m = 0.01;
  s.thermal_cost_m = 0.04;
  s.total_m = 0.30;
  s.ilv = 99;
  s.commits = 0;
  s.t_s = 0.5;
  report.phases.push_back(s);
  report.qor.emplace_back("hpwl_m", 0.21);
  report.qor.emplace_back("legal", true);
  report.timings.emplace_back("total_s", 1.5);
  report.metrics = &registry;

  const std::string path =
      testing::TempDir() + "/placer3d_report_roundtrip.json";
  ASSERT_TRUE(report.Write(path));

  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  std::remove(path.c_str());

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(text, &doc, &error)) << error;
  ASSERT_TRUE(ValidateRunReport(doc, &error)) << error;
  EXPECT_EQ(doc.Find("schema")->AsString(), obs::kRunReportSchema);
  EXPECT_EQ(doc.Find("version")->AsNumber(), obs::kRunReportVersion);
  const obs::JsonValue* phases = doc.Find("phases");
  ASSERT_TRUE(phases != nullptr && phases->is_array());
  ASSERT_EQ(phases->AsArray().size(), 1u);
  const obs::JsonValue& p0 = phases->AsArray()[0];
  EXPECT_EQ(p0.Find("phase")->AsString(), "global");
  EXPECT_EQ(p0.Find("wl_m")->AsNumber(), 0.25);
  EXPECT_EQ(p0.Find("ilv")->AsNumber(), 99.0);
  const obs::JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->Find("counters")->Find("cg/solves")->AsNumber(), 3.0);
}

TEST(Report, ValidateRejectsSchemaViolations) {
  obs::RunReport report;
  report.circuit = "x";
  obs::JsonValue doc = report.ToJson();
  std::string error;
  ASSERT_TRUE(ValidateRunReport(doc, &error)) << error;

  obs::JsonValue wrong_schema = report.ToJson();
  for (auto& [key, value] : wrong_schema.AsObject()) {
    if (key == "schema") value = "other.schema";
  }
  EXPECT_FALSE(ValidateRunReport(wrong_schema, &error));

  obs::JsonValue not_object;
  EXPECT_FALSE(ValidateRunReport(not_object, &error));
}

}  // namespace
}  // namespace p3d
