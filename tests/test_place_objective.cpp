#include <gtest/gtest.h>

#include <cmath>

#include "io/synthetic.h"
#include "place/objective.h"
#include "util/rng.h"

namespace p3d::place {
namespace {

netlist::Netlist TinyCircuit() {
  netlist::Netlist nl;
  nl.AddCell("a", 2e-6, 1e-6);
  nl.AddCell("b", 2e-6, 1e-6);
  nl.AddCell("c", 2e-6, 1e-6);
  nl.AddNet("n0", 0.2);
  nl.AddPin(0, netlist::PinDir::kOutput);
  nl.AddPin(1, netlist::PinDir::kInput);
  nl.AddNet("n1", 0.4);
  nl.AddPin(1, netlist::PinDir::kOutput);
  nl.AddPin(2, netlist::PinDir::kInput);
  EXPECT_TRUE(nl.Finalize());
  return nl;
}

Placement TinyPlacement() {
  Placement p;
  p.Resize(3);
  p.x = {1e-6, 5e-6, 9e-6};
  p.y = {1e-6, 3e-6, 1e-6};
  p.layer = {0, 1, 1};
  return p;
}

TEST(Objective, WirelengthAndIlvOnly) {
  const netlist::Netlist nl = TinyCircuit();
  const Chip chip = *Chip::Build(nl, 4, 0.05, 0.25);
  PlacerParams params;
  params.num_layers = 4;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 0.0;
  params.SyncStack();
  ObjectiveEvaluator eval(nl, chip, params);
  eval.SetPlacement(TinyPlacement());

  // n0: |5-1| + |3-1| = 6u, span 1; n1: 4 + 2 = 6u, span 0.
  EXPECT_NEAR(eval.NetHpwl(0), 6e-6, 1e-15);
  EXPECT_EQ(eval.NetSpan(0), 1);
  EXPECT_NEAR(eval.NetHpwl(1), 6e-6, 1e-15);
  EXPECT_EQ(eval.NetSpan(1), 0);
  EXPECT_NEAR(eval.TotalHpwl(), 12e-6, 1e-15);
  EXPECT_EQ(eval.TotalIlv(), 1);
  EXPECT_NEAR(eval.Total(), 12e-6 + 1e-5 * 1, 1e-15);
  // Incremental bookkeeping may leave sub-femto float residue.
  EXPECT_NEAR(eval.ThermalCost(), 0.0, 1e-18);
}

TEST(Objective, ThermalTermMatchesHandComputation) {
  const netlist::Netlist nl = TinyCircuit();
  const Chip chip = *Chip::Build(nl, 4, 0.05, 0.25);
  PlacerParams params;
  params.num_layers = 4;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 2e-6;
  params.SyncStack();
  ObjectiveEvaluator eval(nl, chip, params);
  const Placement p = TinyPlacement();
  eval.SetPlacement(p);

  // Thermal cost = alpha_temp * sum_nets R_driver * (s_wl WL + s_ilv ILV + s_pin).
  double expected = 0.0;
  const thermal::ResistanceModel& rm = eval.resistance_model();
  for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
    const std::int32_t d = nl.DriverCell(n);
    const std::size_t di = static_cast<std::size_t>(d);
    const double r =
        rm.CellToAmbient(p.x[di], p.y[di], p.layer[di], nl.cell(d).Area());
    expected += params.alpha_temp * r *
                (eval.SWl(n) * eval.NetHpwl(n) + eval.SIlv(n) * eval.NetSpan(n) +
                 eval.SPinTerm(n));
  }
  EXPECT_NEAR(eval.ThermalCost(), expected, expected * 1e-9);
  EXPECT_NEAR(eval.Total(), eval.TotalHpwl() + 1e-5 * eval.TotalIlv() + expected,
              eval.Total() * 1e-12);
}

TEST(Objective, SCoefficientsMatchEq8) {
  const netlist::Netlist nl = TinyCircuit();
  const Chip chip = *Chip::Build(nl, 4, 0.05, 0.25);
  PlacerParams params;
  params.SyncStack();
  ObjectiveEvaluator eval(nl, chip, params);
  const auto& e = params.electrical;
  // One output pin on n0, activity 0.2.
  EXPECT_NEAR(eval.SWl(0), e.Prefactor() * 0.2 * e.c_per_wl, 1e-18);
  EXPECT_NEAR(eval.SIlv(0), e.Prefactor() * 0.2 * e.CPerIlv(), 1e-18);
  EXPECT_NEAR(eval.SPinTerm(0), e.Prefactor() * 0.2 * e.c_per_pin * 1, 1e-18);
}

TEST(Objective, MoveDeltaMatchesRecompute) {
  const netlist::Netlist nl = TinyCircuit();
  const Chip chip = *Chip::Build(nl, 4, 0.05, 0.25);
  PlacerParams params;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 1e-6;
  params.SyncStack();
  ObjectiveEvaluator eval(nl, chip, params);
  eval.SetPlacement(TinyPlacement());

  const double before = eval.Total();
  const double delta = eval.MoveDelta(1, 2e-6, 2e-6, 3);
  eval.CommitMove(1, 2e-6, 2e-6, 3);
  const double after_incremental = eval.Total();
  const double after_full = eval.RecomputeFull();
  EXPECT_NEAR(after_incremental, before + delta, std::abs(before) * 1e-12);
  EXPECT_NEAR(after_incremental, after_full, std::abs(after_full) * 1e-12);
}

TEST(Objective, SwapDeltaMatchesRecompute) {
  const netlist::Netlist nl = TinyCircuit();
  const Chip chip = *Chip::Build(nl, 4, 0.05, 0.25);
  PlacerParams params;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 1e-6;
  params.SyncStack();
  ObjectiveEvaluator eval(nl, chip, params);
  eval.SetPlacement(TinyPlacement());

  const double before = eval.Total();
  const double delta = eval.SwapDelta(0, 2);
  eval.CommitSwap(0, 2);
  EXPECT_NEAR(eval.Total(), before + delta, std::abs(before) * 1e-12);
  EXPECT_NEAR(eval.Total(), eval.RecomputeFull(), std::abs(before) * 1e-12);
  // Positions actually exchanged.
  EXPECT_DOUBLE_EQ(eval.placement().x[0], 9e-6);
  EXPECT_DOUBLE_EQ(eval.placement().x[2], 1e-6);
  EXPECT_EQ(eval.placement().layer[0], 1);
}

// Property test: a long random sequence of moves and swaps keeps the
// incremental caches exactly in sync with a full recomputation.
class ObjectiveIncrementalConsistency
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ObjectiveIncrementalConsistency, RandomWalkStaysConsistent) {
  io::SyntheticSpec spec;
  spec.name = "obj";
  spec.num_cells = 200;
  spec.total_area_m2 = 200 * 4.9e-12;
  spec.seed = GetParam();
  const netlist::Netlist nl = io::Generate(spec);
  const Chip chip = *Chip::Build(nl, 4, 0.05, 0.25);
  PlacerParams params;
  params.num_layers = 4;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 5e-6;
  params.SyncStack();
  ObjectiveEvaluator eval(nl, chip, params);

  util::Rng rng(GetParam() * 7 + 1);
  Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = rng.NextDouble(0.0, chip.width());
    p.y[i] = rng.NextDouble(0.0, chip.height());
    p.layer[i] = rng.NextInt(0, 3);
  }
  eval.SetPlacement(p);

  double running = eval.Total();
  for (int step = 0; step < 300; ++step) {
    if (rng.NextBool()) {
      const auto c = static_cast<std::int32_t>(
          rng.NextBounded(static_cast<std::uint64_t>(nl.NumCells())));
      const double nx = rng.NextDouble(0.0, chip.width());
      const double ny = rng.NextDouble(0.0, chip.height());
      const int nlayer = rng.NextInt(0, 3);
      running += eval.MoveDelta(c, nx, ny, nlayer);
      eval.CommitMove(c, nx, ny, nlayer);
    } else {
      const auto a = static_cast<std::int32_t>(
          rng.NextBounded(static_cast<std::uint64_t>(nl.NumCells())));
      const auto b = static_cast<std::int32_t>(
          rng.NextBounded(static_cast<std::uint64_t>(nl.NumCells())));
      if (a == b) continue;
      running += eval.SwapDelta(a, b);
      eval.CommitSwap(a, b);
    }
    ASSERT_NEAR(eval.Total(), running, std::abs(running) * 1e-9) << step;
  }
  const double full = eval.RecomputeFull();
  EXPECT_NEAR(full, running, std::abs(full) * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectiveIncrementalConsistency,
                         ::testing::Values(1u, 2u, 3u));

TEST(Objective, LeakagePowerEntersThermalTerm) {
  const netlist::Netlist nl = TinyCircuit();
  const Chip chip = *Chip::Build(nl, 4, 0.05, 0.25);
  PlacerParams params;
  params.num_layers = 4;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 2e-6;
  params.electrical.leakage_per_cell_w = 1e-7;
  params.SyncStack();
  ObjectiveEvaluator eval(nl, chip, params);
  const Placement p = TinyPlacement();
  eval.SetPlacement(p);

  // The leakage contribution is alpha_temp * leak * sum_j R_j.
  PlacerParams no_leak = params;
  no_leak.electrical.leakage_per_cell_w = 0.0;
  ObjectiveEvaluator base(nl, chip, no_leak);
  base.SetPlacement(p);
  double r_sum = 0.0;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    r_sum += eval.CellResistance(c);
  }
  EXPECT_NEAR(eval.Total() - base.Total(),
              params.alpha_temp * 1e-7 * r_sum,
              eval.Total() * 1e-9);
}

TEST(Objective, LeakageIncrementalConsistency) {
  io::SyntheticSpec spec;
  spec.name = "leak";
  spec.num_cells = 150;
  spec.total_area_m2 = 150 * 4.9e-12;
  spec.seed = 77;
  const netlist::Netlist nl = io::Generate(spec);
  const Chip chip = *Chip::Build(nl, 4, 0.05, 0.25);
  PlacerParams params;
  params.num_layers = 4;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 5e-6;
  params.electrical.leakage_per_cell_w = 2e-7;
  params.SyncStack();
  ObjectiveEvaluator eval(nl, chip, params);
  util::Rng rng(9);
  Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = rng.NextDouble(0.0, chip.width());
    p.y[i] = rng.NextDouble(0.0, chip.height());
    p.layer[i] = rng.NextInt(0, 3);
  }
  eval.SetPlacement(p);
  double running = eval.Total();
  for (int step = 0; step < 150; ++step) {
    if (rng.NextBool()) {
      const auto c = static_cast<std::int32_t>(
          rng.NextBounded(static_cast<std::uint64_t>(nl.NumCells())));
      const double nx = rng.NextDouble(0.0, chip.width());
      const double ny = rng.NextDouble(0.0, chip.height());
      const int nlayer = rng.NextInt(0, 3);
      running += eval.MoveDelta(c, nx, ny, nlayer);
      eval.CommitMove(c, nx, ny, nlayer);
    } else {
      const auto a = static_cast<std::int32_t>(
          rng.NextBounded(static_cast<std::uint64_t>(nl.NumCells())));
      const auto b = static_cast<std::int32_t>(
          rng.NextBounded(static_cast<std::uint64_t>(nl.NumCells())));
      if (a == b) continue;
      running += eval.SwapDelta(a, b);
      eval.CommitSwap(a, b);
    }
  }
  ASSERT_NEAR(eval.Total(), running, std::abs(running) * 1e-9);
  EXPECT_NEAR(eval.RecomputeFull(), running, std::abs(running) * 1e-9);
}

TEST(Objective, LeakagePrefersLowerLayers) {
  // For a cell with no nets, only the leakage term reacts to a layer move —
  // and a lower layer strictly reduces it through R_j.
  netlist::Netlist nl;
  nl.AddCell("a", 2e-6, 1e-6);
  nl.AddCell("b", 2e-6, 1e-6);
  nl.AddCell("lonely", 2e-6, 1e-6);  // no pins
  nl.AddNet("n", 0.2);
  nl.AddPin(0, netlist::PinDir::kOutput);
  nl.AddPin(1, netlist::PinDir::kInput);
  ASSERT_TRUE(nl.Finalize());
  const Chip chip = *Chip::Build(nl, 4, 0.05, 0.25);
  PlacerParams params;
  params.num_layers = 4;
  params.alpha_temp = 1e-5;
  params.electrical.leakage_per_cell_w = 1e-6;
  params.SyncStack();
  ObjectiveEvaluator eval(nl, chip, params);
  Placement p;
  p.Resize(3);
  p.layer = {3, 3, 3};
  eval.SetPlacement(p);
  EXPECT_LT(eval.MoveDelta(2, p.x[2], p.y[2], 0), 0.0);
  EXPECT_DOUBLE_EQ(eval.MoveDelta(2, p.x[2], p.y[2], 3), 0.0);
}

TEST(Objective, DriverlessNetHasNoThermalCost) {
  netlist::Netlist nl;
  nl.AddCell("a", 1e-6, 1e-6);
  nl.AddCell("b", 1e-6, 1e-6);
  nl.AddNet("n", 0.9);
  nl.AddPin(0, netlist::PinDir::kInput);
  nl.AddPin(1, netlist::PinDir::kInput);
  ASSERT_TRUE(nl.Finalize());
  const Chip chip = *Chip::Build(nl, 2, 0.05, 0.25);
  PlacerParams params;
  params.num_layers = 2;
  params.alpha_temp = 1e-5;
  params.SyncStack();
  ObjectiveEvaluator eval(nl, chip, params);
  Placement p;
  p.Resize(2);
  p.x = {0.0, 5e-6};
  eval.SetPlacement(p);
  EXPECT_DOUBLE_EQ(eval.ThermalCost(), 0.0);
  EXPECT_GT(eval.TotalHpwl(), 0.0);
}

}  // namespace
}  // namespace p3d::place
