#include <gtest/gtest.h>

#include "check/invariants.h"
#include "check/replay.h"
#include "io/synthetic.h"
#include "place/legalize.h"
#include "place/rowopt.h"
#include "util/rng.h"

namespace p3d::place {
namespace {

struct Fixture {
  netlist::Netlist nl;
  Chip chip;
  PlacerParams params;
  ObjectiveEvaluator eval;

  explicit Fixture(int cells = 500, double alpha_temp = 0.0, int threads = 0,
                   int window_rows = 0)
      : nl(MakeNetlist(cells)),
        chip(*Chip::Build(nl, 4, 0.05, 0.25)),
        params(MakeParams(alpha_temp, threads, window_rows)),
        eval(nl, chip, params) {}

  static netlist::Netlist MakeNetlist(int cells) {
    io::SyntheticSpec spec;
    spec.name = "ropt";
    spec.num_cells = cells;
    spec.total_area_m2 = cells * 4.9e-12;
    spec.seed = 61;
    return io::Generate(spec);
  }
  static PlacerParams MakeParams(double alpha_temp, int threads = 0,
                                 int window_rows = 0) {
    PlacerParams p;
    p.num_layers = 4;
    p.alpha_ilv = 1e-5;
    p.alpha_temp = alpha_temp;
    if (threads > 0) p.legalize_threads = threads;
    if (window_rows > 0) p.legalize_window_rows = window_rows;
    p.SyncStack();
    return p;
  }

  /// Produces a legal (but unoptimized) placement via the legalizer.
  void LegalStart(std::uint64_t seed) {
    util::Rng rng(seed);
    Placement p;
    p.Resize(static_cast<std::size_t>(nl.NumCells()));
    for (std::size_t i = 0; i < p.size(); ++i) {
      p.x[i] = rng.NextDouble(0.0, chip.width());
      p.y[i] = rng.NextDouble(0.0, chip.height());
      p.layer[i] = rng.NextInt(0, 3);
    }
    eval.SetPlacement(p);
    DetailedLegalizer legalizer(eval);
    ASSERT_TRUE(legalizer.Run().success);
  }
};

void ExpectLegal(const Fixture& f) {
  const Placement& p = f.eval.placement();
  EXPECT_EQ(DetailedLegalizer::CountOverlaps(f.nl, p), 0);
  for (std::int32_t c = 0; c < f.nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    const double half_w = f.nl.cell(c).width / 2.0;
    EXPECT_GE(p.x[i] - half_w, -1e-12);
    EXPECT_LE(p.x[i] + half_w, f.chip.width() + 1e-12);
    const int row = f.chip.NearestRow(p.y[i]);
    EXPECT_NEAR(p.y[i], f.chip.RowCenterY(row), 1e-12);
  }
}

TEST(RowRefiner, PreservesLegality) {
  Fixture f;
  f.LegalStart(1);
  RowRefiner refiner(f.eval, 2);
  refiner.Run(3);
  ExpectLegal(f);
}

TEST(RowRefiner, NeverWorsensObjective) {
  Fixture f;
  f.LegalStart(3);
  const double before = f.eval.Total();
  RowRefiner refiner(f.eval, 4);
  const RowOptStats stats = refiner.Run(2);
  EXPECT_LE(f.eval.Total(), before * (1 + 1e-12));
  EXPECT_NEAR(before - f.eval.Total(), stats.gain,
              std::abs(before) * 1e-9);
}

TEST(RowRefiner, ImprovesUnoptimizedLegalPlacement) {
  Fixture f(800);
  f.LegalStart(5);
  const double before = f.eval.Total();
  RowRefiner refiner(f.eval, 6);
  refiner.Run(3);
  // A legalized random placement leaves plenty of slide/reorder gain.
  EXPECT_LT(f.eval.Total(), 0.95 * before);
  ExpectLegal(f);
}

TEST(RowRefiner, IncrementalStateConsistent) {
  Fixture f(300, /*alpha_temp=*/2e-6);
  f.LegalStart(7);
  RowRefiner refiner(f.eval, 8);
  refiner.Run(2);
  const double cached = f.eval.Total();
  EXPECT_NEAR(f.eval.RecomputeFull(), cached, std::abs(cached) * 1e-9);
}

TEST(RowRefiner, ReportsActionCounts) {
  Fixture f;
  f.LegalStart(9);
  RowRefiner refiner(f.eval, 10);
  const RowOptStats stats = refiner.Run(2);
  EXPECT_GT(stats.slides + stats.reorders + stats.layer_swaps, 0);
  EXPECT_GE(stats.gain, 0.0);
}

TEST(RowRefiner, LayerSwapsTradeViasForObjective) {
  // With a strong alpha_ILV, layer swaps that merge net spans are very
  // valuable; the refiner should find at least some on a scrambled start.
  Fixture f(600);
  f.LegalStart(11);
  RowRefiner refiner(f.eval, 12);
  const RowOptStats stats = refiner.Run(3);
  EXPECT_GT(stats.layer_swaps, 0);
}

// ----- windowed parallel schedule ------------------------------------------

TEST(RowRefiner, ThreadCountDoesNotChangePlacementBytes) {
  // All three passes run under the windowed propose/commit protocol
  // (DESIGN.md §5): proposals are screened per row block against the frozen
  // placement, commits replay serially in ascending window order and
  // re-evaluate against the live state. The refined placement must be
  // byte-identical at any thread count; small windows force many blocks.
  Placement reference;
  RowOptStats ref_stats;
  for (const int threads : {1, 3, 4}) {
    Fixture f(800, /*alpha_temp=*/0.0, threads, /*window_rows=*/4);
    f.LegalStart(21);
    RowRefiner refiner(f.eval, 22);
    const RowOptStats stats = refiner.Run(3);
    if (threads == 1) {
      reference = f.eval.placement();
      ref_stats = stats;
    } else {
      EXPECT_EQ(reference.x, f.eval.placement().x) << "threads=" << threads;
      EXPECT_EQ(reference.y, f.eval.placement().y) << "threads=" << threads;
      EXPECT_EQ(reference.layer, f.eval.placement().layer)
          << "threads=" << threads;
      // The schedule itself must match, not just the endpoint.
      EXPECT_EQ(stats.slides, ref_stats.slides);
      EXPECT_EQ(stats.reorders, ref_stats.reorders);
      EXPECT_EQ(stats.layer_swaps, ref_stats.layer_swaps);
      EXPECT_DOUBLE_EQ(stats.gain, ref_stats.gain);
    }
    ExpectLegal(f);
  }
}

TEST(RowRefiner, ParallelRunReplaysUnderParanoidAudit) {
  // Record every commit (including reorder/layer-swap rollback moves) of a
  // 4-thread refinement and replay the sequence on a fresh evaluator: every
  // applied delta must match a freshly computed one and the final placement
  // must reproduce bitwise.
  Fixture f(500, /*alpha_temp=*/0.0, /*threads=*/4, /*window_rows=*/4);
  f.LegalStart(23);
  check::MoveLog log;
  log.Rebase(f.eval.placement());
  f.eval.AddCommitListener(&log);
  RowRefiner refiner(f.eval, 24);
  refiner.Run(2);
  ASSERT_TRUE(log.has_start());
  ASSERT_EQ(log.dropped(), 0u);
  const check::ReplayResult result = check::ReplayAndVerify(
      f.nl, f.chip, f.params, log, &f.eval.placement());
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(RowRefiner, ParallelRefineNeverEntersFixedWalls) {
  // A tall fixed block walls the middle of every row; parallel rowopt must
  // treat it as impenetrable. Verified with the src/check invariant rather
  // than ad-hoc geometry, the same check the paranoid auditor runs.
  netlist::Netlist nl;
  for (int c = 0; c < 120; ++c) {
    nl.AddCell("c" + std::to_string(c), (1.2 + 0.8 * (c % 4)) * 1e-6, 1.4e-6);
  }
  const std::int32_t blk = nl.AddCell("block", 3e-6, 400e-6, /*fixed=*/true);
  nl.AddNet("n");
  nl.AddPin(0, netlist::PinDir::kOutput);
  nl.AddPin(1, netlist::PinDir::kInput);
  ASSERT_TRUE(nl.Finalize());
  PlacerParams params;
  params.num_layers = 1;
  params.legalize_threads = 4;
  params.legalize_window_rows = 2;
  params.SyncStack();
  const Chip chip = *Chip::Build(nl, 1, 0.40, 0.25);
  ObjectiveEvaluator eval(nl, chip, params);
  Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  util::Rng rng(25);
  for (std::int32_t c = 0; c < 120; ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    p.x[i] = rng.NextDouble(0.0, chip.width());
    p.y[i] = rng.NextDouble(0.0, chip.height());
  }
  const std::size_t bi = static_cast<std::size_t>(blk);
  p.x[bi] = chip.width() / 2;
  p.y[bi] = chip.height() / 2;
  eval.SetPlacement(p);
  DetailedLegalizer legalizer(eval);
  ASSERT_TRUE(legalizer.Run().success);
  RowRefiner refiner(eval, 26);
  refiner.Run(3);
  std::vector<check::Violation> violations;
  EXPECT_EQ(check::CheckFixedOverlap(nl, eval.placement(), &violations), 0)
      << (violations.empty() ? "" : violations.front().message);
  EXPECT_EQ(DetailedLegalizer::CountOverlaps(nl, eval.placement()), 0);
}

class RowRefinerSweep : public ::testing::TestWithParam<int> {};

TEST_P(RowRefinerSweep, LegalAndMonotoneAcrossSizes) {
  Fixture f(GetParam());
  f.LegalStart(static_cast<std::uint64_t>(GetParam()));
  const double before = f.eval.Total();
  RowRefiner refiner(f.eval, 13);
  refiner.Run(2);
  EXPECT_LE(f.eval.Total(), before * (1 + 1e-12));
  ExpectLegal(f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RowRefinerSweep,
                         ::testing::Values(100, 300, 900));

}  // namespace
}  // namespace p3d::place
