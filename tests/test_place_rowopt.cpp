#include <gtest/gtest.h>

#include "io/synthetic.h"
#include "place/legalize.h"
#include "place/rowopt.h"
#include "util/rng.h"

namespace p3d::place {
namespace {

struct Fixture {
  netlist::Netlist nl;
  Chip chip;
  PlacerParams params;
  ObjectiveEvaluator eval;

  explicit Fixture(int cells = 500, double alpha_temp = 0.0)
      : nl(MakeNetlist(cells)),
        chip(*Chip::Build(nl, 4, 0.05, 0.25)),
        params(MakeParams(alpha_temp)),
        eval(nl, chip, params) {}

  static netlist::Netlist MakeNetlist(int cells) {
    io::SyntheticSpec spec;
    spec.name = "ropt";
    spec.num_cells = cells;
    spec.total_area_m2 = cells * 4.9e-12;
    spec.seed = 61;
    return io::Generate(spec);
  }
  static PlacerParams MakeParams(double alpha_temp) {
    PlacerParams p;
    p.num_layers = 4;
    p.alpha_ilv = 1e-5;
    p.alpha_temp = alpha_temp;
    p.SyncStack();
    return p;
  }

  /// Produces a legal (but unoptimized) placement via the legalizer.
  void LegalStart(std::uint64_t seed) {
    util::Rng rng(seed);
    Placement p;
    p.Resize(static_cast<std::size_t>(nl.NumCells()));
    for (std::size_t i = 0; i < p.size(); ++i) {
      p.x[i] = rng.NextDouble(0.0, chip.width());
      p.y[i] = rng.NextDouble(0.0, chip.height());
      p.layer[i] = rng.NextInt(0, 3);
    }
    eval.SetPlacement(p);
    DetailedLegalizer legalizer(eval);
    ASSERT_TRUE(legalizer.Run().success);
  }
};

void ExpectLegal(const Fixture& f) {
  const Placement& p = f.eval.placement();
  EXPECT_EQ(DetailedLegalizer::CountOverlaps(f.nl, p), 0);
  for (std::int32_t c = 0; c < f.nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    const double half_w = f.nl.cell(c).width / 2.0;
    EXPECT_GE(p.x[i] - half_w, -1e-12);
    EXPECT_LE(p.x[i] + half_w, f.chip.width() + 1e-12);
    const int row = f.chip.NearestRow(p.y[i]);
    EXPECT_NEAR(p.y[i], f.chip.RowCenterY(row), 1e-12);
  }
}

TEST(RowRefiner, PreservesLegality) {
  Fixture f;
  f.LegalStart(1);
  RowRefiner refiner(f.eval, 2);
  refiner.Run(3);
  ExpectLegal(f);
}

TEST(RowRefiner, NeverWorsensObjective) {
  Fixture f;
  f.LegalStart(3);
  const double before = f.eval.Total();
  RowRefiner refiner(f.eval, 4);
  const RowOptStats stats = refiner.Run(2);
  EXPECT_LE(f.eval.Total(), before * (1 + 1e-12));
  EXPECT_NEAR(before - f.eval.Total(), stats.gain,
              std::abs(before) * 1e-9);
}

TEST(RowRefiner, ImprovesUnoptimizedLegalPlacement) {
  Fixture f(800);
  f.LegalStart(5);
  const double before = f.eval.Total();
  RowRefiner refiner(f.eval, 6);
  refiner.Run(3);
  // A legalized random placement leaves plenty of slide/reorder gain.
  EXPECT_LT(f.eval.Total(), 0.95 * before);
  ExpectLegal(f);
}

TEST(RowRefiner, IncrementalStateConsistent) {
  Fixture f(300, /*alpha_temp=*/2e-6);
  f.LegalStart(7);
  RowRefiner refiner(f.eval, 8);
  refiner.Run(2);
  const double cached = f.eval.Total();
  EXPECT_NEAR(f.eval.RecomputeFull(), cached, std::abs(cached) * 1e-9);
}

TEST(RowRefiner, ReportsActionCounts) {
  Fixture f;
  f.LegalStart(9);
  RowRefiner refiner(f.eval, 10);
  const RowOptStats stats = refiner.Run(2);
  EXPECT_GT(stats.slides + stats.reorders + stats.layer_swaps, 0);
  EXPECT_GE(stats.gain, 0.0);
}

TEST(RowRefiner, LayerSwapsTradeViasForObjective) {
  // With a strong alpha_ILV, layer swaps that merge net spans are very
  // valuable; the refiner should find at least some on a scrambled start.
  Fixture f(600);
  f.LegalStart(11);
  RowRefiner refiner(f.eval, 12);
  const RowOptStats stats = refiner.Run(3);
  EXPECT_GT(stats.layer_swaps, 0);
}

class RowRefinerSweep : public ::testing::TestWithParam<int> {};

TEST_P(RowRefinerSweep, LegalAndMonotoneAcrossSizes) {
  Fixture f(GetParam());
  f.LegalStart(static_cast<std::uint64_t>(GetParam()));
  const double before = f.eval.Total();
  RowRefiner refiner(f.eval, 13);
  refiner.Run(2);
  EXPECT_LE(f.eval.Total(), before * (1 + 1e-12));
  ExpectLegal(f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RowRefinerSweep,
                         ::testing::Values(100, 300, 900));

}  // namespace
}  // namespace p3d::place
