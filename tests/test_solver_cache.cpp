// The determinism contract of the solver reuse layer (DESIGN.md §8):
// caching (FeaContext assembly reuse, CG warm starts, incremental net-box
// kernels) is allowed to change how fast answers arrive, never which
// placement comes out. Placements must be byte-identical with caching on
// vs. off, at any thread count, and for either CG preconditioner; the
// reuse itself must be visible as solver/* metrics.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "io/synthetic.h"
#include "linalg/multigrid.h"
#include "obs/metrics.h"
#include "place/monitor.h"
#include "place/placer.h"
#include "thermal/fea.h"
#include "util/log.h"

namespace p3d {
namespace {

netlist::Netlist Circuit(int cells, std::uint64_t seed) {
  io::SyntheticSpec spec;
  spec.name = "cache";
  spec.num_cells = cells;
  spec.total_area_m2 = cells * 4.9e-12;
  spec.seed = seed;
  return io::Generate(spec);
}

place::PlacerParams ThermalParams() {
  place::PlacerParams params;
  params.num_layers = 4;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 5e-6;  // exercise the thermal objective path
  params.partition_starts = 4;
  params.seed = 20260806;
  return params;
}

/// Drops metric lines keyed under cg/, solver/, and fea/ — the solver
/// accounting legitimately differs with caching on vs. off; everything else
/// (flow counters, audit counters, objective series) must not.
std::string FilterSolverMetrics(const std::string& dump) {
  std::istringstream in(dump);
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("cg/") != std::string::npos) continue;
    if (line.find("solver/") != std::string::npos) continue;
    if (line.find("fea/") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

struct RunOutput {
  place::PlacementResult result;
  std::string metrics_dump;
  std::string filtered_dump;
};

RunOutput RunWith(const netlist::Netlist& nl, const place::PlacerParams& params,
                  const place::RunOptions& opts) {
  obs::MetricsRegistry registry;
  obs::InstallMetrics(&registry);
  place::Placer3D placer(nl, params);
  RunOutput out{.result = *placer.Run(opts)};
  obs::InstallMetrics(nullptr);
  out.metrics_dump = registry.DumpDeterministic();
  out.filtered_dump = FilterSolverMetrics(out.metrics_dump);
  return out;
}

void ExpectSamePlacement(const place::PlacementResult& a,
                         const place::PlacementResult& b) {
  EXPECT_EQ(a.placement.x, b.placement.x);
  EXPECT_EQ(a.placement.y, b.placement.y);
  EXPECT_EQ(a.placement.layer, b.placement.layer);
  EXPECT_EQ(a.hpwl_m, b.hpwl_m);
  EXPECT_EQ(a.ilv_count, b.ilv_count);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.legal, b.legal);
}

TEST(SolverCache, PlacementByteIdenticalCacheOnVsOff) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = Circuit(300, 21);
  const place::PlacerParams params = ThermalParams();

  // Per-phase FEA on, so the cached path actually solves repeatedly.
  const RunOutput cached = RunWith(
      nl, params,
      {.with_fea = true, .fea_per_phase = true, .use_solver_cache = true});
  const RunOutput uncached = RunWith(
      nl, params,
      {.with_fea = true, .fea_per_phase = true, .use_solver_cache = false});

  ExpectSamePlacement(cached.result, uncached.result);
  // Final-solve temperatures agree to solver tolerance (the cached run's
  // final solve is warm-started, so the CG iterates differ).
  EXPECT_NEAR(cached.result.avg_temp_c, uncached.result.avg_temp_c, 1e-4);
  EXPECT_NEAR(cached.result.max_temp_c, uncached.result.max_temp_c, 1e-4);
  // Everything outside the solver-accounting namespaces is identical.
  EXPECT_EQ(cached.filtered_dump, uncached.filtered_dump);
  EXPECT_FALSE(cached.filtered_dump.empty());
}

TEST(SolverCache, PlacementByteIdenticalThreads1Vs4WithCache) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = Circuit(300, 22);
  place::PlacerParams params = ThermalParams();

  params.threads = 1;
  const RunOutput r1 = RunWith(
      nl, params,
      {.with_fea = true, .fea_per_phase = true, .use_solver_cache = true});
  params.threads = 4;
  const RunOutput r4 = RunWith(
      nl, params,
      {.with_fea = true, .fea_per_phase = true, .use_solver_cache = true});

  ExpectSamePlacement(r1.result, r4.result);
  // The deterministic runtime makes CG bit-identical across thread counts,
  // so even the solver counters (iterations, warm-start savings) agree and
  // the full dumps compare equal.
  EXPECT_EQ(r1.result.avg_temp_c, r4.result.avg_temp_c);
  EXPECT_EQ(r1.result.max_temp_c, r4.result.max_temp_c);
  EXPECT_EQ(r1.result.fea_cg_iters, r4.result.fea_cg_iters);
  EXPECT_EQ(r1.metrics_dump, r4.metrics_dump);
}

TEST(SolverCache, PreconditionerChoiceDoesNotAffectPlacement) {
  // FEA is observational — it never feeds back into move decisions — so
  // switching the CG preconditioner must leave the placement untouched.
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = Circuit(250, 23);
  const place::PlacerParams params = ThermalParams();

  const RunOutput ic0 = RunWith(
      nl, params,
      {.with_fea = true, .preconditioner = linalg::PreconditionerKind::kIc0});
  const RunOutput jacobi =
      RunWith(nl, params,
              {.with_fea = true,
               .preconditioner = linalg::PreconditionerKind::kJacobi});

  ExpectSamePlacement(ic0.result, jacobi.result);
  ASSERT_TRUE(ic0.result.fea_valid);
  ASSERT_TRUE(jacobi.result.fea_valid);
  EXPECT_NEAR(ic0.result.avg_temp_c, jacobi.result.avg_temp_c, 1e-4);
  // IC(0) is the one doing less work.
  EXPECT_LT(ic0.result.fea_cg_iters, jacobi.result.fea_cg_iters);
}

TEST(SolverCache, ReuseIsVisibleInSolverMetrics) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = Circuit(200, 24);
  const place::PlacerParams params = ThermalParams();

  obs::MetricsRegistry registry;
  obs::InstallMetrics(&registry);
  place::Placer3D placer(nl, params);
  const place::PlacementResult r = *placer.Run(
      {.with_fea = true, .fea_per_phase = true, .use_solver_cache = true});
  obs::InstallMetrics(nullptr);

  ASSERT_TRUE(r.fea_valid);
  EXPECT_GT(r.fea_solves, 1);
  // One assembly, many solves: every solve after the first is a cache hit,
  // and every one of those is warm-started.
  EXPECT_EQ(registry.Counter("solver/fea_rebuilds"), 1);
  EXPECT_EQ(registry.Counter("solver/fea_solves"), r.fea_solves);
  EXPECT_EQ(registry.Counter("solver/fea_cache_hits"), r.fea_solves - 1);
  EXPECT_EQ(registry.Counter("solver/warm_starts"), r.fea_solves - 1);
  EXPECT_GE(registry.Counter("solver/warm_iters_saved"), 0);
  // The incremental net-box kernel carried the commit hot path.
  EXPECT_GT(registry.Counter("solver/netbox_incremental_evals"), 0);
}

TEST(SolverCache, NetBoxKernelOnOffByteIdentical) {
  // The incremental bounds are exact min/max (never accumulated), so
  // disabling the kernel must not move a single byte of the placement.
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = Circuit(300, 25);
  place::PlacerParams params = ThermalParams();

  params.incremental_net_boxes = true;
  place::Placer3D fast(nl, params);
  const place::PlacementResult rf = *fast.Run({.with_fea = false});
  const place::ObjectiveEvaluator::EvalStats stats =
      fast.evaluator().eval_stats();
  EXPECT_GT(stats.incremental_evals, 0);

  params.incremental_net_boxes = false;
  place::Placer3D slow(nl, params);
  const place::PlacementResult rs = *slow.Run({.with_fea = false});
  EXPECT_EQ(slow.evaluator().eval_stats().incremental_evals, 0);

  ExpectSamePlacement(rf, rs);
}

TEST(SolverCache, FeaContextWarmStartConvergesWithEveryPreconditioner) {
  // FeaContext on a thermal fixture: one assembly, warm-started re-solves,
  // deterministic cold restart after a geometry change. Multigrid rides the
  // same contract as Jacobi/IC(0) — here as the CG preconditioner (the
  // 10-elem lateral grid still halves once, to 5x5).
  thermal::ThermalStack stack;
  stack.num_layers = 3;
  const thermal::ChipExtent chip{1e-3, 1e-3};

  for (const linalg::PreconditionerKind kind :
       {linalg::PreconditionerKind::kJacobi, linalg::PreconditionerKind::kIc0,
        linalg::PreconditionerKind::kMultigrid}) {
    thermal::FeaContextOptions opt;
    opt.fea.nx = 10;
    opt.fea.ny = 10;
    opt.fea.bulk_elems = 3;
    opt.fea.cg.preconditioner = kind;
    thermal::FeaContext ctx(stack, chip, opt);

    std::vector<double> x{0.3e-3, 0.7e-3}, y{0.4e-3, 0.6e-3};
    std::vector<int> layer{0, 2};
    std::vector<double> power{0.05, 0.08};

    const thermal::FeaResult cold = ctx.Solve(x, y, layer, power);
    ASSERT_TRUE(cold.converged);
    EXPECT_GT(cold.avg_cell_temp, 0.0);

    // Slightly perturbed load: the warm start should not cost more
    // iterations than the cold solve, and the answer must still converge.
    power[0] = 0.06;
    const thermal::FeaResult warm = ctx.Solve(x, y, layer, power);
    ASSERT_TRUE(warm.converged);
    EXPECT_LE(warm.cg_iters, cold.cg_iters);

    EXPECT_EQ(ctx.stats().solves, 2);
    EXPECT_EQ(ctx.stats().rebuilds, 1);
    EXPECT_EQ(ctx.stats().cache_hits, 1);
    EXPECT_EQ(ctx.stats().warm_starts, 1);

    // Same geometry: Refresh is a no-op. New geometry: full rebuild.
    EXPECT_FALSE(ctx.Refresh(stack, chip));
    thermal::ThermalStack taller = stack;
    taller.num_layers = 4;
    EXPECT_TRUE(ctx.Refresh(taller, chip));
    EXPECT_EQ(ctx.stats().rebuilds, 2);
    std::vector<int> layer2{0, 3};
    const thermal::FeaResult after = ctx.Solve(x, y, layer2, power);
    ASSERT_TRUE(after.converged);
  }
}

TEST(SolverCache, NonConvergedSolveDoesNotPoisonWarmStart) {
  // Regression: FeaContext::Solve used to save the truncated iterate as the
  // warm-start seed even when the solve hit its iteration cap, so the next
  // solve silently continued from garbage. A failed solve must leave the
  // warm-start state empty (and be counted).
  thermal::ThermalStack stack;
  stack.num_layers = 2;
  const thermal::ChipExtent chip{1e-3, 1e-3};
  thermal::FeaContextOptions opt;
  opt.fea.nx = 12;
  opt.fea.ny = 12;
  opt.fea.bulk_elems = 3;
  opt.fea.cg.max_iters = 1;  // force every solve to hit the cap

  obs::MetricsRegistry registry;
  obs::InstallMetrics(&registry);
  thermal::FeaContext ctx(stack, chip, opt);
  const std::vector<double> x{0.3e-3}, y{0.4e-3}, power{0.05};
  const std::vector<int> layer{1};

  const thermal::FeaResult r1 = ctx.Solve(x, y, layer, power);
  EXPECT_FALSE(r1.converged);
  const thermal::FeaResult r2 = ctx.Solve(x, y, layer, power);
  EXPECT_FALSE(r2.converged);
  obs::InstallMetrics(nullptr);

  // No warm start was recorded, so the two truncated solves both started
  // cold from zeros and are bit-identical.
  EXPECT_EQ(ctx.stats().warm_starts, 0);
  EXPECT_EQ(r1.node_temp, r2.node_temp);
  EXPECT_EQ(r1.cg_iters, r2.cg_iters);
  // Both failures are visible: per-context stats and the metrics counter
  // the anomaly monitor watches.
  EXPECT_EQ(ctx.stats().nonconverged, 2);
  EXPECT_EQ(registry.Counter("fea/nonconverged"), 2);
}

TEST(SolverCache, AnomalyMonitorFlagsFeaNonconvergence) {
  // The monitor reads the fea/nonconverged counter delta at every phase
  // boundary; any capped solve since the previous boundary flags an anomaly.
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = Circuit(100, 27);
  const place::PlacerParams params = ThermalParams();
  place::Placer3D placer(nl, params);
  place::AnomalyMonitor monitor;

  obs::MetricsRegistry registry;
  obs::InstallMetrics(&registry);
  monitor.OnPhase("global", -1, placer.evaluator(), nullptr);
  EXPECT_TRUE(monitor.anomalies().empty());
  obs::MetricAdd("fea/nonconverged", 1);  // what a capped solve records
  monitor.OnPhase("coarse", 0, placer.evaluator(), nullptr);
  obs::InstallMetrics(nullptr);

  ASSERT_EQ(monitor.anomalies().size(), 1u);
  EXPECT_EQ(monitor.anomalies()[0].kind, "fea_nonconverged");
  EXPECT_EQ(monitor.anomalies()[0].phase, "coarse");
  EXPECT_EQ(monitor.anomalies()[0].detail, 1.0);
  EXPECT_EQ(registry.Counter("anomaly/fea_nonconverged"), 1);
}

TEST(SolverCache, MultigridMatchesIc0AtEqualTolerance) {
  // Same FEA system, same 1e-8 relative tolerance: standalone multigrid
  // V-cycles, multigrid-preconditioned CG, and IC(0)-preconditioned CG must
  // agree on the temperatures they report.
  thermal::ThermalStack stack;
  stack.num_layers = 4;
  const thermal::ChipExtent chip{1e-3, 1e-3};
  thermal::FeaContextOptions base;
  base.fea.nx = 24;  // coarsens 24 -> 12 -> 6 -> 3
  base.fea.ny = 24;
  base.fea.bulk_elems = 4;

  const std::vector<double> x{0.3e-3, 0.7e-3, 0.5e-3};
  const std::vector<double> y{0.4e-3, 0.6e-3, 0.5e-3};
  const std::vector<int> layer{0, 2, 3};
  const std::vector<double> power{0.05, 0.08, 0.03};

  thermal::FeaContextOptions ic0 = base;
  ic0.fea.cg.preconditioner = linalg::PreconditionerKind::kIc0;
  thermal::FeaContext ctx_ic0(stack, chip, ic0);
  const thermal::FeaResult want = ctx_ic0.Solve(x, y, layer, power);
  ASSERT_TRUE(want.converged);

  thermal::FeaContextOptions mg = base;
  mg.fea.solver = thermal::FeaSolverKind::kMultigrid;
  thermal::FeaContext ctx_mg(stack, chip, mg);
  ASSERT_NE(ctx_mg.assembly()->hierarchy, nullptr);
  EXPECT_EQ(ctx_mg.assembly()->hierarchy->NumLevels(), 4);
  EXPECT_TRUE(ctx_mg.assembly()->UsesStandaloneMultigrid());
  const thermal::FeaResult standalone = ctx_mg.Solve(x, y, layer, power);
  ASSERT_TRUE(standalone.converged);
  // V-cycles converge in far fewer iterations than Krylov sweeps.
  EXPECT_LT(standalone.cg_iters, want.cg_iters);

  thermal::FeaContextOptions mgpc = base;
  mgpc.fea.cg.preconditioner = linalg::PreconditionerKind::kMultigrid;
  thermal::FeaContext ctx_mgpc(stack, chip, mgpc);
  ASSERT_NE(ctx_mgpc.assembly()->hierarchy, nullptr);
  EXPECT_FALSE(ctx_mgpc.assembly()->UsesStandaloneMultigrid());
  const thermal::FeaResult precond = ctx_mgpc.Solve(x, y, layer, power);
  ASSERT_TRUE(precond.converged);

  for (const thermal::FeaResult* r : {&standalone, &precond}) {
    EXPECT_NEAR(r->avg_cell_temp, want.avg_cell_temp,
                std::abs(want.avg_cell_temp) * 1e-4 + 1e-6);
    EXPECT_NEAR(r->max_cell_temp, want.max_cell_temp,
                std::abs(want.max_cell_temp) * 1e-4 + 1e-6);
  }
}

TEST(SolverCache, MultigridFallsBackWhenGridCannotCoarsen) {
  // An odd lateral grid cannot be halved even once; the assembly must
  // degrade to IC(0)-preconditioned CG instead of failing.
  thermal::ThermalStack stack;
  stack.num_layers = 2;
  const thermal::ChipExtent chip{1e-3, 1e-3};
  thermal::FeaContextOptions opt;
  opt.fea.nx = 11;
  opt.fea.ny = 11;
  opt.fea.bulk_elems = 2;
  opt.fea.solver = thermal::FeaSolverKind::kMultigrid;

  util::ScopedLogLevel quiet(util::LogLevel::kError);
  thermal::FeaContext ctx(stack, chip, opt);
  EXPECT_EQ(ctx.assembly()->hierarchy, nullptr);
  EXPECT_FALSE(ctx.assembly()->UsesStandaloneMultigrid());
  EXPECT_EQ(ctx.preconditioner().kind(), linalg::PreconditionerKind::kIc0);
  const thermal::FeaResult r =
      ctx.Solve({0.3e-3}, {0.4e-3}, {1}, {0.05});
  EXPECT_TRUE(r.converged);
}

TEST(SolverCache, RefreshRebuildsMultigridHierarchy) {
  // A geometry change must rebuild the mesh hierarchy along with the matrix
  // and preconditioner; a matching Refresh must keep the shared assembly.
  thermal::ThermalStack stack;
  stack.num_layers = 2;
  const thermal::ChipExtent chip{1e-3, 1e-3};
  thermal::FeaContextOptions opt;
  opt.fea.nx = 12;  // coarsens 12 -> 6 -> 3
  opt.fea.ny = 12;
  opt.fea.bulk_elems = 3;
  opt.fea.solver = thermal::FeaSolverKind::kMultigrid;
  thermal::FeaContext ctx(stack, chip, opt);

  const auto h1 = ctx.assembly()->hierarchy;
  ASSERT_NE(h1, nullptr);
  EXPECT_EQ(h1->NumLevels(), 3);
  EXPECT_EQ(h1->Dim(), ctx.solver().NumNodes());
  const std::vector<double> x{0.3e-3}, y{0.4e-3}, power{0.05};
  ASSERT_TRUE(ctx.Solve(x, y, {1}, power).converged);

  EXPECT_FALSE(ctx.Refresh(stack, chip));
  EXPECT_EQ(ctx.assembly()->hierarchy.get(), h1.get());

  thermal::ThermalStack taller = stack;
  taller.num_layers = 4;
  EXPECT_TRUE(ctx.Refresh(taller, chip));
  const auto h2 = ctx.assembly()->hierarchy;
  ASSERT_NE(h2, nullptr);
  EXPECT_NE(h2.get(), h1.get());
  // The rebuilt fine level matches the new mesh (more z planes).
  EXPECT_EQ(h2->Dim(), ctx.solver().NumNodes());
  EXPECT_GT(h2->Dim(), h1->Dim());
  ASSERT_TRUE(ctx.Solve(x, y, {3}, power).converged);
}

TEST(SolverCache, MultigridPerPassByteIdenticalThreads1Vs8) {
  // The whole point of per-pass thermal + multigrid: placements stay
  // byte-identical at any thread count, and so does every deterministic
  // counter (V-cycles included).
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  const netlist::Netlist nl = Circuit(300, 26);
  place::PlacerParams params = ThermalParams();
  params.fea_per_pass = true;

  params.threads = 1;
  const RunOutput r1 = RunWith(
      nl, params,
      {.with_fea = true,
       .fea_per_phase = true,
       .use_solver_cache = true,
       .preconditioner = linalg::PreconditionerKind::kMultigrid});
  params.threads = 8;
  const RunOutput r8 = RunWith(
      nl, params,
      {.with_fea = true,
       .fea_per_phase = true,
       .use_solver_cache = true,
       .preconditioner = linalg::PreconditionerKind::kMultigrid});

  ExpectSamePlacement(r1.result, r8.result);
  EXPECT_EQ(r1.result.avg_temp_c, r8.result.avg_temp_c);
  EXPECT_EQ(r1.result.max_temp_c, r8.result.max_temp_c);
  EXPECT_EQ(r1.result.fea_cg_iters, r8.result.fea_cg_iters);
  EXPECT_EQ(r1.result.fea_nonconverged, 0);
  EXPECT_EQ(r1.metrics_dump, r8.metrics_dump);
  // The per-pass hooks actually fired.
  EXPECT_NE(r1.metrics_dump.find("fea/pass_solves"), std::string::npos);
  EXPECT_GT(r1.result.fea_solves, 2);
}

}  // namespace
}  // namespace p3d
