#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/timer.h"

namespace p3d::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, BoundedCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.NextInt(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    saw_lo |= v == -2;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextDoubleRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto sorted = v;
  rng.Shuffle(v);
  EXPECT_NE(v, sorted);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(21);
  Rng c1 = parent.Fork();
  Rng c2 = parent.Fork();
  EXPECT_NE(c1.NextU64(), c2.NextU64());
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SummarizeBasics) {
  const Summary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, PowerLawFitRecoversParameters) {
  // y = 3e-4 * x^1.2, exactly.
  std::vector<double> x, y;
  for (double v : {100.0, 500.0, 2000.0, 10000.0, 50000.0}) {
    x.push_back(v);
    y.push_back(3e-4 * std::pow(v, 1.2));
  }
  const PowerFit fit = FitPowerLaw(x, y);
  EXPECT_NEAR(fit.a, 3e-4, 1e-8);
  EXPECT_NEAR(fit.b, 1.2, 1e-9);
}

TEST(Stats, PowerLawFitDegenerate) {
  const PowerFit one = FitPowerLaw({5.0}, {2.0});
  EXPECT_EQ(one.a, 0.0);
  const PowerFit same_x = FitPowerLaw({5.0, 5.0}, {2.0, 4.0});
  EXPECT_EQ(same_x.a, 0.0);
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
  EXPECT_NEAR(GeometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(GeometricMean({3.0, 3.0, 3.0}), 3.0, 1e-12);
}

TEST(Log, LevelGate) {
  ScopedLogLevel quiet(LogLevel::kSilent);
  EXPECT_EQ(GetLogLevel(), LogLevel::kSilent);
  // Nothing to assert on output; just exercise the paths.
  LogError("suppressed %d", 1);
  LogDebug("suppressed %s", "x");
}

TEST(Log, ScopedRestore) {
  const LogLevel before = GetLogLevel();
  {
    ScopedLogLevel quiet(LogLevel::kError);
    EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  }
  EXPECT_EQ(GetLogLevel(), before);
}

TEST(Log, ParseLevelNamesAndDigits) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("silent", &level));
  EXPECT_EQ(level, LogLevel::kSilent);
  EXPECT_TRUE(ParseLogLevel("ERROR", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("Warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("4", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("0", &level));
  EXPECT_EQ(level, LogLevel::kSilent);
}

TEST(Log, ParseLevelRejectsGarbage) {
  LogLevel level = LogLevel::kWarn;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel(nullptr, &level));
  EXPECT_FALSE(ParseLogLevel("5", &level));
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_FALSE(ParseLogLevel("42", &level));
  EXPECT_EQ(level, LogLevel::kWarn);  // untouched on failure
}

TEST(Timer, NanosMonotonicAndConsistentWithSeconds) {
  Timer t;
  const std::int64_t a = t.Nanos();
  const std::int64_t b = t.Nanos();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  EXPECT_GE(t.Seconds() * 1e9 + 1e6, static_cast<double>(b));
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GE(t.Seconds(), 0.0);
  t.Reset();
  EXPECT_LT(t.Seconds(), 1.0);
}


TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "ok");
  EXPECT_EQ(s, Status::Ok());
}

TEST(Status, ErrorFactoriesCarryCodeAndMessage) {
  const struct {
    Status status;
    StatusCode code;
    const char* name;
  } cases[] = {
      {InvalidArgumentError("bad arg"), StatusCode::kInvalidArgument,
       "invalid_argument"},
      {FailedPreconditionError("not ready"), StatusCode::kFailedPrecondition,
       "failed_precondition"},
      {NotFoundError("missing"), StatusCode::kNotFound, "not_found"},
      {IoError("disk"), StatusCode::kIoError, "io_error"},
      {ParseError("syntax"), StatusCode::kParseError, "parse_error"},
      {InternalError("bug"), StatusCode::kInternal, "internal"},
      {CancelledError("stopped"), StatusCode::kCancelled, "cancelled"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
    EXPECT_EQ(c.status.ToString(),
              std::string(c.name) + ": " + c.status.message());
    EXPECT_STREQ(StatusCodeName(c.code), c.name);
  }
}

TEST(Status, IsCancelledMatchesOnlyCancellation) {
  EXPECT_TRUE(IsCancelled(CancelledError("user asked")));
  EXPECT_FALSE(IsCancelled(Status::Ok()));
  EXPECT_FALSE(IsCancelled(InternalError("bug")));
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(IoError("x"), IoError("x"));
  EXPECT_FALSE(IoError("x") == IoError("y"));
  EXPECT_FALSE(IoError("x") == ParseError("x"));
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.status().ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOr, HoldsError) {
  const StatusOr<int> e = NotFoundError("gone");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(StatusOr, CopyAndMovePreserveState) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  StatusOr<std::vector<int>> copy = v;
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->size(), 3u);
  StatusOr<std::vector<int>> moved = std::move(v);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ((*moved)[2], 3);

  StatusOr<std::vector<int>> err = IoError("nope");
  copy = err;
  EXPECT_FALSE(copy.ok());
  EXPECT_EQ(copy.status(), IoError("nope"));
  copy = std::move(moved);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->size(), 3u);
}

TEST(StatusOr, RvalueDerefMovesOut) {
  // The move-out path lets `*Factory()` bind a prvalue result to a value.
  auto factory = []() -> StatusOr<std::vector<int>> {
    return std::vector<int>{7, 8};
  };
  const std::vector<int> got = *factory();
  EXPECT_EQ(got, (std::vector<int>{7, 8}));
}

}  // namespace
}  // namespace p3d::util
