#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "io/synthetic.h"

namespace p3d::io {
namespace {

TEST(Table1, HasAll18Circuits) {
  const auto specs = Table1Specs(1.0);
  ASSERT_EQ(specs.size(), 18u);
  EXPECT_EQ(specs.front().name, "ibm01");
  EXPECT_EQ(specs.front().num_cells, 12282);
  EXPECT_NEAR(specs.front().total_area_m2, 0.060e-6, 1e-12);
  EXPECT_EQ(specs.back().name, "ibm18");
  EXPECT_EQ(specs.back().num_cells, 210323);
  EXPECT_NEAR(specs.back().total_area_m2, 0.988e-6, 1e-12);
}

TEST(Table1, ScaleShrinksProportionally) {
  const auto specs = Table1Specs(0.1);
  EXPECT_EQ(specs[0].num_cells, 1228);
  EXPECT_NEAR(specs[0].total_area_m2, 0.060e-7, 1e-13);
}

TEST(Table1, ScaleHasFloor) {
  const auto specs = Table1Specs(1e-9);
  for (const auto& s : specs) EXPECT_GE(s.num_cells, 16);
}

TEST(Table1, LookupByName) {
  const SyntheticSpec s = Table1Spec("ibm07", 1.0);
  EXPECT_EQ(s.num_cells, 45135);
  EXPECT_THROW(Table1Spec("ibm99", 1.0), std::invalid_argument);
}

TEST(Table1, DistinctSeedsPerCircuit) {
  const auto specs = Table1Specs(1.0);
  EXPECT_NE(specs[0].seed, specs[1].seed);
}

TEST(Generate, Deterministic) {
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_cells = 300;
  spec.total_area_m2 = 300 * 5e-12;
  spec.seed = 77;
  const netlist::Netlist a = Generate(spec);
  const netlist::Netlist b = Generate(spec);
  ASSERT_EQ(a.NumNets(), b.NumNets());
  ASSERT_EQ(a.NumPins(), b.NumPins());
  for (std::int32_t n = 0; n < a.NumNets(); ++n) {
    EXPECT_DOUBLE_EQ(a.net(n).activity, b.net(n).activity);
  }
  for (std::int32_t c = 0; c < a.NumCells(); ++c) {
    EXPECT_DOUBLE_EQ(a.cell(c).width, b.cell(c).width);
  }
}

TEST(Generate, DifferentSeedsDiffer) {
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_cells = 300;
  spec.total_area_m2 = 300 * 5e-12;
  spec.seed = 1;
  const netlist::Netlist a = Generate(spec);
  spec.seed = 2;
  const netlist::Netlist b = Generate(spec);
  bool any_diff = a.NumPins() != b.NumPins();
  for (std::int32_t c = 0; !any_diff && c < a.NumCells(); ++c) {
    any_diff = a.cell(c).width != b.cell(c).width;
  }
  EXPECT_TRUE(any_diff);
}

class GenerateStats : public ::testing::TestWithParam<int> {};

TEST_P(GenerateStats, MatchesSpec) {
  const int n = GetParam();
  SyntheticSpec spec;
  spec.name = "p";
  spec.num_cells = n;
  spec.total_area_m2 = n * 4.9e-12;
  spec.seed = static_cast<std::uint64_t>(n);
  const netlist::Netlist nl = Generate(spec);

  // Cell count and area match the spec (area to float rounding).
  EXPECT_EQ(nl.NumCells(), n);
  EXPECT_NEAR(nl.MovableArea(), spec.total_area_m2,
              spec.total_area_m2 * 1e-9);

  // Roughly one net per cell.
  EXPECT_GT(nl.NumNets(), n * 0.9);
  EXPECT_LT(nl.NumNets(), n * 1.2);

  // Net degree profile: all within [2, 40], mostly small.
  int small = 0;
  for (std::int32_t i = 0; i < nl.NumNets(); ++i) {
    const int deg = nl.net(i).num_pins;
    ASSERT_GE(deg, 2);
    ASSERT_LE(deg, 40);
    if (deg <= 4) ++small;
  }
  EXPECT_GT(small, nl.NumNets() * 0.7);

  // Exactly one driver per net; activities in the documented range.
  for (std::int32_t i = 0; i < nl.NumNets(); ++i) {
    EXPECT_EQ(nl.NumOutputPins(i), 1);
    EXPECT_GE(nl.net(i).activity, 0.01);
    EXPECT_LE(nl.net(i).activity, 0.5);
  }

  // Uniform row height; widths positive and quantized to a common pitch.
  const double h = nl.cell(0).height;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    EXPECT_DOUBLE_EQ(nl.cell(c).height, h);
    EXPECT_GT(nl.cell(c).width, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GenerateStats,
                         ::testing::Values(64, 300, 1000, 5000));

TEST(Generate, ActivityDistributionHeavyTailed) {
  SyntheticSpec spec;
  spec.name = "t";
  spec.num_cells = 2000;
  spec.total_area_m2 = 2000 * 4.9e-12;
  spec.seed = 5;
  const netlist::Netlist nl = Generate(spec);
  int cool = 0, hot = 0;
  for (std::int32_t i = 0; i < nl.NumNets(); ++i) {
    if (nl.net(i).activity < 0.1) ++cool;
    if (nl.net(i).activity > 0.3) ++hot;
  }
  // Most nets are cool, but a real hot tail exists.
  EXPECT_GT(cool, nl.NumNets() / 2);
  EXPECT_GT(hot, 0);
  EXPECT_LT(hot, nl.NumNets() / 4);
}

}  // namespace
}  // namespace p3d::io
