// Compile-level test: the umbrella header is self-contained and the headline
// API is reachable through it alone.
#include "placer3d.h"

#include <gtest/gtest.h>

TEST(Umbrella, EndToEnd) {
  p3d::util::ScopedLogLevel quiet(p3d::util::LogLevel::kWarn);
  p3d::io::SyntheticSpec spec;
  spec.name = "umbrella";
  spec.num_cells = 150;
  spec.total_area_m2 = 150 * 4.9e-12;
  spec.seed = 99;
  const p3d::netlist::Netlist nl = p3d::io::Generate(spec);
  p3d::place::PlacerParams params;
  params.num_layers = 2;
  p3d::place::Placer3D placer(nl, params);
  const p3d::place::PlacementResult r = *placer.Run({.with_fea = false});
  EXPECT_TRUE(r.legal);
}
