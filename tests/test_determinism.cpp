// The parallel runtime's hard contract: same seed + same inputs produce
// bit-identical results for ANY thread count. These tests pin that contract
// at every wired-in layer — CG/SpMV, multi-start partitioning, and the full
// placement flow (the ISSUE/acceptance ctest: threads=1 vs threads=4).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/audit.h"
#include "io/synthetic.h"
#include "linalg/cg.h"
#include "linalg/csr.h"
#include "partition/partitioner.h"
#include "place/placer.h"
#include "runtime/thread_pool.h"
#include "util/log.h"
#include "util/rng.h"

namespace p3d {
namespace {

TEST(Determinism, CsrMultiplyBitIdenticalAcrossThreadCounts) {
  // 2D 5-point Laplacian, 120x120 grid.
  const std::int32_t g = 120;
  const std::int32_t n = g * g;
  linalg::CooBuilder coo(n);
  for (std::int32_t y = 0; y < g; ++y) {
    for (std::int32_t x = 0; x < g; ++x) {
      const std::int32_t i = y * g + x;
      coo.Add(i, i, 4.0);
      if (x > 0) coo.Add(i, i - 1, -1.0);
      if (x < g - 1) coo.Add(i, i + 1, -1.0);
      if (y > 0) coo.Add(i, i - g, -1.0);
      if (y < g - 1) coo.Add(i, i + g, -1.0);
    }
  }
  const linalg::CsrMatrix a = linalg::CsrMatrix::FromCoo(coo);
  std::vector<double> x(static_cast<std::size_t>(n));
  util::Rng rng(21);
  for (double& v : x) v = rng.NextDouble(-1.0, 1.0);

  std::vector<double> y_serial;
  a.Multiply(x, &y_serial);
  for (const int threads : {2, 4, 8}) {
    runtime::ThreadPool pool(threads);
    std::vector<double> y;
    a.Multiply(x, &y, &pool);
    EXPECT_EQ(y_serial, y) << "threads=" << threads;  // element-wise bitwise
  }
}

TEST(Determinism, SolveCgBitIdenticalAcrossThreadCounts) {
  const std::int32_t g = 60;
  const std::int32_t n = g * g;
  linalg::CooBuilder coo(n);
  for (std::int32_t y = 0; y < g; ++y) {
    for (std::int32_t x = 0; x < g; ++x) {
      const std::int32_t i = y * g + x;
      coo.Add(i, i, 4.1);  // slightly diagonally dominant: well-conditioned
      if (x > 0) coo.Add(i, i - 1, -1.0);
      if (x < g - 1) coo.Add(i, i + 1, -1.0);
      if (y > 0) coo.Add(i, i - g, -1.0);
      if (y < g - 1) coo.Add(i, i + g, -1.0);
    }
  }
  const linalg::CsrMatrix a = linalg::CsrMatrix::FromCoo(coo);
  std::vector<double> b(static_cast<std::size_t>(n));
  util::Rng rng(31);
  for (double& v : b) v = rng.NextDouble(-1.0, 1.0);

  linalg::CgOptions opt;
  opt.threads = 1;
  std::vector<double> x1;
  const linalg::CgResult r1 = linalg::SolveCg(a, b, &x1, opt);
  ASSERT_TRUE(r1.converged);
  for (const int threads : {2, 4, 8}) {
    opt.threads = threads;
    std::vector<double> xt;
    const linalg::CgResult rt = linalg::SolveCg(a, b, &xt, opt);
    EXPECT_EQ(r1.iters, rt.iters) << "threads=" << threads;
    EXPECT_EQ(x1, xt) << "threads=" << threads;  // bitwise-identical iterates
  }
}

partition::Hypergraph MakeHypergraph(const netlist::Netlist& nl) {
  partition::Hypergraph hg;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    hg.AddVertex(nl.cell(c).Area());
  }
  std::vector<std::int32_t> verts;
  for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
    verts.clear();
    for (const auto& pin : nl.NetPins(n)) verts.push_back(pin.cell);
    hg.AddNet(1.0, verts);
  }
  hg.Finalize();
  return hg;
}

TEST(Determinism, MultiStartBipartitionIdenticalAcrossThreadCounts) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  io::SyntheticSpec spec;
  spec.name = "det";
  spec.num_cells = 600;
  spec.total_area_m2 = 600 * 4.9e-12;
  spec.seed = 5;
  const netlist::Netlist nl = io::Generate(spec);
  const partition::Hypergraph hg = MakeHypergraph(nl);

  partition::PartitionOptions opt;
  opt.num_starts = 8;
  opt.tolerance = 0.05;
  opt.seed = 77;
  opt.threads = 1;
  const partition::PartitionResult r1 = partition::Bipartition(hg, opt);
  for (const int threads : {2, 4, 8}) {
    opt.threads = threads;
    const partition::PartitionResult rt = partition::Bipartition(hg, opt);
    EXPECT_EQ(r1.side, rt.side) << "threads=" << threads;
    EXPECT_EQ(r1.cut_cost, rt.cut_cost) << "threads=" << threads;
    EXPECT_EQ(r1.feasible, rt.feasible) << "threads=" << threads;
  }
}

TEST(Determinism, PlacementByteIdenticalThreads1Vs4) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  io::SyntheticSpec spec;
  spec.name = "det";
  spec.num_cells = 400;
  spec.total_area_m2 = 400 * 4.9e-12;
  spec.seed = 9;
  const netlist::Netlist nl = io::Generate(spec);

  place::PlacerParams params;
  params.num_layers = 4;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 5e-6;  // exercise the thermal path (TRR nets + CG)
  params.partition_starts = 4;
  params.seed = 12345;

  params.threads = 1;
  place::Placer3D p1(nl, params);
  const place::PlacementResult r1 = *p1.Run({.with_fea = true});

  params.threads = 4;
  place::Placer3D p4(nl, params);
  const place::PlacementResult r4 = *p4.Run({.with_fea = true});

  // Cell coordinates byte-identical (vector<double>/<int> operator== is
  // element-wise exact), and every reported metric identical.
  EXPECT_EQ(r1.placement.x, r4.placement.x);
  EXPECT_EQ(r1.placement.y, r4.placement.y);
  EXPECT_EQ(r1.placement.layer, r4.placement.layer);
  EXPECT_EQ(r1.hpwl_m, r4.hpwl_m);
  EXPECT_EQ(r1.ilv_count, r4.ilv_count);
  EXPECT_EQ(r1.total_power_w, r4.total_power_w);
  EXPECT_EQ(r1.objective, r4.objective);
  EXPECT_EQ(r1.avg_temp_c, r4.avg_temp_c);
  EXPECT_EQ(r1.max_temp_c, r4.max_temp_c);
  EXPECT_EQ(r1.legal, r4.legal);
}

TEST(Determinism, PlacementByteIdenticalThreads3AndUnderParanoidAudit) {
  // Two extensions of the 1-vs-4 contract: a non-power-of-two thread count
  // (odd work partitioning), and a paranoid audit riding along — the
  // auditor is a pure observer, so the placement must not shift by a byte.
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  io::SyntheticSpec spec;
  spec.name = "det";
  spec.num_cells = 300;
  spec.total_area_m2 = 300 * 4.9e-12;
  spec.seed = 11;
  const netlist::Netlist nl = io::Generate(spec);

  place::PlacerParams params;
  params.num_layers = 3;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 5e-6;
  params.partition_starts = 4;
  params.seed = 4242;

  params.threads = 1;
  place::Placer3D p1(nl, params);
  const place::PlacementResult r1 = *p1.Run({.with_fea = false});

  params.threads = 3;
  place::Placer3D p3(nl, params);
  const place::PlacementResult r3 = *p3.Run({.with_fea = false});
  EXPECT_EQ(r1.placement.x, r3.placement.x);
  EXPECT_EQ(r1.placement.y, r3.placement.y);
  EXPECT_EQ(r1.placement.layer, r3.placement.layer);
  EXPECT_EQ(r1.objective, r3.objective);

  params.threads = 3;
  params.audit_level = place::AuditLevel::kParanoid;
  place::Placer3D pa(nl, params);
  check::PlacementAuditor auditor(nl, params.audit_level);
  auditor.Attach(&pa);
  const place::PlacementResult ra = *pa.Run({.with_fea = false});
  EXPECT_TRUE(auditor.ok()) << auditor.report().Summary();
  EXPECT_GT(auditor.report().replayed_ops, 0u);
  EXPECT_EQ(r1.placement.x, ra.placement.x);
  EXPECT_EQ(r1.placement.y, ra.placement.y);
  EXPECT_EQ(r1.placement.layer, ra.placement.layer);
  EXPECT_EQ(r1.objective, ra.objective);
}

TEST(Determinism, LegalizeThreadsByteIdentical1Vs3Vs8) {
  // The windowed coarse-legalization schedule (DESIGN.md §5) has its own
  // thread knob; vary ONLY that knob (runtime threads pinned to 1) across
  // 1 / 3 / 8 workers and require the full-flow placement to the byte. The
  // 8-worker run also carries a paranoid auditor, which replays every
  // committed move delta — a pure observer that must not shift a byte.
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  io::SyntheticSpec spec;
  spec.name = "det";
  spec.num_cells = 300;
  spec.total_area_m2 = 300 * 4.9e-12;
  spec.seed = 13;
  const netlist::Netlist nl = io::Generate(spec);

  place::PlacerParams params;
  params.num_layers = 4;
  params.alpha_ilv = 1e-5;
  params.partition_starts = 2;
  params.seed = 777;
  params.threads = 1;

  params.legalize_threads = 1;
  place::Placer3D p1(nl, params);
  const place::PlacementResult r1 = *p1.Run({.with_fea = false});

  params.legalize_threads = 3;
  place::Placer3D p3(nl, params);
  const place::PlacementResult r3 = *p3.Run({.with_fea = false});
  EXPECT_EQ(r1.placement.x, r3.placement.x);
  EXPECT_EQ(r1.placement.y, r3.placement.y);
  EXPECT_EQ(r1.placement.layer, r3.placement.layer);
  EXPECT_EQ(r1.objective, r3.objective);

  params.legalize_threads = 8;
  params.audit_level = place::AuditLevel::kParanoid;
  place::Placer3D p8(nl, params);
  check::PlacementAuditor auditor(nl, params.audit_level);
  auditor.Attach(&p8);
  const place::PlacementResult r8 = *p8.Run({.with_fea = false});
  EXPECT_TRUE(auditor.ok()) << auditor.report().Summary();
  EXPECT_GT(auditor.report().replayed_ops, 0u);
  EXPECT_EQ(r1.placement.x, r8.placement.x);
  EXPECT_EQ(r1.placement.y, r8.placement.y);
  EXPECT_EQ(r1.placement.layer, r8.placement.layer);
  EXPECT_EQ(r1.objective, r8.objective);
}

}  // namespace
}  // namespace p3d
