#include <gtest/gtest.h>

#include "io/synthetic.h"
#include "place/chip.h"

namespace p3d::place {
namespace {

netlist::Netlist Circuit(int n = 500) {
  io::SyntheticSpec spec;
  spec.name = "chip";
  spec.num_cells = n;
  spec.total_area_m2 = n * 4.9e-12;
  spec.seed = 3;
  return io::Generate(spec);
}

TEST(Chip, CapacityCoversCellsWithWhitespace) {
  const netlist::Netlist nl = Circuit();
  for (const int layers : {1, 2, 4, 8}) {
    const Chip chip = *Chip::Build(nl, layers, 0.05, 0.25);
    const double capacity = chip.RowAreaPerLayer() * layers;
    EXPECT_GE(capacity, nl.MovableArea() / (1.0 - 0.05) * 0.999)
        << layers << " layers";
    // Upper bound: the whitespace target plus the documented minimum
    // per-row legalization slack (1.2x the widest cell), plus row
    // quantization margin.
    const double slack_floor = layers * chip.num_rows() * 1.2 *
                               nl.MaxCellWidth() * chip.row_height();
    EXPECT_LE(capacity,
              (nl.MovableArea() / (1.0 - 0.05) + slack_floor) * 1.1)
        << layers << " layers";
  }
}

TEST(Chip, RowGeometry) {
  const netlist::Netlist nl = Circuit();
  const Chip chip = *Chip::Build(nl, 4, 0.05, 0.25);
  EXPECT_DOUBLE_EQ(chip.row_height(), nl.AvgCellHeight());
  EXPECT_DOUBLE_EQ(chip.row_pitch(), nl.AvgCellHeight() * 1.25);
  EXPECT_NEAR(chip.RowFraction(), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(chip.height(), chip.num_rows() * chip.row_pitch());
  EXPECT_DOUBLE_EQ(chip.RowBottomY(0), 0.0);
  EXPECT_DOUBLE_EQ(chip.RowCenterY(1),
                   chip.row_pitch() + chip.row_height() / 2.0);
}

TEST(Chip, NearestRowClamped) {
  const netlist::Netlist nl = Circuit();
  const Chip chip = *Chip::Build(nl, 2, 0.05, 0.25);
  EXPECT_EQ(chip.NearestRow(-1.0), 0);
  EXPECT_EQ(chip.NearestRow(chip.height() * 2), chip.num_rows() - 1);
  EXPECT_EQ(chip.NearestRow(chip.RowBottomY(3) + 0.1 * chip.row_height()), 3);
}

TEST(Chip, MoreLayersShrinkFootprint) {
  const netlist::Netlist nl = Circuit(2000);
  const Chip one = *Chip::Build(nl, 1, 0.05, 0.25);
  const Chip four = *Chip::Build(nl, 4, 0.05, 0.25);
  EXPECT_LT(four.width() * four.height(), one.width() * one.height());
  // Roughly proportional; the per-row slack floor (see Chip::Build) adds
  // overhead that grows with the total row count, so the bound is loose.
  EXPECT_NEAR(four.width() * four.height() * 4,
              one.width() * one.height(), one.width() * one.height() * 0.35);
}

TEST(Chip, RoughlySquare) {
  const netlist::Netlist nl = Circuit(3000);
  const Chip chip = *Chip::Build(nl, 4, 0.05, 0.25);
  const double aspect = chip.width() / chip.height();
  EXPECT_GT(aspect, 0.5);
  EXPECT_LT(aspect, 2.0);
}

TEST(Chip, FullRegionSpansEverything) {
  const netlist::Netlist nl = Circuit();
  const Chip chip = *Chip::Build(nl, 6, 0.05, 0.25);
  const geom::Region r = chip.FullRegion();
  EXPECT_EQ(r.layer_lo, 0);
  EXPECT_EQ(r.layer_hi, 5);
  EXPECT_DOUBLE_EQ(r.rect.Width(), chip.width());
}

TEST(Placement, Resize) {
  Placement p;
  p.Resize(7);
  EXPECT_EQ(p.size(), 7u);
  EXPECT_EQ(p.layer[6], 0);
  EXPECT_DOUBLE_EQ(p.x[0], 0.0);
}

}  // namespace
}  // namespace p3d::place
