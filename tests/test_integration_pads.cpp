// Integration: full flow on a design with fixed IO pads around the core
// (the Bookshelf/IBM-PLACE situation). Pads must not move, the placement
// must stay legal, and pad connectivity must pull connected cells outward.
#include <gtest/gtest.h>

#include "io/synthetic.h"
#include "place/global.h"
#include "place/legalize.h"
#include "place/moveswap.h"
#include "place/shift.h"
#include "util/log.h"
#include "util/rng.h"

namespace p3d::place {
namespace {

struct PaddedDesign {
  netlist::Netlist nl;
  Placement initial;                  // pad positions (movables zero)
  std::vector<std::int32_t> pads;
};

/// Synthetic core plus a ring of fixed pads outside the die outline, each
/// wired to a random core cell.
PaddedDesign MakePadded(int core_cells, int num_pads, std::uint64_t seed) {
  PaddedDesign d;
  io::SyntheticSpec spec;
  spec.name = "padded";
  spec.num_cells = core_cells;
  spec.total_area_m2 = core_cells * 4.9e-12;
  spec.seed = seed;
  const netlist::Netlist core = io::Generate(spec);

  // Rebuild with pads appended (netlists are append-only before Finalize).
  for (std::int32_t c = 0; c < core.NumCells(); ++c) {
    d.nl.AddCell(core.cell(c).name, core.cell(c).width, core.cell(c).height);
  }
  for (int p = 0; p < num_pads; ++p) {
    d.pads.push_back(
        d.nl.AddCell("pad" + std::to_string(p), 1e-6, 1e-6, /*fixed=*/true));
  }
  for (std::int32_t n = 0; n < core.NumNets(); ++n) {
    d.nl.AddNet(core.net(n).name, core.net(n).activity);
    for (const auto& pin : core.NetPins(n)) {
      d.nl.AddPin(pin.cell, pin.dir, pin.dx, pin.dy);
    }
  }
  util::Rng rng(seed * 17 + 3);
  for (int p = 0; p < num_pads; ++p) {
    d.nl.AddNet("padnet" + std::to_string(p), 0.15);
    d.nl.AddPin(d.pads[static_cast<std::size_t>(p)], netlist::PinDir::kOutput);
    d.nl.AddPin(static_cast<std::int32_t>(
                    rng.NextBounded(static_cast<std::uint64_t>(core_cells))),
                netlist::PinDir::kInput);
  }
  EXPECT_TRUE(d.nl.Finalize());

  // Pad ring geometry: just outside the die on layer 0.
  const Chip chip = *Chip::Build(d.nl, 4, 0.05, 0.25);
  d.initial.Resize(static_cast<std::size_t>(d.nl.NumCells()));
  for (int p = 0; p < num_pads; ++p) {
    const std::size_t i = static_cast<std::size_t>(d.pads[static_cast<std::size_t>(p)]);
    const double t = static_cast<double>(p) / num_pads;
    // Walk the perimeter.
    if (t < 0.25) {
      d.initial.x[i] = 4 * t * chip.width();
      d.initial.y[i] = -2e-6;
    } else if (t < 0.5) {
      d.initial.x[i] = chip.width() + 2e-6;
      d.initial.y[i] = 4 * (t - 0.25) * chip.height();
    } else if (t < 0.75) {
      d.initial.x[i] = (1 - 4 * (t - 0.5)) * chip.width();
      d.initial.y[i] = chip.height() + 2e-6;
    } else {
      d.initial.x[i] = -2e-6;
      d.initial.y[i] = 4 * (t - 0.75) * chip.height();
    }
    d.initial.layer[i] = 0;
  }
  return d;
}

TEST(PaddedFlow, GlobalPlacerRespectsPads) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  PaddedDesign d = MakePadded(400, 24, 1);
  PlacerParams params;
  params.num_layers = 4;
  params.SyncStack();
  const Chip chip = *Chip::Build(d.nl, 4, params.whitespace,
                                params.inter_row_space);
  ObjectiveEvaluator eval(d.nl, chip, params);
  GlobalPlacer gp(eval);
  const Placement p = *gp.Run(d.initial);
  for (const std::int32_t pad : d.pads) {
    const std::size_t i = static_cast<std::size_t>(pad);
    EXPECT_DOUBLE_EQ(p.x[i], d.initial.x[i]);
    EXPECT_DOUBLE_EQ(p.y[i], d.initial.y[i]);
  }
}

TEST(PaddedFlow, FullFlowLegalWithPadsOutsideDie) {
  // Pads sit outside the row area, so they do not block any row; the flow
  // must produce a legal core placement and keep every pad untouched.
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  PaddedDesign d = MakePadded(500, 32, 2);
  PlacerParams params;
  params.num_layers = 4;
  params.alpha_temp = 1e-6;
  params.SyncStack();
  const Chip chip = *Chip::Build(d.nl, 4, params.whitespace,
                                params.inter_row_space);

  ObjectiveEvaluator eval(d.nl, chip, params);
  GlobalPlacer gp(eval);
  eval.SetPlacement(*gp.Run(d.initial));
  MoveSwapOptimizer mso(eval, 7);
  mso.RunGlobal(27);
  mso.RunLocal();
  CellShifter shifter(eval);
  shifter.Run(40, 1.05);
  DetailedLegalizer legalizer(eval);
  const LegalizeStats ls = legalizer.Run();
  EXPECT_TRUE(ls.success);
  EXPECT_EQ(DetailedLegalizer::CountOverlaps(d.nl, eval.placement()), 0);
  for (const std::int32_t pad : d.pads) {
    const std::size_t i = static_cast<std::size_t>(pad);
    EXPECT_DOUBLE_EQ(eval.placement().x[i], d.initial.x[i]);
    EXPECT_DOUBLE_EQ(eval.placement().y[i], d.initial.y[i]);
  }

  // Terminal propagation is informative: cells wired to pads should end up
  // biased toward their pad's side of the die on average.
  double corr = 0.0;
  int counted = 0;
  for (std::int32_t n = 0; n < d.nl.NumNets(); ++n) {
    if (d.nl.net(n).name.rfind("padnet", 0) != 0) continue;
    const auto pins = d.nl.NetPins(n);
    const std::size_t pad_i = static_cast<std::size_t>(pins[0].cell);
    const std::size_t cell_i = static_cast<std::size_t>(pins[1].cell);
    const double px = eval.placement().x[pad_i] - chip.width() / 2;
    const double cx = eval.placement().x[cell_i] - chip.width() / 2;
    corr += (px * cx > 0) ? 1.0 : -1.0;
    ++counted;
  }
  EXPECT_GT(corr / counted, 0.0);  // more agree than disagree
}

}  // namespace
}  // namespace p3d::place
