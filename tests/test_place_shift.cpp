#include <gtest/gtest.h>

#include <vector>

#include "io/synthetic.h"
#include "place/bins.h"
#include "place/shift.h"
#include "util/rng.h"

namespace p3d::place {
namespace {

struct Fixture {
  netlist::Netlist nl;
  Chip chip;
  PlacerParams params;

  explicit Fixture(int cells = 600, int layers = 4) {
    io::SyntheticSpec spec;
    spec.name = "shift";
    spec.num_cells = cells;
    spec.total_area_m2 = cells * 4.9e-12;
    spec.seed = 31;
    nl = io::Generate(spec);
    params.num_layers = layers;
    params.alpha_ilv = 1e-5;
    params.SyncStack();
    chip = *Chip::Build(nl, layers, params.whitespace, params.inter_row_space);
  }
};

TEST(BinGrid, GeometryAndIndexing) {
  Fixture f;
  BinGrid grid(f.chip, f.nl.AvgCellWidth(), f.nl.AvgCellHeight());
  EXPECT_EQ(grid.nz(), 4);
  EXPECT_GT(grid.nx(), 2);
  EXPECT_NEAR(grid.bin_w() * grid.nx(), f.chip.width(), 1e-12);
  EXPECT_EQ(grid.XIndex(-1.0), 0);
  EXPECT_EQ(grid.XIndex(f.chip.width() + 1.0), grid.nx() - 1);
  EXPECT_EQ(grid.BinOf(0.0, 0.0, 0), 0);
  // The flat index is an opaque cache-blocked layout; its contract is that
  // Flat/Decompose are inverse bijections into [0, NumBins()).
  std::vector<char> seen(static_cast<std::size_t>(grid.NumBins()), 0);
  for (int bz = 0; bz < grid.nz(); ++bz) {
    for (int by = 0; by < grid.ny(); ++by) {
      for (int bx = 0; bx < grid.nx(); ++bx) {
        const int flat = grid.Flat(bx, by, bz);
        ASSERT_GE(flat, 0);
        ASSERT_LT(flat, grid.NumBins());
        EXPECT_EQ(seen[static_cast<std::size_t>(flat)], 0)
            << "duplicate flat index " << flat;
        seen[static_cast<std::size_t>(flat)] = 1;
        int dx = -1, dy = -1, dz = -1;
        grid.Decompose(flat, &dx, &dy, &dz);
        EXPECT_EQ(dx, bx);
        EXPECT_EQ(dy, by);
        EXPECT_EQ(dz, bz);
      }
    }
  }
}

TEST(BinGrid, RebuildAndDensity) {
  Fixture f;
  BinGrid grid(f.chip, f.nl.AvgCellWidth(), f.nl.AvgCellHeight());
  Placement p;
  p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  // Everything in one corner bin.
  grid.Rebuild(f.nl, p);
  const int corner = grid.BinOf(0.0, 0.0, 0);
  EXPECT_NEAR(grid.Area(corner), f.nl.MovableArea(), f.nl.MovableArea() * 1e-9);
  EXPECT_GT(grid.Density(corner), 10.0);
  EXPECT_EQ(grid.Cells(corner).size(),
            static_cast<std::size_t>(f.nl.NumCells()));
  EXPECT_DOUBLE_EQ(grid.MaxDensity(), grid.Density(corner));
}

TEST(BinGrid, MoveCellBookkeeping) {
  Fixture f;
  BinGrid grid(f.chip, f.nl.AvgCellWidth(), f.nl.AvgCellHeight());
  Placement p;
  p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  grid.Rebuild(f.nl, p);
  const int from = grid.BinOf(0.0, 0.0, 0);
  const int to = grid.Flat(grid.nx() - 1, grid.ny() - 1, grid.nz() - 1);
  const double a0 = grid.Area(from);
  const double cell_area = f.nl.cell(0).Area();
  grid.MoveCell(0, cell_area, from, to);
  EXPECT_NEAR(grid.Area(from), a0 - cell_area, 1e-20);
  EXPECT_NEAR(grid.Area(to), cell_area, 1e-20);
  EXPECT_EQ(grid.Cells(to).size(), 1u);
}

TEST(CellShifter, SpreadsCenterPileUp) {
  Fixture f(800);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  Placement p;
  p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = f.chip.width() / 2;
    p.y[i] = f.chip.height() / 2;
    p.layer[i] = 1;
  }
  eval.SetPlacement(p);
  CellShifter shifter(eval);
  const ShiftStats stats = shifter.Run(60, 1.1);
  // From a single point (density in the hundreds), shifting must come down
  // to near-legal densities. Exact convergence to 1.0 is impossible at this
  // bin granularity (a single 12-site cell exceeds one bin's capacity).
  EXPECT_LT(stats.final_max_density, 2.5);
  EXPECT_GT(stats.iterations, 1);
}

TEST(CellShifter, KeepsCellsInsideChip) {
  Fixture f(500);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  util::Rng rng(8);
  Placement p;
  p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    // Clustered start in one quadrant.
    p.x[i] = rng.NextDouble(0.0, f.chip.width() / 4);
    p.y[i] = rng.NextDouble(0.0, f.chip.height() / 4);
    p.layer[i] = 0;
  }
  eval.SetPlacement(p);
  CellShifter shifter(eval);
  shifter.Run(40, 1.1);
  const Placement& out = eval.placement();
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out.x[i], 0.0);
    EXPECT_LE(out.x[i], f.chip.width());
    EXPECT_GE(out.y[i], 0.0);
    EXPECT_LE(out.y[i], f.chip.height());
    EXPECT_GE(out.layer[i], 0);
    EXPECT_LT(out.layer[i], f.chip.num_layers());
  }
}

TEST(CellShifter, RebalancesOverfullLayer) {
  Fixture f(800);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  util::Rng rng(12);
  Placement p;
  p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    // Everything on layer 0, spread laterally: layer 0 is ~4x over capacity.
    p.x[i] = rng.NextDouble(0.0, f.chip.width());
    p.y[i] = rng.NextDouble(0.0, f.chip.height());
    p.layer[i] = 0;
  }
  eval.SetPlacement(p);
  CellShifter shifter(eval);
  shifter.Run(60, 1.1);
  std::vector<double> area(4, 0.0);
  const Placement& out = eval.placement();
  for (std::int32_t c = 0; c < f.nl.NumCells(); ++c) {
    area[static_cast<std::size_t>(out.layer[static_cast<std::size_t>(c)])] +=
        f.nl.cell(c).Area();
  }
  const double cap = f.chip.RowAreaPerLayer();
  // Layer 0 must have come down to (near) capacity.
  EXPECT_LT(area[0], cap * 1.15);
  // And the other layers absorbed real area.
  EXPECT_GT(area[1] + area[2] + area[3], f.nl.MovableArea() * 0.4);
}

TEST(CellShifter, AlreadyLegalPlacementUntouched) {
  // Density below 1 everywhere: the "sparse rows are never disturbed" rule
  // means no cell may move at all.
  Fixture f(300);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  util::Rng rng(14);
  Placement p;
  p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  // Uniform spread over all layers: density ~0.95 per bin on average, but
  // random placement can spike single bins; use a grid layout instead.
  const int ncols = 32;
  for (std::int32_t c = 0; c < f.nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    p.x[i] = (c % ncols + 0.5) * f.chip.width() / ncols;
    p.y[i] = ((c / ncols) % ncols + 0.5) * f.chip.height() / ncols;
    p.layer[i] = c % 4;
  }
  eval.SetPlacement(p);
  BinGrid grid(f.chip, f.nl.AvgCellWidth(), f.nl.AvgCellHeight());
  grid.Rebuild(f.nl, p);
  if (grid.MaxDensity() <= 1.0) {  // precondition for this property
    CellShifter shifter(eval);
    shifter.Run(10, 1.05);
    const Placement& out = eval.placement();
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_DOUBLE_EQ(out.x[i], p.x[i]);
      EXPECT_DOUBLE_EQ(out.y[i], p.y[i]);
      EXPECT_EQ(out.layer[i], p.layer[i]);
    }
  }
}

TEST(CellShifter, ObjectiveGuardedAgainstBlowup) {
  // Shifting trades objective for density, but the beta retention must keep
  // the damage bounded: spreading a clustered start should not more than
  // double the objective.
  Fixture f(500);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  util::Rng rng(21);
  Placement p;
  p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    // Half-die cluster: meaningful wirelength exists up front.
    p.x[i] = rng.NextDouble(0.0, f.chip.width() / 2);
    p.y[i] = rng.NextDouble(0.0, f.chip.height() / 2);
    p.layer[i] = rng.NextInt(0, 3);
  }
  eval.SetPlacement(p);
  const double before = eval.Total();
  CellShifter shifter(eval);
  shifter.Run(40, 1.1);
  EXPECT_LT(eval.Total(), before * 2.0);
}

TEST(CellShifter, IncrementalConsistencyThroughSweeps) {
  Fixture f(400);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  Placement p;
  p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = f.chip.width() / 2;
    p.y[i] = f.chip.height() / 2;
    p.layer[i] = 0;
  }
  eval.SetPlacement(p);
  CellShifter shifter(eval);
  shifter.Run(20, 1.1);
  const double cached = eval.Total();
  EXPECT_NEAR(eval.RecomputeFull(), cached, std::abs(cached) * 1e-9);
}

TEST(CellShifter, ThreadCountDoesNotChangePlacementBytes) {
  // The windowed parallel schedule (DESIGN.md §5) plans row shifts against a
  // density mesh frozen at sweep start and commits in fixed window order, so
  // the shifted placement must be byte-identical at any thread count.
  Placement reference;
  for (const int threads : {1, 4}) {
    Fixture f(700);
    f.params.legalize_threads = threads;
    ObjectiveEvaluator eval(f.nl, f.chip, f.params);
    util::Rng rng(77);
    Placement p;
    p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
    for (std::size_t i = 0; i < p.size(); ++i) {
      // Clustered start: plenty of over-dense rows to shift.
      p.x[i] = rng.NextDouble(0.0, f.chip.width() / 3);
      p.y[i] = rng.NextDouble(0.0, f.chip.height() / 3);
      p.layer[i] = 0;
    }
    eval.SetPlacement(p);
    CellShifter shifter(eval);
    shifter.Run(40, 1.1);
    if (threads == 1) {
      reference = eval.placement();
    } else {
      EXPECT_EQ(reference.x, eval.placement().x) << "threads=" << threads;
      EXPECT_EQ(reference.y, eval.placement().y) << "threads=" << threads;
      EXPECT_EQ(reference.layer, eval.placement().layer)
          << "threads=" << threads;
    }
  }
}

TEST(CellShifter, StopsEarlyWhenTargetReached) {
  Fixture f(400);
  ObjectiveEvaluator eval(f.nl, f.chip, f.params);
  Placement p;
  p.Resize(static_cast<std::size_t>(f.nl.NumCells()));
  util::Rng rng(15);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = rng.NextDouble(0.0, f.chip.width());
    p.y[i] = rng.NextDouble(0.0, f.chip.height());
    p.layer[i] = rng.NextInt(0, 3);
  }
  eval.SetPlacement(p);
  CellShifter shifter(eval);
  const ShiftStats stats = shifter.Run(40, /*target_density=*/1e9);
  EXPECT_EQ(stats.iterations, 0);  // target trivially met before any sweep
}

}  // namespace
}  // namespace p3d::place
