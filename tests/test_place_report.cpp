#include <gtest/gtest.h>

#include <cmath>

#include "io/synthetic.h"
#include "place/report.h"

namespace p3d::place {
namespace {

struct Fixture {
  netlist::Netlist nl;
  Chip chip;
  PlacerParams params;
  Placement p;

  Fixture() {
    io::SyntheticSpec spec;
    spec.name = "rep";
    spec.num_cells = 200;
    spec.total_area_m2 = 200 * 4.9e-12;
    spec.seed = 4;
    nl = io::Generate(spec);
    params.num_layers = 4;
    chip = *Chip::Build(nl, 4, params.whitespace, params.inter_row_space);
    p.Resize(static_cast<std::size_t>(nl.NumCells()));
    for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
      const std::size_t i = static_cast<std::size_t>(c);
      p.x[i] = (c % 10 + 0.5) * chip.width() / 10;
      p.y[i] = chip.RowCenterY((c / 10) % chip.num_rows());
      p.layer[i] = c % 4;
    }
  }
};

TEST(Report, LayerStatsSumToTotals) {
  Fixture f;
  const PlacementReport r = AnalyzePlacement(f.nl, f.chip, f.params, f.p);
  ASSERT_EQ(r.layers.size(), 4u);
  int cells = 0;
  double area = 0.0, power = 0.0;
  for (const LayerStats& ls : r.layers) {
    cells += ls.cells;
    area += ls.area;
    power += ls.power;
  }
  EXPECT_EQ(cells, f.nl.NumCells());
  EXPECT_NEAR(area, f.nl.MovableArea(), f.nl.MovableArea() * 1e-9);
  EXPECT_NEAR(power, r.total_power, r.total_power * 1e-9);
}

TEST(Report, SpanHistogramCoversAllNets) {
  Fixture f;
  const PlacementReport r = AnalyzePlacement(f.nl, f.chip, f.params, f.p);
  long long nets = 0;
  long long weighted = 0;
  for (std::size_t s = 0; s < r.span_histogram.size(); ++s) {
    nets += r.span_histogram[s];
    weighted += static_cast<long long>(s) * r.span_histogram[s];
  }
  EXPECT_EQ(nets, f.nl.NumNets());
  EXPECT_EQ(weighted, r.total_ilv);  // histogram is consistent with the count
}

TEST(Report, UtilizationAgainstRowCapacity) {
  Fixture f;
  const PlacementReport r = AnalyzePlacement(f.nl, f.chip, f.params, f.p);
  for (const LayerStats& ls : r.layers) {
    EXPECT_NEAR(ls.utilization, ls.area / f.chip.RowAreaPerLayer(), 1e-12);
    EXPECT_GT(ls.utilization, 0.0);
    EXPECT_LT(ls.utilization, 1.0);
  }
}

TEST(Report, AvgAndMaxNetHpwl) {
  Fixture f;
  const PlacementReport r = AnalyzePlacement(f.nl, f.chip, f.params, f.p);
  EXPECT_GT(r.total_hpwl, 0.0);
  EXPECT_NEAR(r.avg_net_hpwl, r.total_hpwl / f.nl.NumNets(),
              r.avg_net_hpwl * 1e-9);
  EXPECT_GE(r.max_net_hpwl, r.avg_net_hpwl);
}

TEST(Report, FormatContainsKeySections) {
  Fixture f;
  const PlacementReport r = AnalyzePlacement(f.nl, f.chip, f.params, f.p);
  const std::string text = FormatReport(r);
  EXPECT_NE(text.find("total:"), std::string::npos);
  EXPECT_NE(text.find("objective (Eq. 3):"), std::string::npos);
  EXPECT_NE(text.find("layer  cells"), std::string::npos);
  EXPECT_NE(text.find("net span histogram"), std::string::npos);
  EXPECT_NE(text.find("span 0:"), std::string::npos);
}

TEST(Report, ObjectiveComponentsSumToTotal) {
  Fixture f;
  f.params.alpha_ilv = 2e-5;
  f.params.alpha_temp = 40.0;
  const PlacementReport r = AnalyzePlacement(f.nl, f.chip, f.params, f.p);
  EXPECT_GT(r.wl_cost, 0.0);
  EXPECT_GT(r.ilv_cost, 0.0);
  EXPECT_GT(r.thermal_cost, 0.0);
  EXPECT_NEAR(r.objective, r.wl_cost + r.ilv_cost + r.thermal_cost,
              1e-9 * r.objective);
  // The wirelength term of Eq. 3 is the plain HPWL sum, and the via term is
  // the alpha-scaled via count — both must agree with the net metrics.
  EXPECT_NEAR(r.wl_cost, r.total_hpwl, 1e-9 * r.total_hpwl);
  EXPECT_NEAR(r.ilv_cost,
              f.params.alpha_ilv * static_cast<double>(r.total_ilv),
              1e-12);
}

TEST(Report, ComponentsRespectAlphas) {
  Fixture f;
  f.params.alpha_ilv = 0.0;
  f.params.alpha_temp = 0.0;
  const PlacementReport r = AnalyzePlacement(f.nl, f.chip, f.params, f.p);
  EXPECT_EQ(0.0, r.ilv_cost);
  EXPECT_EQ(0.0, r.thermal_cost);
  EXPECT_NEAR(r.objective, r.wl_cost, 1e-9 * r.objective);
}

TEST(Report, EmptyNetlistIsFiniteAndFormats) {
  netlist::Netlist nl;
  ASSERT_TRUE(nl.Finalize());
  PlacerParams params;
  params.num_layers = 2;
  const Chip chip =
      *Chip::Build(nl, 2, params.whitespace, params.inter_row_space);
  EXPECT_GT(chip.width(), 0.0);
  EXPECT_GT(chip.height(), 0.0);
  EXPECT_EQ(1, chip.num_rows());

  Placement p;  // zero cells
  const PlacementReport r = AnalyzePlacement(nl, chip, params, p);
  EXPECT_EQ(0.0, r.total_hpwl);
  EXPECT_EQ(0, r.total_ilv);
  EXPECT_EQ(0.0, r.avg_net_hpwl);
  for (const LayerStats& ls : r.layers) {
    EXPECT_EQ(0, ls.cells);
    EXPECT_EQ(0.0, ls.utilization);
  }
  const std::string text = FormatReport(r);
  EXPECT_NE(text.find("total:"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(text.find("inf"), std::string::npos);
}

TEST(Report, SingleLayerChipHasOnlySpanZero) {
  io::SyntheticSpec spec;
  spec.name = "rep1l";
  spec.num_cells = 60;
  spec.total_area_m2 = 60 * 4.9e-12;
  spec.seed = 6;
  const netlist::Netlist nl = io::Generate(spec);
  PlacerParams params;
  params.num_layers = 1;
  const Chip chip =
      *Chip::Build(nl, 1, params.whitespace, params.inter_row_space);
  Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    p.x[i] = (c % 8 + 0.5) * chip.width() / 8;
    p.y[i] = chip.RowCenterY((c / 8) % chip.num_rows());
    p.layer[i] = 0;
  }
  const PlacementReport r = AnalyzePlacement(nl, chip, params, p);
  ASSERT_EQ(1u, r.span_histogram.size());
  EXPECT_EQ(nl.NumNets(), r.span_histogram[0]);
  EXPECT_EQ(0, r.total_ilv);
  ASSERT_EQ(1u, r.layers.size());
  EXPECT_EQ(nl.NumCells(), r.layers[0].cells);
}

TEST(Report, OneCellRowsDegenerateChip) {
  // Cells as wide as the die width floor: each row carries a single cell.
  netlist::Netlist nl;
  for (int i = 0; i < 4; ++i) {
    nl.AddCell("wide" + std::to_string(i), 4e-6, 1e-6);
  }
  nl.AddNet("n0");
  nl.AddPin(0, netlist::PinDir::kOutput);
  nl.AddPin(1, netlist::PinDir::kInput);
  ASSERT_TRUE(nl.Finalize());
  PlacerParams params;
  params.num_layers = 2;
  const Chip chip =
      *Chip::Build(nl, 2, params.whitespace, params.inter_row_space);
  Placement p;
  p.Resize(4);
  for (std::size_t i = 0; i < 4; ++i) {
    p.x[i] = chip.width() / 2.0;
    p.y[i] = chip.RowCenterY(static_cast<int>(i) % chip.num_rows());
    p.layer[i] = static_cast<int>(i) % 2;
  }
  const PlacementReport r = AnalyzePlacement(nl, chip, params, p);
  EXPECT_EQ(4, r.layers[0].cells + r.layers[1].cells);
  EXPECT_GE(r.total_ilv, 0);
  for (const LayerStats& ls : r.layers) {
    EXPECT_TRUE(std::isfinite(ls.utilization));
  }
}

}  // namespace
}  // namespace p3d::place
