#include <gtest/gtest.h>

#include "io/synthetic.h"
#include "place/report.h"

namespace p3d::place {
namespace {

struct Fixture {
  netlist::Netlist nl;
  Chip chip;
  PlacerParams params;
  Placement p;

  Fixture() {
    io::SyntheticSpec spec;
    spec.name = "rep";
    spec.num_cells = 200;
    spec.total_area_m2 = 200 * 4.9e-12;
    spec.seed = 4;
    nl = io::Generate(spec);
    params.num_layers = 4;
    chip = Chip::Build(nl, 4, params.whitespace, params.inter_row_space);
    p.Resize(static_cast<std::size_t>(nl.NumCells()));
    for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
      const std::size_t i = static_cast<std::size_t>(c);
      p.x[i] = (c % 10 + 0.5) * chip.width() / 10;
      p.y[i] = chip.RowCenterY((c / 10) % chip.num_rows());
      p.layer[i] = c % 4;
    }
  }
};

TEST(Report, LayerStatsSumToTotals) {
  Fixture f;
  const PlacementReport r = AnalyzePlacement(f.nl, f.chip, f.params, f.p);
  ASSERT_EQ(r.layers.size(), 4u);
  int cells = 0;
  double area = 0.0, power = 0.0;
  for (const LayerStats& ls : r.layers) {
    cells += ls.cells;
    area += ls.area;
    power += ls.power;
  }
  EXPECT_EQ(cells, f.nl.NumCells());
  EXPECT_NEAR(area, f.nl.MovableArea(), f.nl.MovableArea() * 1e-9);
  EXPECT_NEAR(power, r.total_power, r.total_power * 1e-9);
}

TEST(Report, SpanHistogramCoversAllNets) {
  Fixture f;
  const PlacementReport r = AnalyzePlacement(f.nl, f.chip, f.params, f.p);
  long long nets = 0;
  long long weighted = 0;
  for (std::size_t s = 0; s < r.span_histogram.size(); ++s) {
    nets += r.span_histogram[s];
    weighted += static_cast<long long>(s) * r.span_histogram[s];
  }
  EXPECT_EQ(nets, f.nl.NumNets());
  EXPECT_EQ(weighted, r.total_ilv);  // histogram is consistent with the count
}

TEST(Report, UtilizationAgainstRowCapacity) {
  Fixture f;
  const PlacementReport r = AnalyzePlacement(f.nl, f.chip, f.params, f.p);
  for (const LayerStats& ls : r.layers) {
    EXPECT_NEAR(ls.utilization, ls.area / f.chip.RowAreaPerLayer(), 1e-12);
    EXPECT_GT(ls.utilization, 0.0);
    EXPECT_LT(ls.utilization, 1.0);
  }
}

TEST(Report, AvgAndMaxNetHpwl) {
  Fixture f;
  const PlacementReport r = AnalyzePlacement(f.nl, f.chip, f.params, f.p);
  EXPECT_GT(r.total_hpwl, 0.0);
  EXPECT_NEAR(r.avg_net_hpwl, r.total_hpwl / f.nl.NumNets(),
              r.avg_net_hpwl * 1e-9);
  EXPECT_GE(r.max_net_hpwl, r.avg_net_hpwl);
}

TEST(Report, FormatContainsKeySections) {
  Fixture f;
  const PlacementReport r = AnalyzePlacement(f.nl, f.chip, f.params, f.p);
  const std::string text = FormatReport(r);
  EXPECT_NE(text.find("total:"), std::string::npos);
  EXPECT_NE(text.find("layer  cells"), std::string::npos);
  EXPECT_NE(text.find("net span histogram"), std::string::npos);
  EXPECT_NE(text.find("span 0:"), std::string::npos);
}

}  // namespace
}  // namespace p3d::place
