// Scale-tier coverage (io::ScaleTierSpecs): the fixed lite/scale1/mega
// presets that back bench_fullflow_scaling. The full-size acceptance runs
// live in that bench; here the contract is
//   * the presets themselves (sizes, ibm18 area density, pad-free RNG
//     stream),
//   * generation determinism of the CI-sized "lite" preset at full size, and
//   * full-flow 1-vs-2-thread byte-identity under a paranoid audit on a
//     proportionally shrunk lite circuit (the flow itself is exercised at
//     full preset size by the bench, not per-commit here).
#include <gtest/gtest.h>

#include <cmath>

#include "check/audit.h"
#include "io/synthetic.h"
#include "place/placer.h"
#include "util/log.h"

namespace p3d {
namespace {

TEST(ScaleTier, PresetsMatchContract) {
  const std::vector<io::SyntheticSpec> specs = io::ScaleTierSpecs();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "lite");
  EXPECT_EQ(specs[0].num_cells, 100000);
  EXPECT_EQ(specs[1].name, "scale1");
  EXPECT_EQ(specs[1].num_cells, 210323);  // ibm18, Table 1
  EXPECT_EQ(specs[2].name, "mega");
  EXPECT_EQ(specs[2].num_cells, 1000000);
  const double ibm18_density = 0.988e-6 / 210323.0;
  for (const io::SyntheticSpec& spec : specs) {
    // Same area per cell across the tier (comparable row geometry).
    EXPECT_NEAR(spec.total_area_m2 / spec.num_cells, ibm18_density,
                ibm18_density * 1e-12)
        << spec.name;
    // num_pads = 0 keeps the generator RNG stream a pure function of the
    // core spec (pads are appended after the core draw).
    EXPECT_EQ(spec.num_pads, 0) << spec.name;
  }
  // scale1 is the ibm18 operating point.
  EXPECT_NEAR(specs[1].total_area_m2, 0.988e-6, 1e-18);
  EXPECT_EQ(io::ScaleTierSpec("mega").num_cells, 1000000);
  EXPECT_THROW(io::ScaleTierSpec("nope"), std::invalid_argument);
}

TEST(ScaleTier, LiteGenerationIsDeterministic) {
  // The full 100k-cell preset, generated twice: identical structure down to
  // every cell footprint and pin. Generation is cheap even at preset size;
  // only placement needs shrinking for CI.
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const io::SyntheticSpec spec = io::ScaleTierSpec("lite");
  const netlist::Netlist a = io::Generate(spec);
  const netlist::Netlist b = io::Generate(spec);
  ASSERT_EQ(a.NumCells(), spec.num_cells);
  ASSERT_EQ(a.NumCells(), b.NumCells());
  ASSERT_EQ(a.NumNets(), b.NumNets());
  ASSERT_EQ(a.NumPins(), b.NumPins());
  EXPECT_EQ(a.NumMovableCells(), a.NumCells());  // pad-free
  EXPECT_NEAR(a.MovableArea(), spec.total_area_m2,
              spec.total_area_m2 * 1e-9);
  for (std::int32_t c = 0; c < a.NumCells(); ++c) {
    ASSERT_EQ(a.CellWidth(c), b.CellWidth(c)) << "cell " << c;
    ASSERT_EQ(a.CellHeight(c), b.CellHeight(c)) << "cell " << c;
  }
  for (std::int32_t p = 0; p < a.NumPins(); ++p) {
    ASSERT_EQ(a.PinCell(p), b.PinCell(p)) << "pin " << p;
    ASSERT_EQ(a.PinNet(p), b.PinNet(p)) << "pin " << p;
  }
  for (std::int32_t n = 0; n < a.NumNets(); ++n) {
    ASSERT_EQ(a.net(n).activity, b.net(n).activity) << "net " << n;
  }
}

TEST(ScaleTier, LiteFullFlowByteIdenticalAcrossThreadsUnderAudit) {
  // The lite preset shrunk 25x (same seed, same area density): the full flow
  // at 1 vs 2 threads must agree to the byte, and the 2-thread run carries a
  // paranoid auditor replaying every commit.
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  io::SyntheticSpec spec = io::ScaleTierSpec("lite");
  spec.num_cells /= 25;
  spec.total_area_m2 /= 25.0;
  const netlist::Netlist nl = io::Generate(spec);

  place::PlacerParams params;
  params.num_layers = 4;
  params.alpha_ilv = 1e-5;
  params.partition_starts = 2;
  params.seed = 1801;
  params.threads = 1;
  params.legalize_threads = 1;
  place::Placer3D p1(nl, params);
  const place::PlacementResult r1 = *p1.Run({.with_fea = false});
  EXPECT_TRUE(r1.legal);

  params.threads = 2;
  params.legalize_threads = 2;
  params.audit_level = place::AuditLevel::kParanoid;
  place::Placer3D p2(nl, params);
  check::PlacementAuditor auditor(nl, params.audit_level);
  auditor.Attach(&p2);
  const place::PlacementResult r2 = *p2.Run({.with_fea = false});
  EXPECT_TRUE(auditor.ok()) << auditor.report().Summary();
  EXPECT_GT(auditor.report().replayed_ops, 0u);
  EXPECT_EQ(r1.placement.x, r2.placement.x);
  EXPECT_EQ(r1.placement.y, r2.placement.y);
  EXPECT_EQ(r1.placement.layer, r2.placement.layer);
  EXPECT_EQ(r1.objective, r2.objective);
}

}  // namespace
}  // namespace p3d
