// Seeded fuzz cases for the flattened hot structures (ctest -L fuzz):
//
//   * the SoA netlist mirrors must agree bit-for-bit with the authoritative
//     structs on generated circuits of real size;
//   * the cache-blocked BinGrid must keep incremental MoveCell bookkeeping
//     byte-equal to a canonical Rebuild after random churn (ibm18 at scale
//     0.1, ~21k cells — large enough for many blocks per layer);
//   * WindowTiling must tile exactly even when the window edge exceeds the
//     lateral grid, and the windowed engines must stay legal in that
//     degenerate one-window regime.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "io/synthetic.h"
#include "place/bins.h"
#include "place/legalize.h"
#include "place/rowopt.h"
#include "util/rng.h"

namespace p3d::place {
namespace {

// ----- SoA mirrors ----------------------------------------------------------

TEST(FuzzStructures, SoAMirrorsMatchStructsBitwise) {
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    io::SyntheticSpec spec;
    spec.name = "soa";
    spec.num_cells = 5000;
    spec.total_area_m2 = 5000 * 4.9e-12;
    spec.num_pads = 64;
    spec.seed = seed;
    const netlist::Netlist nl = io::Generate(spec);
    for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
      ASSERT_EQ(nl.CellWidth(c), nl.cell(c).width);
      ASSERT_EQ(nl.CellHeight(c), nl.cell(c).height);
      ASSERT_EQ(nl.CellArea(c), nl.cell(c).Area());
      ASSERT_EQ(nl.CellFixed(c), nl.cell(c).fixed);
    }
    for (std::int32_t p = 0; p < nl.NumPins(); ++p) {
      ASSERT_EQ(nl.PinCell(p), nl.pin(p).cell);
      ASSERT_EQ(nl.PinNet(p), nl.pin(p).net);
      ASSERT_EQ(nl.PinDx(p), nl.pin(p).dx);
      ASSERT_EQ(nl.PinDy(p), nl.pin(p).dy);
    }
    // The arena view: every net's pins are the contiguous slice the Net
    // header describes, and the slices cover the pin array exactly.
    std::int32_t covered = 0;
    for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
      ASSERT_EQ(nl.NetFirstPin(n), nl.net(n).first_pin);
      ASSERT_EQ(nl.NetNumPins(n), nl.net(n).num_pins);
      for (std::int32_t p = nl.NetFirstPin(n);
           p < nl.NetFirstPin(n) + nl.NetNumPins(n); ++p) {
        ASSERT_EQ(nl.PinNet(p), n);
      }
      covered += nl.NetNumPins(n);
    }
    ASSERT_EQ(covered, nl.NumPins());
  }
}

// ----- cache-blocked BinGrid -------------------------------------------------

TEST(FuzzStructures, MoveCellChurnMatchesCanonicalRebuild) {
  // ibm18 at scale 0.1: ~21k cells, dozens of lateral blocks per layer.
  const io::SyntheticSpec spec = io::Table1Spec("ibm18", 0.1);
  const netlist::Netlist nl = io::Generate(spec);
  PlacerParams params;
  params.num_layers = 4;
  params.SyncStack();
  const Chip chip =
      *Chip::Build(nl, 4, params.whitespace, params.inter_row_space);

  util::Rng rng(spec.seed * 977 + 1);
  Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = rng.NextDouble(0.0, chip.width());
    p.y[i] = rng.NextDouble(0.0, chip.height());
    p.layer[i] = rng.NextInt(0, 3);
  }

  BinGrid churned(chip, nl.AvgCellWidth(), nl.AvgCellHeight());
  churned.Rebuild(nl, p);
  BinGrid canonical(chip, nl.AvgCellWidth(), nl.AvgCellHeight());
  canonical.Rebuild(nl, p);

  // Random round-trip churn: kick cells to random (real, non-padded) bins,
  // remember where they belong, then send every displaced cell home. The
  // final occupancy equals the placement's, so after ResyncAreas the area
  // array must reproduce the canonical rebuild TO THE BYTE.
  std::vector<std::pair<std::int32_t, int>> displaced;
  std::vector<char> is_displaced(static_cast<std::size_t>(nl.NumCells()), 0);
  for (int step = 0; step < 30000; ++step) {
    const auto cell = static_cast<std::int32_t>(
        rng.NextBounded(static_cast<std::uint64_t>(nl.NumCells())));
    // Skip cells already displaced (their current bin is no longer home).
    if (nl.CellFixed(cell) || is_displaced[static_cast<std::size_t>(cell)]) {
      continue;
    }
    const std::size_t i = static_cast<std::size_t>(cell);
    const int home = churned.BinOf(p.x[i], p.y[i], p.layer[i]);
    const int bx = rng.NextInt(0, churned.nx() - 1);
    const int by = rng.NextInt(0, churned.ny() - 1);
    const int bz = rng.NextInt(0, churned.nz() - 1);
    const int target = churned.Flat(bx, by, bz);
    if (target == home) continue;
    churned.MoveCell(cell, nl.CellArea(cell), home, target);
    displaced.emplace_back(cell, target);
    is_displaced[i] = 1;
  }
  EXPECT_GT(displaced.size(), 1000u);
  for (const auto& [cell, at] : displaced) {
    const std::size_t i = static_cast<std::size_t>(cell);
    churned.MoveCell(cell, nl.CellArea(cell),
                     at, churned.BinOf(p.x[i], p.y[i], p.layer[i]));
  }
  churned.ResyncAreas(nl);

  ASSERT_EQ(churned.NumBins(), canonical.NumBins());
  for (int b = 0; b < churned.NumBins(); ++b) {
    ASSERT_EQ(churned.Area(b), canonical.Area(b)) << "bin " << b;
    std::vector<std::int32_t> got = churned.Cells(b);
    std::vector<std::int32_t> want = canonical.Cells(b);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "bin " << b;
  }
}

TEST(FuzzStructures, PaddedBinsStayEmptyThroughRebuilds) {
  // The blocked layout pads each layer's flat space up to whole blocks; the
  // padded slots must read as permanently empty zero-area bins.
  const io::SyntheticSpec spec = io::Table1Spec("ibm01", 0.05);
  const netlist::Netlist nl = io::Generate(spec);
  const Chip chip = *Chip::Build(nl, 4, 0.05, 0.25);
  BinGrid grid(chip, nl.AvgCellWidth(), nl.AvgCellHeight());
  util::Rng rng(3);
  Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = rng.NextDouble(0.0, chip.width());
    p.y[i] = rng.NextDouble(0.0, chip.height());
    p.layer[i] = rng.NextInt(0, 3);
  }
  grid.Rebuild(nl, p);
  std::vector<char> real(static_cast<std::size_t>(grid.NumBins()), 0);
  for (int bz = 0; bz < grid.nz(); ++bz) {
    for (int by = 0; by < grid.ny(); ++by) {
      for (int bx = 0; bx < grid.nx(); ++bx) {
        real[static_cast<std::size_t>(grid.Flat(bx, by, bz))] = 1;
      }
    }
  }
  for (int b = 0; b < grid.NumBins(); ++b) {
    if (real[static_cast<std::size_t>(b)]) continue;
    EXPECT_EQ(grid.Area(b), 0.0) << "padded bin " << b;
    EXPECT_TRUE(grid.Cells(b).empty()) << "padded bin " << b;
  }
}

// ----- WindowTiling edge cases ----------------------------------------------

TEST(FuzzStructures, OversizedWindowTilingDegeneratesToOneWindow) {
  for (const auto& [nx, ny] : std::vector<std::pair<int, int>>{
           {5, 3}, {1, 1}, {16, 1}, {3, 17}}) {
    const WindowTiling tiling(nx, ny, /*window_bins=*/1 << 20);
    ASSERT_EQ(tiling.NumWindows(), 1);
    const BinWindow& win = tiling.window(0);
    EXPECT_EQ(win.x0, 0);
    EXPECT_EQ(win.y0, 0);
    EXPECT_EQ(win.x1, nx);
    EXPECT_EQ(win.y1, ny);
    EXPECT_EQ(tiling.colors()[0], 0);
    for (int by = 0; by < ny; ++by) {
      for (int bx = 0; bx < nx; ++bx) {
        EXPECT_EQ(tiling.WindowOf(bx, by), 0);
      }
    }
  }
}

TEST(FuzzStructures, WindowTilingPartitionsExactlyAtAwkwardSizes) {
  // Window edges that don't divide the grid, including edges larger than one
  // dimension but not the other.
  util::Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const int nx = 1 + rng.NextInt(0, 40);
    const int ny = 1 + rng.NextInt(0, 40);
    const int wb = 1 + rng.NextInt(0, 50);
    const WindowTiling tiling(nx, ny, wb);
    std::vector<int> owner(static_cast<std::size_t>(nx * ny), -1);
    for (int w = 0; w < tiling.NumWindows(); ++w) {
      const BinWindow& win = tiling.window(w);
      ASSERT_LE(win.x1, nx);
      ASSERT_LE(win.y1, ny);
      ASSERT_LT(win.x0, win.x1);
      ASSERT_LT(win.y0, win.y1);
      for (int by = win.y0; by < win.y1; ++by) {
        for (int bx = win.x0; bx < win.x1; ++bx) {
          const std::size_t i = static_cast<std::size_t>(by * nx + bx);
          ASSERT_EQ(owner[i], -1) << "bin covered twice";
          owner[i] = w;
          ASSERT_EQ(tiling.WindowOf(bx, by), w);
        }
      }
    }
    for (int by = 0; by < ny; ++by) {
      for (int bx = 0; bx < nx; ++bx) {
        ASSERT_NE(owner[static_cast<std::size_t>(by * nx + bx)], -1)
            << "uncovered bin at (" << bx << ", " << by << ")";
      }
    }
  }
}

TEST(FuzzStructures, OversizedWindowEnginesStayLegal) {
  // legalize_window_rows (and the coarse legalize_window_bins) far beyond
  // the grid reduce every windowed engine to one window; the full detailed
  // stack must still produce a legal placement with threads active.
  io::SyntheticSpec spec;
  spec.name = "onewin";
  spec.num_cells = 600;
  spec.total_area_m2 = 600 * 4.9e-12;
  spec.seed = 29;
  const netlist::Netlist nl = io::Generate(spec);
  PlacerParams params;
  params.num_layers = 4;
  params.alpha_ilv = 1e-5;
  params.legalize_threads = 3;
  params.legalize_window_rows = 1 << 24;
  params.legalize_window_bins = 1 << 24;
  params.SyncStack();
  const Chip chip =
      *Chip::Build(nl, 4, params.whitespace, params.inter_row_space);
  ObjectiveEvaluator eval(nl, chip, params);
  util::Rng rng(31);
  Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = rng.NextDouble(0.0, chip.width());
    p.y[i] = rng.NextDouble(0.0, chip.height());
    p.layer[i] = rng.NextInt(0, 3);
  }
  eval.SetPlacement(p);
  DetailedLegalizer legalizer(eval);
  ASSERT_TRUE(legalizer.Run().success);
  RowRefiner refiner(eval, 32);
  refiner.Run(2);
  EXPECT_EQ(DetailedLegalizer::CountOverlaps(nl, eval.placement()), 0);
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    if (nl.CellFixed(c)) continue;
    const int row = chip.NearestRow(eval.placement().y[i]);
    EXPECT_NEAR(eval.placement().y[i], chip.RowCenterY(row), 1e-12);
  }
}

}  // namespace
}  // namespace p3d::place
