#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "thermal/fea.h"

namespace p3d::thermal {
namespace {

ThermalStack Stack(int layers) {
  ThermalStack s;
  s.num_layers = layers;
  return s;
}

/// A uniform sheet of cells covering the die on one layer.
struct Sheet {
  std::vector<double> x, y, power;
  std::vector<int> layer;
};

Sheet UniformSheet(const ChipExtent& chip, int n, int layer, double total_w) {
  Sheet s;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      s.x.push_back((i + 0.5) * chip.width / n);
      s.y.push_back((j + 0.5) * chip.height / n);
      s.layer.push_back(layer);
      s.power.push_back(total_w / (n * n));
    }
  }
  return s;
}

TEST(Fea, MeshStructure) {
  const ChipExtent chip{1e-3, 1e-3};
  FeaOptions opt;
  opt.nx = 8;
  opt.ny = 8;
  opt.bulk_elems = 3;
  const FeaSolver fea(Stack(4), chip, opt);
  // z planes: 1 + bulk(3) + layers(4) + interlayers(3).
  EXPECT_EQ(fea.NumZPlanes(), 1 + 3 + 4 + 3);
  EXPECT_EQ(fea.NumNodes(), 9 * 9 * 11);
  // Device elements appear in ascending z order, one per tier.
  int prev = -1;
  for (int t = 0; t < 4; ++t) {
    EXPECT_GT(fea.DeviceElemZ(t), prev);
    prev = fea.DeviceElemZ(t);
  }
  // z planes ascend.
  const auto& z = fea.ZPlanes();
  for (std::size_t i = 1; i < z.size(); ++i) EXPECT_GT(z[i], z[i - 1]);
}

TEST(Fea, UniformLoadMatchesOneDimensionalAnalytic) {
  // With power spread uniformly over layer 0, heat flow is essentially 1D:
  // T(layer0) ~ P * (1/(h A) + t_bulk/(k_bulk A) + t_half_layer/(k_stack A)).
  const ChipExtent chip{1e-3, 1e-3};
  const ThermalStack s = Stack(2);
  const FeaSolver fea(s, chip, {.nx = 12, .ny = 12, .bulk_elems = 4});
  const double total_w = 0.1;
  const Sheet sheet = UniformSheet(chip, 10, 0, total_w);
  const FeaResult r = fea.Solve(sheet.x, sheet.y, sheet.layer, sheet.power);
  ASSERT_TRUE(r.converged);

  const double area = chip.width * chip.height;
  const double analytic =
      total_w * (1.0 / (s.h_sink * area) + s.bulk_thickness / (s.k_bulk * area) +
                 0.5 * s.layer_thickness / (s.k_stack * area));
  EXPECT_NEAR(r.avg_cell_temp, analytic, analytic * 0.1);
}

TEST(Fea, UniformLoadMatchesResistanceDownPath) {
  // The same 1-D slab limit, cross-checked against the straight-path
  // resistance model (resistance.h): with power spread uniformly over layer
  // 0 the heat flows straight down through the full die cross-section, so
  // the FEA average rise must match P * DownPath(0, die_area). The models
  // differ only by the half-layer conduction term the down path omits
  // (~5% here), which the tolerance absorbs.
  const ChipExtent chip{1e-3, 1e-3};
  const ThermalStack s = Stack(2);
  const FeaSolver fea(s, chip, {.nx = 12, .ny = 12, .bulk_elems = 4});
  const double total_w = 0.1;
  const Sheet sheet = UniformSheet(chip, 10, 0, total_w);
  const FeaResult r = fea.Solve(sheet.x, sheet.y, sheet.layer, sheet.power);
  ASSERT_TRUE(r.converged);

  const ResistanceModel model(s, chip);
  const double area = chip.width * chip.height;
  const double analytic = total_w * model.DownPath(0, area);
  EXPECT_NEAR(r.avg_cell_temp, analytic, analytic * 0.1);
}

TEST(Fea, SampleTempOutsideStackReturnsAmbient) {
  // Regression: ElementWeights clamped the vertical element index for any z,
  // so a z above the stack top (or below 0) silently extrapolated the top
  // (bottom) element's shape functions far outside [0, 1] instead of being
  // rejected like an out-of-range x or y. SampleTemp must report ambient
  // for such points.
  const ChipExtent chip{0.5e-3, 0.5e-3};
  const ThermalStack s = Stack(2);
  const FeaSolver fea(s, chip, {.nx = 6, .ny = 6, .bulk_elems = 2});
  // Heat the TOP layer so the field near the stack top is far from ambient
  // and an extrapolation there cannot masquerade as the right answer.
  const FeaResult r = fea.Solve({0.25e-3}, {0.25e-3}, {1}, {0.02});
  ASSERT_TRUE(r.converged);

  const double top = s.TotalHeight();
  const double in_range =
      fea.SampleTemp(r.node_temp, 0.25e-3, 0.25e-3, s.LayerCenterZ(1));
  EXPECT_GT(in_range, 0.0);
  // Just outside either face: ambient (0 C rise), not an extrapolation.
  EXPECT_DOUBLE_EQ(
      fea.SampleTemp(r.node_temp, 0.25e-3, 0.25e-3, top + s.LayerPitch()),
      s.ambient_c);
  EXPECT_DOUBLE_EQ(
      fea.SampleTemp(r.node_temp, 0.25e-3, 0.25e-3, -0.1 * s.bulk_thickness),
      s.ambient_c);
  // The boundary faces themselves are still inside the grid.
  EXPECT_GT(fea.SampleTemp(r.node_temp, 0.25e-3, 0.25e-3, top), 0.0);
  EXPECT_GE(fea.SampleTemp(r.node_temp, 0.25e-3, 0.25e-3, 0.0), 0.0);
}

TEST(Fea, LinearInPower) {
  const ChipExtent chip{1e-3, 1e-3};
  const FeaSolver fea(Stack(4), chip, {.nx = 8, .ny = 8, .bulk_elems = 3});
  const Sheet s1 = UniformSheet(chip, 6, 1, 0.05);
  Sheet s2 = s1;
  for (auto& p : s2.power) p *= 3.0;
  const FeaResult r1 = fea.Solve(s1.x, s1.y, s1.layer, s1.power);
  const FeaResult r2 = fea.Solve(s2.x, s2.y, s2.layer, s2.power);
  EXPECT_NEAR(r2.avg_cell_temp, 3.0 * r1.avg_cell_temp,
              std::abs(r1.avg_cell_temp) * 1e-3);
  EXPECT_NEAR(r2.max_cell_temp, 3.0 * r1.max_cell_temp,
              std::abs(r1.max_cell_temp) * 1e-3);
}

TEST(Fea, Superposition) {
  const ChipExtent chip{1e-3, 1e-3};
  const FeaSolver fea(Stack(2), chip, {.nx = 6, .ny = 6, .bulk_elems = 2});
  // Two point loads, solved separately and together.
  const std::vector<double> x = {0.25e-3, 0.75e-3};
  const std::vector<double> y = {0.25e-3, 0.75e-3};
  const std::vector<int> layer = {0, 1};
  const FeaResult both = fea.Solve(x, y, layer, {0.01, 0.02});
  const FeaResult only_a = fea.Solve(x, y, layer, {0.01, 0.0});
  const FeaResult only_b = fea.Solve(x, y, layer, {0.0, 0.02});
  for (std::size_t i = 0; i < both.node_temp.size(); ++i) {
    EXPECT_NEAR(both.node_temp[i],
                only_a.node_temp[i] + only_b.node_temp[i], 1e-6);
  }
}

TEST(Fea, HigherLayerRunsHotter) {
  const ChipExtent chip{0.5e-3, 0.5e-3};
  const int layers = 4;
  const FeaSolver fea(Stack(layers), chip, {.nx = 8, .ny = 8, .bulk_elems = 3});
  double prev = 0.0;
  for (int l = 0; l < layers; ++l) {
    const FeaResult r =
        fea.Solve({0.25e-3}, {0.25e-3}, {l}, {0.01});
    ASSERT_TRUE(r.converged);
    EXPECT_GT(r.max_cell_temp, prev) << "layer " << l;
    prev = r.max_cell_temp;
  }
}

TEST(Fea, LateralSymmetry) {
  const ChipExtent chip{1e-3, 1e-3};
  const FeaSolver fea(Stack(2), chip, {.nx = 8, .ny = 8, .bulk_elems = 2});
  const FeaResult r = fea.Solve({0.5e-3}, {0.5e-3}, {1}, {0.02});
  const double z = Stack(2).LayerCenterZ(1);
  const double left = fea.SampleTemp(r.node_temp, 0.25e-3, 0.5e-3, z);
  const double right = fea.SampleTemp(r.node_temp, 0.75e-3, 0.5e-3, z);
  const double up = fea.SampleTemp(r.node_temp, 0.5e-3, 0.75e-3, z);
  EXPECT_NEAR(left, right, std::abs(left) * 1e-6);
  EXPECT_NEAR(left, up, std::abs(left) * 1e-6);
}

TEST(Fea, TemperatureDecaysAwayFromHotspot) {
  const ChipExtent chip{1e-3, 1e-3};
  const FeaSolver fea(Stack(2), chip, {.nx = 10, .ny = 10, .bulk_elems = 3});
  const FeaResult r = fea.Solve({0.2e-3}, {0.2e-3}, {1}, {0.02});
  const double z = Stack(2).LayerCenterZ(1);
  const double near = fea.SampleTemp(r.node_temp, 0.2e-3, 0.2e-3, z);
  const double far = fea.SampleTemp(r.node_temp, 0.9e-3, 0.9e-3, z);
  EXPECT_GT(near, far);
  EXPECT_GT(far, 0.0);  // everything above ambient
}

TEST(Fea, ZeroPowerGivesAmbient) {
  const ChipExtent chip{0.5e-3, 0.5e-3};
  ThermalStack s = Stack(2);
  s.ambient_c = 25.0;
  const FeaSolver fea(s, chip, {.nx = 4, .ny = 4, .bulk_elems = 2});
  const FeaResult r = fea.Solve({0.1e-3}, {0.1e-3}, {0}, {0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.avg_cell_temp, 25.0);
  EXPECT_DOUBLE_EQ(r.max_cell_temp, 25.0);
}

TEST(Fea, CellsOutsideDieAreClamped) {
  const ChipExtent chip{0.5e-3, 0.5e-3};
  const FeaSolver fea(Stack(2), chip, {.nx = 4, .ny = 4, .bulk_elems = 2});
  // Off-die coordinates and out-of-range layer must not crash or vanish.
  const FeaResult r = fea.Solve({-1.0}, {9.0}, {7}, {0.01});
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.max_cell_temp, 0.0);
}

TEST(Fea, LayerTempCsvExport) {
  const ChipExtent chip{0.5e-3, 0.5e-3};
  const FeaSolver fea(Stack(2), chip, {.nx = 6, .ny = 4, .bulk_elems = 2});
  const FeaResult r = fea.Solve({0.25e-3}, {0.25e-3}, {1}, {0.01});
  const std::string path = ::testing::TempDir() + "p3d_fea_layer1.csv";
  ASSERT_TRUE(fea.WriteLayerTempCsv(path, r.node_temp, 1));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int rows = 0;
  int cols = 0;
  double max_val = -1e30;
  while (std::getline(in, line)) {
    ++rows;
    cols = 1;
    for (const char c : line) cols += c == ',' ? 1 : 0;
    std::stringstream ss(line);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      max_val = std::max(max_val, std::stod(tok));
    }
  }
  EXPECT_EQ(rows, 5);  // ny + 1
  EXPECT_EQ(cols, 7);  // nx + 1
  // The grid max should be close to the solved cell temperature.
  EXPECT_NEAR(max_val, r.max_cell_temp, r.max_cell_temp * 0.2);
}

TEST(Fea, LayerTempCsvBadPathFails) {
  const ChipExtent chip{0.5e-3, 0.5e-3};
  const FeaSolver fea(Stack(2), chip, {.nx = 4, .ny = 4, .bulk_elems = 2});
  const FeaResult r = fea.Solve({0.1e-3}, {0.1e-3}, {0}, {0.01});
  EXPECT_FALSE(fea.WriteLayerTempCsv("/no_such_dir_zz/x.csv", r.node_temp, 0));
}

class FeaMeshRefinement : public ::testing::TestWithParam<int> {};

TEST_P(FeaMeshRefinement, BulkFieldStableUnderRefinement) {
  // Cell temperatures are read back *at* point loads, whose local peak keeps
  // sharpening under refinement (the classic point-source divergence), so we
  // compare the field at probe positions away from the loads: a grid at
  // mid-bulk depth, where the solution is smooth.
  const int nx = GetParam();
  const ChipExtent chip{1e-3, 1e-3};
  const FeaSolver fea(Stack(2), chip,
                      {.nx = nx, .ny = nx, .bulk_elems = 4});
  const Sheet sheet = UniformSheet(chip, 8, 0, 0.05);
  const FeaResult r = fea.Solve(sheet.x, sheet.y, sheet.layer, sheet.power);
  ASSERT_TRUE(r.converged);
  const FeaSolver ref(Stack(2), chip, {.nx = 20, .ny = 20, .bulk_elems = 4});
  const FeaResult rr = ref.Solve(sheet.x, sheet.y, sheet.layer, sheet.power);
  const double z_probe = 250e-6;  // mid-bulk
  for (int i = 1; i < 5; ++i) {
    for (int j = 1; j < 5; ++j) {
      const double x = i * chip.width / 5;
      const double y = j * chip.height / 5;
      const double t = fea.SampleTemp(r.node_temp, x, y, z_probe);
      const double t_ref = ref.SampleTemp(rr.node_temp, x, y, z_probe);
      EXPECT_NEAR(t, t_ref, t_ref * 0.05) << x << "," << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Meshes, FeaMeshRefinement,
                         ::testing::Values(8, 12, 16, 24));

}  // namespace
}  // namespace p3d::thermal
