#include <gtest/gtest.h>

#include <fstream>

#include "io/svg.h"
#include "io/synthetic.h"
#include "util/log.h"

namespace p3d::io {
namespace {

struct Fixture {
  netlist::Netlist nl;
  place::Chip chip;
  place::Placement p;

  Fixture() {
    SyntheticSpec spec;
    spec.name = "svg";
    spec.num_cells = 60;
    spec.total_area_m2 = 60 * 4.9e-12;
    spec.seed = 2;
    nl = Generate(spec);
    chip = *place::Chip::Build(nl, 4, 0.05, 0.25);
    p.Resize(static_cast<std::size_t>(nl.NumCells()));
    for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
      const std::size_t i = static_cast<std::size_t>(c);
      p.x[i] = (c % 8 + 0.5) * chip.width() / 8;
      p.y[i] = chip.RowCenterY(c / 8 % chip.num_rows());
      p.layer[i] = c % 4;
    }
  }
};

TEST(Svg, RendersOnePanelPerLayer) {
  Fixture f;
  const std::string svg = RenderPlacementSvg(f.nl, f.chip, f.p);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("layer 0 (heat sink side)"), std::string::npos);
  EXPECT_NE(svg.find("layer 3"), std::string::npos);
}

TEST(Svg, OneRectPerCellPlusChrome) {
  Fixture f;
  SvgOptions opt;
  opt.draw_rows = false;
  const std::string svg = RenderPlacementSvg(f.nl, f.chip, f.p, opt);
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  // background + 4 panel frames + 60 cells.
  EXPECT_EQ(rects, 1u + 4u + 60u);
}

TEST(Svg, ScalarViewUsesRampColors) {
  Fixture f;
  SvgOptions opt;
  opt.cell_scalar.assign(static_cast<std::size_t>(f.nl.NumCells()), 0.0);
  opt.cell_scalar[0] = 1.0;  // one hot cell
  const std::string svg = RenderPlacementSvg(f.nl, f.chip, f.p, opt);
  // The layer tints must not appear in scalar view.
  EXPECT_EQ(svg.find("#4e79a7"), std::string::npos);
}

TEST(Svg, ScalarViewHandlesConstantField) {
  Fixture f;
  SvgOptions opt;
  opt.cell_scalar.assign(static_cast<std::size_t>(f.nl.NumCells()), 5.0);
  const std::string svg = RenderPlacementSvg(f.nl, f.chip, f.p, opt);
  EXPECT_NE(svg.find("<svg"), std::string::npos);  // no div-by-zero
}

TEST(Svg, TitleIncluded) {
  Fixture f;
  SvgOptions opt;
  opt.title = "hello-title";
  const std::string svg = RenderPlacementSvg(f.nl, f.chip, f.p, opt);
  EXPECT_NE(svg.find("hello-title"), std::string::npos);
}

TEST(Svg, WriteToFile) {
  Fixture f;
  const std::string path = ::testing::TempDir() + "p3d_test.svg";
  ASSERT_TRUE(WritePlacementSvg(path, f.nl, f.chip, f.p));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_NE(first.find("<svg"), std::string::npos);
}

TEST(Svg, WriteToBadPathFails) {
  util::ScopedLogLevel quiet(util::LogLevel::kSilent);
  Fixture f;
  EXPECT_FALSE(WritePlacementSvg("/nonexistent_dir_xyz/out.svg", f.nl, f.chip,
                                 f.p));
}

}  // namespace
}  // namespace p3d::io
