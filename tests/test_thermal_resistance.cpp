#include <gtest/gtest.h>

#include "thermal/resistance.h"

namespace p3d::thermal {
namespace {

ThermalStack DefaultStack(int layers = 4) {
  ThermalStack s;
  s.num_layers = layers;
  return s;
}

TEST(Stack, Geometry) {
  const ThermalStack s = DefaultStack(4);
  EXPECT_DOUBLE_EQ(s.LayerPitch(), 6.4e-6);
  EXPECT_DOUBLE_EQ(s.LayerBottomZ(0), 500e-6);
  EXPECT_DOUBLE_EQ(s.LayerBottomZ(2), 500e-6 + 2 * 6.4e-6);
  EXPECT_DOUBLE_EQ(s.LayerCenterZ(0), 500e-6 + 2.85e-6);
  EXPECT_NEAR(s.TotalHeight(), 500e-6 + 4 * 5.7e-6 + 3 * 0.7e-6, 1e-15);
}

TEST(Resistance, IncreasesWithLayer) {
  const ThermalStack s = DefaultStack(4);
  const ResistanceModel m(s, {1e-3, 1e-3});
  const double area = 5e-12;
  double prev = 0.0;
  for (int l = 0; l < 4; ++l) {
    const double r = m.CellToAmbient(0.5e-3, 0.5e-3, l, area);
    EXPECT_GT(r, prev) << "layer " << l;
    prev = r;
  }
}

TEST(Resistance, ScalesInverselyWithArea) {
  const ThermalStack s = DefaultStack(2);
  const ResistanceModel m(s, {1e-3, 1e-3});
  const double r1 = m.CellToAmbient(0.5e-3, 0.5e-3, 0, 1e-12);
  const double r2 = m.CellToAmbient(0.5e-3, 0.5e-3, 0, 2e-12);
  EXPECT_NEAR(r1 / r2, 2.0, 0.01);
}

TEST(Resistance, DownPathMatchesHandCalculation) {
  const ThermalStack s = DefaultStack(4);
  const ResistanceModel m(s, {1e-3, 1e-3});
  const double area = 4e-12;
  // Layer 0: bulk conduction + sink convection only.
  const double expected0 =
      s.bulk_thickness / (s.k_bulk * area) + 1.0 / (s.h_sink * area);
  EXPECT_NEAR(m.DownPath(0, area), expected0, expected0 * 1e-12);
  // Layer 2 adds two pitches of stack material.
  const double expected2 = expected0 + 2 * s.LayerPitch() / (s.k_stack * area);
  EXPECT_NEAR(m.DownPath(2, area), expected2, expected2 * 1e-12);
}

TEST(Resistance, TotalBelowDownPath) {
  // Parallel paths can only reduce the resistance.
  const ThermalStack s = DefaultStack(4);
  const ResistanceModel m(s, {1e-3, 1e-3});
  for (int l = 0; l < 4; ++l) {
    EXPECT_LT(m.CellToAmbient(0.5e-3, 0.5e-3, l, 5e-12), m.DownPath(l, 5e-12));
  }
}

TEST(Resistance, EdgePositionSlightlyCooler) {
  // Near the die edge the lateral path is short, adding a parallel branch.
  const ThermalStack s = DefaultStack(4);
  const ResistanceModel m(s, {1e-3, 1e-3});
  const double center = m.CellToAmbient(0.5e-3, 0.5e-3, 3, 5e-12);
  const double edge = m.CellToAmbient(1e-9, 0.5e-3, 3, 5e-12);
  EXPECT_LE(edge, center);
}

TEST(Resistance, FitVerticalMatchesDownPathSlope) {
  const ThermalStack s = DefaultStack(4);
  const ResistanceModel m(s, {1e-3, 1e-3});
  const double area = 5e-12;
  const auto fit = m.FitVertical(area);
  EXPECT_NEAR(fit.r0, m.DownPath(0, area), fit.r0 * 1e-12);
  // slope * pitch == per-layer resistance increment.
  const double per_layer = m.DownPath(1, area) - m.DownPath(0, area);
  EXPECT_NEAR(fit.slope * s.LayerPitch(), per_layer, per_layer * 1e-9);
}

TEST(Resistance, SingleLayerHasZeroSlope) {
  const ThermalStack s = DefaultStack(1);
  const ResistanceModel m(s, {1e-3, 1e-3});
  EXPECT_DOUBLE_EQ(m.FitVertical(5e-12).slope, 0.0);
}

TEST(Resistance, StrongerSinkReducesResistance) {
  ThermalStack weak = DefaultStack(4);
  weak.h_sink = 1e4;
  ThermalStack strong = DefaultStack(4);
  strong.h_sink = 1e6;
  const ResistanceModel mw(weak, {1e-3, 1e-3});
  const ResistanceModel ms(strong, {1e-3, 1e-3});
  EXPECT_GT(mw.CellToAmbient(0.5e-3, 0.5e-3, 0, 5e-12),
            ms.CellToAmbient(0.5e-3, 0.5e-3, 0, 5e-12));
}

}  // namespace
}  // namespace p3d::thermal
