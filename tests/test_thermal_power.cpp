#include <gtest/gtest.h>

#include "netlist/netlist.h"
#include "thermal/power.h"

namespace p3d::thermal {
namespace {

netlist::Netlist TwoNetCircuit() {
  netlist::Netlist nl;
  nl.AddCell("a", 1e-6, 1e-6);
  nl.AddCell("b", 1e-6, 1e-6);
  nl.AddCell("c", 1e-6, 1e-6);
  nl.AddNet("n0", 0.2);
  nl.AddPin(0, netlist::PinDir::kOutput);
  nl.AddPin(1, netlist::PinDir::kInput);
  nl.AddPin(2, netlist::PinDir::kInput);
  nl.AddNet("n1", 0.5);
  nl.AddPin(1, netlist::PinDir::kOutput);
  nl.AddPin(2, netlist::PinDir::kInput, 0.5e-6, 0.0);
  EXPECT_TRUE(nl.Finalize());
  return nl;
}

TEST(NetMetrics, HpwlAndSpans) {
  const netlist::Netlist nl = TwoNetCircuit();
  const std::vector<double> x = {0.0, 10e-6, 20e-6};
  const std::vector<double> y = {0.0, 5e-6, 0.0};
  const std::vector<int> layer = {0, 2, 1};
  const NetMetrics m = ComputeNetMetrics(nl, x, y, layer);
  // n0 spans cells a,b,c: x 0..20u, y 0..5u -> 25u; layers 0..2 -> 2.
  EXPECT_NEAR(m.hpwl[0], 25e-6, 1e-12);
  EXPECT_EQ(m.layer_span[0], 2);
  // n1: b at (10,5), c pin at (20+0.5, 0): hpwl = 10.5 + 5 = 15.5u; span 1.
  EXPECT_NEAR(m.hpwl[1], 15.5e-6, 1e-12);
  EXPECT_EQ(m.layer_span[1], 1);
  EXPECT_NEAR(m.total_hpwl, 40.5e-6, 1e-12);
  EXPECT_EQ(m.total_ilv, 3);
}

TEST(Power, MatchesEquation4And5) {
  const netlist::Netlist nl = TwoNetCircuit();
  ElectricalParams e;  // defaults
  NetMetrics m;
  m.hpwl = {100e-6, 50e-6};
  m.layer_span = {2, 0};

  const PowerReport r = ComputePower(nl, m, e);
  // Hand evaluation of Eq. 4-5 for n0:
  const double c0 = e.c_per_wl * 100e-6 + e.CPerIlv() * 2 + e.c_per_pin * 2;
  const double p0 = 0.5 * e.clock_hz * e.vdd * e.vdd * 0.2 * c0;
  EXPECT_NEAR(r.net_power[0], p0, p0 * 1e-12);
  const double c1 = e.c_per_wl * 50e-6 + e.c_per_pin * 1;
  const double p1 = 0.5 * e.clock_hz * e.vdd * e.vdd * 0.5 * c1;
  EXPECT_NEAR(r.net_power[1], p1, p1 * 1e-12);
  EXPECT_NEAR(r.total, p0 + p1, (p0 + p1) * 1e-12);

  // Attribution to drivers: a drives n0, b drives n1.
  EXPECT_NEAR(r.cell_power[0], p0, p0 * 1e-12);
  EXPECT_NEAR(r.cell_power[1], p1, p1 * 1e-12);
  EXPECT_DOUBLE_EQ(r.cell_power[2], 0.0);
}

TEST(Power, DriverlessNetCountsInTotalOnly) {
  netlist::Netlist nl;
  nl.AddCell("a", 1e-6, 1e-6);
  nl.AddCell("b", 1e-6, 1e-6);
  nl.AddNet("n", 0.3);
  nl.AddPin(0, netlist::PinDir::kInput);
  nl.AddPin(1, netlist::PinDir::kInput);
  ASSERT_TRUE(nl.Finalize());
  NetMetrics m;
  m.hpwl = {10e-6};
  m.layer_span = {1};
  const PowerReport r = ComputePower(nl, m, {});
  EXPECT_GT(r.total, 0.0);
  EXPECT_DOUBLE_EQ(r.cell_power[0], 0.0);
  EXPECT_DOUBLE_EQ(r.cell_power[1], 0.0);
}

TEST(Power, ScalesWithFrequencyVddActivity) {
  const netlist::Netlist nl = TwoNetCircuit();
  NetMetrics m;
  m.hpwl = {100e-6, 100e-6};
  m.layer_span = {1, 1};
  ElectricalParams base;
  const double p_base = ComputePower(nl, m, base).total;

  ElectricalParams doubled_f = base;
  doubled_f.clock_hz *= 2;
  EXPECT_NEAR(ComputePower(nl, m, doubled_f).total, 2 * p_base, p_base * 1e-9);

  ElectricalParams doubled_v = base;
  doubled_v.vdd *= 2;
  EXPECT_NEAR(ComputePower(nl, m, doubled_v).total, 4 * p_base, p_base * 1e-9);
}

TEST(Power, ViaCapacitanceFromTable2) {
  const ElectricalParams e;
  // 1480 pF/m over a 6.4 um via.
  EXPECT_NEAR(e.CPerIlv(), 1480e-12 * 6.4e-6, 1e-20);
  EXPECT_NEAR(e.Prefactor(), 0.5 * 1e9 * 1.2 * 1.2, 1e-3);
}

TEST(Power, LeakageAttributedToMovableCells) {
  netlist::Netlist nl;
  nl.AddCell("a", 1e-6, 1e-6);
  nl.AddCell("pad", 1e-6, 1e-6, /*fixed=*/true);
  ASSERT_TRUE(nl.Finalize());
  ElectricalParams e;
  e.leakage_per_cell_w = 3e-7;
  NetMetrics m;  // no nets
  const PowerReport r = ComputePower(nl, m, e);
  EXPECT_DOUBLE_EQ(r.cell_power[0], 3e-7);
  EXPECT_DOUBLE_EQ(r.cell_power[1], 0.0);  // fixed pads do not leak
  EXPECT_DOUBLE_EQ(r.total, 3e-7);
}

TEST(NetMetrics, EmptyNetContributesNothing) {
  netlist::Netlist nl;
  nl.AddCell("a", 1e-6, 1e-6);
  nl.AddNet("empty");
  ASSERT_TRUE(nl.Finalize());
  const NetMetrics m = ComputeNetMetrics(nl, {0.0}, {0.0}, {0});
  EXPECT_DOUBLE_EQ(m.hpwl[0], 0.0);
  EXPECT_EQ(m.layer_span[0], 0);
}

}  // namespace
}  // namespace p3d::thermal
