// Tests for the remaining public surface: parameter helpers, placement
// evaluation, and cross-component glue.
#include <gtest/gtest.h>

#include <algorithm>

#include "io/synthetic.h"
#include "place/bins.h"
#include "place/placer.h"
#include "util/log.h"

namespace p3d::place {
namespace {

TEST(Params, SyncStackCopiesLayerCount) {
  PlacerParams p;
  p.num_layers = 7;
  p.SyncStack();
  EXPECT_EQ(p.stack.num_layers, 7);
}

TEST(Params, CompensateWireCapForScale) {
  PlacerParams p;
  const double base = p.electrical.c_per_wl;

  PlacerParams full = p;
  CompensateWireCapForScale(&full, 1.0);
  EXPECT_DOUBLE_EQ(full.electrical.c_per_wl, base);  // no-op at full scale

  PlacerParams bigger = p;
  CompensateWireCapForScale(&bigger, 2.0);
  EXPECT_DOUBLE_EQ(bigger.electrical.c_per_wl, base);  // no-op above 1

  PlacerParams scaled = p;
  CompensateWireCapForScale(&scaled, 0.05);
  EXPECT_NEAR(scaled.electrical.c_per_wl, base / std::pow(0.05, 0.75),
              base * 1e-9);
  EXPECT_GT(scaled.electrical.c_per_wl, base);

  PlacerParams degenerate = p;
  CompensateWireCapForScale(&degenerate, 0.0);  // guarded
  EXPECT_DOUBLE_EQ(degenerate.electrical.c_per_wl, base);
}

TEST(EvaluatePlacement, MatchesObjectiveEvaluator) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  io::SyntheticSpec spec;
  spec.name = "misc";
  spec.num_cells = 200;
  spec.total_area_m2 = 200 * 4.9e-12;
  spec.seed = 3;
  const netlist::Netlist nl = io::Generate(spec);
  PlacerParams params;
  params.num_layers = 4;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 1e-6;
  const Chip chip = *Chip::Build(nl, 4, params.whitespace, params.inter_row_space);

  Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = (static_cast<double>(i % 17) + 0.5) * chip.width() / 17;
    p.y[i] = (static_cast<double>(i % 13) + 0.5) * chip.height() / 13;
    p.layer[i] = static_cast<int>(i % 4);
  }
  const PlacementResult r = EvaluatePlacement(nl, params, chip, p, false);

  PlacerParams synced = params;
  synced.SyncStack();
  ObjectiveEvaluator eval(nl, chip, synced);
  eval.SetPlacement(p);
  EXPECT_NEAR(r.objective, eval.Total(), eval.Total() * 1e-12);
  EXPECT_NEAR(r.hpwl_m, eval.TotalHpwl(), eval.TotalHpwl() * 1e-12);
  EXPECT_EQ(r.ilv_count, eval.TotalIlv());
  EXPECT_FALSE(r.fea_valid);  // FEA was not requested
}

TEST(EvaluatePlacement, IlvDensityDefinition) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  io::SyntheticSpec spec;
  spec.name = "misc2";
  spec.num_cells = 100;
  spec.total_area_m2 = 100 * 4.9e-12;
  spec.seed = 5;
  const netlist::Netlist nl = io::Generate(spec);
  PlacerParams params;
  params.num_layers = 4;
  const Chip chip = *Chip::Build(nl, 4, params.whitespace, params.inter_row_space);
  Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) p.layer[i] = static_cast<int>(i % 4);
  const PlacementResult r = EvaluatePlacement(nl, params, chip, p, false);
  // Vias per m^2 per interlayer: count / (area * (layers-1)).
  EXPECT_NEAR(r.ilv_density,
              static_cast<double>(r.ilv_count) /
                  (chip.width() * chip.height() * 3),
              r.ilv_density * 1e-12);
}

TEST(Placer3D, LeakageEnabledFlowStillLegal) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  io::SyntheticSpec spec;
  spec.name = "leakflow";
  spec.num_cells = 400;
  spec.total_area_m2 = 400 * 4.9e-12;
  spec.seed = 7;
  const netlist::Netlist nl = io::Generate(spec);
  PlacerParams params;
  params.num_layers = 4;
  params.alpha_temp = 5e-6;
  params.electrical.leakage_per_cell_w = 1e-7;
  Placer3D placer(nl, params);
  const PlacementResult r = *placer.Run({.with_fea = true});
  EXPECT_TRUE(r.legal);
  // Leakage shows up in the reported power: at least leak * movable cells.
  EXPECT_GE(r.total_power_w, 1e-7 * nl.NumMovableCells());
}

TEST(Placer3D, RuntimeBreakdownSums) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  io::SyntheticSpec spec;
  spec.name = "times";
  spec.num_cells = 300;
  spec.total_area_m2 = 300 * 4.9e-12;
  spec.seed = 9;
  const netlist::Netlist nl = io::Generate(spec);
  Placer3D placer(nl, PlacerParams{});
  const PlacementResult r = *placer.Run({.with_fea = false});
  EXPECT_GE(r.t_total, r.t_global);
  EXPECT_GE(r.t_total + 1e-6,
            r.t_global + r.t_coarse + r.t_detailed - 1e-3);
}

TEST(BinGrid, SingleLayerChipAndBoundaryClamping) {
  io::SyntheticSpec spec;
  spec.name = "bins1l";
  spec.num_cells = 50;
  spec.total_area_m2 = 50 * 4.9e-12;
  spec.seed = 8;
  const netlist::Netlist nl = io::Generate(spec);
  PlacerParams params;
  const Chip chip = *Chip::Build(nl, 1, params.whitespace,
                                params.inter_row_space);
  const BinGrid grid(chip, nl.AvgCellWidth(), nl.AvgCellHeight());
  EXPECT_EQ(1, grid.nz());
  EXPECT_GE(grid.nx(), 1);
  EXPECT_GE(grid.ny(), 1);
  // Out-of-range coordinates and layers clamp to valid bins.
  EXPECT_EQ(0, grid.XIndex(-1.0));
  EXPECT_EQ(grid.nx() - 1, grid.XIndex(2.0 * chip.width()));
  EXPECT_EQ(0, grid.YIndex(-1.0));
  EXPECT_EQ(grid.ny() - 1, grid.YIndex(2.0 * chip.height()));
  const int flat = grid.BinOf(chip.width() / 2.0, chip.height() / 2.0, 99);
  EXPECT_GE(flat, 0);
  EXPECT_LT(flat, grid.NumBins());
}

TEST(BinGrid, RebuildOnEmptyNetlistIsAllZero) {
  netlist::Netlist nl;
  ASSERT_TRUE(nl.Finalize());
  PlacerParams params;
  const Chip chip = *Chip::Build(nl, 2, params.whitespace,
                                params.inter_row_space);
  // No movable cells: average dimensions fall back to the nominal row size.
  BinGrid grid(chip, chip.row_height(), chip.row_height());
  Placement p;  // zero cells
  grid.Rebuild(nl, p);
  EXPECT_EQ(0.0, grid.MaxDensity());
  for (int b = 0; b < grid.NumBins(); ++b) {
    EXPECT_EQ(0.0, grid.Area(b));
    EXPECT_TRUE(grid.Cells(b).empty());
  }
}

TEST(BinGrid, OneCellRowsMoveCellKeepsOccupancyConsistent) {
  // Degenerate rows: one wide cell per row, bins at least as wide as cells.
  netlist::Netlist nl;
  for (int i = 0; i < 3; ++i) {
    nl.AddCell("wide" + std::to_string(i), 4e-6, 1e-6);
  }
  ASSERT_TRUE(nl.Finalize());
  PlacerParams params;
  const Chip chip = *Chip::Build(nl, 2, params.whitespace,
                                params.inter_row_space);
  BinGrid grid(chip, nl.AvgCellWidth(), nl.AvgCellHeight());
  Placement p;
  p.Resize(3);
  for (std::size_t i = 0; i < 3; ++i) {
    p.x[i] = chip.width() / 2.0;
    p.y[i] = chip.RowCenterY(static_cast<int>(i) % chip.num_rows());
    p.layer[i] = 0;
  }
  grid.Rebuild(nl, p);
  double total = 0.0;
  int listed = 0;
  for (int b = 0; b < grid.NumBins(); ++b) {
    total += grid.Area(b);
    listed += static_cast<int>(grid.Cells(b).size());
  }
  EXPECT_DOUBLE_EQ(nl.MovableArea(), total);
  EXPECT_EQ(3, listed);

  // Move cell 0 across the grid; area and membership must follow exactly.
  const int from = grid.BinOf(p.x[0], p.y[0], p.layer[0]);
  const int to = grid.BinOf(p.x[0], p.y[0], chip.num_layers() - 1);
  if (from != to) {
    const double area = nl.cell(0).Area();
    const double area_from = grid.Area(from);
    const double area_to = grid.Area(to);
    grid.MoveCell(0, area, from, to);
    EXPECT_DOUBLE_EQ(area_from - area, grid.Area(from));
    EXPECT_DOUBLE_EQ(area_to + area, grid.Area(to));
    const auto& to_list = grid.Cells(to);
    EXPECT_NE(std::find(to_list.begin(), to_list.end(), 0), to_list.end());
    const auto& from_list = grid.Cells(from);
    EXPECT_EQ(std::find(from_list.begin(), from_list.end(), 0),
              from_list.end());
  }
}

}  // namespace
}  // namespace p3d::place
