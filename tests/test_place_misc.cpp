// Tests for the remaining public surface: parameter helpers, placement
// evaluation, and cross-component glue.
#include <gtest/gtest.h>

#include "io/synthetic.h"
#include "place/placer.h"
#include "util/log.h"

namespace p3d::place {
namespace {

TEST(Params, SyncStackCopiesLayerCount) {
  PlacerParams p;
  p.num_layers = 7;
  p.SyncStack();
  EXPECT_EQ(p.stack.num_layers, 7);
}

TEST(Params, CompensateWireCapForScale) {
  PlacerParams p;
  const double base = p.electrical.c_per_wl;

  PlacerParams full = p;
  CompensateWireCapForScale(&full, 1.0);
  EXPECT_DOUBLE_EQ(full.electrical.c_per_wl, base);  // no-op at full scale

  PlacerParams bigger = p;
  CompensateWireCapForScale(&bigger, 2.0);
  EXPECT_DOUBLE_EQ(bigger.electrical.c_per_wl, base);  // no-op above 1

  PlacerParams scaled = p;
  CompensateWireCapForScale(&scaled, 0.05);
  EXPECT_NEAR(scaled.electrical.c_per_wl, base / std::pow(0.05, 0.75),
              base * 1e-9);
  EXPECT_GT(scaled.electrical.c_per_wl, base);

  PlacerParams degenerate = p;
  CompensateWireCapForScale(&degenerate, 0.0);  // guarded
  EXPECT_DOUBLE_EQ(degenerate.electrical.c_per_wl, base);
}

TEST(EvaluatePlacement, MatchesObjectiveEvaluator) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  io::SyntheticSpec spec;
  spec.name = "misc";
  spec.num_cells = 200;
  spec.total_area_m2 = 200 * 4.9e-12;
  spec.seed = 3;
  const netlist::Netlist nl = io::Generate(spec);
  PlacerParams params;
  params.num_layers = 4;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 1e-6;
  const Chip chip = Chip::Build(nl, 4, params.whitespace, params.inter_row_space);

  Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = (static_cast<double>(i % 17) + 0.5) * chip.width() / 17;
    p.y[i] = (static_cast<double>(i % 13) + 0.5) * chip.height() / 13;
    p.layer[i] = static_cast<int>(i % 4);
  }
  const PlacementResult r = EvaluatePlacement(nl, params, chip, p, false);

  PlacerParams synced = params;
  synced.SyncStack();
  ObjectiveEvaluator eval(nl, chip, synced);
  eval.SetPlacement(p);
  EXPECT_NEAR(r.objective, eval.Total(), eval.Total() * 1e-12);
  EXPECT_NEAR(r.hpwl_m, eval.TotalHpwl(), eval.TotalHpwl() * 1e-12);
  EXPECT_EQ(r.ilv_count, eval.TotalIlv());
  EXPECT_FALSE(r.fea_valid);  // FEA was not requested
}

TEST(EvaluatePlacement, IlvDensityDefinition) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  io::SyntheticSpec spec;
  spec.name = "misc2";
  spec.num_cells = 100;
  spec.total_area_m2 = 100 * 4.9e-12;
  spec.seed = 5;
  const netlist::Netlist nl = io::Generate(spec);
  PlacerParams params;
  params.num_layers = 4;
  const Chip chip = Chip::Build(nl, 4, params.whitespace, params.inter_row_space);
  Placement p;
  p.Resize(static_cast<std::size_t>(nl.NumCells()));
  for (std::size_t i = 0; i < p.size(); ++i) p.layer[i] = static_cast<int>(i % 4);
  const PlacementResult r = EvaluatePlacement(nl, params, chip, p, false);
  // Vias per m^2 per interlayer: count / (area * (layers-1)).
  EXPECT_NEAR(r.ilv_density,
              static_cast<double>(r.ilv_count) /
                  (chip.width() * chip.height() * 3),
              r.ilv_density * 1e-12);
}

TEST(Placer3D, LeakageEnabledFlowStillLegal) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  io::SyntheticSpec spec;
  spec.name = "leakflow";
  spec.num_cells = 400;
  spec.total_area_m2 = 400 * 4.9e-12;
  spec.seed = 7;
  const netlist::Netlist nl = io::Generate(spec);
  PlacerParams params;
  params.num_layers = 4;
  params.alpha_temp = 5e-6;
  params.electrical.leakage_per_cell_w = 1e-7;
  Placer3D placer(nl, params);
  const PlacementResult r = placer.Run(true);
  EXPECT_TRUE(r.legal);
  // Leakage shows up in the reported power: at least leak * movable cells.
  EXPECT_GE(r.total_power_w, 1e-7 * nl.NumMovableCells());
}

TEST(Placer3D, RuntimeBreakdownSums) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  io::SyntheticSpec spec;
  spec.name = "times";
  spec.num_cells = 300;
  spec.total_area_m2 = 300 * 4.9e-12;
  spec.seed = 9;
  const netlist::Netlist nl = io::Generate(spec);
  Placer3D placer(nl, PlacerParams{});
  const PlacementResult r = placer.Run(false);
  EXPECT_GE(r.t_total, r.t_global);
  EXPECT_GE(r.t_total + 1e-6,
            r.t_global + r.t_coarse + r.t_detailed - 1e-3);
}

}  // namespace
}  // namespace p3d::place
