// Integration tests: the full Placer3D flow end to end.
#include <gtest/gtest.h>

#include "io/synthetic.h"
#include "util/rng.h"
#include "place/legalize.h"
#include "place/placer.h"
#include "util/log.h"

namespace p3d::place {
namespace {

netlist::Netlist Circuit(int cells, std::uint64_t seed = 51) {
  io::SyntheticSpec spec;
  spec.name = "placer";
  spec.num_cells = cells;
  spec.total_area_m2 = cells * 4.9e-12;
  spec.seed = seed;
  return io::Generate(spec);
}

PlacerParams Params(int layers, double alpha_ilv = 1e-5,
                    double alpha_temp = 0.0) {
  PlacerParams p;
  p.num_layers = layers;
  p.alpha_ilv = alpha_ilv;
  p.alpha_temp = alpha_temp;
  return p;
}

TEST(Placer3D, FullFlowProducesLegalPlacement) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(800);
  Placer3D placer(nl, Params(4));
  const PlacementResult r = *placer.Run({.with_fea = true});
  EXPECT_TRUE(r.legal);
  EXPECT_EQ(r.overlaps, 0);
  EXPECT_GT(r.hpwl_m, 0.0);
  EXPECT_GT(r.ilv_count, 0);
  EXPECT_GT(r.total_power_w, 0.0);
  EXPECT_TRUE(r.fea_valid);
  EXPECT_GT(r.avg_temp_c, 0.0);
  EXPECT_GE(r.max_temp_c, r.avg_temp_c);
  EXPECT_GT(r.t_total, 0.0);
}

TEST(Placer3D, MetricsConsistentWithEvaluate) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(400);
  const PlacerParams params = Params(4);
  Placer3D placer(nl, params);
  const PlacementResult r = *placer.Run({.with_fea = false});
  const PlacementResult check = EvaluatePlacement(
      nl, params, placer.chip(), r.placement, /*with_fea=*/false);
  EXPECT_NEAR(check.hpwl_m, r.hpwl_m, r.hpwl_m * 1e-12);
  EXPECT_EQ(check.ilv_count, r.ilv_count);
  EXPECT_NEAR(check.objective, r.objective, r.objective * 1e-9);
  EXPECT_NEAR(check.total_power_w, r.total_power_w, r.total_power_w * 1e-12);
}

TEST(Placer3D, DeterministicForFixedSeed) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(400);
  PlacerParams params = Params(4);
  params.seed = 777;
  Placer3D a(nl, params);
  Placer3D b(nl, params);
  const PlacementResult ra = *a.Run({.with_fea = false});
  const PlacementResult rb = *b.Run({.with_fea = false});
  EXPECT_DOUBLE_EQ(ra.hpwl_m, rb.hpwl_m);
  EXPECT_EQ(ra.ilv_count, rb.ilv_count);
  for (std::size_t i = 0; i < ra.placement.size(); ++i) {
    ASSERT_DOUBLE_EQ(ra.placement.x[i], rb.placement.x[i]);
    ASSERT_EQ(ra.placement.layer[i], rb.placement.layer[i]);
  }
}

TEST(Placer3D, TwoDimensionalModeWorks) {
  // The paper claims effectiveness "not only with 3D ICs, but also with 2D
  // ICs" — 1 layer must run and produce zero vias.
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(400);
  Placer3D placer(nl, Params(1));
  const PlacementResult r = *placer.Run({.with_fea = false});
  EXPECT_TRUE(r.legal);
  EXPECT_EQ(r.ilv_count, 0);
  EXPECT_DOUBLE_EQ(r.ilv_density, 0.0);
}

TEST(Placer3D, ManyLayersWork) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(600);
  Placer3D placer(nl, Params(10));
  const PlacementResult r = *placer.Run({.with_fea = false});
  EXPECT_TRUE(r.legal);
  int max_layer = 0;
  for (const int l : r.placement.layer) max_layer = std::max(max_layer, l);
  EXPECT_GT(max_layer, 5);  // actually uses the stack
}

TEST(Placer3D, MoreLayersReduceWirelength) {
  // Paper Figure 5: tradeoff curves shift to shorter wirelengths as the
  // number of layers increases.
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(1000);
  Placer3D one(nl, Params(1));
  Placer3D four(nl, Params(4));
  const double wl1 = one.Run({.with_fea = false})->hpwl_m;
  const double wl4 = four.Run({.with_fea = false})->hpwl_m;
  EXPECT_LT(wl4, wl1);
}

TEST(Placer3D, IlvCoefficientControlsViaCount) {
  // Paper Figure 3: interlayer via counts decrease and wirelengths increase
  // as alpha_ILV increases.
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(800);
  Placer3D cheap(nl, Params(4, 5e-9));
  Placer3D costly(nl, Params(4, 1e-3));
  const PlacementResult rc = *cheap.Run({.with_fea = false});
  const PlacementResult re = *costly.Run({.with_fea = false});
  EXPECT_GT(rc.ilv_count, 2 * re.ilv_count);
  EXPECT_LT(rc.hpwl_m, re.hpwl_m);
}

TEST(Placer3D, LegalizationRepeatsImproveObjective) {
  // Paper Section 7: repeating coarse+detailed legalization improves the
  // objective (at a runtime cost).
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(500);
  PlacerParams p1 = Params(4);
  PlacerParams p3 = Params(4);
  p3.legalization_repeats = 3;
  Placer3D once(nl, p1);
  Placer3D thrice(nl, p3);
  const PlacementResult r1 = *once.Run({.with_fea = false});
  const PlacementResult r3 = *thrice.Run({.with_fea = false});
  EXPECT_TRUE(r3.legal);
  EXPECT_LE(r3.objective, r1.objective * 1.02);  // not worse (usually better)
}

TEST(Placer3D, ResultPlacementMatchesEvaluatorState) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(300);
  Placer3D placer(nl, Params(2));
  const PlacementResult r = *placer.Run({.with_fea = false});
  const Placement& internal = placer.evaluator().placement();
  for (std::size_t i = 0; i < r.placement.size(); ++i) {
    ASSERT_DOUBLE_EQ(r.placement.x[i], internal.x[i]);
    ASSERT_EQ(r.placement.layer[i], internal.layer[i]);
  }
}

TEST(Placer3D, TinyCircuits) {
  // Degenerate sizes must not crash and must stay legal.
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  for (const int cells : {2, 3, 5, 9, 17}) {
    netlist::Netlist nl;
    for (int c = 0; c < cells; ++c) {
      nl.AddCell("c" + std::to_string(c), 2e-6, 1.4e-6);
    }
    nl.AddNet("n", 0.2);
    nl.AddPin(0, netlist::PinDir::kOutput);
    nl.AddPin(cells - 1, netlist::PinDir::kInput);
    ASSERT_TRUE(nl.Finalize());
    Placer3D placer(nl, Params(2));
    const PlacementResult r = *placer.Run({.with_fea = false});
    EXPECT_TRUE(r.legal) << cells << " cells";
  }
}

TEST(Placer3D, MixedCellSizes) {
  // A few huge macros among small cells: legalization must still succeed.
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  netlist::Netlist nl;
  for (int c = 0; c < 300; ++c) {
    nl.AddCell("c" + std::to_string(c), 2e-6, 1.4e-6);
  }
  for (int m = 0; m < 4; ++m) {
    nl.AddCell("macro" + std::to_string(m), 30e-6, 1.4e-6);  // 15x wider
  }
  util::Rng rng(77);
  for (int n = 0; n < 320; ++n) {
    nl.AddNet("n" + std::to_string(n), 0.1);
    nl.AddPin(static_cast<std::int32_t>(rng.NextBounded(304)),
              netlist::PinDir::kOutput);
    nl.AddPin(static_cast<std::int32_t>(rng.NextBounded(304)),
              netlist::PinDir::kInput);
  }
  ASSERT_TRUE(nl.Finalize());
  Placer3D placer(nl, Params(4));
  const PlacementResult r = *placer.Run({.with_fea = false});
  EXPECT_TRUE(r.legal);
  EXPECT_EQ(DetailedLegalizer::CountOverlaps(nl, r.placement), 0);
}

TEST(Placer3D, HighFanoutNet) {
  // One net touching a third of all cells (clock-like) must not break the
  // partitioner or the evaluator.
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  io::SyntheticSpec spec;
  spec.name = "fanout";
  spec.num_cells = 300;
  spec.total_area_m2 = 300 * 4.9e-12;
  spec.seed = 13;
  netlist::Netlist base = io::Generate(spec);
  netlist::Netlist nl;
  for (std::int32_t c = 0; c < base.NumCells(); ++c) {
    nl.AddCell(base.cell(c).name, base.cell(c).width, base.cell(c).height);
  }
  for (std::int32_t n = 0; n < base.NumNets(); ++n) {
    nl.AddNet(base.net(n).name, base.net(n).activity);
    for (const auto& pin : base.NetPins(n)) {
      nl.AddPin(pin.cell, pin.dir, pin.dx, pin.dy);
    }
  }
  nl.AddNet("clk", 0.5);
  nl.AddPin(0, netlist::PinDir::kOutput);
  for (int c = 1; c < 100; ++c) nl.AddPin(c, netlist::PinDir::kInput);
  ASSERT_TRUE(nl.Finalize());
  Placer3D placer(nl, Params(4, 1e-5, 2e-6));
  const PlacementResult r = *placer.Run({.with_fea = false});
  EXPECT_TRUE(r.legal);
}

class PlacerLayerSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlacerLayerSweep, LegalAcrossLayerCounts) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const int layers = GetParam();
  const netlist::Netlist nl = Circuit(400, static_cast<std::uint64_t>(layers));
  Placer3D placer(nl, Params(layers));
  const PlacementResult r = *placer.Run({.with_fea = false});
  EXPECT_TRUE(r.legal) << layers << " layers";
  EXPECT_EQ(DetailedLegalizer::CountOverlaps(nl, r.placement), 0);
}

INSTANTIATE_TEST_SUITE_P(Layers, PlacerLayerSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 10));

}  // namespace
}  // namespace p3d::place
