#include <gtest/gtest.h>

#include "netlist/netlist.h"
#include "util/log.h"

namespace p3d::netlist {
namespace {

/// Small hand-built netlist used across tests:
///   c0 --drives--> n0 --> c1, c2
///   c1 --drives--> n1 --> c2
///   n2: pure input net on c0 (no driver)
Netlist MakeSmall() {
  Netlist nl;
  nl.AddCell("c0", 2.0e-6, 1.0e-6);
  nl.AddCell("c1", 3.0e-6, 1.0e-6);
  nl.AddCell("c2", 4.0e-6, 1.0e-6);
  nl.AddNet("n0", 0.2);
  nl.AddPin(0, PinDir::kOutput);
  nl.AddPin(1, PinDir::kInput);
  nl.AddPin(2, PinDir::kInput, 1e-7, -1e-7);
  nl.AddNet("n1", 0.1);
  nl.AddPin(1, PinDir::kOutput);
  nl.AddPin(2, PinDir::kInput);
  nl.AddNet("n2", 0.3);
  nl.AddPin(0, PinDir::kInput);
  EXPECT_TRUE(nl.Finalize());
  return nl;
}

TEST(Netlist, Counts) {
  const Netlist nl = MakeSmall();
  EXPECT_EQ(nl.NumCells(), 3);
  EXPECT_EQ(nl.NumNets(), 3);
  EXPECT_EQ(nl.NumPins(), 6);
  EXPECT_EQ(nl.NumMovableCells(), 3);
}

TEST(Netlist, DriverIdentification) {
  const Netlist nl = MakeSmall();
  EXPECT_EQ(nl.DriverCell(0), 0);
  EXPECT_EQ(nl.DriverCell(1), 1);
  EXPECT_EQ(nl.DriverCell(2), -1);  // no output pin
}

TEST(Netlist, InputOutputPinCounts) {
  const Netlist nl = MakeSmall();
  EXPECT_EQ(nl.NumInputPins(0), 2);
  EXPECT_EQ(nl.NumOutputPins(0), 1);
  EXPECT_EQ(nl.NumInputPins(2), 1);
  EXPECT_EQ(nl.NumOutputPins(2), 0);
}

TEST(Netlist, NetPinsSpan) {
  const Netlist nl = MakeSmall();
  const auto pins = nl.NetPins(0);
  ASSERT_EQ(pins.size(), 3u);
  EXPECT_EQ(pins[0].cell, 0);
  EXPECT_EQ(pins[0].dir, PinDir::kOutput);
  EXPECT_DOUBLE_EQ(pins[2].dx, 1e-7);
  EXPECT_DOUBLE_EQ(pins[2].dy, -1e-7);
}

TEST(Netlist, CellPinAdjacency) {
  const Netlist nl = MakeSmall();
  // c2 appears on nets 0 and 1 (one pin each).
  const auto pins = nl.CellPinIds(2);
  ASSERT_EQ(pins.size(), 2u);
  EXPECT_EQ(nl.pin(pins[0]).cell, 2);
  EXPECT_EQ(nl.pin(pins[1]).cell, 2);
  EXPECT_NE(nl.pin(pins[0]).net, nl.pin(pins[1]).net);
}

TEST(Netlist, AggregateStats) {
  const Netlist nl = MakeSmall();
  EXPECT_NEAR(nl.MovableArea(), (2.0 + 3.0 + 4.0) * 1e-12, 1e-20);
  EXPECT_NEAR(nl.AvgCellWidth(), 3.0e-6, 1e-12);
  EXPECT_NEAR(nl.AvgCellHeight(), 1.0e-6, 1e-12);
}

TEST(Netlist, FixedCellsExcludedFromMovableStats) {
  Netlist nl;
  nl.AddCell("pad", 100e-6, 100e-6, /*fixed=*/true);
  nl.AddCell("c", 1e-6, 1e-6);
  ASSERT_TRUE(nl.Finalize());
  EXPECT_EQ(nl.NumMovableCells(), 1);
  EXPECT_NEAR(nl.MovableArea(), 1e-12, 1e-20);
  EXPECT_NEAR(nl.AvgCellWidth(), 1e-6, 1e-12);
}

TEST(Netlist, EmptyNetsTolerated) {
  util::ScopedLogLevel quiet(util::LogLevel::kSilent);
  Netlist nl;
  nl.AddCell("c", 1e-6, 1e-6);
  nl.AddNet("empty");
  ASSERT_TRUE(nl.Finalize());
  EXPECT_EQ(nl.NetPins(0).size(), 0u);
  EXPECT_EQ(nl.DriverCell(0), -1);
}

TEST(Netlist, InvalidPinCellFailsFinalize) {
  util::ScopedLogLevel quiet(util::LogLevel::kSilent);
  Netlist nl;
  nl.AddCell("c", 1e-6, 1e-6);
  nl.AddNet("n");
  nl.AddPin(5, PinDir::kInput);  // dangling cell id
  EXPECT_FALSE(nl.Finalize());
}

TEST(Netlist, FinalizeIdempotent) {
  Netlist nl = MakeSmall();
  EXPECT_TRUE(nl.Finalize());
  EXPECT_EQ(nl.NumPins(), 6);
}

TEST(Netlist, MultipleOutputPinsFirstWins) {
  Netlist nl;
  nl.AddCell("a", 1e-6, 1e-6);
  nl.AddCell("b", 1e-6, 1e-6);
  nl.AddNet("n");
  nl.AddPin(1, PinDir::kOutput);
  nl.AddPin(0, PinDir::kOutput);
  ASSERT_TRUE(nl.Finalize());
  EXPECT_EQ(nl.DriverCell(0), 1);
  EXPECT_EQ(nl.NumOutputPins(0), 2);
  EXPECT_EQ(nl.NumInputPins(0), 0);
}

TEST(Netlist, ActivityMutable) {
  Netlist nl = MakeSmall();
  nl.SetNetActivity(0, 0.9);
  EXPECT_DOUBLE_EQ(nl.net(0).activity, 0.9);
}

}  // namespace
}  // namespace p3d::netlist
