// Serve-layer tests: JobEngine scheduling semantics (determinism across
// worker counts, cancellation, priority), the cross-job FeaContextCache,
// the jobs-manifest loader, and the batch report.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "io/synthetic.h"
#include "place/global_backend.h"
#include "place/instrument.h"
#include "runtime/stream.h"
#include "serve/batch.h"
#include "serve/fea_cache.h"
#include "serve/job_engine.h"
#include "serve/manifest.h"
#include "util/log.h"
#include "util/status.h"

namespace p3d::serve {
namespace {

netlist::Netlist Circuit(int cells, std::uint64_t seed = 51) {
  io::SyntheticSpec spec;
  spec.name = "serve";
  spec.num_cells = cells;
  spec.total_area_m2 = cells * 4.9e-12;
  spec.seed = seed;
  return io::Generate(spec);
}

place::PlacerParams Params(int layers, double alpha_ilv = 1e-5,
                           double alpha_temp = 0.0) {
  place::PlacerParams p;
  p.num_layers = layers;
  p.alpha_ilv = alpha_ilv;
  p.alpha_temp = alpha_temp;
  return p;
}

/// Parks the calling worker inside the placer at the first phase boundary
/// until Unblock(), so a test can observe a job mid-run.
class PhaseBlocker : public place::PhaseObserver {
 public:
  void OnPhase(const char* /*phase*/, int /*round*/,
               const place::ObjectiveEvaluator& /*eval*/,
               const place::GlobalPlaceStats* /*stats*/) override {
    std::unique_lock<std::mutex> lock(mutex_);
    if (fired_) return;  // block only at the first boundary
    fired_ = true;
    blocked_ = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return released_; });
    blocked_ = false;
  }

  void WaitUntilBlocked() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return blocked_; });
  }

  void Unblock() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool fired_ = false;
  bool blocked_ = false;
  bool released_ = false;
};

JobSpec SpecFor(const netlist::Netlist& nl, const std::string& name,
                double alpha_ilv, double alpha_temp, bool with_fea) {
  JobSpec spec;
  spec.name = name;
  spec.netlist = &nl;
  spec.params = Params(4, alpha_ilv, alpha_temp);
  spec.options.with_fea = with_fea;
  return spec;
}

// ---------------------------------------------------------------------------
// Determinism across worker counts
// ---------------------------------------------------------------------------

TEST(JobEngine, ResultsAreByteIdenticalAcrossWorkerCounts) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(150);
  const std::vector<std::pair<double, double>> grid = {
      {5e-9, 0.0}, {1e-5, 0.0}, {1e-5, 1e-6}, {5.2e-3, 0.0},
      {1e-5, 4.1e-5}, {8e-8, 1e-7}};

  struct Snapshot {
    place::Placement placement;
    std::string dump;
  };
  std::vector<Snapshot> reference;
  for (const int workers : {1, 8}) {
    JobEngineOptions opts;
    opts.num_workers = workers;
    opts.thread_budget = 1;  // same per-job configuration at both counts
    JobEngine engine(opts);
    std::vector<JobHandle> handles;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      auto h = engine.Submit(SpecFor(nl, "job" + std::to_string(i),
                                     grid[i].first, grid[i].second,
                                     /*with_fea=*/true));
      ASSERT_TRUE(h.ok()) << h.status().ToString();
      handles.push_back(*h);
    }
    engine.WaitAll();
    for (std::size_t i = 0; i < handles.size(); ++i) {
      const JobResult* r = engine.Result(handles[i]);
      ASSERT_NE(r, nullptr);
      ASSERT_TRUE(r->status.ok()) << r->status.ToString();
      if (workers == 1) {
        reference.push_back({r->placement.placement, r->metrics_dump});
      } else {
        // Byte-identical placement AND byte-identical deterministic
        // metrics dump, alone or among concurrent jobs.
        EXPECT_EQ(r->placement.placement.x, reference[i].placement.x)
            << "job " << i;
        EXPECT_EQ(r->placement.placement.y, reference[i].placement.y)
            << "job " << i;
        EXPECT_EQ(r->placement.placement.layer, reference[i].placement.layer)
            << "job " << i;
        EXPECT_EQ(r->metrics_dump, reference[i].dump) << "job " << i;
      }
    }
  }
}

TEST(JobEngine, EngineJobMatchesStandalonePlacerRun) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(150);

  place::Placer3D standalone(nl, Params(4, 1e-5, 1e-6));
  const place::PlacementResult direct = *standalone.Run({.with_fea = true});

  JobEngineOptions opts;
  opts.num_workers = 4;
  JobEngine engine(opts);
  auto h = engine.Submit(SpecFor(nl, "match", 1e-5, 1e-6, true));
  ASSERT_TRUE(h.ok());
  const JobResult* r = engine.Wait(*h);
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->status.ok()) << r->status.ToString();
  EXPECT_EQ(r->placement.placement.x, direct.placement.x);
  EXPECT_EQ(r->placement.placement.y, direct.placement.y);
  EXPECT_EQ(r->placement.placement.layer, direct.placement.layer);
  EXPECT_DOUBLE_EQ(r->placement.hpwl_m, direct.hpwl_m);
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(JobEngine, CancelQueuedJobCompletesImmediately) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(150);
  PhaseBlocker blocker;

  JobEngineOptions opts;
  opts.num_workers = 1;
  JobEngine engine(opts);

  JobSpec running = SpecFor(nl, "running", 1e-5, 0.0, false);
  running.observers.push_back(&blocker);
  auto h_running = engine.Submit(std::move(running));
  ASSERT_TRUE(h_running.ok());
  blocker.WaitUntilBlocked();  // the single worker is now occupied

  auto h_queued = engine.Submit(SpecFor(nl, "queued", 1e-5, 0.0, false));
  ASSERT_TRUE(h_queued.ok());
  ASSERT_EQ(*engine.Poll(*h_queued), JobState::kQueued);

  EXPECT_TRUE(engine.Cancel(*h_queued));
  // A queued cancel completes without waiting for the worker.
  EXPECT_EQ(*engine.Poll(*h_queued), JobState::kDone);
  const JobResult* r = engine.Result(*h_queued);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(util::IsCancelled(r->status)) << r->status.ToString();
  EXPECT_FALSE(engine.Cancel(*h_queued));  // already done

  blocker.Unblock();
  engine.WaitAll();
  EXPECT_EQ(engine.GetStats().cancelled, 1);
  EXPECT_EQ(engine.GetStats().completed, 1);
}

TEST(JobEngine, CancelRunningJobStopsAtPhaseBoundaryAndReleasesCacheRef) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(150);
  PhaseBlocker blocker;

  JobEngineOptions opts;
  opts.num_workers = 1;
  JobEngine engine(opts);

  // with_fea = true so the job holds a FeaContextCache lease while running.
  JobSpec spec = SpecFor(nl, "victim", 1e-5, 1e-6, true);
  spec.observers.push_back(&blocker);
  auto h = engine.Submit(std::move(spec));
  ASSERT_TRUE(h.ok());

  blocker.WaitUntilBlocked();
  EXPECT_EQ(engine.GetStats().fea_cache.live_entries, 1);
  EXPECT_TRUE(engine.Cancel(*h));  // flags the running job
  blocker.Unblock();

  const JobResult* r = engine.Wait(*h);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(util::IsCancelled(r->status)) << r->status.ToString();
  // The placer reports WHERE the cancel won — a phase boundary, not the end
  // of the run.
  EXPECT_NE(r->status.message().find("boundary"), std::string::npos)
      << r->status.message();
  // The cancelled job's lease is released: the entry is idle, not live.
  const JobEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.fea_cache.live_entries, 0);
  EXPECT_EQ(stats.fea_cache.idle_entries, 1);
  EXPECT_EQ(stats.cancelled, 1);
}

TEST(JobEngine, ExpiredStartDeadlineCancelsQueuedJob) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(150);
  PhaseBlocker blocker;

  JobEngineOptions opts;
  opts.num_workers = 1;
  JobEngine engine(opts);

  JobSpec running = SpecFor(nl, "running", 1e-5, 0.0, false);
  running.observers.push_back(&blocker);
  auto h_running = engine.Submit(std::move(running));
  ASSERT_TRUE(h_running.ok());
  blocker.WaitUntilBlocked();

  JobSpec late = SpecFor(nl, "late", 1e-5, 0.0, false);
  late.start_deadline_s = 1e-9;  // expires while the worker is occupied
  auto h_late = engine.Submit(std::move(late));
  ASSERT_TRUE(h_late.ok());

  blocker.Unblock();
  const JobResult* r = engine.Wait(*h_late);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(util::IsCancelled(r->status)) << r->status.ToString();
  EXPECT_NE(r->status.message().find("deadline"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Priority
// ---------------------------------------------------------------------------

TEST(JobEngine, LateHighPriorityJobStartsBeforeQueuedLowPriority) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(150);
  PhaseBlocker blocker;

  JobEngineOptions opts;
  opts.num_workers = 1;
  JobEngine engine(opts);

  std::mutex order_mutex;
  std::vector<std::string> completion_order;
  engine.SetCompletionCallback(
      [&](JobHandle, const std::string& name, const JobResult&) {
        std::lock_guard<std::mutex> lock(order_mutex);
        completion_order.push_back(name);
      });

  JobSpec first = SpecFor(nl, "first", 1e-5, 0.0, false);
  first.observers.push_back(&blocker);
  ASSERT_TRUE(engine.Submit(std::move(first)).ok());
  blocker.WaitUntilBlocked();  // worker busy; everything below queues

  JobSpec low_a = SpecFor(nl, "low_a", 1e-5, 0.0, false);
  JobSpec low_b = SpecFor(nl, "low_b", 1e-5, 0.0, false);
  JobSpec high = SpecFor(nl, "high", 1e-5, 0.0, false);
  high.priority = 5;  // admitted last, must run first
  ASSERT_TRUE(engine.Submit(std::move(low_a)).ok());
  ASSERT_TRUE(engine.Submit(std::move(low_b)).ok());
  ASSERT_TRUE(engine.Submit(std::move(high)).ok());

  blocker.Unblock();
  engine.WaitAll();

  ASSERT_EQ(completion_order.size(), 4u);
  EXPECT_EQ(completion_order[0], "first");
  EXPECT_EQ(completion_order[1], "high");
  EXPECT_EQ(completion_order[2], "low_a");  // FIFO within a priority
  EXPECT_EQ(completion_order[3], "low_b");
}

// ---------------------------------------------------------------------------
// FEA cache
// ---------------------------------------------------------------------------

TEST(JobEngine, FeaCacheBuildsOncePerGeometry) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(150);

  JobEngineOptions opts;
  opts.num_workers = 4;
  JobEngine engine(opts);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 4; ++i) {
    auto h = engine.Submit(SpecFor(nl, "same" + std::to_string(i),
                                   1e-5 * (i + 1), 0.0, /*with_fea=*/true));
    ASSERT_TRUE(h.ok());
    handles.push_back(*h);
  }
  // Different layer count => different stack geometry => second entry.
  JobSpec other = SpecFor(nl, "other", 1e-5, 0.0, true);
  other.params.num_layers = 2;
  auto h_other = engine.Submit(std::move(other));
  ASSERT_TRUE(h_other.ok());
  engine.WaitAll();

  // Misses are scheduling-independent: same-key racers serialize on the
  // build, so exactly one miss per distinct geometry.
  const JobEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.fea_cache.misses, 2);
  EXPECT_EQ(stats.fea_cache.hits, 3);
  EXPECT_EQ(stats.fea_cache.live_entries, 0);
  EXPECT_EQ(stats.fea_cache.idle_entries, 2);
  EXPECT_EQ(stats.completed, 5);
}

TEST(FeaContextCache, EvictsLeastRecentlyUsedIdleEntriesBeyondCap) {
  FeaContextCache::Options opts;
  opts.max_idle_entries = 1;
  FeaContextCache cache(opts);

  auto key = [](int layers) {
    FeaCacheKey k;
    k.stack.num_layers = layers;
    k.chip = thermal::ChipExtent{1e-3, 1e-3};
    k.fea.nx = 8;
    k.fea.ny = 8;
    return k;
  };

  FeaContextLease a = cache.Acquire(key(2), /*warm_start=*/false);
  FeaContextLease b = cache.Acquire(key(3), /*warm_start=*/false);
  EXPECT_TRUE(a);
  EXPECT_TRUE(b);
  EXPECT_EQ(cache.GetStats().live_entries, 2);  // referenced: never evicted

  a.Release();
  b.Release();
  // Idle cap is 1: releasing the second entry evicts the LRU (a's).
  const FeaContextCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.idle_entries, 1);
  EXPECT_EQ(stats.evictions, 1);

  // Re-acquiring the surviving key hits; the evicted key rebuilds.
  FeaContextLease c = cache.Acquire(key(3), false);
  EXPECT_EQ(cache.GetStats().hits, 1);
  FeaContextLease d = cache.Acquire(key(2), false);
  EXPECT_EQ(cache.GetStats().misses, 3);
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

TEST(JobsManifest, ParsesJobsWithDefaultsAndDerivedSeeds) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const std::string text = R"({
    "schema": "placer3d.jobs", "version": 1, "seed": 42,
    "defaults": {"circuit": "ibm01", "scale": 0.01, "layers": 3},
    "jobs": [
      {"name": "a", "alpha_ilv": 5e-9},
      {"alpha_ilv": 1e-5, "priority": 2, "seed": 7},
      {"name": "c", "circuit": "ibm02", "scale": 0.01, "layers": 2,
       "global_backend": "analytic"}
    ]
  })";
  auto m = ParseJobsManifest(text);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_EQ(m->jobs.size(), 3u);
  EXPECT_EQ(m->base_seed, 42u);

  EXPECT_EQ(m->jobs[0].name, "a");
  EXPECT_EQ(m->jobs[0].params.num_layers, 3);
  EXPECT_DOUBLE_EQ(m->jobs[0].params.alpha_ilv, 5e-9);
  EXPECT_EQ(m->jobs[0].params.seed, runtime::DeriveSeed(42, 0));

  EXPECT_EQ(m->jobs[1].name, "ibm01-job2");  // generated name
  EXPECT_EQ(m->jobs[1].priority, 2);
  EXPECT_EQ(m->jobs[1].params.seed, 7u);  // explicit seed wins

  // Backend defaults to bisection; per-job override parses.
  EXPECT_EQ(m->jobs[0].params.global_backend, place::GlobalBackend::kBisection);
  EXPECT_EQ(m->jobs[2].params.global_backend, place::GlobalBackend::kAnalytic);

  EXPECT_EQ(m->jobs[2].params.num_layers, 2);
  // Netlists dedupe by (circuit, scale): ibm01 shared, ibm02 separate.
  EXPECT_EQ(m->netlists.size(), 2u);
  EXPECT_EQ(m->jobs[0].netlist, m->jobs[1].netlist);
  EXPECT_NE(m->jobs[0].netlist, m->jobs[2].netlist);
}

TEST(JobsManifest, RejectsMalformedInput) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  EXPECT_FALSE(ParseJobsManifest("not json").ok());
  EXPECT_FALSE(ParseJobsManifest(R"({"schema": "other", "version": 1,
                                     "jobs": []})")
                   .ok());
  EXPECT_FALSE(ParseJobsManifest(R"({"schema": "placer3d.jobs",
                                     "version": 99, "jobs": []})")
                   .ok());
  // jobs must be an array of objects.
  EXPECT_FALSE(ParseJobsManifest(R"({"schema": "placer3d.jobs",
                                     "version": 1, "jobs": 3})")
                   .ok());
  // Unknown circuit name surfaces as an error, not a crash.
  EXPECT_FALSE(ParseJobsManifest(R"({"schema": "placer3d.jobs", "version": 1,
      "jobs": [{"circuit": "nope", "scale": 0.01}]})")
                   .ok());
  // Type error in a field.
  EXPECT_FALSE(ParseJobsManifest(R"({"schema": "placer3d.jobs", "version": 1,
      "jobs": [{"circuit": "ibm01", "scale": "wide"}]})")
                   .ok());
  // Unknown global backend name is a manifest error.
  EXPECT_FALSE(ParseJobsManifest(R"({"schema": "placer3d.jobs", "version": 1,
      "jobs": [{"circuit": "ibm01", "scale": 0.01,
                "global_backend": "simulated-annealing"}]})")
                   .ok());
  EXPECT_FALSE(LoadJobsManifest("/nonexistent/manifest.json").ok());
}

// ---------------------------------------------------------------------------
// Sweep + batch report
// ---------------------------------------------------------------------------

TEST(BatchReport, SweepProducesValidatableReport) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(150);

  JobEngineOptions opts;
  opts.num_workers = 2;
  JobEngine engine(opts);

  SweepSpec sweep;
  sweep.netlist = &nl;
  sweep.circuit = "serve";
  sweep.circuit_scale = 1.0;
  sweep.base = Params(4);
  sweep.options.with_fea = true;
  sweep.alpha_ilv = {5e-9, 1e-5};
  sweep.alpha_temp = {0.0, 1e-6};
  auto points = RunSweep(engine, sweep);
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  ASSERT_EQ(points->size(), 4u);  // 2 x 2 grid, layers axis defaulted

  std::vector<JobHandle> handles;
  for (const SweepPoint& p : *points) {
    ASSERT_NE(p.result, nullptr);
    EXPECT_TRUE(p.result->status.ok()) << p.name;
    handles.push_back(p.handle);
  }
  // Grid order is layers-outer / ilv-middle / temp-inner.
  EXPECT_EQ((*points)[0].name, "L4_ilv5e-09_temp0");
  EXPECT_EQ((*points)[1].name, "L4_ilv5e-09_temp1e-06");
  EXPECT_EQ((*points)[2].name, "L4_ilv1e-05_temp0");

  const obs::JsonValue report = BuildBatchReport(engine, handles);
  std::string error;
  EXPECT_TRUE(ValidateBatchReport(report, &error)) << error;

  // Round-trips through serialization.
  obs::JsonValue parsed;
  std::string parse_error;
  ASSERT_TRUE(obs::ParseJson(report.Serialize(), &parsed, &parse_error))
      << parse_error;
  EXPECT_TRUE(ValidateBatchReport(parsed, &error)) << error;

  EXPECT_FALSE(ValidateBatchReport(obs::JsonValue::MakeObject(), &error));
}

TEST(BatchReport, SurfacesCancelledJobsWithMessages) {
  util::ScopedLogLevel quiet(util::LogLevel::kWarn);
  const netlist::Netlist nl = Circuit(150);
  PhaseBlocker blocker;

  JobEngineOptions opts;
  opts.num_workers = 1;
  JobEngine engine(opts);

  JobSpec running = SpecFor(nl, "running", 1e-5, 0.0, false);
  running.observers.push_back(&blocker);
  auto h_running = engine.Submit(std::move(running));
  ASSERT_TRUE(h_running.ok());
  blocker.WaitUntilBlocked();
  auto h_queued = engine.Submit(SpecFor(nl, "doomed", 1e-5, 0.0, false));
  ASSERT_TRUE(h_queued.ok());
  EXPECT_TRUE(engine.Cancel(*h_queued));
  blocker.Unblock();
  engine.WaitAll();

  const obs::JsonValue report =
      BuildBatchReport(engine, {*h_running, *h_queued});
  std::string error;
  ASSERT_TRUE(ValidateBatchReport(report, &error)) << error;
  const auto& jobs = report.Find("jobs")->AsArray();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].Find("status")->AsString(), "ok");
  EXPECT_EQ(jobs[1].Find("status")->AsString(), "cancelled");
  ASSERT_NE(jobs[1].Find("message"), nullptr);
}

// ---------------------------------------------------------------------------
// Submit validation
// ---------------------------------------------------------------------------

TEST(JobEngine, SubmitRejectsInvalidSpecs) {
  JobEngine engine;
  JobSpec no_netlist;
  EXPECT_EQ(engine.Submit(std::move(no_netlist)).status().code(),
            util::StatusCode::kInvalidArgument);

  const netlist::Netlist nl = Circuit(150);
  JobSpec bad_deadline;
  bad_deadline.netlist = &nl;
  bad_deadline.start_deadline_s = -1.0;
  EXPECT_EQ(engine.Submit(std::move(bad_deadline)).status().code(),
            util::StatusCode::kInvalidArgument);

  EXPECT_EQ(engine.Poll(JobHandle{999}).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(engine.Wait(JobHandle{999}), nullptr);
  EXPECT_FALSE(engine.Cancel(JobHandle{999}));
}

}  // namespace
}  // namespace p3d::serve
