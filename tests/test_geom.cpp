#include <gtest/gtest.h>

#include "geom/geometry.h"

namespace p3d::geom {
namespace {

TEST(Rect, Basics) {
  const Rect r{1.0, 2.0, 5.0, 8.0};
  EXPECT_DOUBLE_EQ(r.Width(), 4.0);
  EXPECT_DOUBLE_EQ(r.Height(), 6.0);
  EXPECT_DOUBLE_EQ(r.Area(), 24.0);
  EXPECT_DOUBLE_EQ(r.CenterX(), 3.0);
  EXPECT_DOUBLE_EQ(r.CenterY(), 5.0);
}

TEST(Rect, Contains) {
  const Rect r{0.0, 0.0, 2.0, 2.0};
  EXPECT_TRUE(r.Contains(1.0, 1.0));
  EXPECT_TRUE(r.Contains(0.0, 0.0));   // boundary inclusive
  EXPECT_TRUE(r.Contains(2.0, 2.0));
  EXPECT_FALSE(r.Contains(-0.1, 1.0));
  EXPECT_FALSE(r.Contains(1.0, 2.1));
}

TEST(Rect, ClampProjectsOutsidePoints) {
  const Rect r{0.0, 0.0, 10.0, 4.0};
  const Point2 p = r.Clamp(-5.0, 7.0);
  EXPECT_DOUBLE_EQ(p.x, 0.0);
  EXPECT_DOUBLE_EQ(p.y, 4.0);
  const Point2 inside = r.Clamp(3.0, 2.0);
  EXPECT_DOUBLE_EQ(inside.x, 3.0);
  EXPECT_DOUBLE_EQ(inside.y, 2.0);
}

TEST(Rect, ExpandGrows) {
  Rect r{1.0, 1.0, 2.0, 2.0};
  r.Expand(0.0, 3.0);
  EXPECT_DOUBLE_EQ(r.x_lo, 0.0);
  EXPECT_DOUBLE_EQ(r.y_hi, 3.0);
  r.Expand(1.5, 1.5);  // interior point: no change
  EXPECT_EQ(r, (Rect{0.0, 1.0, 2.0, 3.0}));
}

TEST(Region, LayerQueries) {
  const Region rg{{0, 0, 1, 1}, 1, 3};
  EXPECT_EQ(rg.NumLayers(), 3);
  EXPECT_TRUE(rg.ContainsLayer(1));
  EXPECT_TRUE(rg.ContainsLayer(3));
  EXPECT_FALSE(rg.ContainsLayer(0));
  EXPECT_FALSE(rg.ContainsLayer(4));
  EXPECT_TRUE(rg.Contains(Point3{0.5, 0.5, 2}));
  EXPECT_FALSE(rg.Contains(Point3{0.5, 0.5, 0}));
  EXPECT_FALSE(rg.Contains(Point3{2.0, 0.5, 2}));
}

TEST(BBox3, EmptyBox) {
  const BBox3 box;
  EXPECT_TRUE(box.Empty());
  EXPECT_DOUBLE_EQ(box.Hpwl(), 0.0);
  EXPECT_EQ(box.LayerSpan(), 0);
}

TEST(BBox3, SinglePoint) {
  BBox3 box;
  box.Add({3.0, 4.0, 2});
  EXPECT_FALSE(box.Empty());
  EXPECT_DOUBLE_EQ(box.Hpwl(), 0.0);
  EXPECT_EQ(box.LayerSpan(), 0);
  EXPECT_EQ(box.LayerLo(), 2);
  EXPECT_EQ(box.LayerHi(), 2);
}

TEST(BBox3, HpwlAndSpan) {
  BBox3 box;
  box.Add({0.0, 0.0, 0});
  box.Add({3.0, 4.0, 2});
  box.Add({1.0, 1.0, 1});  // interior: no change
  EXPECT_DOUBLE_EQ(box.Hpwl(), 7.0);
  EXPECT_EQ(box.LayerSpan(), 2);
}

TEST(BBox3, NegativeCoordinates) {
  BBox3 box;
  box.Add({-2.0, -3.0, 1});
  box.Add({2.0, 3.0, 0});
  EXPECT_DOUBLE_EQ(box.Hpwl(), 10.0);
  EXPECT_EQ(box.LayerSpan(), 1);
  EXPECT_EQ(box.LayerLo(), 0);
}

TEST(Manhattan, Distance) {
  EXPECT_DOUBLE_EQ(ManhattanDistance({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(ManhattanDistance({-1, -1}, {-1, -1}), 0.0);
  EXPECT_DOUBLE_EQ(ManhattanDistance({1, 0}, {0, 1}), 2.0);
}

TEST(ToString, ProducesNonEmpty) {
  EXPECT_FALSE(ToString(Rect{0, 0, 1, 1}).empty());
  EXPECT_NE(ToString(Region{{0, 0, 1, 1}, 0, 3}).find("L[0,3]"),
            std::string::npos);
}

// Property sweep: HPWL is invariant to the order points are added.
class BBoxOrderInvariance : public ::testing::TestWithParam<int> {};

TEST_P(BBoxOrderInvariance, OrderDoesNotMatter) {
  const int rotation = GetParam();
  const Point3 pts[4] = {{0, 0, 0}, {5, 1, 2}, {2, 7, 1}, {4, 4, 3}};
  BBox3 box;
  for (int i = 0; i < 4; ++i) {
    box.Add(pts[(i + rotation) % 4]);
  }
  EXPECT_DOUBLE_EQ(box.Hpwl(), 12.0);
  EXPECT_EQ(box.LayerSpan(), 3);
}

INSTANTIATE_TEST_SUITE_P(AllRotations, BBoxOrderInvariance,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace p3d::geom
