// Bookshelf flow: reads an IBM-PLACE-style Bookshelf design (.aux naming
// .nodes/.nets/.pl/.scl), places it on a 3D stack, and writes the result as
// an extended .pl (with a trailing layer column).
//
// If no .aux path is given, the example writes a small self-contained
// Bookshelf design to /tmp, then round-trips it through the parser and
// placer — so the example is runnable without external benchmark data.
//
//   ./bookshelf_flow [design.aux] [out.pl] [layers]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "io/bookshelf.h"
#include "io/synthetic.h"
#include "place/placer.h"
#include "util/log.h"

namespace {

/// Writes a tiny Bookshelf design derived from a synthetic circuit.
std::string WriteDemoDesign() {
  const std::string dir = "/tmp/p3d_bookshelf_demo";
  std::system(("mkdir -p " + dir).c_str());

  p3d::io::SyntheticSpec spec;
  spec.name = "demo";
  spec.num_cells = 400;
  spec.total_area_m2 = 400 * 4.9e-12;
  spec.seed = 5;
  const p3d::netlist::Netlist nl = p3d::io::Generate(spec);

  const double unit = 1e-6;  // bookshelf unit = 1 um
  {
    std::ofstream f(dir + "/demo.nodes");
    f << "UCLA nodes 1.0\n\nNumNodes : " << nl.NumCells()
      << "\nNumTerminals : 0\n";
    for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
      f << '\t' << nl.cell(c).name << '\t' << nl.cell(c).width / unit << '\t'
        << nl.cell(c).height / unit << '\n';
    }
  }
  {
    std::ofstream f(dir + "/demo.nets");
    f << "UCLA nets 1.0\n\nNumNets : " << nl.NumNets()
      << "\nNumPins : " << nl.NumPins() << "\n";
    for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
      f << "NetDegree : " << nl.net(n).num_pins << " " << nl.net(n).name
        << "\n";
      for (const p3d::netlist::Pin& pin : nl.NetPins(n)) {
        f << '\t' << nl.cell(pin.cell).name << ' '
          << (pin.dir == p3d::netlist::PinDir::kOutput ? 'O' : 'I')
          << " : 0 0\n";
      }
    }
  }
  {
    std::ofstream f(dir + "/demo.pl");
    f << "UCLA pl 1.0\n\n";
    for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
      f << nl.cell(c).name << "\t0\t0\t: N\n";
    }
  }
  {
    std::ofstream f(dir + "/demo.aux");
    f << "RowBasedPlacement : demo.nodes demo.nets demo.pl\n";
  }
  return dir + "/demo.aux";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string aux = argc > 1 ? argv[1] : WriteDemoDesign();
  const std::string out_pl = argc > 2 ? argv[2] : "/tmp/p3d_placed.pl";
  const int layers = argc > 3 ? std::atoi(argv[3]) : 4;

  p3d::io::BookshelfDesign design;
  if (const p3d::util::Status s = p3d::io::LoadBookshelf(aux, /*unit_m=*/1e-6,
                                                         &design);
      !s.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", aux.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  std::printf("loaded %s: %d cells, %d nets, %d pins\n", aux.c_str(),
              design.netlist.NumCells(), design.netlist.NumNets(),
              design.netlist.NumPins());

  p3d::place::PlacerParams params;
  params.num_layers = layers;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = 1e-6;
  p3d::place::Placer3D placer(design.netlist, params);
  const p3d::place::PlacementResult r = *placer.Run({.with_fea = true});

  std::printf("placed: hpwl %.5g m, %lld vias, avg temp %.2f C, %s\n",
              r.hpwl_m, r.ilv_count, r.avg_temp_c,
              r.legal ? "legal" : "NOT legal");

  if (!p3d::io::WritePlFile(out_pl, design.netlist, r.placement.x,
                            r.placement.y, r.placement.layer, 1e-6)) {
    return 1;
  }
  std::printf("wrote %s\n", out_pl.c_str());
  return r.legal ? 0 : 1;
}
