// Tradeoff explorer: sweeps the interlayer-via coefficient alpha_ILV and
// prints the wirelength / via-count tradeoff curve (the per-circuit view of
// the paper's Figure 3), then sweeps the thermal coefficient alpha_TEMP at a
// fixed alpha_ILV and prints the temperature / wirelength / power response
// (the per-circuit view of Figure 9).
//
//   ./tradeoff_explorer [num_cells] [num_layers]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "io/synthetic.h"
#include "place/placer.h"
#include "util/log.h"

int main(int argc, char** argv) {
  const int num_cells = argc > 1 ? std::atoi(argv[1]) : 1500;
  const int num_layers = argc > 2 ? std::atoi(argv[2]) : 4;
  p3d::util::SetLogLevel(p3d::util::LogLevel::kWarn);

  p3d::io::SyntheticSpec spec;
  spec.name = "explorer";
  spec.num_cells = num_cells;
  spec.total_area_m2 = num_cells * 4.9e-12;
  spec.seed = 7;
  const p3d::netlist::Netlist nl = p3d::io::Generate(spec);
  std::printf("# circuit: %d cells, %d nets, %d layers\n", nl.NumCells(),
              nl.NumNets(), num_layers);

  std::printf("\n# --- alpha_ILV sweep (alpha_TEMP = 0): WL vs ILV ---\n");
  std::printf("%-12s %-12s %-10s %-14s %s\n", "alpha_ilv", "hpwl_m", "ilv",
              "ilv_density", "runtime_s");
  for (const double a : {5e-9, 8e-8, 1.3e-6, 1e-5, 8.2e-5, 6.6e-4, 5.2e-3}) {
    p3d::place::PlacerParams params;
    params.num_layers = num_layers;
    params.alpha_ilv = a;
    params.alpha_temp = 0.0;
    p3d::place::Placer3D placer(nl, params);
    const auto r = *placer.Run({.with_fea = false});
    std::printf("%-12.3g %-12.5g %-10lld %-14.4g %.2f\n", a, r.hpwl_m,
                r.ilv_count, r.ilv_density, r.t_total);
  }

  std::printf("\n# --- alpha_TEMP sweep (alpha_ILV = 1e-5): temp response ---\n");
  std::printf("%-12s %-12s %-10s %-12s %-10s %s\n", "alpha_temp", "hpwl_m",
              "ilv", "power_w", "avg_temp", "max_temp");
  for (const double a : {0.0, 1e-7, 1e-6, 4.1e-5, 6.6e-4}) {
    p3d::place::PlacerParams params;
    params.num_layers = num_layers;
    params.alpha_ilv = 1e-5;
    params.alpha_temp = a;
    p3d::place::Placer3D placer(nl, params);
    const auto r = *placer.Run({.with_fea = true});
    std::printf("%-12.3g %-12.5g %-10lld %-12.5g %-10.3f %.3f\n", a, r.hpwl_m,
                r.ilv_count, r.total_power_w, r.avg_temp_c, r.max_temp_c);
  }
  return 0;
}
