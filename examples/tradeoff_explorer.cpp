// Tradeoff explorer: sweeps the interlayer-via coefficient alpha_ILV and
// prints the wirelength / via-count tradeoff curve (the per-circuit view of
// the paper's Figure 3), then sweeps the thermal coefficient alpha_TEMP at a
// fixed alpha_ILV and prints the temperature / wirelength / power response
// (the per-circuit view of Figure 9).
//
// Both sweeps run through serve::RunSweep on a concurrent JobEngine: grid
// points place in parallel on the worker pool while the printed curves stay
// byte-identical to the old serial loop (per-job seeds and the grid order
// are pure functions of the sweep spec). The thermal sweep additionally
// shares one FEA assembly + IC(0) factorization across all its jobs via the
// engine's FeaContextCache.
//
//   ./tradeoff_explorer [num_cells] [num_layers] [workers]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "io/synthetic.h"
#include "serve/batch.h"
#include "serve/job_engine.h"
#include "util/log.h"

int main(int argc, char** argv) {
  const int num_cells = argc > 1 ? std::atoi(argv[1]) : 1500;
  const int num_layers = argc > 2 ? std::atoi(argv[2]) : 4;
  const int workers = argc > 3 ? std::atoi(argv[3]) : 4;
  p3d::util::SetLogLevel(p3d::util::LogLevel::kWarn);

  p3d::io::SyntheticSpec spec;
  spec.name = "explorer";
  spec.num_cells = num_cells;
  spec.total_area_m2 = num_cells * 4.9e-12;
  spec.seed = 7;
  const p3d::netlist::Netlist nl = p3d::io::Generate(spec);
  std::printf("# circuit: %d cells, %d nets, %d layers (%d workers)\n",
              nl.NumCells(), nl.NumNets(), num_layers, workers);

  p3d::serve::JobEngineOptions engine_opts;
  engine_opts.num_workers = workers;
  p3d::serve::JobEngine engine(engine_opts);

  p3d::serve::SweepSpec base;
  base.netlist = &nl;
  base.circuit = spec.name;
  base.base.num_layers = num_layers;

  std::printf("\n# --- alpha_ILV sweep (alpha_TEMP = 0): WL vs ILV ---\n");
  std::printf("%-12s %-12s %-10s %-14s %s\n", "alpha_ilv", "hpwl_m", "ilv",
              "ilv_density", "runtime_s");
  {
    p3d::serve::SweepSpec sweep = base;
    sweep.base.alpha_temp = 0.0;
    sweep.alpha_ilv = {5e-9, 8e-8, 1.3e-6, 1e-5, 8.2e-5, 6.6e-4, 5.2e-3};
    sweep.options.with_fea = false;
    const auto points = p3d::serve::RunSweep(engine, sweep);
    if (!points.ok()) {
      std::fprintf(stderr, "%s\n", points.status().ToString().c_str());
      return 1;
    }
    for (const p3d::serve::SweepPoint& p : *points) {
      if (!p.result->status.ok()) {
        std::fprintf(stderr, "%s: %s\n", p.name.c_str(),
                     p.result->status.ToString().c_str());
        return 1;
      }
      const auto& r = p.result->placement;
      std::printf("%-12.3g %-12.5g %-10lld %-14.4g %.2f\n", p.alpha_ilv,
                  r.hpwl_m, r.ilv_count, r.ilv_density, r.t_total);
    }
  }

  std::printf("\n# --- alpha_TEMP sweep (alpha_ILV = 1e-5): temp response ---\n");
  std::printf("%-12s %-12s %-10s %-12s %-10s %s\n", "alpha_temp", "hpwl_m",
              "ilv", "power_w", "avg_temp", "max_temp");
  {
    p3d::serve::SweepSpec sweep = base;
    sweep.base.alpha_ilv = 1e-5;
    sweep.alpha_temp = {0.0, 1e-7, 1e-6, 4.1e-5, 6.6e-4};
    sweep.options.with_fea = true;
    const auto points = p3d::serve::RunSweep(engine, sweep);
    if (!points.ok()) {
      std::fprintf(stderr, "%s\n", points.status().ToString().c_str());
      return 1;
    }
    for (const p3d::serve::SweepPoint& p : *points) {
      if (!p.result->status.ok()) {
        std::fprintf(stderr, "%s: %s\n", p.name.c_str(),
                     p.result->status.ToString().c_str());
        return 1;
      }
      const auto& r = p.result->placement;
      std::printf("%-12.3g %-12.5g %-10lld %-12.5g %-10.3f %.3f\n",
                  p.alpha_temp, r.hpwl_m, r.ilv_count, r.total_power_w,
                  r.avg_temp_c, r.max_temp_c);
    }
  }

  const auto stats = engine.GetStats();
  std::printf("\n# engine: %lld jobs, fea cache %lld hits / %lld misses\n",
              stats.completed, stats.fea_cache.hits, stats.fea_cache.misses);
  return 0;
}
