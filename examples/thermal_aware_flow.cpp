// Thermal-aware flow: places the same circuit twice — once as a regular
// wirelength/via-driven placement and once with the thermal machinery
// enabled (net weighting + thermal-resistance-reduction nets) — then
// compares FEA temperature fields, power, and the vertical distribution of
// power between the two. This is the paper's core claim in miniature:
// temperatures drop substantially for a small wirelength/via cost.
//
//   ./thermal_aware_flow [num_cells] [alpha_temp]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "io/synthetic.h"
#include "place/placer.h"
#include "thermal/power.h"
#include "util/log.h"

namespace {

struct Outcome {
  p3d::place::PlacementResult result;
  std::vector<double> layer_power;  // W per layer
};

Outcome RunOnce(const p3d::netlist::Netlist& nl, double alpha_temp,
                double scale) {
  p3d::place::PlacerParams params;
  params.num_layers = 4;
  params.alpha_ilv = 1e-5;
  params.alpha_temp = alpha_temp;
  p3d::place::CompensateWireCapForScale(&params, scale);
  p3d::place::Placer3D placer(nl, params);
  Outcome o;
  o.result = *placer.Run({.with_fea = true});
  const auto metrics = p3d::thermal::ComputeNetMetrics(
      nl, o.result.placement.x, o.result.placement.y, o.result.placement.layer);
  const auto power = p3d::thermal::ComputePower(nl, metrics, params.electrical);
  o.layer_power.assign(static_cast<std::size_t>(params.num_layers), 0.0);
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    const int l = o.result.placement.layer[static_cast<std::size_t>(c)];
    o.layer_power[static_cast<std::size_t>(l)] +=
        power.cell_power[static_cast<std::size_t>(c)];
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_cells = argc > 1 ? std::atoi(argv[1]) : 2000;
  const double alpha_temp = argc > 2 ? std::atof(argv[2]) : 5e-6;
  p3d::util::SetLogLevel(p3d::util::LogLevel::kWarn);

  const double scale = num_cells / 12282.0;  // relative to ibm01
  p3d::io::SyntheticSpec spec;
  spec.name = "thermal_demo";
  spec.num_cells = num_cells;
  spec.total_area_m2 = num_cells * 4.9e-12;
  spec.seed = 11;
  const p3d::netlist::Netlist nl = p3d::io::Generate(spec);
  std::printf("circuit: %d cells, %d nets; comparing alpha_temp = 0 vs %g\n\n",
              nl.NumCells(), nl.NumNets(), alpha_temp);

  const Outcome base = RunOnce(nl, 0.0, scale);
  const Outcome therm = RunOnce(nl, alpha_temp, scale);

  auto pct = [](double a, double b) { return b != 0.0 ? 100.0 * (a - b) / b : 0.0; };
  std::printf("%-22s %-14s %-14s %s\n", "metric", "regular", "thermal",
              "change");
  std::printf("%-22s %-14.5g %-14.5g %+.1f%%\n", "wirelength (m)",
              base.result.hpwl_m, therm.result.hpwl_m,
              pct(therm.result.hpwl_m, base.result.hpwl_m));
  std::printf("%-22s %-14lld %-14lld %+.1f%%\n", "interlayer vias",
              base.result.ilv_count, therm.result.ilv_count,
              pct(static_cast<double>(therm.result.ilv_count),
                  static_cast<double>(base.result.ilv_count)));
  std::printf("%-22s %-14.5g %-14.5g %+.1f%%\n", "total power (W)",
              base.result.total_power_w, therm.result.total_power_w,
              pct(therm.result.total_power_w, base.result.total_power_w));
  std::printf("%-22s %-14.3f %-14.3f %+.1f%%\n", "avg temperature (C)",
              base.result.avg_temp_c, therm.result.avg_temp_c,
              pct(therm.result.avg_temp_c, base.result.avg_temp_c));
  std::printf("%-22s %-14.3f %-14.3f %+.1f%%\n", "max temperature (C)",
              base.result.max_temp_c, therm.result.max_temp_c,
              pct(therm.result.max_temp_c, base.result.max_temp_c));

  std::printf("\npower by layer (W), layer 0 = nearest heat sink:\n");
  std::printf("%-8s %-14s %s\n", "layer", "regular", "thermal");
  for (std::size_t l = 0; l < base.layer_power.size(); ++l) {
    std::printf("%-8zu %-14.5g %.5g\n", l, base.layer_power[l],
                therm.layer_power[l]);
  }
  const bool cooler = therm.result.avg_temp_c < base.result.avg_temp_c;
  std::printf("\nthermal placement is %s (avg %+.1f%%)\n",
              cooler ? "COOLER" : "NOT cooler",
              pct(therm.result.avg_temp_c, base.result.avg_temp_c));
  return 0;
}
