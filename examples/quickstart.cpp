// Quickstart: generate a small 3D circuit, place it on 4 layers with both
// interlayer-via and thermal awareness, and print the quality metrics.
//
//   ./quickstart [num_cells]
#include <cstdio>
#include <cstdlib>

#include "io/synthetic.h"
#include "place/placer.h"
#include "util/log.h"

int main(int argc, char** argv) {
  const int num_cells = argc > 1 ? std::atoi(argv[1]) : 2000;

  // 1. A workload: synthetic circuit with IBM-PLACE-like statistics.
  p3d::io::SyntheticSpec spec;
  spec.name = "quickstart";
  spec.num_cells = num_cells;
  spec.total_area_m2 = num_cells * 4.9e-12;  // ~ibm01 average cell area
  spec.seed = 42;
  const p3d::netlist::Netlist nl = p3d::io::Generate(spec);
  std::printf("circuit: %d cells, %d nets, %d pins\n", nl.NumCells(),
              nl.NumNets(), nl.NumPins());

  // 2. Placer configuration: Table 2 defaults, thermal optimization on.
  p3d::place::PlacerParams params;
  params.num_layers = 4;
  params.alpha_ilv = 1e-5;   // vias cost ~one average cell pitch of wire
  params.alpha_temp = 1e-5;  // moderate thermal pressure

  // 3. Run the full flow: global -> coarse -> detailed legalization.
  p3d::place::Placer3D placer(nl, params);
  const p3d::place::PlacementResult r = *placer.Run({.with_fea = true});

  // 4. Report.
  std::printf("\n=== placement result ===\n");
  std::printf("legal          : %s (%lld overlaps)\n", r.legal ? "yes" : "NO",
              r.overlaps);
  std::printf("wirelength     : %.4f m\n", r.hpwl_m);
  std::printf("interlayer vias: %lld (%.3g per m^2 per interlayer)\n",
              r.ilv_count, r.ilv_density);
  std::printf("total power    : %.4f W\n", r.total_power_w);
  std::printf("avg/max temp   : %.2f / %.2f C above ambient\n", r.avg_temp_c,
              r.max_temp_c);
  std::printf("objective      : %.6g\n", r.objective);
  std::printf("runtime        : %.2fs (global %.2fs, coarse %.2fs, "
              "detailed %.2fs)\n",
              r.t_total, r.t_global, r.t_coarse, r.t_detailed);
  return r.legal ? 0 : 1;
}
