#!/usr/bin/env python3
"""Plot the paper's figures from a bench_output.txt produced by

    for b in build/bench/*; do echo "=== $b ==="; $b; done > bench_output.txt

Requires matplotlib. Writes PNGs next to the output file:
fig3_tradeoff.png, fig4_avg.png, fig5_layers.png, fig8_temp_reduction.png,
fig9_percent_change.png, fig10_runtime.png.

Usage: scripts/plot_figures.py [bench_output.txt] [out_dir]
"""
import os
import re
import sys


def sections(path):
    """Splits the log into {bench_name: [lines]}."""
    out, name = {}, None
    with open(path) as f:
        for line in f:
            m = re.match(r"=== .*/(bench_\w+) ===", line)
            if m:
                name = m.group(1)
                out[name] = []
            elif name:
                out[name].append(line.rstrip("\n"))
    return out


def rows(lines, ncols):
    """Whitespace-separated numeric/str rows with at least ncols columns."""
    for line in lines:
        if line.startswith("#") or not line.strip():
            continue
        parts = line.split()
        if len(parts) >= ncols:
            yield parts


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else os.path.dirname(path) or "."
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    sec = sections(path)

    # --- Figure 3: per-circuit tradeoff curves ---------------------------
    if "bench_fig3_tradeoff_curves" in sec:
        curves = {}
        for p in rows(sec["bench_fig3_tradeoff_curves"], 5):
            if p[0] == "circuit":
                continue
            curves.setdefault(p[0], []).append((float(p[2]), float(p[3])))
        plt.figure(figsize=(7, 5))
        for name, pts in sorted(curves.items()):
            pts.sort()
            plt.loglog([w for w, _ in pts], [d for _, d in pts],
                       marker=".", label=name, linewidth=0.8)
        plt.xlabel("wirelength (m)")
        plt.ylabel("interlayer via density (1/m$^2$/interlayer)")
        plt.title("Fig. 3 — WL vs ILV density tradeoff")
        plt.legend(fontsize=5, ncol=2)
        plt.tight_layout()
        plt.savefig(os.path.join(out_dir, "fig3_tradeoff.png"), dpi=150)

    # --- Figure 4: averaged tradeoff ----------------------------------------
    if "bench_fig4_avg_tradeoff" in sec:
        data = [(float(p[0]), float(p[1]), float(p[2]))
                for p in rows(sec["bench_fig4_avg_tradeoff"], 3)
                if p[0] != "alpha_ilv"]
        if data:
            a, dens, wl = zip(*sorted(data))
            fig, ax1 = plt.subplots(figsize=(7, 4))
            ax1.semilogx(a, dens, "o-", color="tab:blue", label="ILV density")
            ax1.set_yscale("log")
            ax1.set_xlabel(r"$\alpha_{ILV}$")
            ax1.set_ylabel("avg ILV density", color="tab:blue")
            ax2 = ax1.twinx()
            ax2.semilogx(a, wl, "s--", color="tab:red", label="%ΔWL")
            ax2.set_ylabel("avg % wirelength change", color="tab:red")
            plt.title("Fig. 4 — averaged WL vs ILV tradeoff")
            fig.tight_layout()
            fig.savefig(os.path.join(out_dir, "fig4_avg.png"), dpi=150)

    # --- Figure 5: layer sweep -----------------------------------------------
    if "bench_fig5_layers" in sec:
        curves = {}
        for p in rows(sec["bench_fig5_layers"], 4):
            if p[0] == "layers":
                continue
            curves.setdefault(int(p[0]), []).append((float(p[2]), float(p[3])))
        plt.figure(figsize=(7, 5))
        for layers, pts in sorted(curves.items()):
            pts.sort()
            plt.plot([w for w, _ in pts], [v for _, v in pts], "o-",
                     label=f"{layers} layers")
        plt.xlabel("wirelength (m)")
        plt.ylabel("vias per interlayer")
        plt.title("Fig. 5 — ibm01 tradeoff vs layer count")
        plt.legend(fontsize=7)
        plt.tight_layout()
        plt.savefig(os.path.join(out_dir, "fig5_layers.png"), dpi=150)

    # --- Figure 8: temperature reduction vs layers ------------------------------
    if "bench_fig8_layers_temp" in sec:
        lines = sec["bench_fig8_layers_temp"]
        header = next((l for l in lines if l.startswith("aT\\layers")), None)
        if header:
            layer_counts = header.split()[1:]
            series = {lc: [] for lc in layer_counts}
            xs = []
            for p in rows(lines, len(layer_counts) + 1):
                if p[0].startswith("aT"):
                    continue
                try:
                    xs.append(float(p[0]))
                except ValueError:
                    continue
                for lc, v in zip(layer_counts, p[1:]):
                    series[lc].append(float(v))
            plt.figure(figsize=(7, 4))
            for lc in layer_counts:
                plt.semilogx(xs, series[lc], "o-", label=f"{lc} layers")
            plt.xlabel(r"$\alpha_{TEMP}$")
            plt.ylabel("% avg temperature reduction")
            plt.title("Fig. 8 — temperature reduction vs thermal coefficient")
            plt.legend(fontsize=7)
            plt.tight_layout()
            plt.savefig(os.path.join(out_dir, "fig8_temp_reduction.png"), dpi=150)

    # --- Figure 9: percent change ------------------------------------------------
    if "bench_fig9_percent_change" in sec:
        data = []
        for p in rows(sec["bench_fig9_percent_change"], 6):
            if p[0] == "alpha_temp":
                continue
            try:
                data.append([float(v) for v in p[:6]])
            except ValueError:
                continue
        if data:
            cols = list(zip(*data))
            labels = ["ILV count", "wirelength", "total power",
                      "avg temperature", "max temperature"]
            plt.figure(figsize=(7, 4))
            x = [max(v, 1e-9) for v in cols[0]]
            for i, lab in enumerate(labels):
                plt.semilogx(x, cols[i + 1], "o-", label=lab)
            plt.xlabel(r"$\alpha_{TEMP}$")
            plt.ylabel("average % change")
            plt.title("Fig. 9 — response to the thermal coefficient")
            plt.legend(fontsize=7)
            plt.tight_layout()
            plt.savefig(os.path.join(out_dir, "fig9_percent_change.png"), dpi=150)

    # --- Figure 10: runtime ---------------------------------------------------------
    if "bench_fig10_runtime" in sec:
        data = []
        for p in rows(sec["bench_fig10_runtime"], 4):
            if p[0] == "circuit":
                continue
            try:
                data.append((float(p[1]), float(p[2]), float(p[3])))
            except ValueError:
                continue
        if data:
            n, tr, tt = zip(*sorted(data))
            plt.figure(figsize=(7, 4))
            plt.plot(n, tr, "o-", label="regular placement")
            plt.plot(n, tt, "s--", label="thermal placement")
            plt.xlabel("number of cells")
            plt.ylabel("runtime (s)")
            plt.title("Fig. 10 — runtime vs circuit size")
            plt.legend(fontsize=8)
            plt.tight_layout()
            plt.savefig(os.path.join(out_dir, "fig10_runtime.png"), dpi=150)

    print(f"plots written to {out_dir}")


if __name__ == "__main__":
    main()
