#!/usr/bin/env python3
"""Plot the Eq. 3 objective trajectory from a placer3d run report.

Reads one or more report.json files (placer3d_cli --metrics) and plots the
per-phase decomposition — wirelength, interlayer-via cost, and thermal cost
stacked per phase sample — plus the total objective. With several reports,
only the totals are overlaid for comparison.

Requires matplotlib only when actually plotting; --dump prints the table to
stdout with no dependencies at all.

Usage:
  plot_convergence.py report.json [more.json ...] [-o convergence.png] [--dump]
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "placer3d.run_report":
        sys.exit(f"{path}: not a placer3d.run_report")
    return doc


def dump(doc):
    print(f"# {doc['run']['circuit']}  ({doc['run']['cells']} cells)")
    print(f"{'phase':<14}{'wl_m':<14}{'ilv_cost_m':<14}"
          f"{'thermal_cost_m':<16}{'total_m':<14}{'t_s':<8}")
    for p in doc["phases"]:
        label = p["phase"] + (f"#{p['round']}" if p["round"] >= 0 else "")
        print(f"{label:<14}{p['wl_m']:<14.5g}{p['ilv_cost_m']:<14.5g}"
              f"{p['thermal_cost_m']:<16.5g}{p['total_m']:<14.5g}"
              f"{p['t_s']:<8.2f}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reports", nargs="+", help="report.json file(s)")
    parser.add_argument("-o", "--output", default="convergence.png",
                        help="output image (default convergence.png)")
    parser.add_argument("--dump", action="store_true",
                        help="print the phase table instead of plotting")
    args = parser.parse_args()

    docs = [load(p) for p in args.reports]
    if args.dump:
        for doc in docs:
            dump(doc)
        return

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("plot_convergence: matplotlib not available; "
                 "use --dump for a text table")

    fig, ax = plt.subplots(figsize=(8, 5))
    if len(docs) == 1:
        doc = docs[0]
        phases = doc["phases"]
        labels = [p["phase"] + (f"#{p['round']}" if p["round"] >= 0 else "")
                  for p in phases]
        x = range(len(phases))
        wl = [p["wl_m"] for p in phases]
        ilv = [p["ilv_cost_m"] for p in phases]
        th = [p["thermal_cost_m"] for p in phases]
        ax.bar(x, wl, label="wirelength")
        ax.bar(x, ilv, bottom=wl, label=r"$\alpha_{ILV}\cdot$ILV")
        ax.bar(x, th, bottom=[a + b for a, b in zip(wl, ilv)],
               label=r"$\alpha_{TEMP}\cdot\sum R_j P_j$")
        ax.plot(x, [p["total_m"] for p in phases], "ko-", label="Eq. 3 total")
        ax.set_xticks(list(x))
        ax.set_xticklabels(labels, rotation=30, ha="right")
        ax.set_title(f"{doc['run']['circuit']}: objective by phase")
    else:
        for path, doc in zip(args.reports, docs):
            phases = doc["phases"]
            ax.plot(range(len(phases)), [p["total_m"] for p in phases],
                    "o-", label=path)
        ax.set_xlabel("phase sample")
        ax.set_title("Eq. 3 total by phase")
    ax.set_ylabel("cost (m of equivalent wirelength)")
    ax.legend()
    fig.tight_layout()
    fig.savefig(args.output, dpi=120)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
