#!/usr/bin/env python3
"""Validate placer3d flight-recorder artifacts (stdlib only).

Checks a run report (report.json, schema placer3d.run_report v1-v2; v2
adds p50/p95/p99 quantile fields to metrics histograms) and, optionally, a
Chrome trace-event file against the same rules the C++ side enforces
(src/obs/report.cpp: ValidateRunReport / ValidateChromeTrace).
With --batch, checks a serve-engine batch report (placer3d.batch_report v1,
src/serve/batch.cpp: ValidateBatchReport) instead: the engine counter
block, the FEA-cache counters, and every embedded per-job run report.
Used by the CI observability and serve smoke jobs; exits non-zero with a
one-line reason on the first violation.

Usage:
  check_report.py REPORT.json [--trace TRACE.json] [--min-phases N]
  check_report.py BATCH.json --batch [--min-ok N] [--min-phases N]
"""

import argparse
import json
import sys

PHASE_NUM_KEYS = ("wl_m", "ilv_cost_m", "thermal_cost_m", "total_m",
                  "ilv", "commits", "t_s")


def fail(msg):
    print(f"check_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_report(doc):
    if not isinstance(doc, dict):
        fail("report root is not an object")
    if doc.get("schema") != "placer3d.run_report":
        fail(f"schema is {doc.get('schema')!r}, want 'placer3d.run_report'")
    version = doc.get("version")
    if version not in (1, 2):
        fail(f"version is {version!r}, want 1 or 2")
    for key, kind in (("run", dict), ("params", dict), ("phases", list),
                      ("qor", dict), ("timings", dict)):
        if not isinstance(doc.get(key), kind):
            fail(f"'{key}' missing or not a {kind.__name__}")
    run = doc["run"]
    for key in ("circuit", "cells", "nets", "pins"):
        if key not in run:
            fail(f"run.{key} missing")
    phases = doc["phases"]
    for i, phase in enumerate(phases):
        if not isinstance(phase, dict):
            fail(f"phases[{i}] is not an object")
        if not phase.get("phase"):
            fail(f"phases[{i}].phase missing or empty")
        for key in PHASE_NUM_KEYS:
            if not isinstance(phase.get(key), (int, float)):
                fail(f"phases[{i}].{key} missing or not a number")
        total = phase["wl_m"] + phase["ilv_cost_m"] + phase["thermal_cost_m"]
        if abs(total - phase["total_m"]) > 1e-6 * abs(phase["total_m"]) + 1e-9:
            fail(f"phases[{i}] components sum to {total}, "
                 f"total_m is {phase['total_m']}")
    metrics = doc.get("metrics")
    if metrics is not None and metrics:
        for key in ("counters", "gauges", "histograms", "series"):
            if not isinstance(metrics.get(key), dict):
                fail(f"metrics.{key} missing or not an object")
        if version >= 2:
            # v2: every histogram snapshot carries the quantile summary.
            for name, hist in metrics["histograms"].items():
                if not isinstance(hist, dict):
                    fail(f"metrics.histograms[{name!r}] is not an object")
                for key in ("count", "sum", "min", "max", "p50", "p95",
                            "p99"):
                    if not isinstance(hist.get(key), (int, float)) \
                            or isinstance(hist.get(key), bool):
                        fail(f"metrics.histograms[{name!r}].{key} missing "
                             f"or not a number (required in v2)")
    return len(phases)


def check_batch(doc, min_phases):
    if not isinstance(doc, dict):
        fail("batch report root is not an object")
    if doc.get("schema") != "placer3d.batch_report":
        fail(f"schema is {doc.get('schema')!r}, want 'placer3d.batch_report'")
    if doc.get("version") != 1:
        fail(f"version is {doc.get('version')!r}, want 1")

    engine = doc.get("engine")
    if not isinstance(engine, dict):
        fail("'engine' missing or not an object")
    for key in ("workers", "thread_budget", "jobs", "completed", "cancelled",
                "failed"):
        if not isinstance(engine.get(key), (int, float)) \
                or isinstance(engine.get(key), bool):
            fail(f"engine.{key} missing or not a number")
    # Additive v1 field (watchdog): absent pre-watchdog, numeric if present.
    if "stalled" in engine and (not isinstance(engine["stalled"], (int, float))
                                or isinstance(engine["stalled"], bool)):
        fail("engine.stalled present but not a number")
    cache = engine.get("fea_cache")
    if not isinstance(cache, dict):
        fail("engine.fea_cache missing or not an object")
    for key in ("hits", "misses", "evictions"):
        if not isinstance(cache.get(key), (int, float)) \
                or isinstance(cache.get(key), bool):
            fail(f"engine.fea_cache.{key} missing or not a number")

    jobs = doc.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        fail("'jobs' missing, not a list, or empty")
    if len(jobs) != engine["jobs"]:
        fail(f"engine.jobs is {engine['jobs']}, "
             f"but the jobs array has {len(jobs)} entries")
    counts = {"ok": 0, "cancelled": 0, "failed": 0}
    for i, job in enumerate(jobs):
        if not isinstance(job, dict):
            fail(f"jobs[{i}] is not an object")
        if not job.get("name"):
            fail(f"jobs[{i}].name missing or empty")
        status = job.get("status")
        if status not in counts:
            fail(f"jobs[{i}].status is {status!r}")
        counts[status] += 1
        if not isinstance(job.get("wall_s"), (int, float)):
            fail(f"jobs[{i}].wall_s missing or not a number")
        if "stalled" in job and not isinstance(job["stalled"], bool):
            fail(f"jobs[{i}].stalled present but not a boolean")
        if status == "ok":
            if "report" not in job:
                fail(f"jobs[{i}] is ok but has no embedded run report")
            num_phases = check_report(job["report"])
            if num_phases < min_phases:
                fail(f"jobs[{i}] run report has {num_phases} phase samples, "
                     f"want >= {min_phases}")
        elif not job.get("message"):
            fail(f"jobs[{i}] is {status} but carries no message")
    for status, key in (("ok", "completed"), ("cancelled", "cancelled"),
                        ("failed", "failed")):
        if counts[status] != engine[key]:
            fail(f"engine.{key} is {engine[key]}, "
                 f"but {counts[status]} jobs have status {status!r}")
    return counts


def check_trace(doc):
    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        fail("trace has no 'traceEvents' array")
    spans = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"traceEvents[{i}] is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                fail(f"traceEvents[{i}].{key} missing")
        if event["ph"] == "X":
            spans += 1
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    fail(f"traceEvents[{i}].{key} missing on an 'X' span")
    if spans == 0:
        fail("trace contains no 'X' (complete-span) events")
    return len(events), spans


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="report.json from placer3d_cli --metrics")
    parser.add_argument("--trace", help="trace.json from placer3d_cli --trace")
    parser.add_argument("--batch", action="store_true",
                        help="treat the input as a serve-engine batch report")
    parser.add_argument("--min-ok", type=int, default=1,
                        help="with --batch: minimum jobs with status 'ok' "
                             "(default 1)")
    parser.add_argument("--min-phases", type=int, default=4,
                        help="minimum phase samples expected (default 4)")
    args = parser.parse_args()

    if args.batch:
        with open(args.report, encoding="utf-8") as f:
            counts = check_batch(json.load(f), args.min_phases)
        if counts["ok"] < args.min_ok:
            fail(f"batch has {counts['ok']} ok jobs, want >= {args.min_ok}")
        print(f"check_report: batch OK ({counts['ok']} ok, "
              f"{counts['cancelled']} cancelled, {counts['failed']} failed)")
        return

    with open(args.report, encoding="utf-8") as f:
        num_phases = check_report(json.load(f))
    if num_phases < args.min_phases:
        fail(f"report has {num_phases} phase samples, "
             f"want >= {args.min_phases}")
    print(f"check_report: report OK ({num_phases} phase samples)")

    if args.trace:
        with open(args.trace, encoding="utf-8") as f:
            num_events, num_spans = check_trace(json.load(f))
        print(f"check_report: trace OK ({num_events} events, "
              f"{num_spans} spans)")


if __name__ == "__main__":
    main()
