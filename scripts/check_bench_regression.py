#!/usr/bin/env python3
"""Gate a bench JSON dump against a committed baseline (stdlib only).

Reads a BENCH_<slug>.json row dump (schema placer3d.bench, written by
bench/bench_common.h's BenchRecorder) and a baseline file from
bench/baselines/. The baseline names the metrics to watch, each with the
committed reference value and a direction; a metric regressing by more than
the allowed fraction (default 20%) fails the job. Booleans in `require`
must match exactly — they gate correctness claims (e.g. the solver cache's
placements_identical), where "close" is not a thing.

Baseline format:
  {
    "bench": "fig10_runtime",
    "tolerance": 0.20,
    "metrics": {
      "fea_speedup": {"value": 1.5, "higher_is_better": true}
    },
    "require": {"placements_identical": true}
  }

Metric values are looked up across all rows of the dump (last row holding
the key wins), so summary rows and per-circuit rows can mix freely.

Usage:
  check_bench_regression.py BENCH_fig10_runtime.json \
      --baseline bench/baselines/fig10_runtime.json [--tolerance 0.20]
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_bench_regression: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def lookup(rows, key):
    value = None
    for row in rows:
        if isinstance(row, dict) and key in row:
            value = row[key]
    return value


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json")
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the baseline's allowed regression "
                             "fraction")
    args = parser.parse_args()

    dump = load(args.bench_json)
    baseline = load(args.baseline)

    if dump.get("schema") != "placer3d.bench":
        fail(f"{args.bench_json}: schema is {dump.get('schema')!r}, "
             "want 'placer3d.bench'")
    if baseline.get("bench") != dump.get("bench"):
        fail(f"baseline is for bench {baseline.get('bench')!r}, "
             f"dump is {dump.get('bench')!r}")
    rows = dump.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{args.bench_json}: no rows")

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", 0.20))

    for key, want in baseline.get("require", {}).items():
        got = lookup(rows, key)
        if got != want:
            fail(f"required '{key}' is {got!r}, want {want!r}")
        print(f"check_bench_regression: ok: {key} == {want!r}")

    for key, spec in baseline.get("metrics", {}).items():
        got = lookup(rows, key)
        if got is None:
            fail(f"metric '{key}' missing from {args.bench_json}")
        if not isinstance(got, (int, float)) or isinstance(got, bool):
            fail(f"metric '{key}' is not numeric: {got!r}")
        ref = float(spec["value"])
        higher_is_better = bool(spec.get("higher_is_better", True))
        if higher_is_better:
            floor = ref * (1.0 - tolerance)
            ok = got >= floor
            bound = f">= {floor:.4g}"
        else:
            ceil = ref * (1.0 + tolerance)
            ok = got <= ceil
            bound = f"<= {ceil:.4g}"
        status = "ok" if ok else "REGRESSION"
        print(f"check_bench_regression: {status}: {key} = {got:.4g} "
              f"(baseline {ref:.4g}, gate {bound})")
        if not ok:
            fail(f"'{key}' regressed more than {tolerance:.0%} "
                 f"vs the committed baseline")

    print("check_bench_regression: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
