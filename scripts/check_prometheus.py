#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (0.0.4) scrape (stdlib only).

Checks the output of the TelemetryServer's /metrics endpoint
(src/obs/metrics.cpp: RenderPrometheus): every sample line must parse,
every family should carry # HELP/# TYPE headers, metric names must match
the Prometheus grammar, summaries must expose quantile samples plus the
matching _sum/_count pair, and (by default) at least a handful of
placer3d_-prefixed families must be present so an empty scrape fails
loudly. Used by the CI telemetry smoke job; exits non-zero with a
one-line reason on the first violation.

Usage:
  check_prometheus.py METRICS.txt [--min-families N] [--prefix placer3d_]
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$")
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
VALID_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")


def fail(msg):
    print(f"check_prometheus: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_value(text, where):
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    try:
        return float(text)
    except ValueError:
        fail(f"{where}: unparsable sample value {text!r}")


def base_family(name):
    """Map a sample name to its family (strip summary/histogram suffixes)."""
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix):
            return name[:-len(suffix)]
    return name


def check_exposition(text, min_families, prefix):
    types = {}      # family -> declared TYPE
    helps = set()   # families with a HELP line
    samples = {}    # sample name -> number of sample lines
    quantiles = {}  # summary family -> number of quantile-labelled samples
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not NAME_RE.match(parts[2]):
                fail(f"line {lineno}: malformed HELP line")
            helps.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or not NAME_RE.match(parts[2]):
                fail(f"line {lineno}: malformed TYPE line")
            if parts[3] not in VALID_TYPES:
                fail(f"line {lineno}: unknown metric type {parts[3]!r}")
            if parts[2] in types:
                fail(f"line {lineno}: duplicate TYPE for {parts[2]!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # other comments are legal and ignored
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"line {lineno}: unparsable sample line {line!r}")
        name = m.group("name")
        parse_value(m.group("value"), f"line {lineno}")
        labels = m.group("labels")
        quantile = None
        if labels is not None:
            if labels.strip():
                for pair in labels.split(","):
                    if not LABEL_RE.match(pair.strip()):
                        fail(f"line {lineno}: malformed label {pair!r}")
                    key, value = pair.strip().split("=", 1)
                    if key == "quantile":
                        quantile = value.strip('"')
        samples[name] = samples.get(name, 0) + 1
        family = base_family(name)
        if quantile is not None:
            q = parse_value(quantile, f"line {lineno} (quantile label)")
            if not 0.0 <= q <= 1.0:
                fail(f"line {lineno}: quantile {quantile!r} outside [0, 1]")
            quantiles[family] = quantiles.get(family, 0) + 1

    if not samples:
        fail("exposition contains no sample lines")

    families = {base_family(name) for name in samples}
    for family, declared in types.items():
        if declared == "summary":
            if quantiles.get(family, 0) == 0:
                fail(f"summary {family!r} exposes no quantile samples")
            for suffix in ("_sum", "_count"):
                if family + suffix not in samples:
                    fail(f"summary {family!r} is missing {family + suffix}")
        elif family not in samples and family not in families:
            fail(f"TYPE declared for {family!r} but no samples follow")
    for family in families:
        if family not in types:
            fail(f"family {family!r} has samples but no TYPE line")
        if family not in helps:
            fail(f"family {family!r} has samples but no HELP line")

    matching = sorted(f for f in families if f.startswith(prefix))
    if len(matching) < min_families:
        fail(f"only {len(matching)} families start with {prefix!r} "
             f"({', '.join(matching) or 'none'}), want >= {min_families}")
    return len(families), sum(samples.values()), len(matching)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="file holding a /metrics scrape")
    parser.add_argument("--min-families", type=int, default=3,
                        help="minimum families with the prefix (default 3)")
    parser.add_argument("--prefix", default="placer3d_",
                        help="expected metric-name prefix (default placer3d_)")
    args = parser.parse_args()

    with open(args.metrics, encoding="utf-8") as f:
        text = f.read()
    num_families, num_samples, num_matching = check_exposition(
        text, args.min_families, args.prefix)
    print(f"check_prometheus: OK ({num_families} families, "
          f"{num_samples} samples, {num_matching} with prefix "
          f"{args.prefix!r})")


if __name__ == "__main__":
    main()
