// Reproducible per-task RNG streams for parallel work.
//
// A parallel batch must not share one mutating util::Rng across tasks: the
// interleaving of NextU64 calls would depend on scheduling. Instead each task
// derives its own stream from (seed, task_index). The derivation is a
// SplitMix64-style finalizer over the pair, using an increment constant
// distinct from util::Rng's internal gamma so a derived child stream is not a
// shifted copy of the parent sequence (the same reason util::Rng::Fork seeds
// children with *output* words rather than state offsets).
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace p3d::runtime {

/// SplitMix64 output finalizer (the mixing half of util::Rng::NextU64).
inline std::uint64_t Mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives the seed of the RNG stream for task `task_index` of a batch
/// rooted at `seed`. Pure function: any thread may call it for any task.
inline std::uint64_t DeriveSeed(std::uint64_t seed, std::uint64_t task_index) {
  // A second mixing round decorrelates neighbouring task indices; the odd
  // multiplier is the MCG128 constant, unrelated to SplitMix64's gamma.
  return Mix64(Mix64(seed + 0xda942042e4dd58b5ULL * (task_index + 1)));
}

/// The task's reproducible RNG stream. Streams of distinct task indices are
/// independent for all practical purposes; the same (seed, task_index) always
/// yields the same stream regardless of thread count or scheduling.
inline util::Rng DeriveStream(std::uint64_t seed, std::uint64_t task_index) {
  return util::Rng(DeriveSeed(seed, task_index));
}

}  // namespace p3d::runtime
