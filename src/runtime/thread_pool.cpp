#include "runtime/thread_pool.h"

#include <algorithm>
#include <memory>

namespace p3d::runtime {
namespace {

// Worker slot of the current thread while it executes chunks; 0 on the
// application thread. Lets nested (inline) parallel regions keep indexing
// the per-slot scratch of the worker they run on.
thread_local int tls_slot = 0;

// True while the current thread is inside a top-level RunChunks dispatch.
// A nested RunChunks from that thread must run inline: re-entering the
// dispatch path would self-deadlock on run_mutex_.
thread_local bool tls_dispatching = false;

// Parallelism ceiling installed by ScopedThreadBudget; 0 = unlimited.
thread_local int tls_thread_budget = 0;

}  // namespace

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int CurrentThreadBudget() { return tls_thread_budget; }

int EffectiveThreads(int requested) {
  const int resolved = ResolveThreads(requested);
  if (tls_thread_budget <= 0) return resolved;
  return std::min(resolved, tls_thread_budget);
}

ScopedThreadBudget::ScopedThreadBudget(int budget)
    : previous_(tls_thread_budget) {
  int clamped = budget <= 0 ? 1 : budget;
  if (previous_ > 0) clamped = std::min(clamped, previous_);
  tls_thread_budget = clamped;
}

ScopedThreadBudget::~ScopedThreadBudget() { tls_thread_budget = previous_; }

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, ResolveThreads(num_threads))) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int slot = 1; slot < num_threads_; ++slot) {
    workers_.emplace_back([this, slot] { WorkerLoop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::CurrentSlot() { return tls_slot; }

void ThreadPool::PullChunks(int slot) {
  std::int64_t done_here = 0;
  for (;;) {
    const std::int64_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= num_chunks_) break;
    try {
      (*job_)(c, slot);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    ++done_here;
  }
  if (done_here > 0) {
    std::lock_guard<std::mutex> lock(job_mutex_);
    completed_ += done_here;
    if (completed_ == num_chunks_) done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop(int slot) {
  tls_slot = slot;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(job_mutex_);
      // Joining an epoch requires a live job: a worker that overslept a
      // whole epoch (job_ already retired) keeps waiting for the next one.
      job_cv_.wait(lock, [&] {
        return stop_ || (epoch_ != seen_epoch && job_ != nullptr);
      });
      if (stop_) return;
      seen_epoch = epoch_;
      ++active_workers_;
    }
    PullChunks(slot);
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      --active_workers_;
      // The caller may return only once no worker can still touch job
      // state (job_ is a reference to its stack frame).
      if (active_workers_ == 0 && completed_ == num_chunks_) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::RunChunks(std::int64_t num_chunks, const ChunkJob& job) {
  if (num_chunks <= 0) return;
  // Inline cases: serial pool, single chunk, or a nested call — from a
  // worker or from the dispatching caller itself (running inline on the
  // current slot avoids deadlocking the pool).
  if (num_threads_ <= 1 || num_chunks == 1 || tls_slot != 0 ||
      tls_dispatching) {
    for (std::int64_t c = 0; c < num_chunks; ++c) job(c, tls_slot);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  struct DispatchGuard {
    DispatchGuard() { tls_dispatching = true; }
    ~DispatchGuard() { tls_dispatching = false; }
  } dispatch_guard;
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    job_ = &job;
    num_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    completed_ = 0;
    first_error_ = nullptr;
    ++epoch_;
  }
  job_cv_.notify_all();
  PullChunks(/*slot=*/0);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(job_mutex_);
    done_cv_.wait(lock, [&] {
      return completed_ == num_chunks_ && active_workers_ == 0;
    });
    job_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool* SharedPool(int threads) {
  static std::mutex mutex;
  static std::unique_ptr<ThreadPool> pool;
  const int n = EffectiveThreads(threads);
  std::lock_guard<std::mutex> lock(mutex);
  if (n <= 1) return nullptr;
  if (!pool || pool->NumThreads() != n) {
    pool.reset();  // join the old workers before spawning replacements
    pool = std::make_unique<ThreadPool>(n);
  }
  return pool.get();
}

}  // namespace p3d::runtime
