// Deterministic data-parallel primitives over a ThreadPool.
//
// The determinism contract (same seed + same inputs => bit-identical results
// for ANY thread count, including serial) rests on two rules every primitive
// here obeys:
//
//   1. Chunk boundaries are a pure function of (range, grain) — never of the
//      thread count or of which thread picks up which chunk.
//   2. Cross-chunk combination happens in chunk order on one thread
//      (ParallelReduce), or not at all (ParallelFor writes are per-index).
//
// A null pool means "serial": the primitives execute inline but still walk
// the same chunk structure, so serial and parallel runs produce identical
// floating-point results.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"

namespace p3d::runtime {

/// Number of fixed chunks a range of n items splits into at a given grain.
inline std::int64_t NumChunks(std::int64_t n, std::int64_t grain) {
  if (n <= 0) return 0;
  grain = std::max<std::int64_t>(1, grain);
  return (n + grain - 1) / grain;
}

/// Calls fn(lo, hi, worker_slot) for each fixed chunk [lo, hi) of
/// [begin, end), chunks of `grain` indices. Chunks run concurrently; the
/// slot (in [0, pool ? pool->NumThreads() : 1)) indexes per-worker scratch.
template <typename Fn>
void ParallelForChunks(ThreadPool* pool, std::int64_t begin, std::int64_t end,
                       std::int64_t grain, Fn&& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t chunks = NumChunks(n, grain);
  auto run = [&](std::int64_t c, int slot) {
    const std::int64_t lo = begin + c * grain;
    const std::int64_t hi = std::min(end, lo + grain);
    fn(lo, hi, slot);
  };
  if (pool == nullptr || pool->NumThreads() <= 1 || chunks <= 1) {
    const int slot = ThreadPool::CurrentSlot();
    for (std::int64_t c = 0; c < chunks; ++c) run(c, slot);
    return;
  }
  pool->RunChunks(chunks, run);
}

/// Calls fn(i) for every i in [begin, end) exactly once, `grain` indices per
/// chunk. fn must not carry cross-index dependencies; writes must target
/// per-index (or otherwise disjoint) locations.
template <typename Fn>
void ParallelFor(ThreadPool* pool, std::int64_t begin, std::int64_t end,
                 std::int64_t grain, Fn&& fn) {
  ParallelForChunks(pool, begin, end, grain,
                    [&fn](std::int64_t lo, std::int64_t hi, int /*slot*/) {
                      for (std::int64_t i = lo; i < hi; ++i) fn(i);
                    });
}

/// Like ParallelFor with grain 1, but fn(i, worker_slot) also receives the
/// executing slot for per-worker scratch. Intended for coarse task batches
/// (one task per chunk), e.g. the global placer's per-level region tasks.
template <typename Fn>
void ParallelForWorker(ThreadPool* pool, std::int64_t begin, std::int64_t end,
                       Fn&& fn) {
  ParallelForChunks(pool, begin, end, /*grain=*/1,
                    [&fn](std::int64_t lo, std::int64_t hi, int slot) {
                      for (std::int64_t i = lo; i < hi; ++i) fn(i, slot);
                    });
}

/// Windowed, colored propose/commit schedule with ordered commit — the
/// substrate of parallel coarse legalization (DESIGN.md §5).
///
/// Windows are processed color by color (colors in ascending order). Within
/// one color, propose(window, worker_slot) runs concurrently over that
/// color's windows; propose must only READ shared state (plus write
/// per-window/per-slot scratch). After the color's proposals all finish (the
/// ParallelForWorker barrier), commit(window) runs serially on the calling
/// thread, in ascending window order. Because proposals are pure functions
/// of the color-start snapshot and commits are ordered, the schedule is
/// bit-identical for any thread count — a null pool walks the exact same
/// propose/commit sequence inline.
/// `color_scope(color)` is invoked on the calling thread when a non-empty
/// color begins; its return value lives until the color's commits finish
/// (RAII hook for trace spans and end-of-color bookkeeping, both outside the
/// parallel region).
template <typename ProposeFn, typename CommitFn, typename ColorScopeFn>
void ParallelForWindows(ThreadPool* pool, std::int64_t num_windows,
                        const std::vector<int>& color_of, int num_colors,
                        ProposeFn&& propose, CommitFn&& commit,
                        ColorScopeFn&& color_scope) {
  std::vector<std::int64_t> members;
  for (int color = 0; color < num_colors; ++color) {
    members.clear();
    for (std::int64_t w = 0; w < num_windows; ++w) {
      if (color_of[static_cast<std::size_t>(w)] == color) members.push_back(w);
    }
    if (members.empty()) continue;
    auto scope = color_scope(color);
    (void)scope;
    ParallelForWorker(pool, 0, static_cast<std::int64_t>(members.size()),
                      [&](std::int64_t i, int slot) {
                        propose(members[static_cast<std::size_t>(i)], slot);
                      });
    for (const std::int64_t w : members) commit(w);
  }
}

template <typename ProposeFn, typename CommitFn>
void ParallelForWindows(ThreadPool* pool, std::int64_t num_windows,
                        const std::vector<int>& color_of, int num_colors,
                        ProposeFn&& propose, CommitFn&& commit) {
  ParallelForWindows(pool, num_windows, color_of, num_colors,
                     std::forward<ProposeFn>(propose),
                     std::forward<CommitFn>(commit), [](int) { return 0; });
}

/// Deterministic reduction: chunk_fn(lo, hi) -> T computes one fixed chunk's
/// partial serially; partials are then combined IN CHUNK ORDER on the calling
/// thread via combine(accumulator, partial). Because the chunking is fixed
/// and the combination ordered, the result is bit-identical for any thread
/// count — the serial path folds the very same per-chunk partials.
template <typename T, typename ChunkFn, typename CombineFn>
T ParallelReduce(ThreadPool* pool, std::int64_t begin, std::int64_t end,
                 std::int64_t grain, T identity, ChunkFn&& chunk_fn,
                 CombineFn&& combine) {
  const std::int64_t n = end - begin;
  if (n <= 0) return identity;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t chunks = NumChunks(n, grain);
  T acc = std::move(identity);
  if (pool == nullptr || pool->NumThreads() <= 1 || chunks <= 1) {
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t lo = begin + c * grain;
      const std::int64_t hi = std::min(end, lo + grain);
      acc = combine(std::move(acc), chunk_fn(lo, hi));
    }
    return acc;
  }
  std::vector<T> partials(static_cast<std::size_t>(chunks));
  pool->RunChunks(chunks, [&](std::int64_t c, int /*slot*/) {
    const std::int64_t lo = begin + c * grain;
    const std::int64_t hi = std::min(end, lo + grain);
    partials[static_cast<std::size_t>(c)] = chunk_fn(lo, hi);
  });
  for (std::int64_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[static_cast<std::size_t>(c)]));
  }
  return acc;
}

}  // namespace p3d::runtime
