// Fixed-size thread pool — the substrate of the deterministic parallel
// runtime (see parallel.h for the ParallelFor/ParallelReduce primitives and
// DESIGN.md "Parallel runtime & determinism policy" for the contract).
//
// The pool executes *chunked jobs*: a job is a function invoked once per
// chunk index in [0, num_chunks), with chunks handed out dynamically over the
// caller thread plus the background workers. Dynamic chunk assignment is safe
// for determinism because the runtime's primitives never let the *assignment*
// of chunks to threads influence results — chunk boundaries are fixed by the
// grain alone and reductions combine partials in chunk order.
//
// Nested use: a RunChunks issued from inside a worker (e.g. a parallel
// partitioner start that itself calls a parallel solver) executes inline on
// that worker, serially. This keeps the pool deadlock-free without a work-
// stealing scheduler and bounds total concurrency at NumThreads().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace p3d::runtime {

/// Resolves a thread-count knob: <= 0 means "all hardware threads"
/// (std::thread::hardware_concurrency, at least 1), anything else is taken
/// as-is.
int ResolveThreads(int requested);

/// Thread-local ceiling on the parallelism a knob may resolve to, or 0 for
/// "unlimited". Set by schedulers (the serve engine) around work they run on
/// their own worker threads, so a job asking for `threads = 8` under an
/// 8-worker engine does not fan out into 64 OS threads. See DESIGN.md §5.
int CurrentThreadBudget();

/// ResolveThreads clamped to the calling thread's budget (when one is set).
/// Every knob-driven call site should prefer this over raw ResolveThreads.
int EffectiveThreads(int requested);

/// RAII scope installing a thread budget on the calling thread. Budgets
/// nest: the effective budget is the minimum of the enclosing scopes (a
/// nested scope cannot raise it). `budget <= 0` means 1 (fully serial) —
/// the engine's default for any job sharing the machine with siblings.
class ScopedThreadBudget {
 public:
  explicit ScopedThreadBudget(int budget);
  ~ScopedThreadBudget();

  ScopedThreadBudget(const ScopedThreadBudget&) = delete;
  ScopedThreadBudget& operator=(const ScopedThreadBudget&) = delete;

 private:
  int previous_;
};

class ThreadPool {
 public:
  /// A pool of `num_threads` execution slots (resolved via ResolveThreads).
  /// Slot 0 is the calling thread of RunChunks; slots 1..num_threads-1 are
  /// background workers, spawned here and joined in the destructor.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution slots, including the caller's.
  int NumThreads() const { return num_threads_; }

  /// Job signature: (chunk_index, worker_slot). The slot is in
  /// [0, NumThreads()) and is stable for the duration of one chunk, so jobs
  /// may index per-slot scratch buffers with it.
  using ChunkJob = std::function<void(std::int64_t, int)>;

  /// Runs job(c, slot) for every c in [0, num_chunks), blocking until all
  /// chunks finished. Concurrent top-level calls are serialized; calls from
  /// inside a worker run inline (see file comment). The first exception
  /// thrown by any chunk is rethrown here after the job drains.
  void RunChunks(std::int64_t num_chunks, const ChunkJob& job);

  /// Worker slot of the calling thread inside a RunChunks job; 0 outside.
  static int CurrentSlot();

 private:
  void WorkerLoop(int slot);
  void PullChunks(int slot);

  const int num_threads_;
  std::vector<std::thread> workers_;

  // Serializes top-level RunChunks calls.
  std::mutex run_mutex_;

  // Job state, guarded by job_mutex_ for the epoch handshake; chunk
  // distribution itself is lock-free via next_chunk_.
  std::mutex job_mutex_;
  std::condition_variable job_cv_;   // workers wait for a new epoch
  std::condition_variable done_cv_;  // caller waits for completion
  const ChunkJob* job_ = nullptr;
  std::int64_t num_chunks_ = 0;
  std::atomic<std::int64_t> next_chunk_{0};
  std::int64_t completed_ = 0;  // guarded by job_mutex_
  int active_workers_ = 0;      // workers inside PullChunks; guarded
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;  // guarded by job_mutex_
};

/// Process-wide pool for the placer's knob-driven call sites. The request is
/// resolved via EffectiveThreads, so a caller under a ScopedThreadBudget of 1
/// gets nullptr (serial execution — every primitive treats a null pool as
/// "run inline") without ever touching the shared pool; otherwise a pool of
/// the resolved size is returned, recreated when that size changes. Intended
/// to be called from the application thread between parallel regions, not
/// concurrently — the serve engine guarantees this by budgeting all
/// concurrent jobs to 1 (see DESIGN.md §5).
ThreadPool* SharedPool(int threads);

}  // namespace p3d::runtime
