#include "geom/geometry.h"

#include <cstdio>

namespace p3d::geom {

std::string ToString(const Rect& r) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%.3g,%.3g]x[%.3g,%.3g]", r.x_lo, r.x_hi,
                r.y_lo, r.y_hi);
  return buf;
}

std::string ToString(const Region& r) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s L[%d,%d]", ToString(r.rect).c_str(),
                r.layer_lo, r.layer_hi);
  return buf;
}

}  // namespace p3d::geom
