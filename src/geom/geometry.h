// Plain geometric value types shared across the placer.
//
// Conventions:
//  * Lateral coordinates (x, y) are metres, matching the SI constants in the
//    paper's Table 2 (capacitance per metre, thermal conductivity, ...).
//  * The vertical dimension of a *placement* is a discrete layer index
//    `z in [0, num_layers)`; physical z positions only appear in the thermal
//    models, which convert via the stack description.
#pragma once

#include <algorithm>
#include <cmath>
#include <string>

namespace p3d::geom {

struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point2&, const Point2&) = default;
};

/// A placement location: lateral metres plus a discrete layer index.
struct Point3 {
  double x = 0.0;
  double y = 0.0;
  int layer = 0;

  friend bool operator==(const Point3&, const Point3&) = default;
};

/// Axis-aligned lateral rectangle, [lo.x, hi.x] x [lo.y, hi.y].
struct Rect {
  double x_lo = 0.0;
  double y_lo = 0.0;
  double x_hi = 0.0;
  double y_hi = 0.0;

  double Width() const { return x_hi - x_lo; }
  double Height() const { return y_hi - y_lo; }
  double Area() const { return Width() * Height(); }
  double CenterX() const { return 0.5 * (x_lo + x_hi); }
  double CenterY() const { return 0.5 * (y_lo + y_hi); }

  bool Contains(double x, double y) const {
    return x >= x_lo && x <= x_hi && y >= y_lo && y <= y_hi;
  }

  /// Clamps a point into the rectangle (used by terminal propagation).
  Point2 Clamp(double x, double y) const {
    return {std::clamp(x, x_lo, x_hi), std::clamp(y, y_lo, y_hi)};
  }

  /// Grows the rectangle to include (x, y).
  void Expand(double x, double y) {
    x_lo = std::min(x_lo, x);
    x_hi = std::max(x_hi, x);
    y_lo = std::min(y_lo, y);
    y_hi = std::max(y_hi, y);
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// A 3D placement region: lateral rectangle plus an inclusive layer range
/// [layer_lo, layer_hi].
struct Region {
  Rect rect;
  int layer_lo = 0;
  int layer_hi = 0;

  int NumLayers() const { return layer_hi - layer_lo + 1; }
  bool ContainsLayer(int layer) const {
    return layer >= layer_lo && layer <= layer_hi;
  }
  bool Contains(const Point3& p) const {
    return rect.Contains(p.x, p.y) && ContainsLayer(p.layer);
  }

  friend bool operator==(const Region&, const Region&) = default;
};

/// Bounding box of a set of 3D placement points; tracks the lateral
/// half-perimeter wirelength (HPWL) and the layer span (the paper's
/// interlayer-via count abstraction, ILV_i = layer span of net i).
class BBox3 {
 public:
  void Add(const Point3& p) {
    if (empty_) {
      rect_ = Rect{p.x, p.y, p.x, p.y};
      layer_lo_ = layer_hi_ = p.layer;
      empty_ = false;
    } else {
      rect_.Expand(p.x, p.y);
      layer_lo_ = std::min(layer_lo_, p.layer);
      layer_hi_ = std::max(layer_hi_, p.layer);
    }
  }

  bool Empty() const { return empty_; }
  const Rect& LateralRect() const { return rect_; }
  int LayerLo() const { return layer_lo_; }
  int LayerHi() const { return layer_hi_; }

  /// Lateral half-perimeter wirelength in metres; 0 for empty boxes.
  double Hpwl() const { return empty_ ? 0.0 : rect_.Width() + rect_.Height(); }
  /// Layer span = number of interlayer vias the net needs; 0 for empty boxes.
  int LayerSpan() const { return empty_ ? 0 : layer_hi_ - layer_lo_; }

 private:
  Rect rect_;
  int layer_lo_ = 0;
  int layer_hi_ = 0;
  bool empty_ = true;
};

/// Manhattan distance between lateral points.
inline double ManhattanDistance(const Point2& a, const Point2& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

std::string ToString(const Rect& r);
std::string ToString(const Region& r);

}  // namespace p3d::geom
