#include "check/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace p3d::check {
namespace {

// Geometric slack for boundary/overlap comparisons. Cell dimensions are
// ~1e-6 m, so 1e-12 m is far below any real placement step but far above
// double rounding at these magnitudes.
constexpr double kGeomEps = 1e-12;

std::string Format(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return buf;
}

void Append(std::vector<Violation>* out, const char* check, std::int32_t cell,
            std::int32_t net, std::string message) {
  Violation v;
  v.check = check;
  v.cell = cell;
  v.net = net;
  v.message = std::move(message);
  out->push_back(std::move(v));
}

}  // namespace

std::string DescribeCell(const netlist::Netlist& nl,
                         const place::Placement& p, std::int32_t cell) {
  const std::size_t i = static_cast<std::size_t>(cell);
  return Format("cell %d '%s' at (%.6g, %.6g, layer %d)", cell,
                nl.cell(cell).name.c_str(), p.x[i], p.y[i], p.layer[i]);
}

int CheckFinite(const netlist::Netlist& nl, const place::Placement& p,
                std::vector<Violation>* out) {
  int n = 0;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    if (!std::isfinite(p.x[i]) || !std::isfinite(p.y[i])) {
      Append(out, "finite", c, -1,
             Format("cell %d '%s' has non-finite coordinates (%g, %g)", c,
                    nl.cell(c).name.c_str(), p.x[i], p.y[i]));
      ++n;
    }
  }
  return n;
}

int CheckLayers(const netlist::Netlist& nl, const place::Placement& p,
                int num_layers, std::vector<Violation>* out) {
  int n = 0;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    const int layer = p.layer[static_cast<std::size_t>(c)];
    if (layer < 0 || layer >= num_layers) {
      Append(out, "layer", c, -1,
             Format("%s: layer outside [0, %d)",
                    DescribeCell(nl, p, c).c_str(), num_layers));
      ++n;
    }
  }
  return n;
}

int CheckBounds(const netlist::Netlist& nl, const place::Chip& chip,
                const place::Placement& p, bool extents,
                std::vector<Violation>* out) {
  int n = 0;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    if (nl.cell(c).fixed) continue;  // pads legitimately ring the outline
    const std::size_t i = static_cast<std::size_t>(c);
    const double hw = extents ? nl.cell(c).width / 2.0 : 0.0;
    const double hh = extents ? nl.cell(c).height / 2.0 : 0.0;
    if (p.x[i] - hw < -kGeomEps || p.x[i] + hw > chip.width() + kGeomEps ||
        p.y[i] - hh < -kGeomEps || p.y[i] + hh > chip.height() + kGeomEps) {
      Append(out, "bounds", c, -1,
             Format("%s: %s outside die [0, %.6g] x [0, %.6g]",
                    DescribeCell(nl, p, c).c_str(),
                    extents ? "footprint" : "center", chip.width(),
                    chip.height()));
      ++n;
    }
  }
  return n;
}

int CheckRowAlignment(const netlist::Netlist& nl, const place::Chip& chip,
                      const place::Placement& p, std::vector<Violation>* out) {
  int n = 0;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    if (nl.cell(c).fixed) continue;
    const std::size_t i = static_cast<std::size_t>(c);
    const int row = chip.NearestRow(p.y[i]);
    if (std::abs(p.y[i] - chip.RowCenterY(row)) > kGeomEps) {
      Append(out, "row-align", c, -1,
             Format("%s: off row center %.6g (row %d)",
                    DescribeCell(nl, p, c).c_str(), chip.RowCenterY(row),
                    row));
      ++n;
    }
  }
  return n;
}

long long CountOverlapsSweep(const netlist::Netlist& nl,
                             const place::Placement& p, Violation* first) {
  struct Box {
    double xlo, xhi, ylo, yhi;
    std::int32_t cell;
  };
  // Bucket by layer, sort by xlo, sweep with an active set pruned on xhi.
  std::vector<Box> boxes;
  boxes.reserve(static_cast<std::size_t>(nl.NumCells()));
  int max_layer = 0;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    if (nl.cell(c).fixed) continue;
    const std::size_t i = static_cast<std::size_t>(c);
    boxes.push_back({p.x[i] - nl.cell(c).width / 2.0,
                     p.x[i] + nl.cell(c).width / 2.0,
                     p.y[i] - nl.cell(c).height / 2.0,
                     p.y[i] + nl.cell(c).height / 2.0, c});
    max_layer = std::max(max_layer, p.layer[i]);
  }
  std::sort(boxes.begin(), boxes.end(), [&](const Box& a, const Box& b) {
    const int la = p.layer[static_cast<std::size_t>(a.cell)];
    const int lb = p.layer[static_cast<std::size_t>(b.cell)];
    if (la != lb) return la < lb;
    if (a.xlo != b.xlo) return a.xlo < b.xlo;
    return a.cell < b.cell;
  });

  long long overlaps = 0;
  std::vector<const Box*> active;
  int active_layer = -1;
  for (const Box& b : boxes) {
    const int layer = p.layer[static_cast<std::size_t>(b.cell)];
    if (layer != active_layer) {
      active.clear();
      active_layer = layer;
    }
    // Retire boxes that end before this one starts (touching is legal).
    std::erase_if(active,
                  [&](const Box* a) { return a->xhi <= b.xlo + kGeomEps; });
    for (const Box* a : active) {
      if (a->ylo < b.yhi - kGeomEps && b.ylo < a->yhi - kGeomEps) {
        if (overlaps == 0 && first != nullptr) {
          first->check = "overlap";
          first->cell = a->cell;
          first->net = -1;
          first->message =
              Format("overlap on layer %d: %s and %s", layer,
                     DescribeCell(nl, p, a->cell).c_str(),
                     DescribeCell(nl, p, b.cell).c_str());
        }
        ++overlaps;
      }
    }
    active.push_back(&b);
  }
  return overlaps;
}

int CheckNoOverlap(const netlist::Netlist& nl, const place::Placement& p,
                   std::vector<Violation>* out) {
  Violation first;
  const long long overlaps = CountOverlapsSweep(nl, p, &first);
  if (overlaps == 0) return 0;
  first.message = Format("%lld overlapping pairs; first: %s", overlaps,
                         first.message.c_str());
  out->push_back(std::move(first));
  return 1;
}

int CheckFixedUntouched(const netlist::Netlist& nl,
                        const place::Placement& baseline,
                        const place::Placement& p,
                        std::vector<Violation>* out) {
  int n = 0;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    if (!nl.cell(c).fixed) continue;
    const std::size_t i = static_cast<std::size_t>(c);
    if (p.x[i] != baseline.x[i] || p.y[i] != baseline.y[i] ||
        p.layer[i] != baseline.layer[i]) {
      Append(out, "fixed", c, -1,
             Format("fixed %s moved from (%.6g, %.6g, layer %d)",
                    DescribeCell(nl, p, c).c_str(), baseline.x[i],
                    baseline.y[i], baseline.layer[i]));
      ++n;
    }
  }
  return n;
}

int CheckFixedOverlap(const netlist::Netlist& nl, const place::Placement& p,
                      std::vector<Violation>* out) {
  struct Rect {
    double xlo, xhi, ylo, yhi;
    std::int32_t cell;
  };
  // Per-layer x-sorted fixed rectangles; each movable scans forward from the
  // first fixed rect that could still reach it.
  std::vector<std::vector<Rect>> fixed_by_layer;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    if (!nl.cell(c).fixed) continue;
    const std::size_t i = static_cast<std::size_t>(c);
    const int layer = p.layer[i];
    if (layer < 0) continue;
    if (static_cast<std::size_t>(layer) >= fixed_by_layer.size()) {
      fixed_by_layer.resize(static_cast<std::size_t>(layer) + 1);
    }
    fixed_by_layer[static_cast<std::size_t>(layer)].push_back(
        {p.x[i] - nl.cell(c).width / 2.0, p.x[i] + nl.cell(c).width / 2.0,
         p.y[i] - nl.cell(c).height / 2.0, p.y[i] + nl.cell(c).height / 2.0,
         c});
  }
  for (auto& rects : fixed_by_layer) {
    std::sort(rects.begin(), rects.end(),
              [](const Rect& a, const Rect& b) { return a.xlo < b.xlo; });
  }
  int n = 0;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    if (nl.cell(c).fixed) continue;
    const std::size_t i = static_cast<std::size_t>(c);
    const int layer = p.layer[i];
    if (layer < 0 || static_cast<std::size_t>(layer) >= fixed_by_layer.size()) {
      continue;
    }
    const auto& rects = fixed_by_layer[static_cast<std::size_t>(layer)];
    const double xlo = p.x[i] - nl.cell(c).width / 2.0;
    const double xhi = p.x[i] + nl.cell(c).width / 2.0;
    const double ylo = p.y[i] - nl.cell(c).height / 2.0;
    const double yhi = p.y[i] + nl.cell(c).height / 2.0;
    for (const Rect& f : rects) {
      if (f.xlo >= xhi - kGeomEps) break;  // sorted: nothing further can hit
      if (f.xhi <= xlo + kGeomEps) continue;
      if (f.ylo < yhi - kGeomEps && ylo < f.yhi - kGeomEps) {
        Append(out, "fixed-overlap", c, -1,
               Format("%s overlaps fixed %s", DescribeCell(nl, p, c).c_str(),
                      DescribeCell(nl, p, f.cell).c_str()));
        ++n;
        break;  // one violation per movable cell is enough to act on
      }
    }
  }
  return n;
}

ConservationSnapshot ConservationSnapshot::Of(const netlist::Netlist& nl) {
  ConservationSnapshot s;
  s.cells = nl.NumCells();
  s.nets = nl.NumNets();
  s.pins = nl.NumPins();
  s.movable = nl.NumMovableCells();
  s.movable_area = nl.MovableArea();
  // FNV-1a over the structural identity of every pin, in order.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (std::int32_t p = 0; p < nl.NumPins(); ++p) {
    const netlist::Pin& pin = nl.pin(p);
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(pin.cell)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(pin.net)));
    mix(static_cast<std::uint64_t>(pin.dir == netlist::PinDir::kOutput));
  }
  s.pin_checksum = h;
  return s;
}

int CheckConservation(const netlist::Netlist& nl,
                      const ConservationSnapshot& snapshot,
                      const place::Placement& p, std::vector<Violation>* out) {
  const ConservationSnapshot now = ConservationSnapshot::Of(nl);
  int n = 0;
  if (now.cells != snapshot.cells || now.nets != snapshot.nets ||
      now.pins != snapshot.pins || now.movable != snapshot.movable) {
    Append(out, "conservation", -1, -1,
           Format("netlist size changed: cells %d->%d nets %d->%d pins "
                  "%d->%d movable %d->%d",
                  snapshot.cells, now.cells, snapshot.nets, now.nets,
                  snapshot.pins, now.pins, snapshot.movable, now.movable));
    ++n;
  }
  if (now.movable_area != snapshot.movable_area) {
    Append(out, "conservation", -1, -1,
           Format("movable area changed: %.9g -> %.9g m^2",
                  snapshot.movable_area, now.movable_area));
    ++n;
  }
  if (now.pin_checksum != snapshot.pin_checksum) {
    Append(out, "conservation", -1, -1,
           "net pin membership changed (pin checksum mismatch)");
    ++n;
  }
  if (p.size() != static_cast<std::size_t>(snapshot.cells) ||
      p.y.size() != p.size() || p.layer.size() != p.size()) {
    Append(out, "conservation", -1, -1,
           Format("placement sized %zu/%zu/%zu for %d cells", p.x.size(),
                  p.y.size(), p.layer.size(), snapshot.cells));
    ++n;
  }
  return n;
}

int CheckObjectiveConsistency(const place::ObjectiveEvaluator& eval,
                              const ObjectiveTolerance& tol,
                              std::vector<Violation>* out) {
  // A fresh evaluator recomputes every cache from the geometry alone; the
  // live evaluator's totals were maintained move-by-move across the flow.
  place::ObjectiveEvaluator fresh(eval.netlist(), eval.chip(), eval.params());
  fresh.SetPlacement(eval.placement());
  int n = 0;
  auto check = [&](const char* what, double incremental, double recomputed) {
    const double lim =
        tol.abs + tol.rel * std::max(std::abs(recomputed), 1.0);
    if (std::abs(incremental - recomputed) > lim) {
      Append(out, "objective", -1, -1,
             Format("%s drifted: incremental %.17g vs recomputed %.17g "
                    "(err %.3g, tol %.3g)",
                    what, incremental, recomputed,
                    std::abs(incremental - recomputed), lim));
      ++n;
    }
  };
  check("objective", eval.Total(), fresh.Total());
  check("hpwl", eval.TotalHpwl(), fresh.TotalHpwl());
  check("thermal", eval.ThermalCost(), fresh.ThermalCost());
  if (eval.TotalIlv() != fresh.TotalIlv()) {
    Append(out, "objective", -1, -1,
           Format("ilv drifted: incremental %lld vs recomputed %lld",
                  static_cast<long long>(eval.TotalIlv()),
                  static_cast<long long>(fresh.TotalIlv())));
    ++n;
  }
  return n;
}

}  // namespace p3d::check
