// Property-based fuzzing of the full placement flow.
//
// A single seed deterministically derives a randomized synthetic benchmark
// (cell count, pad ring, layer count) and placer configuration (alpha_ILV,
// alpha_TEMP, thread count, effort knobs), then runs the complete flow with
// paranoid auditing attached. The properties guarded per run:
//
//   * the auditor reports zero violations at every phase boundary
//     (legality, conservation, objective consistency, replayed deltas);
//   * the final placement is legal (overlap-free, row-aligned);
//   * a rerun at threads=1 with auditing off reproduces the placement
//     byte-for-byte (the PR 1 determinism contract, and proof that
//     auditing itself does not perturb results).
//
// On failure, RunSeed shrinks the case (fewer cells, fewer repeats) while it
// still fails and reports the smallest repro as a single parameter line, so
// a nightly fuzz hit is reproducible from one string.
#pragma once

#include <cstdint>
#include <string>

#include "check/audit.h"
#include "io/synthetic.h"
#include "place/placer.h"

namespace p3d::check {

struct FuzzCase {
  std::uint64_t seed = 0;
  io::SyntheticSpec spec;
  place::PlacerParams params;
};

/// Derives the randomized benchmark + configuration for `seed`.
FuzzCase MakeFuzzCase(std::uint64_t seed);

/// One-line reproduction recipe listing every derived knob.
std::string ReproLine(const FuzzCase& c);

struct FuzzOutcome {
  bool ok = true;
  std::string repro;    // ReproLine of the (shrunken) failing case
  std::string failure;  // what went wrong, first cause
  AuditReport audit;
  place::PlacementResult result;
};

/// Runs one explicit case (no shrinking).
FuzzOutcome RunFuzzCase(const FuzzCase& c);

/// Runs MakeFuzzCase(seed); on failure, shrinks and reports the smallest
/// still-failing repro.
FuzzOutcome RunSeed(std::uint64_t seed);

}  // namespace p3d::check
