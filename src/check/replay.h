// Move/swap recording and delta replay — the paranoid half of the audit.
//
// MoveLog listens to ObjectiveEvaluator commits and records the operation
// sequence together with the incrementally applied objective deltas.
// ReplayAndVerify then re-runs the sequence on a fresh evaluator seeded from
// the recorded start placement and cross-checks, per operation,
//   * the recorded applied delta against a freshly computed
//     MoveDelta/SwapDelta,
//   * the running total against (total before + predicted delta),
// and, every `full_check_stride` operations and at the end, the running
// total against a from-scratch recomputation — so a stale cache or a wrong
// delta formula anywhere in the incremental bookkeeping is pinned to the
// first operation that exposes it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "place/chip.h"
#include "place/objective.h"

namespace p3d::check {

struct RecordedOp {
  bool is_swap = false;
  std::int32_t a = -1;
  std::int32_t b = -1;   // swap partner; unused for moves
  double x = 0.0;        // move target; unused for swaps
  double y = 0.0;
  int layer = 0;
  double delta = 0.0;    // applied objective delta reported by the evaluator
};

class MoveLog final : public place::CommitListener {
 public:
  void OnCommitMove(std::int32_t cell, double x, double y, int layer,
                    double applied_delta) override;
  void OnCommitSwap(std::int32_t a, std::int32_t b,
                    double applied_delta) override;
  /// A bulk install invalidates the incremental history: clears the log and
  /// re-anchors the start placement.
  void OnSetPlacement(const place::Placement& placement) override;

  /// Explicit re-anchor (the auditor rebases after replaying each phase).
  void Rebase(const place::Placement& start);

  bool has_start() const { return has_start_; }
  const place::Placement& start() const { return start_; }
  /// Mutable, so fault-injection tests can tamper with recorded ops.
  std::vector<RecordedOp>& ops() { return ops_; }
  const std::vector<RecordedOp>& ops() const { return ops_; }
  /// Operations discarded after the cap was hit (replay is then partial).
  std::size_t dropped() const { return dropped_; }
  void set_cap(std::size_t cap) { cap_ = cap; }

 private:
  place::Placement start_;
  bool has_start_ = false;
  std::vector<RecordedOp> ops_;
  std::size_t cap_ = 500000;
  std::size_t dropped_ = 0;
};

struct ReplayOptions {
  int full_check_stride = 256;  // full recompute cadence, in ops
  double rel_tol = 1e-9;        // of the total's magnitude
  double abs_tol = 1e-12;
};

struct ReplayResult {
  bool ok = true;
  std::size_t ops_checked = 0;
  double max_delta_err = 0.0;   // worst |recorded - predicted| seen
  std::string message;          // first failure, with the op index
};

/// Replays `log` on a fresh evaluator. If `expected_final` is non-null the
/// replayed placement must match it exactly (positions are copied values, so
/// equality is bitwise). Partial logs (dropped() > 0) skip that comparison.
ReplayResult ReplayAndVerify(const netlist::Netlist& nl,
                             const place::Chip& chip,
                             const place::PlacerParams& params,
                             const MoveLog& log,
                             const place::Placement* expected_final,
                             const ReplayOptions& options = {});

}  // namespace p3d::check
