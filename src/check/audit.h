// PlacementAuditor — end-to-end verification of the placement flow.
//
// The paper's flow is a chain of phases, each relying on contracts the
// previous phase must have established (see DESIGN.md "Placement audit
// subsystem"). The auditor attaches to Placer3D's phase hooks and verifies,
// at every boundary:
//
//   legality      cells in the die, valid layers, fixed pads untouched;
//                 after detailed legalization also row/site alignment and
//                 zero pairwise overlap (independent sweep-line);
//   objective     the incrementally maintained Eq. 3 totals match a
//                 from-scratch recomputation; in paranoid mode every
//                 committed MoveDelta/SwapDelta is replayed and re-verified;
//   conservation  cell count, movable area, and net pin membership
//                 unchanged across phases;
//   balance       bisection feasibility counters surface as warnings.
//
// Auditing is read-only and must not perturb the flow: the determinism suite
// asserts byte-identical placements with auditing on and off.
#pragma once

#include <string>
#include <vector>

#include "check/invariants.h"
#include "check/replay.h"
#include "place/placer.h"

namespace p3d::check {

struct AuditReport {
  std::vector<Violation> violations;
  std::vector<std::string> warnings;  // suspicious but legal (e.g. balance)
  int phases_audited = 0;
  long long checks_run = 0;
  std::size_t replayed_ops = 0;

  bool ok() const { return violations.empty(); }
  /// One line per violation/warning plus a totals line.
  std::string Summary() const;
};

class PlacementAuditor final : public place::PhaseObserver {
 public:
  PlacementAuditor(const netlist::Netlist& nl, place::AuditLevel level);

  /// Wires this auditor into a placer: phase observer, plus the evaluator's
  /// commit listener when the level is paranoid. Call before Run(); the
  /// placer's params.audit_level should match `level` (hooks are gated on
  /// it). Also snapshots the conservation baseline. Attaching ADDS observers
  /// (other observers, e.g. the metrics sampler, stay attached); undo with
  /// Detach.
  void Attach(place::Placer3D* placer);

  /// Unhooks this auditor (phase observer and commit listener) from a placer
  /// previously passed to Attach. No-op if not attached.
  void Detach(place::Placer3D* placer);

  /// Baseline for the fixed-pads-untouched invariant. Optional: without it,
  /// fixed positions are captured at the first phase boundary (which would
  /// mask a global-placement bug that moves a pad).
  void SetFixedBaseline(const place::Placement& initial);

  void OnPhase(const char* phase, int round,
               const place::ObjectiveEvaluator& eval,
               const place::GlobalPlaceStats* global_stats) override;

  /// One-shot audit of an arbitrary evaluator state under `phase`'s
  /// contract; used by tests and by the CLI for the post-flow check.
  void AuditNow(const char* phase, const place::ObjectiveEvaluator& eval);

  const AuditReport& report() const { return report_; }
  bool ok() const { return report_.ok(); }
  place::AuditLevel level() const { return level_; }

 private:
  void RunChecks(const char* phase, int round,
                 const place::ObjectiveEvaluator& eval,
                 const place::GlobalPlaceStats* global_stats);

  const netlist::Netlist& nl_;
  place::AuditLevel level_;
  ConservationSnapshot snapshot_;
  place::Placement fixed_baseline_;
  bool have_fixed_baseline_ = false;
  MoveLog log_;
  AuditReport report_;
};

}  // namespace p3d::check
