#include "check/fuzz.h"

#include <algorithm>
#include <cstdio>

#include "util/log.h"
#include "util/rng.h"

namespace p3d::check {
namespace {

constexpr double kAreaPerCell = 4.9e-12;  // Table 1 average, m^2

}  // namespace

FuzzCase MakeFuzzCase(std::uint64_t seed) {
  // Every knob is drawn from one SplitMix64 stream keyed by the seed, so a
  // seed alone reconstructs the whole case.
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5fc2d1);
  FuzzCase c;
  c.seed = seed;

  c.spec.name = "fuzz" + std::to_string(seed);
  c.spec.num_cells = 60 + static_cast<std::int32_t>(rng.NextBounded(200));
  c.spec.total_area_m2 = c.spec.num_cells * kAreaPerCell;
  c.spec.rent_locality = rng.NextDouble(0.6, 0.9);
  c.spec.num_pads =
      rng.NextBool() ? 0 : 8 + static_cast<std::int32_t>(rng.NextBounded(12));
  c.spec.seed = rng.NextU64();

  static constexpr double kAlphaIlv[] = {0.0, 1e-6, 1e-5, 1e-4};
  static constexpr double kAlphaTemp[] = {0.0, 5e-7, 5e-6, 5e-5};
  c.params.num_layers = 2 + static_cast<int>(rng.NextBounded(4));
  c.params.alpha_ilv = kAlphaIlv[rng.NextBounded(4)];
  c.params.alpha_temp = kAlphaTemp[rng.NextBounded(4)];
  c.params.threads = 1 + static_cast<int>(rng.NextBounded(4));
  c.params.partition_starts = 1 + static_cast<int>(rng.NextBounded(2));
  c.params.legalization_repeats = 1 + static_cast<int>(rng.NextBounded(2));
  c.params.moveswap_rounds = 1 + static_cast<int>(rng.NextBounded(2));
  static constexpr int kResync[] = {256, 1024, 4096};
  c.params.objective_resync_interval = kResync[rng.NextBounded(3)];
  c.params.seed = rng.NextU64();
  c.params.audit_level = place::AuditLevel::kParanoid;
  return c;
}

std::string ReproLine(const FuzzCase& c) {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "(seed=%llu cells=%d pads=%d locality=%.3f spec_seed=%llu layers=%d "
      "alpha_ilv=%g alpha_temp=%g threads=%d starts=%d repeats=%d "
      "msrounds=%d resync=%d placer_seed=%llu)",
      static_cast<unsigned long long>(c.seed), c.spec.num_cells,
      c.spec.num_pads, c.spec.rent_locality,
      static_cast<unsigned long long>(c.spec.seed), c.params.num_layers,
      c.params.alpha_ilv, c.params.alpha_temp, c.params.threads,
      c.params.partition_starts, c.params.legalization_repeats,
      c.params.moveswap_rounds, c.params.objective_resync_interval,
      static_cast<unsigned long long>(c.params.seed));
  return buf;
}

FuzzOutcome RunFuzzCase(const FuzzCase& c) {
  util::ScopedLogLevel quiet(util::LogLevel::kError);
  FuzzOutcome out;
  out.repro = ReproLine(c);

  const netlist::Netlist nl = io::Generate(c.spec);
  place::Placer3D placer(nl, c.params);
  place::Placement initial;
  initial.Resize(static_cast<std::size_t>(nl.NumCells()));
  if (c.spec.num_pads > 0) {
    io::PlacePadRing(nl, placer.chip().width(), placer.chip().height(),
                     &initial);
  }
  PlacementAuditor auditor(nl, c.params.audit_level);
  auditor.Attach(&placer);
  auditor.SetFixedBaseline(initial);
  out.result = *placer.Run({.initial = initial, .with_fea = false});
  out.audit = auditor.report();

  if (!auditor.ok()) {
    out.ok = false;
    const Violation& v = out.audit.violations.front();
    out.failure = "audit [" + v.phase + "/" + v.check + "] " + v.message;
    return out;
  }
  if (!out.result.legal) {
    out.ok = false;
    out.failure = "final placement not legal (" +
                  std::to_string(out.result.overlaps) + " overlaps)";
    return out;
  }

  // Determinism property: threads and auditing are pure observers.
  place::PlacerParams replay_params = c.params;
  replay_params.threads = 1;
  replay_params.audit_level = place::AuditLevel::kOff;
  place::Placer3D p1(nl, replay_params);
  const place::PlacementResult r1 = *p1.Run({.initial = initial, .with_fea = false});
  if (r1.placement.x != out.result.placement.x ||
      r1.placement.y != out.result.placement.y ||
      r1.placement.layer != out.result.placement.layer) {
    out.ok = false;
    out.failure =
        "determinism: threads=1/audit-off rerun diverged from threads=" +
        std::to_string(c.params.threads) + "/paranoid run";
  }
  return out;
}

FuzzOutcome RunSeed(std::uint64_t seed) {
  FuzzCase c = MakeFuzzCase(seed);
  FuzzOutcome out = RunFuzzCase(c);
  if (out.ok) return out;

  // Greedy shrink: each transformation is kept only while the case still
  // fails, so the reported repro is a local minimum.
  FuzzCase smallest = c;
  FuzzOutcome failing = out;
  auto try_shrink = [&](FuzzCase candidate) {
    const FuzzOutcome o = RunFuzzCase(candidate);
    if (!o.ok) {
      smallest = candidate;
      failing = o;
    }
  };
  for (int i = 0; i < 3 && smallest.spec.num_cells > 60; ++i) {
    FuzzCase candidate = smallest;
    candidate.spec.num_cells = std::max(60, candidate.spec.num_cells / 2);
    candidate.spec.total_area_m2 = candidate.spec.num_cells * kAreaPerCell;
    try_shrink(candidate);
  }
  if (smallest.params.legalization_repeats > 1) {
    FuzzCase candidate = smallest;
    candidate.params.legalization_repeats = 1;
    try_shrink(candidate);
  }
  if (smallest.params.moveswap_rounds > 1) {
    FuzzCase candidate = smallest;
    candidate.params.moveswap_rounds = 1;
    try_shrink(candidate);
  }
  if (smallest.spec.num_pads > 0) {
    FuzzCase candidate = smallest;
    candidate.spec.num_pads = 0;
    try_shrink(candidate);
  }
  util::LogWarn("fuzz: seed %llu failed; smallest repro %s: %s",
                static_cast<unsigned long long>(seed),
                ReproLine(smallest).c_str(), failing.failure.c_str());
  return failing;
}

}  // namespace p3d::check
