#include "check/audit.h"

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/ring.h"
#include "place/global.h"
#include "util/log.h"

namespace p3d::check {

std::string AuditReport::Summary() const {
  std::string s;
  char buf[160];
  for (const Violation& v : violations) {
    s += "VIOLATION [" + v.phase + "/" + v.check + "] " + v.message + "\n";
  }
  for (const std::string& w : warnings) {
    s += "warning: " + w + "\n";
  }
  std::snprintf(buf, sizeof buf,
                "audit: %zu violations, %zu warnings over %d phases "
                "(%lld checks, %zu ops replayed)\n",
                violations.size(), warnings.size(), phases_audited,
                checks_run, replayed_ops);
  s += buf;
  return s;
}

PlacementAuditor::PlacementAuditor(const netlist::Netlist& nl,
                                   place::AuditLevel level)
    : nl_(nl), level_(level) {
  snapshot_ = ConservationSnapshot::Of(nl_);
}

void PlacementAuditor::Attach(place::Placer3D* placer) {
  placer->AddPhaseObserver(this);
  if (level_ == place::AuditLevel::kParanoid) {
    placer->mutable_evaluator()->AddCommitListener(&log_);
  }
}

void PlacementAuditor::Detach(place::Placer3D* placer) {
  placer->RemovePhaseObserver(this);
  placer->mutable_evaluator()->RemoveCommitListener(&log_);
}

void PlacementAuditor::SetFixedBaseline(const place::Placement& initial) {
  fixed_baseline_ = initial;
  have_fixed_baseline_ = true;
}

void PlacementAuditor::OnPhase(const char* phase, int round,
                               const place::ObjectiveEvaluator& eval,
                               const place::GlobalPlaceStats* global_stats) {
  if (level_ == place::AuditLevel::kOff) return;
  RunChecks(phase, round, eval, global_stats);
  if (level_ == place::AuditLevel::kParanoid) {
    // Replay the commit history accumulated since the previous boundary
    // against from-scratch evaluations, then re-anchor for the next phase.
    if (log_.has_start() && !log_.ops().empty()) {
      const ReplayResult r = ReplayAndVerify(nl_, eval.chip(), eval.params(),
                                             log_, &eval.placement());
      report_.replayed_ops += r.ops_checked;
      ++report_.checks_run;
      if (!r.ok) {
        Violation v;
        v.check = "replay";
        v.phase = phase;
        v.message = r.message;
        report_.violations.push_back(std::move(v));
      }
      if (log_.dropped() > 0) {
        report_.warnings.push_back(
            std::string(phase) + ": move log capped, " +
            std::to_string(log_.dropped()) + " ops not replayed");
      }
    }
    log_.Rebase(eval.placement());
  }
}

void PlacementAuditor::AuditNow(const char* phase,
                                const place::ObjectiveEvaluator& eval) {
  RunChecks(phase, -1, eval, nullptr);
}

void PlacementAuditor::RunChecks(const char* phase, int round,
                                 const place::ObjectiveEvaluator& eval,
                                 const place::GlobalPlaceStats* global_stats) {
  const place::Placement& p = eval.placement();
  const place::Chip& chip = eval.chip();
  const std::size_t before = report_.violations.size();
  std::vector<Violation>* out = &report_.violations;

  // Contracts common to every boundary.
  report_.checks_run += 4;
  CheckConservation(nl_, snapshot_, p, out);
  CheckFinite(nl_, p, out);
  CheckLayers(nl_, p, chip.num_layers(), out);
  if (!have_fixed_baseline_ && nl_.NumMovableCells() < nl_.NumCells()) {
    // No caller-provided pad baseline: anchor on the first boundary seen.
    fixed_baseline_ = p;
    have_fixed_baseline_ = true;
  }
  if (have_fixed_baseline_) {
    ++report_.checks_run;
    CheckFixedUntouched(nl_, fixed_baseline_, p, out);
  }

  // Detailed placement must be row-aligned and overlap-free; coarse phases
  // only promise centers inside the die.
  const bool detailed = std::strcmp(phase, "detailed") == 0 ||
                        std::strcmp(phase, "refine") == 0 ||
                        std::strcmp(phase, "final") == 0;
  report_.checks_run += detailed ? 4 : 1;
  CheckBounds(nl_, chip, p, /*extents=*/detailed, out);
  if (detailed) {
    CheckRowAlignment(nl_, chip, p, out);
    CheckNoOverlap(nl_, p, out);
    CheckFixedOverlap(nl_, p, out);
  }

  // Objective consistency: incremental totals vs from-scratch recompute.
  ++report_.checks_run;
  CheckObjectiveConsistency(eval, ObjectiveTolerance{}, out);

  if (global_stats != nullptr &&
      global_stats->bisection.infeasible_partitions > 0) {
    report_.warnings.push_back(
        std::string(phase) + ": " +
        std::to_string(global_stats->bisection.infeasible_partitions) +
        " of " + std::to_string(global_stats->bisection.partitions) +
        " bisections missed balance bounds");
  }

  ++report_.phases_audited;
  obs::MetricAdd("audit/phases", 1);
  obs::MetricAdd("audit/violations",
                 static_cast<std::int64_t>(report_.violations.size() - before));
  for (std::size_t i = before; i < report_.violations.size(); ++i) {
    report_.violations[i].phase =
        round >= 0 ? std::string(phase) + "#" + std::to_string(round) : phase;
    util::LogWarn("audit: [%s/%s] %s", report_.violations[i].phase.c_str(),
                  report_.violations[i].check.c_str(),
                  report_.violations[i].message.c_str());
  }
  // A violation is a black-box trigger: capture the final moments of every
  // thread while the bad state is still live (no-op when no ring/path set).
  if (report_.violations.size() > before) {
    obs::DumpBlackBox("audit_violation");
  }
}

}  // namespace p3d::check
