#include "check/replay.h"

#include <cmath>
#include <cstdio>

namespace p3d::check {

void MoveLog::OnCommitMove(std::int32_t cell, double x, double y, int layer,
                           double applied_delta) {
  if (ops_.size() >= cap_) {
    ++dropped_;
    return;
  }
  RecordedOp op;
  op.a = cell;
  op.x = x;
  op.y = y;
  op.layer = layer;
  op.delta = applied_delta;
  ops_.push_back(op);
}

void MoveLog::OnCommitSwap(std::int32_t a, std::int32_t b,
                           double applied_delta) {
  if (ops_.size() >= cap_) {
    ++dropped_;
    return;
  }
  RecordedOp op;
  op.is_swap = true;
  op.a = a;
  op.b = b;
  op.delta = applied_delta;
  ops_.push_back(op);
}

void MoveLog::OnSetPlacement(const place::Placement& placement) {
  Rebase(placement);
}

void MoveLog::Rebase(const place::Placement& start) {
  start_ = start;
  has_start_ = true;
  ops_.clear();
  dropped_ = 0;
}

namespace {

std::string Fail(std::size_t op_index, const char* what, double got,
                 double want, double tol) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "op %zu: %s mismatch: got %.17g want %.17g (err %.3g, tol "
                "%.3g)",
                op_index, what, got, want, std::abs(got - want), tol);
  return buf;
}

}  // namespace

ReplayResult ReplayAndVerify(const netlist::Netlist& nl,
                             const place::Chip& chip,
                             const place::PlacerParams& params,
                             const MoveLog& log,
                             const place::Placement* expected_final,
                             const ReplayOptions& options) {
  ReplayResult result;
  if (!log.has_start()) {
    result.ok = false;
    result.message = "no start placement recorded";
    return result;
  }
  place::ObjectiveEvaluator eval(nl, chip, params);
  eval.SetPlacement(log.start());

  auto tol = [&](double scale) {
    return options.abs_tol + options.rel_tol * std::max(std::abs(scale), 1.0);
  };

  const std::vector<RecordedOp>& ops = log.ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const RecordedOp& op = ops[i];
    const double predicted =
        op.is_swap ? eval.SwapDelta(op.a, op.b)
                   : eval.MoveDelta(op.a, op.x, op.y, op.layer);
    const double delta_err = std::abs(predicted - op.delta);
    result.max_delta_err = std::max(result.max_delta_err, delta_err);
    const double total_before = eval.Total();
    if (delta_err > tol(total_before)) {
      result.ok = false;
      result.message = Fail(i, op.is_swap ? "SwapDelta" : "MoveDelta",
                            predicted, op.delta, tol(total_before));
      return result;
    }
    if (op.is_swap) {
      eval.CommitSwap(op.a, op.b);
    } else {
      eval.CommitMove(op.a, op.x, op.y, op.layer);
    }
    // The committed total must land where the prediction said it would.
    if (std::abs(eval.Total() - (total_before + predicted)) >
        tol(total_before)) {
      result.ok = false;
      result.message = Fail(i, "committed total", eval.Total(),
                            total_before + predicted, tol(total_before));
      return result;
    }
    ++result.ops_checked;
    const bool last = i + 1 == ops.size();
    if (last || (options.full_check_stride > 0 &&
                 (i + 1) % static_cast<std::size_t>(
                               options.full_check_stride) == 0)) {
      const double incremental = eval.Total();
      const double fresh = eval.RecomputeFull();
      if (std::abs(incremental - fresh) > tol(fresh)) {
        result.ok = false;
        result.message =
            Fail(i, "full recomputation", incremental, fresh, tol(fresh));
        return result;
      }
    }
  }

  if (expected_final != nullptr && log.dropped() == 0) {
    const place::Placement& got = eval.placement();
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got.x[i] != expected_final->x[i] ||
          got.y[i] != expected_final->y[i] ||
          got.layer[i] != expected_final->layer[i]) {
        result.ok = false;
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "replayed placement diverges at cell %zu: "
                      "(%.9g, %.9g, %d) vs expected (%.9g, %.9g, %d)",
                      i, got.x[i], got.y[i], got.layer[i],
                      expected_final->x[i], expected_final->y[i],
                      expected_final->layer[i]);
        result.message = buf;
        return result;
      }
    }
  }
  return result;
}

}  // namespace p3d::check
