// Pure placement invariant checks — the primitives of the audit subsystem.
//
// Every placement phase of the paper's flow hands the next phase a placement
// that must satisfy a contract: cells inside the die, valid layer indices,
// fixed pads untouched, (after detailed legalization) row alignment and zero
// pairwise overlap, and a netlist that nothing mutated along the way. These
// functions verify one contract each, from scratch, sharing no bookkeeping
// with the phases they check; PlacementAuditor sequences them per phase.
//
// All checkers append human-actionable Violations (first offending cell/net
// with coordinates) and return the number appended.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "place/chip.h"
#include "place/objective.h"

namespace p3d::check {

struct Violation {
  std::string check;    // which invariant: "bounds", "overlap", ...
  std::string phase;    // flow phase (filled by the auditor)
  std::string message;  // offending element with coordinates
  std::int32_t cell = -1;
  std::int32_t net = -1;
};

/// Formats "cell 12 'name' at (x, y, layer 2)" for messages.
std::string DescribeCell(const netlist::Netlist& nl,
                         const place::Placement& p, std::int32_t cell);

// ----- legality ------------------------------------------------------------

/// Every coordinate is finite (no NaN/inf escaped a phase).
int CheckFinite(const netlist::Netlist& nl, const place::Placement& p,
                std::vector<Violation>* out);

/// Every cell's layer index lies in [0, num_layers).
int CheckLayers(const netlist::Netlist& nl, const place::Placement& p,
                int num_layers, std::vector<Violation>* out);

/// Movable cells inside the die outline. `extents` = false checks cell
/// centers only (coarse phases place centers, edges may graze the boundary);
/// true checks the full footprint (the detailed-placement contract).
int CheckBounds(const netlist::Netlist& nl, const place::Chip& chip,
                const place::Placement& p, bool extents,
                std::vector<Violation>* out);

/// Movable cells sit exactly on a row center line.
int CheckRowAlignment(const netlist::Netlist& nl, const place::Chip& chip,
                      const place::Placement& p, std::vector<Violation>* out);

/// Exact pairwise overlap count among movable cells on each layer, by a
/// plane-sweep over x with an active y-interval set — an independent (and
/// strictly stronger) cross-check of DetailedLegalizer::CountOverlaps, which
/// only inspects neighbours in a quantized y band. Touching edges do not
/// overlap. If `first` is non-null, it receives the first offending pair.
long long CountOverlapsSweep(const netlist::Netlist& nl,
                             const place::Placement& p, Violation* first);

/// Zero-overlap contract: appends one violation naming the first pair.
int CheckNoOverlap(const netlist::Netlist& nl, const place::Placement& p,
                   std::vector<Violation>* out);

/// Fixed cells (pads) occupy exactly their baseline positions.
int CheckFixedUntouched(const netlist::Netlist& nl,
                        const place::Placement& baseline,
                        const place::Placement& p,
                        std::vector<Violation>* out);

/// No movable cell's footprint intersects a fixed cell's footprint on the
/// same layer (the pad-ring / blockage wall contract of detailed placement:
/// legalization and rowopt must treat fixed cells as impenetrable). Touching
/// edges do not overlap. Appends one violation per offending movable cell.
int CheckFixedOverlap(const netlist::Netlist& nl, const place::Placement& p,
                      std::vector<Violation>* out);

// ----- conservation --------------------------------------------------------

/// Fingerprint of everything a placement phase must NOT change: element
/// counts, movable area, and the full pin membership (cell/net/direction of
/// every pin, order-sensitive).
struct ConservationSnapshot {
  std::int32_t cells = 0;
  std::int32_t nets = 0;
  std::int32_t pins = 0;
  std::int32_t movable = 0;
  double movable_area = 0.0;
  std::uint64_t pin_checksum = 0;

  static ConservationSnapshot Of(const netlist::Netlist& nl);
};

/// The netlist still matches the snapshot and the placement is sized to it.
int CheckConservation(const netlist::Netlist& nl,
                      const ConservationSnapshot& snapshot,
                      const place::Placement& p, std::vector<Violation>* out);

// ----- objective consistency ----------------------------------------------

struct ObjectiveTolerance {
  double rel = 1e-9;    // of the total's magnitude
  double abs = 1e-12;
};

/// The evaluator's incrementally maintained totals (objective, HPWL, ILV,
/// thermal term) match a from-scratch recomputation by a fresh evaluator
/// over the same placement. ILV is integral and must match exactly.
int CheckObjectiveConsistency(const place::ObjectiveEvaluator& eval,
                              const ObjectiveTolerance& tol,
                              std::vector<Violation>* out);

}  // namespace p3d::check
