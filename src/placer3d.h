// Umbrella header: everything a library consumer typically needs.
//
//   #include "placer3d.h"
//
//   auto netlist = p3d::io::Generate(p3d::io::Table1Spec("ibm01", 0.1));
//   p3d::place::Placer3D placer(netlist, {});
//   auto result = placer.Run();
//
// Individual headers remain includable for finer-grained use; see
// docs/ALGORITHM.md for the map.
#pragma once

#include "io/bookshelf.h"
#include "io/svg.h"
#include "io/synthetic.h"
#include "netlist/netlist.h"
#include "place/chip.h"
#include "place/params.h"
#include "place/placer.h"
#include "place/report.h"
#include "runtime/parallel.h"
#include "runtime/stream.h"
#include "runtime/thread_pool.h"
#include "serve/batch.h"
#include "serve/job_engine.h"
#include "serve/manifest.h"
#include "thermal/fea.h"
#include "thermal/power.h"
#include "thermal/resistance.h"
#include "thermal/stack.h"
#include "util/log.h"
