#include "thermal/power.h"

#include <cassert>

#include "geom/geometry.h"

namespace p3d::thermal {

NetMetrics ComputeNetMetrics(const netlist::Netlist& nl,
                             const std::vector<double>& x,
                             const std::vector<double>& y,
                             const std::vector<int>& layer) {
  assert(nl.finalized());
  NetMetrics m;
  m.hpwl.assign(static_cast<std::size_t>(nl.NumNets()), 0.0);
  m.layer_span.assign(static_cast<std::size_t>(nl.NumNets()), 0);
  for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
    geom::BBox3 box;
    for (const netlist::Pin& pin : nl.NetPins(n)) {
      const std::size_t c = static_cast<std::size_t>(pin.cell);
      box.Add(geom::Point3{x[c] + pin.dx, y[c] + pin.dy, layer[c]});
    }
    m.hpwl[static_cast<std::size_t>(n)] = box.Hpwl();
    m.layer_span[static_cast<std::size_t>(n)] = box.LayerSpan();
    m.total_hpwl += box.Hpwl();
    m.total_ilv += box.LayerSpan();
  }
  return m;
}

PowerReport ComputePower(const netlist::Netlist& nl, const NetMetrics& metrics,
                         const ElectricalParams& params) {
  PowerReport report;
  report.net_power.assign(static_cast<std::size_t>(nl.NumNets()), 0.0);
  report.cell_power.assign(static_cast<std::size_t>(nl.NumCells()), 0.0);
  if (params.leakage_per_cell_w > 0.0) {
    for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
      if (nl.cell(c).fixed) continue;
      report.cell_power[static_cast<std::size_t>(c)] +=
          params.leakage_per_cell_w;
      report.total += params.leakage_per_cell_w;
    }
  }
  const double pre = params.Prefactor();
  for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
    const std::size_t i = static_cast<std::size_t>(n);
    const double cap = params.c_per_wl * metrics.hpwl[i] +
                       params.CPerIlv() * metrics.layer_span[i] +
                       params.c_per_pin * nl.NumInputPins(n);
    const double p = pre * nl.net(n).activity * cap;
    report.net_power[i] = p;
    report.total += p;
    const std::int32_t driver = nl.DriverCell(n);
    if (driver >= 0) {
      report.cell_power[static_cast<std::size_t>(driver)] += p;
    }
  }
  return report;
}

}  // namespace p3d::thermal
