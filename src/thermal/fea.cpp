#include "thermal/fea.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <cmath>
#include <fstream>
#include <utility>

#include "linalg/multigrid.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "util/log.h"

namespace p3d::thermal {
namespace {

// Local node order of a hex element: bit 0 = x, bit 1 = y, bit 2 = z.
// Node i sits at (xi[i], eta[i], zeta[i]) in [-1,1]^3.
double LocalCoord(int node, int axis) {
  return (node >> axis) & 1 ? 1.0 : -1.0;
}

/// 8x8 conduction stiffness of a box element (hx x hy x hz, conductivity k),
/// integrated with 2x2x2 Gauss quadrature of the trilinear shape gradients.
std::array<std::array<double, 8>, 8> HexStiffness(double hx, double hy,
                                                  double hz, double k) {
  std::array<std::array<double, 8>, 8> ke{};
  const double g = 1.0 / std::sqrt(3.0);
  const double jac[3] = {hx / 2.0, hy / 2.0, hz / 2.0};
  const double det = jac[0] * jac[1] * jac[2];
  for (int gx = 0; gx < 2; ++gx) {
    for (int gy = 0; gy < 2; ++gy) {
      for (int gz = 0; gz < 2; ++gz) {
        const double p[3] = {gx ? g : -g, gy ? g : -g, gz ? g : -g};
        double grad[8][3];
        for (int i = 0; i < 8; ++i) {
          const double xi = LocalCoord(i, 0);
          const double et = LocalCoord(i, 1);
          const double ze = LocalCoord(i, 2);
          // dN/dlocal, then chain rule through the diagonal Jacobian.
          grad[i][0] = 0.125 * xi * (1 + et * p[1]) * (1 + ze * p[2]) / jac[0];
          grad[i][1] = 0.125 * et * (1 + xi * p[0]) * (1 + ze * p[2]) / jac[1];
          grad[i][2] = 0.125 * ze * (1 + xi * p[0]) * (1 + et * p[1]) / jac[2];
        }
        for (int i = 0; i < 8; ++i) {
          for (int j = 0; j < 8; ++j) {
            ke[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +=
                k * det *
                (grad[i][0] * grad[j][0] + grad[i][1] * grad[j][1] +
                 grad[i][2] * grad[j][2]);
          }
        }
      }
    }
  }
  return ke;
}

/// 4x4 convection "mass" matrix of a rectangular face (area A, coefficient
/// h): h * A/36 * [[4,2,1,2],[2,4,2,1],[1,2,4,2],[1? ...]] with bilinear
/// shape functions; node order (0,0),(1,0),(0,1),(1,1) in face-local bits.
std::array<std::array<double, 4>, 4> FaceConvection(double area, double h) {
  // Entries of integral N_i N_j over the face: corners sharing an edge get
  // 2, opposite corners get 1, diagonal 4 (all times A/36).
  std::array<std::array<double, 4>, 4> m{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const int dx = ((i ^ j) & 1) ? 1 : 0;
      const int dy = ((i ^ j) & 2) ? 1 : 0;
      const int manhattan = dx + dy;
      const double base = manhattan == 0 ? 4.0 : (manhattan == 1 ? 2.0 : 1.0);
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          h * area / 36.0 * base;
    }
  }
  return m;
}

}  // namespace

const char* FeaSolverKindName(FeaSolverKind kind) {
  switch (kind) {
    case FeaSolverKind::kCg: return "cg";
    case FeaSolverKind::kMultigrid: return "multigrid";
  }
  return "unknown";
}

FeaSolver::FeaSolver(const ThermalStack& stack, const ChipExtent& chip,
                     const FeaOptions& options)
    : stack_(stack), chip_(chip), options_(options) {
  assert(chip.width > 0.0 && chip.height > 0.0);
  nx_ = std::max(options.nx, 2);
  ny_ = std::max(options.ny, 2);
  dx_ = chip_.width / nx_;
  dy_ = chip_.height / ny_;

  // --- vertical grid -----------------------------------------------------
  z_planes_.push_back(0.0);
  const int nb = std::max(options.bulk_elems, 1);
  for (int i = 1; i <= nb; ++i) {
    z_planes_.push_back(stack_.bulk_thickness * i / nb);
    elem_k_.push_back(stack_.k_bulk);
  }
  for (int t = 0; t < stack_.num_layers; ++t) {
    device_elem_z_.push_back(static_cast<int>(elem_k_.size()));
    z_planes_.push_back(z_planes_.back() + stack_.layer_thickness);
    elem_k_.push_back(stack_.k_stack);
    if (t + 1 < stack_.num_layers) {
      z_planes_.push_back(z_planes_.back() + stack_.interlayer_thickness);
      elem_k_.push_back(stack_.k_stack);
    }
  }

  // --- assembly (geometry only; reused across Solve calls) ----------------
  const int nz_elems = static_cast<int>(elem_k_.size());
  const int num_nodes = NumNodes();
  linalg::CooBuilder coo(num_nodes);

  for (int ez = 0; ez < nz_elems; ++ez) {
    const double hz = z_planes_[static_cast<std::size_t>(ez) + 1] -
                      z_planes_[static_cast<std::size_t>(ez)];
    const auto ke = HexStiffness(dx_, dy_, hz, elem_k_[static_cast<std::size_t>(ez)]);
    for (int ey = 0; ey < ny_; ++ey) {
      for (int ex = 0; ex < nx_; ++ex) {
        int nodes[8];
        for (int i = 0; i < 8; ++i) {
          nodes[i] = NodeId(ex + ((i >> 0) & 1), ey + ((i >> 1) & 1),
                            ez + ((i >> 2) & 1));
        }
        for (int i = 0; i < 8; ++i) {
          for (int j = 0; j < 8; ++j) {
            coo.Add(nodes[i], nodes[j],
                    ke[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
          }
        }
      }
    }
  }

  // Heat-sink convection on the bottom face (z = 0) and weak natural
  // convection on the top face; sides adiabatic.
  const double face_area = dx_ * dy_;
  const auto add_face = [&](int iz, double h) {
    const auto m = FaceConvection(face_area, h);
    for (int ey = 0; ey < ny_; ++ey) {
      for (int ex = 0; ex < nx_; ++ex) {
        const int fnodes[4] = {NodeId(ex, ey, iz), NodeId(ex + 1, ey, iz),
                               NodeId(ex, ey + 1, iz), NodeId(ex + 1, ey + 1, iz)};
        for (int i = 0; i < 4; ++i) {
          for (int j = 0; j < 4; ++j) {
            coo.Add(fnodes[i], fnodes[j],
                    m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
          }
        }
      }
    }
  };
  add_face(0, stack_.h_sink);
  add_face(static_cast<int>(z_planes_.size()) - 1, stack_.h_ambient);

  k_matrix_ = linalg::CsrMatrix::FromCoo(coo);
}

int FeaSolver::NumNodes() const {
  return (nx_ + 1) * (ny_ + 1) * static_cast<int>(z_planes_.size());
}

bool FeaSolver::ElementWeights(double x, double y, double z, int nodes[8],
                               double weights[8]) const {
  if (x < 0.0 || x > chip_.width || y < 0.0 || y > chip_.height) return false;
  // z outside the stack is rejected like out-of-range x/y (SampleTemp then
  // reports ambient). In-grid callers (BuildRhs / ReadBack / the CSV dump)
  // always pass a clamped layer's LayerCenterZ, which lies inside the grid.
  if (z < 0.0 || z > z_planes_.back()) return false;
  const int ex = std::min(static_cast<int>(x / dx_), nx_ - 1);
  const int ey = std::min(static_cast<int>(y / dy_), ny_ - 1);
  // Locate the vertical element containing z.
  const auto it =
      std::upper_bound(z_planes_.begin(), z_planes_.end(), z);
  int ez = static_cast<int>(it - z_planes_.begin()) - 1;
  ez = std::clamp(ez, 0, static_cast<int>(elem_k_.size()) - 1);
  const double z_lo = z_planes_[static_cast<std::size_t>(ez)];
  const double hz = z_planes_[static_cast<std::size_t>(ez) + 1] - z_lo;
  // Local coordinates in [0, 1].
  const double lx = std::clamp((x - ex * dx_) / dx_, 0.0, 1.0);
  const double ly = std::clamp((y - ey * dy_) / dy_, 0.0, 1.0);
  const double lz = std::clamp((z - z_lo) / hz, 0.0, 1.0);
  for (int i = 0; i < 8; ++i) {
    const int bx = (i >> 0) & 1;
    const int by = (i >> 1) & 1;
    const int bz = (i >> 2) & 1;
    nodes[i] = NodeId(ex + bx, ey + by, ez + bz);
    weights[i] = (bx ? lx : 1.0 - lx) * (by ? ly : 1.0 - ly) *
                 (bz ? lz : 1.0 - lz);
  }
  return true;
}

std::vector<double> FeaSolver::BuildRhs(
    const std::vector<double>& x, const std::vector<double>& y,
    const std::vector<int>& layer, const std::vector<double>& cell_power) const {
  assert(x.size() == y.size() && x.size() == layer.size() &&
         x.size() == cell_power.size());
  std::vector<double> rhs(static_cast<std::size_t>(NumNodes()), 0.0);

  // Distribute each cell's power to the nodes of its device-layer element
  // with trilinear weights at the cell center. (T_amb = 0 C, so convection
  // contributes nothing to the RHS; ambient is added back on readout.)
  const std::size_t num_cells = x.size();
  for (std::size_t c = 0; c < num_cells; ++c) {
    if (cell_power[c] <= 0.0) continue;
    const int t = std::clamp(layer[c], 0, stack_.num_layers - 1);
    const double z = stack_.LayerCenterZ(t);
    const double cx = std::clamp(x[c], 0.0, chip_.width);
    const double cy = std::clamp(y[c], 0.0, chip_.height);
    int nodes[8];
    double w[8];
    if (!ElementWeights(cx, cy, z, nodes, w)) continue;
    for (int i = 0; i < 8; ++i) {
      rhs[static_cast<std::size_t>(nodes[i])] += cell_power[c] * w[i];
    }
  }
  return rhs;
}

FeaResult FeaSolver::ReadBack(std::vector<double> node_temp,
                              const std::vector<double>& x,
                              const std::vector<double>& y,
                              const std::vector<int>& layer) const {
  FeaResult result;
  const std::size_t num_cells = x.size();
  result.cell_temp.assign(num_cells, stack_.ambient_c);
  double sum = 0.0;
  double mx = stack_.ambient_c;
  for (std::size_t c = 0; c < num_cells; ++c) {
    const int t = std::clamp(layer[c], 0, stack_.num_layers - 1);
    const double tc =
        SampleTemp(node_temp, std::clamp(x[c], 0.0, chip_.width),
                   std::clamp(y[c], 0.0, chip_.height), stack_.LayerCenterZ(t)) +
        stack_.ambient_c;
    result.cell_temp[c] = tc;
    sum += tc;
    mx = std::max(mx, tc);
  }
  result.avg_cell_temp = num_cells > 0 ? sum / static_cast<double>(num_cells)
                                       : stack_.ambient_c;
  result.max_cell_temp = mx;
  result.node_temp = std::move(node_temp);
  return result;
}

FeaResult FeaSolver::Solve(const std::vector<double>& x,
                           const std::vector<double>& y,
                           const std::vector<int>& layer,
                           const std::vector<double>& cell_power) const {
  obs::TraceScope trace_solve("fea.solve");
  obs::MetricAdd("fea/solves", 1);
  std::vector<double> rhs = BuildRhs(x, y, layer, cell_power);
  std::vector<double> temp(static_cast<std::size_t>(NumNodes()), 0.0);
  const linalg::CgResult cg = linalg::SolveCg(k_matrix_, rhs, &temp, options_.cg);
  if (!cg.converged) {
    util::LogWarn("fea: CG did not converge (residual %.3g after %d iters)",
                  cg.residual_norm, cg.iters);
    obs::MetricAdd("fea/nonconverged", 1);
  }
  FeaResult result = ReadBack(std::move(temp), x, y, layer);
  result.cg_iters = cg.iters;
  result.converged = cg.converged;
  return result;
}

bool FeaSolver::WriteLayerTempCsv(const std::string& path,
                                  const std::vector<double>& node_temp,
                                  int layer) const {
  std::ofstream out(path);
  if (!out) {
    util::LogWarn("fea: cannot write %s", path.c_str());
    return false;
  }
  out.precision(8);
  const int t = std::clamp(layer, 0, stack_.num_layers - 1);
  const double z = stack_.LayerCenterZ(t);
  for (int iy = 0; iy <= ny_; ++iy) {
    const double y = iy * dy_;
    for (int ix = 0; ix <= nx_; ++ix) {
      const double x = ix * dx_;
      if (ix > 0) out << ',';
      out << SampleTemp(node_temp, x, y, z) + stack_.ambient_c;
    }
    out << '\n';
  }
  return out.good();
}

double FeaSolver::SampleTemp(const std::vector<double>& node_temp, double x,
                             double y, double z) const {
  int nodes[8];
  double w[8];
  if (!ElementWeights(x, y, z, nodes, w)) return stack_.ambient_c;
  double t = 0.0;
  for (int i = 0; i < 8; ++i) {
    t += w[i] * node_temp[static_cast<std::size_t>(nodes[i])];
  }
  return t;
}

// --- FeaAssembly / FeaContext: assemble once, solve many ---------------------

namespace {

bool WantsMultigrid(const FeaOptions& options) {
  return options.solver == FeaSolverKind::kMultigrid ||
         options.cg.preconditioner == linalg::PreconditionerKind::kMultigrid;
}

/// Builds the mesh hierarchy for `fine` by re-assembling the stiffness
/// matrix on each 2x-lateral-coarsened grid (same stack, same z planes).
/// Returns null when multigrid was not requested or the lateral grid cannot
/// be halved even once.
std::shared_ptr<const linalg::MultigridHierarchy> BuildHierarchy(
    const ThermalStack& stack, const ChipExtent& chip,
    const FeaOptions& options, const FeaSolver& fine) {
  if (!WantsMultigrid(options)) return nullptr;
  const linalg::MgGrid fine_grid{fine.NumXElems(), fine.NumYElems(),
                                 fine.NumZPlanes()};
  const std::vector<linalg::MgGrid> plan =
      linalg::MultigridHierarchy::CoarsenPlan(fine_grid);
  if (plan.size() < 2) {
    util::LogWarn(
        "fea: %dx%d lateral grid cannot be coarsened; multigrid disabled "
        "(falling back to IC(0)-preconditioned CG)",
        fine.NumXElems(), fine.NumYElems());
    return nullptr;
  }
  obs::TraceScope trace("fea.mg_build");
  std::vector<linalg::CsrMatrix> matrices;
  matrices.reserve(plan.size());
  matrices.push_back(fine.matrix());
  for (std::size_t l = 1; l < plan.size(); ++l) {
    FeaOptions coarse_options = options;
    coarse_options.nx = plan[l].nx;
    coarse_options.ny = plan[l].ny;
    const FeaSolver coarse(stack, chip, coarse_options);
    assert(coarse.NumZPlanes() == fine.NumZPlanes());
    matrices.push_back(coarse.matrix());
  }
  return std::make_shared<const linalg::MultigridHierarchy>(
      linalg::MultigridHierarchy::Build(std::move(matrices), plan));
}

/// The preconditioner an assembly solves with: the multigrid V-cycle when a
/// hierarchy exists and CG-with-multigrid was requested, the requested kind
/// otherwise — except that an unsatisfiable multigrid request (no hierarchy)
/// deterministically degrades to IC(0) rather than Jacobi.
linalg::CgPreconditioner BuildAssemblyPrecond(
    const FeaOptions& options, const FeaSolver& solver,
    const std::shared_ptr<const linalg::MultigridHierarchy>& hierarchy) {
  linalg::PreconditionerKind kind = options.cg.preconditioner;
  if (kind == linalg::PreconditionerKind::kMultigrid &&
      hierarchy != nullptr) {
    return linalg::CgPreconditioner::BuildMultigrid(hierarchy);
  }
  if (hierarchy == nullptr && WantsMultigrid(options)) {
    kind = linalg::PreconditionerKind::kIc0;
  }
  return linalg::CgPreconditioner::Build(solver.matrix(), kind);
}

}  // namespace

FeaAssembly::FeaAssembly(const ThermalStack& stack_in,
                         const ChipExtent& chip_in, const FeaOptions& options)
    : stack(stack_in),
      chip(chip_in),
      solver(stack_in, chip_in, options),
      hierarchy(BuildHierarchy(stack_in, chip_in, options, solver)),
      precond(BuildAssemblyPrecond(options, solver, hierarchy)) {}

FeaContext::FeaContext(const ThermalStack& stack, const ChipExtent& chip,
                       const FeaContextOptions& options)
    : options_(options) {
  Rebuild(stack, chip);
}

FeaContext::FeaContext(std::shared_ptr<const FeaAssembly> assembly,
                       const FeaContextOptions& options)
    : options_(options), assembly_(std::move(assembly)), adopted_(true) {
  assert(assembly_ != nullptr);
  assert(options_.fea == assembly_->solver.options() &&
         "adopted assembly was built with different FeaOptions");
  // No rebuild happened here, so stats_.rebuilds stays 0 and every solve
  // through the adopted assembly counts as a cache hit (see Solve()).
}

bool FeaContext::MatchesGeometry(const ThermalStack& stack,
                                 const ChipExtent& chip) const {
  return assembly_->stack == stack && assembly_->chip == chip;
}

void FeaContext::Rebuild(const ThermalStack& stack, const ChipExtent& chip) {
  obs::TraceScope trace("fea.context_rebuild");
  assembly_ = std::make_shared<const FeaAssembly>(stack, chip, options_.fea);
  adopted_ = false;
  InvalidateWarmStart();
  cold_iters_ = 0;
  ++stats_.rebuilds;
  obs::MetricAdd("solver/fea_rebuilds", 1);
}

bool FeaContext::Refresh(const ThermalStack& stack, const ChipExtent& chip) {
  if (MatchesGeometry(stack, chip)) return false;
  Rebuild(stack, chip);
  return true;
}

void FeaContext::InvalidateWarmStart() {
  last_temp_.clear();
  have_last_ = false;
}

FeaResult FeaContext::Solve(const std::vector<double>& x,
                            const std::vector<double>& y,
                            const std::vector<int>& layer,
                            const std::vector<double>& cell_power) {
  obs::TraceScope trace_solve("fea.context_solve");
  const auto t0 = std::chrono::steady_clock::now();

  const FeaSolver& solver = assembly_->solver;
  std::vector<double> rhs = solver.BuildRhs(x, y, layer, cell_power);

  const std::size_t n = static_cast<std::size_t>(solver.NumNodes());
  const bool warm = options_.warm_start && have_last_ && last_temp_.size() == n;
  std::vector<double> temp;
  if (warm) {
    temp = last_temp_;  // deterministic seed: previous solution, verbatim
  } else {
    temp.assign(n, 0.0);
  }

  // Solver dispatch: standalone V-cycle iteration when the options ask for
  // it and a hierarchy exists, preconditioned CG otherwise (where the
  // preconditioner may itself be a V-cycle — see FeaAssembly). Either way
  // the result is bit-identical for any thread count.
  linalg::CgResult cg;
  if (assembly_->UsesStandaloneMultigrid()) {
    runtime::ThreadPool* pool = runtime::SharedPool(options_.fea.cg.threads);
    cg = assembly_->hierarchy->Solve(rhs, &temp, options_.fea.cg.max_iters,
                                     options_.fea.cg.rel_tolerance, pool);
  } else {
    cg = linalg::SolveCgPreconditioned(solver.matrix(), assembly_->precond,
                                       rhs, &temp, options_.fea.cg);
  }
  if (!cg.converged) {
    util::LogWarn("fea: thermal solve did not converge (residual %.3g after "
                  "%d iters)",
                  cg.residual_norm, cg.iters);
    obs::MetricAdd("fea/nonconverged", 1);
    ++stats_.nonconverged;
  }

  // Reuse accounting. The first solve after a (re)build is the cold
  // baseline; warm solves count iterations saved against it.
  ++stats_.solves;
  stats_.iters_total += cg.iters;
  obs::MetricAdd("solver/fea_solves", 1);
  obs::MetricAdd("fea/solves", 1);
  if (adopted_ || stats_.solves > stats_.rebuilds) {
    ++stats_.cache_hits;
    obs::MetricAdd("solver/fea_cache_hits", 1);
  }
  if (warm) {
    ++stats_.warm_starts;
    obs::MetricAdd("solver/warm_starts", 1);
    const long long saved = std::max(0, cold_iters_ - cg.iters);
    stats_.iters_saved += saved;
    obs::MetricAdd("solver/warm_iters_saved", saved);
  } else {
    cold_iters_ = cg.iters;
  }
  obs::MetricObserve("solver/fea_iters_per_solve", cg.iters);

  if (options_.warm_start) {
    if (cg.converged) {
      last_temp_ = temp;
      have_last_ = true;
    } else {
      // A non-converged field would poison every later warm start (each
      // solve would inherit — and possibly keep — the bad iterate). Drop it
      // so the next solve cold-starts from zeros.
      InvalidateWarmStart();
    }
  }

  FeaResult result = solver.ReadBack(std::move(temp), x, y, layer);
  result.cg_iters = cg.iters;
  result.converged = cg.converged;

  stats_.solve_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace p3d::thermal
