// Dynamic power model (paper Eq. 4-5).
//
//   P_i^net = 1/2 f V_DD^2 a_i C_i^total
//   C_i^total = C_per_wl * WL_i + C_per_ilv * ILV_i + C_per_pin * n_i^inputs
//
// Power is attributed to each net's *driver* cell (Eq. 10): driver
// resistances dominate interconnect resistances, so dynamic power dissipates
// in the driving cell. WL_i is the lateral HPWL and ILV_i the layer span of
// the net's placement bounding box.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace p3d::thermal {

/// Electrical constants. Capacitances come from the paper's Table 2; f, VDD,
/// and activities are unpublished — see DESIGN.md substitution #5.
struct ElectricalParams {
  double clock_hz = 1e9;         // f
  double vdd = 1.2;              // V_DD (100 nm node)
  double c_per_wl = 73.8e-12;    // F/m, lateral interconnect capacitance
  double c_per_ilv_m = 1480e-12; // F/m of via; one ILV spans one layer pitch
  double ilv_length = 6.4e-6;    // m, via length per crossed interlayer
  double c_per_pin = 0.35e-15;   // F, input pin capacitance
  // Static (leakage) power dissipated by every movable cell, W. The paper
  // notes "leakage power could be added to P_j^cell" (Section 3.2); 0
  // disables it (the paper's dynamic-power-dominates assumption).
  double leakage_per_cell_w = 0.0;

  /// Capacitance contributed by one interlayer via.
  double CPerIlv() const { return c_per_ilv_m * ilv_length; }
  /// The voltage/frequency prefactor 1/2 f V_DD^2 shared by all nets.
  double Prefactor() const { return 0.5 * clock_hz * vdd * vdd; }
};

struct PowerReport {
  std::vector<double> net_power;   // W per net
  std::vector<double> cell_power;  // W per cell (sum over driven nets)
  double total = 0.0;              // W
};

/// Per-net bounding-box metrics of a placement. Pin offsets are honoured.
struct NetMetrics {
  std::vector<double> hpwl;      // m per net
  std::vector<int> layer_span;   // ILV count per net
  double total_hpwl = 0.0;
  long long total_ilv = 0;
};

/// Computes HPWL and layer span for every net of a placement given cell
/// center coordinates and layer indices.
NetMetrics ComputeNetMetrics(const netlist::Netlist& nl,
                             const std::vector<double>& x,
                             const std::vector<double>& y,
                             const std::vector<int>& layer);

/// Evaluates Eq. 4-5 over all nets and attributes power to driver cells.
/// Nets without a driver contribute to total power but to no cell.
PowerReport ComputePower(const netlist::Netlist& nl, const NetMetrics& metrics,
                         const ElectricalParams& params);

}  // namespace p3d::thermal
