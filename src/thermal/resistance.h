// Straight-path thermal resistance model (paper Section 2).
//
// "Thermal resistances R_j^cell are calculated using simple heat conduction
//  and convection equations assuming that heat flows in a straight path from
//  the cell to the chip surface in all three directions and that the cross
//  sectional area of each path is the same size as the cell."
//
// Six one-dimensional paths (down to the heat sink, up, +-x, +-y) each
// consist of a conduction term L/(kA) plus a boundary convection term
// 1/(hA); the paths act in parallel. Because h_sink >> h_ambient and the
// vertical distances are tiny, the downward path dominates — exactly the
// structure the paper exploits with its linear R(z) approximation
// R_j ~= R0_z + Rslope_z * d_j^z (Section 3.2).
#pragma once

#include <vector>

#include "thermal/stack.h"

namespace p3d::thermal {

/// Lateral chip extent, needed for the sideways paths.
struct ChipExtent {
  double width = 0.0;   // m
  double height = 0.0;  // m

  friend bool operator==(const ChipExtent&, const ChipExtent&) = default;
};

class ResistanceModel {
 public:
  ResistanceModel(const ThermalStack& stack, const ChipExtent& chip);

  /// Thermal resistance (K/W) from a cell at lateral position (x, y) on
  /// device layer `layer` to ambient. `cell_area` is the path cross-section.
  double CellToAmbient(double x, double y, int layer, double cell_area) const;

  /// Resistance of the downward path only (used for slope extraction).
  double DownPath(int layer, double cell_area) const;

  /// Linear fit R(z) ~= R0 + slope * d_z across the stack's layers for a
  /// representative cell area; d_z is the physical distance from the chip
  /// bottom, i.e. LayerCenterZ(layer) - LayerCenterZ(0).
  struct LinearFit {
    double r0 = 0.0;     // K/W at the bottom layer
    double slope = 0.0;  // K/W per metre of additional height
  };
  LinearFit FitVertical(double cell_area) const;

  const ThermalStack& stack() const { return stack_; }

 private:
  ThermalStack stack_;
  ChipExtent chip_;

  // Every straight-path term scales as 1/area, so the vertical paths (whose
  // lengths depend only on the layer index) collapse to one precomputed
  // unit-area resistance per layer. CellToAmbient on the placer's per-commit
  // hot path then costs one table lookup plus the four lateral paths,
  // instead of re-walking the stack geometry on every candidate move.
  std::vector<double> down_unit_;  // DownPath * area, per layer
  std::vector<double> vert_unit_;  // down ∥ up combined, * area, per layer
  double lateral_unit_inv_h_ = 0.0;  // 1 / h_ambient (lateral convection term)
};

}  // namespace p3d::thermal
