// Physical description of the 3D-IC thermal stack.
//
// Geometry follows the paper's Table 2, which encodes MIT Lincoln Labs'
// 0.18um 3D FD-SOI technology [17][18]:
//   heat sink (convective, h = 1e6 W/m^2K)
//   bulk handle substrate, 500 um
//   tier 0 device layer, 5.7 um     <- layer index 0 (closest to the sink)
//   interlayer bond/oxide, 0.7 um
//   tier 1 device layer ...         <- layer index 1
//   ...
//
// Table 2 gives a single "effective thermal conductivity" of 10.2 W/mK. We
// apply it to the *tier stack* (device + interlayer dielectrics), whose poor
// vertical conduction is the paper's stated motivation ("high thermal
// resistances between active layers"), and model the bulk handle wafer at
// crystalline-silicon conductivity. This keeps the per-tier resistance
// gradient physically meaningful; see DESIGN.md substitution #3.
#pragma once

#include <cassert>

namespace p3d::thermal {

struct ThermalStack {
  int num_layers = 4;                  // active tiers
  double bulk_thickness = 500e-6;      // m, handle substrate
  double layer_thickness = 5.7e-6;     // m, per device tier
  double interlayer_thickness = 0.7e-6;  // m, bond/oxide between tiers

  double k_stack = 10.2;   // W/mK, effective conductivity of the tier stack
  double k_bulk = 100.0;   // W/mK, bulk silicon handle wafer

  double h_sink = 1e6;     // W/m^2K, heat-sink convection at the chip bottom
  double h_ambient = 10.0; // W/m^2K, natural convection on other faces
  double ambient_c = 0.0;  // deg C (Table 2: 0 C); temperatures are rises

  /// Pitch between consecutive device layers.
  double LayerPitch() const { return layer_thickness + interlayer_thickness; }

  /// z of the *bottom* of device layer `layer`, measured from the heat sink.
  double LayerBottomZ(int layer) const {
    assert(layer >= 0 && layer < num_layers);
    return bulk_thickness + layer * LayerPitch();
  }

  /// z of the mid-plane of device layer `layer` (where cell power lives).
  double LayerCenterZ(int layer) const {
    return LayerBottomZ(layer) + 0.5 * layer_thickness;
  }

  /// Total stack height from heat sink to the top of the last device layer.
  double TotalHeight() const {
    return bulk_thickness + num_layers * layer_thickness +
           (num_layers > 0 ? (num_layers - 1) * interlayer_thickness : 0.0);
  }

  /// Exact field-wise equality — the solver-cache layer (thermal::FeaContext)
  /// uses it as its geometry key, so any stack change forces a rebuild.
  friend bool operator==(const ThermalStack&, const ThermalStack&) = default;
};

}  // namespace p3d::thermal
