#include "thermal/resistance.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace p3d::thermal {
namespace {

/// Series conduction+convection resistance of one straight path.
double Path(double length, double k, double h, double area) {
  return length / (k * area) + 1.0 / (h * area);
}

double Parallel(double a, double b) { return a * b / (a + b); }

}  // namespace

ResistanceModel::ResistanceModel(const ThermalStack& stack,
                                 const ChipExtent& chip)
    : stack_(stack), chip_(chip) {
  // Precompute the unit-area (A = 1) vertical resistances per layer. Every
  // term of a straight path is proportional to 1/A, so dividing the unit
  // value by the cell area reproduces the path resistance; the down/up
  // parallel combination is homogeneous in 1/A too, so it can be folded in.
  const int n = std::max(stack_.num_layers, 1);
  down_unit_.resize(static_cast<std::size_t>(n));
  vert_unit_.resize(static_cast<std::size_t>(n));
  for (int layer = 0; layer < n; ++layer) {
    const double down = layer * stack_.LayerPitch() / stack_.k_stack +
                        Path(stack_.bulk_thickness, stack_.k_bulk,
                             stack_.h_sink, 1.0);
    const double up_len =
        (stack_.num_layers - 1 - layer) * stack_.LayerPitch() +
        stack_.layer_thickness;
    const double up = up_len / stack_.k_stack + 1.0 / stack_.h_ambient;
    down_unit_[static_cast<std::size_t>(layer)] = down;
    vert_unit_[static_cast<std::size_t>(layer)] = Parallel(down, up);
  }
  lateral_unit_inv_h_ = 1.0 / stack_.h_ambient;
}

double ResistanceModel::DownPath(int layer, double cell_area) const {
  // Tier stack below the cell: `layer` full pitches of effective material,
  // then the bulk, then the heat-sink boundary.
  const int t = std::clamp(layer, 0, static_cast<int>(down_unit_.size()) - 1);
  return down_unit_[static_cast<std::size_t>(t)] / cell_area;
}

double ResistanceModel::CellToAmbient(double x, double y, int layer,
                                      double cell_area) const {
  assert(cell_area > 0.0);
  // Vertical paths (down to the sink, dominant, in parallel with up to the
  // top face): precomputed per layer at unit area.
  const int t = std::clamp(layer, 0, static_cast<int>(vert_unit_.size()) - 1);
  double r = vert_unit_[static_cast<std::size_t>(t)] / cell_area;

  // Lateral paths; long and thin, so these matter only near the die edge.
  const double eps = 1e-9;  // avoid zero-length paths at the exact edge
  const double to_left = std::max(x, eps);
  const double to_right = std::max(chip_.width - x, eps);
  const double to_bottom = std::max(y, eps);
  const double to_top = std::max(chip_.height - y, eps);
  for (const double len : {to_left, to_right, to_bottom, to_top}) {
    r = Parallel(r, (len / stack_.k_stack + lateral_unit_inv_h_) / cell_area);
  }
  return r;
}

ResistanceModel::LinearFit ResistanceModel::FitVertical(
    double cell_area) const {
  LinearFit fit;
  fit.r0 = DownPath(0, cell_area);
  if (stack_.num_layers < 2) {
    // Single-layer chips have no vertical gradient; the paper's TRR nets
    // then act only through the (zero) slope, i.e. not at all vertically.
    fit.slope = 0.0;
    return fit;
  }
  // The down path is exactly linear in layer index, so the "fit" is exact:
  // one layer pitch adds pitch / (k_stack * A).
  fit.slope = 1.0 / (stack_.k_stack * cell_area);
  return fit;
}

}  // namespace p3d::thermal
