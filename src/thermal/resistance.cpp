#include "thermal/resistance.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace p3d::thermal {
namespace {

/// Series conduction+convection resistance of one straight path.
double Path(double length, double k, double h, double area) {
  return length / (k * area) + 1.0 / (h * area);
}

double Parallel(double a, double b) { return a * b / (a + b); }

}  // namespace

double ResistanceModel::DownPath(int layer, double cell_area) const {
  // Tier stack below the cell: `layer` full pitches of effective material,
  // then the bulk, then the heat-sink boundary.
  const double stack_len = layer * stack_.LayerPitch();
  return stack_len / (stack_.k_stack * cell_area) +
         Path(stack_.bulk_thickness, stack_.k_bulk, stack_.h_sink, cell_area);
}

double ResistanceModel::CellToAmbient(double x, double y, int layer,
                                      double cell_area) const {
  assert(cell_area > 0.0);
  // Downward to the heat sink (dominant path).
  double r = DownPath(layer, cell_area);

  // Upward through the remaining tiers to the (weakly convective) top.
  const double up_len =
      (stack_.num_layers - 1 - layer) * stack_.LayerPitch() +
      stack_.layer_thickness;
  r = Parallel(r, up_len / (stack_.k_stack * cell_area) +
                      1.0 / (stack_.h_ambient * cell_area));

  // Lateral paths; long and thin, so these matter only near the die edge.
  const double eps = 1e-9;  // avoid zero-length paths at the exact edge
  const double to_left = std::max(x, eps);
  const double to_right = std::max(chip_.width - x, eps);
  const double to_bottom = std::max(y, eps);
  const double to_top = std::max(chip_.height - y, eps);
  for (const double len : {to_left, to_right, to_bottom, to_top}) {
    r = Parallel(r, Path(len, stack_.k_stack, stack_.h_ambient, cell_area));
  }
  return r;
}

ResistanceModel::LinearFit ResistanceModel::FitVertical(
    double cell_area) const {
  LinearFit fit;
  fit.r0 = DownPath(0, cell_area);
  if (stack_.num_layers < 2) {
    // Single-layer chips have no vertical gradient; the paper's TRR nets
    // then act only through the (zero) slope, i.e. not at all vertically.
    fit.slope = 0.0;
    return fit;
  }
  // The down path is exactly linear in layer index, so the "fit" is exact:
  // one layer pitch adds pitch / (k_stack * A).
  fit.slope = 1.0 / (stack_.k_stack * cell_area);
  return fit;
}

}  // namespace p3d::thermal
