// Finite-element steady-state thermal analysis of the 3D-IC stack.
//
// This reproduces the verification tool the paper uses to report
// temperatures ("Temperature results were calculated using Finite Element
// Analysis (FEA) [2] with the bottom of the chip (heat sink) given
// convective boundary conditions").
//
// Discretization: 8-node trilinear hexahedral elements on a tensor-product
// grid. Lateral resolution is uniform (nx x ny); the vertical grid follows
// the physical stack — several bulk elements, then one element per device
// layer and one per interlayer, so every tier has its own element row and
// cell heat loads land exactly in their device layer. Boundary conditions:
// convective (Robin) on the bottom heat-sink face with h_sink, convective
// with h_ambient on the top face, adiabatic sides. The assembled system is
// symmetric positive definite and solved with Jacobi-preconditioned CG.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "linalg/cg.h"
#include "netlist/netlist.h"
#include "thermal/resistance.h"
#include "thermal/stack.h"

namespace p3d::thermal {

/// Linear-solver family for the repeated thermal solves.
enum class FeaSolverKind {
  /// Preconditioned CG; the preconditioner comes from cg.preconditioner
  /// (Jacobi, IC(0), or multigrid V-cycles via kMultigrid).
  kCg,
  /// Standalone geometric-multigrid V-cycle iteration (no Krylov wrapper).
  /// Engages through FeaContext/FeaAssembly, where the mesh hierarchy is
  /// assembled and cached; one-shot FeaSolver::Solve calls fall back to CG.
  kMultigrid,
};

/// Returns "cg" / "multigrid".
const char* FeaSolverKindName(FeaSolverKind kind);

struct FeaOptions {
  int nx = 24;         // lateral elements in x
  int ny = 24;         // lateral elements in y
  int bulk_elems = 4;  // vertical elements through the bulk substrate
  linalg::CgOptions cg{.max_iters = 4000, .rel_tolerance = 1e-8};
  /// Solver family (see FeaSolverKind). Both multigrid modes — standalone
  /// kMultigrid here, or kCg with cg.preconditioner = kMultigrid — make
  /// FeaAssembly build a mesh hierarchy by repeated 2x lateral coarsening
  /// (z planes kept) and share it like the IC(0) factorization.
  FeaSolverKind solver = FeaSolverKind::kCg;

  /// Mesh-shape equality (CG knobs included: a tolerance change invalidates
  /// a FeaContext's warm-start baseline bookkeeping too).
  friend bool operator==(const FeaOptions&, const FeaOptions&) = default;
};

struct FeaResult {
  std::vector<double> cell_temp;  // deg C per cell (ambient included)
  double avg_cell_temp = 0.0;
  double max_cell_temp = 0.0;
  std::vector<double> node_temp;  // full temperature field (deg C)
  int cg_iters = 0;
  bool converged = false;
};

class FeaSolver {
 public:
  FeaSolver(const ThermalStack& stack, const ChipExtent& chip,
            const FeaOptions& options = {});

  /// Solves for the temperature field given per-cell powers (W) and cell
  /// placements (center coordinates in metres, layer indices). One-shot:
  /// builds a fresh preconditioner and cold-starts CG every call. Flows that
  /// solve repeatedly should go through FeaContext below.
  FeaResult Solve(const std::vector<double>& x, const std::vector<double>& y,
                  const std::vector<int>& layer,
                  const std::vector<double>& cell_power) const;

  // --- solve building blocks (used by FeaContext) -----------------------
  /// Scatters per-cell powers onto the mesh nodes (trilinear weights at
  /// each cell's device-layer center). This is the only part of a solve
  /// that depends on cell positions.
  std::vector<double> BuildRhs(const std::vector<double>& x,
                               const std::vector<double>& y,
                               const std::vector<int>& layer,
                               const std::vector<double>& cell_power) const;
  /// Samples per-cell temperatures out of a solved node field and fills the
  /// aggregate stats; takes ownership of `node_temp`.
  FeaResult ReadBack(std::vector<double> node_temp,
                     const std::vector<double>& x,
                     const std::vector<double>& y,
                     const std::vector<int>& layer) const;
  /// The assembled (geometry-only) stiffness matrix.
  const linalg::CsrMatrix& matrix() const { return k_matrix_; }
  const FeaOptions& options() const { return options_; }

  // --- grid introspection (tests / reporting) ---------------------------
  int NumNodes() const;
  int NumXElems() const { return nx_; }
  int NumYElems() const { return ny_; }
  int NumZPlanes() const { return static_cast<int>(z_planes_.size()); }
  const std::vector<double>& ZPlanes() const { return z_planes_; }
  /// Vertical element index of device layer `t`.
  int DeviceElemZ(int t) const { return device_elem_z_[static_cast<std::size_t>(t)]; }
  /// Temperature at an arbitrary point of a solved field.
  double SampleTemp(const std::vector<double>& node_temp, double x, double y,
                    double z) const;

  /// Writes the temperature field of device layer `layer` as CSV (one row
  /// per y sample, columns over x; values in deg C including ambient),
  /// sampled on an `nx x ny` grid at the layer mid-plane. Returns false on
  /// I/O error.
  bool WriteLayerTempCsv(const std::string& path,
                         const std::vector<double>& node_temp,
                         int layer) const;

 private:
  int NodeId(int ix, int iy, int iz) const {
    return ix + (nx_ + 1) * (iy + (ny_ + 1) * iz);
  }
  /// Trilinear weights of point (x, y, z) inside element (ex, ey, ez),
  /// plus the 8 node ids. Returns false if the point is outside the grid.
  bool ElementWeights(double x, double y, double z, int nodes[8],
                      double weights[8]) const;

  ThermalStack stack_;
  ChipExtent chip_;
  FeaOptions options_;
  int nx_ = 0;
  int ny_ = 0;
  double dx_ = 0.0;
  double dy_ = 0.0;
  std::vector<double> z_planes_;     // node z coordinates, ascending from 0
  std::vector<double> elem_k_;       // conductivity per vertical element slab
  std::vector<int> device_elem_z_;   // per tier
  linalg::CsrMatrix k_matrix_;       // assembled once (geometry-only)
};

struct FeaContextOptions {
  FeaOptions fea;
  /// Seed each solve from the previous temperature field. Deterministic:
  /// the warm-start state is a pure function of the solve sequence, and a
  /// geometry rebuild always falls back to the cold start.
  bool warm_start = true;

  friend bool operator==(const FeaContextOptions&,
                         const FeaContextOptions&) = default;
};

/// The immutable product of one geometry assembly: the mesh solver (with its
/// stiffness matrix) plus the prebuilt CG preconditioner, tagged with the
/// geometry they were built for. Every member is read-only after
/// construction, so one assembly may back any number of FeaContexts on any
/// number of threads concurrently — this is what the cross-job cache
/// (serve::FeaContextCache) shares between placement jobs with identical
/// stack geometry. Mutable per-flow state (warm-start field, reuse stats)
/// stays in the owning FeaContext.
struct FeaAssembly {
  FeaAssembly(const ThermalStack& stack, const ChipExtent& chip,
              const FeaOptions& options);

  const ThermalStack stack;
  const ChipExtent chip;
  const FeaSolver solver;
  /// Geometric-multigrid hierarchy over the solver's mesh (2x lateral
  /// coarsening per level, z planes kept; coarse operators re-assembled on
  /// the coarse meshes, which equals the Galerkin triple product here —
  /// conductivity varies only with z, so the coarse spaces are nested).
  /// Built only when `options` selects multigrid; null otherwise, and null
  /// when the lateral grid cannot be halved even once (odd nx/ny) — then
  /// the solve falls back to IC(0)-preconditioned CG.
  const std::shared_ptr<const linalg::MultigridHierarchy> hierarchy;
  const linalg::CgPreconditioner precond;

  /// True when Solve calls will run standalone multigrid instead of CG.
  bool UsesStandaloneMultigrid() const {
    return solver.options().solver == FeaSolverKind::kMultigrid &&
           hierarchy != nullptr;
  }
};

/// Solver reuse layer: holds a FeaAssembly (FeaSolver + prebuilt CG
/// preconditioner) and keeps it alive across every solve in a placement
/// flow — either built here or adopted from a cross-job cache. The
/// stiffness matrix and preconditioner are assembled ONCE per mesh geometry
/// (stack + chip extent + mesh options); per-solve work is only the power
/// RHS rebuild, the (warm-started) CG solve, and the cell-temperature
/// read-back. `Refresh` makes the reuse contract explicit: it is a no-op
/// while the geometry matches and a deterministic full rebuild (matrix,
/// preconditioner, warm-start state) when it does not.
class FeaContext {
 public:
  FeaContext(const ThermalStack& stack, const ChipExtent& chip,
             const FeaContextOptions& options = {});

  /// Adopts an assembly built elsewhere (the cross-job cache) instead of
  /// assembling here. Requires `options.fea` to equal the options the
  /// assembly was built with. Warm-start state starts empty — a shared
  /// assembly never leaks temperature history between jobs.
  FeaContext(std::shared_ptr<const FeaAssembly> assembly,
             const FeaContextOptions& options = {});

  /// Ensures the context matches `stack`/`chip`. Returns true if a rebuild
  /// was needed (which also drops the warm-start field — cold start next).
  bool Refresh(const ThermalStack& stack, const ChipExtent& chip);
  bool MatchesGeometry(const ThermalStack& stack, const ChipExtent& chip) const;

  /// One thermal solve through the cached matrix + preconditioner. Seeds CG
  /// from the previous solution when warm starts are enabled and a previous
  /// field exists; otherwise cold-starts from zeros.
  FeaResult Solve(const std::vector<double>& x, const std::vector<double>& y,
                  const std::vector<int>& layer,
                  const std::vector<double>& cell_power);

  /// Drops the warm-start field; the next solve cold-starts. Deterministic
  /// escape hatch for flows that want reproducible solo solves.
  void InvalidateWarmStart();

  const FeaSolver& solver() const { return assembly_->solver; }
  const linalg::CgPreconditioner& preconditioner() const {
    return assembly_->precond;
  }
  const FeaContextOptions& options() const { return options_; }
  /// The (possibly shared) assembly backing this context.
  const std::shared_ptr<const FeaAssembly>& assembly() const {
    return assembly_;
  }

  /// Cumulative reuse accounting, mirrored into the metrics registry as
  /// solver/* counters on every solve.
  struct Stats {
    long long solves = 0;        // total Solve() calls
    long long cache_hits = 0;    // solves that reused the cached assembly
    long long rebuilds = 0;      // geometry rebuilds (ctor counts as one)
    long long warm_starts = 0;   // solves seeded from a previous field
    long long iters_total = 0;   // CG iterations / V-cycles across all solves
    long long iters_saved = 0;   // vs. the first (cold) solve's iterations
    long long nonconverged = 0;  // solves that hit the iteration cap
    double solve_seconds = 0.0;  // wall time in Solve() (reporting only —
                                 // never enters the metrics registry)
  };
  const Stats& stats() const { return stats_; }

 private:
  void Rebuild(const ThermalStack& stack, const ChipExtent& chip);

  FeaContextOptions options_;
  std::shared_ptr<const FeaAssembly> assembly_;
  bool adopted_ = false;  // assembly came from outside (cache hit accounting)
  std::vector<double> last_temp_;  // previous node field (warm-start seed)
  bool have_last_ = false;
  int cold_iters_ = 0;  // iterations of the last cold solve (savings baseline)
  Stats stats_;
};

}  // namespace p3d::thermal
