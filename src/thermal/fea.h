// Finite-element steady-state thermal analysis of the 3D-IC stack.
//
// This reproduces the verification tool the paper uses to report
// temperatures ("Temperature results were calculated using Finite Element
// Analysis (FEA) [2] with the bottom of the chip (heat sink) given
// convective boundary conditions").
//
// Discretization: 8-node trilinear hexahedral elements on a tensor-product
// grid. Lateral resolution is uniform (nx x ny); the vertical grid follows
// the physical stack — several bulk elements, then one element per device
// layer and one per interlayer, so every tier has its own element row and
// cell heat loads land exactly in their device layer. Boundary conditions:
// convective (Robin) on the bottom heat-sink face with h_sink, convective
// with h_ambient on the top face, adiabatic sides. The assembled system is
// symmetric positive definite and solved with Jacobi-preconditioned CG.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/cg.h"
#include "netlist/netlist.h"
#include "thermal/resistance.h"
#include "thermal/stack.h"

namespace p3d::thermal {

struct FeaOptions {
  int nx = 24;         // lateral elements in x
  int ny = 24;         // lateral elements in y
  int bulk_elems = 4;  // vertical elements through the bulk substrate
  linalg::CgOptions cg{.max_iters = 4000, .rel_tolerance = 1e-8};
};

struct FeaResult {
  std::vector<double> cell_temp;  // deg C per cell (ambient included)
  double avg_cell_temp = 0.0;
  double max_cell_temp = 0.0;
  std::vector<double> node_temp;  // full temperature field (deg C)
  int cg_iters = 0;
  bool converged = false;
};

class FeaSolver {
 public:
  FeaSolver(const ThermalStack& stack, const ChipExtent& chip,
            const FeaOptions& options = {});

  /// Solves for the temperature field given per-cell powers (W) and cell
  /// placements (center coordinates in metres, layer indices).
  FeaResult Solve(const std::vector<double>& x, const std::vector<double>& y,
                  const std::vector<int>& layer,
                  const std::vector<double>& cell_power) const;

  // --- grid introspection (tests / reporting) ---------------------------
  int NumNodes() const;
  int NumZPlanes() const { return static_cast<int>(z_planes_.size()); }
  const std::vector<double>& ZPlanes() const { return z_planes_; }
  /// Vertical element index of device layer `t`.
  int DeviceElemZ(int t) const { return device_elem_z_[static_cast<std::size_t>(t)]; }
  /// Temperature at an arbitrary point of a solved field.
  double SampleTemp(const std::vector<double>& node_temp, double x, double y,
                    double z) const;

  /// Writes the temperature field of device layer `layer` as CSV (one row
  /// per y sample, columns over x; values in deg C including ambient),
  /// sampled on an `nx x ny` grid at the layer mid-plane. Returns false on
  /// I/O error.
  bool WriteLayerTempCsv(const std::string& path,
                         const std::vector<double>& node_temp,
                         int layer) const;

 private:
  int NodeId(int ix, int iy, int iz) const {
    return ix + (nx_ + 1) * (iy + (ny_ + 1) * iz);
  }
  /// Trilinear weights of point (x, y, z) inside element (ex, ey, ez),
  /// plus the 8 node ids. Returns false if the point is outside the grid.
  bool ElementWeights(double x, double y, double z, int nodes[8],
                      double weights[8]) const;

  ThermalStack stack_;
  ChipExtent chip_;
  FeaOptions options_;
  int nx_ = 0;
  int ny_ = 0;
  double dx_ = 0.0;
  double dy_ = 0.0;
  std::vector<double> z_planes_;     // node z coordinates, ascending from 0
  std::vector<double> elem_k_;       // conductivity per vertical element slab
  std::vector<int> device_elem_z_;   // per tier
  linalg::CsrMatrix k_matrix_;       // assembled once (geometry-only)
};

}  // namespace p3d::thermal
