#include "place/monitor.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/ring.h"
#include "obs/trace.h"
#include "place/objective.h"
#include "util/log.h"

namespace p3d::place {
namespace {

std::int64_t CounterOrZero(const char* name) {
  const obs::MetricsRegistry* m = obs::CurrentMetrics();
  return m != nullptr ? m->Counter(name) : 0;
}

}  // namespace

AnomalyMonitor::AnomalyMonitor(const AnomalyOptions& options)
    : options_(options) {}

AnomalyMonitor::AnomalyMonitor() : AnomalyMonitor(AnomalyOptions{}) {}

void AnomalyMonitor::Flag(const char* kind, const char* counter,
                          const char* phase, int round, double detail) {
  anomalies_.push_back(Anomaly{kind, phase, round, detail});
  obs::MetricAdd(counter, 1);
  obs::TraceInstant(counter);
  obs::RingNote(counter, round);
  util::LogWarn("anomaly: %s at phase %s round %d (%.4g)", kind, phase, round,
                detail);
}

void AnomalyMonitor::OnPhase(const char* phase, int round,
                             const ObjectiveEvaluator& eval,
                             const GlobalPlaceStats* /*global_stats*/) {
  const double total = eval.Total();
  totals_.push_back(total);

  // Divergence: the objective climbed well above the best value seen. Only
  // meaningful once a baseline exists, and only for a finite, positive one.
  if (has_best_ && best_total_ > 0.0 &&
      total > options_.divergence_factor * best_total_) {
    Flag("divergence", "anomaly/divergence", phase, round,
         total / best_total_);
  }
  if (!has_best_ || total < best_total_) {
    best_total_ = total;
    has_best_ = true;
  }

  // Oscillation: direction alternated across the whole window and the swing
  // is a meaningful fraction of the mean level.
  const int w = options_.oscillation_window;
  if (w >= 3 && static_cast<int>(totals_.size()) >= w) {
    const std::size_t n = totals_.size();
    bool alternating = true;
    double lo = totals_[n - static_cast<std::size_t>(w)];
    double hi = lo;
    double mean = 0.0;
    int prev_sign = 0;
    for (std::size_t i = n - static_cast<std::size_t>(w); i < n; ++i) {
      lo = std::min(lo, totals_[i]);
      hi = std::max(hi, totals_[i]);
      mean += totals_[i];
      if (i > n - static_cast<std::size_t>(w)) {
        const double d = totals_[i] - totals_[i - 1];
        const int sign = d > 0.0 ? 1 : (d < 0.0 ? -1 : 0);
        if (sign == 0 || sign == prev_sign) alternating = false;
        prev_sign = sign;
      }
    }
    mean /= static_cast<double>(w);
    const double amplitude = mean > 0.0 ? (hi - lo) / mean : 0.0;
    if (alternating && amplitude > options_.oscillation_rel_amplitude) {
      Flag("oscillation", "anomaly/oscillation", phase, round, amplitude);
    }
  }

  // CG blow-up: iterations spent since the previous boundary vs the trailing
  // mean of earlier boundary-to-boundary deltas.
  const std::int64_t cg_iters = CounterOrZero("cg/iters");
  const double cg_delta = static_cast<double>(cg_iters - last_cg_iters_);
  last_cg_iters_ = cg_iters;
  if (cg_delta > 0.0) {
    if (!cg_deltas_.empty()) {
      double mean = 0.0;
      for (const double d : cg_deltas_) mean += d;
      mean /= static_cast<double>(cg_deltas_.size());
      if (mean > 0.0 && cg_delta > options_.cg_blowup_factor * mean) {
        Flag("cg_blowup", "anomaly/cg_blowup", phase, round, cg_delta / mean);
      }
    }
    cg_deltas_.push_back(cg_delta);
  }

  // Reject spike: fraction of proposals rejected since the last boundary.
  const std::int64_t proposals = CounterOrZero("moveswap/proposals");
  const std::int64_t rejects = CounterOrZero("moveswap/commit_rejects");
  const std::int64_t dp = proposals - last_proposals_;
  const std::int64_t dr = rejects - last_rejects_;
  last_proposals_ = proposals;
  last_rejects_ = rejects;
  if (dp > 0 && dr > 0) {
    const double ratio = static_cast<double>(dr) / static_cast<double>(dp);
    if (ratio > options_.reject_spike_ratio) {
      Flag("reject_spike", "anomaly/reject_spike", phase, round, ratio);
    }
  }

  // FEA non-convergence: any thermal solve since the last boundary that hit
  // its iteration cap (deterministic fea/nonconverged counter delta). The
  // temperatures reported over that stretch are untrusted.
  const std::int64_t fea_bad = CounterOrZero("fea/nonconverged");
  const std::int64_t df = fea_bad - last_fea_nonconverged_;
  last_fea_nonconverged_ = fea_bad;
  if (df > 0) {
    Flag("fea_nonconverged", "anomaly/fea_nonconverged", phase, round,
         static_cast<double>(df));
  }
}

}  // namespace p3d::place
