#include "place/instrument.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace p3d::place {

void PhaseMetricsSampler::OnPhase(const char* phase, int round,
                                  const ObjectiveEvaluator& eval,
                                  const GlobalPlaceStats* /*global_stats*/) {
  obs::TraceInstant("placer.phase");

  const ObjectiveEvaluator::Components c = eval.GetComponents();
  obs::PhaseSample s;
  s.phase = phase;
  s.round = round;
  s.wl_m = c.wl;
  s.ilv_cost_m = c.ilv;
  s.thermal_cost_m = c.thermal;
  s.total_m = c.total;
  s.ilv = c.ilv_count;
  s.commits = eval.CommitCount() - last_commits_;
  s.t_s = timer_.Seconds();
  last_commits_ = eval.CommitCount();
  samples_.push_back(s);

  // Phase boundaries are serial contexts, so order-sensitive series are safe
  // here. t_s deliberately stays out of the registry: wall-clock values would
  // break the thread-count determinism of DumpDeterministic().
  obs::MetricAppend("phase/wl_m", c.wl);
  obs::MetricAppend("phase/ilv_cost_m", c.ilv);
  obs::MetricAppend("phase/thermal_cost_m", c.thermal);
  obs::MetricAppend("phase/total_m", c.total);
  obs::MetricAppend("phase/ilv", static_cast<double>(c.ilv_count));
  obs::MetricAppend("phase/commits", static_cast<double>(s.commits));
}

}  // namespace p3d::place
