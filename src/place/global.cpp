#include "place/global.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <string>

#include "geom/geometry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/partitioner.h"
#include "place/netweight.h"
#include "runtime/parallel.h"
#include "runtime/stream.h"
#include "util/log.h"

namespace p3d::place {

GlobalPlacer::GlobalPlacer(const ObjectiveEvaluator& eval)
    : eval_(eval),
      nl_(eval.netlist()),
      chip_(eval.chip()),
      params_(eval.params()) {
  const std::size_t nn = static_cast<std::size_t>(nl_.NumNets());
  net_hpwl_.assign(nn, 0.0);
  net_span_.assign(nn, 0);
  nw_lateral_.assign(nn, 1.0);
  nw_vertical_.assign(nn, 1.0);
  cell_power_.assign(static_cast<std::size_t>(nl_.NumCells()), 0.0);
  floors_ = ComputePekoFloors(nl_, params_.alpha_ilv);
  const double avg_area = nl_.AvgCellWidth() * nl_.AvgCellHeight();
  r_slope_z_ =
      eval.resistance_model().FitVertical(avg_area > 0 ? avg_area : 1e-12).slope;
}

int GlobalPlacer::SideOf(const geom::Region& region, int axis, int z_split,
                         double x, double y, int layer) {
  switch (axis) {
    case 0: {
      const double mid = region.rect.CenterX();
      return x < mid ? 0 : 1;
    }
    case 1: {
      const double mid = region.rect.CenterY();
      return y < mid ? 0 : 1;
    }
    default:
      return layer < z_split ? 0 : 1;
  }
}

void GlobalPlacer::RefreshLevelData() {
  // Net metrics from the provisional positions (per-net writes only, so the
  // batch parallelizes without synchronization).
  runtime::ParallelFor(pool_, 0, nl_.NumNets(), /*grain=*/512,
                       [&](std::int64_t n) {
    geom::BBox3 box;
    for (const netlist::Pin& pin : nl_.NetPins(static_cast<std::int32_t>(n))) {
      const std::size_t c = static_cast<std::size_t>(pin.cell);
      box.Add(geom::Point3{pos_.x[c] + pin.dx, pos_.y[c] + pin.dy,
                           pos_.layer[c]});
    }
    net_hpwl_[static_cast<std::size_t>(n)] = box.Hpwl();
    net_span_[static_cast<std::size_t>(n)] = box.LayerSpan();
  });

  // Cell powers with PEKO-3D floors (Eq. 10 + 13-15), and Eq. 8 weights.
  // Leakage (if enabled) joins P_j^cell, as Section 3.2 suggests.
  std::fill(cell_power_.begin(), cell_power_.end(),
            params_.electrical.leakage_per_cell_w);
  const bool thermal = params_.alpha_temp > 0.0;
  for (std::int32_t n = 0; n < nl_.NumNets(); ++n) {
    const std::size_t i = static_cast<std::size_t>(n);
    nw_lateral_[i] = 1.0;
    nw_vertical_[i] = 1.0;
    const std::int32_t driver = nl_.DriverCell(n);
    if (driver < 0) continue;
    const double wl =
        std::max(net_hpwl_[i], floors_.wl_x[i] + floors_.wl_y[i]);
    const double ilv =
        std::max(static_cast<double>(net_span_[i]), floors_.ilv[i]);
    cell_power_[static_cast<std::size_t>(driver)] +=
        eval_.SWl(n) * wl + eval_.SIlv(n) * ilv + eval_.SPinTerm(n);
    if (thermal) {
      const std::size_t d = static_cast<std::size_t>(driver);
      const double area = nl_.cell(driver).Area();
      const double r = eval_.resistance_model().CellToAmbient(
          pos_.x[d], pos_.y[d], pos_.layer[d], area > 0 ? area : 1e-12);
      nw_lateral_[i] = 1.0 + params_.alpha_temp * r * eval_.SWl(n);
      if (params_.alpha_ilv > 0.0) {
        nw_vertical_[i] =
            1.0 + params_.alpha_temp * r * eval_.SIlv(n) / params_.alpha_ilv;
      }
    }
  }
}

void GlobalPlacer::FinalizeRegion(const Task& task) {
  const geom::Region& rg = task.region;
  const int k = static_cast<int>(task.cells.size());
  if (k == 0) return;
  const int ncols = std::max(1, static_cast<int>(std::ceil(std::sqrt(k))));
  const int nrows = (k + ncols - 1) / ncols;
  const int layers = rg.NumLayers();
  for (int i = 0; i < k; ++i) {
    const std::size_t c = static_cast<std::size_t>(task.cells[static_cast<std::size_t>(i)]);
    const int col = i % ncols;
    const int row = i / ncols;
    pos_.x[c] = rg.rect.x_lo + (col + 0.5) * rg.rect.Width() / ncols;
    pos_.y[c] = rg.rect.y_lo + (row + 0.5) * rg.rect.Height() / nrows;
    // Multi-layer leftover regions (alpha_ILV ~ 0 never picks z cuts):
    // round-robin the layers, treating them as free extra area.
    pos_.layer[c] = rg.layer_lo + (i % layers);
  }
}

void GlobalPlacer::SplitTask(const Task& task, std::uint64_t seed,
                             Scratch* scratch, Task out[2]) {
  const geom::Region& rg = task.region;
  const double w = rg.rect.Width();
  const double h = rg.rect.Height();
  const int layers = rg.NumLayers();
  // Weighted depth = depth * alpha_ILV / d_layer = #layers * alpha_ILV.
  const double weighted_depth =
      layers > 1 ? layers * params_.alpha_ilv : -1.0;

  int axis = 0;
  double best = w;
  if (h > best) {
    best = h;
    axis = 1;
  }
  if (weighted_depth > best) {
    axis = 2;
  }

  const int m_lo = layers / 2;                  // layers in the lower part
  const int z_split = rg.layer_lo + m_lo;       // first layer of the upper part

  // ----- build the region hypergraph ------------------------------------
  partition::Hypergraph hg;
  auto& local_of = scratch->local_of;  // sized once per worker; reset per use
  for (const std::int32_t c : task.cells) {
    local_of[static_cast<std::size_t>(c)] =
        hg.AddVertex(nl_.cell(c).Area(), partition::FixedSide::kFree);
  }
  const std::int32_t t0 =
      hg.AddVertex(0.0, partition::FixedSide::kPart0);  // side-0 terminal
  const std::int32_t t1 =
      hg.AddVertex(0.0, partition::FixedSide::kPart1);  // side-1 terminal

  ++scratch->stamp;
  std::vector<std::int32_t> verts;
  for (const std::int32_t cell : task.cells) {
    for (const std::int32_t p : nl_.CellPinIds(cell)) {
      const std::int32_t n = nl_.pin(p).net;
      const std::size_t ni = static_cast<std::size_t>(n);
      if (scratch->net_stamp[ni] == scratch->stamp) continue;
      scratch->net_stamp[ni] = scratch->stamp;
      verts.clear();
      bool ext0 = false, ext1 = false;
      for (const netlist::Pin& pin : nl_.NetPins(n)) {
        const std::int32_t lid = local_of[static_cast<std::size_t>(pin.cell)];
        if (lid >= 0) {
          verts.push_back(lid);
        } else {
          // External pins project from the start-of-level snapshot: sibling
          // tasks update pos_ concurrently, and reading their provisional
          // writes would make the cut depend on task ordering.
          const std::size_t c = static_cast<std::size_t>(pin.cell);
          const int side = SideOf(rg, axis, z_split, pos_level_.x[c] + pin.dx,
                                  pos_level_.y[c] + pin.dy, pos_level_.layer[c]);
          (side == 0 ? ext0 : ext1) = true;
        }
      }
      if (ext0) verts.push_back(t0);
      if (ext1) verts.push_back(t1);
      if (verts.size() < 2) continue;
      const double weight = axis == 2 ? nw_vertical_[ni] : nw_lateral_[ni];
      hg.AddNet(weight, verts);
    }
  }

  // Thermal resistance reduction nets (Section 3.2) pull cells toward the
  // heat sink during z cuts. Weight expressed in the same units as
  // nw_vertical (objective cost per cut divided by alpha_ILV).
  if (axis == 2 && params_.alpha_temp > 0.0 && params_.alpha_ilv > 0.0 &&
      r_slope_z_ > 0.0) {
    const double dz = m_lo * params_.stack.LayerPitch();
    for (const std::int32_t c : task.cells) {
      const double wj = params_.alpha_temp *
                        cell_power_[static_cast<std::size_t>(c)] * r_slope_z_ *
                        dz / params_.alpha_ilv;
      if (wj <= 0.0) continue;
      const std::int32_t pins[2] = {local_of[static_cast<std::size_t>(c)], t0};
      hg.AddNet(wj, pins);
    }
  }
  hg.Finalize();

  // ----- partition ----------------------------------------------------------
  double used = 0.0;
  for (const std::int32_t c : task.cells) used += nl_.cell(c).Area();
  const double capacity = w * h * chip_.RowFraction() * layers;
  const double slack = capacity > 0.0 ? std::max(0.0, 1.0 - used / capacity) : 0.0;
  partition::PartitionOptions popt;
  // z-cuts get a tighter tolerance than lateral cuts: a lateral cut line is
  // repositioned afterwards to match the actual area split, but layer counts
  // are discrete, so z imbalance compounds into whole-layer overflow that
  // coarse legalization can only fix by paying interlayer vias. The cap
  // stays small even on dies with generous slack — the thermal-resistance-
  // reduction pull fills the lower part to whatever the bound allows.
  popt.tolerance =
      axis == 2
          ? std::clamp(0.25 * slack, 0.01, 0.03)
          : std::clamp(0.5 * slack, params_.min_partition_tolerance, 0.45);
  popt.target_fraction =
      axis == 2 ? static_cast<double>(m_lo) / layers : 0.5;
  popt.num_starts = params_.partition_starts;
  popt.fm_passes = params_.partition_fm_passes;
  popt.seed = seed;
  popt.threads = params_.threads;
  const partition::PartitionResult pr = partition::Bipartition(hg, popt);
  ++scratch->stats.partitions;
  if (!pr.feasible) ++scratch->stats.infeasible_partitions;
  scratch->stats.partitioned_cells += static_cast<long long>(task.cells.size());

  // ----- split geometry and cells ------------------------------------------
  Task& lo_task = out[0];
  Task& hi_task = out[1];
  lo_task.cells.clear();
  hi_task.cells.clear();
  double area0 = 0.0, area1 = 0.0;
  for (const std::int32_t c : task.cells) {
    const std::int32_t lid = local_of[static_cast<std::size_t>(c)];
    if (pr.side[static_cast<std::size_t>(lid)] == 0) {
      lo_task.cells.push_back(c);
      area0 += nl_.cell(c).Area();
    } else {
      hi_task.cells.push_back(c);
      area1 += nl_.cell(c).Area();
    }
  }
  // Degenerate partitions (everything on one side) fall back to a halved
  // region to guarantee progress.
  if (lo_task.cells.empty() || hi_task.cells.empty()) {
    const std::size_t half = task.cells.size() / 2;
    lo_task.cells.assign(task.cells.begin(),
                         task.cells.begin() + static_cast<std::ptrdiff_t>(half));
    hi_task.cells.assign(task.cells.begin() + static_cast<std::ptrdiff_t>(half),
                         task.cells.end());
    area0 = area1 = std::max(used / 2.0, 1e-30);
  }

  lo_task.region = rg;
  hi_task.region = rg;
  if (axis == 2) {
    lo_task.region.layer_hi = z_split - 1;
    hi_task.region.layer_lo = z_split;
  } else {
    const double frac = std::clamp(area0 / std::max(area0 + area1, 1e-30),
                                   0.05, 0.95);
    if (axis == 0) {
      const double cut = rg.rect.x_lo + frac * w;
      lo_task.region.rect.x_hi = cut;
      hi_task.region.rect.x_lo = cut;
    } else {
      const double cut = rg.rect.y_lo + frac * h;
      lo_task.region.rect.y_hi = cut;
      hi_task.region.rect.y_lo = cut;
    }
  }

  // Provisional positions: sub-region centers, middle layer.
  for (Task* t : {&lo_task, &hi_task}) {
    const double cx = t->region.rect.CenterX();
    const double cy = t->region.rect.CenterY();
    const int cl = (t->region.layer_lo + t->region.layer_hi) / 2;
    for (const std::int32_t c : t->cells) {
      const std::size_t i = static_cast<std::size_t>(c);
      pos_.x[i] = cx;
      pos_.y[i] = cy;
      pos_.layer[i] = cl;
    }
  }
  // Reset the scratch map for the worker's next task.
  for (const std::int32_t c : task.cells) {
    local_of[static_cast<std::size_t>(c)] = -1;
  }
}

util::StatusOr<Placement> GlobalPlacer::Run(const Placement& initial) {
  if (initial.size() != 0 &&
      initial.size() != static_cast<std::size_t>(nl_.NumCells())) {
    return util::InvalidArgumentError(
        "GlobalPlacer::Run: initial placement has " +
        std::to_string(initial.size()) + " cells, netlist has " +
        std::to_string(nl_.NumCells()));
  }
  pos_ = initial;
  if (pos_.size() != static_cast<std::size_t>(nl_.NumCells())) {
    pos_.Resize(static_cast<std::size_t>(nl_.NumCells()));
  }
  stats_ = {};
  stats_.backend = name();
  pool_ = runtime::SharedPool(params_.threads);
  const int slots = pool_ != nullptr ? pool_->NumThreads() : 1;
  std::vector<Scratch> scratch(static_cast<std::size_t>(slots));
  for (Scratch& s : scratch) {
    s.local_of.assign(static_cast<std::size_t>(nl_.NumCells()), -1);
    s.net_stamp.assign(static_cast<std::size_t>(nl_.NumNets()), 0);
  }

  Task root;
  root.region = chip_.FullRegion();
  const double cx = chip_.width() / 2.0;
  const double cy = chip_.height() / 2.0;
  const int cl = chip_.num_layers() / 2;
  for (std::int32_t c = 0; c < nl_.NumCells(); ++c) {
    if (nl_.cell(c).fixed) continue;
    const std::size_t i = static_cast<std::size_t>(c);
    pos_.x[i] = cx;
    pos_.y[i] = cy;
    pos_.layer[i] = cl;
    root.cells.push_back(c);
  }

  std::vector<Task> level;
  level.push_back(std::move(root));
  std::vector<Task> next;
  // Sequence number of the first task of the current level, across the whole
  // run; task seeds derive from it, so they depend only on (params.seed,
  // level structure), never on scheduling.
  std::uint64_t task_base = 0;
  while (!level.empty()) {
    obs::TraceScope trace_level("global.level");
    obs::TraceCounter("global.tasks", static_cast<std::int64_t>(level.size()));
    ++stats_.bisection.levels;
    RefreshLevelData();
    pos_level_ = pos_;  // terminal-propagation snapshot for this level
    const std::int64_t num_tasks = static_cast<std::int64_t>(level.size());
    std::vector<std::array<Task, 2>> children(level.size());
    std::vector<char> did_split(level.size(), 0);
    runtime::ParallelForWorker(
        pool_, 0, num_tasks, [&](std::int64_t i, int slot) {
          const Task& task = level[static_cast<std::size_t>(i)];
          if (static_cast<int>(task.cells.size()) <=
              params_.region_stop_cells) {
            FinalizeRegion(task);
          } else {
            SplitTask(task,
                      runtime::DeriveSeed(params_.seed,
                                          task_base +
                                              static_cast<std::uint64_t>(i)),
                      &scratch[static_cast<std::size_t>(slot)],
                      children[static_cast<std::size_t>(i)].data());
            did_split[static_cast<std::size_t>(i)] = 1;
          }
        });
    task_base += static_cast<std::uint64_t>(num_tasks);
    // Children enter the next level in task order, keeping the level
    // structure (and with it every derived seed) deterministic.
    next.clear();
    for (std::size_t i = 0; i < level.size(); ++i) {
      if (!did_split[i]) continue;
      next.push_back(std::move(children[i][0]));
      next.push_back(std::move(children[i][1]));
    }
    level.swap(next);
  }
  for (const Scratch& s : scratch) {
    stats_.bisection.partitions += s.stats.partitions;
    stats_.bisection.infeasible_partitions += s.stats.infeasible_partitions;
    stats_.bisection.partitioned_cells += s.stats.partitioned_cells;
  }
  stats_.iterations = stats_.bisection.levels;
  stats_.cells_placed = static_cast<long long>(nl_.NumMovableCells());
  obs::MetricAdd("global/levels", stats_.bisection.levels);
  obs::MetricAdd("global/partitions", stats_.bisection.partitions);
  obs::MetricAdd("global/infeasible_partitions",
                 stats_.bisection.infeasible_partitions);
  obs::MetricAdd("global/partitioned_cells", stats_.bisection.partitioned_cells);
  util::LogDebug("global: %d levels, %d partitions", stats_.bisection.levels,
                 stats_.bisection.partitions);
  return pos_;
}

}  // namespace p3d::place
