// Die floorplan: identical standard-cell row grids on every active layer.
//
// Dimensions are derived from the netlist's movable area and the paper's
// Table 2 floorplan parameters: 5% whitespace inside rows and 25% inter-row
// spacing, identical square-ish outline on all layers.
#pragma once

#include <vector>

#include "geom/geometry.h"
#include "netlist/netlist.h"
#include "util/status.h"

namespace p3d::place {

class Chip {
 public:
  /// Builds a square die large enough for `nl`'s movable cells spread over
  /// `num_layers` layers with the given whitespace and inter-row spacing.
  /// Errors (rather than asserting) on an unfinalized netlist or
  /// out-of-range floorplan parameters; dereference directly (`*Chip::Build(
  /// ...)`) at call sites with known-good inputs.
  static util::StatusOr<Chip> Build(const netlist::Netlist& nl, int num_layers,
                                    double whitespace, double inter_row_space);

  double width() const { return width_; }
  double height() const { return height_; }
  int num_layers() const { return num_layers_; }
  int num_rows() const { return num_rows_; }
  double row_height() const { return row_height_; }
  double row_pitch() const { return row_pitch_; }

  /// Bottom y of row `r` (rows are identical across layers).
  double RowBottomY(int r) const { return r * row_pitch_; }
  /// Center y of row `r`.
  double RowCenterY(int r) const { return RowBottomY(r) + 0.5 * row_height_; }
  /// Row whose band contains y (clamped to valid rows).
  int NearestRow(double y) const;

  /// Placeable (row) area on one layer.
  double RowAreaPerLayer() const { return num_rows_ * row_height_ * width_; }
  /// Fraction of die area inside rows, 1 / (1 + inter_row_space).
  double RowFraction() const { return row_height_ / row_pitch_; }

  /// Full-die lateral rectangle.
  geom::Rect Outline() const { return {0.0, 0.0, width_, height_}; }
  /// Full 3D placement region.
  geom::Region FullRegion() const {
    return {Outline(), 0, num_layers_ - 1};
  }

 private:
  double width_ = 0.0;
  double height_ = 0.0;
  int num_layers_ = 1;
  int num_rows_ = 0;
  double row_height_ = 0.0;
  double row_pitch_ = 0.0;
};

/// A 3D placement: cell-center coordinates plus layer assignment, indexed by
/// cell id. The single currency every placement phase trades in.
struct Placement {
  std::vector<double> x;
  std::vector<double> y;
  std::vector<int> layer;

  void Resize(std::size_t n) {
    x.assign(n, 0.0);
    y.assign(n, 0.0);
    layer.assign(n, 0);
  }
  std::size_t size() const { return x.size(); }
};

}  // namespace p3d::place
