// Global placement by 3D recursive bisection (paper Section 3).
//
// Regions carry a subset of cells and a physical sub-volume of the die.
// Each bisection:
//   1. picks the cut direction orthogonal to the largest of region width,
//      height, and *weighted depth* (= #layers * alpha_ILV, the paper's
//      depth * alpha_ILV / d_layer), so connectivity is minimized in the
//      costliest direction;
//   2. builds the induced hypergraph with terminal propagation [11]
//      (external pins become zero-weight fixed vertices on the side of the
//      provisional cut they fall on);
//   3. weights nets with the thermal-aware weights of Eq. 8 — lateral
//      weights for x/y cuts, vertical weights for z cuts — refreshed every
//      bisection level from the provisional positions;
//   4. for z cuts, adds one thermal-resistance-reduction net per cell
//      (Section 3.2): a 2-pin net to the heat-sink-side terminal, weighted
//      by alpha_TEMP * P_j * Rslope_z * dz (Eq. 12), with P_j floored by the
//      PEKO-3D optima (Eq. 13-15);
//   5. partitions with whitespace-derived tolerance and positions the cut
//      line by the actual cell-area split.
//
// Regions are processed breadth-first; the tasks of one level are mutually
// independent (terminal propagation reads a start-of-level position
// snapshot) and run as one deterministic parallel batch on the runtime
// thread pool, each with an RNG seed derived from its task index. Recursion
// stops at a handful of cells, which are spread in a mini-grid for coarse
// legalization to refine.
#pragma once

#include <cstdint>
#include <vector>

#include "place/global_backend.h"
#include "place/netweight.h"
#include "place/objective.h"
#include "runtime/thread_pool.h"

namespace p3d::place {

class GlobalPlacer final : public GlobalPlacerBackend {
 public:
  /// The evaluator supplies netlist, chip, params, and the Eq. 8 power-rate
  /// coefficients; its placement state is not modified.
  explicit GlobalPlacer(const ObjectiveEvaluator& eval);

  const char* name() const override { return "bisection"; }

  /// Runs recursive bisection. `initial` provides positions for fixed cells
  /// (movable cells are re-initialized to the chip center, as in the paper).
  util::StatusOr<Placement> Run(const Placement& initial) override;

  const GlobalPlaceStats& stats() const override { return stats_; }

 private:
  struct Task {
    geom::Region region;
    std::vector<std::int32_t> cells;
  };

  /// Per-worker scratch for the parallel per-level task batch. Each worker
  /// slot owns one instance, so SplitTask needs no locking.
  struct Scratch {
    std::vector<std::int32_t> local_of;    // cell -> region-local vertex id
    std::vector<std::uint32_t> net_stamp;  // per-task net deduplication
    std::uint32_t stamp = 0;
    BisectionDetail stats;  // partition counters, merged after the run
  };

  /// Refreshes per-level data: net metrics from provisional positions, cell
  /// powers with PEKO floors, and Eq. 8 net weights.
  void RefreshLevelData();

  /// Splits one region task into out[0] (low side) and out[1] (high side).
  /// Reads external-pin positions from the start-of-level snapshot
  /// (pos_level_) and writes provisional positions only for the task's own
  /// cells, so tasks of one level are independent: they may run in any
  /// order or concurrently with identical results. `seed` is the task's
  /// derived partitioning seed.
  void SplitTask(const Task& task, std::uint64_t seed, Scratch* scratch,
                 Task out[2]);
  void FinalizeRegion(const Task& task);

  /// Side (0/1) a point falls on for a cut of `region` along `axis`
  /// (0 = x, 1 = y, 2 = z at layer boundary `z_split`).
  static int SideOf(const geom::Region& region, int axis, int z_split,
                    double x, double y, int layer);

  const ObjectiveEvaluator& eval_;
  const netlist::Netlist& nl_;
  Chip chip_;
  PlacerParams params_;
  Placement pos_;
  // Positions frozen at the start of the current level; terminal propagation
  // reads external pins from here while tasks update pos_ concurrently.
  Placement pos_level_;

  // Per-level caches.
  std::vector<double> net_hpwl_;
  std::vector<int> net_span_;
  std::vector<double> nw_lateral_;
  std::vector<double> nw_vertical_;
  std::vector<double> cell_power_;
  PekoFloors floors_;
  double r_slope_z_ = 0.0;

  runtime::ThreadPool* pool_ = nullptr;  // fetched per Run from the knob
  GlobalPlaceStats stats_;
};

}  // namespace p3d::place
