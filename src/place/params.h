// All tunable parameters of the 3D placer.
//
// Defaults reproduce the paper's Table 2 (MIT-LL 0.18um 3D FD-SOI derived
// constants) plus the effort knobs its Section 7 ablation varies.
#pragma once

#include <cmath>
#include <cstdint>

#include "thermal/power.h"
#include "thermal/stack.h"

namespace p3d::place {

/// How much of the src/check audit subsystem runs during a flow (see
/// DESIGN.md "Placement audit subsystem"). The knob lives here so the placer
/// can gate its phase hooks, but the checks themselves are implemented by
/// check::PlacementAuditor, which callers attach via Placer3D::AddPhaseObserver.
enum class AuditLevel {
  kOff,       // no phase hooks fire
  kPhase,     // legality + conservation + objective recompute per phase
  kParanoid,  // kPhase plus commit recording and per-op delta replay
};

// ----- epsilon policy of the move engines (DESIGN.md §5) --------------------
//
// Every coarse/detailed move engine (moveswap, shift, rowopt, legalize)
// shares these thresholds so a candidate delta is treated identically no
// matter which engine evaluates it. The three tiers:
//
//   kStrictImprovementEps  A candidate is accepted only if it improves the
//                          objective by MORE than this (delta <
//                          -kStrictImprovementEps). Zero and float-noise
//                          deltas are rejected everywhere — an engine must
//                          never churn on a dead-zone delta another engine
//                          would refuse.
//   kTieBreakEps           A challenger replaces the incumbent candidate only
//                          if it is better by MORE than this; otherwise the
//                          earlier candidate in the fixed evaluation order
//                          wins. Candidate order is deterministic, so ties
//                          resolve identically at any thread count.
//   kGeomEps               Coordinate-space comparisons (did a cell actually
//                          move; does a width fit a span). Absolute, in
//                          metres — die extents are ~1e-3 m, so 1e-15 is far
//                          below one float ulp of any real coordinate.
//
// Historical note: before the unification moveswap used -1e-18, shift 1e-18,
// and rowopt mixed 1e-30 / 1e-15, so a delta of e.g. -1e-20 was "an
// improvement" to rowopt but "noise" to moveswap.
inline constexpr double kStrictImprovementEps = 1e-18;
inline constexpr double kTieBreakEps = 1e-18;
inline constexpr double kGeomEps = 1e-15;

/// Relative tolerance of bin-occupancy capacity checks, applied to the bin
/// capacity. Bin areas are float-accumulated as cells move; the tolerance
/// keeps an accept/reject decision from flipping on accumulation-order noise
/// (see BinGrid::FitsWithSlack / ResyncAreas).
inline constexpr double kBinAreaRelTol = 1e-9;

/// The shared strict-improvement predicate: true when `delta` improves the
/// objective by more than kStrictImprovementEps.
inline constexpr bool StrictlyImproves(double delta) {
  return delta < -kStrictImprovementEps;
}

/// The shared incumbent-replacement predicate: true when `delta` beats the
/// incumbent best by more than kTieBreakEps (earlier candidate wins ties).
inline constexpr bool BeatsIncumbent(double delta, double incumbent) {
  return delta < incumbent - kTieBreakEps;
}

/// Which engine runs the global-placement phase. Backends are constructed by
/// MakeGlobalPlacerBackend (place/global_backend.h); both honor the same
/// determinism contract (byte-identical placements at any thread count).
enum class GlobalBackend {
  kBisection,  // 3D recursive bisection (paper Section 3)
  kAnalytic,   // quadratic B2B analytical placement + 3D density spreading
};

struct PlacerParams {
  // ----- objective coefficients (Eq. 3) ---------------------------------
  // Interlayer-via coefficient alpha_ILV, in metres of equivalent
  // wirelength per via. The paper sweeps 5e-9 .. 5.2e-3, centred on the
  // average cell dimension (~1e-5 m).
  double alpha_ilv = 1e-5;
  // Thermal coefficient alpha_TEMP, in metres of equivalent wirelength per
  // (kelvin * watt / watt) — the paper sweeps 0 .. 5.2e-3.
  double alpha_temp = 0.0;

  // ----- die / floorplan (Table 2) ----------------------------------------
  int num_layers = 4;
  double whitespace = 0.05;        // fraction of row capacity left free
  double inter_row_space = 0.25;   // row pitch = row height * (1 + this)

  // ----- physical models ---------------------------------------------------
  thermal::ThermalStack stack{};          // vertical stack; num_layers synced
  thermal::ElectricalParams electrical{}; // Eq. 4-5 constants

  // ----- global placement ---------------------------------------------------
  GlobalBackend global_backend = GlobalBackend::kBisection;
  int partition_starts = 1;    // hMetis-style random starts (Section 7 knob)
  int partition_fm_passes = 6;
  int region_stop_cells = 4;   // recursion stops below this many cells
  double min_partition_tolerance = 0.03;
  std::uint64_t seed = 12345;

  // ----- analytic global backend (GlobalBackend::kAnalytic) -----------------
  // Outer iterations: each re-linearizes the B2B net models, refreshes the
  // per-layer density spreading targets, and solves one quadratic system per
  // axis (x, y, and z for multi-layer dies) with the src/linalg CG.
  int analytic_iterations = 40;
  int analytic_cg_max_iters = 150;      // per-axis CG iteration cap
  // Density-anchor schedule: anchor weight starts at `base` (relative to the
  // mean wirelength-matrix diagonal) and multiplies by `growth` each
  // iteration, trading wirelength for spreading as ePlace's penalty ramp does.
  double analytic_anchor_base = 0.02;
  double analytic_anchor_growth = 1.12;

  // ----- parallel runtime ----------------------------------------------------
  // Worker threads for multi-start partitioning, per-level bisection
  // batches, and the FEA conjugate-gradient solve (0 = all hardware
  // threads). Determinism contract: same seed + same inputs produce an
  // identical placement for ANY value of this knob — see src/runtime and
  // DESIGN.md "Parallel runtime & determinism policy".
  int threads = 1;

  // ----- coarse legalization --------------------------------------------------
  int shift_max_iters = 40;
  double shift_target_density = 1.05;  // stop when max bin density is below
  double shift_a_lower = 0.8;          // Eq. 16 curve parameters
  double shift_a_upper = 0.5;
  double shift_b = 1.0;
  int moveswap_rounds = 1;
  int target_region_bins = 27;  // global move/swap target region size knob

  // Windowed parallel schedule of the coarse-legalization move engines
  // (moveswap + shift): the bin grid is tiled into legalize_window_bins x
  // legalize_window_bins windows, 4-colored by window parity; windows of one
  // color propose moves in parallel against a frozen snapshot and the
  // proposals commit serially in fixed window order, so the placement is
  // byte-identical for any thread count (DESIGN.md §5).
  int legalize_threads = 0;      // worker threads for coarse legalization
                                 // (0 = inherit `threads`)
  int legalize_window_bins = 8;  // window edge length, in bins (min 2)

  // ----- detailed legalization ---------------------------------------------
  int legalize_max_radius_rows = 64;  // search radius cap, in rows
  int legalization_repeats = 1;       // coarse+detailed repetitions knob
  // Row-block window height for the parallel detailed-legalization and
  // rowopt schedules: row indices are tiled into blocks of this many rows
  // (all layers), 2-colored by block parity, and run under the same
  // propose/commit protocol as the coarse engines — placements stay
  // byte-identical for any thread count (DESIGN.md §5).
  int legalize_window_rows = 32;

  // ----- evaluator caching ---------------------------------------------------
  // Maintain per-net bounding boxes with boundary-pin counts so candidate
  // move/swap evaluations update only the moved pins (O(1) per pin) instead
  // of re-scanning every pin of every incident net. The incremental bounds
  // are exact (min/max arithmetic, never accumulated), so the placement is
  // byte-identical with the kernel on or off; the off setting exists as a
  // cross-check for tests and triage.
  bool incremental_net_boxes = true;

  // ----- verification ---------------------------------------------------------
  AuditLevel audit_level = AuditLevel::kOff;
  // The evaluator's running totals are incrementally maintained; after this
  // many accepted moves/swaps they are resummed from the (exact) per-net and
  // per-cell caches so float accumulation error stays bounded regardless of
  // flow length. 0 disables resync.
  int objective_resync_interval = 4096;

  // ----- reporting -----------------------------------------------------------
  int fea_nx = 24;
  int fea_ny = 24;
  // Re-evaluate thermal FEA after every legalization pass — each move/swap
  // round and the shifting pass of coarse legalization, plus detailed and
  // refine — instead of only at phase boundaries (RunOptions::fea_per_phase).
  // Observational: temperatures feed telemetry and reporting, never placement
  // decisions, so placements stay byte-identical with the knob on or off.
  // Meant to be paired with the multigrid thermal solver
  // (linalg::PreconditionerKind::kMultigrid via RunOptions::preconditioner,
  // or thermal::FeaOptions::solver), which makes per-pass solves affordable.
  bool fea_per_pass = false;

  /// Copies num_layers into the thermal stack (kept in one place so callers
  /// can't desynchronize them).
  void SyncStack() { stack.num_layers = num_layers; }
};

/// Compensates the wire capacitance for benchmark circuits generated at a
/// fraction `circuit_scale` of their published size. Shrinking a circuit by
/// s shrinks its die by ~sqrt(s) and average net lengths with it, while the
/// per-via capacitance (fixed via geometry) does not shrink — so at small
/// scales via capacitance would spuriously dominate net power and mask the
/// wire-centric thermal tradeoff the paper measures. Raising c_per_wl by
/// s^-0.75 (geometric sqrt(s) plus the sub-linear Rent-length growth of the
/// synthetic workloads) restores the paper's wire-to-via capacitance ratio.
/// No-op at scale >= 1. See DESIGN.md, substitution notes.
inline void CompensateWireCapForScale(PlacerParams* params,
                                      double circuit_scale) {
  if (circuit_scale > 0.0 && circuit_scale < 1.0) {
    params->electrical.c_per_wl /= std::pow(circuit_scale, 0.75);
  }
}

}  // namespace p3d::place
