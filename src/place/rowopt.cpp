#include "place/rowopt.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "place/netweight.h"
#include "util/log.h"

namespace p3d::place {

RowRefiner::RowRefiner(ObjectiveEvaluator& eval, std::uint64_t seed)
    : eval_(eval), chip_(eval.chip()), rng_(seed) {}

void RowRefiner::BuildRows() {
  rows_.assign(static_cast<std::size_t>(chip_.num_layers() * chip_.num_rows()),
               {});
  const netlist::Netlist& nl = eval_.netlist();
  const Placement& p = eval_.placement();
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    const int layer = std::clamp(p.layer[i], 0, chip_.num_layers() - 1);
    const double w = nl.cell(c).width;
    const double xlo = p.x[i] - w / 2.0;
    const double xhi = p.x[i] + w / 2.0;
    if (nl.cell(c).fixed) {
      // Fixed cells participate as immovable entries (cell id < 0 marker is
      // unnecessary: passes check the fixed flag) — but only where they
      // physically block a row. Pads ring the die outside its outline;
      // snapping them to the nearest row would plant phantom blockers that
      // overlap real cells and break the model's sorted-disjoint invariant.
      const double h = nl.cell(c).height;
      const double ylo = p.y[i] - h / 2.0;
      const double yhi = p.y[i] + h / 2.0;
      if (xhi <= 0.0 || xlo >= chip_.width() || yhi <= 0.0 ||
          ylo >= chip_.height()) {
        continue;  // entirely outside the die
      }
      for (int r = 0; r < chip_.num_rows(); ++r) {
        const double band_lo = chip_.RowBottomY(r);
        if (ylo < band_lo + chip_.row_height() && yhi > band_lo) {
          RowAt(layer, r).push_back({c, xlo, xhi});
        }
      }
      continue;
    }
    RowAt(layer, chip_.NearestRow(p.y[i])).push_back({c, xlo, xhi});
  }
  for (auto& row : rows_) {
    std::sort(row.begin(), row.end(),
              [](const Entry& a, const Entry& b) { return a.lo < b.lo; });
  }
}

void RowRefiner::SlidePass(RowOptStats* stats) {
  const netlist::Netlist& nl = eval_.netlist();
  for (auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      Entry& e = row[i];
      if (nl.cell(e.cell).fixed) continue;
      const double w = e.hi - e.lo;
      // Neighbours can be fixed pads ringing the die outside [0, W]; the
      // free span a movable cell may occupy is the gap intersected with the
      // die extent.
      const double span_lo =
          std::max(0.0, i == 0 ? 0.0 : row[i - 1].hi);
      const double span_hi = std::min(
          chip_.width(), i + 1 < row.size() ? row[i + 1].lo : chip_.width());
      if (span_hi - span_lo < w - kGeomEps) continue;  // should not happen
      double ox = 0.0, oy = 0.0;
      OptimalLateralPosition(eval_, e.cell, &ox, &oy);
      const double target =
          std::clamp(ox, span_lo + w / 2.0, span_hi - w / 2.0);
      const Placement& p = eval_.placement();
      const std::size_t ci = static_cast<std::size_t>(e.cell);
      if (std::abs(target - p.x[ci]) < kGeomEps) continue;
      const double delta = eval_.MoveDelta(e.cell, target, p.y[ci], p.layer[ci]);
      if (StrictlyImproves(delta)) {
        eval_.CommitMove(e.cell, target, p.y[ci], p.layer[ci]);
        e.lo = target - w / 2.0;
        e.hi = target + w / 2.0;
        stats->slides += 1;
        stats->gain += -delta;
      }
    }
  }
}

void RowRefiner::ReorderPass(RowOptStats* stats) {
  const netlist::Netlist& nl = eval_.netlist();
  for (auto& row : rows_) {
    for (std::size_t i = 0; i + 1 < row.size(); ++i) {
      Entry& a = row[i];
      Entry& b = row[i + 1];
      if (nl.cell(a.cell).fixed || nl.cell(b.cell).fixed) continue;
      const double wa = a.hi - a.lo;
      const double wb = b.hi - b.lo;
      const double gap = b.lo - a.hi;
      // Exchange order, repacked inside [a.lo, b.hi]: b first, then the gap,
      // then a. Total extent is preserved, so legality is guaranteed.
      const double b_new_c = a.lo + wb / 2.0;
      const double a_new_c = a.lo + wb + gap + wa / 2.0;
      const Placement& p = eval_.placement();
      const std::size_t ai = static_cast<std::size_t>(a.cell);
      const std::size_t bi = static_cast<std::size_t>(b.cell);
      const double a_old_x = p.x[ai];

      const double d1 = eval_.MoveDelta(a.cell, a_new_c, p.y[ai], p.layer[ai]);
      eval_.CommitMove(a.cell, a_new_c, p.y[ai], p.layer[ai]);
      const double d2 = eval_.MoveDelta(b.cell, b_new_c, p.y[bi], p.layer[bi]);
      if (StrictlyImproves(d1 + d2)) {
        eval_.CommitMove(b.cell, b_new_c, p.y[bi], p.layer[bi]);
        a.lo = a_new_c - wa / 2.0;
        a.hi = a_new_c + wa / 2.0;
        b.lo = b_new_c - wb / 2.0;
        b.hi = b_new_c + wb / 2.0;
        std::swap(row[i], row[i + 1]);  // keep x-sorted
        stats->reorders += 1;
        stats->gain += -(d1 + d2);
      } else {
        eval_.CommitMove(a.cell, a_old_x, p.y[ai], p.layer[ai]);  // rollback
      }
    }
  }
}

void RowRefiner::LayerSwapPass(RowOptStats* stats) {
  const netlist::Netlist& nl = eval_.netlist();
  for (int layer = 0; layer + 1 < chip_.num_layers(); ++layer) {
    for (int r = 0; r < chip_.num_rows(); ++r) {
      auto& row_a = RowAt(layer, r);
      auto& row_b = RowAt(layer + 1, r);
      if (row_b.empty()) continue;
      for (std::size_t ia = 0; ia < row_a.size(); ++ia) {
        Entry& a = row_a[ia];
        if (nl.cell(a.cell).fixed) continue;
        // Nearest entry in the row one layer up.
        const double ax = (a.lo + a.hi) / 2.0;
        const auto it = std::lower_bound(
            row_b.begin(), row_b.end(), ax,
            [](const Entry& e, double x) { return (e.lo + e.hi) / 2.0 < x; });
        std::size_t ib = static_cast<std::size_t>(it - row_b.begin());
        if (ib == row_b.size()) --ib;
        if (ib > 0) {
          const double c_prev = (row_b[ib - 1].lo + row_b[ib - 1].hi) / 2.0;
          const double c_here = (row_b[ib].lo + row_b[ib].hi) / 2.0;
          if (std::abs(c_prev - ax) < std::abs(c_here - ax)) --ib;
        }
        Entry& b = row_b[ib];
        if (nl.cell(b.cell).fixed) continue;
        const double wa = a.hi - a.lo;
        const double wb = b.hi - b.lo;
        // b must fit in a's free span and vice versa. As in SlidePass, the
        // spans are intersected with the die: out-of-die pad neighbours must
        // not license out-of-die targets.
        const double a_span_lo =
            std::max(0.0, ia == 0 ? 0.0 : row_a[ia - 1].hi);
        const double a_span_hi = std::min(
            chip_.width(),
            ia + 1 < row_a.size() ? row_a[ia + 1].lo : chip_.width());
        const double b_span_lo =
            std::max(0.0, ib == 0 ? 0.0 : row_b[ib - 1].hi);
        const double b_span_hi = std::min(
            chip_.width(),
            ib + 1 < row_b.size() ? row_b[ib + 1].lo : chip_.width());
        if (a_span_hi - a_span_lo < wb || b_span_hi - b_span_lo < wa) continue;
        const double bx = (b.lo + b.hi) / 2.0;
        const double b_new_c = std::clamp(ax, a_span_lo + wb / 2.0,
                                          a_span_hi - wb / 2.0);
        const double a_new_c = std::clamp(bx, b_span_lo + wa / 2.0,
                                          b_span_hi - wa / 2.0);

        const Placement& p = eval_.placement();
        const std::size_t aidx = static_cast<std::size_t>(a.cell);
        const double a_old_x = p.x[aidx];
        const double a_old_y = p.y[aidx];
        const int a_old_layer = p.layer[aidx];
        const double b_row_y = chip_.RowCenterY(r);

        const double d1 =
            eval_.MoveDelta(a.cell, a_new_c, b_row_y, layer + 1);
        eval_.CommitMove(a.cell, a_new_c, b_row_y, layer + 1);
        const std::size_t bidx = static_cast<std::size_t>(b.cell);
        const double d2 =
            eval_.MoveDelta(b.cell, b_new_c, chip_.RowCenterY(r), layer);
        if (StrictlyImproves(d1 + d2)) {
          eval_.CommitMove(b.cell, b_new_c, chip_.RowCenterY(r), layer);
          (void)bidx;
          const Entry a_entry{a.cell, a_new_c - wa / 2.0, a_new_c + wa / 2.0};
          const Entry b_entry{b.cell, b_new_c - wb / 2.0, b_new_c + wb / 2.0};
          // a moves into row_b's slot and b into row_a's.
          row_b[ib] = a_entry;
          row_a[ia] = b_entry;
          std::sort(row_a.begin(), row_a.end(),
                    [](const Entry& x, const Entry& y) { return x.lo < y.lo; });
          std::sort(row_b.begin(), row_b.end(),
                    [](const Entry& x, const Entry& y) { return x.lo < y.lo; });
          stats->layer_swaps += 1;
          stats->gain += -(d1 + d2);
        } else {
          eval_.CommitMove(a.cell, a_old_x, a_old_y, a_old_layer);  // rollback
        }
      }
    }
  }
}

RowOptStats RowRefiner::Run(int passes) {
  obs::TraceScope trace_refine("rowopt.run");
  RowOptStats stats;
  BuildRows();
  for (int pass = 0; pass < std::max(passes, 1); ++pass) {
    const double gain_before = stats.gain;
    SlidePass(&stats);
    ReorderPass(&stats);
    LayerSwapPass(&stats);
    if (stats.gain - gain_before < kStrictImprovementEps) break;  // converged
  }
  obs::MetricAdd("rowopt/runs", 1);
  obs::MetricAdd("rowopt/slides", stats.slides);
  obs::MetricAdd("rowopt/reorders", stats.reorders);
  obs::MetricAdd("rowopt/layer_swaps", stats.layer_swaps);
  obs::MetricAccumulate("rowopt/gain", stats.gain);
  util::LogDebug("rowopt: %lld slides, %lld reorders, %lld layer swaps, "
                 "gain %.4g",
                 stats.slides, stats.reorders, stats.layer_swaps, stats.gain);
  return stats;
}

}  // namespace p3d::place
