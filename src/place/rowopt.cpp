#include "place/rowopt.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "place/bins.h"
#include "place/netweight.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "util/log.h"

namespace p3d::place {

namespace {

// Trace names must be string literals (the sink stores pointers). A 1-D row
// tiling only produces colors 0 and 1, but the tiling API reserves 4.
constexpr const char* kColorTrace[WindowTiling::kNumColors] = {
    "rowopt.color0", "rowopt.color1", "rowopt.color2", "rowopt.color3"};

}  // namespace

RowRefiner::RowRefiner(ObjectiveEvaluator& eval, std::uint64_t seed)
    : eval_(eval), chip_(eval.chip()), rng_(seed) {}

void RowRefiner::BuildRows() {
  rows_.assign(static_cast<std::size_t>(chip_.num_layers() * chip_.num_rows()),
               {});
  const netlist::Netlist& nl = eval_.netlist();
  const Placement& p = eval_.placement();
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    const int layer = std::clamp(p.layer[i], 0, chip_.num_layers() - 1);
    const double w = nl.CellWidth(c);
    const double xlo = p.x[i] - w / 2.0;
    const double xhi = p.x[i] + w / 2.0;
    if (nl.CellFixed(c)) {
      // Fixed cells participate as immovable entries (cell id < 0 marker is
      // unnecessary: passes check the fixed flag) — but only where they
      // physically block a row. Pads ring the die outside its outline;
      // snapping them to the nearest row would plant phantom blockers that
      // overlap real cells and break the model's sorted-disjoint invariant.
      const double h = nl.CellHeight(c);
      const double ylo = p.y[i] - h / 2.0;
      const double yhi = p.y[i] + h / 2.0;
      if (xhi <= 0.0 || xlo >= chip_.width() || yhi <= 0.0 ||
          ylo >= chip_.height()) {
        continue;  // entirely outside the die
      }
      for (int r = 0; r < chip_.num_rows(); ++r) {
        const double band_lo = chip_.RowBottomY(r);
        if (ylo < band_lo + chip_.row_height() && yhi > band_lo) {
          RowAt(layer, r).push_back({c, xlo, xhi});
        }
      }
      continue;
    }
    RowAt(layer, chip_.NearestRow(p.y[i])).push_back({c, xlo, xhi});
  }
  for (auto& row : rows_) {
    std::sort(row.begin(), row.end(),
              [](const Entry& a, const Entry& b) { return a.lo < b.lo; });
  }
}

RowOptStats RowRefiner::Run(int passes) {
  obs::TraceScope trace_refine("rowopt.run");
  RowOptStats stats;
  BuildRows();

  const netlist::Netlist& nl = eval_.netlist();
  const PlacerParams& params = eval_.params();
  const int num_rows = chip_.num_rows();
  const int num_layers = chip_.num_layers();

  // 1-D row-block tiling: window w owns row indices [x0, x1) across ALL
  // layers. Every rowopt action stays within one row index, so same-color
  // windows operate on disjoint rows.
  const int window_rows = std::max(1, params.legalize_window_rows);
  const WindowTiling tiling(num_rows, 1, window_rows);

  const int threads =
      params.legalize_threads > 0 ? params.legalize_threads : params.threads;
  runtime::ThreadPool* pool = runtime::SharedPool(threads);
  const std::size_t num_slots =
      static_cast<std::size_t>(pool != nullptr ? pool->NumThreads() : 1);
  const std::size_t num_windows = static_cast<std::size_t>(tiling.NumWindows());

  std::vector<DeltaView> views(num_slots);
  for (DeltaView& v : views) v.Attach(&eval_);

  const auto sort_row = [](std::vector<Entry>& row) {
    std::sort(row.begin(), row.end(),
              [](const Entry& a, const Entry& b) { return a.lo < b.lo; });
  };
  // Entry of `cell` in `row`, or -1 when absent (an earlier rejected
  // proposal diverged the live row from the window's simulation).
  const auto find_cell = [](const std::vector<Entry>& row, std::int32_t cell) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i].cell == cell) return static_cast<std::int32_t>(i);
    }
    return static_cast<std::int32_t>(-1);
  };

  // ---- slide schedule ------------------------------------------------------
  std::vector<std::vector<SlideProp>> slide_props(num_windows);
  auto propose_slides = [&](std::int64_t w, int slot) {
    const BinWindow& win = tiling.window(static_cast<int>(w));
    DeltaView& view = views[static_cast<std::size_t>(slot)];
    std::vector<SlideProp>& props = slide_props[static_cast<std::size_t>(w)];
    props.clear();
    const Placement& p = eval_.placement();
    std::vector<Entry> sim;
    for (int layer = 0; layer < num_layers; ++layer) {
      for (int r = win.x0; r < win.x1; ++r) {
        sim = RowAt(layer, r);
        for (std::size_t i = 0; i < sim.size(); ++i) {
          Entry& e = sim[i];
          if (nl.CellFixed(e.cell)) continue;
          const double cw = e.hi - e.lo;
          // Neighbours can be fixed pads ringing the die outside [0, W];
          // the free span is the gap intersected with the die extent.
          const double span_lo = std::max(0.0, i == 0 ? 0.0 : sim[i - 1].hi);
          const double span_hi = std::min(
              chip_.width(), i + 1 < sim.size() ? sim[i + 1].lo : chip_.width());
          if (span_hi - span_lo < cw - kGeomEps) continue;
          double ox = 0.0, oy = 0.0;
          OptimalLateralPosition(eval_, e.cell, &ox, &oy);
          const double target =
              std::clamp(ox, span_lo + cw / 2.0, span_hi - cw / 2.0);
          const double cur = (e.lo + e.hi) / 2.0;
          if (std::abs(target - cur) < kGeomEps) continue;
          const std::size_t ci = static_cast<std::size_t>(e.cell);
          const double delta =
              view.MoveDelta(e.cell, target, p.y[ci], p.layer[ci]);
          if (!StrictlyImproves(delta)) continue;
          props.push_back({layer, r, static_cast<std::int32_t>(i), e.cell});
          e.lo = target - cw / 2.0;  // later spans see this slide
          e.hi = target + cw / 2.0;
        }
      }
    }
  };
  auto commit_slides = [&](std::int64_t w) {
    for (const SlideProp& prop : slide_props[static_cast<std::size_t>(w)]) {
      std::vector<Entry>& row = RowAt(prop.layer, prop.r);
      const std::size_t i = static_cast<std::size_t>(prop.index);
      // Slides never change entry order or count, so the index is stable;
      // the guard only protects against future protocol changes.
      if (i >= row.size() || row[i].cell != prop.cell) continue;
      Entry& e = row[i];
      const double cw = e.hi - e.lo;
      const double span_lo = std::max(0.0, i == 0 ? 0.0 : row[i - 1].hi);
      const double span_hi = std::min(
          chip_.width(), i + 1 < row.size() ? row[i + 1].lo : chip_.width());
      if (span_hi - span_lo < cw - kGeomEps) continue;
      double ox = 0.0, oy = 0.0;
      OptimalLateralPosition(eval_, e.cell, &ox, &oy);
      const double target =
          std::clamp(ox, span_lo + cw / 2.0, span_hi - cw / 2.0);
      const Placement& p = eval_.placement();
      const std::size_t ci = static_cast<std::size_t>(e.cell);
      if (std::abs(target - p.x[ci]) < kGeomEps) continue;
      const double delta = eval_.MoveDelta(e.cell, target, p.y[ci], p.layer[ci]);
      if (!StrictlyImproves(delta)) continue;
      eval_.CommitMove(e.cell, target, p.y[ci], p.layer[ci]);
      e.lo = target - cw / 2.0;
      e.hi = target + cw / 2.0;
      stats.slides += 1;
      stats.gain += -delta;
    }
  };

  // ---- reorder schedule ----------------------------------------------------
  std::vector<std::vector<PairProp>> pair_props(num_windows);
  auto propose_reorders = [&](std::int64_t w, int slot) {
    const BinWindow& win = tiling.window(static_cast<int>(w));
    DeltaView& view = views[static_cast<std::size_t>(slot)];
    std::vector<PairProp>& props = pair_props[static_cast<std::size_t>(w)];
    props.clear();
    const Placement& p = eval_.placement();
    std::vector<Entry> sim;
    for (int layer = 0; layer < num_layers; ++layer) {
      for (int r = win.x0; r < win.x1; ++r) {
        sim = RowAt(layer, r);
        for (std::size_t i = 0; i + 1 < sim.size(); ++i) {
          Entry& a = sim[i];
          Entry& b = sim[i + 1];
          if (nl.CellFixed(a.cell) || nl.CellFixed(b.cell)) continue;
          const double wa = a.hi - a.lo;
          const double wb = b.hi - b.lo;
          const double gap = b.lo - a.hi;
          const double b_new_c = a.lo + wb / 2.0;
          const double a_new_c = a.lo + wb + gap + wa / 2.0;
          const std::size_t ai = static_cast<std::size_t>(a.cell);
          const std::size_t bi = static_cast<std::size_t>(b.cell);
          // Screen with two independent deltas against the frozen placement
          // (the serial-exact pair delta needs an intermediate commit, which
          // propose cannot do); the commit re-evaluates exactly.
          const double d1 =
              view.MoveDelta(a.cell, a_new_c, p.y[ai], p.layer[ai]);
          const double d2 =
              view.MoveDelta(b.cell, b_new_c, p.y[bi], p.layer[bi]);
          if (!StrictlyImproves(d1 + d2)) continue;
          props.push_back({layer, r, a.cell, b.cell});
          a.lo = a_new_c - wa / 2.0;
          a.hi = a_new_c + wa / 2.0;
          b.lo = b_new_c - wb / 2.0;
          b.hi = b_new_c + wb / 2.0;
          std::swap(sim[i], sim[i + 1]);  // keep x-sorted
        }
      }
    }
  };
  auto commit_reorders = [&](std::int64_t w) {
    for (const PairProp& prop : pair_props[static_cast<std::size_t>(w)]) {
      std::vector<Entry>& row = RowAt(prop.layer, prop.r);
      const std::int32_t ia = find_cell(row, prop.cell_a);
      if (ia < 0 || static_cast<std::size_t>(ia) + 1 >= row.size()) continue;
      const std::size_t i = static_cast<std::size_t>(ia);
      if (row[i + 1].cell != prop.cell_b) continue;  // no longer adjacent
      Entry& a = row[i];
      Entry& b = row[i + 1];
      const double wa = a.hi - a.lo;
      const double wb = b.hi - b.lo;
      const double gap = b.lo - a.hi;
      // Exchange order, repacked inside [a.lo, b.hi]: b first, then the gap,
      // then a. Total extent is preserved, so legality is guaranteed.
      const double b_new_c = a.lo + wb / 2.0;
      const double a_new_c = a.lo + wb + gap + wa / 2.0;
      const Placement& p = eval_.placement();
      const std::size_t ai = static_cast<std::size_t>(a.cell);
      const std::size_t bi = static_cast<std::size_t>(b.cell);
      const double a_old_x = p.x[ai];

      const double d1 = eval_.MoveDelta(a.cell, a_new_c, p.y[ai], p.layer[ai]);
      eval_.CommitMove(a.cell, a_new_c, p.y[ai], p.layer[ai]);
      const double d2 = eval_.MoveDelta(b.cell, b_new_c, p.y[bi], p.layer[bi]);
      if (StrictlyImproves(d1 + d2)) {
        eval_.CommitMove(b.cell, b_new_c, p.y[bi], p.layer[bi]);
        a.lo = a_new_c - wa / 2.0;
        a.hi = a_new_c + wa / 2.0;
        b.lo = b_new_c - wb / 2.0;
        b.hi = b_new_c + wb / 2.0;
        std::swap(row[i], row[i + 1]);  // keep x-sorted
        stats.reorders += 1;
        stats.gain += -(d1 + d2);
      } else {
        eval_.CommitMove(a.cell, a_old_x, p.y[ai], p.layer[ai]);  // rollback
      }
    }
  };

  // ---- layer-swap schedule -------------------------------------------------
  std::vector<std::vector<SwapProp>> swap_props(num_windows);
  auto propose_layer_swaps = [&](std::int64_t w, int slot) {
    const BinWindow& win = tiling.window(static_cast<int>(w));
    DeltaView& view = views[static_cast<std::size_t>(slot)];
    std::vector<SwapProp>& props = swap_props[static_cast<std::size_t>(w)];
    props.clear();
    const Placement& p = eval_.placement();
    // Swaps chain across layer pairs of the same row index, so the window's
    // whole row block is simulated at once.
    const int span = win.x1 - win.x0;
    std::vector<std::vector<Entry>> sim(
        static_cast<std::size_t>(num_layers * span));
    auto sim_row = [&](int layer, int r) -> std::vector<Entry>& {
      return sim[static_cast<std::size_t>(layer * span + (r - win.x0))];
    };
    for (int layer = 0; layer < num_layers; ++layer) {
      for (int r = win.x0; r < win.x1; ++r) sim_row(layer, r) = RowAt(layer, r);
    }
    for (int layer = 0; layer + 1 < num_layers; ++layer) {
      for (int r = win.x0; r < win.x1; ++r) {
        std::vector<Entry>& row_a = sim_row(layer, r);
        std::vector<Entry>& row_b = sim_row(layer + 1, r);
        if (row_b.empty()) continue;
        for (std::size_t ia = 0; ia < row_a.size(); ++ia) {
          Entry& a = row_a[ia];
          if (nl.CellFixed(a.cell)) continue;
          // Nearest entry in the row one layer up.
          const double ax = (a.lo + a.hi) / 2.0;
          const auto it = std::lower_bound(
              row_b.begin(), row_b.end(), ax,
              [](const Entry& e, double x) { return (e.lo + e.hi) / 2.0 < x; });
          std::size_t ib = static_cast<std::size_t>(it - row_b.begin());
          if (ib == row_b.size()) --ib;
          if (ib > 0) {
            const double c_prev = (row_b[ib - 1].lo + row_b[ib - 1].hi) / 2.0;
            const double c_here = (row_b[ib].lo + row_b[ib].hi) / 2.0;
            if (std::abs(c_prev - ax) < std::abs(c_here - ax)) --ib;
          }
          Entry& b = row_b[ib];
          if (nl.CellFixed(b.cell)) continue;
          const double wa = a.hi - a.lo;
          const double wb = b.hi - b.lo;
          const double a_span_lo =
              std::max(0.0, ia == 0 ? 0.0 : row_a[ia - 1].hi);
          const double a_span_hi = std::min(
              chip_.width(),
              ia + 1 < row_a.size() ? row_a[ia + 1].lo : chip_.width());
          const double b_span_lo =
              std::max(0.0, ib == 0 ? 0.0 : row_b[ib - 1].hi);
          const double b_span_hi = std::min(
              chip_.width(),
              ib + 1 < row_b.size() ? row_b[ib + 1].lo : chip_.width());
          if (a_span_hi - a_span_lo < wb || b_span_hi - b_span_lo < wa) {
            continue;
          }
          const double bx = (b.lo + b.hi) / 2.0;
          const double b_new_c =
              std::clamp(ax, a_span_lo + wb / 2.0, a_span_hi - wb / 2.0);
          const double a_new_c =
              std::clamp(bx, b_span_lo + wa / 2.0, b_span_hi - wa / 2.0);
          const double row_y = chip_.RowCenterY(r);
          const double d1 = view.MoveDelta(a.cell, a_new_c, row_y, layer + 1);
          const double d2 = view.MoveDelta(b.cell, b_new_c, row_y, layer);
          if (!StrictlyImproves(d1 + d2)) continue;
          props.push_back({layer, r, a.cell, b.cell});
          const Entry a_entry{a.cell, a_new_c - wa / 2.0, a_new_c + wa / 2.0};
          const Entry b_entry{b.cell, b_new_c - wb / 2.0, b_new_c + wb / 2.0};
          row_b[ib] = a_entry;
          row_a[ia] = b_entry;
          sort_row(row_a);
          sort_row(row_b);
        }
      }
    }
  };
  auto commit_layer_swaps = [&](std::int64_t w) {
    for (const SwapProp& prop : swap_props[static_cast<std::size_t>(w)]) {
      std::vector<Entry>& row_a = RowAt(prop.layer, prop.r);
      std::vector<Entry>& row_b = RowAt(prop.layer + 1, prop.r);
      const std::int32_t ia32 = find_cell(row_a, prop.cell_a);
      const std::int32_t ib32 = find_cell(row_b, prop.cell_b);
      if (ia32 < 0 || ib32 < 0) continue;  // a prior rejection diverged state
      const std::size_t ia = static_cast<std::size_t>(ia32);
      const std::size_t ib = static_cast<std::size_t>(ib32);
      Entry& a = row_a[ia];
      Entry& b = row_b[ib];
      const double wa = a.hi - a.lo;
      const double wb = b.hi - b.lo;
      // b must fit in a's free span and vice versa, spans intersected with
      // the die: out-of-die pad neighbours must not license out-of-die
      // targets.
      const double a_span_lo = std::max(0.0, ia == 0 ? 0.0 : row_a[ia - 1].hi);
      const double a_span_hi = std::min(
          chip_.width(), ia + 1 < row_a.size() ? row_a[ia + 1].lo : chip_.width());
      const double b_span_lo = std::max(0.0, ib == 0 ? 0.0 : row_b[ib - 1].hi);
      const double b_span_hi = std::min(
          chip_.width(), ib + 1 < row_b.size() ? row_b[ib + 1].lo : chip_.width());
      if (a_span_hi - a_span_lo < wb || b_span_hi - b_span_lo < wa) continue;
      const double ax = (a.lo + a.hi) / 2.0;
      const double bx = (b.lo + b.hi) / 2.0;
      const double b_new_c =
          std::clamp(ax, a_span_lo + wb / 2.0, a_span_hi - wb / 2.0);
      const double a_new_c =
          std::clamp(bx, b_span_lo + wa / 2.0, b_span_hi - wa / 2.0);

      const Placement& p = eval_.placement();
      const std::size_t aidx = static_cast<std::size_t>(a.cell);
      const double a_old_x = p.x[aidx];
      const double a_old_y = p.y[aidx];
      const int a_old_layer = p.layer[aidx];
      const double row_y = chip_.RowCenterY(prop.r);

      const double d1 = eval_.MoveDelta(a.cell, a_new_c, row_y, prop.layer + 1);
      eval_.CommitMove(a.cell, a_new_c, row_y, prop.layer + 1);
      const double d2 = eval_.MoveDelta(b.cell, b_new_c, row_y, prop.layer);
      if (StrictlyImproves(d1 + d2)) {
        eval_.CommitMove(b.cell, b_new_c, row_y, prop.layer);
        const Entry a_entry{a.cell, a_new_c - wa / 2.0, a_new_c + wa / 2.0};
        const Entry b_entry{b.cell, b_new_c - wb / 2.0, b_new_c + wb / 2.0};
        // a moves into row_b's slot and b into row_a's.
        row_b[ib] = a_entry;
        row_a[ia] = b_entry;
        sort_row(row_a);
        sort_row(row_b);
        stats.layer_swaps += 1;
        stats.gain += -(d1 + d2);
      } else {
        eval_.CommitMove(a.cell, a_old_x, a_old_y, a_old_layer);  // rollback
      }
    }
  };

  auto run_schedule = [&](auto& propose, auto& commit) {
    runtime::ParallelForWindows(
        pool, tiling.NumWindows(), tiling.colors(), WindowTiling::kNumColors,
        propose, commit,
        [&](int color) { return obs::TraceScope(kColorTrace[color]); });
  };

  for (int pass = 0; pass < std::max(passes, 1); ++pass) {
    const double gain_before = stats.gain;
    run_schedule(propose_slides, commit_slides);
    run_schedule(propose_reorders, commit_reorders);
    run_schedule(propose_layer_swaps, commit_layer_swaps);
    if (stats.gain - gain_before < kStrictImprovementEps) break;  // converged
  }

  // Fold the views' kernel counters back in slot order; the totals are sums
  // of per-window counts, so they are identical for any thread count.
  for (DeltaView& v : views) {
    eval_.MergeEvalStats(v.stats());
    v.ClearStats();
  }

  obs::MetricAdd("rowopt/runs", 1);
  obs::MetricAdd("rowopt/windows",
                 static_cast<std::int64_t>(tiling.NumWindows()));
  obs::MetricAdd("rowopt/slides", stats.slides);
  obs::MetricAdd("rowopt/reorders", stats.reorders);
  obs::MetricAdd("rowopt/layer_swaps", stats.layer_swaps);
  obs::MetricAccumulate("rowopt/gain", stats.gain);
  util::LogDebug("rowopt: %lld slides, %lld reorders, %lld layer swaps, "
                 "gain %.4g",
                 stats.slides, stats.reorders, stats.layer_swaps, stats.gain);
  return stats;
}

}  // namespace p3d::place
