#include "place/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "place/objective.h"
#include "thermal/power.h"

namespace p3d::place {

PlacementReport AnalyzePlacement(const netlist::Netlist& nl, const Chip& chip,
                                 const PlacerParams& params,
                                 const Placement& placement) {
  PlacementReport report;
  report.layers.assign(static_cast<std::size_t>(chip.num_layers()), {});
  report.span_histogram.assign(static_cast<std::size_t>(chip.num_layers()), 0);

  const thermal::NetMetrics metrics = thermal::ComputeNetMetrics(
      nl, placement.x, placement.y, placement.layer);
  const thermal::PowerReport power =
      thermal::ComputePower(nl, metrics, params.electrical);

  report.total_hpwl = metrics.total_hpwl;
  report.total_ilv = metrics.total_ilv;
  report.total_power = power.total;

  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    const int l =
        std::clamp(placement.layer[i], 0, chip.num_layers() - 1);
    LayerStats& ls = report.layers[static_cast<std::size_t>(l)];
    ls.cells += 1;
    ls.area += nl.cell(c).Area();
    ls.power += power.cell_power[i];
  }
  const double cap = chip.RowAreaPerLayer();
  for (LayerStats& ls : report.layers) {
    ls.utilization = cap > 0.0 ? ls.area / cap : 0.0;
  }

  double max_wl = 0.0;
  for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
    const std::size_t i = static_cast<std::size_t>(n);
    const int span = std::clamp(metrics.layer_span[i], 0,
                                chip.num_layers() - 1);
    report.span_histogram[static_cast<std::size_t>(span)] += 1;
    max_wl = std::max(max_wl, metrics.hpwl[i]);
  }
  report.max_net_hpwl = max_wl;
  report.avg_net_hpwl =
      nl.NumNets() > 0 ? metrics.total_hpwl / nl.NumNets() : 0.0;

  // Eq. 3 decomposition through the evaluator (the same bookkeeping the
  // placement phases optimize, so the breakdown matches the flow's view).
  PlacerParams eval_params = params;
  eval_params.SyncStack();
  ObjectiveEvaluator eval(nl, chip, eval_params);
  eval.SetPlacement(placement);
  const ObjectiveEvaluator::Components comp = eval.GetComponents();
  report.wl_cost = comp.wl;
  report.ilv_cost = comp.ilv;
  report.thermal_cost = comp.thermal;
  report.objective = comp.total;
  return report;
}

std::string FormatReport(const PlacementReport& report) {
  std::ostringstream out;
  char line[160];

  std::snprintf(line, sizeof(line),
                "total: hpwl %.5g m | %lld interlayer vias | %.5g W\n",
                report.total_hpwl, report.total_ilv, report.total_power);
  out << line;
  std::snprintf(line, sizeof(line),
                "nets:  avg hpwl %.4g m, max hpwl %.4g m\n",
                report.avg_net_hpwl, report.max_net_hpwl);
  out << line;
  std::snprintf(line, sizeof(line),
                "objective (Eq. 3): %.6g = wl %.6g + ilv %.6g + thermal %.6g\n",
                report.objective, report.wl_cost, report.ilv_cost,
                report.thermal_cost);
  out << line;

  out << "layer  cells     area(mm^2)  util    power(W)\n";
  for (std::size_t l = 0; l < report.layers.size(); ++l) {
    const LayerStats& ls = report.layers[l];
    std::snprintf(line, sizeof(line), "%-6zu %-9d %-11.5f %-7.3f %.5g\n", l,
                  ls.cells, ls.area * 1e6, ls.utilization, ls.power);
    out << line;
  }

  out << "net span histogram (vias per net):\n";
  for (std::size_t s = 0; s < report.span_histogram.size(); ++s) {
    if (report.span_histogram[s] == 0 && s > 0) continue;
    std::snprintf(line, sizeof(line), "  span %zu: %lld nets\n", s,
                  report.span_histogram[s]);
    out << line;
  }
  return out.str();
}

}  // namespace p3d::place
