#include "place/bins.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace p3d::place {

BinGrid::BinGrid(const Chip& chip, double avg_cell_w, double avg_cell_h,
                 double cells_per_bin_x, double cells_per_bin_y) {
  assert(avg_cell_w > 0.0 && avg_cell_h > 0.0);
  nx_ = std::max(1, static_cast<int>(
                        std::round(chip.width() / (cells_per_bin_x * avg_cell_w))));
  ny_ = std::max(1, static_cast<int>(std::round(
                        chip.height() / (cells_per_bin_y * avg_cell_h))));
  nz_ = chip.num_layers();
  nbx_ = (nx_ + kBlock - 1) >> kBlockShift;
  nby_ = (ny_ + kBlock - 1) >> kBlockShift;
  layer_stride_ = nbx_ * nby_ * kBlock * kBlock;
  bw_ = chip.width() / nx_;
  bh_ = chip.height() / ny_;
  cap_ = bw_ * bh_ * chip.RowFraction();
  area_.assign(static_cast<std::size_t>(NumBins()), 0.0);
  fixed_area_.assign(static_cast<std::size_t>(NumBins()), 0.0);
  cells_.assign(static_cast<std::size_t>(NumBins()), {});
}

int BinGrid::XIndex(double x) const {
  return std::clamp(static_cast<int>(x / bw_), 0, nx_ - 1);
}

int BinGrid::YIndex(double y) const {
  return std::clamp(static_cast<int>(y / bh_), 0, ny_ - 1);
}

int BinGrid::BinOf(double x, double y, int layer) const {
  return Flat(XIndex(x), YIndex(y), std::clamp(layer, 0, nz_ - 1));
}

void BinGrid::Rebuild(const netlist::Netlist& nl, const Placement& p) {
  std::fill(fixed_area_.begin(), fixed_area_.end(), 0.0);
  for (auto& v : cells_) v.clear();
  // Fixed base first, then movables, each in ascending cell-id order: the
  // resulting area_ bytes match what ResyncAreas derives from the occupant
  // lists (which are in cell-id order right after a rebuild).
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    const int flat = BinOf(p.x[i], p.y[i], p.layer[i]);
    if (nl.CellFixed(c)) {
      fixed_area_[static_cast<std::size_t>(flat)] += nl.CellArea(c);
    } else {
      cells_[static_cast<std::size_t>(flat)].push_back(c);
    }
  }
  area_ = fixed_area_;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    if (nl.CellFixed(c)) continue;
    area_[static_cast<std::size_t>(BinOf(p.x[i], p.y[i], p.layer[i]))] +=
        nl.CellArea(c);
  }
}

double BinGrid::MaxDensity() const {
  double mx = 0.0;
  for (const double a : area_) mx = std::max(mx, a / cap_);
  return mx;
}

void BinGrid::MoveCell(std::int32_t cell, double cell_area, int from_flat,
                       int to_flat) {
  if (from_flat == to_flat) return;
  area_[static_cast<std::size_t>(from_flat)] -= cell_area;
  area_[static_cast<std::size_t>(to_flat)] += cell_area;
  auto& from_list = cells_[static_cast<std::size_t>(from_flat)];
  const auto it = std::find(from_list.begin(), from_list.end(), cell);
  if (it != from_list.end()) {
    *it = from_list.back();
    from_list.pop_back();
  }
  cells_[static_cast<std::size_t>(to_flat)].push_back(cell);
}

void BinGrid::ResyncAreas(const netlist::Netlist& nl) {
  for (std::size_t b = 0; b < area_.size(); ++b) {
    sort_scratch_.assign(cells_[b].begin(), cells_[b].end());
    std::sort(sort_scratch_.begin(), sort_scratch_.end());
    double a = fixed_area_[b];
    for (const std::int32_t c : sort_scratch_) a += nl.CellArea(c);
    area_[b] = a;
  }
}

WindowTiling::WindowTiling(int nx, int ny, int window_bins) {
  window_bins_ = std::max(1, window_bins);
  nwx_ = (nx + window_bins_ - 1) / window_bins_;
  const int nwy = (ny + window_bins_ - 1) / window_bins_;
  windows_.reserve(static_cast<std::size_t>(nwx_) * nwy);
  for (int wy = 0; wy < nwy; ++wy) {
    for (int wx = 0; wx < nwx_; ++wx) {
      BinWindow w;
      w.x0 = wx * window_bins_;
      w.y0 = wy * window_bins_;
      w.x1 = std::min(nx, w.x0 + window_bins_);
      w.y1 = std::min(ny, w.y0 + window_bins_);
      w.color = (wx & 1) | ((wy & 1) << 1);
      windows_.push_back(w);
      colors_.push_back(w.color);
    }
  }
}

}  // namespace p3d::place
