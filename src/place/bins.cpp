#include "place/bins.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace p3d::place {

BinGrid::BinGrid(const Chip& chip, double avg_cell_w, double avg_cell_h,
                 double cells_per_bin_x, double cells_per_bin_y) {
  assert(avg_cell_w > 0.0 && avg_cell_h > 0.0);
  nx_ = std::max(1, static_cast<int>(
                        std::round(chip.width() / (cells_per_bin_x * avg_cell_w))));
  ny_ = std::max(1, static_cast<int>(std::round(
                        chip.height() / (cells_per_bin_y * avg_cell_h))));
  nz_ = chip.num_layers();
  bw_ = chip.width() / nx_;
  bh_ = chip.height() / ny_;
  cap_ = bw_ * bh_ * chip.RowFraction();
  area_.assign(static_cast<std::size_t>(NumBins()), 0.0);
  cells_.assign(static_cast<std::size_t>(NumBins()), {});
}

int BinGrid::XIndex(double x) const {
  return std::clamp(static_cast<int>(x / bw_), 0, nx_ - 1);
}

int BinGrid::YIndex(double y) const {
  return std::clamp(static_cast<int>(y / bh_), 0, ny_ - 1);
}

int BinGrid::BinOf(double x, double y, int layer) const {
  return Flat(XIndex(x), YIndex(y), std::clamp(layer, 0, nz_ - 1));
}

void BinGrid::Rebuild(const netlist::Netlist& nl, const Placement& p) {
  std::fill(area_.begin(), area_.end(), 0.0);
  for (auto& v : cells_) v.clear();
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    const int flat = BinOf(p.x[i], p.y[i], p.layer[i]);
    area_[static_cast<std::size_t>(flat)] += nl.cell(c).Area();
    if (!nl.cell(c).fixed) {
      cells_[static_cast<std::size_t>(flat)].push_back(c);
    }
  }
}

double BinGrid::MaxDensity() const {
  double mx = 0.0;
  for (const double a : area_) mx = std::max(mx, a / cap_);
  return mx;
}

void BinGrid::MoveCell(std::int32_t cell, double cell_area, int from_flat,
                       int to_flat) {
  if (from_flat == to_flat) return;
  area_[static_cast<std::size_t>(from_flat)] -= cell_area;
  area_[static_cast<std::size_t>(to_flat)] += cell_area;
  auto& from_list = cells_[static_cast<std::size_t>(from_flat)];
  const auto it = std::find(from_list.begin(), from_list.end(), cell);
  if (it != from_list.end()) {
    *it = from_list.back();
    from_list.pop_back();
  }
  cells_[static_cast<std::size_t>(to_flat)].push_back(cell);
}

}  // namespace p3d::place
