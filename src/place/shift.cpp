#include "place/shift.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"

namespace p3d::place {

CellShifter::CellShifter(ObjectiveEvaluator& eval)
    : eval_(eval),
      chip_layers_(eval.chip().num_layers()),
      a_lower_(eval.params().shift_a_lower),
      a_upper_(eval.params().shift_a_upper),
      b_(eval.params().shift_b) {}

double CellShifter::WidthFactor(double density) const {
  if (density <= 1.0) return a_lower_ * (density - 1.0) + b_;
  return a_upper_ * (1.0 - 1.0 / density) + b_;
}

void CellShifter::ApplyCellShift(std::int32_t cell, int axis,
                                 double new_coord, bool allow_retention) {
  const Placement& p = eval_.placement();
  const std::size_t i = static_cast<std::size_t>(cell);
  const Chip& chip = eval_.chip();
  const double old_coord =
      axis == 0 ? p.x[i] : (axis == 1 ? p.y[i] : p.layer[i] + 0.5);

  double best_delta = 0.0;
  bool have_best = false;
  double best_x = p.x[i], best_y = p.y[i];
  int best_layer = p.layer[i];
  // Movement retention (Eq. 17): beta slows the move; pick the candidate
  // with the least objective degradation (full move preferred on ties).
  const double betas[3] = {1.0, 0.5, 0.25};
  const int n_betas = allow_retention ? 3 : 1;
  for (int bi = 0; bi < n_betas; ++bi) {
    const double beta = betas[bi];
    const double coord = beta * new_coord + (1.0 - beta) * old_coord;
    double cx = p.x[i], cy = p.y[i];
    int cl = p.layer[i];
    switch (axis) {
      case 0:
        cx = std::clamp(coord, 0.0, chip.width());
        break;
      case 1:
        cy = std::clamp(coord, 0.0, chip.height());
        break;
      default:
        cl = std::clamp(static_cast<int>(std::floor(coord)), 0,
                        chip.num_layers() - 1);
        break;
    }
    const double delta = eval_.MoveDelta(cell, cx, cy, cl);
    if (!have_best || delta < best_delta - 1e-18) {
      have_best = true;
      best_delta = delta;
      best_x = cx;
      best_y = cy;
      best_layer = cl;
    }
  }
  if (have_best &&
      (best_x != p.x[i] || best_y != p.y[i] || best_layer != p.layer[i])) {
    eval_.CommitMove(cell, best_x, best_y, best_layer);
  }
}

void CellShifter::SweepAxis(BinGrid& grid, int axis) {
  grid.Rebuild(eval_.netlist(), eval_.placement());
  const int n_along = axis == 0 ? grid.nx() : (axis == 1 ? grid.ny() : grid.nz());
  if (n_along < 2) return;

  // Whole-layer utilization: z moves are forced only when a layer as a
  // whole exceeds capacity. Local z-column spikes are cheaper to resolve
  // laterally within the layer (an interlayer via costs alpha_ILV; a short
  // lateral shift costs almost nothing), so the objective-driven retention
  // keeps z moves rare otherwise.
  std::vector<double> layer_util;
  if (axis == 2) {
    layer_util.assign(static_cast<std::size_t>(grid.nz()), 0.0);
    for (int z = 0; z < grid.nz(); ++z) {
      double a = 0.0;
      for (int y = 0; y < grid.ny(); ++y) {
        for (int x = 0; x < grid.nx(); ++x) {
          a += grid.Area(grid.Flat(x, y, z));
        }
      }
      layer_util[static_cast<std::size_t>(z)] =
          a / (grid.BinCapacity() * grid.nx() * grid.ny());
    }
  }
  const double bin_size =
      axis == 0 ? grid.bin_w() : (axis == 1 ? grid.bin_h() : 1.0);

  const int n_u = axis == 0 ? grid.ny() : grid.nx();
  const int n_v = axis == 2 ? grid.ny() : grid.nz();

  std::vector<double> density(static_cast<std::size_t>(n_along));
  std::vector<double> width(static_cast<std::size_t>(n_along));
  std::vector<double> new_bound(static_cast<std::size_t>(n_along) + 1);

  for (int u = 0; u < n_u; ++u) {
    for (int v = 0; v < n_v; ++v) {
      // Row of bins along `axis` at cross position (u, v).
      auto flat_at = [&](int i) {
        switch (axis) {
          case 0:
            return grid.Flat(i, u, v);
          case 1:
            return grid.Flat(u, i, v);
          default:
            return grid.Flat(u, v, i);
        }
      };
      double max_d = 0.0;
      for (int i = 0; i < n_along; ++i) {
        density[static_cast<std::size_t>(i)] = grid.Density(flat_at(i));
        max_d = std::max(max_d, density[static_cast<std::size_t>(i)]);
      }
      // Sparse rows are never disturbed (fixes FastPlace's over-spreading).
      if (max_d <= 1.0) continue;

      // Eq. 16 widths, renormalized so the row keeps its total extent —
      // this balances expansion against contraction and makes boundary
      // cross-over impossible (all widths stay positive).
      double sum = 0.0;
      for (int i = 0; i < n_along; ++i) {
        width[static_cast<std::size_t>(i)] =
            std::max(WidthFactor(density[static_cast<std::size_t>(i)]), 0.05);
        sum += width[static_cast<std::size_t>(i)];
      }
      const double scale = static_cast<double>(n_along) * bin_size / sum;
      new_bound[0] = 0.0;
      for (int i = 0; i < n_along; ++i) {
        new_bound[static_cast<std::size_t>(i) + 1] =
            new_bound[static_cast<std::size_t>(i)] +
            width[static_cast<std::size_t>(i)] * scale;
      }

      // Map cells (Eq. 17). Snapshot the occupant lists: commits may move a
      // cell across bins but Rebuild() happens per sweep, not per row.
      //
      // Over-dense bins use *rank-based* intra-bin coordinates: recursive
      // bisection drops whole mini-regions of cells onto (near-)identical
      // points, and a pure coordinate remap can never separate coincident
      // cells (nor move a cell sitting at the fixed point of a symmetric
      // expansion). Ranking cells along the axis and spacing them evenly
      // across the bin preserves relative order — the property Eq. 17's
      // mapping is there to protect — while guaranteeing progress.
      for (int i = 0; i < n_along; ++i) {
        const double old_lo = i * bin_size;
        const double w_ratio =
            (new_bound[static_cast<std::size_t>(i) + 1] -
             new_bound[static_cast<std::size_t>(i)]) /
            bin_size;
        std::vector<std::int32_t> occupants = grid.Cells(flat_at(i));
        const bool over_dense = density[static_cast<std::size_t>(i)] > 1.0;
        // Retention stalls spreading once bins are meaningfully over-full.
        // Laterally, damping beyond density 1.5 just delays convergence.
        // Along z, the floor() back to a discrete layer cancels damped
        // moves entirely — but forcing z moves to fix *local* spikes tears
        // nets apart needlessly, so z is forced only when the source layer
        // as a whole is over capacity.
        const bool congested =
            axis == 2 ? (over_dense && layer_util[static_cast<std::size_t>(i)] > 1.0)
                      : density[static_cast<std::size_t>(i)] > 1.5;
        if (over_dense && occupants.size() > 1) {
          const Placement& p = eval_.placement();
          if (axis != 2) {
            // Lateral: rank by coordinate to preserve relative cell order.
            std::sort(occupants.begin(), occupants.end(),
                      [&](std::int32_t a, std::int32_t b) {
                        const std::size_t ai = static_cast<std::size_t>(a);
                        const std::size_t bi = static_cast<std::size_t>(b);
                        const double ca = axis == 0 ? p.x[ai] : p.y[ai];
                        const double cb = axis == 0 ? p.x[bi] : p.y[bi];
                        if (ca != cb) return ca < cb;
                        return a < b;
                      });
          } else {
            // Vertical: there is no cell order to preserve within one layer,
            // but every boundary crossing costs interlayer vias. Rank by the
            // objective cost of moving down vs up, so the cells whose nets
            // already span in the right direction absorb the rebalancing
            // (low rank = prefers down, high rank = prefers up).
            std::vector<std::pair<double, std::int32_t>> scored;
            scored.reserve(occupants.size());
            for (const std::int32_t c : occupants) {
              const std::size_t ci = static_cast<std::size_t>(c);
              const int l = p.layer[ci];
              const double big = 1e30;
              const double d_down =
                  l > 0 ? eval_.MoveDelta(c, p.x[ci], p.y[ci], l - 1) : big;
              const double d_up = l + 1 < chip_layers_
                                      ? eval_.MoveDelta(c, p.x[ci], p.y[ci], l + 1)
                                      : big;
              scored.emplace_back(d_down - d_up, c);
            }
            std::sort(scored.begin(), scored.end());
            for (std::size_t k = 0; k < scored.size(); ++k) {
              occupants[k] = scored[k].second;
            }
          }
        }
        for (std::size_t k = 0; k < occupants.size(); ++k) {
          const std::int32_t c = occupants[k];
          const std::size_t ci = static_cast<std::size_t>(c);
          const Placement& p = eval_.placement();
          double coord = axis == 0   ? p.x[ci]
                         : axis == 1 ? p.y[ci]
                                     : p.layer[ci] + 0.5;
          if (over_dense && occupants.size() > 1) {
            coord = old_lo +
                    (static_cast<double>(k) + 0.5) /
                        static_cast<double>(occupants.size()) * bin_size;
          }
          const double mapped =
              new_bound[static_cast<std::size_t>(i)] + (coord - old_lo) * w_ratio;
          // Movement retention would stall badly congested bins; force the
          // full move there.
          ApplyCellShift(c, axis, mapped, /*allow_retention=*/!congested);
        }
      }
    }
  }
}

ShiftStats CellShifter::Run(int max_iters, double target_density) {
  obs::TraceScope trace_shift("shift.run");
  const netlist::Netlist& nl = eval_.netlist();
  const Chip& chip = eval_.chip();
  BinGrid grid(chip, nl.AvgCellWidth(), nl.AvgCellHeight());
  ShiftStats stats;
  for (int it = 0; it < max_iters; ++it) {
    grid.Rebuild(nl, eval_.placement());
    stats.final_max_density = grid.MaxDensity();
    if (stats.final_max_density <= target_density) break;
    ++stats.iterations;
    SweepAxis(grid, 2);  // balance layers first: z capacity is the scarcest
    SweepAxis(grid, 0);
    SweepAxis(grid, 1);
  }
  grid.Rebuild(nl, eval_.placement());
  stats.final_max_density = grid.MaxDensity();
  obs::MetricAdd("shift/runs", 1);
  obs::MetricAdd("shift/iterations", stats.iterations);
  obs::MetricSet("shift/final_max_density", stats.final_max_density);
  util::LogDebug("shift: %d iters, max density %.3f", stats.iterations,
                 stats.final_max_density);
  return stats;
}

}  // namespace p3d::place
