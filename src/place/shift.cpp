#include "place/shift.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "util/log.h"

namespace p3d::place {

namespace {

constexpr const char* kColorTrace[WindowTiling::kNumColors] = {
    "shift.color0", "shift.color1", "shift.color2", "shift.color3"};

}  // namespace

CellShifter::CellShifter(ObjectiveEvaluator& eval)
    : eval_(eval),
      chip_layers_(eval.chip().num_layers()),
      a_lower_(eval.params().shift_a_lower),
      a_upper_(eval.params().shift_a_upper),
      b_(eval.params().shift_b) {}

double CellShifter::WidthFactor(double density) const {
  if (density <= 1.0) return a_lower_ * (density - 1.0) + b_;
  return a_upper_ * (1.0 - 1.0 / density) + b_;
}

bool CellShifter::PlanCellShift(DeltaView& view, std::int32_t cell, int axis,
                                double new_coord, bool allow_retention,
                                double* out_x, double* out_y,
                                int* out_layer) const {
  const Placement& p = eval_.placement();
  const std::size_t i = static_cast<std::size_t>(cell);
  const Chip& chip = eval_.chip();
  const double old_coord =
      axis == 0 ? p.x[i] : (axis == 1 ? p.y[i] : p.layer[i] + 0.5);

  double best_delta = 0.0;
  bool have_best = false;
  double best_x = p.x[i], best_y = p.y[i];
  int best_layer = p.layer[i];
  // Movement retention (Eq. 17): beta slows the move; pick the candidate
  // with the least objective degradation (full move preferred on ties —
  // BeatsIncumbent demands a challenger improve by more than kTieBreakEps).
  const double betas[3] = {1.0, 0.5, 0.25};
  const int n_betas = allow_retention ? 3 : 1;
  for (int bi = 0; bi < n_betas; ++bi) {
    const double beta = betas[bi];
    const double coord = beta * new_coord + (1.0 - beta) * old_coord;
    double cx = p.x[i], cy = p.y[i];
    int cl = p.layer[i];
    switch (axis) {
      case 0:
        cx = std::clamp(coord, 0.0, chip.width());
        break;
      case 1:
        cy = std::clamp(coord, 0.0, chip.height());
        break;
      default:
        cl = std::clamp(static_cast<int>(std::floor(coord)), 0,
                        chip.num_layers() - 1);
        break;
    }
    const double delta = view.MoveDelta(cell, cx, cy, cl);
    if (!have_best || BeatsIncumbent(delta, best_delta)) {
      have_best = true;
      best_delta = delta;
      best_x = cx;
      best_y = cy;
      best_layer = cl;
    }
  }
  if (!have_best ||
      (best_x == p.x[i] && best_y == p.y[i] && best_layer == p.layer[i])) {
    return false;
  }
  *out_x = best_x;
  *out_y = best_y;
  *out_layer = best_layer;
  return true;
}

void CellShifter::SweepAxis(BinGrid& grid, int axis) {
  grid.Rebuild(eval_.netlist(), eval_.placement());
  const int n_along = axis == 0 ? grid.nx() : (axis == 1 ? grid.ny() : grid.nz());
  if (n_along < 2) return;

  // Whole-layer utilization: z moves are forced only when a layer as a
  // whole exceeds capacity. Local z-column spikes are cheaper to resolve
  // laterally within the layer (an interlayer via costs alpha_ILV; a short
  // lateral shift costs almost nothing), so the objective-driven retention
  // keeps z moves rare otherwise.
  std::vector<double> layer_util;
  if (axis == 2) {
    layer_util.assign(static_cast<std::size_t>(grid.nz()), 0.0);
    for (int z = 0; z < grid.nz(); ++z) {
      double a = 0.0;
      for (int y = 0; y < grid.ny(); ++y) {
        for (int x = 0; x < grid.nx(); ++x) {
          a += grid.Area(grid.Flat(x, y, z));
        }
      }
      layer_util[static_cast<std::size_t>(z)] =
          a / (grid.BinCapacity() * grid.nx() * grid.ny());
    }
  }
  const double bin_size =
      axis == 0 ? grid.bin_w() : (axis == 1 ? grid.bin_h() : 1.0);

  const int n_u = axis == 0 ? grid.ny() : grid.nx();
  const int n_v = axis == 2 ? grid.ny() : grid.nz();

  const PlacerParams& params = eval_.params();
  const int threads =
      params.legalize_threads > 0 ? params.legalize_threads : params.threads;
  runtime::ThreadPool* pool = runtime::SharedPool(threads);
  const std::size_t num_slots =
      static_cast<std::size_t>(pool != nullptr ? pool->NumThreads() : 1);

  // Windows tile the (u, v) cross grid; every row of bins along the sweep
  // axis belongs to exactly one window, and every cell to exactly one row
  // (the occupant lists are frozen at the Rebuild above), so proposals never
  // conflict and commits are plain ordered replay.
  const int window_bins = std::max(2, params.legalize_window_bins);
  const WindowTiling tiling(n_u, n_v, window_bins);

  struct PlannedMove {
    std::int32_t cell = -1;
    double x = 0.0, y = 0.0;
    int layer = 0;
  };
  std::vector<std::vector<PlannedMove>> window_moves(
      static_cast<std::size_t>(tiling.NumWindows()));

  struct Scratch {
    DeltaView view;
    std::vector<double> density;
    std::vector<double> width;
    std::vector<double> new_bound;
    std::vector<std::int32_t> occupants;
    std::vector<std::pair<double, std::int32_t>> scored;
  };
  std::vector<Scratch> scratch(num_slots);
  for (Scratch& s : scratch) {
    s.view.Attach(&eval_);
    s.density.resize(static_cast<std::size_t>(n_along));
    s.width.resize(static_cast<std::size_t>(n_along));
    s.new_bound.resize(static_cast<std::size_t>(n_along) + 1);
  }

  // Plans one row of bins along `axis` at cross position (u, v), appending
  // the chosen cell targets to `out`. Reads only frozen state (grid + the
  // color-start placement) through the slot's scratch.
  auto propose_row = [&](int u, int v, Scratch& s,
                         std::vector<PlannedMove>& out) {
    auto flat_at = [&](int i) {
      switch (axis) {
        case 0:
          return grid.Flat(i, u, v);
        case 1:
          return grid.Flat(u, i, v);
        default:
          return grid.Flat(u, v, i);
      }
    };
    double max_d = 0.0;
    for (int i = 0; i < n_along; ++i) {
      s.density[static_cast<std::size_t>(i)] = grid.Density(flat_at(i));
      max_d = std::max(max_d, s.density[static_cast<std::size_t>(i)]);
    }
    // Sparse rows are never disturbed (fixes FastPlace's over-spreading).
    if (max_d <= 1.0) return;

    // Eq. 16 widths, renormalized so the row keeps its total extent —
    // this balances expansion against contraction and makes boundary
    // cross-over impossible (all widths stay positive).
    double sum = 0.0;
    for (int i = 0; i < n_along; ++i) {
      s.width[static_cast<std::size_t>(i)] =
          std::max(WidthFactor(s.density[static_cast<std::size_t>(i)]), 0.05);
      sum += s.width[static_cast<std::size_t>(i)];
    }
    const double scale = static_cast<double>(n_along) * bin_size / sum;
    s.new_bound[0] = 0.0;
    for (int i = 0; i < n_along; ++i) {
      s.new_bound[static_cast<std::size_t>(i) + 1] =
          s.new_bound[static_cast<std::size_t>(i)] +
          s.width[static_cast<std::size_t>(i)] * scale;
    }

    // Map cells (Eq. 17).
    //
    // Over-dense bins use *rank-based* intra-bin coordinates: recursive
    // bisection drops whole mini-regions of cells onto (near-)identical
    // points, and a pure coordinate remap can never separate coincident
    // cells (nor move a cell sitting at the fixed point of a symmetric
    // expansion). Ranking cells along the axis and spacing them evenly
    // across the bin preserves relative order — the property Eq. 17's
    // mapping is there to protect — while guaranteeing progress.
    const Placement& p = eval_.placement();
    for (int i = 0; i < n_along; ++i) {
      const double old_lo = i * bin_size;
      const double w_ratio = (s.new_bound[static_cast<std::size_t>(i) + 1] -
                              s.new_bound[static_cast<std::size_t>(i)]) /
                             bin_size;
      s.occupants.assign(grid.Cells(flat_at(i)).begin(),
                         grid.Cells(flat_at(i)).end());
      const bool over_dense = s.density[static_cast<std::size_t>(i)] > 1.0;
      // Retention stalls spreading once bins are meaningfully over-full.
      // Laterally, damping beyond density 1.5 just delays convergence.
      // Along z, the floor() back to a discrete layer cancels damped
      // moves entirely — but forcing z moves to fix *local* spikes tears
      // nets apart needlessly, so z is forced only when the source layer
      // as a whole is over capacity.
      const bool congested =
          axis == 2
              ? (over_dense && layer_util[static_cast<std::size_t>(i)] > 1.0)
              : s.density[static_cast<std::size_t>(i)] > 1.5;
      if (over_dense && s.occupants.size() > 1) {
        if (axis != 2) {
          // Lateral: rank by coordinate to preserve relative cell order.
          std::sort(s.occupants.begin(), s.occupants.end(),
                    [&](std::int32_t a, std::int32_t b) {
                      const std::size_t ai = static_cast<std::size_t>(a);
                      const std::size_t bi = static_cast<std::size_t>(b);
                      const double ca = axis == 0 ? p.x[ai] : p.y[ai];
                      const double cb = axis == 0 ? p.x[bi] : p.y[bi];
                      if (ca != cb) return ca < cb;
                      return a < b;
                    });
        } else {
          // Vertical: there is no cell order to preserve within one layer,
          // but every boundary crossing costs interlayer vias. Rank by the
          // objective cost of moving down vs up, so the cells whose nets
          // already span in the right direction absorb the rebalancing
          // (low rank = prefers down, high rank = prefers up).
          s.scored.clear();
          s.scored.reserve(s.occupants.size());
          for (const std::int32_t c : s.occupants) {
            const std::size_t ci = static_cast<std::size_t>(c);
            const int l = p.layer[ci];
            const double big = 1e30;
            const double d_down =
                l > 0 ? s.view.MoveDelta(c, p.x[ci], p.y[ci], l - 1) : big;
            const double d_up =
                l + 1 < chip_layers_
                    ? s.view.MoveDelta(c, p.x[ci], p.y[ci], l + 1)
                    : big;
            s.scored.emplace_back(d_down - d_up, c);
          }
          std::sort(s.scored.begin(), s.scored.end());
          for (std::size_t k = 0; k < s.scored.size(); ++k) {
            s.occupants[k] = s.scored[k].second;
          }
        }
      }
      for (std::size_t k = 0; k < s.occupants.size(); ++k) {
        const std::int32_t c = s.occupants[k];
        const std::size_t ci = static_cast<std::size_t>(c);
        double coord = axis == 0   ? p.x[ci]
                       : axis == 1 ? p.y[ci]
                                   : p.layer[ci] + 0.5;
        if (over_dense && s.occupants.size() > 1) {
          coord = old_lo +
                  (static_cast<double>(k) + 0.5) /
                      static_cast<double>(s.occupants.size()) * bin_size;
        }
        const double mapped =
            s.new_bound[static_cast<std::size_t>(i)] + (coord - old_lo) * w_ratio;
        // Movement retention would stall badly congested bins; force the
        // full move there.
        PlannedMove m;
        m.cell = c;
        if (PlanCellShift(s.view, c, axis, mapped,
                          /*allow_retention=*/!congested, &m.x, &m.y,
                          &m.layer)) {
          out.push_back(m);
        }
      }
    }
  };

  auto propose_window = [&](std::int64_t w, int slot) {
    std::vector<PlannedMove>& moves = window_moves[static_cast<std::size_t>(w)];
    moves.clear();
    Scratch& s = scratch[static_cast<std::size_t>(slot)];
    const BinWindow& win = tiling.window(static_cast<int>(w));
    for (int v = win.y0; v < win.y1; ++v) {
      for (int u = win.x0; u < win.x1; ++u) {
        propose_row(u, v, s, moves);
      }
    }
  };

  auto commit_window = [&](std::int64_t w) {
    for (const PlannedMove& m : window_moves[static_cast<std::size_t>(w)]) {
      eval_.CommitMove(m.cell, m.x, m.y, m.layer);
    }
  };

  runtime::ParallelForWindows(
      pool, tiling.NumWindows(), tiling.colors(), WindowTiling::kNumColors,
      propose_window, commit_window,
      [&](int color) { return obs::TraceScope(kColorTrace[color]); });

  // Fold the views' kernel counters back in slot order (deterministic sums).
  for (Scratch& s : scratch) {
    eval_.MergeEvalStats(s.view.stats());
    s.view.ClearStats();
  }
  obs::MetricAdd("legalize/windows",
                 static_cast<std::int64_t>(tiling.NumWindows()));
}

ShiftStats CellShifter::Run(int max_iters, double target_density) {
  obs::TraceScope trace_shift("shift.run");
  const netlist::Netlist& nl = eval_.netlist();
  const Chip& chip = eval_.chip();
  BinGrid grid(chip, nl.AvgCellWidth(), nl.AvgCellHeight());
  ShiftStats stats;
  for (int it = 0; it < max_iters; ++it) {
    grid.Rebuild(nl, eval_.placement());
    stats.final_max_density = grid.MaxDensity();
    if (stats.final_max_density <= target_density) break;
    ++stats.iterations;
    SweepAxis(grid, 2);  // balance layers first: z capacity is the scarcest
    SweepAxis(grid, 0);
    SweepAxis(grid, 1);
  }
  grid.Rebuild(nl, eval_.placement());
  stats.final_max_density = grid.MaxDensity();
  obs::MetricAdd("shift/runs", 1);
  obs::MetricAdd("shift/iterations", stats.iterations);
  obs::MetricSet("shift/final_max_density", stats.final_max_density);
  util::LogDebug("shift: %d iters, max density %.3f", stats.iterations,
                 stats.final_max_density);
  return stats;
}

}  // namespace p3d::place
