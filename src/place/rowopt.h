// Legality-preserving detailed-placement refinement.
//
// The paper's Section 4/5 notes that "the coarse legalization methods can
// also be used in conjunction with detailed legalization to iteratively
// improve an existing placement during a post-optimization phase of detailed
// placement". This component is that phase: it improves a *legal* placement
// without ever breaking legality, using the full objective (Eq. 3) for every
// decision:
//
//   * slide — move a cell within its free span in the row toward the
//     weighted-median optimum of its nets;
//   * reorder — exchange the order of two adjacent cells in a row (repacked
//     inside their combined extent, so no overlap can appear);
//   * layer swap — exchange two cells on different layers when each fits in
//     the other's free span (trades vias for wirelength under Eq. 3).
//
// All three passes run under the windowed propose/commit protocol
// (DESIGN.md §5): row indices are tiled into blocks of
// `legalize_window_rows` rows spanning all layers, 2-colored by block
// parity. Every rowopt action is confined to a single row index (slides and
// reorders are intra-row; a layer swap exchanges cells between adjacent
// layers of the SAME row index), so same-color blocks touch disjoint rows
// and can screen proposals concurrently against the frozen placement.
// Commits replay serially in ascending window order and re-evaluate every
// action against the live evaluator before applying it, so the placement is
// byte-identical for any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "place/objective.h"
#include "util/rng.h"

namespace p3d::place {

struct RowOptStats {
  long long slides = 0;
  long long reorders = 0;
  long long layer_swaps = 0;
  double gain = 0.0;  // objective reduction (positive = improved)
};

class RowRefiner {
 public:
  RowRefiner(ObjectiveEvaluator& eval, std::uint64_t seed);

  /// Runs `passes` refinement passes over all rows. The placement must be
  /// legal (row-aligned, overlap-free); it stays legal.
  RowOptStats Run(int passes);

 private:
  struct Entry {
    std::int32_t cell;
    double lo;  // left edge
    double hi;  // right edge
  };

  // Screened proposals. Each names its cells by id; the commit relocates
  // them in the live rows and deterministically skips any proposal whose
  // preconditions no longer hold (an earlier rejected proposal can shift
  // what the window's simulation assumed).
  struct SlideProp {
    int layer;
    int r;
    std::int32_t index;  // entry index (stable: slides never reorder a row)
    std::int32_t cell;
  };
  struct PairProp {
    int layer;
    int r;
    std::int32_t cell_a;  // left cell of the adjacent pair
    std::int32_t cell_b;
  };
  struct SwapProp {
    int layer;  // cell_a's layer; cell_b sits on layer + 1, same row index
    int r;
    std::int32_t cell_a;
    std::int32_t cell_b;
  };

  /// Rebuilds the per-row sorted occupancy from the current placement.
  void BuildRows();

  std::vector<Entry>& RowAt(int layer, int r) {
    return rows_[static_cast<std::size_t>(layer * chip_.num_rows() + r)];
  }

  ObjectiveEvaluator& eval_;
  Chip chip_;
  util::Rng rng_;
  std::vector<std::vector<Entry>> rows_;
};

}  // namespace p3d::place
