// Legality-preserving detailed-placement refinement.
//
// The paper's Section 4/5 notes that "the coarse legalization methods can
// also be used in conjunction with detailed legalization to iteratively
// improve an existing placement during a post-optimization phase of detailed
// placement". This component is that phase: it improves a *legal* placement
// without ever breaking legality, using the full objective (Eq. 3) for every
// decision:
//
//   * slide — move a cell within its free span in the row toward the
//     weighted-median optimum of its nets;
//   * reorder — exchange the order of two adjacent cells in a row (repacked
//     inside their combined extent, so no overlap can appear);
//   * layer swap — exchange two cells on different layers when each fits in
//     the other's free span (trades vias for wirelength under Eq. 3).
#pragma once

#include <cstdint>
#include <vector>

#include "place/objective.h"
#include "util/rng.h"

namespace p3d::place {

struct RowOptStats {
  long long slides = 0;
  long long reorders = 0;
  long long layer_swaps = 0;
  double gain = 0.0;  // objective reduction (positive = improved)
};

class RowRefiner {
 public:
  RowRefiner(ObjectiveEvaluator& eval, std::uint64_t seed);

  /// Runs `passes` refinement passes over all rows. The placement must be
  /// legal (row-aligned, overlap-free); it stays legal.
  RowOptStats Run(int passes);

 private:
  struct Entry {
    std::int32_t cell;
    double lo;  // left edge
    double hi;  // right edge
  };

  /// Rebuilds the per-row sorted occupancy from the current placement.
  void BuildRows();

  void SlidePass(RowOptStats* stats);
  void ReorderPass(RowOptStats* stats);
  void LayerSwapPass(RowOptStats* stats);

  std::vector<Entry>& RowAt(int layer, int r) {
    return rows_[static_cast<std::size_t>(layer * chip_.num_rows() + r)];
  }

  ObjectiveEvaluator& eval_;
  Chip chip_;
  util::Rng rng_;
  std::vector<std::vector<Entry>> rows_;
};

}  // namespace p3d::place
