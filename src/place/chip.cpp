#include "place/chip.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace p3d::place {

util::StatusOr<Chip> Chip::Build(const netlist::Netlist& nl, int num_layers,
                                 double whitespace, double inter_row_space) {
  if (!nl.finalized()) {
    return util::FailedPreconditionError(
        "Chip::Build: netlist is not finalized");
  }
  if (num_layers < 1) {
    return util::InvalidArgumentError("Chip::Build: num_layers must be >= 1, got " +
                                      std::to_string(num_layers));
  }
  if (!(whitespace >= 0.0 && whitespace < 1.0)) {
    return util::InvalidArgumentError(
        "Chip::Build: whitespace must be in [0, 1), got " +
        std::to_string(whitespace));
  }
  if (!(inter_row_space >= 0.0)) {
    return util::InvalidArgumentError(
        "Chip::Build: inter_row_space must be >= 0, got " +
        std::to_string(inter_row_space));
  }

  Chip chip;
  chip.num_layers_ = num_layers;
  if (nl.NumMovableCells() == 0) {
    // No movable area to size against: produce a minimal one-row die with a
    // nominal row height so downstream geometry (NearestRow, bin grids,
    // reports) stays finite instead of dividing by zero.
    chip.row_height_ = 1e-6;
    chip.row_pitch_ = chip.row_height_ * (1.0 + inter_row_space);
    chip.num_rows_ = 1;
    chip.height_ = chip.row_pitch_;
    chip.width_ = chip.row_height_;
    return chip;
  }
  chip.row_height_ = nl.AvgCellHeight();
  chip.row_pitch_ = chip.row_height_ * (1.0 + inter_row_space);

  // Row capacity must hold the per-layer share of cell area with the given
  // whitespace: rows_area * (1 - whitespace) = cell_area / layers.
  const double cell_area_per_layer = nl.MovableArea() / num_layers;
  double rows_area = cell_area_per_layer / (1.0 - whitespace);
  // Square die: width = height, with height quantized to whole row pitches.
  const double die_area = rows_area / chip.RowFraction();
  double side = std::sqrt(die_area);
  int rows = std::max(1, static_cast<int>(std::ceil(side / chip.row_pitch_)));
  // Legalization needs each row to keep at least ~the widest cell of free
  // space once everything is placed, or the final cells face an unsolvable
  // bin-packing instance. Irrelevant for realistic designs (thousands of
  // cells per row), but scaled-down benchmark circuits have only a handful
  // of cells per row and the paper's 5% whitespace is then too tight.
  const double min_slack_per_row = 1.2 * nl.MaxCellWidth() * chip.row_height_;
  rows_area = std::max(rows_area,
                       cell_area_per_layer + rows * min_slack_per_row);
  chip.num_rows_ = rows;
  chip.height_ = rows * chip.row_pitch_;
  // Width chosen so the row capacity is exactly rows_area.
  chip.width_ = rows_area / (rows * chip.row_height_);
  // Guard against degenerate aspect ratios on tiny designs.
  if (chip.width_ < chip.row_height_) chip.width_ = chip.row_height_;
  return chip;
}

int Chip::NearestRow(double y) const {
  const int r = static_cast<int>(std::floor(y / row_pitch_));
  return std::clamp(r, 0, num_rows_ - 1);
}

}  // namespace p3d::place
