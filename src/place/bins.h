// Coarse 3D density mesh shared by cell shifting and the move/swap
// optimizer (paper Section 4: "bins equal to two cell widths, two cell
// heights, and one layer thickness").
#pragma once

#include <cstdint>
#include <vector>

#include "place/chip.h"

namespace p3d::place {

class BinGrid {
 public:
  /// Builds a uniform mesh over the chip with bins of roughly
  /// `cells_per_bin_x` average cell widths by `cells_per_bin_y` average cell
  /// heights by one layer.
  BinGrid(const Chip& chip, double avg_cell_w, double avg_cell_h,
          double cells_per_bin_x = 2.0, double cells_per_bin_y = 2.0);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int NumBins() const { return nx_ * ny_ * nz_; }
  double bin_w() const { return bw_; }
  double bin_h() const { return bh_; }
  /// Placeable area capacity of one bin (row fraction applied).
  double BinCapacity() const { return cap_; }

  int XIndex(double x) const;
  int YIndex(double y) const;
  int Flat(int bx, int by, int bz) const { return bx + nx_ * (by + ny_ * bz); }
  int BinOf(double x, double y, int layer) const;
  double BinCenterX(int bx) const { return (bx + 0.5) * bw_; }
  double BinCenterY(int by) const { return (by + 0.5) * bh_; }

  /// Rebuilds occupancy (area + cell lists) from a placement; fixed cells
  /// count toward area but are not listed as movable occupants.
  void Rebuild(const netlist::Netlist& nl, const Placement& p);

  double Area(int flat) const { return area_[static_cast<std::size_t>(flat)]; }
  double Density(int flat) const { return area_[static_cast<std::size_t>(flat)] / cap_; }
  double MaxDensity() const;
  const std::vector<std::int32_t>& Cells(int flat) const {
    return cells_[static_cast<std::size_t>(flat)];
  }

  /// Incremental occupancy update when a movable cell changes bins.
  void MoveCell(std::int32_t cell, double cell_area, int from_flat, int to_flat);

 private:
  int nx_ = 1, ny_ = 1, nz_ = 1;
  double bw_ = 0.0, bh_ = 0.0, cap_ = 0.0;
  std::vector<double> area_;
  std::vector<std::vector<std::int32_t>> cells_;
};

}  // namespace p3d::place
