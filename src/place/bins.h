// Coarse 3D density mesh shared by cell shifting and the move/swap
// optimizer (paper Section 4: "bins equal to two cell widths, two cell
// heights, and one layer thickness"), plus the window tiling the parallel
// coarse-legalization schedule runs over (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <vector>

#include "place/chip.h"
#include "place/params.h"

namespace p3d::place {

class BinGrid {
 public:
  /// Builds a uniform mesh over the chip with bins of roughly
  /// `cells_per_bin_x` average cell widths by `cells_per_bin_y` average cell
  /// heights by one layer.
  BinGrid(const Chip& chip, double avg_cell_w, double avg_cell_h,
          double cells_per_bin_x = 2.0, double cells_per_bin_y = 2.0);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  /// Size of the flat index space, *including* block padding (see Flat).
  /// Padded slots hold zero area and empty occupant lists forever, so loops
  /// over [0, NumBins()) see them as permanently empty bins.
  int NumBins() const { return layer_stride_ * nz_; }
  double bin_w() const { return bw_; }
  double bin_h() const { return bh_; }
  /// Placeable area capacity of one bin (row fraction applied).
  double BinCapacity() const { return cap_; }

  int XIndex(double x) const;
  int YIndex(double y) const;

  // Cache-blocked flat layout: each layer is tiled into kBlock x kBlock
  // lateral blocks stored contiguously (block-major, row-major inside the
  // block), so the 3x3-to-5x5 lateral neighbourhoods the move engines and the
  // legalizer BFS walk touch 1-4 cache blocks instead of kBlock-ish strided
  // rows. The x/y extents round up to whole blocks; the flat space is padded
  // accordingly (see NumBins). Only Flat/Decompose know the layout — all
  // other code treats flat ids as opaque.
  static constexpr int kBlockShift = 2;
  static constexpr int kBlock = 1 << kBlockShift;
  static constexpr int kBlockMask = kBlock - 1;

  int Flat(int bx, int by, int bz) const {
    const int block = (bx >> kBlockShift) + nbx_ * (by >> kBlockShift);
    return bz * layer_stride_ + (block << (2 * kBlockShift)) +
           ((by & kBlockMask) << kBlockShift) + (bx & kBlockMask);
  }
  /// Inverse of Flat for in-range bins (callers must not pass padded slots).
  void Decompose(int flat, int* bx, int* by, int* bz) const {
    *bz = flat / layer_stride_;
    const int rem = flat - *bz * layer_stride_;
    const int block = rem >> (2 * kBlockShift);
    const int within = rem & (kBlock * kBlock - 1);
    *bx = ((block % nbx_) << kBlockShift) + (within & kBlockMask);
    *by = ((block / nbx_) << kBlockShift) + (within >> kBlockShift);
  }
  int BinOf(double x, double y, int layer) const;
  double BinCenterX(int bx) const { return (bx + 0.5) * bw_; }
  double BinCenterY(int by) const { return (by + 0.5) * bh_; }

  /// Rebuilds occupancy (area + cell lists) from a placement; fixed cells
  /// count toward area but are not listed as movable occupants. Fixed and
  /// movable area are accumulated in separate cell-id-order passes, so a
  /// freshly rebuilt grid satisfies Area == (canonical) ResyncAreas bytes.
  void Rebuild(const netlist::Netlist& nl, const Placement& p);

  double Area(int flat) const { return area_[static_cast<std::size_t>(flat)]; }
  double Density(int flat) const { return area_[static_cast<std::size_t>(flat)] / cap_; }
  double MaxDensity() const;
  const std::vector<std::int32_t>& Cells(int flat) const {
    return cells_[static_cast<std::size_t>(flat)];
  }

  /// Incremental occupancy update when a movable cell changes bins.
  void MoveCell(std::int32_t cell, double cell_area, int from_flat, int to_flat);

  /// Re-derives every bin's area from the fixed base plus its occupant list
  /// summed in ascending cell-id order — a canonical value independent of the
  /// move history. Incremental MoveCell updates accumulate float error in an
  /// order that depends on the commit sequence; resyncing at schedule
  /// boundaries pins the running occupancy to the same bytes any path to the
  /// same occupancy state produces.
  void ResyncAreas(const netlist::Netlist& nl);

  /// Tolerance-checked capacity test: true when `cell_area` more area still
  /// fits under `slack` times the bin capacity, allowing kBinAreaRelTol of
  /// capacity for float accumulation noise in the running occupancy. All
  /// capacity decisions go through this so an accept/reject can never flip on
  /// accumulation-order noise smaller than the tolerance.
  bool FitsWithSlack(int flat, double cell_area, double slack) const {
    return Area(flat) + cell_area <= cap_ * slack + cap_ * kBinAreaRelTol;
  }

 private:
  int nx_ = 1, ny_ = 1, nz_ = 1;
  int nbx_ = 1, nby_ = 1;    // lateral blocks per layer
  int layer_stride_ = 1;     // padded flat slots per layer
  double bw_ = 0.0, bh_ = 0.0, cap_ = 0.0;
  std::vector<double> area_;        // fixed + movable, running
  std::vector<double> fixed_area_;  // fixed cells only (set by Rebuild)
  std::vector<std::vector<std::int32_t>> cells_;
  mutable std::vector<std::int32_t> sort_scratch_;
};

/// One rectangular window of the lateral bin grid: bin columns
/// [x0, x1) x [y0, y1), spanning all layers. Colored by window parity so no
/// two same-color windows are lateral neighbours.
struct BinWindow {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  int color = 0;  // (wx & 1) | ((wy & 1) << 1), in [0, 4)
};

/// Tiling of an nx x ny lateral grid into window_bins x window_bins windows
/// (the last row/column may be smaller). Windows tile the grid exactly: every
/// bin belongs to exactly one window. Two windows of the same color are
/// separated by at least window_bins bins along x or y, so windows expanded
/// by a halo of up to window_bins / 2 bins stay pairwise disjoint within one
/// color — the property that lets same-color windows propose concurrently
/// without overlapping candidate regions (DESIGN.md §5).
class WindowTiling {
 public:
  WindowTiling(int nx, int ny, int window_bins);

  int NumWindows() const { return static_cast<int>(windows_.size()); }
  const BinWindow& window(int w) const {
    return windows_[static_cast<std::size_t>(w)];
  }
  const std::vector<BinWindow>& windows() const { return windows_; }
  /// Per-window color, index-aligned with windows(); 4 colors.
  const std::vector<int>& colors() const { return colors_; }
  static constexpr int kNumColors = 4;

  /// Window containing lateral bin (bx, by).
  int WindowOf(int bx, int by) const {
    return bx / window_bins_ + nwx_ * (by / window_bins_);
  }

  int window_bins() const { return window_bins_; }

 private:
  int nwx_ = 1;
  int window_bins_ = 1;
  std::vector<BinWindow> windows_;
  std::vector<int> colors_;
};

}  // namespace p3d::place
