// AnomalyMonitor — convergence watchdog riding the PhaseObserver chain
// (DESIGN.md §7, "obs v2").
//
// The placer's objective trajectory is sampled at every phase boundary by
// PhaseMetricsSampler; this monitor looks at the same boundaries and flags
// the patterns that historically meant "this run is going wrong" long before
// the final QoR shows it:
//
//   * divergence   — the Eq. 3 total rose more than `divergence_factor`
//                    above the best value seen so far;
//   * oscillation  — the total alternated direction across the last
//                    `oscillation_window` samples with relative amplitude
//                    above `oscillation_rel_amplitude` (a classic sign of a
//                    mistuned alpha or a legalize/refine tug-of-war);
//   * cg_blowup    — the CG iterations spent since the previous boundary
//                    exceeded `cg_blowup_factor` times the trailing mean
//                    (thermal solve struggling to converge);
//   * reject_spike — committed-move rejects since the previous boundary
//                    exceeded `reject_spike_ratio` of proposals (move engine
//                    thrashing);
//   * fea_nonconverged — one or more thermal solves since the previous
//                    boundary hit their iteration cap (the deterministic
//                    fea/nonconverged counter moved), so the reported
//                    temperatures for that stretch are untrusted.
//
// Detection is passive and deterministic: the monitor only reads the
// evaluator and the thread's CurrentMetrics() counters, never steers the
// flow. Each anomaly increments an "anomaly/<kind>" counter, drops an
// instant event into the trace and the black-box ring, and logs one warning;
// the full list is kept for the run/batch reports.
#pragma once

#include <string>
#include <vector>

#include "place/placer.h"

namespace p3d::place {

struct AnomalyOptions {
  /// Total objective more than this factor above the best-seen flags
  /// divergence.
  double divergence_factor = 1.25;
  /// Samples examined for oscillation; < 3 disables the check.
  int oscillation_window = 4;
  /// Minimum relative swing (peak-to-trough over mean) for oscillation.
  double oscillation_rel_amplitude = 0.01;
  /// Per-phase CG iterations above this multiple of the trailing mean flag
  /// a blow-up.
  double cg_blowup_factor = 4.0;
  /// Rejected / proposed moves above this ratio flags a reject spike.
  double reject_spike_ratio = 0.5;
};

class AnomalyMonitor : public PhaseObserver {
 public:
  explicit AnomalyMonitor(const AnomalyOptions& options);
  AnomalyMonitor();

  void OnPhase(const char* phase, int round, const ObjectiveEvaluator& eval,
               const GlobalPlaceStats* global_stats) override;

  struct Anomaly {
    std::string kind;   // "divergence", "oscillation", "cg_blowup", ...
    std::string phase;  // phase boundary where it fired
    int round = -1;
    double detail = 0.0;  // kind-specific magnitude (ratio, amplitude, ...)
  };
  const std::vector<Anomaly>& anomalies() const { return anomalies_; }

 private:
  void Flag(const char* kind, const char* counter, const char* phase,
            int round, double detail);

  AnomalyOptions options_;
  std::vector<Anomaly> anomalies_;
  std::vector<double> totals_;        // objective history, one per boundary
  double best_total_ = 0.0;           // best (lowest) total seen
  bool has_best_ = false;
  std::int64_t last_cg_iters_ = 0;    // counter values at the last boundary
  std::int64_t last_proposals_ = 0;
  std::int64_t last_rejects_ = 0;
  std::int64_t last_fea_nonconverged_ = 0;
  std::vector<double> cg_deltas_;     // per-boundary CG iteration deltas
};

}  // namespace p3d::place
