// Analytical global placement (ePlace-3D style): quadratic B2B wirelength
// with 3D density spreading, solved by the src/linalg conjugate gradient.
//
// Each outer iteration:
//   1. re-linearizes every net into its Bound2Bound (B2B) model per axis:
//      every pin connects to the two boundary pins with weight
//      2 / ((p - 1) * |d|), so the quadratic form equals the net's HPWL at
//      the linearization point [Spindler et al., Kraftwerk2]. Nets are
//      weighted with the paper's Eq. 8 thermal-aware weights — lateral
//      weights for the x/y systems and alpha_ILV-scaled vertical weights for
//      the z system, which is how the via budget couples the layers;
//   2. computes density-spreading anchor targets on a per-layer bin mesh: a
//      FastPlace-style boundary remap per axis (rows of bins along x,
//      columns along y, layer columns along z) expands over-full bins, and a
//      per-layer bin-density multiplier scales each cell's anchor weight by
//      how over-full its bin is;
//   3. solves one SPD system per axis (x, y, and z on multi-layer dies) with
//      CG + the Jacobi/IC(0) preconditioner infrastructure, warm-started
//      from the current positions.
// The anchor weight ramps geometrically (params.analytic_anchor_*), trading
// wirelength for spreading like ePlace's density-penalty ramp. After the
// last iteration the continuous layer coordinate rounds to the nearest
// layer; coarse legalization refines from there exactly as it does after
// bisection.
//
// Determinism: assembly iterates nets and cells in index order, bin
// accumulation is serial, and the CG solves are bit-identical at any thread
// count (src/linalg contract) — so the backend meets the library-wide
// byte-identity contract with parallelism confined to the solves and the
// per-net metric refresh.
#pragma once

#include <cstdint>
#include <vector>

#include "place/global_backend.h"
#include "place/netweight.h"
#include "place/objective.h"
#include "runtime/thread_pool.h"

namespace p3d::place {

class AnalyticPlacer final : public GlobalPlacerBackend {
 public:
  /// The evaluator supplies netlist, chip, params, and the Eq. 8 power-rate
  /// coefficients; its placement state is not modified.
  explicit AnalyticPlacer(const ObjectiveEvaluator& eval);

  const char* name() const override { return "analytic"; }

  /// Runs the analytic flow. `initial` provides positions for fixed cells
  /// (movable cells are re-initialized near the chip center with a seeded
  /// symmetry-breaking jitter).
  util::StatusOr<Placement> Run(const Placement& initial) override;

  const GlobalPlaceStats& stats() const override { return stats_; }

 private:
  /// One axis of the placement state during the solve: x and y in metres,
  /// z as a continuous layer coordinate in [0, num_layers - 1].
  enum Axis { kX = 0, kY = 1, kZ = 2 };

  /// Refreshes per-iteration net metrics (HPWL / layer span from the current
  /// continuous positions), cell powers with PEKO floors, and the Eq. 8 net
  /// weights — the same level data the bisection backend maintains.
  void RefreshNetWeights();

  /// Assembles the B2B system of `axis` plus the density anchors at weight
  /// `lambda` and solves it; positions update in place.
  void SolveAxis(Axis axis, double lambda);

  /// Rebuilds the per-layer bin mesh occupancy from the current positions
  /// and derives the spreading targets + density multipliers for every axis.
  void RefreshDensity();

  /// Discretizes the continuous layer coordinate: movable cells sorted by
  /// (z, cell id) fill the layers bottom-up to equal movable area — a 1-D
  /// legalization in z that keeps z-adjacent (i.e. connected) cells on the
  /// same layer instead of letting the final rounding split nets that
  /// straddle a bin boundary.
  void SnapLayers();

  /// Order-preserving handoff onto the chip's row grid: per layer, y-sorted
  /// cells fill rows bottom-up to equal area and each row spreads its cells
  /// across the width in x order — near-legal density at cell granularity.
  void SnapToRows();

  /// Coordinate of `cell`'s center on `axis` (z = continuous layer).
  double Coord(Axis axis, std::size_t cell) const {
    return axis == kX ? cx_[cell] : axis == kY ? cy_[cell] : cz_[cell];
  }

  const ObjectiveEvaluator& eval_;
  const netlist::Netlist& nl_;
  Chip chip_;
  PlacerParams params_;

  // Continuous positions, indexed by cell id (fixed cells hold their pads).
  std::vector<double> cx_, cy_, cz_;
  std::vector<std::int32_t> movable_;    // movable cell ids, ascending
  std::vector<std::int32_t> index_of_;   // cell -> movable index, or -1

  // Per-net Eq. 8 weights and the cell powers behind the heat-sink pull
  // (Eq. 12 linearized into the z system), refreshed every outer iteration.
  std::vector<double> net_hpwl_;
  std::vector<int> net_span_;
  std::vector<double> nw_lateral_;
  std::vector<double> nw_vertical_;
  std::vector<double> cell_power_;
  PekoFloors floors_;
  double r_slope_z_ = 0.0;

  // Density mesh (per layer, nx_ x ny_ bins) and the spreading outputs.
  int nx_ = 0, ny_ = 0;
  std::vector<double> bin_area_;         // occupancy, [layer][by][bx]
  std::vector<double> density_mult_;     // per movable cell, >= 1
  std::vector<double> target_x_, target_y_, target_z_;  // per movable cell
  double max_density_ = 0.0;             // max bin density / capacity

  // Solver scratch, reused across axes and iterations.
  std::vector<double> diag_hint_;        // per-movable B2B diagonal (weights)
  std::vector<double> rhs_, sol_;

  runtime::ThreadPool* pool_ = nullptr;  // fetched per Run from the knob
  GlobalPlaceStats stats_;
};

}  // namespace p3d::place
