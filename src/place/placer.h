// Placer3D — the public entry point of the library.
//
// Runs the paper's full flow (Section 6):
//   1. global placement: 3D recursive bisection with thermal net weighting
//      and thermal-resistance-reduction nets;
//   2. coarse legalization: global then local moves/swaps interleaved with
//      cell shifting until the density mesh is nearly legal;
//   3. detailed legalization: overlap-free row placement driven by the
//      objective;
//   4. (optionally repeated coarse+detailed post-optimization rounds);
//   5. reporting: wirelength, interlayer vias, power (Eq. 4-5), and FEA
//      temperatures — exactly the metrics of the paper's Section 7.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "linalg/cg.h"
#include "netlist/netlist.h"
#include "place/chip.h"
#include "place/objective.h"
#include "place/params.h"
#include "util/status.h"

namespace p3d::thermal {
class FeaContext;
}  // namespace p3d::thermal

namespace p3d::place {

struct GlobalPlaceStats;

/// Observer of flow phase boundaries, called by Placer3D::Run whenever at
/// least one observer is attached. `phase` is one of "global", "coarse",
/// "detailed", "refine", "final"; `round` is the legalization-repeat index
/// (0-based; -1 for "global"/"final"). `global_stats` is non-null only for
/// the "global" phase and carries the backend-agnostic stats of whichever
/// global backend ran (place/global_backend.h) — observers that need
/// engine-specific counters read the detail payload matching
/// `global_stats->backend`. The evaluator is const: observers verify or
/// record, they never steer. The audit subsystem (check::PlacementAuditor),
/// the metrics sampler (place::PhaseMetricsSampler), the anomaly monitor,
/// and the serve heartbeats all implement this one signature.
class PhaseObserver {
 public:
  virtual ~PhaseObserver() = default;
  virtual void OnPhase(const char* phase, int round,
                       const ObjectiveEvaluator& eval,
                       const GlobalPlaceStats* global_stats) = 0;
};

struct PlacementResult {
  Placement placement;

  // Quality metrics.
  double hpwl_m = 0.0;           // total lateral half-perimeter wirelength
  long long ilv_count = 0;       // total interlayer vias (sum of net spans)
  double ilv_density = 0.0;      // vias per m^2 per interlayer (paper Fig. 3)
  double objective = 0.0;        // Eq. 3 value
  double total_power_w = 0.0;    // Eq. 4-5 over all nets
  double avg_temp_c = 0.0;       // FEA average cell temperature
  double max_temp_c = 0.0;       // FEA maximum cell temperature
  bool fea_valid = false;

  // Health.
  bool legal = false;            // no overlaps, cells in rows
  long long overlaps = 0;

  // Phase runtimes, seconds (paper Fig. 10).
  double t_global = 0.0;
  double t_coarse = 0.0;
  double t_detailed = 0.0;
  double t_fea = 0.0;            // cumulative FEA (RHS + CG + readback) time
  double t_total = 0.0;

  // Cumulative FEA/CG solve accounting (solver reuse layer).
  long long fea_solves = 0;        // thermal solves run during the flow
  long long fea_cg_iters = 0;      // CG iterations / V-cycles across them
  long long fea_nonconverged = 0;  // solves that hit the iteration cap
                                   // (also surfaced as fea/nonconverged in
                                   // the metrics registry and run-report QoR)
};

/// Everything a Placer3D::Run invocation can be configured with (the single
/// entry point — the pre-Status Run(bool) / Run(initial, bool) shims were
/// removed after one deprecation release).
struct RunOptions {
  /// Starting placement. Empty (size 0) means an all-zero initial; otherwise
  /// the size must match the netlist and the fixed-cell entries position the
  /// pads/terminals (movable entries are re-initialized by global placement,
  /// as in the paper).
  Placement initial;

  /// Run the report-only FEA temperature solve at the end of the flow.
  bool with_fea = true;

  /// Also run an observational FEA solve at every phase boundary (global,
  /// coarse, detailed, refine, final). Purely diagnostic: results feed the
  /// flight recorder and the cumulative solve-time accounting, never the
  /// placement. This is the workload the solver cache accelerates.
  bool fea_per_phase = false;

  // ----- solver cache (thermal::FeaContext) -------------------------------
  /// Reuse one stiffness-matrix assembly + preconditioner across every FEA
  /// solve of this run. Off = a fresh solver and preconditioner per solve
  /// (the pre-cache behavior, kept as a determinism cross-check).
  bool use_solver_cache = true;
  /// Seed each FEA solve from the previous temperature field (requires the
  /// solver cache; ignored without it).
  bool warm_start = true;
  /// CG preconditioner for the FEA solves.
  linalg::PreconditionerKind preconditioner = linalg::PreconditionerKind::kIc0;

  // ----- serving hooks (src/serve) ----------------------------------------
  /// Cooperative cancellation flag, polled at the same phase boundaries
  /// where PhaseObserver fires. When it reads true, Run returns kCancelled
  /// within one phase; the partial placement is discarded. Null = never
  /// cancelled. The pointee must outlive the Run call.
  const std::atomic<bool>* cancel = nullptr;

  /// Externally owned solver-reuse context (non-owning). When set (and the
  /// solver cache is enabled), the run Refresh()es and solves through this
  /// context instead of building its own — the serve engine passes a
  /// context whose assembly is shared across jobs with identical stack
  /// geometry. Must outlive the Run call; ignored when use_solver_cache is
  /// false.
  thermal::FeaContext* fea_context = nullptr;
};

class Placer3D {
 public:
  /// Validated construction: checks the netlist is finalized and the
  /// floorplan parameters are in range, then builds the die. The netlist
  /// must outlive the placer.
  static util::StatusOr<Placer3D> Create(const netlist::Netlist& nl,
                                         const PlacerParams& params);

  /// Unvalidated construction; aborts on invalid input. Prefer Create().
  Placer3D(const netlist::Netlist& nl, const PlacerParams& params);

  /// Runs the full flow as configured by `options`.
  util::StatusOr<PlacementResult> Run(const RunOptions& options);

  /// Attaches a phase observer (the auditor and the metrics sampler coexist
  /// this way). Observers are notified in attachment order.
  void AddPhaseObserver(PhaseObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }
  /// Detaches one previously attached observer (no-op if absent).
  void RemovePhaseObserver(PhaseObserver* observer);

  const Chip& chip() const { return chip_; }
  /// The evaluator after Run() holds the final placement and caches.
  const ObjectiveEvaluator& evaluator() const { return *eval_; }
  /// Mutable access, for attaching a CommitListener before Run().
  ObjectiveEvaluator* mutable_evaluator() { return eval_.get(); }

 private:
  Placer3D(const netlist::Netlist& nl, const PlacerParams& params, Chip chip);

  void NotifyPhase(const char* phase, int round,
                   const GlobalPlaceStats* global_stats = nullptr);

  const netlist::Netlist& nl_;
  PlacerParams params_;
  Chip chip_;
  std::unique_ptr<ObjectiveEvaluator> eval_;
  std::vector<PhaseObserver*> observers_;
};

/// Convenience: evaluates an existing placement (HPWL/ILV/power/FEA) without
/// running the placer. Used by benches to compare initial vs final quality.
PlacementResult EvaluatePlacement(const netlist::Netlist& nl,
                                  const PlacerParams& params, const Chip& chip,
                                  const Placement& placement, bool with_fea);

}  // namespace p3d::place
