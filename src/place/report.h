// Human-readable placement quality reports: per-layer occupancy and power,
// net span (via) histogram, wirelength statistics, and — when an FEA result
// is supplied — temperature summaries. Used by the CLI tool and examples.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "place/chip.h"
#include "place/params.h"

namespace p3d::place {

struct LayerStats {
  int cells = 0;
  double area = 0.0;         // m^2
  double utilization = 0.0;  // of row capacity
  double power = 0.0;        // W attributed to drivers on this layer
};

struct PlacementReport {
  std::vector<LayerStats> layers;
  std::vector<long long> span_histogram;  // nets by layer span (0..L-1)
  double total_hpwl = 0.0;
  long long total_ilv = 0;
  double total_power = 0.0;
  double avg_net_hpwl = 0.0;
  double max_net_hpwl = 0.0;

  // Eq. 3 objective decomposition, each term already weighted by its alpha:
  //   objective = wl_cost + ilv_cost + thermal_cost.
  double wl_cost = 0.0;       // sum WL_i
  double ilv_cost = 0.0;      // alpha_ILV * sum ILV_i
  double thermal_cost = 0.0;  // alpha_TEMP * sum R_j * P_j
  double objective = 0.0;     // Eq. 3 value
};

/// Computes the report from a placement.
PlacementReport AnalyzePlacement(const netlist::Netlist& nl, const Chip& chip,
                                 const PlacerParams& params,
                                 const Placement& placement);

/// Formats the report as aligned text (one string, trailing newline).
std::string FormatReport(const PlacementReport& report);

}  // namespace p3d::place
