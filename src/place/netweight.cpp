#include "place/netweight.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

#include "geom/geometry.h"

namespace p3d::place {
namespace {

/// Weighted median of interval endpoints: any point where the cumulative
/// endpoint weight crosses half the total minimizes sum w * dist(x, [lo,hi]).
double WeightedMedian(std::vector<std::pair<double, double>>& pts) {
  if (pts.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [v, w] : pts) total += w;
  std::sort(pts.begin(), pts.end());
  double acc = 0.0;
  for (const auto& [v, w] : pts) {
    acc += w;
    if (acc >= total / 2.0) return v;
  }
  return pts.back().first;
}

}  // namespace

NetWeights ComputeNetWeights(const ObjectiveEvaluator& eval) {
  const netlist::Netlist& nl = eval.netlist();
  const PlacerParams& params = eval.params();
  NetWeights w;
  const std::size_t nn = static_cast<std::size_t>(nl.NumNets());
  w.lateral.assign(nn, 1.0);
  w.vertical.assign(nn, 1.0);
  if (params.alpha_temp <= 0.0) return w;
  for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
    const std::int32_t driver = nl.DriverCell(n);
    if (driver < 0) continue;
    // R_net_i: sum over driver cells; this netlist model has one driver.
    const double r_net = eval.CellResistance(driver);
    const std::size_t i = static_cast<std::size_t>(n);
    w.lateral[i] = 1.0 + params.alpha_temp * r_net * eval.SWl(n);
    if (params.alpha_ilv > 0.0) {
      w.vertical[i] =
          1.0 + params.alpha_temp * r_net * eval.SIlv(n) / params.alpha_ilv;
    }
    // alpha_ILV = 0: z-cuts have zero weighted depth and are never selected,
    // so the vertical weight is irrelevant; keep it at 1.
  }
  return w;
}

PekoFloors ComputePekoFloors(const netlist::Netlist& nl, double alpha_ilv) {
  PekoFloors f;
  const std::size_t nn = static_cast<std::size_t>(nl.NumNets());
  f.wl_x.assign(nn, 0.0);
  f.wl_y.assign(nn, 0.0);
  f.ilv.assign(nn, 0.0);
  for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
    const auto pins = nl.NetPins(n);
    if (pins.size() < 2) continue;
    double w_sum = 0.0, h_sum = 0.0;
    for (const netlist::Pin& pin : pins) {
      w_sum += nl.cell(pin.cell).width;
      h_sum += nl.cell(pin.cell).height;
    }
    const double w_ave = w_sum / static_cast<double>(pins.size());
    const double h_ave = h_sum / static_cast<double>(pins.size());
    const double n_pins = static_cast<double>(pins.size());
    const std::size_t i = static_cast<std::size_t>(n);
    if (alpha_ilv > 0.0) {
      // Eq. 13-15: the optimal packing of n_pins cells of footprint
      // w_ave x h_ave x alpha_ilv is a cube of that volume.
      const double cube = std::cbrt(alpha_ilv * w_ave * h_ave * n_pins);
      f.wl_x[i] = std::max(0.0, cube - w_ave);
      f.wl_y[i] = std::max(0.0, cube - h_ave);
      f.ilv[i] = std::max(
          0.0, std::cbrt(w_ave * h_ave * n_pins / (alpha_ilv * alpha_ilv)) - 1.0);
    } else {
      // 2D degenerate case: minimal enclosing square of the pin cells.
      const double square = std::sqrt(w_ave * h_ave * n_pins);
      f.wl_x[i] = std::max(0.0, square - w_ave);
      f.wl_y[i] = std::max(0.0, square - h_ave);
      f.ilv[i] = 0.0;
    }
  }
  return f;
}

void OptimalLateralPosition(const ObjectiveEvaluator& eval, std::int32_t cell,
                            double* x, double* y) {
  const netlist::Netlist& nl = eval.netlist();
  const Placement& p = eval.placement();
  const PlacerParams& params = eval.params();
  std::vector<std::pair<double, double>> xs, ys;
  for (const std::int32_t pid : nl.CellPinIds(cell)) {
    const std::int32_t n = nl.pin(pid).net;
    // Bounding box of the net's *other* pins.
    geom::BBox3 box;
    for (const netlist::Pin& pin : nl.NetPins(n)) {
      if (pin.cell == cell) continue;
      const std::size_t c = static_cast<std::size_t>(pin.cell);
      box.Add(geom::Point3{p.x[c] + pin.dx, p.y[c] + pin.dy, p.layer[c]});
    }
    if (box.Empty()) continue;
    double w = 1.0;
    const std::int32_t driver = nl.DriverCell(n);
    if (params.alpha_temp > 0.0 && driver >= 0) {
      w = 1.0 + params.alpha_temp * eval.CellResistance(driver) * eval.SWl(n);
    }
    xs.emplace_back(box.LateralRect().x_lo, w);
    xs.emplace_back(box.LateralRect().x_hi, w);
    ys.emplace_back(box.LateralRect().y_lo, w);
    ys.emplace_back(box.LateralRect().y_hi, w);
  }
  const std::size_t i = static_cast<std::size_t>(cell);
  if (xs.empty()) {
    *x = p.x[i];
    *y = p.y[i];
    return;
  }
  *x = WeightedMedian(xs);
  *y = WeightedMedian(ys);
}

std::vector<double> ComputeCellPowerWithFloors(const ObjectiveEvaluator& eval,
                                               const PekoFloors& floors) {
  const netlist::Netlist& nl = eval.netlist();
  std::vector<double> power(static_cast<std::size_t>(nl.NumCells()), 0.0);
  for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
    const std::int32_t driver = nl.DriverCell(n);
    if (driver < 0) continue;
    const std::size_t i = static_cast<std::size_t>(n);
    // The measured lateral HPWL is compared against the combined x+y floor.
    const double wl_floor = floors.wl_x[i] + floors.wl_y[i];
    const double wl = std::max(eval.NetHpwl(n), wl_floor);
    const double ilv = std::max(static_cast<double>(eval.NetSpan(n)),
                                floors.ilv[i]);
    power[static_cast<std::size_t>(driver)] +=
        eval.SWl(n) * wl + eval.SIlv(n) * ilv + eval.SPinTerm(n);
  }
  return power;
}

}  // namespace p3d::place
