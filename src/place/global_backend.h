// GlobalPlacerBackend — the engine-agnostic interface of the global-placement
// phase.
//
// Placer3D::Run drives whichever backend PlacerParams::global_backend selects
// through this interface; the backends are
//   * GlobalPlacer (place/global.h): 3D recursive bisection, the paper's
//     Section 3 engine;
//   * AnalyticPlacer (place/global_analytic.h): quadratic-wirelength B2B
//     analytical placement with 3D density spreading (ePlace-3D style).
// Both honor the library-wide determinism contract: same seed + same inputs
// produce a byte-identical placement at ANY thread count (DESIGN.md §5), so a
// backend is a pure function of (netlist, chip, params, initial).
//
// GlobalPlaceStats is the backend-agnostic phase summary handed to
// PhaseObserver::OnPhase at the "global" boundary. The shared core (backend
// name, iteration count, cells placed) is meaningful for every engine; the
// per-backend detail payloads carry what only one engine can report
// (partition feasibility, CG iteration counts). Exactly the payload matching
// `backend` is populated.
#pragma once

#include <memory>
#include <string_view>

#include "place/chip.h"
#include "place/params.h"
#include "util/status.h"

namespace p3d::place {

class ObjectiveEvaluator;

/// Detail payload of the recursive-bisection backend.
struct BisectionDetail {
  int levels = 0;
  int partitions = 0;
  int infeasible_partitions = 0;  // balance bounds missed (diagnostic)
  long long partitioned_cells = 0;
};

/// Detail payload of the analytic backend.
struct AnalyticDetail {
  int iterations = 0;         // outer B2B/density iterations run
  int solves = 0;             // per-axis CG solves across all iterations
  long long cg_iters = 0;     // CG iterations across those solves
  double final_overflow = 0.0;  // max bin density / target at exit
};

/// Backend-agnostic global-placement statistics with per-backend detail.
struct GlobalPlaceStats {
  const char* backend = "";    // GlobalBackendName of the engine that ran
  int iterations = 0;          // bisection levels / analytic outer iterations
  long long cells_placed = 0;  // movable cells the backend positioned

  BisectionDetail bisection;   // populated when backend == "bisection"
  AnalyticDetail analytic;     // populated when backend == "analytic"

  // Pre-multi-backend field adapters, kept one release so out-of-tree
  // PhaseObserver implementations migrate without a flag day. In-tree code
  // reads the detail payloads directly.
  [[deprecated("use stats.bisection.levels")]] int levels() const {
    return bisection.levels;
  }
  [[deprecated("use stats.bisection.partitions")]] int partitions() const {
    return bisection.partitions;
  }
  [[deprecated("use stats.bisection.infeasible_partitions")]] int
  infeasible_partitions() const {
    return bisection.infeasible_partitions;
  }
  [[deprecated("use stats.bisection.partitioned_cells")]] long long
  partitioned_cells() const {
    return bisection.partitioned_cells;
  }
};

/// One global-placement engine. Stateless across Run calls except for stats()
/// (which reports the most recent Run). Implementations read netlist, chip,
/// params, and the Eq. 8 power-rate coefficients from the evaluator passed at
/// construction; they never mutate its placement state.
class GlobalPlacerBackend {
 public:
  virtual ~GlobalPlacerBackend() = default;

  /// The backend's registry name ("bisection", "analytic").
  virtual const char* name() const = 0;

  /// Runs global placement. `initial` provides positions for fixed cells
  /// (movable entries are re-initialized by the backend, as in the paper);
  /// size 0 means an all-zero initial. Errors with kInvalidArgument when a
  /// non-empty initial does not match the netlist.
  virtual util::StatusOr<Placement> Run(const Placement& initial) = 0;

  /// Statistics of the most recent Run (zeroed before it).
  virtual const GlobalPlaceStats& stats() const = 0;
};

/// Returns "bisection" / "analytic".
const char* GlobalBackendName(GlobalBackend kind);

/// Parses a backend name as spelled by --global-backend / the jobs manifest.
/// Unknown names error with kInvalidArgument listing the valid spellings.
util::StatusOr<GlobalBackend> ParseGlobalBackend(std::string_view name);

/// Constructs the backend `kind` over `eval` (which must outlive it). Errors
/// with kInvalidArgument on an out-of-range enum value (e.g. a cast from a
/// corrupted manifest).
util::StatusOr<std::unique_ptr<GlobalPlacerBackend>> MakeGlobalPlacerBackend(
    GlobalBackend kind, const ObjectiveEvaluator& eval);

/// Convenience: the backend selected by eval.params().global_backend.
util::StatusOr<std::unique_ptr<GlobalPlacerBackend>> MakeGlobalPlacerBackend(
    const ObjectiveEvaluator& eval);

}  // namespace p3d::place
