// Local and global moves & swaps (paper Section 4.2), run on the windowed
// parallel coarse-legalization schedule (DESIGN.md §5).
//
// Both procedures evaluate candidate relocations with the full objective
// (Eq. 3) through the shared ObjectiveEvaluator and execute, per cell, the
// best strictly-improving move or swap.
//
//   * Local: the target region is the 3x3x3 neighbourhood of the cell's bin.
//   * Global: the target region is a fixed number of bins around the cell's
//     *optimal region* — the weighted-median position of its nets (the
//     optimal-region idea of [14], extended with 3D layer search and the
//     Eq. 8 net weights).
//
// Parallel schedule: the lateral bin grid is tiled into windows, 4-colored
// by window parity. Cells are bucketed into the window holding their bin at
// pass start (shuffled order preserved). Windows of one color PROPOSE
// concurrently — each worker evaluates its window's cells against the frozen
// committed state through a thread-slot-local DeltaView and records at most
// one best action per cell — then every proposal COMMITS serially in fixed
// window order, revalidated against the live state (recomputed delta must
// still strictly improve; moves must still fit their bin). Proposals are
// pure functions of the color-start snapshot and commits are ordered, so
// placements are byte-identical for any thread count.
//
// Moves respect bin capacity (cells may be shifted aside later by cell
// shifting, whose cost the density guard approximates); swaps exchange
// positions with an occupant of the target bin.
#pragma once

#include <cstdint>

#include "place/bins.h"
#include "place/objective.h"
#include "util/rng.h"

namespace p3d::place {

struct MoveSwapStats {
  long long moves = 0;
  long long swaps = 0;
  long long proposals = 0;  // best-actions recorded by the propose phase
  long long rejected = 0;   // proposals that failed live revalidation
  double gain = 0.0;  // total objective reduction (positive = improved)
};

class MoveSwapOptimizer {
 public:
  MoveSwapOptimizer(ObjectiveEvaluator& eval, std::uint64_t seed);

  /// One pass of local moves/swaps over all movable cells (random order).
  MoveSwapStats RunLocal();

  /// One pass of global moves/swaps; `target_region_bins` caps the number of
  /// candidate bins examined around each cell's optimal position.
  MoveSwapStats RunGlobal(int target_region_bins);

 private:
  /// One best action for one cell, recorded by propose, applied by commit.
  struct Proposal {
    std::int32_t cell = -1;
    std::int32_t partner = -1;  // >= 0: swap with partner; < 0: move
    double x = 0.0, y = 0.0;    // move target (bin center)
    int layer = 0;
  };

  /// Shared body of RunLocal/RunGlobal: the windowed propose/commit pass.
  MoveSwapStats RunPass(bool global, int target_region_bins,
                        const char* trace_name);

  ObjectiveEvaluator& eval_;
  util::Rng rng_;
  // Allow moves into bins up to this much over nominal capacity; the excess
  // is reclaimed by the next cell-shifting pass.
  static constexpr double kDensitySlack = 1.10;
  // Swap candidates examined per target bin.
  static constexpr int kSwapCandidates = 3;
};

}  // namespace p3d::place
