// Local and global moves & swaps (paper Section 4.2).
//
// Both procedures evaluate candidate relocations with the full objective
// (Eq. 3) through the shared ObjectiveEvaluator and execute, per cell, the
// best strictly-improving move or swap.
//
//   * Local: the target region is the 3x3x3 neighbourhood of the cell's bin.
//   * Global: the target region is a fixed number of bins around the cell's
//     *optimal region* — the weighted-median position of its nets (the
//     optimal-region idea of [14], extended with 3D layer search and the
//     Eq. 8 net weights).
//
// Moves respect bin capacity (cells may be shifted aside later by cell
// shifting, whose cost the density guard approximates); swaps exchange
// positions with an occupant of the target bin.
#pragma once

#include <cstdint>

#include "place/bins.h"
#include "place/objective.h"
#include "util/rng.h"

namespace p3d::place {

struct MoveSwapStats {
  long long moves = 0;
  long long swaps = 0;
  double gain = 0.0;  // total objective reduction (positive = improved)
};

class MoveSwapOptimizer {
 public:
  MoveSwapOptimizer(ObjectiveEvaluator& eval, std::uint64_t seed);

  /// One pass of local moves/swaps over all movable cells (random order).
  MoveSwapStats RunLocal();

  /// One pass of global moves/swaps; `target_region_bins` caps the number of
  /// candidate bins examined around each cell's optimal position.
  MoveSwapStats RunGlobal(int target_region_bins);

 private:
  /// Best action for `cell` among the candidate bins; executes it if it
  /// improves the objective. Returns the gain (>= 0).
  double TryCell(std::int32_t cell, BinGrid& grid,
                 const std::vector<int>& candidate_bins, MoveSwapStats* stats);

  ObjectiveEvaluator& eval_;
  util::Rng rng_;
  // Allow moves into bins up to this much over nominal capacity; the excess
  // is reclaimed by the next cell-shifting pass.
  static constexpr double kDensitySlack = 1.10;
  // Swap candidates examined per target bin.
  static constexpr int kSwapCandidates = 3;
};

}  // namespace p3d::place
