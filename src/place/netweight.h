// Thermal-aware net weighting (paper Section 3.1) and the PEKO-3D optimal
// wirelength/via floors (Section 3.2, Eq. 13-15).
//
// The weights implement Eq. 8:
//   nw_lateral_i  = 1 + alpha_TEMP * R_net_i * s_wl_i
//   nw_vertical_i = 1 + alpha_TEMP * R_net_i * s_ilv_i / alpha_ILV
// where R_net_i sums the thermal resistances of the net's driver cells at
// their *current* (provisional) positions — so weights are refreshed as the
// recursive bisection refines positions.
//
// The PEKO-3D floors estimate the best achievable WL/ILV of a net from its
// pin count and average pin-cell dimensions. They keep the thermal
// resistance-reduction-net weights (Eq. 12) meaningful at the start of
// global placement, when all cells sit at the chip center and measured
// WL/ILV are zero.
#pragma once

#include <cstdint>
#include <vector>

#include "place/objective.h"

namespace p3d::place {

struct NetWeights {
  std::vector<double> lateral;   // nw_i^lateral per net
  std::vector<double> vertical;  // nw_i^vertical per net
};

/// Computes Eq. 8 weights for all nets from the evaluator's current
/// placement. With alpha_TEMP = 0 every weight is exactly 1. When
/// alpha_ILV = 0 the vertical weight's 1/alpha_ILV blow-up is clamped to the
/// lateral formula's scale (vertical cuts are then free anyway, because cut
/// direction selection never picks z with zero weighted depth).
NetWeights ComputeNetWeights(const ObjectiveEvaluator& eval);

struct PekoFloors {
  std::vector<double> wl_x;   // WL_i^{x opt}, metres
  std::vector<double> wl_y;   // WL_i^{y opt}, metres
  std::vector<double> ilv;    // ILV_i^{opt}, vias (real-valued)
};

/// Eq. 13-15, clamped at zero. Uses each net's average pin-cell width and
/// height; alpha_ilv <= 0 degenerates to 2D (ILV floor 0, lateral floor
/// sqrt-based half-perimeter of the minimal packing).
PekoFloors ComputePekoFloors(const netlist::Netlist& nl, double alpha_ilv);

/// Weighted-median optimal lateral position of `cell` over its nets (the
/// optimal-region center of [14], with Eq. 8 lateral net weights). Used by
/// global moves/swaps and by legal row refinement.
void OptimalLateralPosition(const ObjectiveEvaluator& eval, std::int32_t cell,
                            double* x, double* y);

/// Cell power estimates for Eq. 12 weights (Eq. 10 with PEKO floors):
/// P_j = sum over driven nets of s_wl*max(WL, WLopt) + s_ilv*max(ILV, ILVopt)
///       + s_pin-term. Measured WL/ILV come from the evaluator's caches.
std::vector<double> ComputeCellPowerWithFloors(const ObjectiveEvaluator& eval,
                                               const PekoFloors& floors);

}  // namespace p3d::place
