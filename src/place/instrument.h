// PhaseMetricsSampler — the bridge between the placer's observer hooks and
// the flight recorder (src/obs).
//
// The placer core stays observer-clean: it exposes phase boundaries through
// PhaseObserver and committed moves through the evaluator's CommitCount().
// This sampler rides those hooks and, at every phase boundary, captures one
// obs::PhaseSample with the Eq. 3 objective decomposition (WL, alpha_ILV*ILV,
// alpha_TEMP*thermal), the raw via count, the commits since the previous
// sample, and the wall-clock offset from attach. The samples become the
// `phases` array of the run report; the deterministic values (everything but
// t_s) are also appended as series to the installed MetricsRegistry, keyed
// "phase/...".
//
// Attach with AddPhaseObserver so the sampler coexists with the audit
// subsystem:
//
//   PhaseMetricsSampler sampler;
//   placer.AddPhaseObserver(&sampler);
//   placer.Run();
//   report.phases = sampler.samples();
#pragma once

#include <vector>

#include "obs/report.h"
#include "place/placer.h"
#include "util/timer.h"

namespace p3d::place {

class PhaseMetricsSampler : public PhaseObserver {
 public:
  PhaseMetricsSampler() = default;

  void OnPhase(const char* phase, int round, const ObjectiveEvaluator& eval,
               const GlobalPlaceStats* global_stats) override;

  const std::vector<obs::PhaseSample>& samples() const { return samples_; }

 private:
  std::vector<obs::PhaseSample> samples_;
  util::Timer timer_;  // starts at construction = just before Run()
  long long last_commits_ = 0;
};

}  // namespace p3d::place
