// Detailed legalization (paper Section 5).
//
// Produces a fully overlap-free, row-aligned 3D placement. The cell
// distribution is assumed pre-evened by coarse legalization, so search is
// local:
//   * a fine density mesh (bins ~ one average cell) identifies over-full
//     bins; the processing order follows a BFS layering of the supply/demand
//     DAG (cells in over-full bins first, then outward), tie-broken by the
//     objective sensitivity of each cell's nets — the paper's DAG +
//     sensitivity ordering;
//   * each cell is placed into the best position within an expanding target
//     region of rows (its own layer first, then adjacent layers), choosing
//     the candidate that least degrades the objective (Eq. 3) via the shared
//     evaluator;
//   * a position may require already-placed cells to be *shifted aside*;
//     the objective cost of those shifts is included in the candidate's cost
//     (paper: "If already-processed cells need to be moved apart to legally
//     place the cell, the effect of their movement on the objective function
//     is included in the cost");
//   * fixed cells pre-block row spans and act as immovable walls.
//
// The slot-assignment pass runs under the windowed propose/commit protocol
// (DESIGN.md §5): row indices are tiled into `legalize_window_rows`-row
// blocks spanning all layers, 2-colored by block parity. A cell belongs to
// the block holding its home row; its candidate search is restricted to
// that block's rows, and proposals are screened concurrently against a
// per-window simulation of the block's rows. Commits replay the chosen
// candidates serially in ascending window order — exact, because only the
// owning window ever mutates its rows, so the live rows evolve identically
// to the simulation. Cells whose window has no feasible slot fall through
// to a serial full-radius pass, keeping the global priority order. The
// placement is byte-identical for any thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "place/objective.h"

namespace p3d::place {

struct LegalizeStats {
  long long placed = 0;
  long long squeezes = 0;           // placements that shifted neighbours
  long long deferred = 0;           // cells sent to the serial overflow pass
  double total_displacement = 0.0;  // sum of |move| during legalization, m
  int max_radius_rows = 0;          // largest row search radius needed
  bool success = true;              // every cell found a legal slot
};

class DetailedLegalizer {
 public:
  explicit DetailedLegalizer(ObjectiveEvaluator& eval);

  /// Legalizes the evaluator's current placement in place.
  LegalizeStats Run();

  /// Counts pairwise overlaps of movable cells in a placement (slow; used
  /// by tests and post-run verification). Zero after a successful Run().
  static long long CountOverlaps(const netlist::Netlist& nl,
                                 const Placement& p);

 private:
  struct Item {
    double lo = 0.0;
    double hi = 0.0;
    std::int32_t cell = -1;  // -1 = fixed blockage (immovable wall)
  };
  struct Row {
    std::vector<Item> items;  // sorted by lo, non-overlapping
  };

  /// A candidate placement: target position plus any neighbour shifts needed
  /// to make room, with the combined objective delta.
  struct Candidate {
    double x = 0.0;
    int layer = 0;
    int row = 0;
    double delta = 0.0;
    std::vector<std::pair<std::int32_t, double>> shifts;  // cell -> new lo
  };

  /// Rows for indices [row_lo, row_lo + span) of every layer — either the
  /// live rows (full range) or one window's private simulation copy.
  struct RowSpace {
    std::vector<Row>* rows;
    int row_lo;
    int span;
    Row& at(int layer, int r) {
      return (*rows)[static_cast<std::size_t>(layer * span + (r - row_lo))];
    }
  };

  /// Evaluates up to two gap candidates and (if no gap fits) one squeeze
  /// candidate for `cell` in `row` = rows(layer, r); appends to `out`.
  /// Deltas go through `view` so concurrent window proposals never share
  /// evaluator scratch.
  void CandidatesInRow(DeltaView& view, const Row& row, std::int32_t cell,
                       double width, double desired_x, int layer, int r,
                       std::vector<Candidate>* out) const;

  /// Plans a squeeze insertion into the free-space segment of the row
  /// nearest `desired_x`. Returns nullopt when no segment has `width` of
  /// slack.
  std::optional<Candidate> PlanSqueeze(DeltaView& view, const Row& row,
                                       std::int32_t cell, double width,
                                       double desired_x, int layer,
                                       int r) const;

  /// Expanding-radius candidate search restricted to rows [row_lo, row_hi)
  /// of `space`. Returns the largest radius at which a layer first yielded
  /// candidates, or -1 when none were found.
  int SearchCell(RowSpace& space, int row_lo, int row_hi, DeltaView& view,
                 std::int32_t cell, double width, double desired_x,
                 int home_row, int home_layer, int radius_cap,
                 std::vector<Candidate>* cands) const;

  /// Applies the candidate's neighbour shifts and the cell's insertion to
  /// `row` — geometry only. Shared by the window simulations and the live
  /// commit so both evolve the row bytes identically.
  void ApplyCandidateToRow(Row& row, std::int32_t cell, double width,
                           const Candidate& cand) const;

  void CommitCandidate(std::int32_t cell, double width, const Candidate& cand,
                       LegalizeStats* stats);

  Row& RowAt(int layer, int r) {
    return rows_[static_cast<std::size_t>(layer * chip_.num_rows() + r)];
  }

  ObjectiveEvaluator& eval_;
  const netlist::Netlist& nl_;
  Chip chip_;
  std::vector<Row> rows_;
};

}  // namespace p3d::place
