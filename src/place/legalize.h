// Detailed legalization (paper Section 5).
//
// Produces a fully overlap-free, row-aligned 3D placement. The cell
// distribution is assumed pre-evened by coarse legalization, so search is
// local:
//   * a fine density mesh (bins ~ one average cell) identifies over-full
//     bins; the processing order follows a BFS layering of the supply/demand
//     DAG (cells in over-full bins first, then outward), tie-broken by the
//     objective sensitivity of each cell's nets — the paper's DAG +
//     sensitivity ordering;
//   * each cell is placed into the best position within an expanding target
//     region of rows (its own layer first, then adjacent layers), choosing
//     the candidate that least degrades the objective (Eq. 3) via the shared
//     evaluator;
//   * a position may require already-placed cells to be *shifted aside*;
//     the objective cost of those shifts is included in the candidate's cost
//     (paper: "If already-processed cells need to be moved apart to legally
//     place the cell, the effect of their movement on the objective function
//     is included in the cost");
//   * fixed cells pre-block row spans and act as immovable walls.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "place/objective.h"

namespace p3d::place {

struct LegalizeStats {
  long long placed = 0;
  long long squeezes = 0;           // placements that shifted neighbours
  double total_displacement = 0.0;  // sum of |move| during legalization, m
  int max_radius_rows = 0;          // largest row search radius needed
  bool success = true;              // every cell found a legal slot
};

class DetailedLegalizer {
 public:
  explicit DetailedLegalizer(ObjectiveEvaluator& eval);

  /// Legalizes the evaluator's current placement in place.
  LegalizeStats Run();

  /// Counts pairwise overlaps of movable cells in a placement (slow; used
  /// by tests and post-run verification). Zero after a successful Run().
  static long long CountOverlaps(const netlist::Netlist& nl,
                                 const Placement& p);

 private:
  struct Item {
    double lo = 0.0;
    double hi = 0.0;
    std::int32_t cell = -1;  // -1 = fixed blockage (immovable wall)
  };
  struct Row {
    std::vector<Item> items;  // sorted by lo, non-overlapping
  };

  /// A candidate placement: target position plus any neighbour shifts needed
  /// to make room, with the combined objective delta.
  struct Candidate {
    double x = 0.0;
    int layer = 0;
    int row = 0;
    double delta = 0.0;
    std::vector<std::pair<std::int32_t, double>> shifts;  // cell -> new lo
  };

  /// Evaluates up to two gap candidates and (if no gap fits) one squeeze
  /// candidate for `cell` in row (layer, r); appends to `out`.
  void CandidatesInRow(std::int32_t cell, double width, double desired_x,
                       int layer, int r, std::vector<Candidate>* out);

  /// Plans a squeeze insertion into the free-space segment of the row
  /// nearest `desired_x`. Returns nullopt when no segment has `width` of
  /// slack.
  std::optional<Candidate> PlanSqueeze(std::int32_t cell, double width,
                                       double desired_x, int layer, int r);

  void CommitCandidate(std::int32_t cell, double width, const Candidate& cand,
                       LegalizeStats* stats);

  Row& RowAt(int layer, int r) {
    return rows_[static_cast<std::size_t>(layer * chip_.num_rows() + r)];
  }

  ObjectiveEvaluator& eval_;
  const netlist::Netlist& nl_;
  Chip chip_;
  std::vector<Row> rows_;
};

}  // namespace p3d::place
