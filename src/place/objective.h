// Incremental evaluator of the placement objective (paper Eq. 3):
//
//   F = sum_nets [ WL_i + alpha_ILV * ILV_i ]
//       + alpha_TEMP * sum_cells R_j^cell * P_j^cell
//
// Because each net has (at most) one driver and P_j^cell sums over the nets
// cell j drives (Eq. 10), the thermal term decomposes *per net*:
//
//   F = sum_nets [ WL_i + alpha_ILV * ILV_i
//                  + alpha_TEMP * R_driver(i) * (s_wl WL_i + s_ilv ILV_i + s_pin_i) ]
//
// with the s coefficients of Eq. 8/11. Every placement phase (cell shifting
// beta selection, moves/swaps, detailed legalization) evaluates candidate
// moves through MoveDelta/SwapDelta, which touch only the nets incident to
// the moved cells — the efficiency the paper gets from replacing T_j by
// Delta-T_j = R_j * P_j (Eq. 2).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "place/chip.h"
#include "place/params.h"
#include "thermal/resistance.h"

namespace p3d::place {

/// Observer of evaluator state changes. The audit subsystem (src/check)
/// implements this to record the committed move/swap sequence together with
/// the incrementally applied objective deltas, so a replay pass can
/// cross-check every delta against from-scratch evaluations. Listener calls
/// happen after the commit's caches are updated; listeners must not mutate
/// the evaluator.
class CommitListener {
 public:
  virtual ~CommitListener() = default;
  /// `applied_delta` is the change of Total() this commit produced.
  virtual void OnCommitMove(std::int32_t cell, double x, double y, int layer,
                            double applied_delta) = 0;
  virtual void OnCommitSwap(std::int32_t a, std::int32_t b,
                            double applied_delta) = 0;
  /// A bulk placement install invalidates any recorded incremental history.
  virtual void OnSetPlacement(const Placement& placement) = 0;
};

class ObjectiveEvaluator {
 public:
  ObjectiveEvaluator(const netlist::Netlist& nl, const Chip& chip,
                     const PlacerParams& params);

  /// Installs a placement and recomputes all caches.
  void SetPlacement(const Placement& placement);

  const Placement& placement() const { return placement_; }
  const Chip& chip() const { return chip_; }
  const netlist::Netlist& netlist() const { return nl_; }
  const PlacerParams& params() const { return params_; }
  const thermal::ResistanceModel& resistance_model() const { return rmodel_; }

  double Total() const { return total_cost_; }
  double TotalHpwl() const { return total_hpwl_; }
  long long TotalIlv() const { return total_ilv_; }
  /// The alpha_TEMP-weighted thermal component of Total().
  double ThermalCost() const { return total_thermal_; }

  /// The three Eq. 3 terms of Total(), each already weighted by its alpha:
  ///   total = wl + ilv + thermal  (up to incremental float bookkeeping).
  struct Components {
    double wl = 0.0;        // sum WL_i
    double ilv = 0.0;       // alpha_ILV * sum ILV_i
    double thermal = 0.0;   // alpha_TEMP * sum R_j * P_j
    double total = 0.0;     // Eq. 3 value
    long long ilv_count = 0;  // raw sum ILV_i
  };
  Components GetComponents() const {
    Components c;
    c.wl = total_hpwl_;
    c.ilv = params_.alpha_ilv * static_cast<double>(total_ilv_);
    c.thermal = total_thermal_;
    c.total = total_cost_;
    c.ilv_count = total_ilv_;
    return c;
  }

  double NetHpwl(std::int32_t n) const { return hpwl_[static_cast<std::size_t>(n)]; }
  int NetSpan(std::int32_t n) const { return span_[static_cast<std::size_t>(n)]; }
  double NetCost(std::int32_t n) const { return cost_[static_cast<std::size_t>(n)]; }

  /// Objective change if `cell` moved to (x, y, layer). Does not commit.
  double MoveDelta(std::int32_t cell, double x, double y, int layer) const;
  /// Commits the move and updates all caches incrementally.
  void CommitMove(std::int32_t cell, double x, double y, int layer);

  /// Objective change if cells `a` and `b` exchanged positions.
  double SwapDelta(std::int32_t a, std::int32_t b) const;
  void CommitSwap(std::int32_t a, std::int32_t b);

  /// Incremental net-box kernel accounting (see params.incremental_net_boxes):
  /// how many per-net evaluations took the O(moved pins) cached-bounds path
  /// vs. falling back to a full pin re-scan (a boundary pin left the box).
  struct EvalStats {
    long long incremental_evals = 0;
    long long rescan_evals = 0;
  };

  /// Reusable per-caller scratch for delta evaluation. MoveDelta/SwapDelta
  /// are logically const but need net-collection buffers; routing those
  /// through an explicit scratch makes concurrent read-only evaluation safe —
  /// each parallel worker owns one scratch (see DeltaView below).
  struct EvalScratch {
    std::vector<std::int32_t> nets;       // distinct incident nets
    std::vector<std::uint32_t> net_stamp; // lazily sized to NumNets
    std::uint32_t stamp = 0;
    EvalStats stats;                      // evaluations done via this scratch
  };

  /// MoveDelta/SwapDelta against caller-owned scratch. Read-only on the
  /// evaluator: safe to call concurrently from multiple threads as long as
  /// no commit runs at the same time and each caller passes its own scratch.
  double MoveDelta(EvalScratch& scratch, std::int32_t cell, double x, double y,
                   int layer) const;
  double SwapDelta(EvalScratch& scratch, std::int32_t a, std::int32_t b) const;

  /// Folds a scratch's evaluation counters into the evaluator's running
  /// eval_stats(). Callers merge their per-worker scratches serially at a
  /// schedule boundary (sums of per-window counts are thread-count
  /// independent, so the merged totals stay deterministic).
  void MergeEvalStats(const EvalStats& stats) {
    eval_stats_.incremental_evals += stats.incremental_evals;
    eval_stats_.rescan_evals += stats.rescan_evals;
  }

  /// Thermal resistance to ambient of `cell` at its current position.
  double CellResistance(std::int32_t cell) const {
    return r_cell_[static_cast<std::size_t>(cell)];
  }

  /// Power-rate coefficients of net n (Eq. 8/11): s_wl, s_ilv, and the
  /// placement-independent pin term s_pin * n_inputs.
  double SWl(std::int32_t n) const { return s_wl_[static_cast<std::size_t>(n)]; }
  double SIlv(std::int32_t n) const { return s_ilv_[static_cast<std::size_t>(n)]; }
  double SPinTerm(std::int32_t n) const { return s_pin_term_[static_cast<std::size_t>(n)]; }

  /// Full O(pins) recomputation; returns the fresh total (testing aid to
  /// validate incremental bookkeeping).
  double RecomputeFull();

  /// Attaches a commit observer (the audit replay recorder and the metrics
  /// sampler coexist this way). Listeners are notified in attachment order.
  void AddCommitListener(CommitListener* listener) {
    if (listener != nullptr) listeners_.push_back(listener);
  }
  /// Detaches one previously attached listener (no-op if absent).
  void RemoveCommitListener(CommitListener* listener);
  /// Total committed moves+swaps since construction (monotonic).
  long long CommitCount() const { return total_commits_; }

  /// Resums the running totals from the per-net / per-cell caches, which are
  /// exact after every commit; only the totals accumulate float error. Called
  /// automatically every params.objective_resync_interval commits, public so
  /// tests can pin its equivalence with RecomputeFull().
  void ResyncTotals();

  /// Kernel accounting of every evaluation done through the evaluator's own
  /// scratch (serial paths) plus whatever callers folded in via
  /// MergeEvalStats.
  const EvalStats& eval_stats() const { return eval_stats_; }

 private:
  struct Override {
    std::int32_t cell = -1;
    double x = 0.0;
    double y = 0.0;
    int layer = 0;
  };

  /// Cached bounding box of one net's pins, with the number of pins sitting
  /// exactly on each bound. Removing a non-boundary pin (or a boundary pin
  /// that shares its bound) is O(1); only removing the last pin on a bound
  /// forces a re-scan. Bounds are exact min/max values (never accumulated),
  /// so the incremental path is bit-identical to a full scan.
  struct NetBox {
    double x_lo = 0.0, x_hi = 0.0, y_lo = 0.0, y_hi = 0.0;
    int l_lo = 0, l_hi = 0;
    std::int32_t c_x_lo = 0, c_x_hi = 0, c_y_lo = 0, c_y_hi = 0;
    std::int32_t c_l_lo = 0, c_l_hi = 0;
    bool empty = true;

    void Add(double px, double py, int pl);
    /// False if the removal shrinks a bound (count would hit zero).
    bool Remove(double px, double py, int pl);
    double Hpwl() const { return empty ? 0.0 : (x_hi - x_lo) + (y_hi - y_lo); }
    int LayerSpan() const { return empty ? 0 : l_hi - l_lo; }
  };

  /// Cost of net n with up to two cells' positions overridden.
  struct NetEval {
    double hpwl = 0.0;
    int span = 0;
    double cost = 0.0;
  };
  NetEval EvalNet(std::int32_t n, const Override& o1, const Override& o2) const;

  /// Full pin scan of net n (with overrides), producing bounds + counts.
  NetBox ComputeNetBox(std::int32_t n, const Override& o1,
                       const Override& o2) const;
  /// hpwl/span/cost of net n from its (already override-adjusted) box;
  /// mirrors EvalNet's thermal driver term exactly.
  NetEval EvalFromBox(std::int32_t n, const NetBox& box, const Override& o1,
                      const Override& o2) const;
  /// Evaluates net n under the overrides, preferring the cached-box kernel;
  /// the returned box is the net's post-override box (commit paths store it).
  /// Kernel-path counts accumulate into `stats`.
  NetEval EvalNetDelta(std::int32_t n, const Override& o1, const Override& o2,
                       NetBox* box_out, EvalStats* stats) const;

  /// Shared body of the two MoveDelta/SwapDelta flavours; `stats` is where
  /// kernel-path counts land (eval_stats_ for the serial flavour, the
  /// caller's scratch stats for the concurrent one).
  double MoveDeltaImpl(EvalScratch& scratch, EvalStats* stats,
                       std::int32_t cell, double x, double y, int layer) const;
  double SwapDeltaImpl(EvalScratch& scratch, EvalStats* stats, std::int32_t a,
                       std::int32_t b) const;

  double Resistance(std::int32_t cell, double x, double y, int layer) const;

  /// Change in the per-cell leakage thermal term if `cell` moved there.
  double LeakDelta(std::int32_t cell, double x, double y, int layer) const;

  /// Collects the distinct nets incident to one or two cells into
  /// `scratch.nets`.
  void CollectNetsInto(EvalScratch& scratch, std::int32_t a,
                       std::int32_t b) const;

  const netlist::Netlist& nl_;
  Chip chip_;
  PlacerParams params_;
  thermal::ResistanceModel rmodel_;
  Placement placement_;

  // Static per-net coefficients.
  std::vector<double> s_wl_;
  std::vector<double> s_ilv_;
  std::vector<double> s_pin_term_;

  // Caches.
  std::vector<double> cell_leak_cost_;  // alpha_temp * R_j * leakage, per cell
  std::vector<double> hpwl_;
  std::vector<int> span_;
  std::vector<double> cost_;
  std::vector<double> r_cell_;
  std::vector<NetBox> net_box_;  // committed bounds (incremental kernel)
  mutable EvalStats eval_stats_;  // mutable: deltas are const, like scratch_
  double total_cost_ = 0.0;
  double total_hpwl_ = 0.0;
  long long total_ilv_ = 0;
  double total_thermal_ = 0.0;

  // The evaluator's own scratch, used by the scratch-less (serial) delta
  // flavours and by the commit paths; its stats field is unused — serial
  // evaluations count straight into eval_stats_.
  mutable EvalScratch scratch_;
  // Commit-path scratch (evals computed before the placement mutates).
  std::vector<NetEval> eval_scratch_;
  std::vector<NetBox> box_scratch_;

  std::vector<CommitListener*> listeners_;
  int commits_since_resync_ = 0;
  long long total_commits_ = 0;

  /// Shared tail of CommitMove/CommitSwap: listener notification and the
  /// periodic totals resync.
  void FinishCommit(double applied_delta, std::int32_t a, std::int32_t b,
                    double x, double y, int layer, bool is_swap);
};

/// Thread-slot-local, read-only view of a shared ObjectiveEvaluator: wraps
/// the evaluator with a privately owned EvalScratch so parallel propose
/// workers can evaluate candidate deltas concurrently against the frozen
/// committed state (DESIGN.md §5). A view can never commit; the owning
/// engine merges each view's kernel stats back with
/// ObjectiveEvaluator::MergeEvalStats at the serial commit boundary.
class DeltaView {
 public:
  DeltaView() = default;
  explicit DeltaView(const ObjectiveEvaluator* eval) : eval_(eval) {}

  void Attach(const ObjectiveEvaluator* eval) { eval_ = eval; }

  double MoveDelta(std::int32_t cell, double x, double y, int layer) {
    return eval_->MoveDelta(scratch_, cell, x, y, layer);
  }
  double SwapDelta(std::int32_t a, std::int32_t b) {
    return eval_->SwapDelta(scratch_, a, b);
  }

  const ObjectiveEvaluator::EvalStats& stats() const { return scratch_.stats; }
  void ClearStats() { scratch_.stats = {}; }

 private:
  const ObjectiveEvaluator* eval_ = nullptr;
  ObjectiveEvaluator::EvalScratch scratch_;
};

}  // namespace p3d::place
