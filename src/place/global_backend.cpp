#include "place/global_backend.h"

#include <string>

#include "place/global.h"
#include "place/global_analytic.h"
#include "place/objective.h"

namespace p3d::place {

const char* GlobalBackendName(GlobalBackend kind) {
  switch (kind) {
    case GlobalBackend::kBisection:
      return "bisection";
    case GlobalBackend::kAnalytic:
      return "analytic";
  }
  return "unknown";
}

util::StatusOr<GlobalBackend> ParseGlobalBackend(std::string_view name) {
  if (name == "bisection") return GlobalBackend::kBisection;
  if (name == "analytic") return GlobalBackend::kAnalytic;
  return util::InvalidArgumentError("unknown global-placement backend '" +
                                    std::string(name) +
                                    "' (valid: bisection, analytic)");
}

util::StatusOr<std::unique_ptr<GlobalPlacerBackend>> MakeGlobalPlacerBackend(
    GlobalBackend kind, const ObjectiveEvaluator& eval) {
  switch (kind) {
    case GlobalBackend::kBisection:
      return std::unique_ptr<GlobalPlacerBackend>(
          std::make_unique<GlobalPlacer>(eval));
    case GlobalBackend::kAnalytic:
      return std::unique_ptr<GlobalPlacerBackend>(
          std::make_unique<AnalyticPlacer>(eval));
  }
  return util::InvalidArgumentError(
      "MakeGlobalPlacerBackend: out-of-range GlobalBackend value " +
      std::to_string(static_cast<int>(kind)));
}

util::StatusOr<std::unique_ptr<GlobalPlacerBackend>> MakeGlobalPlacerBackend(
    const ObjectiveEvaluator& eval) {
  return MakeGlobalPlacerBackend(eval.params().global_backend, eval);
}

}  // namespace p3d::place
