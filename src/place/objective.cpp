#include "place/objective.h"

#include <algorithm>
#include <cassert>

#include "geom/geometry.h"

namespace p3d::place {

ObjectiveEvaluator::ObjectiveEvaluator(const netlist::Netlist& nl,
                                       const Chip& chip,
                                       const PlacerParams& params)
    : nl_(nl),
      chip_(chip),
      params_(params),
      rmodel_(params.stack, thermal::ChipExtent{chip.width(), chip.height()}) {
  assert(nl.finalized());
  const std::size_t nn = static_cast<std::size_t>(nl.NumNets());
  s_wl_.resize(nn);
  s_ilv_.resize(nn);
  s_pin_term_.resize(nn);
  const double pre = params_.electrical.Prefactor();
  for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
    const std::size_t i = static_cast<std::size_t>(n);
    const int n_out = nl.NumOutputPins(n);
    if (n_out == 0) {
      // Driverless nets dissipate no cell-attributed power (Eq. 10 sums over
      // driven nets only).
      s_wl_[i] = s_ilv_[i] = s_pin_term_[i] = 0.0;
      continue;
    }
    const double a = nl.net(n).activity;
    s_wl_[i] = pre * a * params_.electrical.c_per_wl / n_out;
    s_ilv_[i] = pre * a * params_.electrical.CPerIlv() / n_out;
    s_pin_term_[i] =
        pre * a * params_.electrical.c_per_pin * nl.NumInputPins(n) / n_out;
  }
  scratch_.net_stamp.assign(nn, 0);
  placement_.Resize(static_cast<std::size_t>(nl.NumCells()));
  r_cell_.assign(static_cast<std::size_t>(nl.NumCells()), 0.0);
  cell_leak_cost_.assign(static_cast<std::size_t>(nl.NumCells()), 0.0);
  hpwl_.assign(nn, 0.0);
  span_.assign(nn, 0);
  cost_.assign(nn, 0.0);
  net_box_.assign(nn, NetBox{});
}

void ObjectiveEvaluator::NetBox::Add(double px, double py, int pl) {
  if (empty) {
    x_lo = x_hi = px;
    y_lo = y_hi = py;
    l_lo = l_hi = pl;
    c_x_lo = c_x_hi = c_y_lo = c_y_hi = c_l_lo = c_l_hi = 1;
    empty = false;
    return;
  }
  if (px < x_lo) {
    x_lo = px;
    c_x_lo = 1;
  } else if (px == x_lo) {
    ++c_x_lo;
  }
  if (px > x_hi) {
    x_hi = px;
    c_x_hi = 1;
  } else if (px == x_hi) {
    ++c_x_hi;
  }
  if (py < y_lo) {
    y_lo = py;
    c_y_lo = 1;
  } else if (py == y_lo) {
    ++c_y_lo;
  }
  if (py > y_hi) {
    y_hi = py;
    c_y_hi = 1;
  } else if (py == y_hi) {
    ++c_y_hi;
  }
  if (pl < l_lo) {
    l_lo = pl;
    c_l_lo = 1;
  } else if (pl == l_lo) {
    ++c_l_lo;
  }
  if (pl > l_hi) {
    l_hi = pl;
    c_l_hi = 1;
  } else if (pl == l_hi) {
    ++c_l_hi;
  }
}

bool ObjectiveEvaluator::NetBox::Remove(double px, double py, int pl) {
  // The pin being removed is inside the box by construction; only a pin that
  // solely supports a bound forces a re-scan. On false the box is left
  // partially updated and must be discarded.
  bool ok = true;
  if (px == x_lo) ok = (--c_x_lo > 0) && ok;
  if (px == x_hi) ok = (--c_x_hi > 0) && ok;
  if (py == y_lo) ok = (--c_y_lo > 0) && ok;
  if (py == y_hi) ok = (--c_y_hi > 0) && ok;
  if (pl == l_lo) ok = (--c_l_lo > 0) && ok;
  if (pl == l_hi) ok = (--c_l_hi > 0) && ok;
  return ok;
}

double ObjectiveEvaluator::Resistance(std::int32_t cell, double x, double y,
                                      int layer) const {
  const double area = nl_.CellArea(cell);
  return rmodel_.CellToAmbient(x, y, layer, area > 0.0 ? area : 1e-12);
}

void ObjectiveEvaluator::SetPlacement(const Placement& placement) {
  assert(placement.size() == static_cast<std::size_t>(nl_.NumCells()));
  placement_ = placement;
  RecomputeFull();
  commits_since_resync_ = 0;
  for (CommitListener* l : listeners_) l->OnSetPlacement(placement_);
}

void ObjectiveEvaluator::RemoveCommitListener(CommitListener* listener) {
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (*it == listener) {
      listeners_.erase(it);
      return;
    }
  }
}

void ObjectiveEvaluator::ResyncTotals() {
  // Mirrors RecomputeFull's summation order exactly, but reads the caches
  // instead of re-evaluating geometry: r_cell_ and the per-net hpwl/span/cost
  // entries are written exactly (not accumulated) on every commit, so the
  // result is bit-identical to a full recompute at a fraction of the cost.
  const double leak_coeff =
      params_.alpha_temp * params_.electrical.leakage_per_cell_w;
  total_cost_ = 0.0;
  total_hpwl_ = 0.0;
  total_ilv_ = 0;
  total_thermal_ = 0.0;
  for (std::int32_t c = 0; c < nl_.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    cell_leak_cost_[i] = nl_.CellFixed(c) ? 0.0 : leak_coeff * r_cell_[i];
    total_cost_ += cell_leak_cost_[i];
    total_thermal_ += cell_leak_cost_[i];
  }
  for (std::int32_t n = 0; n < nl_.NumNets(); ++n) {
    const std::size_t i = static_cast<std::size_t>(n);
    total_cost_ += cost_[i];
    total_hpwl_ += hpwl_[i];
    total_ilv_ += span_[i];
    total_thermal_ += cost_[i] - hpwl_[i] - params_.alpha_ilv * span_[i];
  }
  commits_since_resync_ = 0;
}

void ObjectiveEvaluator::FinishCommit(double applied_delta, std::int32_t a,
                                      std::int32_t b, double x, double y,
                                      int layer, bool is_swap) {
  ++total_commits_;
  for (CommitListener* l : listeners_) {
    if (is_swap) {
      l->OnCommitSwap(a, b, applied_delta);
    } else {
      l->OnCommitMove(a, x, y, layer, applied_delta);
    }
  }
  if (params_.objective_resync_interval > 0 &&
      ++commits_since_resync_ >= params_.objective_resync_interval) {
    ResyncTotals();
  }
}

double ObjectiveEvaluator::RecomputeFull() {
  // Leakage enters Eq. 3 as a per-cell term alpha_TEMP * R_j * P_leak
  // (position-dependent through R_j); dynamic power stays per-net.
  const double leak_coeff =
      params_.alpha_temp * params_.electrical.leakage_per_cell_w;
  total_cost_ = 0.0;
  total_hpwl_ = 0.0;
  total_ilv_ = 0;
  total_thermal_ = 0.0;
  for (std::int32_t c = 0; c < nl_.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    r_cell_[i] = Resistance(c, placement_.x[i], placement_.y[i],
                            placement_.layer[i]);
    cell_leak_cost_[i] =
        nl_.CellFixed(c) ? 0.0 : leak_coeff * r_cell_[i];
    total_cost_ += cell_leak_cost_[i];
    total_thermal_ += cell_leak_cost_[i];
  }
  const Override none;
  for (std::int32_t n = 0; n < nl_.NumNets(); ++n) {
    const std::size_t i = static_cast<std::size_t>(n);
    net_box_[i] = ComputeNetBox(n, none, none);
    const NetEval e = EvalFromBox(n, net_box_[i], none, none);
    hpwl_[i] = e.hpwl;
    span_[i] = e.span;
    cost_[i] = e.cost;
    total_cost_ += e.cost;
    total_hpwl_ += e.hpwl;
    total_ilv_ += e.span;
    total_thermal_ += e.cost - e.hpwl - params_.alpha_ilv * e.span;
  }
  return total_cost_;
}

ObjectiveEvaluator::NetBox ObjectiveEvaluator::ComputeNetBox(
    std::int32_t n, const Override& o1, const Override& o2) const {
  NetBox box;
  // SoA walk over the net's contiguous pin slice: only the cell id and the
  // offsets are needed, so the flat arrays keep the scan dense.
  const std::int32_t first = nl_.NetFirstPin(n);
  const std::int32_t last = first + nl_.NetNumPins(n);
  for (std::int32_t p = first; p < last; ++p) {
    const std::int32_t cell = nl_.PinCell(p);
    double px, py;
    int pl;
    if (cell == o1.cell) {
      px = o1.x;
      py = o1.y;
      pl = o1.layer;
    } else if (cell == o2.cell) {
      px = o2.x;
      py = o2.y;
      pl = o2.layer;
    } else {
      const std::size_t c = static_cast<std::size_t>(cell);
      px = placement_.x[c];
      py = placement_.y[c];
      pl = placement_.layer[c];
    }
    box.Add(px + nl_.PinDx(p), py + nl_.PinDy(p), pl);
  }
  return box;
}

ObjectiveEvaluator::NetEval ObjectiveEvaluator::EvalFromBox(
    std::int32_t n, const NetBox& box, const Override& o1,
    const Override& o2) const {
  NetEval e;
  e.hpwl = box.Hpwl();
  e.span = box.LayerSpan();
  e.cost = e.hpwl + params_.alpha_ilv * e.span;
  if (params_.alpha_temp > 0.0) {
    const std::int32_t driver = nl_.DriverCell(n);
    if (driver >= 0) {
      double r;
      if (driver == o1.cell) {
        r = Resistance(driver, o1.x, o1.y, o1.layer);
      } else if (driver == o2.cell) {
        r = Resistance(driver, o2.x, o2.y, o2.layer);
      } else {
        r = r_cell_[static_cast<std::size_t>(driver)];
      }
      const std::size_t i = static_cast<std::size_t>(n);
      e.cost += params_.alpha_temp * r *
                (s_wl_[i] * e.hpwl + s_ilv_[i] * e.span + s_pin_term_[i]);
    }
  }
  return e;
}

ObjectiveEvaluator::NetEval ObjectiveEvaluator::EvalNet(
    std::int32_t n, const Override& o1, const Override& o2) const {
  return EvalFromBox(n, ComputeNetBox(n, o1, o2), o1, o2);
}

ObjectiveEvaluator::NetEval ObjectiveEvaluator::EvalNetDelta(
    std::int32_t n, const Override& o1, const Override& o2, NetBox* box_out,
    EvalStats* stats) const {
  if (params_.incremental_net_boxes &&
      !net_box_[static_cast<std::size_t>(n)].empty) {
    NetBox box = net_box_[static_cast<std::size_t>(n)];
    bool ok = true;
    for (const Override* o : {&o1, &o2}) {
      if (o->cell < 0) continue;
      const std::size_t ci = static_cast<std::size_t>(o->cell);
      for (const std::int32_t p : nl_.CellPinIds(o->cell)) {
        if (nl_.PinNet(p) != n) continue;
        const double dx = nl_.PinDx(p);
        const double dy = nl_.PinDy(p);
        // Remove the pin at its committed position, re-add at the override.
        // Bounds never shrink mid-update (Remove either keeps them or bails),
        // so the pass stays consistent across both overridden cells.
        if (!box.Remove(placement_.x[ci] + dx, placement_.y[ci] + dy,
                        placement_.layer[ci])) {
          ok = false;
          break;
        }
        box.Add(o->x + dx, o->y + dy, o->layer);
      }
      if (!ok) break;
    }
    if (ok) {
      ++stats->incremental_evals;
      *box_out = box;
      return EvalFromBox(n, box, o1, o2);
    }
  }
  ++stats->rescan_evals;
  *box_out = ComputeNetBox(n, o1, o2);
  return EvalFromBox(n, *box_out, o1, o2);
}

void ObjectiveEvaluator::CollectNetsInto(EvalScratch& scratch, std::int32_t a,
                                         std::int32_t b) const {
  const std::size_t nn = static_cast<std::size_t>(nl_.NumNets());
  if (scratch.net_stamp.size() != nn) scratch.net_stamp.assign(nn, 0);
  scratch.nets.clear();
  ++scratch.stamp;
  if (scratch.stamp == 0) {
    // Stamp wrapped: stale entries could alias. Reset and restart at 1.
    std::fill(scratch.net_stamp.begin(), scratch.net_stamp.end(), 0u);
    scratch.stamp = 1;
  }
  for (const std::int32_t cell : {a, b}) {
    if (cell < 0) continue;
    for (const std::int32_t p : nl_.CellPinIds(cell)) {
      const std::int32_t n = nl_.PinNet(p);
      if (scratch.net_stamp[static_cast<std::size_t>(n)] != scratch.stamp) {
        scratch.net_stamp[static_cast<std::size_t>(n)] = scratch.stamp;
        scratch.nets.push_back(n);
      }
    }
  }
}

double ObjectiveEvaluator::MoveDeltaImpl(EvalScratch& scratch,
                                         EvalStats* stats, std::int32_t cell,
                                         double x, double y,
                                         int layer) const {
  CollectNetsInto(scratch, cell, -1);
  const Override o{cell, x, y, layer};
  const Override none;
  double delta = LeakDelta(cell, x, y, layer);
  NetBox box;
  for (const std::int32_t n : scratch.nets) {
    delta += EvalNetDelta(n, o, none, &box, stats).cost -
             cost_[static_cast<std::size_t>(n)];
  }
  return delta;
}

double ObjectiveEvaluator::MoveDelta(std::int32_t cell, double x, double y,
                                     int layer) const {
  return MoveDeltaImpl(scratch_, &eval_stats_, cell, x, y, layer);
}

double ObjectiveEvaluator::MoveDelta(EvalScratch& scratch, std::int32_t cell,
                                     double x, double y, int layer) const {
  return MoveDeltaImpl(scratch, &scratch.stats, cell, x, y, layer);
}

double ObjectiveEvaluator::LeakDelta(std::int32_t cell, double x, double y,
                                     int layer) const {
  const double leak_coeff =
      params_.alpha_temp * params_.electrical.leakage_per_cell_w;
  if (leak_coeff <= 0.0 || nl_.CellFixed(cell)) return 0.0;
  return leak_coeff * Resistance(cell, x, y, layer) -
         cell_leak_cost_[static_cast<std::size_t>(cell)];
}

void ObjectiveEvaluator::CommitMove(std::int32_t cell, double x, double y,
                                    int layer) {
  const double total_before = total_cost_;
  CollectNetsInto(scratch_, cell, -1);
  const Override o{cell, x, y, layer};
  const Override none;
  // Evaluate all incident nets against the committed placement (the override
  // masks the moved cell, so pre- and post-mutation evaluation agree); the
  // incremental kernel needs the old position for its pin removals.
  eval_scratch_.clear();
  box_scratch_.clear();
  for (const std::int32_t n : scratch_.nets) {
    NetBox box;
    eval_scratch_.push_back(EvalNetDelta(n, o, none, &box, &eval_stats_));
    box_scratch_.push_back(box);
  }
  const std::size_t ci = static_cast<std::size_t>(cell);
  const double leak_delta = LeakDelta(cell, x, y, layer);
  placement_.x[ci] = x;
  placement_.y[ci] = y;
  placement_.layer[ci] = layer;
  r_cell_[ci] = Resistance(cell, x, y, layer);
  cell_leak_cost_[ci] += leak_delta;
  total_cost_ += leak_delta;
  total_thermal_ += leak_delta;
  for (std::size_t k = 0; k < scratch_.nets.size(); ++k) {
    const std::size_t i = static_cast<std::size_t>(scratch_.nets[k]);
    const NetEval& e = eval_scratch_[k];
    total_cost_ += e.cost - cost_[i];
    total_hpwl_ += e.hpwl - hpwl_[i];
    total_ilv_ += e.span - span_[i];
    total_thermal_ += (e.cost - e.hpwl - params_.alpha_ilv * e.span) -
                      (cost_[i] - hpwl_[i] - params_.alpha_ilv * span_[i]);
    cost_[i] = e.cost;
    hpwl_[i] = e.hpwl;
    span_[i] = e.span;
    net_box_[i] = box_scratch_[k];
  }
  FinishCommit(total_cost_ - total_before, cell, -1, x, y, layer,
               /*is_swap=*/false);
}

double ObjectiveEvaluator::SwapDeltaImpl(EvalScratch& scratch,
                                         EvalStats* stats, std::int32_t a,
                                         std::int32_t b) const {
  const std::size_t ai = static_cast<std::size_t>(a);
  const std::size_t bi = static_cast<std::size_t>(b);
  CollectNetsInto(scratch, a, b);
  const Override oa{a, placement_.x[bi], placement_.y[bi], placement_.layer[bi]};
  const Override ob{b, placement_.x[ai], placement_.y[ai], placement_.layer[ai]};
  double delta = LeakDelta(a, oa.x, oa.y, oa.layer) +
                 LeakDelta(b, ob.x, ob.y, ob.layer);
  NetBox box;
  for (const std::int32_t n : scratch.nets) {
    delta += EvalNetDelta(n, oa, ob, &box, stats).cost -
             cost_[static_cast<std::size_t>(n)];
  }
  return delta;
}

double ObjectiveEvaluator::SwapDelta(std::int32_t a, std::int32_t b) const {
  return SwapDeltaImpl(scratch_, &eval_stats_, a, b);
}

double ObjectiveEvaluator::SwapDelta(EvalScratch& scratch, std::int32_t a,
                                     std::int32_t b) const {
  return SwapDeltaImpl(scratch, &scratch.stats, a, b);
}

void ObjectiveEvaluator::CommitSwap(std::int32_t a, std::int32_t b) {
  const double total_before = total_cost_;
  const std::size_t ai = static_cast<std::size_t>(a);
  const std::size_t bi = static_cast<std::size_t>(b);
  CollectNetsInto(scratch_, a, b);
  const Override oa{a, placement_.x[bi], placement_.y[bi], placement_.layer[bi]};
  const Override ob{b, placement_.x[ai], placement_.y[ai], placement_.layer[ai]};
  // Evaluate against the pre-swap placement (both overrides mask the swapped
  // cells), so the incremental kernel removes pins at their old positions.
  eval_scratch_.clear();
  box_scratch_.clear();
  for (const std::int32_t n : scratch_.nets) {
    NetBox box;
    eval_scratch_.push_back(EvalNetDelta(n, oa, ob, &box, &eval_stats_));
    box_scratch_.push_back(box);
  }
  const double leak_a = LeakDelta(a, oa.x, oa.y, oa.layer);
  const double leak_b = LeakDelta(b, ob.x, ob.y, ob.layer);
  cell_leak_cost_[ai] += leak_a;
  cell_leak_cost_[bi] += leak_b;
  total_cost_ += leak_a + leak_b;
  total_thermal_ += leak_a + leak_b;
  std::swap(placement_.x[ai], placement_.x[bi]);
  std::swap(placement_.y[ai], placement_.y[bi]);
  std::swap(placement_.layer[ai], placement_.layer[bi]);
  r_cell_[ai] = Resistance(a, placement_.x[ai], placement_.y[ai],
                           placement_.layer[ai]);
  r_cell_[bi] = Resistance(b, placement_.x[bi], placement_.y[bi],
                           placement_.layer[bi]);
  for (std::size_t k = 0; k < scratch_.nets.size(); ++k) {
    const std::size_t i = static_cast<std::size_t>(scratch_.nets[k]);
    const NetEval& e = eval_scratch_[k];
    total_cost_ += e.cost - cost_[i];
    total_hpwl_ += e.hpwl - hpwl_[i];
    total_ilv_ += e.span - span_[i];
    total_thermal_ += (e.cost - e.hpwl - params_.alpha_ilv * e.span) -
                      (cost_[i] - hpwl_[i] - params_.alpha_ilv * span_[i]);
    cost_[i] = e.cost;
    hpwl_[i] = e.hpwl;
    span_[i] = e.span;
    net_box_[i] = box_scratch_[k];
  }
  FinishCommit(total_cost_ - total_before, a, b, 0.0, 0.0, 0,
               /*is_swap=*/true);
}

}  // namespace p3d::place
