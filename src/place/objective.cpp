#include "place/objective.h"

#include <cassert>

#include "geom/geometry.h"

namespace p3d::place {

ObjectiveEvaluator::ObjectiveEvaluator(const netlist::Netlist& nl,
                                       const Chip& chip,
                                       const PlacerParams& params)
    : nl_(nl),
      chip_(chip),
      params_(params),
      rmodel_(params.stack, thermal::ChipExtent{chip.width(), chip.height()}) {
  assert(nl.finalized());
  const std::size_t nn = static_cast<std::size_t>(nl.NumNets());
  s_wl_.resize(nn);
  s_ilv_.resize(nn);
  s_pin_term_.resize(nn);
  const double pre = params_.electrical.Prefactor();
  for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
    const std::size_t i = static_cast<std::size_t>(n);
    const int n_out = nl.NumOutputPins(n);
    if (n_out == 0) {
      // Driverless nets dissipate no cell-attributed power (Eq. 10 sums over
      // driven nets only).
      s_wl_[i] = s_ilv_[i] = s_pin_term_[i] = 0.0;
      continue;
    }
    const double a = nl.net(n).activity;
    s_wl_[i] = pre * a * params_.electrical.c_per_wl / n_out;
    s_ilv_[i] = pre * a * params_.electrical.CPerIlv() / n_out;
    s_pin_term_[i] =
        pre * a * params_.electrical.c_per_pin * nl.NumInputPins(n) / n_out;
  }
  net_stamp_.assign(nn, 0);
  placement_.Resize(static_cast<std::size_t>(nl.NumCells()));
  r_cell_.assign(static_cast<std::size_t>(nl.NumCells()), 0.0);
  cell_leak_cost_.assign(static_cast<std::size_t>(nl.NumCells()), 0.0);
  hpwl_.assign(nn, 0.0);
  span_.assign(nn, 0);
  cost_.assign(nn, 0.0);
}

double ObjectiveEvaluator::Resistance(std::int32_t cell, double x, double y,
                                      int layer) const {
  const double area = nl_.cell(cell).Area();
  return rmodel_.CellToAmbient(x, y, layer, area > 0.0 ? area : 1e-12);
}

void ObjectiveEvaluator::SetPlacement(const Placement& placement) {
  assert(placement.size() == static_cast<std::size_t>(nl_.NumCells()));
  placement_ = placement;
  RecomputeFull();
  commits_since_resync_ = 0;
  for (CommitListener* l : listeners_) l->OnSetPlacement(placement_);
}

void ObjectiveEvaluator::RemoveCommitListener(CommitListener* listener) {
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (*it == listener) {
      listeners_.erase(it);
      return;
    }
  }
}

void ObjectiveEvaluator::ResyncTotals() {
  // Mirrors RecomputeFull's summation order exactly, but reads the caches
  // instead of re-evaluating geometry: r_cell_ and the per-net hpwl/span/cost
  // entries are written exactly (not accumulated) on every commit, so the
  // result is bit-identical to a full recompute at a fraction of the cost.
  const double leak_coeff =
      params_.alpha_temp * params_.electrical.leakage_per_cell_w;
  total_cost_ = 0.0;
  total_hpwl_ = 0.0;
  total_ilv_ = 0;
  total_thermal_ = 0.0;
  for (std::int32_t c = 0; c < nl_.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    cell_leak_cost_[i] = nl_.cell(c).fixed ? 0.0 : leak_coeff * r_cell_[i];
    total_cost_ += cell_leak_cost_[i];
    total_thermal_ += cell_leak_cost_[i];
  }
  for (std::int32_t n = 0; n < nl_.NumNets(); ++n) {
    const std::size_t i = static_cast<std::size_t>(n);
    total_cost_ += cost_[i];
    total_hpwl_ += hpwl_[i];
    total_ilv_ += span_[i];
    total_thermal_ += cost_[i] - hpwl_[i] - params_.alpha_ilv * span_[i];
  }
  commits_since_resync_ = 0;
}

void ObjectiveEvaluator::FinishCommit(double applied_delta, std::int32_t a,
                                      std::int32_t b, double x, double y,
                                      int layer, bool is_swap) {
  ++total_commits_;
  for (CommitListener* l : listeners_) {
    if (is_swap) {
      l->OnCommitSwap(a, b, applied_delta);
    } else {
      l->OnCommitMove(a, x, y, layer, applied_delta);
    }
  }
  if (params_.objective_resync_interval > 0 &&
      ++commits_since_resync_ >= params_.objective_resync_interval) {
    ResyncTotals();
  }
}

double ObjectiveEvaluator::RecomputeFull() {
  // Leakage enters Eq. 3 as a per-cell term alpha_TEMP * R_j * P_leak
  // (position-dependent through R_j); dynamic power stays per-net.
  const double leak_coeff =
      params_.alpha_temp * params_.electrical.leakage_per_cell_w;
  total_cost_ = 0.0;
  total_hpwl_ = 0.0;
  total_ilv_ = 0;
  total_thermal_ = 0.0;
  for (std::int32_t c = 0; c < nl_.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    r_cell_[i] = Resistance(c, placement_.x[i], placement_.y[i],
                            placement_.layer[i]);
    cell_leak_cost_[i] =
        nl_.cell(c).fixed ? 0.0 : leak_coeff * r_cell_[i];
    total_cost_ += cell_leak_cost_[i];
    total_thermal_ += cell_leak_cost_[i];
  }
  const Override none;
  for (std::int32_t n = 0; n < nl_.NumNets(); ++n) {
    const std::size_t i = static_cast<std::size_t>(n);
    const NetEval e = EvalNet(n, none, none);
    hpwl_[i] = e.hpwl;
    span_[i] = e.span;
    cost_[i] = e.cost;
    total_cost_ += e.cost;
    total_hpwl_ += e.hpwl;
    total_ilv_ += e.span;
    total_thermal_ += e.cost - e.hpwl - params_.alpha_ilv * e.span;
  }
  return total_cost_;
}

ObjectiveEvaluator::NetEval ObjectiveEvaluator::EvalNet(
    std::int32_t n, const Override& o1, const Override& o2) const {
  geom::BBox3 box;
  for (const netlist::Pin& pin : nl_.NetPins(n)) {
    double px, py;
    int pl;
    if (pin.cell == o1.cell) {
      px = o1.x;
      py = o1.y;
      pl = o1.layer;
    } else if (pin.cell == o2.cell) {
      px = o2.x;
      py = o2.y;
      pl = o2.layer;
    } else {
      const std::size_t c = static_cast<std::size_t>(pin.cell);
      px = placement_.x[c];
      py = placement_.y[c];
      pl = placement_.layer[c];
    }
    box.Add(geom::Point3{px + pin.dx, py + pin.dy, pl});
  }
  NetEval e;
  e.hpwl = box.Hpwl();
  e.span = box.LayerSpan();
  e.cost = e.hpwl + params_.alpha_ilv * e.span;
  if (params_.alpha_temp > 0.0) {
    const std::int32_t driver = nl_.DriverCell(n);
    if (driver >= 0) {
      double r;
      if (driver == o1.cell) {
        r = Resistance(driver, o1.x, o1.y, o1.layer);
      } else if (driver == o2.cell) {
        r = Resistance(driver, o2.x, o2.y, o2.layer);
      } else {
        r = r_cell_[static_cast<std::size_t>(driver)];
      }
      const std::size_t i = static_cast<std::size_t>(n);
      e.cost += params_.alpha_temp * r *
                (s_wl_[i] * e.hpwl + s_ilv_[i] * e.span + s_pin_term_[i]);
    }
  }
  return e;
}

void ObjectiveEvaluator::CollectNets(std::int32_t a, std::int32_t b) const {
  nets_buf_.clear();
  ++stamp_;
  for (const std::int32_t cell : {a, b}) {
    if (cell < 0) continue;
    for (const std::int32_t p : nl_.CellPinIds(cell)) {
      const std::int32_t n = nl_.pin(p).net;
      if (net_stamp_[static_cast<std::size_t>(n)] != stamp_) {
        net_stamp_[static_cast<std::size_t>(n)] = stamp_;
        nets_buf_.push_back(n);
      }
    }
  }
}

double ObjectiveEvaluator::MoveDelta(std::int32_t cell, double x, double y,
                                     int layer) const {
  CollectNets(cell, -1);
  const Override o{cell, x, y, layer};
  const Override none;
  double delta = LeakDelta(cell, x, y, layer);
  for (const std::int32_t n : nets_buf_) {
    delta += EvalNet(n, o, none).cost - cost_[static_cast<std::size_t>(n)];
  }
  return delta;
}

double ObjectiveEvaluator::LeakDelta(std::int32_t cell, double x, double y,
                                     int layer) const {
  const double leak_coeff =
      params_.alpha_temp * params_.electrical.leakage_per_cell_w;
  if (leak_coeff <= 0.0 || nl_.cell(cell).fixed) return 0.0;
  return leak_coeff * Resistance(cell, x, y, layer) -
         cell_leak_cost_[static_cast<std::size_t>(cell)];
}

void ObjectiveEvaluator::CommitMove(std::int32_t cell, double x, double y,
                                    int layer) {
  const double total_before = total_cost_;
  CollectNets(cell, -1);
  const Override o{cell, x, y, layer};
  const Override none;
  // Update position and resistance first so EvalNet's cache path (for nets
  // evaluated below) is consistent either way.
  const std::size_t ci = static_cast<std::size_t>(cell);
  const double leak_delta = LeakDelta(cell, x, y, layer);
  placement_.x[ci] = x;
  placement_.y[ci] = y;
  placement_.layer[ci] = layer;
  r_cell_[ci] = Resistance(cell, x, y, layer);
  cell_leak_cost_[ci] += leak_delta;
  total_cost_ += leak_delta;
  total_thermal_ += leak_delta;
  for (const std::int32_t n : nets_buf_) {
    const std::size_t i = static_cast<std::size_t>(n);
    const NetEval e = EvalNet(n, o, none);
    total_cost_ += e.cost - cost_[i];
    total_hpwl_ += e.hpwl - hpwl_[i];
    total_ilv_ += e.span - span_[i];
    total_thermal_ += (e.cost - e.hpwl - params_.alpha_ilv * e.span) -
                      (cost_[i] - hpwl_[i] - params_.alpha_ilv * span_[i]);
    cost_[i] = e.cost;
    hpwl_[i] = e.hpwl;
    span_[i] = e.span;
  }
  FinishCommit(total_cost_ - total_before, cell, -1, x, y, layer,
               /*is_swap=*/false);
}

double ObjectiveEvaluator::SwapDelta(std::int32_t a, std::int32_t b) const {
  const std::size_t ai = static_cast<std::size_t>(a);
  const std::size_t bi = static_cast<std::size_t>(b);
  CollectNets(a, b);
  const Override oa{a, placement_.x[bi], placement_.y[bi], placement_.layer[bi]};
  const Override ob{b, placement_.x[ai], placement_.y[ai], placement_.layer[ai]};
  double delta = LeakDelta(a, oa.x, oa.y, oa.layer) +
                 LeakDelta(b, ob.x, ob.y, ob.layer);
  for (const std::int32_t n : nets_buf_) {
    delta += EvalNet(n, oa, ob).cost - cost_[static_cast<std::size_t>(n)];
  }
  return delta;
}

void ObjectiveEvaluator::CommitSwap(std::int32_t a, std::int32_t b) {
  const double total_before = total_cost_;
  const std::size_t ai = static_cast<std::size_t>(a);
  const std::size_t bi = static_cast<std::size_t>(b);
  CollectNets(a, b);
  const Override oa{a, placement_.x[bi], placement_.y[bi], placement_.layer[bi]};
  const Override ob{b, placement_.x[ai], placement_.y[ai], placement_.layer[ai]};
  const double leak_a = LeakDelta(a, oa.x, oa.y, oa.layer);
  const double leak_b = LeakDelta(b, ob.x, ob.y, ob.layer);
  cell_leak_cost_[ai] += leak_a;
  cell_leak_cost_[bi] += leak_b;
  total_cost_ += leak_a + leak_b;
  total_thermal_ += leak_a + leak_b;
  std::swap(placement_.x[ai], placement_.x[bi]);
  std::swap(placement_.y[ai], placement_.y[bi]);
  std::swap(placement_.layer[ai], placement_.layer[bi]);
  r_cell_[ai] = Resistance(a, placement_.x[ai], placement_.y[ai],
                           placement_.layer[ai]);
  r_cell_[bi] = Resistance(b, placement_.x[bi], placement_.y[bi],
                           placement_.layer[bi]);
  for (const std::int32_t n : nets_buf_) {
    const std::size_t i = static_cast<std::size_t>(n);
    const NetEval e = EvalNet(n, oa, ob);
    total_cost_ += e.cost - cost_[i];
    total_hpwl_ += e.hpwl - hpwl_[i];
    total_ilv_ += e.span - span_[i];
    total_thermal_ += (e.cost - e.hpwl - params_.alpha_ilv * e.span) -
                      (cost_[i] - hpwl_[i] - params_.alpha_ilv * span_[i]);
    cost_[i] = e.cost;
    hpwl_[i] = e.hpwl;
    span_[i] = e.span;
  }
  FinishCommit(total_cost_ - total_before, a, b, 0.0, 0.0, 0,
               /*is_swap=*/true);
}

}  // namespace p3d::place
