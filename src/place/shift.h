// Cell shifting (paper Section 4.1) — the spreading engine of coarse
// legalization.
//
// A uniform density mesh covers the chip (bins = 2 cell widths x 2 cell
// heights x 1 layer). Per iteration and per direction, every row of bins is
// re-spaced: bin widths are remapped through the piecewise curve of Eq. 16
// (expansion for density > 1, contraction for density < 1) and cells are
// mapped into the new bin extents with Eq. 17.
//
// The two FastPlace [13] defects the paper fixes are handled the same way:
//   * boundary cross-over: all boundaries in a row are recomputed together
//     from positive widths and renormalized to the row extent, so ordering
//     is preserved by construction;
//   * needless spreading: a row whose bins are all at density <= 1 is left
//     untouched — sparse bins contract only to make room for over-congested
//     bins in the *same row*.
//
// The movement-retention factor beta_p (Eq. 17) is chosen per cell from a
// small candidate set to minimize objective degradation, evaluated through
// the shared ObjectiveEvaluator.
//
// Parallel schedule (DESIGN.md §5): one sweep's rows are independent work
// units — the density mesh is frozen at sweep start and every cell occupies
// exactly one bin of one row, so no two rows ever touch the same cell. Rows
// are grouped by the 4-colored window tiling of the cross grid; windows of a
// color plan their shifts concurrently against the frozen placement through
// thread-slot-local DeltaViews, then the planned moves commit serially in
// fixed window order — byte-identical placements for any thread count.
#pragma once

#include "place/bins.h"
#include "place/objective.h"

namespace p3d::place {

struct ShiftStats {
  int iterations = 0;
  double final_max_density = 0.0;
};

class CellShifter {
 public:
  explicit CellShifter(ObjectiveEvaluator& eval);

  /// Iterates x/y/z shifting sweeps until the max bin density drops below
  /// `target_density` or `max_iters` is reached. Mutates the evaluator's
  /// placement.
  ShiftStats Run(int max_iters, double target_density);

 private:
  /// One shifting sweep along one axis (0 = x, 1 = y, 2 = z/layers).
  void SweepAxis(BinGrid& grid, int axis);

  /// Eq. 16 width curve.
  double WidthFactor(double density) const;

  /// Plans Eq. 17 for one cell along one axis with the best beta from
  /// {1, 0.5, 0.25} (or beta = 1 when retention is disallowed, i.e. the
  /// source bin is badly congested), evaluating candidates through `view`
  /// (read-only). Returns true and the target coordinates when the best
  /// candidate actually moves the cell; the windowed commit phase applies it.
  bool PlanCellShift(DeltaView& view, std::int32_t cell, int axis,
                     double new_coord, bool allow_retention, double* out_x,
                     double* out_y, int* out_layer) const;

  ObjectiveEvaluator& eval_;
  int chip_layers_;
  double a_lower_;
  double a_upper_;
  double b_;
};

}  // namespace p3d::place
