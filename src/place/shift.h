// Cell shifting (paper Section 4.1) — the spreading engine of coarse
// legalization.
//
// A uniform density mesh covers the chip (bins = 2 cell widths x 2 cell
// heights x 1 layer). Per iteration and per direction, every row of bins is
// re-spaced: bin widths are remapped through the piecewise curve of Eq. 16
// (expansion for density > 1, contraction for density < 1) and cells are
// mapped into the new bin extents with Eq. 17.
//
// The two FastPlace [13] defects the paper fixes are handled the same way:
//   * boundary cross-over: all boundaries in a row are recomputed together
//     from positive widths and renormalized to the row extent, so ordering
//     is preserved by construction;
//   * needless spreading: a row whose bins are all at density <= 1 is left
//     untouched — sparse bins contract only to make room for over-congested
//     bins in the *same row*.
//
// The movement-retention factor beta_p (Eq. 17) is chosen per cell from a
// small candidate set to minimize objective degradation, evaluated through
// the shared ObjectiveEvaluator.
#pragma once

#include "place/bins.h"
#include "place/objective.h"

namespace p3d::place {

struct ShiftStats {
  int iterations = 0;
  double final_max_density = 0.0;
};

class CellShifter {
 public:
  explicit CellShifter(ObjectiveEvaluator& eval);

  /// Iterates x/y/z shifting sweeps until the max bin density drops below
  /// `target_density` or `max_iters` is reached. Mutates the evaluator's
  /// placement.
  ShiftStats Run(int max_iters, double target_density);

 private:
  /// One shifting sweep along one axis (0 = x, 1 = y, 2 = z/layers).
  void SweepAxis(BinGrid& grid, int axis);

  /// Eq. 16 width curve.
  double WidthFactor(double density) const;

  /// Applies Eq. 17 to one cell along one axis with the best beta from
  /// {1, 0.5, 0.25} (or beta = 1 when retention is disallowed, i.e. the
  /// source bin is badly congested); commits through the evaluator.
  void ApplyCellShift(std::int32_t cell, int axis, double new_coord,
                      bool allow_retention);

  ObjectiveEvaluator& eval_;
  int chip_layers_;
  double a_lower_;
  double a_upper_;
  double b_;
};

}  // namespace p3d::place
