#include "place/global_analytic.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "linalg/cg.h"
#include "linalg/csr.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "runtime/stream.h"
#include "util/log.h"

namespace p3d::place {
namespace {

/// Density multiplier cap: a bin more than this many times over-full anchors
/// its cells no harder (the remap target already moves them out).
constexpr double kMaxDensityMult = 4.0;

/// B2B connection lengths are clamped below this fraction of the axis extent
/// so coincident pins (the all-at-center start) cannot blow up the matrix
/// conditioning.
constexpr double kMinSpanFrac = 1e-5;

/// After the layer snap, a few wirelength/density iterations re-optimize x/y
/// against the now-integer layer assignment before handing off to coarse
/// legalization.
constexpr int kPolishIters = 2;

/// Anchor-ramp ceiling. Unbounded growth pins every cell exactly onto its
/// spreading target and the solution degenerates to the (bin-resolution)
/// density remap; capped, the wirelength term keeps a vote in every
/// iteration and coarse legalization absorbs the residual overlap.
constexpr double kMaxLambda = 0.4;

/// Reference via price for the z-density anchors, in average cell pitches:
/// at alpha_ILV equal to this many pitches of lateral wire the z wirelength
/// pull and the layer-balance pull are evenly matched. Pitch-relative (not
/// die-relative) so the alpha_ILV tradeoff point is scale-invariant.
constexpr double kZRefViaPricePitches = 12.0;

/// Outer-loop early stop: once the worst bin is below this density the
/// placement is spread enough for coarse legalization and further spreading
/// only trades away wirelength.
constexpr double kOverflowStop = 1.3;

/// Fraction of the remap displacement applied per iteration. A full shift
/// ratchets bin-quantization noise into the placement every round; a damped
/// one averages it out while the overflow still drains monotonically.
constexpr double kShiftDamping = 0.15;

/// Rounds of the SimPL-style scatter/solve alternation that converges the
/// continuous solution onto the legalized handoff, and the per-round growth
/// of its one-to-one anchor weight.
constexpr int kScatterIters = 8;
constexpr double kScatterAnchorGrowth = 1.6;

}  // namespace

AnalyticPlacer::AnalyticPlacer(const ObjectiveEvaluator& eval)
    : eval_(eval),
      nl_(eval.netlist()),
      chip_(eval.chip()),
      params_(eval.params()) {
  const std::size_t nn = static_cast<std::size_t>(nl_.NumNets());
  net_hpwl_.assign(nn, 0.0);
  net_span_.assign(nn, 0);
  nw_lateral_.assign(nn, 1.0);
  nw_vertical_.assign(nn, 1.0);
  cell_power_.assign(static_cast<std::size_t>(nl_.NumCells()), 0.0);
  floors_ = ComputePekoFloors(nl_, params_.alpha_ilv);
  const double avg_area = nl_.AvgCellWidth() * nl_.AvgCellHeight();
  r_slope_z_ =
      eval.resistance_model().FitVertical(avg_area > 0 ? avg_area : 1e-12).slope;

  index_of_.assign(static_cast<std::size_t>(nl_.NumCells()), -1);
  for (std::int32_t c = 0; c < nl_.NumCells(); ++c) {
    if (nl_.CellFixed(c)) continue;
    index_of_[static_cast<std::size_t>(c)] =
        static_cast<std::int32_t>(movable_.size());
    movable_.push_back(c);
  }

  // Bin mesh: per layer, sized for ~24 movable cells per bin.
  const int layers = std::max(1, chip_.num_layers());
  const double per_layer =
      static_cast<double>(movable_.size()) / static_cast<double>(layers);
  nx_ = std::clamp(static_cast<int>(std::ceil(std::sqrt(per_layer / 24.0))), 4,
                   96);
  ny_ = nx_;
}

void AnalyticPlacer::RefreshNetWeights() {
  // Net metrics from the continuous positions (per-net writes only, so the
  // batch parallelizes without synchronization). The layer span uses the
  // rounded continuous layer coordinate — the span coarse legalization will
  // actually see.
  runtime::ParallelFor(pool_, 0, nl_.NumNets(), /*grain=*/512,
                       [&](std::int64_t n) {
    double x_lo = 0.0, x_hi = 0.0, y_lo = 0.0, y_hi = 0.0;
    int l_lo = 0, l_hi = 0;
    bool first = true;
    for (const netlist::Pin& pin : nl_.NetPins(static_cast<std::int32_t>(n))) {
      const std::size_t c = static_cast<std::size_t>(pin.cell);
      const double px = cx_[c] + pin.dx;
      const double py = cy_[c] + pin.dy;
      const int pl = static_cast<int>(std::llround(cz_[c]));
      if (first) {
        x_lo = x_hi = px;
        y_lo = y_hi = py;
        l_lo = l_hi = pl;
        first = false;
      } else {
        x_lo = std::min(x_lo, px);
        x_hi = std::max(x_hi, px);
        y_lo = std::min(y_lo, py);
        y_hi = std::max(y_hi, py);
        l_lo = std::min(l_lo, pl);
        l_hi = std::max(l_hi, pl);
      }
    }
    net_hpwl_[static_cast<std::size_t>(n)] =
        first ? 0.0 : (x_hi - x_lo) + (y_hi - y_lo);
    net_span_[static_cast<std::size_t>(n)] = first ? 0 : l_hi - l_lo;
  });

  // Cell powers with PEKO-3D floors (Eq. 10 + 13-15) and Eq. 8 weights,
  // exactly as the bisection backend refreshes them per level.
  std::fill(cell_power_.begin(), cell_power_.end(),
            params_.electrical.leakage_per_cell_w);
  const bool thermal = params_.alpha_temp > 0.0;
  for (std::int32_t n = 0; n < nl_.NumNets(); ++n) {
    const std::size_t i = static_cast<std::size_t>(n);
    nw_lateral_[i] = 1.0;
    nw_vertical_[i] = 1.0;
    const std::int32_t driver = nl_.DriverCell(n);
    if (driver < 0) continue;
    const double wl =
        std::max(net_hpwl_[i], floors_.wl_x[i] + floors_.wl_y[i]);
    const double ilv =
        std::max(static_cast<double>(net_span_[i]), floors_.ilv[i]);
    cell_power_[static_cast<std::size_t>(driver)] +=
        eval_.SWl(n) * wl + eval_.SIlv(n) * ilv + eval_.SPinTerm(n);
    if (thermal) {
      const std::size_t d = static_cast<std::size_t>(driver);
      const double area = nl_.CellArea(driver);
      const double r = eval_.resistance_model().CellToAmbient(
          cx_[d], cy_[d], static_cast<int>(std::llround(cz_[d])),
          area > 0 ? area : 1e-12);
      nw_lateral_[i] = 1.0 + params_.alpha_temp * r * eval_.SWl(n);
      if (params_.alpha_ilv > 0.0) {
        nw_vertical_[i] =
            1.0 + params_.alpha_temp * r * eval_.SIlv(n) / params_.alpha_ilv;
      }
    }
  }
}

void AnalyticPlacer::RefreshDensity() {
  const int layers = std::max(1, chip_.num_layers());
  const std::size_t nbins =
      static_cast<std::size_t>(layers) * static_cast<std::size_t>(nx_) *
      static_cast<std::size_t>(ny_);
  bin_area_.assign(nbins, 0.0);
  const double w = chip_.width();
  const double h = chip_.height();
  const double bw = w / nx_;
  const double bh = h / ny_;
  const double capacity = chip_.RowAreaPerLayer() / (nx_ * ny_);

  const std::size_t nm = movable_.size();
  std::vector<int> cell_bx(nm), cell_by(nm), cell_bl(nm);
  for (std::size_t i = 0; i < nm; ++i) {
    const std::size_t c = static_cast<std::size_t>(movable_[i]);
    const int bx = std::clamp(static_cast<int>(cx_[c] / bw), 0, nx_ - 1);
    const int by = std::clamp(static_cast<int>(cy_[c] / bh), 0, ny_ - 1);
    const int bl =
        std::clamp(static_cast<int>(std::llround(cz_[c])), 0, layers - 1);
    cell_bx[i] = bx;
    cell_by[i] = by;
    cell_bl[i] = bl;
    bin_area_[(static_cast<std::size_t>(bl) * ny_ + by) * nx_ + bx] +=
        nl_.CellArea(movable_[i]);
  }
  max_density_ = 0.0;
  for (const double a : bin_area_) {
    max_density_ = std::max(max_density_, a / capacity);
  }

  // FastPlace-style boundary remap along one axis of one bin row: bin k of
  // uniform width `extent / n` is re-widened proportionally to
  // (occupancy_k + capacity), and a coordinate at fraction f inside old bin
  // k maps to the same fraction of the new bin. Uniform occupancy at
  // capacity is the identity map; an over-full bin expands, spreading its
  // cells into the slack of its under-full neighbours.
  const auto remap = [](const double* util, int n, double capacity_,
                        double coord_bins) {
    // `coord_bins` is the coordinate in units of (uniform) bins, in [0, n].
    const int k = std::clamp(static_cast<int>(coord_bins), 0, n - 1);
    const double f = coord_bins - k;
    double total = 0.0;
    double before = 0.0;
    for (int i = 0; i < n; ++i) {
      const double v = util[i] + capacity_;
      if (i < k) before += v;
      total += v;
    }
    const double v_k = util[k] + capacity_;
    return total > 0.0 ? (before + f * v_k) / total * n : coord_bins;
  };

  target_x_.resize(nm);
  target_y_.resize(nm);
  target_z_.resize(nm);
  density_mult_.resize(nm);
  std::vector<double> line(static_cast<std::size_t>(
      std::max(layers, std::max(nx_, ny_))));

  // Per-cell spreading targets. Each axis reads the bin occupancies along
  // its own line through the mesh (x: the cell's (layer, by) row; y: the
  // (layer, bx) column; z: the (bx, by) layer stack). Lines are re-gathered
  // per cell — O(cells * bins-per-line), small next to the CG solves — which
  // keeps the loop trivially deterministic.
  for (std::size_t i = 0; i < nm; ++i) {
    const std::size_t c = static_cast<std::size_t>(movable_[i]);
    const int bx = cell_bx[i];
    const int by = cell_by[i];
    const int bl = cell_bl[i];
    const std::size_t base_l = static_cast<std::size_t>(bl) * ny_;

    for (int k = 0; k < nx_; ++k) {
      line[static_cast<std::size_t>(k)] = bin_area_[(base_l + by) * nx_ + k];
    }
    target_x_[i] =
        remap(line.data(), nx_, capacity, cx_[c] / bw) * bw;

    for (int k = 0; k < ny_; ++k) {
      line[static_cast<std::size_t>(k)] =
          bin_area_[(static_cast<std::size_t>(bl) * ny_ + k) * nx_ + bx];
    }
    target_y_[i] =
        remap(line.data(), ny_, capacity, cy_[c] / bh) * bh;

    if (layers > 1) {
      for (int k = 0; k < layers; ++k) {
        line[static_cast<std::size_t>(k)] =
            bin_area_[(static_cast<std::size_t>(k) * ny_ + by) * nx_ + bx];
      }
      // Continuous layer z in [0, layers - 1] sits at bin centers: bin k
      // covers [k - 0.5, k + 0.5].
      target_z_[i] = std::clamp(
          remap(line.data(), layers, capacity, cz_[c] + 0.5) - 0.5, 0.0,
          static_cast<double>(layers - 1));
    } else {
      target_z_[i] = 0.0;
    }

    const double d = bin_area_[(base_l + by) * nx_ + bx] / capacity;
    density_mult_[i] = std::clamp(d, 1.0, kMaxDensityMult);
  }
}

void AnalyticPlacer::SolveAxis(Axis axis, double lambda) {
  const std::size_t nm = movable_.size();
  if (nm == 0) return;
  const int n = static_cast<int>(nm);
  const int layers = std::max(1, chip_.num_layers());
  if (axis == kZ && layers < 2) return;

  const double extent = axis == kX   ? chip_.width()
                        : axis == kY ? chip_.height()
                                     : static_cast<double>(layers - 1);
  // z saturates at half a layer pitch, not a fraction of the extent: with a
  // near-zero clamp the 1/|d| weights of co-located cells explode, every
  // cluster collapses into one z blob, and the ordering the layer snap relies
  // on degenerates to the seed jitter (near-random layers, maximal ILV).
  const double min_span =
      axis == kZ ? 0.5 : kMinSpanFrac * std::max(extent, 1e-30);

  linalg::CooBuilder coo(n);
  rhs_.assign(nm, 0.0);
  diag_hint_.assign(nm, 0.0);

  // Pin coordinate on this axis (z has no pin offsets).
  const auto pin_coord = [&](const netlist::Pin& pin) {
    const std::size_t c = static_cast<std::size_t>(pin.cell);
    return axis == kX   ? cx_[c] + pin.dx
           : axis == kY ? cy_[c] + pin.dy
                        : cz_[c];
  };
  const auto pin_offset = [&](const netlist::Pin& pin) {
    return axis == kX ? pin.dx : axis == kY ? pin.dy : 0.0;
  };

  // One B2B connection between pins a and b at weight w: the quadratic term
  // w * (pos_a + off_a - pos_b - off_b)^2 folded into the normal equations.
  const auto add_edge = [&](const netlist::Pin& a, const netlist::Pin& b,
                            double w) {
    const std::int32_t ia = index_of_[static_cast<std::size_t>(a.cell)];
    const std::int32_t ib = index_of_[static_cast<std::size_t>(b.cell)];
    const double shift = pin_offset(a) - pin_offset(b);
    if (ia >= 0 && ib >= 0) {
      coo.Add(ia, ia, w);
      coo.Add(ib, ib, w);
      coo.Add(ia, ib, -w);
      coo.Add(ib, ia, -w);
      rhs_[static_cast<std::size_t>(ia)] -= w * shift;
      rhs_[static_cast<std::size_t>(ib)] += w * shift;
      diag_hint_[static_cast<std::size_t>(ia)] += w;
      diag_hint_[static_cast<std::size_t>(ib)] += w;
    } else if (ia >= 0) {
      const double xb = pin_coord(b);
      coo.Add(ia, ia, w);
      rhs_[static_cast<std::size_t>(ia)] += w * (xb - shift);
      diag_hint_[static_cast<std::size_t>(ia)] += w;
    } else if (ib >= 0) {
      const double xa = pin_coord(a);
      coo.Add(ib, ib, w);
      rhs_[static_cast<std::size_t>(ib)] += w * (xa + shift);
      diag_hint_[static_cast<std::size_t>(ib)] += w;
    }
  };

  for (std::int32_t net = 0; net < nl_.NumNets(); ++net) {
    const std::size_t ni = static_cast<std::size_t>(net);
    const double wnet = axis == kZ ? params_.alpha_ilv * nw_vertical_[ni]
                                   : nw_lateral_[ni];
    if (wnet <= 0.0) continue;
    const auto pins = nl_.NetPins(net);
    const int p = static_cast<int>(pins.size());
    if (p < 2) continue;

    // Boundary pins (first extreme wins ties, so the model is a pure
    // function of the positions).
    int bmin = 0, bmax = 0;
    double vmin = pin_coord(pins[0]);
    double vmax = vmin;
    for (int i = 1; i < p; ++i) {
      const double v = pin_coord(pins[static_cast<std::size_t>(i)]);
      if (v < vmin) {
        vmin = v;
        bmin = i;
      }
      if (v > vmax) {
        vmax = v;
        bmax = i;
      }
    }
    const double scale = wnet * 2.0 / (p - 1);
    for (int i = 0; i < p; ++i) {
      if (i == bmin) continue;
      const netlist::Pin& a = pins[static_cast<std::size_t>(i)];
      const netlist::Pin& lo = pins[static_cast<std::size_t>(bmin)];
      add_edge(a, lo, scale / std::max(pin_coord(a) - vmin, min_span));
      if (i == bmax) continue;
      const netlist::Pin& hi = pins[static_cast<std::size_t>(bmax)];
      add_edge(a, hi, scale / std::max(vmax - pin_coord(a), min_span));
    }
  }

  // Heat-sink pull (Eq. 12 linearized): each cell's thermal z cost is
  // ~ alpha_TEMP * P_j * Rslope_z * pitch * z, a linear pull toward layer 0.
  // The quadratic surrogate w * z^2 with w = slope / (2 * z_now) reproduces
  // the gradient at the linearization point.
  if (axis == kZ && params_.alpha_temp > 0.0 && r_slope_z_ > 0.0) {
    const double pitch = params_.stack.LayerPitch();
    for (std::size_t i = 0; i < nm; ++i) {
      const std::size_t c = static_cast<std::size_t>(movable_[i]);
      const double slope = params_.alpha_temp * cell_power_[c] * r_slope_z_ *
                           pitch;
      if (slope <= 0.0) continue;
      const double w = slope / std::max(2.0 * cz_[c], 0.5);
      coo.Add(static_cast<std::int32_t>(i), static_cast<std::int32_t>(i), w);
      diag_hint_[i] += w;
    }
  }

  // Density anchors: weight scales with the cell's B2B diagonal (so anchors
  // track the wirelength stiffness), the per-layer bin-density multiplier,
  // and the lambda ramp. The absolute floor keeps netless cells (and the
  // alpha_ILV = 0 z system, whose wirelength matrix is empty) non-singular.
  double avg_diag = 0.0;
  for (const double d : diag_hint_) avg_diag += d;
  avg_diag /= static_cast<double>(nm);
  const double floor = avg_diag > 0.0 ? 0.01 * avg_diag : 1.0;
  // For x/y the diag-proportional anchor is the point: spreading pressure
  // tracks wirelength stiffness, since lateral density is non-negotiable.
  // The z system is different — its wirelength matrix carries the Eq. 3 via
  // price alpha_ILV, and a diag-proportional anchor would cancel it (any
  // alpha would yield the same layering). Rescaling the z anchors to a fixed
  // reference via price keeps the knob live: alpha above the reference lets
  // clustering win (fewer vias), alpha below it lets the layer-balance
  // spreading win (the paper's Figure 3 sweep).
  double anchor_scale = 1.0;
  if (axis == kZ && params_.alpha_ilv > 0.0) {
    const double z_ref = kZRefViaPricePitches * 0.5 *
                         (nl_.AvgCellWidth() + nl_.AvgCellHeight());
    anchor_scale = z_ref / params_.alpha_ilv;
  }
  const std::vector<double>& target =
      axis == kX ? target_x_ : axis == kY ? target_y_ : target_z_;
  for (std::size_t i = 0; i < nm; ++i) {
    const double a = lambda * density_mult_[i] * anchor_scale *
                     (diag_hint_[i] + floor);
    coo.Add(static_cast<std::int32_t>(i), static_cast<std::int32_t>(i), a);
    rhs_[i] += a * target[i];
  }

  const linalg::CsrMatrix mat = linalg::CsrMatrix::FromCoo(coo);
  sol_.resize(nm);
  std::vector<double>& coords = axis == kX ? cx_ : axis == kY ? cy_ : cz_;
  for (std::size_t i = 0; i < nm; ++i) {
    sol_[i] = coords[static_cast<std::size_t>(movable_[i])];  // warm start
  }
  linalg::CgOptions opts;
  opts.max_iters = std::max(1, params_.analytic_cg_max_iters);
  opts.rel_tolerance = 1e-8;
  opts.threads = params_.threads;
  opts.preconditioner = linalg::PreconditionerKind::kJacobi;
  const linalg::CgResult r = linalg::SolveCg(mat, rhs_, &sol_, opts);
  ++stats_.analytic.solves;
  stats_.analytic.cg_iters += r.iters;

  const double lo = 0.0;
  const double hi = axis == kZ ? static_cast<double>(layers - 1) : extent;
  for (std::size_t i = 0; i < nm; ++i) {
    coords[static_cast<std::size_t>(movable_[i])] =
        std::clamp(sol_[i], lo, hi);
  }
}

void AnalyticPlacer::SnapLayers() {
  const int layers = std::max(1, chip_.num_layers());
  if (layers < 2) {
    for (const std::int32_t c : movable_) cz_[static_cast<std::size_t>(c)] = 0.0;
    return;
  }
  // Sort by continuous z (ties by cell id) and fill layers bottom-up to equal
  // movable area. Cells the solver pulled together in z stay together, and
  // the per-layer area balance is exact by construction — the same guarantee
  // the bisection backend's balanced z cuts give coarse legalization.
  std::vector<std::int32_t> order = movable_;
  std::sort(order.begin(), order.end(),
            [&](std::int32_t a, std::int32_t b) {
              const double za = cz_[static_cast<std::size_t>(a)];
              const double zb = cz_[static_cast<std::size_t>(b)];
              return za != zb ? za < zb : a < b;
            });
  const double per_layer = nl_.MovableArea() / layers;
  int layer = 0;
  double fill = 0.0;
  for (const std::int32_t c : order) {
    if (fill >= per_layer && layer < layers - 1) {
      ++layer;
      fill = 0.0;
    }
    cz_[static_cast<std::size_t>(c)] = static_cast<double>(layer);
    fill += nl_.CellArea(c);
  }
}

void AnalyticPlacer::SnapToRows() {
  // Order-preserving 2-D scatter onto the row grid, the analytic counterpart
  // of bisection's leaf scatter. The continuous optimum leaves connected
  // cells nearly coincident (quadratic wirelength does not price overlap,
  // and the coarse bins cannot see it); a 1-D de-overlap would smear such a
  // clump across the die on one axis. Instead each layer is recursively
  // bisected: the cell set splits at its area median along the region's long
  // side and the region splits in proportion to the two halves' cell area,
  // so every clump expands into a compact patch of exactly uniform density
  // while the continuous solution's geometric order is preserved on both
  // axes. Leaves place their cell at the region center with y snapped to the
  // nearest row.
  const int layers = std::max(1, chip_.num_layers());
  std::vector<std::int32_t> on_layer;
  // Explicit work stack; cells live in one scratch vector, regions address
  // [begin, end) ranges of it.
  struct Region {
    std::size_t begin, end;
    double x0, y0, x1, y1;
  };
  std::vector<Region> stack;
  for (int l = 0; l < layers; ++l) {
    on_layer.clear();
    for (const std::int32_t c : movable_) {
      const std::size_t ci = static_cast<std::size_t>(c);
      if (static_cast<int>(std::llround(cz_[ci])) == l) on_layer.push_back(c);
    }
    if (on_layer.empty()) continue;
    stack.clear();
    stack.push_back({0, on_layer.size(), 0.0, 0.0, chip_.width(),
                     chip_.height()});
    while (!stack.empty()) {
      const Region r = stack.back();
      stack.pop_back();
      const std::size_t count = r.end - r.begin;
      if (count == 1) {
        const std::size_t c = static_cast<std::size_t>(on_layer[r.begin]);
        cx_[c] = 0.5 * (r.x0 + r.x1);
        const double yc = 0.5 * (r.y0 + r.y1);
        cy_[c] = chip_.RowCenterY(chip_.NearestRow(yc));
        continue;
      }
      const bool split_x = (r.x1 - r.x0) >= (r.y1 - r.y0);
      const auto first = on_layer.begin() + static_cast<std::ptrdiff_t>(r.begin);
      const auto last = on_layer.begin() + static_cast<std::ptrdiff_t>(r.end);
      std::sort(first, last, [&](std::int32_t a, std::int32_t b) {
        const double va = split_x ? cx_[static_cast<std::size_t>(a)]
                                  : cy_[static_cast<std::size_t>(a)];
        const double vb = split_x ? cx_[static_cast<std::size_t>(b)]
                                  : cy_[static_cast<std::size_t>(b)];
        return va != vb ? va < vb : a < b;
      });
      double total = 0.0;
      for (std::size_t i = r.begin; i < r.end; ++i) {
        total += nl_.CellArea(on_layer[i]);
      }
      // Area median: the first half takes cells until half the area, at
      // least one cell, leaving at least one for the second half.
      std::size_t mid = r.begin;
      double acc = 0.0;
      while (mid + 1 < r.end && acc + nl_.CellArea(on_layer[mid]) <=
                                    0.5 * total) {
        acc += nl_.CellArea(on_layer[mid]);
        ++mid;
      }
      if (mid == r.begin) {
        acc = nl_.CellArea(on_layer[mid]);
        ++mid;
      }
      const double frac = total > 0.0 ? acc / total : 0.5;
      if (split_x) {
        const double xs = r.x0 + frac * (r.x1 - r.x0);
        stack.push_back({r.begin, mid, r.x0, r.y0, xs, r.y1});
        stack.push_back({mid, r.end, xs, r.y0, r.x1, r.y1});
      } else {
        const double ys = r.y0 + frac * (r.y1 - r.y0);
        stack.push_back({r.begin, mid, r.x0, r.y0, r.x1, ys});
        stack.push_back({mid, r.end, r.x0, ys, r.x1, r.y1});
      }
    }
  }
}

util::StatusOr<Placement> AnalyticPlacer::Run(const Placement& initial) {
  if (initial.size() != 0 &&
      initial.size() != static_cast<std::size_t>(nl_.NumCells())) {
    return util::InvalidArgumentError(
        "AnalyticPlacer::Run: initial placement has " +
        std::to_string(initial.size()) + " cells, netlist has " +
        std::to_string(nl_.NumCells()));
  }
  obs::TraceScope trace_run("global.analytic");
  stats_ = {};
  stats_.backend = name();
  pool_ = runtime::SharedPool(params_.threads);

  const std::size_t nc = static_cast<std::size_t>(nl_.NumCells());
  cx_.assign(nc, 0.0);
  cy_.assign(nc, 0.0);
  cz_.assign(nc, 0.0);
  for (std::size_t c = 0; c < initial.size(); ++c) {
    cx_[c] = initial.x[c];
    cy_[c] = initial.y[c];
    cz_[c] = static_cast<double>(initial.layer[c]);
  }

  // Movable cells start near the chip center with a seeded jitter: the
  // quadratic model needs distinct pin positions for the B2B boundary pins
  // (and the density remap needs a tie-break) — a pure function of
  // (params.seed, cell id), so any thread count sees the same start.
  const int layers = std::max(1, chip_.num_layers());
  const double cx0 = chip_.width() / 2.0;
  const double cy0 = chip_.height() / 2.0;
  const double cz0 = static_cast<double>(layers - 1) / 2.0;
  const double jx = 0.5 * std::max(nl_.AvgCellWidth(), 1e-9);
  const double jy = 0.5 * std::max(nl_.AvgCellHeight(), 1e-9);
  for (const std::int32_t c : movable_) {
    util::Rng rng = runtime::DeriveStream(params_.seed ^ 0xa1a171cULL,
                                          static_cast<std::uint64_t>(c));
    const std::size_t i = static_cast<std::size_t>(c);
    cx_[i] = cx0 + (rng.NextDouble() - 0.5) * jx;
    cy_[i] = cy0 + (rng.NextDouble() - 0.5) * jy;
    cz_[i] = cz0 + (rng.NextDouble() - 0.5) * 0.1;
  }

  // FastPlace-style outer loop: linearize the nets, compute the density
  // remap, apply it as an explicit shift, then relax wirelength with anchors
  // holding the shifted positions. The explicit shift makes the spreading
  // monotone (an anchor-only equilibrium oscillates and never clears the
  // overflow); the relaxation recovers the wirelength the shift disturbed.
  const int iters = std::max(1, params_.analytic_iterations);
  double lambda = params_.analytic_anchor_base;
  for (int it = 0; it < iters; ++it) {
    obs::TraceScope trace_iter("global.analytic_iter");
    RefreshNetWeights();
    RefreshDensity();
    if (it > 0 && max_density_ < kOverflowStop) break;
    // One axis at a time, with the bin occupancy refreshed in between:
    // shifting every axis from one density snapshot double-counts the
    // spreading (each axis alone would clear the overflow) and thrashes.
    for (std::size_t i = 0; i < movable_.size(); ++i) {
      const std::size_t c = static_cast<std::size_t>(movable_[i]);
      cx_[c] += kShiftDamping * (target_x_[i] - cx_[c]);
    }
    SolveAxis(kX, lambda);
    RefreshDensity();
    for (std::size_t i = 0; i < movable_.size(); ++i) {
      const std::size_t c = static_cast<std::size_t>(movable_[i]);
      cy_[c] += kShiftDamping * (target_y_[i] - cy_[c]);
    }
    SolveAxis(kY, lambda);
    RefreshDensity();
    SolveAxis(kZ, lambda);
    // Re-discretize z immediately: the continuous z state is only an
    // ordering device (the snap enforces exact per-layer balance), and the
    // x/y density of the next iteration must see balanced layers — a
    // clustered continuous z piles every cell onto one layer's bins and
    // makes the lateral spreading overshoot by the layer count.
    SnapLayers();
    lambda = std::min(lambda * params_.analytic_anchor_growth, kMaxLambda);
    ++stats_.analytic.iterations;
  }

  // Discretize z, then re-optimize x/y against the fixed layer assignment so
  // lateral wirelength recovers whatever the snap displaced.
  SnapLayers();
  for (int it = 0; it < kPolishIters; ++it) {
    obs::TraceScope trace_polish("global.analytic_polish");
    RefreshNetWeights();
    RefreshDensity();
    SolveAxis(kX, lambda);
    SolveAxis(kY, lambda);
  }
  // SimPL-style handoff convergence: alternate the legalized upper bound
  // (the order-preserving scatter) with a lower-bound wirelength solve
  // anchored one-to-one at the scattered slots. Each round the anchor weight
  // ramps, the two bounds converge, and the fine-scale structure the coarse
  // density loop cannot see gets optimized against real wirelength instead
  // of being fixed by fiat in a single final scatter.
  {
    const std::size_t nm = movable_.size();
    std::vector<double> lower_x(nm), lower_y(nm);
    double ls = lambda;
    for (int it = 0; it < kScatterIters; ++it) {
      obs::TraceScope trace_scatter("global.analytic_scatter");
      for (std::size_t i = 0; i < nm; ++i) {
        const std::size_t c = static_cast<std::size_t>(movable_[i]);
        lower_x[i] = cx_[c];
        lower_y[i] = cy_[c];
      }
      SnapToRows();
      target_x_.resize(nm);
      target_y_.resize(nm);
      density_mult_.assign(nm, 1.0);
      for (std::size_t i = 0; i < nm; ++i) {
        const std::size_t c = static_cast<std::size_t>(movable_[i]);
        target_x_[i] = cx_[c];
        target_y_[i] = cy_[c];
        cx_[c] = lower_x[i];
        cy_[c] = lower_y[i];
      }
      RefreshNetWeights();
      SolveAxis(kX, ls);
      SolveAxis(kY, ls);
      ls *= kScatterAnchorGrowth;
    }
  }
  SnapToRows();
  RefreshDensity();  // final overflow diagnostic from the final positions
  stats_.analytic.final_overflow = max_density_;

  Placement out;
  out.Resize(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    if (nl_.CellFixed(static_cast<std::int32_t>(c))) {
      out.x[c] = initial.size() != 0 ? initial.x[c] : 0.0;
      out.y[c] = initial.size() != 0 ? initial.y[c] : 0.0;
      out.layer[c] = initial.size() != 0 ? initial.layer[c] : 0;
    } else {
      out.x[c] = std::clamp(cx_[c], 0.0, chip_.width());
      out.y[c] = std::clamp(cy_[c], 0.0, chip_.height());
      out.layer[c] = std::clamp(static_cast<int>(std::llround(cz_[c])), 0,
                                layers - 1);
    }
  }

  stats_.iterations = stats_.analytic.iterations;
  stats_.cells_placed = static_cast<long long>(nl_.NumMovableCells());
  obs::MetricAdd("global/analytic_iterations", stats_.analytic.iterations);
  obs::MetricAdd("global/analytic_solves", stats_.analytic.solves);
  obs::MetricAdd("global/analytic_cg_iters", stats_.analytic.cg_iters);
  util::LogDebug("global/analytic: %d iterations, %d solves, %lld cg iters, "
                 "final overflow %.3f",
                 stats_.analytic.iterations, stats_.analytic.solves,
                 stats_.analytic.cg_iters, max_density_);
  return out;
}

}  // namespace p3d::place
