#include "place/legalize.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "place/bins.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "util/log.h"

namespace p3d::place {

namespace {

// Trace names must be string literals (the sink stores pointers). A 1-D row
// tiling only produces colors 0 and 1, but the tiling API reserves 4.
constexpr const char* kColorTrace[WindowTiling::kNumColors] = {
    "legalize.color0", "legalize.color1", "legalize.color2",
    "legalize.color3"};

}  // namespace

DetailedLegalizer::DetailedLegalizer(ObjectiveEvaluator& eval)
    : eval_(eval), nl_(eval.netlist()), chip_(eval.chip()) {}

void DetailedLegalizer::CandidatesInRow(DeltaView& view, const Row& row,
                                        std::int32_t cell, double width,
                                        double desired_x, int layer, int r,
                                        std::vector<Candidate>* out) const {
  const double row_y = chip_.RowCenterY(r);
  const double w_half = width / 2.0;

  // --- gap candidates: free intervals, no shifting needed ----------------
  struct Gap {
    double center;
    double dist;
  };
  Gap best[2] = {{0.0, 1e300}, {0.0, 1e300}};
  auto consider = [&](double g_lo, double g_hi) {
    if (g_hi - g_lo < width) return;
    const double c = std::clamp(desired_x, g_lo + w_half, g_hi - w_half);
    const double d = std::abs(c - desired_x);
    if (d < best[0].dist) {
      best[1] = best[0];
      best[0] = {c, d};
    } else if (d < best[1].dist) {
      best[1] = {c, d};
    }
  };
  double cursor = 0.0;
  for (const Item& it : row.items) {
    consider(cursor, it.lo);
    cursor = std::max(cursor, it.hi);
  }
  consider(cursor, chip_.width());

  bool any_gap = false;
  for (const Gap& g : best) {
    if (g.dist >= 1e300) continue;
    any_gap = true;
    Candidate cand;
    cand.x = g.center;
    cand.layer = layer;
    cand.row = r;
    cand.delta = view.MoveDelta(cell, g.center, row_y, layer);
    out->push_back(std::move(cand));
  }

  // --- squeeze candidate: shift neighbours aside (cost included) ----------
  if (!any_gap) {
    auto sq = PlanSqueeze(view, row, cell, width, desired_x, layer, r);
    if (sq.has_value()) out->push_back(std::move(*sq));
  }
}

std::optional<DetailedLegalizer::Candidate> DetailedLegalizer::PlanSqueeze(
    DeltaView& view, const Row& row, std::int32_t cell, double width,
    double desired_x, int layer, int r) const {
  const double row_y = chip_.RowCenterY(r);

  // Split the row into segments between fixed walls; pick the best feasible
  // segment (enough slack for `width`), nearest to desired_x.
  struct Segment {
    double lo, hi;
    std::size_t first, last;  // movable item index range [first, last)
  };
  std::vector<Segment> segments;
  double seg_lo = 0.0;
  std::size_t seg_first = 0;
  for (std::size_t i = 0; i <= row.items.size(); ++i) {
    const bool wall = i == row.items.size() || row.items[i].cell < 0;
    if (!wall) continue;
    const double seg_hi = i == row.items.size() ? chip_.width() : row.items[i].lo;
    // Degenerate segments (seg_hi <= seg_lo) arise from walls that overlap
    // the row start, abut each other, or nest inside a wider wall (sorted by
    // lo, a nested wall's hi can REGRESS below the enclosing wall's hi);
    // admitting one would squeeze cells into an interval that sits inside a
    // fixed obstruction. Skip them, and keep seg_lo monotone so a nested
    // wall can never pull the next segment's start back inside its encloser.
    if (seg_hi > seg_lo) segments.push_back({seg_lo, seg_hi, seg_first, i});
    if (i < row.items.size()) {
      seg_lo = std::max(seg_lo, row.items[i].hi);
      seg_first = i + 1;
    }
  }

  const Segment* best_seg = nullptr;
  double best_dist = 1e300;
  for (const Segment& s : segments) {
    double used = 0.0;
    for (std::size_t i = s.first; i < s.last; ++i) {
      used += row.items[i].hi - row.items[i].lo;
    }
    if (s.hi - s.lo - used < width) continue;  // no slack
    const double c = std::clamp(desired_x, s.lo + width / 2.0,
                                s.hi - width / 2.0);
    const double d = std::abs(c - desired_x);
    if (d < best_dist) {
      best_dist = d;
      best_seg = &s;
    }
  }
  if (best_seg == nullptr) return std::nullopt;
  const Segment& s = *best_seg;

  // Build the movable sequence with the new cell inserted at its desired
  // slot, then resolve overlaps with a forward pass (push right) and, on
  // right-wall overflow, a backward pass (push left). Total width fits, so
  // this always succeeds.
  struct Entry {
    double ideal_lo;
    double w;
    std::int32_t cell;
  };
  std::vector<Entry> seq;
  const double desired_lo =
      std::clamp(desired_x - width / 2.0, s.lo, s.hi - width);
  bool inserted = false;
  for (std::size_t i = s.first; i < s.last; ++i) {
    const Item& it = row.items[i];
    if (!inserted && it.lo + (it.hi - it.lo) / 2.0 > desired_x) {
      seq.push_back({desired_lo, width, cell});
      inserted = true;
    }
    seq.push_back({it.lo, it.hi - it.lo, it.cell});
  }
  if (!inserted) seq.push_back({desired_lo, width, cell});

  std::vector<double> lo(seq.size());
  double prev_end = s.lo;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    lo[i] = std::max(seq[i].ideal_lo, prev_end);
    prev_end = lo[i] + seq[i].w;
  }
  if (prev_end > s.hi) {
    double next_lo = s.hi;
    for (std::size_t i = seq.size(); i-- > 0;) {
      lo[i] = std::min(lo[i], next_lo - seq[i].w);
      next_lo = lo[i];
    }
  }

  Candidate cand;
  cand.layer = layer;
  cand.row = r;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i].cell == cell) {
      cand.x = lo[i] + seq[i].w / 2.0;
      cand.delta += view.MoveDelta(cell, cand.x, row_y, layer);
    } else if (std::abs(lo[i] - seq[i].ideal_lo) > kGeomEps) {
      const std::size_t ci = static_cast<std::size_t>(seq[i].cell);
      const Placement& p = eval_.placement();
      cand.delta += view.MoveDelta(seq[i].cell, lo[i] + seq[i].w / 2.0,
                                   p.y[ci], p.layer[ci]);
      cand.shifts.emplace_back(seq[i].cell, lo[i]);
    }
  }
  return cand;
}

int DetailedLegalizer::SearchCell(RowSpace& space, int row_lo, int row_hi,
                                  DeltaView& view, std::int32_t cell,
                                  double width, double desired_x, int home_row,
                                  int home_layer, int radius_cap,
                                  std::vector<Candidate>* cands) const {
  int found_max = -1;
  std::vector<int> layer_order;
  layer_order.push_back(home_layer);
  for (int d = 1; d < chip_.num_layers(); ++d) {
    if (home_layer - d >= 0) layer_order.push_back(home_layer - d);
    if (home_layer + d < chip_.num_layers()) layer_order.push_back(home_layer + d);
  }
  for (const int layer : layer_order) {
    bool found_in_layer = false;
    int found_radius = radius_cap;
    for (int dr = 0; dr <= radius_cap; ++dr) {
      if (found_in_layer && dr > found_radius + 2) break;
      bool any_row = false;
      const int row_candidates[2] = {home_row - dr, home_row + dr};
      const int n_row_candidates = dr == 0 ? 1 : 2;
      for (int rc = 0; rc < n_row_candidates; ++rc) {
        const int r = row_candidates[rc];
        if (r < row_lo || r >= row_hi) continue;
        any_row = true;
        const std::size_t before = cands->size();
        CandidatesInRow(view, space.at(layer, r), cell, width, desired_x,
                        layer, r, cands);
        if (cands->size() > before && !found_in_layer) {
          found_in_layer = true;
          found_radius = dr;
          found_max = std::max(found_max, dr);
        }
      }
      if (!any_row) break;  // ran off both ends of the row range
    }
    // The home layer is always searched; adjacent layers are explored
    // until a reasonable candidate pool exists.
    if (!cands->empty() && std::abs(layer - home_layer) >= 1 &&
        static_cast<int>(cands->size()) >= 4) {
      break;
    }
  }
  return found_max;
}

void DetailedLegalizer::ApplyCandidateToRow(Row& row, std::int32_t cell,
                                            double width,
                                            const Candidate& cand) const {
  for (const auto& [other, new_lo] : cand.shifts) {
    const double w = nl_.CellWidth(other);
    for (Item& it : row.items) {
      if (it.cell == other) {
        it.lo = new_lo;
        it.hi = new_lo + w;
        break;
      }
    }
  }
  if (!cand.shifts.empty()) {
    std::sort(row.items.begin(), row.items.end(),
              [](const Item& a, const Item& b) { return a.lo < b.lo; });
  }
  const Item item{cand.x - width / 2.0, cand.x + width / 2.0, cell};
  const auto it = std::lower_bound(
      row.items.begin(), row.items.end(), item,
      [](const Item& a, const Item& b) { return a.lo < b.lo; });
  row.items.insert(it, item);
}

void DetailedLegalizer::CommitCandidate(std::int32_t cell, double width,
                                        const Candidate& cand,
                                        LegalizeStats* stats) {
  Row& row = RowAt(cand.layer, cand.row);
  const double row_y = chip_.RowCenterY(cand.row);

  // Apply neighbour shifts first (x-only moves within the same row). The
  // shifted neighbours were already committed into this row, so their live
  // y/layer are the row's.
  for (const auto& [other, new_lo] : cand.shifts) {
    const std::size_t oi = static_cast<std::size_t>(other);
    const double w = nl_.CellWidth(other);
    const Placement& p = eval_.placement();
    eval_.CommitMove(other, new_lo + w / 2.0, p.y[oi], p.layer[oi]);
  }
  if (!cand.shifts.empty()) stats->squeezes += 1;

  const Placement& p = eval_.placement();
  const std::size_t ci = static_cast<std::size_t>(cell);
  stats->total_displacement +=
      std::abs(cand.x - p.x[ci]) + std::abs(row_y - p.y[ci]);
  eval_.CommitMove(cell, cand.x, row_y, cand.layer);

  ApplyCandidateToRow(row, cell, width, cand);
  stats->placed += 1;
}

LegalizeStats DetailedLegalizer::Run() {
  obs::TraceScope trace_legalize("legalize.run");
  LegalizeStats stats;
  const int num_rows = chip_.num_rows();
  const int num_layers = chip_.num_layers();
  rows_.assign(static_cast<std::size_t>(num_layers * num_rows), Row{});

  // Fixed cells block the row spans they overlap.
  for (std::int32_t c = 0; c < nl_.NumCells(); ++c) {
    if (!nl_.CellFixed(c)) continue;
    const Placement& p = eval_.placement();
    const std::size_t i = static_cast<std::size_t>(c);
    const double x_lo = p.x[i] - nl_.CellWidth(c) / 2.0;
    const double x_hi = p.x[i] + nl_.CellWidth(c) / 2.0;
    const double y_lo = p.y[i] - nl_.CellHeight(c) / 2.0;
    const double y_hi = p.y[i] + nl_.CellHeight(c) / 2.0;
    if (x_hi <= 0.0 || x_lo >= chip_.width()) continue;
    const int layer = std::clamp(p.layer[i], 0, num_layers - 1);
    for (int r = 0; r < num_rows; ++r) {
      if (chip_.RowBottomY(r) + chip_.row_height() <= y_lo) continue;
      if (chip_.RowBottomY(r) >= y_hi) continue;
      Row& row = RowAt(layer, r);
      row.items.push_back(
          {std::max(0.0, x_lo), std::min(chip_.width(), x_hi), -1});
    }
  }
  for (auto& row : rows_) {
    std::sort(row.items.begin(), row.items.end(),
              [](const Item& a, const Item& b) { return a.lo < b.lo; });
  }

  // --- processing order: BFS layering of the supply/demand DAG -----------
  // Over-full fine bins are sources; cells farther from congestion are
  // placed later. Ties broken by objective sensitivity.
  BinGrid grid(chip_, nl_.AvgCellWidth(), nl_.AvgCellHeight(), 1.0, 1.0);
  grid.Rebuild(nl_, eval_.placement());
  const int nb = grid.NumBins();
  std::vector<int> bfs_level(static_cast<std::size_t>(nb), -1);
  std::deque<int> queue;
  for (int b = 0; b < nb; ++b) {
    if (grid.Area(b) > grid.BinCapacity()) {
      bfs_level[static_cast<std::size_t>(b)] = 0;
      queue.push_back(b);
    }
  }
  while (!queue.empty()) {
    const int b = queue.front();
    queue.pop_front();
    int bx, by, bz;
    grid.Decompose(b, &bx, &by, &bz);
    const int neighbors[6][3] = {{bx - 1, by, bz}, {bx + 1, by, bz},
                                 {bx, by - 1, bz}, {bx, by + 1, bz},
                                 {bx, by, bz - 1}, {bx, by, bz + 1}};
    for (const auto& nb3 : neighbors) {
      if (nb3[0] < 0 || nb3[0] >= grid.nx() || nb3[1] < 0 ||
          nb3[1] >= grid.ny() || nb3[2] < 0 || nb3[2] >= grid.nz()) {
        continue;
      }
      const int f = grid.Flat(nb3[0], nb3[1], nb3[2]);
      if (bfs_level[static_cast<std::size_t>(f)] >= 0) continue;
      bfs_level[static_cast<std::size_t>(f)] =
          bfs_level[static_cast<std::size_t>(b)] + 1;
      queue.push_back(f);
    }
  }

  std::vector<std::int32_t> order;
  order.reserve(static_cast<std::size_t>(nl_.NumMovableCells()));
  std::vector<double> sensitivity(static_cast<std::size_t>(nl_.NumCells()), 0.0);
  for (std::int32_t c = 0; c < nl_.NumCells(); ++c) {
    if (nl_.CellFixed(c)) continue;
    order.push_back(c);
    double s = 0.0;
    for (const std::int32_t pid : nl_.CellPinIds(c)) {
      const std::int32_t n = nl_.PinNet(pid);
      const auto deg = static_cast<double>(nl_.NetNumPins(n));
      if (deg > 0) s += eval_.NetCost(n) / deg;
    }
    sensitivity[static_cast<std::size_t>(c)] = s;
  }
  const Placement& p0 = eval_.placement();
  auto level_of = [&](std::int32_t c) {
    const std::size_t i = static_cast<std::size_t>(c);
    const int b = grid.BinOf(p0.x[i], p0.y[i], p0.layer[i]);
    const int lvl = bfs_level[static_cast<std::size_t>(b)];
    return lvl < 0 ? nb : lvl;  // bins unreachable from congestion go last
  };
  // Wide cells are placed before narrow ones (within the same congestion
  // level): they need contiguous free space, which fragments as rows fill.
  // Width is bucketed in average-cell-width units so that the DAG order and
  // the sensitivity tie-break still dominate among similar cells.
  const double avg_w = std::max(nl_.AvgCellWidth(), 1e-12);
  auto width_bucket = [&](std::int32_t c) {
    return static_cast<int>(nl_.CellWidth(c) / avg_w);
  };
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    const int wa = width_bucket(a), wb = width_bucket(b);
    if (wa != wb) return wa > wb;
    const int la = level_of(a), lb = level_of(b);
    if (la != lb) return la < lb;
    return sensitivity[static_cast<std::size_t>(a)] >
           sensitivity[static_cast<std::size_t>(b)];
  });

  // --- windowed slot assignment --------------------------------------------
  const PlacerParams& params = eval_.params();
  const int radius_cap =
      std::min(std::max(params.legalize_max_radius_rows, 1), num_rows);
  const int window_rows = std::max(1, params.legalize_window_rows);
  const WindowTiling tiling(num_rows, 1, window_rows);
  const std::size_t num_windows = static_cast<std::size_t>(tiling.NumWindows());

  const int threads =
      params.legalize_threads > 0 ? params.legalize_threads : params.threads;
  runtime::ThreadPool* pool = runtime::SharedPool(threads);
  const std::size_t num_slots =
      static_cast<std::size_t>(pool != nullptr ? pool->NumThreads() : 1);

  std::vector<DeltaView> views(num_slots);
  for (DeltaView& v : views) v.Attach(&eval_);

  // Cells are assigned to the window holding their home row; the global
  // priority order is preserved within each window.
  std::vector<std::vector<std::int32_t>> window_cells(num_windows);
  for (const std::int32_t cell : order) {
    const std::size_t i = static_cast<std::size_t>(cell);
    const int w = tiling.WindowOf(chip_.NearestRow(p0.y[i]), 0);
    window_cells[static_cast<std::size_t>(w)].push_back(cell);
  }

  struct Plan {
    std::int32_t cell;
    Candidate cand;
  };
  std::vector<std::vector<Plan>> window_plans(num_windows);
  std::vector<int> window_max_radius(num_windows, 0);
  // Per-cell deferral flags; windows partition the cells, so concurrent
  // proposals write disjoint entries.
  std::vector<std::uint8_t> deferred(static_cast<std::size_t>(nl_.NumCells()),
                                     0);

  auto propose_window = [&](std::int64_t w, int slot) {
    const BinWindow& win = tiling.window(static_cast<int>(w));
    DeltaView& view = views[static_cast<std::size_t>(slot)];
    std::vector<Plan>& plans = window_plans[static_cast<std::size_t>(w)];
    plans.clear();
    const int span = win.x1 - win.x0;
    // Private simulation of the block's rows: proposals apply here so later
    // cells in the window see earlier ones. Only this window commits to
    // these rows, so the live replay reproduces the same bytes.
    std::vector<Row> sim(static_cast<std::size_t>(num_layers * span));
    RowSpace sim_space{&sim, win.x0, span};
    for (int layer = 0; layer < num_layers; ++layer) {
      for (int r = win.x0; r < win.x1; ++r) {
        sim_space.at(layer, r) = RowAt(layer, r);
      }
    }
    std::vector<Candidate> cands;
    int max_radius = 0;
    const Placement& p = eval_.placement();
    for (const std::int32_t cell : window_cells[static_cast<std::size_t>(w)]) {
      const std::size_t i = static_cast<std::size_t>(cell);
      const double width = nl_.CellWidth(cell);
      const double desired_x = p.x[i];
      const int home_row = chip_.NearestRow(p.y[i]);
      const int home_layer = std::clamp(p.layer[i], 0, num_layers - 1);
      cands.clear();
      const int found = SearchCell(sim_space, win.x0, win.x1, view, cell,
                                   width, desired_x, home_row, home_layer,
                                   radius_cap, &cands);
      if (cands.empty()) {
        deferred[i] = 1;  // no slot in this block; serial pass handles it
        continue;
      }
      max_radius = std::max(max_radius, found);
      const auto best = std::min_element(
          cands.begin(), cands.end(), [](const Candidate& a,
                                         const Candidate& b) {
            return a.delta < b.delta;
          });
      ApplyCandidateToRow(sim_space.at(best->layer, best->row), cell, width,
                          *best);
      plans.push_back({cell, std::move(*best)});
    }
    window_max_radius[static_cast<std::size_t>(w)] = max_radius;
  };
  auto commit_window = [&](std::int64_t w) {
    stats.max_radius_rows = std::max(
        stats.max_radius_rows, window_max_radius[static_cast<std::size_t>(w)]);
    for (const Plan& plan : window_plans[static_cast<std::size_t>(w)]) {
      CommitCandidate(plan.cell, nl_.CellWidth(plan.cell), plan.cand, &stats);
    }
  };

  runtime::ParallelForWindows(
      pool, tiling.NumWindows(), tiling.colors(), WindowTiling::kNumColors,
      propose_window, commit_window,
      [&](int color) { return obs::TraceScope(kColorTrace[color]); });

  // --- serial overflow pass -------------------------------------------------
  // Cells whose home block had no feasible slot search the full row range
  // against the live rows, in the original global priority order.
  RowSpace live{&rows_, 0, num_rows};
  DeltaView& serial_view = views[0];
  std::vector<Candidate> cands;
  for (const std::int32_t cell : order) {
    if (!deferred[static_cast<std::size_t>(cell)]) continue;
    stats.deferred += 1;
    const Placement& p = eval_.placement();
    const std::size_t i = static_cast<std::size_t>(cell);
    const double width = nl_.CellWidth(cell);
    const double desired_x = p.x[i];
    const int home_row = chip_.NearestRow(p.y[i]);
    const int home_layer = std::clamp(p.layer[i], 0, num_layers - 1);
    cands.clear();
    const int found = SearchCell(live, 0, num_rows, serial_view, cell, width,
                                 desired_x, home_row, home_layer, radius_cap,
                                 &cands);
    if (cands.empty()) {
      util::LogError("legalize: no slot for cell %d (width %.3g)", cell, width);
      stats.success = false;
      continue;
    }
    stats.max_radius_rows = std::max(stats.max_radius_rows, found);
    const auto best = std::min_element(
        cands.begin(), cands.end(),
        [](const Candidate& a, const Candidate& b) { return a.delta < b.delta; });
    CommitCandidate(cell, width, *best, &stats);
  }

  // Fold the views' kernel counters back in slot order; the totals are sums
  // of per-window counts, so they are identical for any thread count.
  for (DeltaView& v : views) {
    eval_.MergeEvalStats(v.stats());
    v.ClearStats();
  }

  obs::MetricAdd("legalize/runs", 1);
  obs::MetricAdd("legalize/windows",
                 static_cast<std::int64_t>(tiling.NumWindows()));
  obs::MetricAdd("legalize/placed", stats.placed);
  obs::MetricAdd("legalize/squeezes", stats.squeezes);
  obs::MetricAdd("legalize/deferred", stats.deferred);
  obs::MetricObserve("legalize/max_radius_rows", stats.max_radius_rows);
  obs::MetricAccumulate("legalize/displacement_m", stats.total_displacement);
  if (!stats.success) obs::MetricAdd("legalize/failures", 1);
  util::LogDebug(
      "legalize: %lld cells (%lld squeezes, %lld deferred), avg displacement "
      "%.3g m, max radius %d",
      stats.placed, stats.squeezes, stats.deferred,
      stats.placed ? stats.total_displacement / stats.placed : 0.0,
      stats.max_radius_rows);
  return stats;
}

long long DetailedLegalizer::CountOverlaps(const netlist::Netlist& nl,
                                           const Placement& p) {
  struct SweepItem {
    double lo, hi;
    std::int32_t cell;
  };
  std::vector<std::pair<long long, SweepItem>> keyed;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    if (nl.CellFixed(c)) continue;
    const std::size_t i = static_cast<std::size_t>(c);
    const long long key =
        static_cast<long long>(p.layer[i]) * 1000000 +
        static_cast<long long>(std::floor(p.y[i] * 1e7));  // 0.1um band
    keyed.push_back({key, {p.x[i] - nl.CellWidth(c) / 2.0,
                           p.x[i] + nl.CellWidth(c) / 2.0, c}});
  }
  std::sort(keyed.begin(), keyed.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second.lo < b.second.lo;
  });
  long long overlaps = 0;
  for (std::size_t i = 1; i < keyed.size(); ++i) {
    if (keyed[i].first != keyed[i - 1].first) continue;
    if (keyed[i].second.lo < keyed[i - 1].second.hi - 1e-12) ++overlaps;
  }
  return overlaps;
}

}  // namespace p3d::place
