#include "place/placer.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "place/global_backend.h"
#include "place/legalize.h"
#include "place/moveswap.h"
#include "place/rowopt.h"
#include "place/shift.h"
#include "thermal/fea.h"
#include "thermal/power.h"
#include "util/log.h"
#include "util/timer.h"

namespace p3d::place {
namespace {

PlacerParams Synced(PlacerParams params) {
  params.SyncStack();
  return params;
}

/// Runs this flow's FEA thermal solves: through one cached FeaContext
/// (assembly + preconditioner built once, warm-started CG) when the solver
/// cache is on, or a fresh one-shot FeaSolver per solve when it is off (the
/// pre-cache behavior, kept as a determinism cross-check). Accumulates the
/// cumulative solve-time / iteration accounting for PlacementResult.
class FeaRunner {
 public:
  FeaRunner(const netlist::Netlist& nl, const PlacerParams& params,
            const Chip& chip, const RunOptions& opts)
      : nl_(nl), params_(params), chip_(chip) {
    fopt_.nx = params.fea_nx;
    fopt_.ny = params.fea_ny;
    fopt_.cg.threads = params.threads;
    fopt_.cg.preconditioner = opts.preconditioner;
    // Use the cached context only when this run will actually solve. An
    // externally owned context (serve engine, assembly shared across jobs)
    // takes precedence over building one here.
    if (opts.use_solver_cache &&
        (opts.with_fea || opts.fea_per_phase || params.fea_per_pass)) {
      if (opts.fea_context != nullptr) {
        opts.fea_context->Refresh(
            params.stack, thermal::ChipExtent{chip.width(), chip.height()});
        active_ = opts.fea_context;
      } else {
        thermal::FeaContextOptions copt;
        copt.fea = fopt_;
        copt.warm_start = opts.warm_start;
        ctx_ = std::make_unique<thermal::FeaContext>(
            params.stack, thermal::ChipExtent{chip.width(), chip.height()},
            copt);
        active_ = ctx_.get();
      }
    }
  }

  /// Full solve from a placement: per-net metrics -> powers -> temperature.
  thermal::FeaResult Solve(const Placement& p) {
    const thermal::NetMetrics metrics =
        thermal::ComputeNetMetrics(nl_, p.x, p.y, p.layer);
    const thermal::PowerReport power =
        thermal::ComputePower(nl_, metrics, params_.electrical);
    return SolveWithPower(p, power.cell_power);
  }

  /// Solve with already-computed cell powers (final report path).
  thermal::FeaResult SolveWithPower(const Placement& p,
                                    const std::vector<double>& cell_power) {
    util::Timer t;
    thermal::FeaResult r;
    if (active_ != nullptr) {
      r = active_->Solve(p.x, p.y, p.layer, cell_power);
    } else {
      const thermal::FeaSolver solver(
          params_.stack, thermal::ChipExtent{chip_.width(), chip_.height()},
          fopt_);
      r = solver.Solve(p.x, p.y, p.layer, cell_power);
    }
    ++solves_;
    iters_ += r.cg_iters;
    if (!r.converged) ++nonconverged_;
    seconds_ += t.Seconds();
    return r;
  }

  long long solves() const { return solves_; }
  long long iters() const { return iters_; }
  long long nonconverged() const { return nonconverged_; }
  double seconds() const { return seconds_; }

 private:
  const netlist::Netlist& nl_;
  const PlacerParams& params_;
  const Chip& chip_;
  thermal::FeaOptions fopt_;
  std::unique_ptr<thermal::FeaContext> ctx_;    // owned (no external context)
  thermal::FeaContext* active_ = nullptr;       // ctx_.get() or the external
  long long solves_ = 0;
  long long iters_ = 0;
  long long nonconverged_ = 0;
  double seconds_ = 0.0;
};

void FillMetrics(const netlist::Netlist& nl, const PlacerParams& params,
                 const Chip& chip, const Placement& p, FeaRunner* fea,
                 PlacementResult* r) {
  obs::TraceScope trace_metrics("placer.fill_metrics");
  const thermal::NetMetrics metrics =
      thermal::ComputeNetMetrics(nl, p.x, p.y, p.layer);
  r->hpwl_m = metrics.total_hpwl;
  r->ilv_count = metrics.total_ilv;
  const int interlayers = chip.num_layers() - 1;
  r->ilv_density =
      interlayers > 0
          ? static_cast<double>(r->ilv_count) /
                (chip.width() * chip.height() * interlayers)
          : 0.0;

  const thermal::PowerReport power =
      thermal::ComputePower(nl, metrics, params.electrical);
  r->total_power_w = power.total;

  if (fea != nullptr) {
    const thermal::FeaResult ft = fea->SolveWithPower(p, power.cell_power);
    r->avg_temp_c = ft.avg_cell_temp;
    r->max_temp_c = ft.max_cell_temp;
    r->fea_valid = ft.converged;
  }

  r->overlaps = DetailedLegalizer::CountOverlaps(nl, p);
  r->legal = r->overlaps == 0;
}

}  // namespace

util::StatusOr<Placer3D> Placer3D::Create(const netlist::Netlist& nl,
                                          const PlacerParams& params) {
  if (!nl.finalized()) {
    return util::FailedPreconditionError(
        "Placer3D::Create: netlist is not finalized");
  }
  const PlacerParams synced = Synced(params);
  util::StatusOr<Chip> chip = Chip::Build(
      nl, synced.num_layers, synced.whitespace, synced.inter_row_space);
  if (!chip.ok()) return chip.status();
  return Placer3D(nl, synced, *std::move(chip));
}

Placer3D::Placer3D(const netlist::Netlist& nl, const PlacerParams& params)
    : Placer3D(nl, Synced(params),
               *Chip::Build(nl, params.num_layers, params.whitespace,
                            params.inter_row_space)) {}

Placer3D::Placer3D(const netlist::Netlist& nl, const PlacerParams& params,
                   Chip chip)
    : nl_(nl), params_(params), chip_(std::move(chip)) {
  eval_ = std::make_unique<ObjectiveEvaluator>(nl_, chip_, params_);
}

void Placer3D::RemovePhaseObserver(PhaseObserver* observer) {
  for (auto it = observers_.begin(); it != observers_.end(); ++it) {
    if (*it == observer) {
      observers_.erase(it);
      return;
    }
  }
}

void Placer3D::NotifyPhase(const char* phase, int round,
                           const GlobalPlaceStats* global_stats) {
  for (PhaseObserver* o : observers_) {
    o->OnPhase(phase, round, *eval_, global_stats);
  }
}

util::StatusOr<PlacementResult> Placer3D::Run(const RunOptions& options) {
  obs::TraceScope trace_run("placer.run");
  util::Timer total;
  PlacementResult result;

  Placement initial = options.initial;
  if (initial.size() == 0) {
    initial.Resize(static_cast<std::size_t>(nl_.NumCells()));
  } else if (initial.size() != static_cast<std::size_t>(nl_.NumCells())) {
    return util::InvalidArgumentError(
        "Placer3D::Run: initial placement has " +
        std::to_string(initial.size()) + " cells, netlist has " +
        std::to_string(nl_.NumCells()));
  }

  // Cooperative cancellation: polled at the same phase boundaries where
  // PhaseObserver fires, so a cancel request wins within one phase.
  const auto cancelled_at = [&options](const char* phase) {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed)
               ? util::CancelledError(std::string("Placer3D::Run: cancelled "
                                                  "at the ") +
                                      phase + " boundary")
               : util::Status::Ok();
  };
  if (util::Status s = cancelled_at("start"); !s.ok()) return s;

  FeaRunner fea(nl_, params_, chip_, options);
  const auto phase_fea = [&] {
    if (options.fea_per_phase) fea.Solve(eval_->placement());
  };
  // Per-pass thermal (params_.fea_per_pass): one observational solve after
  // every legalization pass, at a finer grain than the phase boundaries.
  // Results feed telemetry and the reuse accounting, never the placement —
  // the flow's bytes are identical with the knob on or off. Affordable when
  // the solver-reuse layer runs multigrid (cheap, warm-started V-cycles).
  const auto pass_fea = [&](const char* pass) {
    if (!params_.fea_per_pass) return;
    obs::TraceScope trace_pass("fea.pass");
    obs::MetricAdd("fea/pass_solves", 1);
    const thermal::FeaResult ft = fea.Solve(eval_->placement());
    util::LogDebug("pass thermal (%s): max %.2f C, avg %.2f C (%d iters)",
                   pass, ft.max_cell_temp, ft.avg_cell_temp, ft.cg_iters);
  };
  const ObjectiveEvaluator::EvalStats eval_stats_before = eval_->eval_stats();

  // --- global placement ---------------------------------------------------
  util::Timer t;
  util::StatusOr<std::unique_ptr<GlobalPlacerBackend>> global =
      MakeGlobalPlacerBackend(params_.global_backend, *eval_);
  if (!global.ok()) return global.status();
  {
    obs::TraceScope trace_global("placer.global");
    util::StatusOr<Placement> gp = (*global)->Run(initial);
    if (!gp.ok()) return gp.status();
    eval_->SetPlacement(*gp);
  }
  result.t_global = t.Seconds();
  NotifyPhase("global", -1, &(*global)->stats());
  phase_fea();
  if (util::Status s = cancelled_at("global"); !s.ok()) return s;
  util::LogInfo("global (%s) done: hpwl %.4g m, ilv %lld, obj %.4g (%.2fs)",
                (*global)->name(), eval_->TotalHpwl(),
                static_cast<long long>(eval_->TotalIlv()), eval_->Total(),
                result.t_global);

  MoveSwapOptimizer mso(*eval_, params_.seed ^ 0xabcdef12345ULL);
  CellShifter shifter(*eval_);
  DetailedLegalizer legalizer(*eval_);
  RowRefiner refiner(*eval_, params_.seed ^ 0x5eed0123ULL);

  // Across repeated coarse+detailed rounds (paper Section 6: "can be
  // repeated multiple times if additional optimization is required"), keep
  // the best legal placement seen: a round whose re-legalization loses more
  // than its moves gained must not degrade the final result.
  Placement best_placement;
  double best_objective = 0.0;
  bool have_best = false;

  for (int round = 0; round < std::max(params_.legalization_repeats, 1);
       ++round) {
    // --- coarse legalization -----------------------------------------------
    t.Reset();
    {
      obs::TraceScope trace_coarse("placer.coarse");
      for (int i = 0; i < std::max(params_.moveswap_rounds, 1); ++i) {
        mso.RunGlobal(params_.target_region_bins);
        util::LogDebug("after global msw: hpwl %.4g ilv %lld obj %.4g",
                       eval_->TotalHpwl(),
                       static_cast<long long>(eval_->TotalIlv()),
                       eval_->Total());
        mso.RunLocal();
        util::LogDebug("after local msw: hpwl %.4g ilv %lld obj %.4g",
                       eval_->TotalHpwl(),
                       static_cast<long long>(eval_->TotalIlv()),
                       eval_->Total());
        pass_fea("moveswap");
      }
      shifter.Run(params_.shift_max_iters, params_.shift_target_density);
      util::LogDebug("after shifting: hpwl %.4g ilv %lld obj %.4g",
                     eval_->TotalHpwl(),
                     static_cast<long long>(eval_->TotalIlv()), eval_->Total());
      pass_fea("shift");
    }
    result.t_coarse += t.Seconds();
    NotifyPhase("coarse", round);
    phase_fea();
    if (util::Status s = cancelled_at("coarse"); !s.ok()) return s;

    // --- detailed legalization -----------------------------------------------
    t.Reset();
    LegalizeStats ls;
    {
      obs::TraceScope trace_detailed("placer.detailed");
      ls = legalizer.Run();
    }
    result.t_detailed += t.Seconds();
    if (!ls.success) {
      util::LogWarn("placer: detailed legalization left %lld cells unplaced",
                    static_cast<long long>(nl_.NumMovableCells() - ls.placed));
    }
    NotifyPhase("detailed", round);
    phase_fea();
    pass_fea("detailed");
    if (util::Status s = cancelled_at("detailed"); !s.ok()) return s;
    // Legality-preserving post-optimization of detailed placement.
    if (ls.success) {
      t.Reset();
      {
        obs::TraceScope trace_refine("placer.refine");
        refiner.Run(/*passes=*/2);
      }
      result.t_detailed += t.Seconds();
      NotifyPhase("refine", round);
      phase_fea();
      pass_fea("refine");
      if (util::Status s = cancelled_at("refine"); !s.ok()) return s;
    }
    obs::MetricAdd("placer/rounds", 1);
    if (!have_best || eval_->Total() < best_objective) {
      best_placement = eval_->placement();
      best_objective = eval_->Total();
      have_best = true;
    } else {
      // Restart the next round from the best placement so a bad round
      // cannot compound (the move/swap RNG advances, so rounds still differ).
      eval_->SetPlacement(best_placement);
    }
  }
  if (have_best) eval_->SetPlacement(best_placement);
  NotifyPhase("final", -1);

  result.placement = eval_->placement();
  result.objective = eval_->Total();
  FillMetrics(nl_, params_, chip_, result.placement,
              options.with_fea ? &fea : nullptr, &result);
  result.t_fea = fea.seconds();
  result.fea_solves = fea.solves();
  result.fea_cg_iters = fea.iters();
  result.fea_nonconverged = fea.nonconverged();
  result.t_total = total.Seconds();

  // Evaluator-cache accounting for this run (deltas: the evaluator's
  // counters are cumulative across Run calls).
  const ObjectiveEvaluator::EvalStats eval_stats_after = eval_->eval_stats();
  obs::MetricAdd("solver/netbox_incremental_evals",
                 eval_stats_after.incremental_evals -
                     eval_stats_before.incremental_evals);
  obs::MetricAdd("solver/netbox_rescan_evals",
                 eval_stats_after.rescan_evals - eval_stats_before.rescan_evals);

  util::LogInfo(
      "placer done: hpwl %.4g m, ilv %lld, power %.4g W, %s obj %.4g "
      "(%.2fs total, %.2fs fea over %lld solves)",
      result.hpwl_m, result.ilv_count, result.total_power_w,
      result.legal ? "legal," : "NOT LEGAL,", result.objective, result.t_total,
      result.t_fea, result.fea_solves);
  return result;
}

PlacementResult EvaluatePlacement(const netlist::Netlist& nl,
                                  const PlacerParams& params, const Chip& chip,
                                  const Placement& placement, bool with_fea) {
  const PlacerParams p = Synced(params);
  PlacementResult r;
  r.placement = placement;
  RunOptions opts;
  opts.with_fea = with_fea;
  opts.use_solver_cache = false;  // a single solve has nothing to reuse
  FeaRunner fea(nl, p, chip, opts);
  FillMetrics(nl, p, chip, placement, with_fea ? &fea : nullptr, &r);
  r.t_fea = fea.seconds();
  r.fea_solves = fea.solves();
  r.fea_cg_iters = fea.iters();
  r.fea_nonconverged = fea.nonconverged();
  ObjectiveEvaluator eval(nl, chip, p);
  eval.SetPlacement(placement);
  r.objective = eval.Total();
  return r;
}

}  // namespace p3d::place
