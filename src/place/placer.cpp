#include "place/placer.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "place/global.h"
#include "place/legalize.h"
#include "place/moveswap.h"
#include "place/rowopt.h"
#include "place/shift.h"
#include "thermal/fea.h"
#include "thermal/power.h"
#include "util/log.h"
#include "util/timer.h"

namespace p3d::place {
namespace {

void FillMetrics(const netlist::Netlist& nl, const PlacerParams& params,
                 const Chip& chip, const Placement& p, bool with_fea,
                 PlacementResult* r) {
  obs::TraceScope trace_metrics("placer.fill_metrics");
  const thermal::NetMetrics metrics =
      thermal::ComputeNetMetrics(nl, p.x, p.y, p.layer);
  r->hpwl_m = metrics.total_hpwl;
  r->ilv_count = metrics.total_ilv;
  const int interlayers = chip.num_layers() - 1;
  r->ilv_density =
      interlayers > 0
          ? static_cast<double>(r->ilv_count) /
                (chip.width() * chip.height() * interlayers)
          : 0.0;

  const thermal::PowerReport power =
      thermal::ComputePower(nl, metrics, params.electrical);
  r->total_power_w = power.total;

  if (with_fea) {
    thermal::FeaOptions fopt;
    fopt.nx = params.fea_nx;
    fopt.ny = params.fea_ny;
    fopt.cg.threads = params.threads;
    const thermal::FeaSolver fea(params.stack,
                                 thermal::ChipExtent{chip.width(), chip.height()},
                                 fopt);
    const thermal::FeaResult ft =
        fea.Solve(p.x, p.y, p.layer, power.cell_power);
    r->avg_temp_c = ft.avg_cell_temp;
    r->max_temp_c = ft.max_cell_temp;
    r->fea_valid = ft.converged;
  }

  r->overlaps = DetailedLegalizer::CountOverlaps(nl, p);
  r->legal = r->overlaps == 0;
}

}  // namespace

Placer3D::Placer3D(const netlist::Netlist& nl, const PlacerParams& params)
    : nl_(nl), params_(params) {
  params_.SyncStack();
  chip_ = Chip::Build(nl, params_.num_layers, params_.whitespace,
                      params_.inter_row_space);
  eval_ = std::make_unique<ObjectiveEvaluator>(nl_, chip_, params_);
}

void Placer3D::NotifyPhase(const char* phase, int round,
                           const GlobalPlaceStats* global_stats) {
  for (PhaseObserver* o : observers_) {
    o->OnPhase(phase, round, *eval_, global_stats);
  }
}

PlacementResult Placer3D::Run(bool with_fea) {
  Placement init;
  init.Resize(static_cast<std::size_t>(nl_.NumCells()));
  return Run(init, with_fea);
}

PlacementResult Placer3D::Run(const Placement& initial, bool with_fea) {
  obs::TraceScope trace_run("placer.run");
  util::Timer total;
  PlacementResult result;

  // --- global placement ---------------------------------------------------
  util::Timer t;
  GlobalPlacer global(*eval_);
  {
    obs::TraceScope trace_global("placer.global");
    Placement gp = global.Run(initial);
    eval_->SetPlacement(gp);
  }
  result.t_global = t.Seconds();
  NotifyPhase("global", -1, &global.stats());
  util::LogInfo("global done: hpwl %.4g m, ilv %lld, obj %.4g (%.2fs)",
                eval_->TotalHpwl(), static_cast<long long>(eval_->TotalIlv()),
                eval_->Total(), result.t_global);

  MoveSwapOptimizer mso(*eval_, params_.seed ^ 0xabcdef12345ULL);
  CellShifter shifter(*eval_);
  DetailedLegalizer legalizer(*eval_);
  RowRefiner refiner(*eval_, params_.seed ^ 0x5eed0123ULL);

  // Across repeated coarse+detailed rounds (paper Section 6: "can be
  // repeated multiple times if additional optimization is required"), keep
  // the best legal placement seen: a round whose re-legalization loses more
  // than its moves gained must not degrade the final result.
  Placement best_placement;
  double best_objective = 0.0;
  bool have_best = false;

  for (int round = 0; round < std::max(params_.legalization_repeats, 1);
       ++round) {
    // --- coarse legalization -----------------------------------------------
    t.Reset();
    {
      obs::TraceScope trace_coarse("placer.coarse");
      for (int i = 0; i < std::max(params_.moveswap_rounds, 1); ++i) {
        mso.RunGlobal(params_.target_region_bins);
        util::LogDebug("after global msw: hpwl %.4g ilv %lld obj %.4g",
                       eval_->TotalHpwl(),
                       static_cast<long long>(eval_->TotalIlv()),
                       eval_->Total());
        mso.RunLocal();
        util::LogDebug("after local msw: hpwl %.4g ilv %lld obj %.4g",
                       eval_->TotalHpwl(),
                       static_cast<long long>(eval_->TotalIlv()),
                       eval_->Total());
      }
      shifter.Run(params_.shift_max_iters, params_.shift_target_density);
      util::LogDebug("after shifting: hpwl %.4g ilv %lld obj %.4g",
                     eval_->TotalHpwl(),
                     static_cast<long long>(eval_->TotalIlv()), eval_->Total());
    }
    result.t_coarse += t.Seconds();
    NotifyPhase("coarse", round);

    // --- detailed legalization -----------------------------------------------
    t.Reset();
    LegalizeStats ls;
    {
      obs::TraceScope trace_detailed("placer.detailed");
      ls = legalizer.Run();
    }
    result.t_detailed += t.Seconds();
    if (!ls.success) {
      util::LogWarn("placer: detailed legalization left %lld cells unplaced",
                    static_cast<long long>(nl_.NumMovableCells() - ls.placed));
    }
    NotifyPhase("detailed", round);
    // Legality-preserving post-optimization of detailed placement.
    if (ls.success) {
      t.Reset();
      {
        obs::TraceScope trace_refine("placer.refine");
        refiner.Run(/*passes=*/2);
      }
      result.t_detailed += t.Seconds();
      NotifyPhase("refine", round);
    }
    obs::MetricAdd("placer/rounds", 1);
    if (!have_best || eval_->Total() < best_objective) {
      best_placement = eval_->placement();
      best_objective = eval_->Total();
      have_best = true;
    } else {
      // Restart the next round from the best placement so a bad round
      // cannot compound (the move/swap RNG advances, so rounds still differ).
      eval_->SetPlacement(best_placement);
    }
  }
  if (have_best) eval_->SetPlacement(best_placement);
  NotifyPhase("final", -1);

  result.placement = eval_->placement();
  result.objective = eval_->Total();
  result.t_total = total.Seconds();
  FillMetrics(nl_, params_, chip_, result.placement, with_fea, &result);
  util::LogInfo(
      "placer done: hpwl %.4g m, ilv %lld, power %.4g W, %s obj %.4g "
      "(%.2fs total)",
      result.hpwl_m, result.ilv_count, result.total_power_w,
      result.legal ? "legal," : "NOT LEGAL,", result.objective,
      result.t_total);
  return result;
}

PlacementResult EvaluatePlacement(const netlist::Netlist& nl,
                                  const PlacerParams& params, const Chip& chip,
                                  const Placement& placement, bool with_fea) {
  PlacerParams p = params;
  p.SyncStack();
  PlacementResult r;
  r.placement = placement;
  FillMetrics(nl, p, chip, placement, with_fea, &r);
  ObjectiveEvaluator eval(nl, chip, p);
  eval.SetPlacement(placement);
  r.objective = eval.Total();
  return r;
}

}  // namespace p3d::place
