#include "place/moveswap.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "place/netweight.h"
#include "util/log.h"

namespace p3d::place {

MoveSwapOptimizer::MoveSwapOptimizer(ObjectiveEvaluator& eval,
                                     std::uint64_t seed)
    : eval_(eval), rng_(seed) {}

double MoveSwapOptimizer::TryCell(std::int32_t cell, BinGrid& grid,
                                  const std::vector<int>& candidate_bins,
                                  MoveSwapStats* stats) {
  const netlist::Netlist& nl = eval_.netlist();
  const Placement& p = eval_.placement();
  const std::size_t ci = static_cast<std::size_t>(cell);
  const double cell_area = nl.cell(cell).Area();
  const int cur_bin = grid.BinOf(p.x[ci], p.y[ci], p.layer[ci]);

  enum class Kind { kNone, kMove, kSwap };
  Kind best_kind = Kind::kNone;
  double best_delta = -1e-18;  // must strictly improve
  double best_x = 0.0, best_y = 0.0;
  int best_layer = 0;
  std::int32_t best_partner = -1;

  for (const int flat : candidate_bins) {
    const int bz = flat / (grid.nx() * grid.ny());
    const int rem = flat % (grid.nx() * grid.ny());
    const int by = rem / grid.nx();
    const int bx = rem % grid.nx();
    const double tx = grid.BinCenterX(bx);
    const double ty = grid.BinCenterY(by);

    // Move into the bin if it has room (with slack; later shifting absorbs
    // small overfills — the "shift aside" cost of the paper).
    if (flat != cur_bin &&
        grid.Area(flat) + cell_area <= grid.BinCapacity() * kDensitySlack) {
      const double delta = eval_.MoveDelta(cell, tx, ty, bz);
      if (delta < best_delta) {
        best_delta = delta;
        best_kind = Kind::kMove;
        best_x = tx;
        best_y = ty;
        best_layer = bz;
      }
    }

    // Swap with a few occupants of similar size.
    const auto& occupants = grid.Cells(flat);
    int tried = 0;
    for (const std::int32_t other : occupants) {
      if (other == cell) continue;
      if (tried >= kSwapCandidates) break;
      ++tried;
      const double delta = eval_.SwapDelta(cell, other);
      if (delta < best_delta) {
        best_delta = delta;
        best_kind = Kind::kSwap;
        best_partner = other;
      }
    }
  }

  switch (best_kind) {
    case Kind::kNone:
      return 0.0;
    case Kind::kMove: {
      const int to = grid.BinOf(best_x, best_y, best_layer);
      eval_.CommitMove(cell, best_x, best_y, best_layer);
      grid.MoveCell(cell, cell_area, cur_bin, to);
      stats->moves += 1;
      stats->gain += -best_delta;
      return -best_delta;
    }
    case Kind::kSwap: {
      const std::size_t oi = static_cast<std::size_t>(best_partner);
      const int other_bin = grid.BinOf(p.x[oi], p.y[oi], p.layer[oi]);
      eval_.CommitSwap(cell, best_partner);
      const double other_area = nl.cell(best_partner).Area();
      grid.MoveCell(cell, cell_area, cur_bin, other_bin);
      grid.MoveCell(best_partner, other_area, other_bin, cur_bin);
      stats->swaps += 1;
      stats->gain += -best_delta;
      return -best_delta;
    }
  }
  return 0.0;
}

MoveSwapStats MoveSwapOptimizer::RunLocal() {
  obs::TraceScope trace_pass("moveswap.local");
  const netlist::Netlist& nl = eval_.netlist();
  BinGrid grid(eval_.chip(), nl.AvgCellWidth(), nl.AvgCellHeight());
  grid.Rebuild(nl, eval_.placement());

  std::vector<std::int32_t> order;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    if (!nl.cell(c).fixed) order.push_back(c);
  }
  rng_.Shuffle(order);

  MoveSwapStats stats;
  std::vector<int> candidates;
  for (const std::int32_t cell : order) {
    const Placement& p = eval_.placement();
    const std::size_t ci = static_cast<std::size_t>(cell);
    const int bx = grid.XIndex(p.x[ci]);
    const int by = grid.YIndex(p.y[ci]);
    const int bz = std::clamp(p.layer[ci], 0, grid.nz() - 1);
    candidates.clear();
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int x = bx + dx, y = by + dy, z = bz + dz;
          if (x < 0 || x >= grid.nx() || y < 0 || y >= grid.ny() || z < 0 ||
              z >= grid.nz()) {
            continue;
          }
          candidates.push_back(grid.Flat(x, y, z));
        }
      }
    }
    TryCell(cell, grid, candidates, &stats);
  }
  // Post-pass, serial: attempts = cells visited, so accept rate is
  // (moves+swaps)/attempts over the run.
  obs::MetricAdd("moveswap/local_passes", 1);
  obs::MetricAdd("moveswap/attempts", static_cast<std::int64_t>(order.size()));
  obs::MetricAdd("moveswap/moves", stats.moves);
  obs::MetricAdd("moveswap/swaps", stats.swaps);
  obs::MetricAccumulate("moveswap/gain", stats.gain);
  util::LogDebug("moveswap local: %lld moves, %lld swaps, gain %.4g",
                 stats.moves, stats.swaps, stats.gain);
  return stats;
}

MoveSwapStats MoveSwapOptimizer::RunGlobal(int target_region_bins) {
  obs::TraceScope trace_pass("moveswap.global");
  const netlist::Netlist& nl = eval_.netlist();
  BinGrid grid(eval_.chip(), nl.AvgCellWidth(), nl.AvgCellHeight());
  grid.Rebuild(nl, eval_.placement());

  std::vector<std::int32_t> order;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    if (!nl.cell(c).fixed) order.push_back(c);
  }
  rng_.Shuffle(order);

  // Lateral radius so that (2r+1)^2 * layer window ~= target_region_bins.
  const int layer_window = std::min(3, grid.nz());
  const int r = std::max(
      1, static_cast<int>(std::floor(
             (std::sqrt(static_cast<double>(target_region_bins) / layer_window) -
              1.0) /
             2.0)));

  MoveSwapStats stats;
  std::vector<int> candidates;
  for (const std::int32_t cell : order) {
    double ox = 0.0, oy = 0.0;
    OptimalLateralPosition(eval_, cell, &ox, &oy);
    // Best layer is searched directly: with few layers, trying each center
    // is cheaper and exact compared to a z-median heuristic.
    const int bx = grid.XIndex(ox);
    const int by = grid.YIndex(oy);
    const Placement& p = eval_.placement();
    const int bz = std::clamp(p.layer[static_cast<std::size_t>(cell)], 0,
                              grid.nz() - 1);
    candidates.clear();
    for (int dz = -(layer_window / 2); dz <= layer_window / 2; ++dz) {
      for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
          const int x = bx + dx, y = by + dy, z = bz + dz;
          if (x < 0 || x >= grid.nx() || y < 0 || y >= grid.ny() || z < 0 ||
              z >= grid.nz()) {
            continue;
          }
          candidates.push_back(grid.Flat(x, y, z));
        }
      }
    }
    TryCell(cell, grid, candidates, &stats);
  }
  obs::MetricAdd("moveswap/global_passes", 1);
  obs::MetricAdd("moveswap/attempts", static_cast<std::int64_t>(order.size()));
  obs::MetricAdd("moveswap/moves", stats.moves);
  obs::MetricAdd("moveswap/swaps", stats.swaps);
  obs::MetricAccumulate("moveswap/gain", stats.gain);
  util::LogDebug("moveswap global: %lld moves, %lld swaps, gain %.4g",
                 stats.moves, stats.swaps, stats.gain);
  return stats;
}

}  // namespace p3d::place
