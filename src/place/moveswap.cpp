#include "place/moveswap.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "place/netweight.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "util/log.h"

namespace p3d::place {

namespace {

// Trace names must be string literals (the sink stores pointers).
constexpr const char* kColorTrace[WindowTiling::kNumColors] = {
    "moveswap.color0", "moveswap.color1", "moveswap.color2",
    "moveswap.color3"};

// RAII scope of one color round: traces its span and, once the color's
// commits have all landed, pins the bin occupancy back to its canonical
// bytes so later capacity checks cannot drift with commit-order float noise.
struct ColorScope {
  obs::TraceScope trace;
  BinGrid& grid;
  const netlist::Netlist& nl;

  ColorScope(const char* name, BinGrid& g, const netlist::Netlist& n)
      : trace(name), grid(g), nl(n) {}
  ColorScope(const ColorScope&) = delete;
  ColorScope& operator=(const ColorScope&) = delete;
  ~ColorScope() { grid.ResyncAreas(nl); }
};

}  // namespace

MoveSwapOptimizer::MoveSwapOptimizer(ObjectiveEvaluator& eval,
                                     std::uint64_t seed)
    : eval_(eval), rng_(seed) {}

MoveSwapStats MoveSwapOptimizer::RunPass(bool global, int target_region_bins,
                                         const char* trace_name) {
  obs::TraceScope trace_pass(trace_name);
  const netlist::Netlist& nl = eval_.netlist();
  const PlacerParams& params = eval_.params();
  BinGrid grid(eval_.chip(), nl.AvgCellWidth(), nl.AvgCellHeight());
  grid.Rebuild(nl, eval_.placement());

  std::vector<std::int32_t> order;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    if (!nl.CellFixed(c)) order.push_back(c);
  }
  rng_.Shuffle(order);

  const int window_bins = std::max(2, params.legalize_window_bins);
  const WindowTiling tiling(grid.nx(), grid.ny(), window_bins);

  // Cells are scheduled by the window holding their bin at pass start; the
  // shuffled visit order is preserved within each window.
  std::vector<std::vector<std::int32_t>> window_cells(
      static_cast<std::size_t>(tiling.NumWindows()));
  for (const std::int32_t cell : order) {
    const std::size_t ci = static_cast<std::size_t>(cell);
    const Placement& p = eval_.placement();
    const int w = tiling.WindowOf(grid.XIndex(p.x[ci]), grid.YIndex(p.y[ci]));
    window_cells[static_cast<std::size_t>(w)].push_back(cell);
  }

  const int threads =
      params.legalize_threads > 0 ? params.legalize_threads : params.threads;
  runtime::ThreadPool* pool = runtime::SharedPool(threads);
  const std::size_t num_slots =
      static_cast<std::size_t>(pool != nullptr ? pool->NumThreads() : 1);

  // Per-slot propose scratch: a DeltaView over the shared evaluator, an
  // occupancy overlay tracking this window's own pending proposals, and the
  // candidate-bin list.
  std::vector<DeltaView> views(num_slots);
  for (DeltaView& v : views) v.Attach(&eval_);
  std::vector<std::vector<double>> overlays(
      num_slots, std::vector<double>(static_cast<std::size_t>(grid.NumBins()),
                                     0.0));
  std::vector<std::vector<int>> touched(num_slots);
  std::vector<std::vector<int>> cand_scratch(num_slots);
  std::vector<std::vector<Proposal>> window_props(
      static_cast<std::size_t>(tiling.NumWindows()));

  // Global pass: lateral radius so that (2r+1)^2 * layer window ~=
  // target_region_bins.
  const int layer_window = std::min(3, grid.nz());
  const int radius = std::max(
      1,
      static_cast<int>(std::floor(
          (std::sqrt(static_cast<double>(std::max(1, target_region_bins)) /
                     layer_window) -
           1.0) /
          2.0)));

  auto propose_window = [&](std::int64_t w, int slot) {
    const std::size_t si = static_cast<std::size_t>(slot);
    std::vector<Proposal>& props = window_props[static_cast<std::size_t>(w)];
    props.clear();
    std::vector<double>& overlay = overlays[si];
    std::vector<int>& touched_bins = touched[si];
    for (const int b : touched_bins) overlay[static_cast<std::size_t>(b)] = 0.0;
    touched_bins.clear();
    std::vector<int>& candidates = cand_scratch[si];
    DeltaView& view = views[si];
    const Placement& p = eval_.placement();

    // Capacity check against committed occupancy plus this window's own
    // pending proposals (same tolerance form as BinGrid::FitsWithSlack).
    auto overlay_fits = [&](int flat, double add_area) {
      return grid.Area(flat) + overlay[static_cast<std::size_t>(flat)] +
                 add_area <=
             grid.BinCapacity() * kDensitySlack +
                 grid.BinCapacity() * kBinAreaRelTol;
    };
    auto overlay_add = [&](int flat, double a) {
      if (overlay[static_cast<std::size_t>(flat)] == 0.0) {
        touched_bins.push_back(flat);
      }
      overlay[static_cast<std::size_t>(flat)] += a;
    };

    for (const std::int32_t cell : window_cells[static_cast<std::size_t>(w)]) {
      const std::size_t ci = static_cast<std::size_t>(cell);
      const double cell_area = nl.CellArea(cell);
      const int cur_bin = grid.BinOf(p.x[ci], p.y[ci], p.layer[ci]);

      // Candidate target bins: the 3x3x3 neighbourhood (local) or the region
      // around the cell's optimal position (global).
      int bx, by;
      if (global) {
        double ox = 0.0, oy = 0.0;
        OptimalLateralPosition(eval_, cell, &ox, &oy);
        bx = grid.XIndex(ox);
        by = grid.YIndex(oy);
      } else {
        bx = grid.XIndex(p.x[ci]);
        by = grid.YIndex(p.y[ci]);
      }
      const int bz = std::clamp(p.layer[ci], 0, grid.nz() - 1);
      const int r = global ? radius : 1;
      const int zr = global ? layer_window / 2 : 1;
      candidates.clear();
      for (int dz = -zr; dz <= zr; ++dz) {
        for (int dy = -r; dy <= r; ++dy) {
          for (int dx = -r; dx <= r; ++dx) {
            const int x = bx + dx, y = by + dy, z = bz + dz;
            if (x < 0 || x >= grid.nx() || y < 0 || y >= grid.ny() || z < 0 ||
                z >= grid.nz()) {
              continue;
            }
            candidates.push_back(grid.Flat(x, y, z));
          }
        }
      }

      // Best strictly-improving action among the candidates. Candidates are
      // evaluated in a fixed order; a challenger must beat the incumbent by
      // more than kTieBreakEps, so the earlier candidate wins ties.
      Proposal prop;
      prop.cell = cell;
      double best_delta = 0.0;
      bool have_best = false;
      bool best_is_move = false;
      for (const int flat : candidates) {
        int cx, cy, cz;
        grid.Decompose(flat, &cx, &cy, &cz);
        const double tx = grid.BinCenterX(cx);
        const double ty = grid.BinCenterY(cy);

        // Move into the bin if it has room (with slack; later shifting
        // absorbs small overfills — the "shift aside" cost of the paper).
        if (flat != cur_bin && overlay_fits(flat, cell_area)) {
          const double delta = view.MoveDelta(cell, tx, ty, cz);
          if (StrictlyImproves(delta) &&
              (!have_best || BeatsIncumbent(delta, best_delta))) {
            have_best = true;
            best_is_move = true;
            best_delta = delta;
            prop.partner = -1;
            prop.x = tx;
            prop.y = ty;
            prop.layer = cz;
          }
        }

        // Swap with a few occupants of the target bin.
        const auto& occupants = grid.Cells(flat);
        int tried = 0;
        for (const std::int32_t other : occupants) {
          if (other == cell) continue;
          if (tried >= kSwapCandidates) break;
          ++tried;
          const double delta = view.SwapDelta(cell, other);
          if (StrictlyImproves(delta) &&
              (!have_best || BeatsIncumbent(delta, best_delta))) {
            have_best = true;
            best_is_move = false;
            best_delta = delta;
            prop.partner = other;
          }
        }
      }
      if (!have_best) continue;
      if (best_is_move) {
        overlay_add(grid.BinOf(prop.x, prop.y, prop.layer), cell_area);
        overlay_add(cur_bin, -cell_area);
      } else {
        const std::size_t oi = static_cast<std::size_t>(prop.partner);
        const int other_bin = grid.BinOf(p.x[oi], p.y[oi], p.layer[oi]);
        const double other_area = nl.CellArea(prop.partner);
        overlay_add(cur_bin, other_area - cell_area);
        overlay_add(other_bin, cell_area - other_area);
      }
      props.push_back(prop);
    }
  };

  MoveSwapStats stats;
  auto commit_window = [&](std::int64_t w) {
    const Placement& p = eval_.placement();
    for (const Proposal& prop : window_props[static_cast<std::size_t>(w)]) {
      ++stats.proposals;
      const std::int32_t cell = prop.cell;
      const std::size_t ci = static_cast<std::size_t>(cell);
      const double cell_area = nl.CellArea(cell);
      const int cur_bin = grid.BinOf(p.x[ci], p.y[ci], p.layer[ci]);
      if (prop.partner < 0) {
        // Revalidate against the live state: earlier commits (this color's
        // earlier windows, or earlier colors) may have filled the bin or
        // soaked up the gain.
        const int to = grid.BinOf(prop.x, prop.y, prop.layer);
        if (to != cur_bin && !grid.FitsWithSlack(to, cell_area, kDensitySlack)) {
          ++stats.rejected;
          continue;
        }
        const double delta = eval_.MoveDelta(cell, prop.x, prop.y, prop.layer);
        if (!StrictlyImproves(delta)) {
          ++stats.rejected;
          continue;
        }
        eval_.CommitMove(cell, prop.x, prop.y, prop.layer);
        grid.MoveCell(cell, cell_area, cur_bin, to);
        ++stats.moves;
        stats.gain += -delta;
      } else {
        const std::size_t oi = static_cast<std::size_t>(prop.partner);
        const int other_bin = grid.BinOf(p.x[oi], p.y[oi], p.layer[oi]);
        const double delta = eval_.SwapDelta(cell, prop.partner);
        if (!StrictlyImproves(delta)) {
          ++stats.rejected;
          continue;
        }
        eval_.CommitSwap(cell, prop.partner);
        grid.MoveCell(cell, cell_area, cur_bin, other_bin);
        grid.MoveCell(prop.partner, nl.CellArea(prop.partner), other_bin,
                      cur_bin);
        ++stats.swaps;
        stats.gain += -delta;
      }
    }
  };

  runtime::ParallelForWindows(
      pool, tiling.NumWindows(), tiling.colors(), WindowTiling::kNumColors,
      propose_window, commit_window,
      [&](int color) { return ColorScope(kColorTrace[color], grid, nl); });

  // Fold the views' kernel counters back in slot order; the totals are sums
  // of per-window counts, so they are identical for any thread count.
  for (DeltaView& v : views) {
    eval_.MergeEvalStats(v.stats());
    v.ClearStats();
  }

  obs::MetricAdd(global ? "moveswap/global_passes" : "moveswap/local_passes",
                 1);
  obs::MetricAdd("legalize/windows",
                 static_cast<std::int64_t>(tiling.NumWindows()));
  obs::MetricAdd("moveswap/attempts", static_cast<std::int64_t>(order.size()));
  obs::MetricAdd("moveswap/proposals", stats.proposals);
  obs::MetricAdd("moveswap/commit_rejects", stats.rejected);
  obs::MetricAdd("moveswap/moves", stats.moves);
  obs::MetricAdd("moveswap/swaps", stats.swaps);
  obs::MetricAccumulate("moveswap/gain", stats.gain);
  util::LogDebug("moveswap %s: %lld moves, %lld swaps (%lld proposals, "
                 "%lld rejected), gain %.4g",
                 global ? "global" : "local", stats.moves, stats.swaps,
                 stats.proposals, stats.rejected, stats.gain);
  return stats;
}

MoveSwapStats MoveSwapOptimizer::RunLocal() {
  return RunPass(/*global=*/false, /*target_region_bins=*/0, "moveswap.local");
}

MoveSwapStats MoveSwapOptimizer::RunGlobal(int target_region_bins) {
  return RunPass(/*global=*/true, target_region_bins, "moveswap.global");
}

}  // namespace p3d::place
