#include "serve/fea_cache.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace p3d::serve {

FeaContextLease::FeaContextLease(FeaContextCache* cache, std::size_t slot,
                                 std::unique_ptr<thermal::FeaContext> context)
    : cache_(cache), slot_(slot), context_(std::move(context)) {}

FeaContextLease::FeaContextLease(FeaContextLease&& other) noexcept
    : cache_(other.cache_),
      slot_(other.slot_),
      context_(std::move(other.context_)) {
  other.cache_ = nullptr;
}

FeaContextLease& FeaContextLease::operator=(FeaContextLease&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    slot_ = other.slot_;
    context_ = std::move(other.context_);
    other.cache_ = nullptr;
  }
  return *this;
}

FeaContextLease::~FeaContextLease() { Release(); }

void FeaContextLease::Release() {
  // Drop the context (and its assembly reference) before decrementing the
  // cache refcount, so an entry at refs == 0 is genuinely idle.
  context_.reset();
  if (cache_ != nullptr) {
    cache_->Release(slot_);
    cache_ = nullptr;
  }
}

FeaContextCache::FeaContextCache() : FeaContextCache(Options{}) {}

FeaContextCache::FeaContextCache(const Options& options) : options_(options) {}

FeaContextLease FeaContextCache::Acquire(const FeaCacheKey& key,
                                         bool warm_start) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t slot = entries_.size();
  std::size_t free_slot = entries_.size();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].assembly == nullptr) {
      free_slot = i;
    } else if (entries_[i].key == key) {
      slot = i;
      break;
    }
  }
  if (slot == entries_.size()) {
    // Miss: build under the lock (see file comment — racing same-key
    // acquirers serialize here and the laggard hits).
    obs::TraceScope trace("serve.fea_cache_build");
    auto assembly =
        std::make_shared<const thermal::FeaAssembly>(key.stack, key.chip,
                                                     key.fea);
    if (free_slot == entries_.size()) entries_.emplace_back();
    slot = free_slot;  // either the reused free slot or the new back entry
    entries_[slot].key = key;
    entries_[slot].assembly = std::move(assembly);
    entries_[slot].refs = 0;
    ++misses_;
    obs::MetricAdd("serve/fea_cache_misses", 1);
  } else {
    ++hits_;
    obs::MetricAdd("serve/fea_cache_hits", 1);
  }
  Entry& entry = entries_[slot];
  ++entry.refs;
  entry.last_use = ++use_clock_;
  EvictIdleLocked();

  thermal::FeaContextOptions copt;
  copt.fea = key.fea;
  copt.warm_start = warm_start;
  return FeaContextLease(
      this, slot,
      std::make_unique<thermal::FeaContext>(entry.assembly, copt));
}

void FeaContextCache::Release(std::size_t slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[slot];
  --entry.refs;
  if (entry.refs == 0) EvictIdleLocked();
}

void FeaContextCache::EvictIdleLocked() {
  for (;;) {
    std::size_t idle = 0;
    std::size_t lru = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (e.assembly == nullptr || e.refs > 0) continue;
      ++idle;
      if (lru == entries_.size() || e.last_use < entries_[lru].last_use) {
        lru = i;
      }
    }
    if (idle <= options_.max_idle_entries || lru == entries_.size()) return;
    entries_[lru].assembly.reset();
    ++evictions_;
    obs::MetricAdd("serve/fea_cache_evictions", 1);
  }
}

FeaContextCache::Stats FeaContextCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  for (const Entry& e : entries_) {
    if (e.assembly == nullptr) continue;
    if (e.refs > 0) {
      ++s.live_entries;
    } else {
      ++s.idle_entries;
    }
  }
  return s;
}

}  // namespace p3d::serve
