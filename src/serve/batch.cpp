#include "serve/batch.h"

#include <cstdio>
#include <fstream>
#include <utility>

#include "obs/report.h"
#include "place/params.h"

namespace p3d::serve {
namespace {

std::string FormatG(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// The per-job run report ("placer3d.run_report" v1) for one finished job.
obs::JsonValue JobRunReport(const JobSpec& spec, const JobResult& result) {
  obs::RunReport report;
  report.circuit = spec.circuit.empty() ? spec.name : spec.circuit;
  report.cells = spec.netlist->NumCells();
  report.nets = spec.netlist->NumNets();
  report.pins = spec.netlist->NumPins();
  report.params.emplace_back("scale", spec.circuit_scale);
  report.params.emplace_back("layers", spec.params.num_layers);
  report.params.emplace_back("alpha_ilv", spec.params.alpha_ilv);
  report.params.emplace_back("alpha_temp", spec.params.alpha_temp);
  report.params.emplace_back("seed", spec.params.seed);
  report.params.emplace_back("threads", spec.params.threads);
  report.phases = result.phases;
  const place::PlacementResult& r = result.placement;
  report.qor.emplace_back("hpwl_m", r.hpwl_m);
  report.qor.emplace_back("ilv", r.ilv_count);
  report.qor.emplace_back("ilv_density_per_m2", r.ilv_density);
  report.qor.emplace_back("objective", r.objective);
  report.qor.emplace_back("power_w", r.total_power_w);
  report.qor.emplace_back("legal", r.legal);
  report.qor.emplace_back("overlaps", r.overlaps);
  report.qor.emplace_back("fea_nonconverged", r.fea_nonconverged);
  if (r.fea_valid) {
    report.qor.emplace_back("avg_temp_c", r.avg_temp_c);
    report.qor.emplace_back("max_temp_c", r.max_temp_c);
  }
  report.timings.emplace_back("global_s", r.t_global);
  report.timings.emplace_back("coarse_s", r.t_coarse);
  report.timings.emplace_back("detailed_s", r.t_detailed);
  report.timings.emplace_back("fea_s", r.t_fea);
  report.timings.emplace_back("total_s", r.t_total);
  report.metrics = result.metrics.get();
  return report.ToJson();
}

const char* StatusLabel(const util::Status& status) {
  if (status.ok()) return "ok";
  if (util::IsCancelled(status)) return "cancelled";
  return "failed";
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool RequireNumber(const obs::JsonValue& obj, const char* key,
                   std::string* error, const std::string& where) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) {
    return Fail(error, where + ": missing numeric '" + key + "'");
  }
  return true;
}

}  // namespace

util::StatusOr<std::vector<SweepPoint>> RunSweep(JobEngine& engine,
                                                 const SweepSpec& spec) {
  if (spec.netlist == nullptr) {
    return util::InvalidArgumentError("RunSweep: null netlist");
  }
  std::vector<int> layers = spec.layers;
  if (layers.empty()) layers.push_back(spec.base.num_layers);
  std::vector<double> ilvs = spec.alpha_ilv;
  if (ilvs.empty()) ilvs.push_back(spec.base.alpha_ilv);
  std::vector<double> temps = spec.alpha_temp;
  if (temps.empty()) temps.push_back(spec.base.alpha_temp);

  std::vector<SweepPoint> points;
  for (const int n_layers : layers) {
    for (const double a_ilv : ilvs) {
      for (const double a_temp : temps) {
        SweepPoint point;
        point.layers = n_layers;
        point.alpha_ilv = a_ilv;
        point.alpha_temp = a_temp;
        point.name = "L" + std::to_string(n_layers) + "_ilv" +
                     FormatG(a_ilv) + "_temp" + FormatG(a_temp);

        JobSpec job;
        job.name = point.name;
        job.netlist = spec.netlist;
        job.params = spec.base;
        job.params.num_layers = n_layers;
        job.params.alpha_ilv = a_ilv;
        job.params.alpha_temp = a_temp;
        job.options = spec.options;
        job.circuit = spec.circuit;
        job.circuit_scale = spec.circuit_scale;

        util::StatusOr<JobHandle> handle = engine.Submit(std::move(job));
        if (!handle.ok()) return handle.status();
        point.handle = *handle;
        points.push_back(std::move(point));
      }
    }
  }
  for (SweepPoint& point : points) {
    point.result = engine.Wait(point.handle);
  }
  return points;
}

obs::JsonValue BuildBatchReport(const JobEngine& engine,
                                const std::vector<JobHandle>& handles) {
  const JobEngine::Stats stats = engine.GetStats();

  obs::JsonValue doc = obs::JsonValue::MakeObject();
  doc.Set("schema", kBatchReportSchema);
  doc.Set("version", kBatchReportVersion);

  obs::JsonValue eng = obs::JsonValue::MakeObject();
  eng.Set("workers", engine.num_workers());
  eng.Set("thread_budget", engine.job_thread_budget());
  eng.Set("jobs", static_cast<long long>(handles.size()));
  eng.Set("completed", stats.completed);
  eng.Set("cancelled", stats.cancelled);
  eng.Set("failed", stats.failed);
  eng.Set("stalled", stats.stalled);  // watchdog flag events (additive, v1)
  obs::JsonValue cache = obs::JsonValue::MakeObject();
  cache.Set("hits", stats.fea_cache.hits);
  cache.Set("misses", stats.fea_cache.misses);
  cache.Set("evictions", stats.fea_cache.evictions);
  eng.Set("fea_cache", std::move(cache));
  doc.Set("engine", std::move(eng));

  obs::JsonValue jobs = obs::JsonValue::MakeArray();
  for (const JobHandle handle : handles) {
    const JobSpec* spec = engine.Spec(handle);
    const JobResult* result = engine.Result(handle);
    obs::JsonValue entry = obs::JsonValue::MakeObject();
    if (spec == nullptr || result == nullptr) {
      entry.Set("name", "unknown-job-" + std::to_string(handle.id));
      entry.Set("status", "failed");
      entry.Set("message", "job not found or not finished");
      entry.Set("wall_s", 0.0);
      jobs.Push(std::move(entry));
      continue;
    }
    entry.Set("name", spec->name);
    entry.Set("status", StatusLabel(result->status));
    entry.Set("priority", spec->priority);
    entry.Set("wall_s", result->wall_s);
    entry.Set("stalled", result->stalled);
    entry.Set("anomalies", result->anomalies);
    if (result->status.ok()) {
      entry.Set("report", JobRunReport(*spec, *result));
    } else {
      entry.Set("message", result->status.ToString());
    }
    jobs.Push(std::move(entry));
  }
  doc.Set("jobs", std::move(jobs));
  return doc;
}

bool WriteBatchReport(const obs::JsonValue& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << report.SerializePretty() << "\n";
  return static_cast<bool>(out);
}

bool ValidateBatchReport(const obs::JsonValue& doc, std::string* error) {
  if (!doc.is_object()) return Fail(error, "batch report: not an object");
  const obs::JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->AsString() != kBatchReportSchema) {
    return Fail(error, "batch report: bad schema");
  }
  const obs::JsonValue* version = doc.Find("version");
  if (version == nullptr || !version->is_number() ||
      static_cast<int>(version->AsNumber()) != kBatchReportVersion) {
    return Fail(error, "batch report: bad version");
  }

  const obs::JsonValue* engine = doc.Find("engine");
  if (engine == nullptr || !engine->is_object()) {
    return Fail(error, "batch report: missing 'engine' object");
  }
  for (const char* key :
       {"workers", "thread_budget", "jobs", "completed", "cancelled",
        "failed"}) {
    if (!RequireNumber(*engine, key, error, "batch report engine")) {
      return false;
    }
  }
  // Additive v1 field: absent in pre-watchdog reports, numeric when present.
  if (const obs::JsonValue* stalled = engine->Find("stalled");
      stalled != nullptr && !stalled->is_number()) {
    return Fail(error, "batch report engine: 'stalled' is not a number");
  }
  const obs::JsonValue* cache = engine->Find("fea_cache");
  if (cache == nullptr || !cache->is_object()) {
    return Fail(error, "batch report: missing 'engine.fea_cache' object");
  }
  for (const char* key : {"hits", "misses", "evictions"}) {
    if (!RequireNumber(*cache, key, error, "batch report fea_cache")) {
      return false;
    }
  }

  const obs::JsonValue* jobs = doc.Find("jobs");
  if (jobs == nullptr || !jobs->is_array()) {
    return Fail(error, "batch report: missing 'jobs' array");
  }
  for (std::size_t i = 0; i < jobs->AsArray().size(); ++i) {
    const obs::JsonValue& entry = jobs->AsArray()[i];
    const std::string where = "batch report job " + std::to_string(i);
    if (!entry.is_object()) return Fail(error, where + ": not an object");
    const obs::JsonValue* name = entry.Find("name");
    if (name == nullptr || !name->is_string()) {
      return Fail(error, where + ": missing 'name'");
    }
    const obs::JsonValue* status = entry.Find("status");
    if (status == nullptr || !status->is_string() ||
        (status->AsString() != "ok" && status->AsString() != "cancelled" &&
         status->AsString() != "failed")) {
      return Fail(error, where + ": bad 'status'");
    }
    if (!RequireNumber(entry, "wall_s", error, where)) return false;
    if (const obs::JsonValue* stalled = entry.Find("stalled");
        stalled != nullptr && !stalled->is_bool()) {
      return Fail(error, where + ": 'stalled' is not a bool");
    }
    if (status->AsString() == "ok") {
      const obs::JsonValue* report = entry.Find("report");
      if (report == nullptr) {
        return Fail(error, where + ": ok job without 'report'");
      }
      std::string inner;
      if (!obs::ValidateRunReport(*report, &inner)) {
        return Fail(error, where + ": embedded run report: " + inner);
      }
    } else if (entry.Find("message") == nullptr) {
      return Fail(error, where + ": non-ok job without 'message'");
    }
  }
  return true;
}

}  // namespace p3d::serve
