#include "serve/manifest.h"

#include <exception>
#include <fstream>
#include <sstream>
#include <utility>

#include "io/synthetic.h"
#include "obs/json.h"
#include "place/global_backend.h"
#include "place/params.h"
#include "runtime/stream.h"

namespace p3d::serve {
namespace {

/// Job-level field with fallback to the manifest's `defaults` object.
const obs::JsonValue* Lookup(const obs::JsonValue& job,
                             const obs::JsonValue* defaults,
                             const std::string& key) {
  if (const obs::JsonValue* v = job.Find(key)) return v;
  if (defaults != nullptr) return defaults->Find(key);
  return nullptr;
}

util::Status FieldTypeError(std::size_t job_index, const std::string& key,
                            const char* want) {
  return util::ParseError("jobs manifest: job " + std::to_string(job_index) +
                          ": field '" + key + "' must be a " + want);
}

}  // namespace

util::StatusOr<JobsManifest> ParseJobsManifest(const std::string& text) {
  obs::JsonValue doc;
  std::string json_error;
  if (!obs::ParseJson(text, &doc, &json_error)) {
    return util::ParseError("jobs manifest: " + json_error);
  }
  if (!doc.is_object()) {
    return util::ParseError("jobs manifest: document is not an object");
  }
  const obs::JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->AsString() != kJobsManifestSchema) {
    return util::ParseError(std::string("jobs manifest: schema must be \"") +
                            kJobsManifestSchema + "\"");
  }
  const obs::JsonValue* version = doc.Find("version");
  if (version == nullptr || !version->is_number() ||
      static_cast<int>(version->AsNumber()) != kJobsManifestVersion) {
    return util::ParseError("jobs manifest: unsupported version");
  }

  JobsManifest manifest;
  if (const obs::JsonValue* seed = doc.Find("seed")) {
    if (!seed->is_number()) {
      return util::ParseError("jobs manifest: 'seed' must be a number");
    }
    manifest.base_seed = static_cast<std::uint64_t>(seed->AsNumber());
  }

  const obs::JsonValue* defaults = doc.Find("defaults");
  if (defaults != nullptr && !defaults->is_object()) {
    return util::ParseError("jobs manifest: 'defaults' must be an object");
  }

  const obs::JsonValue* jobs = doc.Find("jobs");
  if (jobs == nullptr || !jobs->is_array() || jobs->AsArray().empty()) {
    return util::ParseError(
        "jobs manifest: 'jobs' must be a non-empty array");
  }

  // Netlists deduplicated by (circuit, scale); generated lazily on first use.
  std::vector<std::pair<std::string, double>> circuit_keys;

  for (std::size_t i = 0; i < jobs->AsArray().size(); ++i) {
    const obs::JsonValue& jv = jobs->AsArray()[i];
    if (!jv.is_object()) {
      return util::ParseError("jobs manifest: job " + std::to_string(i) +
                              " is not an object");
    }

    std::string circuit = "ibm01";
    double scale = 0.05;
    JobSpec spec;
    spec.params.seed = runtime::DeriveSeed(manifest.base_seed, i);

    if (const auto* v = Lookup(jv, defaults, "name")) {
      if (!v->is_string()) return FieldTypeError(i, "name", "string");
      spec.name = v->AsString();
    }
    if (const auto* v = Lookup(jv, defaults, "circuit")) {
      if (!v->is_string()) return FieldTypeError(i, "circuit", "string");
      circuit = v->AsString();
    }
    if (const auto* v = Lookup(jv, defaults, "scale")) {
      if (!v->is_number() || v->AsNumber() <= 0.0) {
        return FieldTypeError(i, "scale", "positive number");
      }
      scale = v->AsNumber();
    }
    if (const auto* v = Lookup(jv, defaults, "layers")) {
      if (!v->is_number()) return FieldTypeError(i, "layers", "number");
      spec.params.num_layers = static_cast<int>(v->AsNumber());
    }
    if (const auto* v = Lookup(jv, defaults, "alpha_ilv")) {
      if (!v->is_number()) return FieldTypeError(i, "alpha_ilv", "number");
      spec.params.alpha_ilv = v->AsNumber();
    }
    if (const auto* v = Lookup(jv, defaults, "alpha_temp")) {
      if (!v->is_number()) return FieldTypeError(i, "alpha_temp", "number");
      spec.params.alpha_temp = v->AsNumber();
    }
    if (const auto* v = Lookup(jv, defaults, "global_backend")) {
      if (!v->is_string()) return FieldTypeError(i, "global_backend", "string");
      const auto backend = place::ParseGlobalBackend(v->AsString());
      if (!backend.ok()) {
        return util::ParseError("jobs manifest: job " + std::to_string(i) +
                                ": " + backend.status().message());
      }
      spec.params.global_backend = *backend;
    }
    if (const auto* v = Lookup(jv, defaults, "seed")) {
      if (!v->is_number()) return FieldTypeError(i, "seed", "number");
      spec.params.seed = static_cast<std::uint64_t>(v->AsNumber());
    }
    if (const auto* v = Lookup(jv, defaults, "threads")) {
      if (!v->is_number()) return FieldTypeError(i, "threads", "number");
      spec.params.threads = static_cast<int>(v->AsNumber());
    }
    if (const auto* v = Lookup(jv, defaults, "priority")) {
      if (!v->is_number()) return FieldTypeError(i, "priority", "number");
      spec.priority = static_cast<int>(v->AsNumber());
    }
    if (const auto* v = Lookup(jv, defaults, "with_fea")) {
      if (!v->is_bool()) return FieldTypeError(i, "with_fea", "bool");
      spec.options.with_fea = v->AsBool();
    }
    if (const auto* v = Lookup(jv, defaults, "fea_per_phase")) {
      if (!v->is_bool()) return FieldTypeError(i, "fea_per_phase", "bool");
      spec.options.fea_per_phase = v->AsBool();
    }
    if (const auto* v = Lookup(jv, defaults, "fea_per_pass")) {
      if (!v->is_bool()) return FieldTypeError(i, "fea_per_pass", "bool");
      spec.params.fea_per_pass = v->AsBool();
    }
    if (const auto* v = Lookup(jv, defaults, "fea_precond")) {
      if (!v->is_string()) return FieldTypeError(i, "fea_precond", "string");
      const std::string& kind = v->AsString();
      if (kind == "jacobi") {
        spec.options.preconditioner = linalg::PreconditionerKind::kJacobi;
      } else if (kind == "ic0") {
        spec.options.preconditioner = linalg::PreconditionerKind::kIc0;
      } else if (kind == "multigrid") {
        spec.options.preconditioner = linalg::PreconditionerKind::kMultigrid;
      } else {
        return util::ParseError("jobs manifest: job " + std::to_string(i) +
                                ": bad fea_precond '" + kind +
                                "' (want jacobi|ic0|multigrid)");
      }
    }
    if (const auto* v = Lookup(jv, defaults, "start_deadline_s")) {
      if (!v->is_number() || v->AsNumber() < 0.0) {
        return FieldTypeError(i, "start_deadline_s", "non-negative number");
      }
      spec.start_deadline_s = v->AsNumber();
    }
    if (spec.name.empty()) {
      spec.name = circuit + "-job" + std::to_string(i + 1);
    }

    std::size_t circuit_index = circuit_keys.size();
    for (std::size_t k = 0; k < circuit_keys.size(); ++k) {
      if (circuit_keys[k].first == circuit &&
          circuit_keys[k].second == scale) {
        circuit_index = k;
        break;
      }
    }
    if (circuit_index == circuit_keys.size()) {
      io::SyntheticSpec synth;
      try {
        synth = io::Table1Spec(circuit, scale);
      } catch (const std::exception& e) {
        return util::ParseError("jobs manifest: job " + std::to_string(i) +
                                ": " + e.what());
      }
      manifest.netlists.push_back(
          std::make_shared<const netlist::Netlist>(io::Generate(synth)));
      circuit_keys.emplace_back(circuit, scale);
    }
    spec.netlist = manifest.netlists[circuit_index].get();
    spec.circuit = circuit;
    spec.circuit_scale = scale;
    place::CompensateWireCapForScale(&spec.params, scale);
    manifest.jobs.push_back(std::move(spec));
  }
  return manifest;
}

util::StatusOr<JobsManifest> LoadJobsManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::NotFoundError("jobs manifest: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return util::IoError("jobs manifest: read failed for " + path);
  }
  return ParseJobsManifest(buffer.str());
}

}  // namespace p3d::serve
