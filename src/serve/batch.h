// Batch front-ends over the JobEngine: sweep expansion and the batch report.
//
// BatchSweep expands a (alpha_ILV x alpha_TEMP x layers) grid — the paper's
// Figs. 3/4/8 tradeoff space — into one JobSpec per grid point and runs them
// through an engine, replacing the serial loops of
// examples/tradeoff_explorer.cpp. Grid expansion order (layers outer,
// alpha_ilv middle, alpha_temp inner) and per-point seeds are pure functions
// of the sweep spec, so results are independent of worker count.
//
// The batch report ("placer3d.batch_report" v1) aggregates the engine's
// counters and every job's per-job run report ("placer3d.run_report" v1,
// embedded verbatim) into one machine-readable document; ValidateBatchReport
// is the C++ schema check mirrored by scripts/check_report.py --batch.
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"
#include "serve/job_engine.h"
#include "util/status.h"

namespace p3d::serve {

inline constexpr const char* kBatchReportSchema = "placer3d.batch_report";
inline constexpr int kBatchReportVersion = 1;

struct SweepSpec {
  const netlist::Netlist* netlist = nullptr;  // must outlive the engine
  std::string circuit;        // reporting label
  double circuit_scale = 1.0;  // reporting label (netlist generation scale)
  place::PlacerParams base;   // every grid point starts from this
  place::RunOptions options;  // with_fea / fea_per_phase for every point

  // Grid axes; an empty axis means "the base value only".
  std::vector<int> layers;
  std::vector<double> alpha_ilv;
  std::vector<double> alpha_temp;
};

struct SweepPoint {
  std::string name;  // "L<layers>_ilv<val>_temp<val>"
  int layers = 0;
  double alpha_ilv = 0.0;
  double alpha_temp = 0.0;
  JobHandle handle;
  const JobResult* result = nullptr;  // owned by the engine
};

/// Expands the grid, submits every point to `engine`, waits for all of them,
/// and returns the points in grid order with their results attached.
/// Errors: invalid spec (null netlist) or a Submit failure.
util::StatusOr<std::vector<SweepPoint>> RunSweep(JobEngine& engine,
                                                 const SweepSpec& spec);

/// Builds the batch report for `handles` (every job must be done — run
/// after WaitAll). Per-job run reports are embedded for successful jobs;
/// cancelled/failed jobs carry their status message instead.
obs::JsonValue BuildBatchReport(const JobEngine& engine,
                                const std::vector<JobHandle>& handles);

/// Pretty-writes `report` to `path`; false on I/O error.
bool WriteBatchReport(const obs::JsonValue& report, const std::string& path);

/// Schema check of a parsed batch report (engine block, per-job entries,
/// embedded run reports). On failure returns false and, when `error` is
/// non-null, a one-line description of the first violation.
bool ValidateBatchReport(const obs::JsonValue& doc,
                         std::string* error = nullptr);

}  // namespace p3d::serve
