#include "serve/telemetry.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/json.h"
#include "util/log.h"

namespace p3d::serve {
namespace {

const char* StateLabel(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
  }
  return "unknown";
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

// Blocking write of the whole buffer; false on any error.
bool WriteAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#if defined(MSG_NOSIGNAL)
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::string RenderJobsJson(JobEngine* engine) {
  obs::JsonValue doc = obs::JsonValue::MakeObject();
  doc.Set("schema", kJobsSchema);
  doc.Set("version", kJobsVersion);
  obs::JsonValue jobs = obs::JsonValue::MakeArray();
  if (engine != nullptr) {
    for (const JobEngine::JobView& v : engine->SnapshotJobs()) {
      obs::JsonValue j = obs::JsonValue::MakeObject();
      j.Set("id", static_cast<long long>(v.id));
      j.Set("name", v.name);
      j.Set("state", StateLabel(v.state));
      j.Set("priority", v.priority);
      j.Set("phase", v.phase);
      j.Set("round", v.round);
      j.Set("heartbeats", v.heartbeats);
      j.Set("since_beat_s", v.since_beat_s);
      j.Set("wall_s", v.wall_s);
      j.Set("stalled", v.stalled);
      j.Set("ever_stalled", v.ever_stalled);
      j.Set("cancel_requested", v.cancel_requested);
      jobs.Push(std::move(j));
    }
  }
  doc.Set("jobs", std::move(jobs));
  return doc.Serialize();
}

TelemetryServer::~TelemetryServer() { Stop(); }

util::Status TelemetryServer::Start(const TelemetryOptions& options) {
  if (running_.load(std::memory_order_acquire)) {
    return util::FailedPreconditionError(
        "TelemetryServer::Start: already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::InternalError(std::string("telemetry: socket: ") +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // operator peephole only
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return util::InternalError("telemetry: bind: " + message);
  }
  if (::listen(fd, 16) < 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return util::InternalError("telemetry: listen: " + message);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return util::InternalError("telemetry: getsockname: " + message);
  }

  options_ = options;
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  util::LogInfo("telemetry: listening on 127.0.0.1:%d", port_);
  return util::Status::Ok();
}

void TelemetryServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
  running_.store(false, std::memory_order_release);
}

void TelemetryServer::ServeLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout (re-check stop_) or EINTR
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    // Read until the end of the request head (we ignore any body).
    std::string request;
    char buf[2048];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < 16384) {
      const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      request.append(buf, static_cast<std::size_t>(n));
    }

    std::string method, target;
    const std::size_t sp1 = request.find(' ');
    if (sp1 != std::string::npos) {
      method = request.substr(0, sp1);
      const std::size_t sp2 = request.find(' ', sp1 + 1);
      if (sp2 != std::string::npos) {
        target = request.substr(sp1 + 1, sp2 - sp1 - 1);
      }
    }

    std::string response;
    if (method != "GET") {
      response = HttpResponse(405, "Method Not Allowed", "text/plain",
                              "only GET is supported\n");
    } else {
      response = HandleRequest(target);
    }
    WriteAll(client, response);
    ::close(client);
  }
}

std::string TelemetryServer::HandleRequest(const std::string& target) const {
  if (target == "/metrics") {
    const obs::MetricsRegistry* registry =
        options_.metrics != nullptr ? options_.metrics : obs::CurrentMetrics();
    std::string body;
    if (registry != nullptr) body = obs::RenderPrometheus(*registry);
    if (options_.engine != nullptr) {
      long long queued = 0, running = 0, done = 0, stalled = 0;
      for (const JobEngine::JobView& v : options_.engine->SnapshotJobs()) {
        queued += v.state == JobState::kQueued;
        running += v.state == JobState::kRunning;
        done += v.state == JobState::kDone;
        stalled += v.stalled;
      }
      for (const auto& [name, value] :
           {std::pair<const char*, long long>{"placer3d_jobs_queued", queued},
            {"placer3d_jobs_running", running},
            {"placer3d_jobs_done", done},
            {"placer3d_jobs_stalled", stalled}}) {
        body += "# HELP " + std::string(name) + " placer3d gauge\n";
        body += "# TYPE " + std::string(name) + " gauge\n" + name + " " +
                std::to_string(value) + "\n";
      }
    }
    return HttpResponse(200, "OK", "text/plain; version=0.0.4", body);
  }
  if (target == "/jobs") {
    return HttpResponse(200, "OK", "application/json",
                        RenderJobsJson(options_.engine) + "\n");
  }
  if (target == "/healthz") {
    if (options_.engine == nullptr) {
      return HttpResponse(200, "OK", "text/plain", "ok (no engine)\n");
    }
    std::string stalled;
    for (const JobEngine::JobView& v : options_.engine->SnapshotJobs()) {
      if (v.state == JobState::kRunning && v.stalled) {
        if (!stalled.empty()) stalled += ", ";
        stalled += v.name;
      }
    }
    if (stalled.empty()) {
      return HttpResponse(200, "OK", "text/plain", "ok\n");
    }
    return HttpResponse(503, "Service Unavailable", "text/plain",
                        "stalled: " + stalled + "\n");
  }
  return HttpResponse(404, "Not Found", "text/plain",
                      "routes: /metrics /jobs /healthz\n");
}

}  // namespace p3d::serve
