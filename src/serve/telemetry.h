// TelemetryServer — a dependency-free HTTP/1.1 endpoint for live placer
// telemetry (DESIGN.md §7, "obs v2").
//
// One background thread, raw POSIX sockets, loopback only. Three routes:
//
//   GET /metrics  - Prometheus text exposition (obs::RenderPrometheus) of
//                   the configured registry, plus live job-state gauges
//                   when a JobEngine is attached;
//   GET /jobs     - JSON array of JobEngine::SnapshotJobs() ("placer3d.jobs"
//                   v1): per-job state, phase, heartbeat age, stall flags;
//   GET /healthz  - 200 "ok" while no running job is watchdog-stalled,
//                   503 listing the stalled jobs otherwise.
//
// Everything is computed per request — the server holds no state beyond its
// listen socket, so it can never go stale or perturb a run (placements are
// byte-identical with the server on or off). Requests are served one at a
// time; this is an operator peephole, not a web server.
#pragma once

#include <atomic>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "serve/job_engine.h"
#include "util/status.h"

namespace p3d::serve {

inline constexpr const char* kJobsSchema = "placer3d.jobs";
inline constexpr int kJobsVersion = 1;

struct TelemetryOptions {
  /// TCP port to listen on (loopback only). 0 = ephemeral; read the bound
  /// port back with port().
  int port = 0;
  /// Registry behind /metrics; nullptr = obs::CurrentMetrics() per request.
  const obs::MetricsRegistry* metrics = nullptr;
  /// Engine behind /jobs and /healthz; nullptr = both report "no engine".
  JobEngine* engine = nullptr;
};

/// Renders the /jobs JSON document (exposed for tests and the heartbeat
/// stream; the endpoint returns exactly this serialization).
std::string RenderJobsJson(JobEngine* engine);

class TelemetryServer {
 public:
  TelemetryServer() = default;
  ~TelemetryServer();  // Stop()s
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds 127.0.0.1:<port> and starts the serving thread. Errors: socket /
  /// bind / listen failure, or already started.
  util::Status Start(const TelemetryOptions& options);

  /// Closes the listen socket and joins the thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves port 0); 0 while not running.
  int port() const { return port_; }

 private:
  void ServeLoop();
  std::string HandleRequest(const std::string& target) const;

  TelemetryOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace p3d::serve
