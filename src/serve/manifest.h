// Jobs-manifest loader for the serve engine (`tools/placed`, CI smoke).
//
// A manifest is a JSON document describing one batch of placement jobs over
// the synthetic Table-1 circuits:
//
//   {
//     "schema": "placer3d.jobs", "version": 1,
//     "seed": 42,                      // base seed (optional, default 12345)
//     "defaults": {"circuit": "ibm01", "scale": 0.02, "layers": 4},
//     "jobs": [
//       {"name": "ilv_lo", "alpha_ilv": 5e-9},
//       {"name": "ilv_hi", "alpha_ilv": 5.2e-3, "priority": 2},
//       {"name": "therm",  "alpha_temp": 4.1e-5, "with_fea": true}
//     ]
//   }
//
// Per-job fields (each falls back to `defaults`, then to the built-in
// default): circuit, scale, layers, alpha_ilv, alpha_temp, seed, priority,
// threads, with_fea, fea_per_phase, fea_per_pass, start_deadline_s,
// global_backend ("bisection" | "analytic", default bisection; unknown names
// are a manifest error), and fea_precond ("jacobi" | "ic0" | "multigrid",
// default ic0 — multigrid is the one that makes fea_per_pass affordable).
//
// Determinism: a job without an explicit "seed" gets
// runtime::DeriveSeed(base_seed, job_index) — a pure function of the
// manifest, independent of worker count or scheduling. Netlists are
// generated once per distinct (circuit, scale) pair and shared by the jobs
// that use them; the manifest object keeps them alive.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "serve/job_engine.h"
#include "util/status.h"

namespace p3d::serve {

inline constexpr const char* kJobsManifestSchema = "placer3d.jobs";
inline constexpr int kJobsManifestVersion = 1;

struct JobsManifest {
  std::vector<JobSpec> jobs;  // netlist pointers aim into `netlists`
  // Generated circuits, deduplicated by (circuit, scale); shared_ptr keeps
  // addresses stable across moves of the manifest.
  std::vector<std::shared_ptr<const netlist::Netlist>> netlists;
  std::uint64_t base_seed = 12345;
};

/// Parses a manifest document from JSON text.
util::StatusOr<JobsManifest> ParseJobsManifest(const std::string& text);

/// Reads and parses a manifest file.
util::StatusOr<JobsManifest> LoadJobsManifest(const std::string& path);

}  // namespace p3d::serve
