// FeaContextCache — the cross-job solver-cache layer of the serve engine.
//
// Sweep workloads (the paper's Figs. 3/4/8 tradeoff grids) run many
// placements over ONE chip: every job shares the thermal stack, the die
// extent, and the FEA mesh, so the expensive part of the PR-4 solver reuse
// layer — stiffness-matrix assembly plus the IC(0) factorization — is
// identical across jobs. This cache shares that immutable product
// (thermal::FeaAssembly) between concurrent jobs keyed by exact geometry,
// while each job keeps its own thermal::FeaContext so warm-start temperature
// history never leaks between jobs (determinism contract: a job's solves are
// byte-identical whether its assembly was built or adopted).
//
// Concurrency: every cache operation (lookup, build, release, eviction) runs
// under one mutex. Building a missing assembly under the lock is deliberate:
// two jobs racing on the same key serialize, the second one hits, and a
// same-geometry batch always counts exactly one miss regardless of worker
// count or scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "thermal/fea.h"

namespace p3d::serve {

/// Exact-geometry cache key: everything a FeaAssembly build depends on.
/// Field-wise equality via the members' own defaulted operator==.
struct FeaCacheKey {
  thermal::ThermalStack stack;
  thermal::ChipExtent chip;
  thermal::FeaOptions fea;

  friend bool operator==(const FeaCacheKey&, const FeaCacheKey&) = default;
};

class FeaContextCache;

/// RAII lease on one cache entry: owns the per-job FeaContext (which adopts
/// the shared assembly) and releases the entry's refcount on destruction —
/// including when a job is cancelled mid-flight, which is how a cancelled
/// job "releases its cache ref" without any explicit bookkeeping.
class FeaContextLease {
 public:
  FeaContextLease() = default;
  FeaContextLease(FeaContextLease&& other) noexcept;
  FeaContextLease& operator=(FeaContextLease&& other) noexcept;
  ~FeaContextLease();

  FeaContextLease(const FeaContextLease&) = delete;
  FeaContextLease& operator=(const FeaContextLease&) = delete;

  /// The leased per-job context; nullptr for an empty (default) lease.
  thermal::FeaContext* context() { return context_.get(); }
  explicit operator bool() const { return context_ != nullptr; }

  /// Drops the context and releases the cache refcount now.
  void Release();

 private:
  friend class FeaContextCache;
  FeaContextLease(FeaContextCache* cache, std::size_t slot,
                  std::unique_ptr<thermal::FeaContext> context);

  FeaContextCache* cache_ = nullptr;
  std::size_t slot_ = 0;
  std::unique_ptr<thermal::FeaContext> context_;
};

class FeaContextCache {
 public:
  struct Options {
    /// Unreferenced assemblies retained for future hits; beyond this the
    /// least-recently-used idle entry is evicted. Referenced entries are
    /// never evicted and do not count against the cap.
    std::size_t max_idle_entries = 8;
  };

  /// Snapshot of the cache counters, also mirrored into the flight recorder
  /// as serve/fea_cache_* counters (recorded on the acquiring worker thread
  /// BEFORE the per-job metrics scope is installed, so they land in the
  /// process-wide registry, never in a job's deterministic dump).
  struct Stats {
    long long hits = 0;
    long long misses = 0;       // assembly builds
    long long evictions = 0;
    long long live_entries = 0; // currently referenced
    long long idle_entries = 0; // retained, unreferenced
  };

  FeaContextCache();
  explicit FeaContextCache(const Options& options);

  FeaContextCache(const FeaContextCache&) = delete;
  FeaContextCache& operator=(const FeaContextCache&) = delete;

  /// Hands out a lease whose FeaContext shares the assembly for `key`,
  /// building it on a miss. `warm_start` configures the per-job context
  /// only; the shared assembly is warm-start-free by construction.
  FeaContextLease Acquire(const FeaCacheKey& key, bool warm_start);

  Stats GetStats() const;

 private:
  friend class FeaContextLease;

  struct Entry {
    FeaCacheKey key;
    std::shared_ptr<const thermal::FeaAssembly> assembly;  // null = free slot
    int refs = 0;
    std::uint64_t last_use = 0;
  };

  void Release(std::size_t slot);
  /// Caller holds mutex_. Evicts LRU idle entries beyond the cap.
  void EvictIdleLocked();

  const Options options_;
  mutable std::mutex mutex_;
  // Slot-stable: leases hold indices, so evicted slots are nulled and
  // reused, never erased.
  std::vector<Entry> entries_;
  std::uint64_t use_clock_ = 0;
  long long hits_ = 0;
  long long misses_ = 0;
  long long evictions_ = 0;
};

}  // namespace p3d::serve
