#include "serve/job_engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "obs/trace.h"
#include "place/instrument.h"
#include "runtime/thread_pool.h"
#include "util/log.h"
#include "util/timer.h"

namespace p3d::serve {

struct JobEngine::Job {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::atomic<bool> cancel{false};
  util::Timer queued;  // starts at submit; start_deadline_s is measured on it
  JobResult result;
};

bool JobEngine::QueueOrder::operator()(const Job* a, const Job* b) const {
  if (a->spec.priority != b->spec.priority) {
    return a->spec.priority > b->spec.priority;  // higher priority first
  }
  return a->id < b->id;  // then submission order
}

namespace {

int ResolveBudget(const JobEngineOptions& options, int num_workers) {
  if (options.thread_budget > 0) return options.thread_budget;
  return num_workers > 1 ? 1 : 0;  // 0 = unlimited (serial engine)
}

}  // namespace

JobEngine::JobEngine(const JobEngineOptions& options)
    : num_workers_(std::max(1, options.num_workers)),
      thread_budget_(ResolveBudget(options, std::max(1, options.num_workers))),
      fea_cache_(options.fea_cache) {
  workers_.reserve(static_cast<std::size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

JobEngine::~JobEngine() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
    // Queued jobs will never run; complete them as cancelled so Wait()ers
    // unblock. Running jobs get the flag and stop at their next boundary.
    for (auto& [id, job] : jobs_) {
      job->cancel.store(true, std::memory_order_relaxed);
      if (job->state == JobState::kQueued) {
        queue_.erase(job.get());
        job->state = JobState::kDone;
        job->result.status =
            util::CancelledError("job cancelled: engine shut down");
        ++cancelled_;
      }
    }
    done_cv_.notify_all();
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

util::StatusOr<JobHandle> JobEngine::Submit(JobSpec spec) {
  if (spec.netlist == nullptr) {
    return util::InvalidArgumentError("JobEngine::Submit: null netlist");
  }
  if (!spec.netlist->finalized()) {
    return util::FailedPreconditionError(
        "JobEngine::Submit: netlist is not finalized");
  }
  if (spec.start_deadline_s < 0.0) {
    return util::InvalidArgumentError(
        "JobEngine::Submit: negative start deadline");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (stop_) {
    return util::FailedPreconditionError(
        "JobEngine::Submit: engine is shutting down");
  }
  const std::uint64_t id = ++next_id_;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->spec = std::move(spec);
  if (job->spec.name.empty()) job->spec.name = "job-" + std::to_string(id);
  queue_.insert(job.get());
  jobs_.emplace(id, std::move(job));
  ++submitted_;
  obs::MetricAdd("serve/jobs_submitted", 1);
  work_cv_.notify_one();
  return JobHandle{id};
}

util::StatusOr<JobState> JobEngine::Poll(JobHandle handle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(handle.id);
  if (it == jobs_.end()) {
    return util::NotFoundError("JobEngine::Poll: unknown job handle");
  }
  return it->second->state;
}

const JobResult* JobEngine::Wait(JobHandle handle) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(handle.id);
  if (it == jobs_.end()) return nullptr;
  Job* job = it->second.get();
  done_cv_.wait(lock, [&] { return job->state == JobState::kDone; });
  return &job->result;
}

const JobResult* JobEngine::Result(JobHandle handle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(handle.id);
  if (it == jobs_.end() || it->second->state != JobState::kDone) {
    return nullptr;
  }
  return &it->second->result;
}

const JobSpec* JobEngine::Spec(JobHandle handle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(handle.id);
  return it == jobs_.end() ? nullptr : &it->second->spec;
}

bool JobEngine::Cancel(JobHandle handle) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(handle.id);
  if (it == jobs_.end()) return false;
  Job* job = it->second.get();
  if (job->state == JobState::kDone) return false;
  job->cancel.store(true, std::memory_order_relaxed);
  if (job->state == JobState::kQueued) {
    queue_.erase(job);
    // kRunning until the callback returns (same ordering as FinishJob): a
    // Wait()er must not unblock mid-callback, and a racing second Cancel()
    // sees a "running" job whose flag is already set — a harmless no-op.
    job->state = JobState::kRunning;
    job->result.status = util::CancelledError("job cancelled while queued");
    ++cancelled_;
    obs::MetricAdd("serve/jobs_cancelled", 1);
    CompletionCallback callback = on_complete_;
    lock.unlock();
    if (callback) {
      std::lock_guard<std::mutex> serialize(callback_mutex_);
      callback(JobHandle{job->id}, job->spec.name, job->result);
    }
    lock.lock();
    job->state = JobState::kDone;
    done_cv_.notify_all();
  }
  return true;
}

void JobEngine::WaitAll() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    for (const auto& [id, job] : jobs_) {
      if (job->state != JobState::kDone) return false;
    }
    return true;
  });
}

void JobEngine::SetCompletionCallback(CompletionCallback callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_complete_ = std::move(callback);
}

JobEngine::Stats JobEngine::GetStats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.cancelled = cancelled_;
    s.failed = failed_;
  }
  s.fea_cache = fea_cache_.GetStats();
  return s;
}

void JobEngine::WorkerLoop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = *queue_.begin();
      queue_.erase(queue_.begin());
      job->state = JobState::kRunning;
    }
    RunJob(job);
    FinishJob(job);
  }
}

void JobEngine::RunJob(Job* job) {
  obs::TraceScope trace("serve.job");
  util::Timer timer;
  JobResult& out = job->result;
  out.metrics = std::make_unique<obs::MetricsRegistry>();

  if (job->cancel.load(std::memory_order_relaxed)) {
    out.status = util::CancelledError("job cancelled before start");
    out.wall_s = timer.Seconds();
    return;
  }
  if (job->spec.start_deadline_s > 0.0 &&
      job->queued.Seconds() > job->spec.start_deadline_s) {
    out.status = util::CancelledError(
        "job cancelled: start deadline expired while queued");
    out.wall_s = timer.Seconds();
    return;
  }

  auto placer_or =
      place::Placer3D::Create(*job->spec.netlist, job->spec.params);
  if (!placer_or.ok()) {
    out.status = placer_or.status();
    out.wall_s = timer.Seconds();
    return;
  }
  place::Placer3D placer = *std::move(placer_or);

  place::RunOptions options = job->spec.options;
  options.cancel = &job->cancel;

  // Lease the shared FEA assembly BEFORE installing the per-job metrics
  // scope: cache hit/miss counters are engine-level and must not enter the
  // job's deterministic dump. The lease outlives the scope below (declared
  // first => destroyed last), so its release also stays out of the dump.
  FeaContextLease lease;
  if (options.use_solver_cache &&
      (options.with_fea || options.fea_per_phase)) {
    lease = fea_cache_.Acquire(
        FeaKeyFor(job->spec.params, options, placer.chip()),
        options.warm_start);
    options.fea_context = lease.context();
  } else {
    options.fea_context = nullptr;
  }

  // Clamp the job's inner parallelism while it shares the machine with
  // sibling jobs (DESIGN.md §5). Budget 0 = serial engine, job runs free.
  std::optional<runtime::ScopedThreadBudget> budget;
  if (thread_budget_ > 0) budget.emplace(thread_budget_);

  obs::ScopedThreadMetrics metrics_scope(out.metrics.get());
  place::PhaseMetricsSampler sampler;
  placer.AddPhaseObserver(&sampler);
  for (place::PhaseObserver* observer : job->spec.observers) {
    placer.AddPhaseObserver(observer);
  }

  util::StatusOr<place::PlacementResult> result = placer.Run(options);
  out.phases = sampler.samples();
  if (result.ok()) {
    out.placement = *std::move(result);
    out.status = util::Status::Ok();
  } else {
    out.status = result.status();
  }
  out.metrics_dump = out.metrics->DumpDeterministic();
  out.wall_s = timer.Seconds();
}

void JobEngine::FinishJob(Job* job) {
  CompletionCallback callback;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->result.status.ok()) {
      ++completed_;
      obs::MetricAdd("serve/jobs_completed", 1);
    } else if (util::IsCancelled(job->result.status)) {
      ++cancelled_;
      obs::MetricAdd("serve/jobs_cancelled", 1);
    } else {
      ++failed_;
      obs::MetricAdd("serve/jobs_failed", 1);
    }
    callback = on_complete_;
  }
  // Fire the callback BEFORE flipping the state to done: Wait()/WaitAll()
  // must not return while a completion callback is still running (a caller
  // streaming progress would see its summary print before the last job's
  // line). The job stays kRunning for Poll() until the callback returns.
  if (callback) {
    std::lock_guard<std::mutex> serialize(callback_mutex_);
    callback(JobHandle{job->id}, job->spec.name, job->result);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->state = JobState::kDone;
    done_cv_.notify_all();
  }
}

FeaCacheKey FeaKeyFor(const place::PlacerParams& params,
                      const place::RunOptions& options,
                      const place::Chip& chip) {
  FeaCacheKey key;
  key.stack = params.stack;
  key.stack.num_layers = params.num_layers;  // what SyncStack() enforces
  key.chip = thermal::ChipExtent{chip.width(), chip.height()};
  key.fea.nx = params.fea_nx;
  key.fea.ny = params.fea_ny;
  key.fea.cg.threads = params.threads;
  key.fea.cg.preconditioner = options.preconditioner;
  return key;
}

}  // namespace p3d::serve
