#include "serve/job_engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "obs/ring.h"
#include "obs/trace.h"
#include "place/instrument.h"
#include "place/monitor.h"
#include "runtime/thread_pool.h"
#include "util/log.h"
#include "util/timer.h"

namespace p3d::serve {

struct JobEngine::Job {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::atomic<bool> cancel{false};
  util::Timer queued;  // starts at submit; start_deadline_s is measured on it
  JobResult result;

  // Live-telemetry fields: written by the job's HeartbeatObserver on the
  // worker thread, read by the watchdog and SnapshotJobs. `phase` holds the
  // placer's phase-name literals, so the pointer is always dereferenceable.
  std::atomic<const char*> phase{nullptr};
  std::atomic<int> phase_round{-1};
  std::atomic<long long> heartbeats{0};
  std::atomic<std::int64_t> last_beat_ns{0};  // on the engine clock
  std::atomic<bool> stalled{false};           // clears on the next beat
  std::atomic<bool> ever_stalled{false};
};

// Engine-owned observer attached ahead of the user's observers: every phase
// boundary becomes one heartbeat. Deliberately writes no metrics — the
// heartbeat timestamps are wall-clock and must never enter the job's
// deterministic registry.
class JobEngine::HeartbeatObserver : public place::PhaseObserver {
 public:
  HeartbeatObserver(Job* job, const util::Timer* clock)
      : job_(job), clock_(clock) {}

  void OnPhase(const char* phase, int round, const place::ObjectiveEvaluator&,
               const place::GlobalPlaceStats*) override {
    job_->phase.store(phase, std::memory_order_relaxed);
    job_->phase_round.store(round, std::memory_order_relaxed);
    job_->last_beat_ns.store(clock_->Nanos(), std::memory_order_relaxed);
    job_->heartbeats.fetch_add(1, std::memory_order_relaxed);
    job_->stalled.store(false, std::memory_order_relaxed);
    obs::RingNote("serve.heartbeat", static_cast<std::int64_t>(job_->id));
  }

 private:
  Job* const job_;
  const util::Timer* const clock_;
};

bool JobEngine::QueueOrder::operator()(const Job* a, const Job* b) const {
  if (a->spec.priority != b->spec.priority) {
    return a->spec.priority > b->spec.priority;  // higher priority first
  }
  return a->id < b->id;  // then submission order
}

namespace {

int ResolveBudget(const JobEngineOptions& options, int num_workers) {
  if (options.thread_budget > 0) return options.thread_budget;
  return num_workers > 1 ? 1 : 0;  // 0 = unlimited (serial engine)
}

}  // namespace

JobEngine::JobEngine(const JobEngineOptions& options)
    : num_workers_(std::max(1, options.num_workers)),
      thread_budget_(ResolveBudget(options, std::max(1, options.num_workers))),
      stall_timeout_s_(std::max(0.0, options.stall_timeout_s)),
      watchdog_poll_s_(std::max(0.01, options.watchdog_poll_s)),
      fea_cache_(options.fea_cache) {
  workers_.reserve(static_cast<std::size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (stall_timeout_s_ > 0.0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

JobEngine::~JobEngine() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
    // Queued jobs will never run; complete them as cancelled so Wait()ers
    // unblock. Running jobs get the flag and stop at their next boundary.
    for (auto& [id, job] : jobs_) {
      job->cancel.store(true, std::memory_order_relaxed);
      if (job->state == JobState::kQueued) {
        queue_.erase(job.get());
        job->state = JobState::kDone;
        job->result.status =
            util::CancelledError("job cancelled: engine shut down");
        ++cancelled_;
      }
    }
    done_cv_.notify_all();
  }
  work_cv_.notify_all();
  watchdog_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  if (watchdog_.joinable()) watchdog_.join();
}

util::StatusOr<JobHandle> JobEngine::Submit(JobSpec spec) {
  if (spec.netlist == nullptr) {
    return util::InvalidArgumentError("JobEngine::Submit: null netlist");
  }
  if (!spec.netlist->finalized()) {
    return util::FailedPreconditionError(
        "JobEngine::Submit: netlist is not finalized");
  }
  if (spec.start_deadline_s < 0.0) {
    return util::InvalidArgumentError(
        "JobEngine::Submit: negative start deadline");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (stop_) {
    return util::FailedPreconditionError(
        "JobEngine::Submit: engine is shutting down");
  }
  const std::uint64_t id = ++next_id_;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->spec = std::move(spec);
  if (job->spec.name.empty()) job->spec.name = "job-" + std::to_string(id);
  queue_.insert(job.get());
  jobs_.emplace(id, std::move(job));
  ++submitted_;
  obs::MetricAdd("serve/jobs_submitted", 1);
  work_cv_.notify_one();
  return JobHandle{id};
}

util::StatusOr<JobState> JobEngine::Poll(JobHandle handle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(handle.id);
  if (it == jobs_.end()) {
    return util::NotFoundError("JobEngine::Poll: unknown job handle");
  }
  return it->second->state;
}

const JobResult* JobEngine::Wait(JobHandle handle) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(handle.id);
  if (it == jobs_.end()) return nullptr;
  Job* job = it->second.get();
  done_cv_.wait(lock, [&] { return job->state == JobState::kDone; });
  return &job->result;
}

const JobResult* JobEngine::Result(JobHandle handle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(handle.id);
  if (it == jobs_.end() || it->second->state != JobState::kDone) {
    return nullptr;
  }
  return &it->second->result;
}

const JobSpec* JobEngine::Spec(JobHandle handle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(handle.id);
  return it == jobs_.end() ? nullptr : &it->second->spec;
}

bool JobEngine::Cancel(JobHandle handle) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(handle.id);
  if (it == jobs_.end()) return false;
  Job* job = it->second.get();
  if (job->state == JobState::kDone) return false;
  job->cancel.store(true, std::memory_order_relaxed);
  if (job->state == JobState::kQueued) {
    queue_.erase(job);
    // kRunning until the callback returns (same ordering as FinishJob): a
    // Wait()er must not unblock mid-callback, and a racing second Cancel()
    // sees a "running" job whose flag is already set — a harmless no-op.
    job->state = JobState::kRunning;
    job->result.status = util::CancelledError("job cancelled while queued");
    ++cancelled_;
    obs::MetricAdd("serve/jobs_cancelled", 1);
    CompletionCallback callback = on_complete_;
    lock.unlock();
    if (callback) {
      std::lock_guard<std::mutex> serialize(callback_mutex_);
      callback(JobHandle{job->id}, job->spec.name, job->result);
    }
    lock.lock();
    job->state = JobState::kDone;
    done_cv_.notify_all();
  }
  return true;
}

void JobEngine::WaitAll() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    for (const auto& [id, job] : jobs_) {
      if (job->state != JobState::kDone) return false;
    }
    return true;
  });
}

void JobEngine::SetCompletionCallback(CompletionCallback callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_complete_ = std::move(callback);
}

JobEngine::Stats JobEngine::GetStats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.cancelled = cancelled_;
    s.failed = failed_;
    s.stalled = stalls_;
  }
  s.fea_cache = fea_cache_.GetStats();
  return s;
}

std::vector<JobEngine::JobView> JobEngine::SnapshotJobs() const {
  const std::int64_t now_ns = clock_.Nanos();
  std::vector<JobView> views;
  std::lock_guard<std::mutex> lock(mutex_);
  views.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {  // std::map: submission order
    JobView v;
    v.id = id;
    v.name = job->spec.name;
    v.state = job->state;
    v.priority = job->spec.priority;
    if (const char* phase = job->phase.load(std::memory_order_relaxed)) {
      v.phase = phase;
    }
    v.round = job->phase_round.load(std::memory_order_relaxed);
    v.heartbeats = job->heartbeats.load(std::memory_order_relaxed);
    if (job->state == JobState::kRunning && v.heartbeats > 0) {
      v.since_beat_s =
          static_cast<double>(
              now_ns - job->last_beat_ns.load(std::memory_order_relaxed)) *
          1e-9;
    }
    v.wall_s = job->queued.Seconds();
    v.stalled = job->stalled.load(std::memory_order_relaxed);
    v.ever_stalled = job->ever_stalled.load(std::memory_order_relaxed);
    v.cancel_requested = job->cancel.load(std::memory_order_relaxed);
    views.push_back(std::move(v));
  }
  return views;
}

void JobEngine::WatchdogLoop() {
  const std::int64_t timeout_ns =
      static_cast<std::int64_t>(stall_timeout_s_ * 1e9);
  for (;;) {
    struct Stall {
      std::uint64_t id;
      std::string name;
      const char* phase;
      double since_s;
    };
    std::vector<Stall> fresh;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      watchdog_cv_.wait_for(
          lock,
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(watchdog_poll_s_)),
          [&] { return stop_; });
      if (stop_) return;
      const std::int64_t now_ns = clock_.Nanos();
      for (const auto& [id, job] : jobs_) {
        if (job->state != JobState::kRunning) continue;
        // Jobs that never reached a phase boundary are not watched: the
        // first heartbeat arms the timer (arming on start would misfire on
        // a long global phase right after a worker picks the job up).
        if (job->heartbeats.load(std::memory_order_relaxed) == 0) continue;
        const std::int64_t beat =
            job->last_beat_ns.load(std::memory_order_relaxed);
        if (now_ns - beat <= timeout_ns) continue;
        if (job->stalled.exchange(true, std::memory_order_relaxed)) continue;
        job->ever_stalled.store(true, std::memory_order_relaxed);
        ++stalls_;
        fresh.push_back(Stall{id, job->spec.name,
                              job->phase.load(std::memory_order_relaxed),
                              static_cast<double>(now_ns - beat) * 1e-9});
      }
    }
    // Report outside the lock: the black-box dump does real I/O.
    for (const Stall& s : fresh) {
      obs::MetricAdd("serve/watchdog_stalls", 1);
      obs::TraceInstant("serve.watchdog_stall");
      obs::RingNote("serve.watchdog_stall",
                    static_cast<std::int64_t>(s.id));
      util::LogWarn(
          "watchdog: job %llu (%s) stalled %.1fs past phase '%s' "
          "(timeout %.1fs)",
          static_cast<unsigned long long>(s.id), s.name.c_str(), s.since_s,
          s.phase != nullptr ? s.phase : "<none>", stall_timeout_s_);
      obs::DumpBlackBox("watchdog_stall");
    }
  }
}

void JobEngine::WorkerLoop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = *queue_.begin();
      queue_.erase(queue_.begin());
      job->state = JobState::kRunning;
    }
    RunJob(job);
    FinishJob(job);
  }
}

void JobEngine::RunJob(Job* job) {
  obs::TraceScope trace("serve.job");
  util::Timer timer;
  JobResult& out = job->result;
  out.metrics = std::make_unique<obs::MetricsRegistry>();

  if (job->cancel.load(std::memory_order_relaxed)) {
    out.status = util::CancelledError("job cancelled before start");
    out.wall_s = timer.Seconds();
    return;
  }
  if (job->spec.start_deadline_s > 0.0 &&
      job->queued.Seconds() > job->spec.start_deadline_s) {
    out.status = util::CancelledError(
        "job cancelled: start deadline expired while queued");
    out.wall_s = timer.Seconds();
    return;
  }

  auto placer_or =
      place::Placer3D::Create(*job->spec.netlist, job->spec.params);
  if (!placer_or.ok()) {
    out.status = placer_or.status();
    out.wall_s = timer.Seconds();
    return;
  }
  place::Placer3D placer = *std::move(placer_or);

  place::RunOptions options = job->spec.options;
  options.cancel = &job->cancel;

  // Lease the shared FEA assembly BEFORE installing the per-job metrics
  // scope: cache hit/miss counters are engine-level and must not enter the
  // job's deterministic dump. The lease outlives the scope below (declared
  // first => destroyed last), so its release also stays out of the dump.
  FeaContextLease lease;
  if (options.use_solver_cache &&
      (options.with_fea || options.fea_per_phase ||
       job->spec.params.fea_per_pass)) {
    lease = fea_cache_.Acquire(
        FeaKeyFor(job->spec.params, options, placer.chip()),
        options.warm_start);
    options.fea_context = lease.context();
  } else {
    options.fea_context = nullptr;
  }

  // Clamp the job's inner parallelism while it shares the machine with
  // sibling jobs (DESIGN.md §5). Budget 0 = serial engine, job runs free.
  std::optional<runtime::ScopedThreadBudget> budget;
  if (thread_budget_ > 0) budget.emplace(thread_budget_);

  obs::ScopedThreadMetrics metrics_scope(out.metrics.get());
  // Heartbeats go first so the watchdog sees a beat even if a later
  // observer blocks; the anomaly monitor reads the per-job registry, so it
  // sits inside the metrics scope.
  HeartbeatObserver heartbeat(job, &clock_);
  placer.AddPhaseObserver(&heartbeat);
  place::PhaseMetricsSampler sampler;
  placer.AddPhaseObserver(&sampler);
  place::AnomalyMonitor monitor;
  placer.AddPhaseObserver(&monitor);
  for (place::PhaseObserver* observer : job->spec.observers) {
    placer.AddPhaseObserver(observer);
  }

  util::StatusOr<place::PlacementResult> result = placer.Run(options);
  out.phases = sampler.samples();
  if (result.ok()) {
    out.placement = *std::move(result);
    out.status = util::Status::Ok();
  } else {
    out.status = result.status();
  }
  out.metrics_dump = out.metrics->DumpDeterministic();
  out.wall_s = timer.Seconds();
  out.stalled = job->ever_stalled.load(std::memory_order_relaxed);
  out.anomalies = static_cast<long long>(monitor.anomalies().size());
  if (util::IsCancelled(out.status)) {
    // A cancelled run is a black-box trigger like any other anomaly.
    obs::DumpBlackBox("job_cancelled");
  }
}

void JobEngine::FinishJob(Job* job) {
  CompletionCallback callback;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->result.status.ok()) {
      ++completed_;
      obs::MetricAdd("serve/jobs_completed", 1);
    } else if (util::IsCancelled(job->result.status)) {
      ++cancelled_;
      obs::MetricAdd("serve/jobs_cancelled", 1);
    } else {
      ++failed_;
      obs::MetricAdd("serve/jobs_failed", 1);
    }
    callback = on_complete_;
  }
  // Fire the callback BEFORE flipping the state to done: Wait()/WaitAll()
  // must not return while a completion callback is still running (a caller
  // streaming progress would see its summary print before the last job's
  // line). The job stays kRunning for Poll() until the callback returns.
  if (callback) {
    std::lock_guard<std::mutex> serialize(callback_mutex_);
    callback(JobHandle{job->id}, job->spec.name, job->result);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->state = JobState::kDone;
    done_cv_.notify_all();
  }
}

FeaCacheKey FeaKeyFor(const place::PlacerParams& params,
                      const place::RunOptions& options,
                      const place::Chip& chip) {
  FeaCacheKey key;
  key.stack = params.stack;
  key.stack.num_layers = params.num_layers;  // what SyncStack() enforces
  key.chip = thermal::ChipExtent{chip.width(), chip.height()};
  key.fea.nx = params.fea_nx;
  key.fea.ny = params.fea_ny;
  key.fea.cg.threads = params.threads;
  key.fea.cg.preconditioner = options.preconditioner;
  return key;
}

}  // namespace p3d::serve
