// JobEngine — the concurrent placement-job engine (DESIGN.md §9).
//
// A long-lived engine that accepts many placement jobs (netlist + params +
// RunOptions + priority + optional start deadline), schedules them on a
// bounded worker pool, and exposes poll/wait/cancel semantics per job.
//
// Contracts:
//   * Determinism — a job's placement and deterministic metrics dump are
//     byte-identical whether it ran alone or among 100 concurrent jobs, at
//     any worker count. Jobs share no mutable solver state (the FEA cache
//     shares only the immutable assembly), each job gets a private
//     MetricsRegistry via a thread-local override, and per-job seeds come
//     from the caller (the manifest loader derives them with
//     runtime::DeriveSeed, independent of scheduling).
//   * No oversubscription — when the engine runs jobs concurrently, each
//     job's inner parallelism is clamped to `thread_budget` (default 1) via
//     runtime::ScopedThreadBudget, so total OS threads stay bounded by
//     num_workers instead of num_workers x PlacerParams::threads
//     (DESIGN.md §5).
//   * Cancellation — Cancel() on a queued job completes it immediately with
//     kCancelled; on a running job it sets a flag the placer polls at every
//     phase boundary, so the job stops (and releases its FEA-cache lease)
//     within one phase.
//   * Priority — the ready queue is ordered by (priority descending,
//     submission order ascending): a high-priority job admitted late starts
//     before queued low-priority jobs. No preemption.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "netlist/netlist.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "place/placer.h"
#include "serve/fea_cache.h"
#include "util/status.h"
#include "util/timer.h"

namespace p3d::serve {

/// One placement job. The netlist must outlive the engine; the RunOptions'
/// `cancel` and `fea_context` fields are engine-owned and any caller-set
/// values are overwritten.
struct JobSpec {
  std::string name;  // report label; "job-<id>" when empty
  const netlist::Netlist* netlist = nullptr;
  place::PlacerParams params;
  place::RunOptions options;
  int priority = 0;            // higher starts earlier
  double start_deadline_s = 0.0;  // > 0: cancel if not started in time
  // Reporting identity (batch report's run_report.circuit / params.scale);
  // purely informational, never used by the engine itself.
  std::string circuit;
  double circuit_scale = 1.0;
  // Extra phase observers attached before Run (auditors, test probes).
  std::vector<place::PhaseObserver*> observers;
};

struct JobHandle {
  std::uint64_t id = 0;
};

enum class JobState { kQueued, kRunning, kDone };

/// Everything one finished job produced. Owned by the engine; pointers from
/// Wait()/Result() stay valid for the engine's lifetime.
struct JobResult {
  util::Status status;               // ok, kCancelled, or the run's error
  place::PlacementResult placement;  // meaningful only when status.ok()
  std::vector<obs::PhaseSample> phases;
  std::unique_ptr<obs::MetricsRegistry> metrics;  // per-job registry
  std::string metrics_dump;  // DumpDeterministic() of `metrics`
  double wall_s = 0.0;       // worker wall-clock inside the job
  bool stalled = false;      // watchdog flagged this job at least once
  long long anomalies = 0;   // convergence anomalies (place::AnomalyMonitor)
};

struct JobEngineOptions {
  int num_workers = 1;
  /// Per-job inner-thread budget. 0 = policy default: 1 when num_workers > 1
  /// (concurrent jobs must not oversubscribe), unlimited when jobs run one
  /// at a time (the job's own PlacerParams::threads rules).
  int thread_budget = 0;
  FeaContextCache::Options fea_cache;
  /// > 0: a watchdog thread flags any running job whose last phase heartbeat
  /// is older than this many seconds (and triggers a black-box dump). The
  /// flag clears on the next heartbeat; JobResult::stalled stays sticky.
  double stall_timeout_s = 0.0;
  /// Watchdog scan period. Only meaningful with stall_timeout_s > 0.
  double watchdog_poll_s = 0.25;
};

class JobEngine {
 public:
  explicit JobEngine(const JobEngineOptions& options = {});
  /// Cancels every queued job, flags running ones, and joins the workers.
  ~JobEngine();

  JobEngine(const JobEngine&) = delete;
  JobEngine& operator=(const JobEngine&) = delete;

  /// Validates and enqueues a job. Errors: null/unfinalized netlist,
  /// negative deadline, engine already shutting down.
  util::StatusOr<JobHandle> Submit(JobSpec spec);

  /// Current state of a job; kNotFound for an unknown handle.
  util::StatusOr<JobState> Poll(JobHandle handle) const;

  /// Blocks until the job is done; nullptr for an unknown handle.
  const JobResult* Wait(JobHandle handle);

  /// Non-blocking result access; nullptr while the job is not done (or the
  /// handle is unknown).
  const JobResult* Result(JobHandle handle) const;

  /// The spec a job was submitted with (report building); nullptr for an
  /// unknown handle. Stable for the engine's lifetime.
  const JobSpec* Spec(JobHandle handle) const;

  /// Requests cancellation. Returns true when the request was delivered
  /// (the job was queued — completed immediately — or running — flagged);
  /// false when the job is already done or unknown.
  bool Cancel(JobHandle handle);

  /// Blocks until every submitted job is done.
  void WaitAll();

  /// Invoked on the completing worker thread, serialized (one callback at a
  /// time), after the result is stored. The job reads kRunning until the
  /// callback returns — Wait()/WaitAll() never unblock mid-callback. Set
  /// before submitting.
  using CompletionCallback =
      std::function<void(JobHandle, const std::string& name,
                         const JobResult& result)>;
  void SetCompletionCallback(CompletionCallback callback);

  struct Stats {
    long long submitted = 0;
    long long completed = 0;  // status.ok()
    long long cancelled = 0;  // IsCancelled(status)
    long long failed = 0;     // any other non-OK status
    long long stalled = 0;    // watchdog stall detections (flag events)
    FeaContextCache::Stats fea_cache;
  };
  Stats GetStats() const;

  /// Point-in-time view of one job, for live telemetry (/jobs) and the
  /// heartbeat stream. Heartbeats fire at every placer phase boundary.
  struct JobView {
    std::uint64_t id = 0;
    std::string name;
    JobState state = JobState::kQueued;
    int priority = 0;
    std::string phase;     // last phase boundary ("" before the first)
    int round = -1;
    long long heartbeats = 0;
    double since_beat_s = 0.0;  // seconds since the last beat (running only)
    double wall_s = 0.0;        // seconds since submit
    bool stalled = false;       // currently flagged by the watchdog
    bool ever_stalled = false;  // sticky
    bool cancel_requested = false;
  };
  /// All jobs the engine knows, in submission order.
  std::vector<JobView> SnapshotJobs() const;

  /// Resolved watchdog configuration (0 = disabled).
  double stall_timeout_s() const { return stall_timeout_s_; }

  int num_workers() const { return num_workers_; }
  /// Resolved per-job inner-thread budget; 0 = unlimited.
  int job_thread_budget() const { return thread_budget_; }

 private:
  struct Job;
  struct QueueOrder {
    bool operator()(const Job* a, const Job* b) const;
  };
  class HeartbeatObserver;

  void WorkerLoop();
  void RunJob(Job* job);
  /// Stores the terminal state, bumps counters, notifies waiters, and fires
  /// the completion callback. Takes the (unlocked) mutex itself.
  void FinishJob(Job* job);
  void WatchdogLoop();

  const int num_workers_;
  const int thread_budget_;
  const double stall_timeout_s_;
  const double watchdog_poll_s_;
  FeaContextCache fea_cache_;
  util::Timer clock_;  // engine epoch; heartbeat timestamps live on it

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait for queue/stop
  std::condition_variable done_cv_;  // Wait/WaitAll wait for completions
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::set<Job*, QueueOrder> queue_;
  std::uint64_t next_id_ = 0;
  bool stop_ = false;
  long long submitted_ = 0;
  long long completed_ = 0;
  long long cancelled_ = 0;
  long long failed_ = 0;
  long long stalls_ = 0;  // watchdog flag events
  CompletionCallback on_complete_;

  std::mutex callback_mutex_;  // serializes completion callbacks
  std::vector<std::thread> workers_;
  std::condition_variable watchdog_cv_;  // watchdog waits on mutex_/stop_
  std::thread watchdog_;
};

/// The FeaContextCache key a run with these parameters/options uses —
/// mirrors, field for field, the FeaOptions the placer's internal FEA
/// runner builds, so an engine-leased context is interchangeable with one
/// the placer would have built itself.
FeaCacheKey FeaKeyFor(const place::PlacerParams& params,
                      const place::RunOptions& options,
                      const place::Chip& chip);

}  // namespace p3d::serve
