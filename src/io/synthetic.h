// Synthetic benchmark generator standing in for the IBM-PLACE suite.
//
// The paper evaluates on ibm01..ibm18 (its Table 1). Those files are not
// redistributable, so this generator produces circuits whose *published*
// statistics match Table 1 — cell count and total cell area — together with
// realistic structure:
//   * standard-cell geometry: one common row height, quantized widths with a
//     decaying width distribution;
//   * ~1 net per cell with a power-law degree distribution (most nets are
//     2-4 pins, heavy tail up to ~40 pins), matching the IBM .nets profile;
//   * *index locality*: net members are drawn from a window around a seed
//     cell whose size follows a Rent-like geometric distribution, so good
//     placements exist and optimization is meaningful;
//   * one driver (output pin) per net; switching activities drawn uniformly
//     from [0.05, 0.25].
//
// A `scale` parameter shrinks circuits proportionally (cells and area) so the
// full paper sweep fits in CI time; scale = 1 reproduces Table 1 sizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "place/chip.h"

namespace p3d::io {

struct SyntheticSpec {
  std::string name;
  std::int32_t num_cells = 0;
  double total_area_m2 = 0.0;     // movable-cell area
  double nets_per_cell = 1.05;    // IBM-PLACE averages slightly above 1
  double rent_locality = 0.75;    // P(window stays small); higher = more local
  // Fixed IO pads appended after the core cells (the Bookshelf/IBM-PLACE
  // situation): each pad drives one pad net into 1-2 random core cells.
  // Positions are not part of the netlist; see PlacePadRing.
  std::int32_t num_pads = 0;
  std::uint64_t seed = 1;
};

/// Table 1 of the paper: name, cell count, and cell area (mm^2) of
/// ibm01..ibm18. `scale` multiplies both cell count and area.
std::vector<SyntheticSpec> Table1Specs(double scale = 1.0);

/// Returns the spec of a single Table 1 circuit ("ibm01".."ibm18").
SyntheticSpec Table1Spec(const std::string& name, double scale = 1.0);

/// The scale tier: fixed-size presets for full-flow scaling work, sized
/// relative to ibm18 (the largest Table 1 circuit, 210k cells):
///   * "lite"   — 100k cells, CI-sized determinism/audit coverage;
///   * "scale1" — 210k cells / 0.988 mm^2, the ibm18 operating point;
///   * "mega"   — 1M cells at the ibm18 area density, the stress preset.
/// All presets keep num_pads = 0 so the generator RNG stream is a pure
/// function of (num_cells, seed) and results stay reproducible.
std::vector<SyntheticSpec> ScaleTierSpecs();

/// Returns a single scale-tier preset ("lite", "scale1", "mega").
SyntheticSpec ScaleTierSpec(const std::string& name);

/// Generates the netlist for a spec. The returned netlist is finalized.
netlist::Netlist Generate(const SyntheticSpec& spec);

/// Positions the netlist's fixed cells evenly along a ring just outside the
/// die outline (layer 0), the usual IO-pad arrangement; movable entries of
/// `placement` are untouched. `placement` must already be sized to
/// nl.NumCells(). Feed the result to Placer3D::Run(initial, ...).
void PlacePadRing(const netlist::Netlist& nl, double die_width,
                  double die_height, place::Placement* placement);

}  // namespace p3d::io
