// SVG export of 3D placements — one panel per layer, cells colored either
// by layer (structure view) or by temperature (thermal view). Intended for
// quick visual inspection of placer output; no external dependencies.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "place/chip.h"

namespace p3d::io {

struct SvgOptions {
  double panel_px = 360.0;     // pixel width of each layer panel
  double margin_px = 24.0;     // spacing around and between panels
  bool draw_rows = true;       // light horizontal row bands
  // Optional per-cell scalar (e.g. temperature or power). When non-empty it
  // drives a blue->red color ramp; otherwise cells are tinted per layer.
  std::vector<double> cell_scalar;
  std::string title;
};

/// Renders the placement to an SVG string.
std::string RenderPlacementSvg(const netlist::Netlist& nl,
                               const place::Chip& chip,
                               const place::Placement& placement,
                               const SvgOptions& options = {});

/// Convenience: renders and writes to a file. Returns false on I/O error.
bool WritePlacementSvg(const std::string& path, const netlist::Netlist& nl,
                       const place::Chip& chip,
                       const place::Placement& placement,
                       const SvgOptions& options = {});

}  // namespace p3d::io
