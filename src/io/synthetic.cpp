#include "io/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/log.h"
#include "util/rng.h"

namespace p3d::io {
namespace {

struct Table1Row {
  const char* name;
  std::int32_t cells;
  double area_mm2;
};

// Verbatim from the paper's Table 1 (Benchmark Circuits).
constexpr Table1Row kTable1[] = {
    {"ibm01", 12282, 0.060}, {"ibm02", 19321, 0.086}, {"ibm03", 22207, 0.090},
    {"ibm04", 26633, 0.122}, {"ibm05", 29347, 0.150}, {"ibm06", 32185, 0.117},
    {"ibm07", 45135, 0.197}, {"ibm08", 50977, 0.214}, {"ibm09", 51746, 0.221},
    {"ibm10", 67692, 0.377}, {"ibm11", 68525, 0.287}, {"ibm12", 69663, 0.415},
    {"ibm13", 81508, 0.326}, {"ibm14", 146009, 0.680}, {"ibm15", 158244, 0.634},
    {"ibm16", 182137, 0.892}, {"ibm17", 183102, 1.040}, {"ibm18", 210323, 0.988},
};

SyntheticSpec SpecFromRow(const Table1Row& row, double scale,
                          std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = row.name;
  spec.num_cells =
      std::max<std::int32_t>(16, static_cast<std::int32_t>(
                                     std::lround(row.cells * scale)));
  spec.total_area_m2 = row.area_mm2 * 1e-6 * scale;  // mm^2 -> m^2, scaled
  spec.seed = seed;
  return spec;
}

/// Net degree sampler approximating the IBM-PLACE profile: mass concentrated
/// on 2-4 pins with a geometric tail capped at 40.
std::int32_t SampleNetDegree(util::Rng& rng) {
  const double u = rng.NextDouble();
  if (u < 0.55) return 2;
  if (u < 0.75) return 3;
  if (u < 0.86) return 4;
  // Geometric tail: degree 5.. with ratio ~0.7.
  std::int32_t d = 5;
  while (d < 40 && rng.NextDouble() < 0.7) ++d;
  return d;
}

/// Window half-size around a net's seed cell: Rent-like, mostly small, with
/// occasional global nets spanning the whole index range.
std::int32_t SampleWindow(util::Rng& rng, std::int32_t num_cells,
                          double locality) {
  std::int32_t w = 8;
  while (w < num_cells && rng.NextDouble() > locality) w *= 4;
  return std::min(w, num_cells);
}

}  // namespace

std::vector<SyntheticSpec> Table1Specs(double scale) {
  std::vector<SyntheticSpec> specs;
  specs.reserve(std::size(kTable1));
  std::uint64_t seed = 1;
  for (const Table1Row& row : kTable1) {
    specs.push_back(SpecFromRow(row, scale, seed++));
  }
  return specs;
}

SyntheticSpec Table1Spec(const std::string& name, double scale) {
  std::uint64_t seed = 1;
  for (const Table1Row& row : kTable1) {
    if (name == row.name) return SpecFromRow(row, scale, seed);
    ++seed;
  }
  throw std::invalid_argument("unknown Table 1 circuit: " + name);
}

std::vector<SyntheticSpec> ScaleTierSpecs() {
  // All tiers share ibm18's area-per-cell so row geometry (and therefore the
  // legalization workload per cell) is comparable across the tier.
  constexpr double kIbm18AreaPerCellM2 = 0.988e-6 / 210323.0;
  struct Tier {
    const char* name;
    std::int32_t cells;
    std::uint64_t seed;
  };
  constexpr Tier kTiers[] = {
      {"lite", 100000, 181},
      {"scale1", 210323, 18},
      {"mega", 1000000, 1801},
  };
  std::vector<SyntheticSpec> specs;
  specs.reserve(std::size(kTiers));
  for (const Tier& t : kTiers) {
    SyntheticSpec spec;
    spec.name = t.name;
    spec.num_cells = t.cells;
    spec.total_area_m2 = kIbm18AreaPerCellM2 * t.cells;
    spec.seed = t.seed;
    specs.push_back(std::move(spec));
  }
  return specs;
}

SyntheticSpec ScaleTierSpec(const std::string& name) {
  for (SyntheticSpec& spec : ScaleTierSpecs()) {
    if (spec.name == name) return spec;
  }
  throw std::invalid_argument("unknown scale tier: " + name);
}

netlist::Netlist Generate(const SyntheticSpec& spec) {
  assert(spec.num_cells > 1);
  util::Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 0x1234567ULL);
  netlist::Netlist nl;

  // --- cells -------------------------------------------------------------
  // One standard-cell row height for all cells; widths are site-quantized
  // multiples with a decaying distribution, then rescaled so the total area
  // matches the spec exactly.
  const double avg_area = spec.total_area_m2 / spec.num_cells;
  // Aspect: average cell is ~3 sites wide at width ~= 3 * height.
  const double row_height = std::sqrt(avg_area / 3.0);
  std::vector<int> sites(static_cast<std::size_t>(spec.num_cells));
  double site_sum = 0.0;
  for (auto& s : sites) {
    // 1..12 sites, geometric-ish decay, mean ~3.
    int n = 1 + static_cast<int>(rng.NextBounded(3));
    while (n < 12 && rng.NextDouble() < 0.25) n += 1 + static_cast<int>(rng.NextBounded(3));
    s = std::min(n, 12);
    site_sum += s;
  }
  const double site_width =
      spec.total_area_m2 / (row_height * site_sum);  // exact-area site pitch
  for (std::int32_t c = 0; c < spec.num_cells; ++c) {
    nl.AddCell(spec.name + "_c" + std::to_string(c),
               sites[static_cast<std::size_t>(c)] * site_width, row_height,
               /*fixed=*/false);
  }

  // --- nets ----------------------------------------------------------------
  const auto num_nets = static_cast<std::int32_t>(
      std::lround(spec.nets_per_cell * spec.num_cells));
  std::vector<std::int32_t> members;
  std::vector<bool> used(static_cast<std::size_t>(spec.num_cells), false);
  for (std::int32_t n = 0; n < num_nets; ++n) {
    const std::int32_t degree =
        std::min<std::int32_t>(SampleNetDegree(rng), spec.num_cells);
    const auto seed_cell =
        static_cast<std::int32_t>(rng.NextBounded(
            static_cast<std::uint64_t>(spec.num_cells)));
    // Cap the window at the circuit size: on tiny circuits an uncapped
    // window made num_cells - window negative, and the clamp below then
    // produced negative candidate cell ids (caught by Netlist::Finalize).
    const std::int32_t window = std::min<std::int32_t>(
        spec.num_cells,
        std::max<std::int32_t>(
            degree * 2, SampleWindow(rng, spec.num_cells, spec.rent_locality)));
    const std::int32_t lo =
        std::clamp(seed_cell - window / 2, 0, spec.num_cells - window);
    members.clear();
    members.push_back(seed_cell);
    used[static_cast<std::size_t>(seed_cell)] = true;
    int attempts = 0;
    while (static_cast<std::int32_t>(members.size()) < degree &&
           attempts < 16 * degree) {
      const auto cand = static_cast<std::int32_t>(
          lo + static_cast<std::int32_t>(
                   rng.NextBounded(static_cast<std::uint64_t>(window))));
      ++attempts;
      if (used[static_cast<std::size_t>(cand)]) continue;
      used[static_cast<std::size_t>(cand)] = true;
      members.push_back(cand);
    }
    for (const std::int32_t m : members) used[static_cast<std::size_t>(m)] = false;
    if (members.size() < 2) {
      // Degenerate draw (tiny circuit); skip rather than emit a 1-pin net.
      continue;
    }
    // Heavy-tailed switching activities (most nets nearly quiet, a few hot),
    // matching real switching profiles; selective thermal optimization has
    // no leverage under a narrow uniform distribution.
    const double u = rng.NextDouble();
    nl.AddNet(spec.name + "_n" + std::to_string(n),
              /*activity=*/0.01 + 0.49 * u * u * u * u);
    // First member drives the net, the rest are loads (one driver per net).
    nl.AddPin(members[0], netlist::PinDir::kOutput);
    for (std::size_t i = 1; i < members.size(); ++i) {
      nl.AddPin(members[i], netlist::PinDir::kInput);
    }
  }

  // --- fixed IO pads --------------------------------------------------------
  // Appended after the core so a num_pads = 0 spec generates the exact same
  // netlist (and RNG stream) as before the pads existed.
  for (std::int32_t p = 0; p < spec.num_pads; ++p) {
    const std::int32_t pad =
        nl.AddCell(spec.name + "_pad" + std::to_string(p), 1e-6, 1e-6,
                   /*fixed=*/true);
    nl.AddNet(spec.name + "_padnet" + std::to_string(p), /*activity=*/0.15);
    nl.AddPin(pad, netlist::PinDir::kOutput);
    const int loads = 1 + static_cast<int>(rng.NextBounded(2));
    for (int l = 0; l < loads; ++l) {
      nl.AddPin(static_cast<std::int32_t>(rng.NextBounded(
                    static_cast<std::uint64_t>(spec.num_cells))),
                netlist::PinDir::kInput);
    }
  }

  const bool ok = nl.Finalize();
  assert(ok);
  (void)ok;
  util::LogDebug("synthetic %s: %d cells, %d nets, %d pins, area %.4g mm^2",
                 spec.name.c_str(), nl.NumCells(), nl.NumNets(), nl.NumPins(),
                 nl.MovableArea() * 1e6);
  return nl;
}

void PlacePadRing(const netlist::Netlist& nl, double die_width,
                  double die_height, place::Placement* placement) {
  std::vector<std::int32_t> pads;
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    if (nl.cell(c).fixed) pads.push_back(c);
  }
  const double margin = 2e-6;  // just outside the outline
  const std::size_t n = pads.size();
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t i = static_cast<std::size_t>(pads[p]);
    const double t = static_cast<double>(p) / static_cast<double>(n);
    if (t < 0.25) {
      placement->x[i] = 4 * t * die_width;
      placement->y[i] = -margin;
    } else if (t < 0.5) {
      placement->x[i] = die_width + margin;
      placement->y[i] = 4 * (t - 0.25) * die_height;
    } else if (t < 0.75) {
      placement->x[i] = (1 - 4 * (t - 0.5)) * die_width;
      placement->y[i] = die_height + margin;
    } else {
      placement->x[i] = -margin;
      placement->y[i] = 4 * (t - 0.75) * die_height;
    }
    placement->layer[i] = 0;
  }
}

}  // namespace p3d::io
