// Reader/writer for the UCLA Bookshelf placement format used by the
// IBM-PLACE suite (paper reference [16]).
//
// Supported files:
//   .aux    — index file naming the others
//   .nodes  — cell names, dimensions, terminal flags
//   .nets   — hypernets with pin directions and optional pin offsets
//   .pl     — (initial or final) placement; we extend it with an optional
//             trailing layer index for 3D placements
//   .scl    — row descriptions (parsed for the core bounding box)
//
// Bookshelf coordinates are unitless; `unit_m` scales them to metres so the
// rest of the library can stay in SI units.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "place/chip.h"
#include "util/status.h"

namespace p3d::io {

struct BookshelfRow {
  double y = 0.0;       // row bottom, bookshelf units
  double height = 0.0;  // row height
  double x = 0.0;       // leftmost site
  double width = 0.0;   // total row width
};

struct BookshelfDesign {
  netlist::Netlist netlist;
  // Initial positions from the .pl file (cell-center metres), one per cell;
  // layer defaults to 0 when the .pl has no layer column.
  std::vector<double> x;
  std::vector<double> y;
  std::vector<int> layer;
  std::vector<BookshelfRow> rows;  // bookshelf units (informational)
  double unit_m = 1e-6;            // metres per bookshelf unit used when loading
};

/// Loads a design from a .aux file. Errors carry the failing path and line:
/// kIoError when a file cannot be opened, kParseError on malformed content.
/// `unit_m` converts bookshelf length units to metres (IBM-PLACE uses
/// abstract units; 1e-6 treats one unit as a micrometre).
util::Status LoadBookshelf(const std::string& aux_path, double unit_m,
                           BookshelfDesign* out);

/// Parses individual files (exposed for testing). Same error contract as
/// LoadBookshelf.
util::Status ParseNodesFile(const std::string& path, double unit_m,
                            netlist::Netlist* nl);
util::Status ParseNetsFile(const std::string& path, double unit_m,
                           netlist::Netlist* nl);
util::Status ParsePlFile(const std::string& path, double unit_m,
                         const netlist::Netlist& nl, std::vector<double>* x,
                         std::vector<double>* y, std::vector<int>* layer);
util::Status ParseSclFile(const std::string& path,
                          std::vector<BookshelfRow>* rows);

/// Writes a 3D placement as an extended .pl file: `name x y : N layer`.
/// Coordinates are emitted in bookshelf units (divided by unit_m).
bool WritePlFile(const std::string& path, const netlist::Netlist& nl,
                 const std::vector<double>& x, const std::vector<double>& y,
                 const std::vector<int>& layer, double unit_m);

/// Writes a complete Bookshelf design (`<base>.aux/.nodes/.nets/.pl`, plus
/// `.scl` when a chip is given) into `dir`. This makes the synthetic
/// Table-1 replica suite exportable to other placement tools. The initial
/// .pl holds the given placement (or all-zeros when `placement` is null).
/// Returns false and logs on I/O error.
bool WriteBookshelf(const std::string& dir, const std::string& base,
                    const netlist::Netlist& nl, double unit_m,
                    const place::Chip* chip = nullptr,
                    const place::Placement* placement = nullptr);

}  // namespace p3d::io
