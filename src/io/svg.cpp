#include "io/svg.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/log.h"

namespace p3d::io {
namespace {

/// Layer tints (structure view): distinguishable, print-safe.
const char* kLayerFill[] = {"#4e79a7", "#f28e2b", "#59a14f", "#e15759",
                            "#76b7b2", "#edc948", "#b07aa1", "#9c755f",
                            "#bab0ac", "#ff9da7"};

/// Blue -> red ramp for scalar (thermal) views, t in [0, 1].
std::string RampColor(double t) {
  t = std::clamp(t, 0.0, 1.0);
  const int r = static_cast<int>(40 + 215 * t);
  const int g = static_cast<int>(60 + 80 * (1.0 - std::abs(2 * t - 1.0)));
  const int b = static_cast<int>(255 - 215 * t);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
  return buf;
}

}  // namespace

std::string RenderPlacementSvg(const netlist::Netlist& nl,
                               const place::Chip& chip,
                               const place::Placement& placement,
                               const SvgOptions& options) {
  const int layers = chip.num_layers();
  const double scale = options.panel_px / chip.width();
  const double panel_h = chip.height() * scale;
  const double title_h = options.title.empty() ? 0.0 : 20.0;
  const double total_w =
      options.margin_px + layers * (options.panel_px + options.margin_px);
  const double total_h = title_h + panel_h + 2 * options.margin_px + 16.0;

  const bool scalar_view =
      options.cell_scalar.size() == static_cast<std::size_t>(nl.NumCells());
  double s_lo = 0.0, s_hi = 1.0;
  if (scalar_view) {
    s_lo = *std::min_element(options.cell_scalar.begin(),
                             options.cell_scalar.end());
    s_hi = *std::max_element(options.cell_scalar.begin(),
                             options.cell_scalar.end());
    if (s_hi <= s_lo) s_hi = s_lo + 1.0;
  }

  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << total_w
      << "' height='" << total_h << "' viewBox='0 0 " << total_w << " "
      << total_h << "'>\n";
  svg << "<rect width='100%' height='100%' fill='white'/>\n";
  if (!options.title.empty()) {
    svg << "<text x='" << options.margin_px << "' y='16' font-family='monospace'"
        << " font-size='13'>" << options.title << "</text>\n";
  }

  for (int l = 0; l < layers; ++l) {
    const double ox =
        options.margin_px + l * (options.panel_px + options.margin_px);
    const double oy = title_h + options.margin_px;
    svg << "<g transform='translate(" << ox << "," << oy << ")'>\n";
    svg << "<rect x='0' y='0' width='" << options.panel_px << "' height='"
        << panel_h << "' fill='#f7f7f7' stroke='#888'/>\n";
    if (options.draw_rows) {
      for (int r = 0; r < chip.num_rows(); ++r) {
        // y axis flipped: SVG origin is top-left, die origin bottom-left.
        const double y =
            panel_h - (chip.RowBottomY(r) + chip.row_height()) * scale;
        svg << "<rect x='0' y='" << y << "' width='" << options.panel_px
            << "' height='" << chip.row_height() * scale
            << "' fill='#ececec'/>\n";
      }
    }
    for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
      const std::size_t i = static_cast<std::size_t>(c);
      if (placement.layer[i] != l) continue;
      const auto& cell = nl.cell(c);
      const double x = (placement.x[i] - cell.width / 2.0) * scale;
      const double y =
          panel_h - (placement.y[i] + cell.height / 2.0) * scale;
      std::string fill;
      if (scalar_view) {
        fill = RampColor((options.cell_scalar[i] - s_lo) / (s_hi - s_lo));
      } else if (cell.fixed) {
        fill = "#444444";
      } else {
        fill = kLayerFill[static_cast<std::size_t>(l) % std::size(kLayerFill)];
      }
      svg << "<rect x='" << x << "' y='" << y << "' width='"
          << cell.width * scale << "' height='" << cell.height * scale
          << "' fill='" << fill << "' fill-opacity='0.85'/>\n";
    }
    svg << "<text x='2' y='" << panel_h + 13
        << "' font-family='monospace' font-size='11'>layer " << l
        << (l == 0 ? " (heat sink side)" : "") << "</text>\n";
    svg << "</g>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

bool WritePlacementSvg(const std::string& path, const netlist::Netlist& nl,
                       const place::Chip& chip,
                       const place::Placement& placement,
                       const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) {
    util::LogError("svg: cannot write %s", path.c_str());
    return false;
  }
  out << RenderPlacementSvg(nl, chip, placement, options);
  return out.good();
}

}  // namespace p3d::io
