#include "io/bookshelf.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/log.h"

namespace p3d::io {
namespace {

// Strips comments (# to end of line) and leading/trailing whitespace.
std::string CleanLine(std::string line) {
  const auto hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  const auto first = line.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  const auto last = line.find_last_not_of(" \t\r\n");
  return line.substr(first, last - first + 1);
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream iss(line);
  std::string tok;
  while (iss >> tok) tokens.push_back(tok);
  return tokens;
}

/// Reads the next non-empty, non-comment, non-header line.
bool NextDataLine(std::istream& in, std::string* out) {
  std::string line;
  while (std::getline(in, line)) {
    line = CleanLine(line);
    if (line.empty()) continue;
    if (line.rfind("UCLA", 0) == 0) continue;  // format header
    *out = line;
    return true;
  }
  return false;
}

bool ParseKeyCountLine(const std::string& line, const char* key,
                       std::int64_t* value) {
  const auto tokens = Tokenize(line);
  if (tokens.size() < 3 || tokens[0] != key || tokens[1] != ":") return false;
  *value = std::atoll(tokens[2].c_str());
  return true;
}

// Maps cell names to ids while parsing .nets / .pl.
std::unordered_map<std::string, std::int32_t> BuildNameIndex(
    const netlist::Netlist& nl) {
  std::unordered_map<std::string, std::int32_t> index;
  index.reserve(static_cast<std::size_t>(nl.NumCells()));
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    index.emplace(nl.cell(c).name, c);
  }
  return index;
}

std::string DirName(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

}  // namespace

util::Status ParseNodesFile(const std::string& path, double unit_m,
                            netlist::Netlist* nl) {
  std::ifstream in(path);
  if (!in) {
    return util::IoError("bookshelf: cannot open nodes file " + path);
  }
  std::string line;
  std::int64_t num_nodes = -1, num_terminals = 0;
  while (NextDataLine(in, &line)) {
    std::int64_t v;
    if (ParseKeyCountLine(line, "NumNodes", &v)) {
      num_nodes = v;
      continue;
    }
    if (ParseKeyCountLine(line, "NumTerminals", &v)) {
      num_terminals = v;
      continue;
    }
    const auto tokens = Tokenize(line);
    if (tokens.size() < 3) {
      return util::ParseError("bookshelf: bad nodes line in " + path + ": " +
                              line);
    }
    const bool terminal = tokens.size() >= 4 && tokens[3] == "terminal";
    nl->AddCell(tokens[0], std::atof(tokens[1].c_str()) * unit_m,
                std::atof(tokens[2].c_str()) * unit_m, terminal);
  }
  if (num_nodes >= 0 && nl->NumCells() != num_nodes) {
    util::LogWarn("bookshelf: NumNodes=%lld but parsed %d cells",
                  static_cast<long long>(num_nodes), nl->NumCells());
  }
  (void)num_terminals;
  return util::Status::Ok();
}

util::Status ParseNetsFile(const std::string& path, double unit_m,
                           netlist::Netlist* nl) {
  std::ifstream in(path);
  if (!in) {
    return util::IoError("bookshelf: cannot open nets file " + path);
  }
  const auto name_index = BuildNameIndex(*nl);
  std::string line;
  std::int64_t expected_nets = -1, expected_pins = -1;
  std::int64_t pins_parsed = 0;
  std::int32_t pins_remaining = 0;
  while (NextDataLine(in, &line)) {
    std::int64_t v;
    if (ParseKeyCountLine(line, "NumNets", &v)) {
      expected_nets = v;
      continue;
    }
    if (ParseKeyCountLine(line, "NumPins", &v)) {
      expected_pins = v;
      continue;
    }
    auto tokens = Tokenize(line);
    if (tokens[0] == "NetDegree") {
      // "NetDegree : d [name]"
      if (tokens.size() < 3) {
        return util::ParseError("bookshelf: bad NetDegree line in " + path +
                                ": " + line);
      }
      pins_remaining = std::atoi(tokens[2].c_str());
      const std::string net_name =
          tokens.size() >= 4 ? tokens[3]
                             : "net" + std::to_string(nl->NumNets());
      nl->AddNet(net_name);
      continue;
    }
    // Pin line: "cellname I|O|B [: xoff yoff]"
    if (pins_remaining <= 0) {
      return util::ParseError("bookshelf: pin line outside a net in " + path +
                              ": " + line);
    }
    const auto it = name_index.find(tokens[0]);
    if (it == name_index.end()) {
      return util::ParseError("bookshelf: pin references unknown cell " +
                              tokens[0] + " in " + path);
    }
    netlist::PinDir dir = netlist::PinDir::kInput;
    std::size_t next = 1;
    if (tokens.size() > 1 && tokens[1].size() == 1 &&
        std::isalpha(static_cast<unsigned char>(tokens[1][0]))) {
      if (tokens[1] == "O") dir = netlist::PinDir::kOutput;
      next = 2;
    }
    double dx = 0.0, dy = 0.0;
    if (tokens.size() > next && tokens[next] == ":") {
      if (tokens.size() >= next + 3) {
        dx = std::atof(tokens[next + 1].c_str()) * unit_m;
        dy = std::atof(tokens[next + 2].c_str()) * unit_m;
      }
    }
    nl->AddPin(it->second, dir, dx, dy);
    --pins_remaining;
    ++pins_parsed;
  }
  if (expected_nets >= 0 && nl->NumNets() != expected_nets) {
    util::LogWarn("bookshelf: NumNets=%lld but parsed %d",
                  static_cast<long long>(expected_nets), nl->NumNets());
  }
  if (expected_pins >= 0 && pins_parsed != expected_pins) {
    util::LogWarn("bookshelf: NumPins=%lld but parsed %lld",
                  static_cast<long long>(expected_pins),
                  static_cast<long long>(pins_parsed));
  }
  return util::Status::Ok();
}

util::Status ParsePlFile(const std::string& path, double unit_m,
                         const netlist::Netlist& nl, std::vector<double>* x,
                         std::vector<double>* y, std::vector<int>* layer) {
  std::ifstream in(path);
  if (!in) {
    return util::IoError("bookshelf: cannot open pl file " + path);
  }
  const auto name_index = BuildNameIndex(nl);
  x->assign(static_cast<std::size_t>(nl.NumCells()), 0.0);
  y->assign(static_cast<std::size_t>(nl.NumCells()), 0.0);
  layer->assign(static_cast<std::size_t>(nl.NumCells()), 0);
  std::string line;
  while (NextDataLine(in, &line)) {
    const auto tokens = Tokenize(line);
    if (tokens.size() < 3) continue;
    const auto it = name_index.find(tokens[0]);
    if (it == name_index.end()) {
      util::LogWarn("bookshelf: pl references unknown cell %s",
                    tokens[0].c_str());
      continue;
    }
    const std::size_t c = static_cast<std::size_t>(it->second);
    (*x)[c] = std::atof(tokens[1].c_str()) * unit_m;
    (*y)[c] = std::atof(tokens[2].c_str()) * unit_m;
    // Optional ": orientation [layer]" suffix.
    for (std::size_t i = 3; i + 1 < tokens.size(); ++i) {
      if (tokens[i] == ":" && i + 2 < tokens.size()) {
        (*layer)[c] = std::atoi(tokens[i + 2].c_str());
        break;
      }
    }
  }
  return util::Status::Ok();
}

util::Status ParseSclFile(const std::string& path,
                          std::vector<BookshelfRow>* rows) {
  std::ifstream in(path);
  if (!in) {
    return util::IoError("bookshelf: cannot open scl file " + path);
  }
  std::string line;
  BookshelfRow row;
  bool in_row = false;
  double sitewidth = 1.0;
  while (NextDataLine(in, &line)) {
    auto tokens = Tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "CoreRow") {
      in_row = true;
      row = BookshelfRow{};
      sitewidth = 1.0;
      continue;
    }
    if (!in_row) continue;
    if (tokens[0] == "End") {
      rows->push_back(row);
      in_row = false;
      continue;
    }
    if (tokens.size() >= 3 && tokens[1] == ":") {
      const double v = std::atof(tokens[2].c_str());
      if (tokens[0] == "Coordinate") row.y = v;
      else if (tokens[0] == "Height") row.height = v;
      else if (tokens[0] == "Sitewidth") sitewidth = v;
      else if (tokens[0] == "SubrowOrigin") {
        row.x = v;
        // "SubrowOrigin : x NumSites : n"
        for (std::size_t i = 3; i + 2 < tokens.size(); ++i) {
          if (tokens[i] == "NumSites" && tokens[i + 1] == ":") {
            row.width = std::atof(tokens[i + 2].c_str()) * sitewidth;
          }
        }
      }
    }
  }
  return util::Status::Ok();
}

util::Status LoadBookshelf(const std::string& aux_path, double unit_m,
                           BookshelfDesign* out) {
  std::ifstream in(aux_path);
  if (!in) {
    return util::IoError("bookshelf: cannot open aux file " + aux_path);
  }
  const std::string dir = DirName(aux_path);
  std::string nodes, nets, pl, scl;
  std::string line;
  while (NextDataLine(in, &line)) {
    for (const std::string& tok : Tokenize(line)) {
      if (tok.ends_with(".nodes")) nodes = dir + "/" + tok;
      else if (tok.ends_with(".nets")) nets = dir + "/" + tok;
      else if (tok.ends_with(".pl")) pl = dir + "/" + tok;
      else if (tok.ends_with(".scl")) scl = dir + "/" + tok;
    }
  }
  if (nodes.empty() || nets.empty()) {
    return util::ParseError("bookshelf: aux file " + aux_path +
                            " names no .nodes/.nets");
  }
  out->unit_m = unit_m;
  if (util::Status s = ParseNodesFile(nodes, unit_m, &out->netlist); !s.ok())
    return s;
  if (util::Status s = ParseNetsFile(nets, unit_m, &out->netlist); !s.ok())
    return s;
  if (!out->netlist.Finalize()) {
    return util::ParseError("bookshelf: design in " + aux_path +
                            " failed netlist finalization");
  }
  if (!pl.empty()) {
    if (util::Status s =
            ParsePlFile(pl, unit_m, out->netlist, &out->x, &out->y, &out->layer);
        !s.ok())
      return s;
  } else {
    out->x.assign(static_cast<std::size_t>(out->netlist.NumCells()), 0.0);
    out->y.assign(static_cast<std::size_t>(out->netlist.NumCells()), 0.0);
    out->layer.assign(static_cast<std::size_t>(out->netlist.NumCells()), 0);
  }
  if (!scl.empty()) {
    if (util::Status s = ParseSclFile(scl, &out->rows); !s.ok()) return s;
  }
  return util::Status::Ok();
}

bool WriteBookshelf(const std::string& dir, const std::string& base,
                    const netlist::Netlist& nl, double unit_m,
                    const place::Chip* chip,
                    const place::Placement* placement) {
  const std::string stem = dir + "/" + base;

  // --- .nodes ---------------------------------------------------------------
  {
    std::ofstream f(stem + ".nodes");
    if (!f) {
      util::LogError("bookshelf: cannot write %s.nodes", stem.c_str());
      return false;
    }
    f.precision(12);
    int terminals = 0;
    for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
      if (nl.cell(c).fixed) ++terminals;
    }
    f << "UCLA nodes 1.0\n\nNumNodes : " << nl.NumCells()
      << "\nNumTerminals : " << terminals << "\n";
    for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
      const auto& cell = nl.cell(c);
      f << '\t' << cell.name << '\t' << cell.width / unit_m << '\t'
        << cell.height / unit_m;
      if (cell.fixed) f << "\tterminal";
      f << '\n';
    }
    if (!f.good()) return false;
  }

  // --- .nets ----------------------------------------------------------------
  {
    std::ofstream f(stem + ".nets");
    if (!f) {
      util::LogError("bookshelf: cannot write %s.nets", stem.c_str());
      return false;
    }
    f.precision(12);
    f << "UCLA nets 1.0\n\nNumNets : " << nl.NumNets()
      << "\nNumPins : " << nl.NumPins() << "\n";
    for (std::int32_t n = 0; n < nl.NumNets(); ++n) {
      f << "NetDegree : " << nl.net(n).num_pins << ' ' << nl.net(n).name
        << '\n';
      for (const netlist::Pin& pin : nl.NetPins(n)) {
        f << '\t' << nl.cell(pin.cell).name << ' '
          << (pin.dir == netlist::PinDir::kOutput ? 'O' : 'I') << " : "
          << pin.dx / unit_m << ' ' << pin.dy / unit_m << '\n';
      }
    }
    if (!f.good()) return false;
  }

  // --- .pl --------------------------------------------------------------------
  {
    std::vector<double> zeros;
    const std::vector<double>* x = placement ? &placement->x : nullptr;
    const std::vector<double>* y = placement ? &placement->y : nullptr;
    const std::vector<int>* layer = placement ? &placement->layer : nullptr;
    std::vector<double> zx, zy;
    std::vector<int> zl;
    if (!placement) {
      zx.assign(static_cast<std::size_t>(nl.NumCells()), 0.0);
      zy.assign(static_cast<std::size_t>(nl.NumCells()), 0.0);
      zl.assign(static_cast<std::size_t>(nl.NumCells()), 0);
      x = &zx;
      y = &zy;
      layer = &zl;
    }
    if (!WritePlFile(stem + ".pl", nl, *x, *y, *layer, unit_m)) return false;
    (void)zeros;
  }

  // --- .scl (optional) ---------------------------------------------------------
  if (chip != nullptr) {
    std::ofstream f(stem + ".scl");
    if (!f) {
      util::LogError("bookshelf: cannot write %s.scl", stem.c_str());
      return false;
    }
    f.precision(12);
    f << "UCLA scl 1.0\n\nNumRows : " << chip->num_rows() << "\n";
    for (int r = 0; r < chip->num_rows(); ++r) {
      f << "CoreRow Horizontal\n"
        << "  Coordinate : " << chip->RowBottomY(r) / unit_m << "\n"
        << "  Height : " << chip->row_height() / unit_m << "\n"
        << "  Sitewidth : 1\n"
        << "  SubrowOrigin : 0 NumSites : " << chip->width() / unit_m << "\n"
        << "End\n";
    }
    if (!f.good()) return false;
  }

  // --- .aux --------------------------------------------------------------------
  {
    std::ofstream f(stem + ".aux");
    if (!f) {
      util::LogError("bookshelf: cannot write %s.aux", stem.c_str());
      return false;
    }
    f << "RowBasedPlacement : " << base << ".nodes " << base << ".nets "
      << base << ".pl";
    if (chip != nullptr) f << ' ' << base << ".scl";
    f << '\n';
    if (!f.good()) return false;
  }
  return true;
}

bool WritePlFile(const std::string& path, const netlist::Netlist& nl,
                 const std::vector<double>& x, const std::vector<double>& y,
                 const std::vector<int>& layer, double unit_m) {
  std::ofstream out(path);
  if (!out) {
    util::LogError("bookshelf: cannot write pl file %s", path.c_str());
    return false;
  }
  out.precision(12);
  out << "UCLA pl 1.0\n# placer3d 3D placement (layer index after orientation)\n\n";
  for (std::int32_t c = 0; c < nl.NumCells(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    out << nl.cell(c).name << '\t' << x[i] / unit_m << '\t' << y[i] / unit_m
        << "\t: N " << layer[i];
    if (nl.cell(c).fixed) out << " /FIXED";
    out << '\n';
  }
  return out.good();
}

}  // namespace p3d::io
