// Netlist data model: cells, pins, and (hyper)nets.
//
// The model mirrors what the paper's placer needs and nothing more:
//  * movable standard cells with a width/height footprint,
//  * optional fixed cells (IO pads / terminals),
//  * multi-pin nets, where each pin knows its direction so that the power
//    model (paper Eq. 4-5) can find the *driver* cell of each net and count
//    input pins, and
//  * per-net switching activities a_i.
//
// Construction happens through the mutating Add* API followed by Finalize(),
// which freezes the netlist and builds the cell -> pin adjacency used by all
// placement phases. All queries require a finalized netlist.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace p3d::netlist {

/// Direction of a pin as seen from its cell.
enum class PinDir : std::uint8_t {
  kInput,   // the net drives this cell input
  kOutput,  // this cell drives the net
};

struct Cell {
  std::string name;
  double width = 0.0;   // metres
  double height = 0.0;  // metres
  bool fixed = false;   // fixed cells (pads) never move

  double Area() const { return width * height; }
};

struct Pin {
  std::int32_t cell = -1;
  std::int32_t net = -1;
  PinDir dir = PinDir::kInput;
  // Pin offset from the cell *center*, in metres. IBM-PLACE nets specify
  // offsets; synthetic circuits use (0, 0).
  double dx = 0.0;
  double dy = 0.0;
};

struct Net {
  std::string name;
  double activity = 0.1;  // switching activity a_i in Eq. (4)
  std::int32_t first_pin = 0;
  std::int32_t num_pins = 0;
};

class Netlist {
 public:
  Netlist() = default;

  // ----- construction -----------------------------------------------------

  /// Adds a cell; returns its id. Must be called before Finalize().
  std::int32_t AddCell(std::string name, double width, double height,
                       bool fixed = false);

  /// Starts a new net; returns its id. Pins added afterwards belong to it.
  std::int32_t AddNet(std::string name, double activity = 0.1);

  /// Adds a pin to the most recently added net.
  std::int32_t AddPin(std::int32_t cell, PinDir dir, double dx = 0.0,
                      double dy = 0.0);

  /// Freezes the netlist: computes per-cell pin lists, per-net driver pins,
  /// and input-pin counts. Returns false (and logs) on structural errors
  /// (dangling cell ids, empty nets are tolerated but flagged).
  bool Finalize();

  bool finalized() const { return finalized_; }

  // ----- sizes --------------------------------------------------------------

  std::int32_t NumCells() const { return static_cast<std::int32_t>(cells_.size()); }
  std::int32_t NumNets() const { return static_cast<std::int32_t>(nets_.size()); }
  std::int32_t NumPins() const { return static_cast<std::int32_t>(pins_.size()); }
  std::int32_t NumMovableCells() const { return num_movable_; }

  // ----- element access ------------------------------------------------------

  const Cell& cell(std::int32_t id) const { return cells_[static_cast<std::size_t>(id)]; }
  const Net& net(std::int32_t id) const { return nets_[static_cast<std::size_t>(id)]; }
  const Pin& pin(std::int32_t id) const { return pins_[static_cast<std::size_t>(id)]; }

  // ----- SoA hot-path mirrors ------------------------------------------------
  // Finalize() flattens the fields the placement inner loops touch into
  // per-field arrays: a Cell is ~56 bytes (the name dominates) and a Pin 32,
  // so AoS access streams mostly-dead bytes through the cache. The mirrors
  // hold exactly the values of the structs (width * height for the area), so
  // switching an engine between cell(c).width and CellWidth(c) can never move
  // a placement byte. The struct accessors above stay authoritative for cold
  // paths (names, construction, IO).

  double CellWidth(std::int32_t c) const {
    return cell_width_[static_cast<std::size_t>(c)];
  }
  double CellHeight(std::int32_t c) const {
    return cell_height_[static_cast<std::size_t>(c)];
  }
  /// Exactly cell(c).Area() (the product is precomputed once in Finalize).
  double CellArea(std::int32_t c) const {
    return cell_area_[static_cast<std::size_t>(c)];
  }
  bool CellFixed(std::int32_t c) const {
    return cell_fixed_[static_cast<std::size_t>(c)] != 0;
  }

  /// Pin field mirrors. Together with Net::first_pin/num_pins these form the
  /// arena view of net pin lists: a net's pins are a contiguous slice
  /// [first_pin, first_pin + num_pins) of the flat per-field arrays.
  std::int32_t PinCell(std::int32_t p) const {
    return pin_cell_[static_cast<std::size_t>(p)];
  }
  std::int32_t PinNet(std::int32_t p) const {
    return pin_net_[static_cast<std::size_t>(p)];
  }
  double PinDx(std::int32_t p) const {
    return pin_dx_[static_cast<std::size_t>(p)];
  }
  double PinDy(std::int32_t p) const {
    return pin_dy_[static_cast<std::size_t>(p)];
  }

  std::int32_t NetFirstPin(std::int32_t n) const {
    return nets_[static_cast<std::size_t>(n)].first_pin;
  }
  std::int32_t NetNumPins(std::int32_t n) const {
    return nets_[static_cast<std::size_t>(n)].num_pins;
  }

  /// Pins of net `n`, contiguous by construction.
  std::span<const Pin> NetPins(std::int32_t n) const {
    const Net& net = nets_[static_cast<std::size_t>(n)];
    return {pins_.data() + net.first_pin, static_cast<std::size_t>(net.num_pins)};
  }

  /// Ids of the pins attached to cell `c` (indices into the pin array).
  std::span<const std::int32_t> CellPinIds(std::int32_t c) const {
    const auto start = cell_pin_start_[static_cast<std::size_t>(c)];
    const auto end = cell_pin_start_[static_cast<std::size_t>(c) + 1];
    return {cell_pin_ids_.data() + start, static_cast<std::size_t>(end - start)};
  }

  /// Pin id of the driver (first output pin) of net `n`, or -1 if the net has
  /// no driver (e.g. a pure pad net).
  std::int32_t DriverPin(std::int32_t n) const {
    return driver_pin_[static_cast<std::size_t>(n)];
  }

  /// Cell id of the net's driver, or -1.
  std::int32_t DriverCell(std::int32_t n) const {
    const std::int32_t p = DriverPin(n);
    return p < 0 ? -1 : pins_[static_cast<std::size_t>(p)].cell;
  }

  /// Number of *input* pins on net `n` (n_i^{input pins} in Eq. 5).
  std::int32_t NumInputPins(std::int32_t n) const {
    return num_input_pins_[static_cast<std::size_t>(n)];
  }

  /// Number of *output* pins on net `n` (n_i^{output pins} in Eq. 8).
  std::int32_t NumOutputPins(std::int32_t n) const {
    return static_cast<std::int32_t>(nets_[static_cast<std::size_t>(n)].num_pins) -
           num_input_pins_[static_cast<std::size_t>(n)];
  }

  // ----- aggregate statistics -------------------------------------------------

  /// Total area of movable cells, m^2.
  double MovableArea() const { return movable_area_; }

  /// Mean width/height over movable cells (used to size density bins and the
  /// alpha_ILV sweep range, which the paper centres on the average cell size).
  double AvgCellWidth() const { return avg_width_; }
  double AvgCellHeight() const { return avg_height_; }
  /// Widest movable cell (floorplanning must leave at least this much slack
  /// per row for legalization to be feasible).
  double MaxCellWidth() const { return max_width_; }

  /// Mutable switching activity (set by generators / experiments).
  void SetNetActivity(std::int32_t n, double a) {
    nets_[static_cast<std::size_t>(n)].activity = a;
  }

 private:
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<Pin> pins_;

  // Built by Finalize():
  std::vector<std::int32_t> cell_pin_start_;  // CSR offsets, size NumCells()+1
  std::vector<std::int32_t> cell_pin_ids_;    // CSR payload
  std::vector<std::int32_t> driver_pin_;      // per net
  std::vector<std::int32_t> num_input_pins_;  // per net
  // SoA mirrors of the hot Cell/Pin fields (see accessor block above).
  std::vector<double> cell_width_;
  std::vector<double> cell_height_;
  std::vector<double> cell_area_;
  std::vector<std::uint8_t> cell_fixed_;
  std::vector<std::int32_t> pin_cell_;
  std::vector<std::int32_t> pin_net_;
  std::vector<double> pin_dx_;
  std::vector<double> pin_dy_;
  std::int32_t num_movable_ = 0;
  double movable_area_ = 0.0;
  double avg_width_ = 0.0;
  double avg_height_ = 0.0;
  double max_width_ = 0.0;
  bool finalized_ = false;
};

}  // namespace p3d::netlist
