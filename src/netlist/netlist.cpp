#include "netlist/netlist.h"

#include <algorithm>
#include <cassert>

#include "util/log.h"

namespace p3d::netlist {

std::int32_t Netlist::AddCell(std::string name, double width, double height,
                              bool fixed) {
  assert(!finalized_);
  cells_.push_back(Cell{std::move(name), width, height, fixed});
  return static_cast<std::int32_t>(cells_.size()) - 1;
}

std::int32_t Netlist::AddNet(std::string name, double activity) {
  assert(!finalized_);
  Net net;
  net.name = std::move(name);
  net.activity = activity;
  net.first_pin = static_cast<std::int32_t>(pins_.size());
  net.num_pins = 0;
  nets_.push_back(std::move(net));
  return static_cast<std::int32_t>(nets_.size()) - 1;
}

std::int32_t Netlist::AddPin(std::int32_t cell, PinDir dir, double dx,
                             double dy) {
  assert(!finalized_);
  assert(!nets_.empty() && "AddPin requires a current net");
  Pin pin;
  pin.cell = cell;
  pin.net = static_cast<std::int32_t>(nets_.size()) - 1;
  pin.dir = dir;
  pin.dx = dx;
  pin.dy = dy;
  pins_.push_back(pin);
  nets_.back().num_pins += 1;
  return static_cast<std::int32_t>(pins_.size()) - 1;
}

bool Netlist::Finalize() {
  if (finalized_) return true;

  // Structural validation.
  for (const Pin& pin : pins_) {
    if (pin.cell < 0 || pin.cell >= NumCells()) {
      util::LogError("netlist: pin references invalid cell %d", pin.cell);
      return false;
    }
  }

  // Per-net driver and input-pin counts.
  driver_pin_.assign(nets_.size(), -1);
  num_input_pins_.assign(nets_.size(), 0);
  std::int32_t empty_nets = 0;
  for (std::size_t n = 0; n < nets_.size(); ++n) {
    const Net& net = nets_[n];
    if (net.num_pins == 0) ++empty_nets;
    for (std::int32_t p = net.first_pin; p < net.first_pin + net.num_pins; ++p) {
      const Pin& pin = pins_[static_cast<std::size_t>(p)];
      if (pin.dir == PinDir::kOutput) {
        if (driver_pin_[n] < 0) driver_pin_[n] = p;
      } else {
        num_input_pins_[n] += 1;
      }
    }
  }
  if (empty_nets > 0) {
    util::LogWarn("netlist: %d empty nets (tolerated, they contribute nothing)",
                  empty_nets);
  }

  // Cell -> pin CSR adjacency (counting sort).
  cell_pin_start_.assign(cells_.size() + 1, 0);
  for (const Pin& pin : pins_) {
    cell_pin_start_[static_cast<std::size_t>(pin.cell) + 1] += 1;
  }
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    cell_pin_start_[c + 1] += cell_pin_start_[c];
  }
  cell_pin_ids_.assign(pins_.size(), 0);
  std::vector<std::int32_t> cursor(cell_pin_start_.begin(),
                                   cell_pin_start_.end() - 1);
  for (std::int32_t p = 0; p < NumPins(); ++p) {
    const Pin& pin = pins_[static_cast<std::size_t>(p)];
    cell_pin_ids_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(pin.cell)]++)] = p;
  }

  // SoA hot-path mirrors: exact copies of the struct fields (area is the
  // same width * height product), so AoS and SoA reads are bit-identical.
  cell_width_.resize(cells_.size());
  cell_height_.resize(cells_.size());
  cell_area_.resize(cells_.size());
  cell_fixed_.resize(cells_.size());
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    cell_width_[c] = cells_[c].width;
    cell_height_[c] = cells_[c].height;
    cell_area_[c] = cells_[c].Area();
    cell_fixed_[c] = cells_[c].fixed ? 1 : 0;
  }
  pin_cell_.resize(pins_.size());
  pin_net_.resize(pins_.size());
  pin_dx_.resize(pins_.size());
  pin_dy_.resize(pins_.size());
  for (std::size_t p = 0; p < pins_.size(); ++p) {
    pin_cell_[p] = pins_[p].cell;
    pin_net_[p] = pins_[p].net;
    pin_dx_[p] = pins_[p].dx;
    pin_dy_[p] = pins_[p].dy;
  }

  // Aggregate stats over movable cells.
  num_movable_ = 0;
  movable_area_ = 0.0;
  max_width_ = 0.0;
  double wsum = 0.0, hsum = 0.0;
  for (const Cell& cell : cells_) {
    if (cell.fixed) continue;
    num_movable_ += 1;
    movable_area_ += cell.Area();
    wsum += cell.width;
    hsum += cell.height;
    max_width_ = std::max(max_width_, cell.width);
  }
  if (num_movable_ > 0) {
    avg_width_ = wsum / num_movable_;
    avg_height_ = hsum / num_movable_;
  }

  finalized_ = true;
  return true;
}

}  // namespace p3d::netlist
