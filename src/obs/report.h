// Machine-readable run report (report.json) — the flight recorder's third
// output alongside the Chrome trace and the metrics dump.
//
// A RunReport captures one placer invocation end to end: the input circuit,
// the parameters that shaped the run, the Eq. 3 objective trajectory sampled
// at every phase boundary (WL / α_ILV·ILV / α_TEMP·thermal separately, the
// series the paper's Figs. 3–10 are built from), per-phase wall-clock, the
// final quality-of-results block, and a full metrics snapshot. The schema is
// versioned (`kRunReportSchema` / `kRunReportVersion`); `ValidateRunReport`
// checks a parsed document against it and is shared by tests and the CI
// smoke job (scripts/check_report.py mirrors it for artifact validation).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace p3d::obs {

inline constexpr const char* kRunReportSchema = "placer3d.run_report";
// v2: metrics histograms carry deterministic p50/p95/p99 quantile estimates
// alongside count/sum/min/max (obs::HistogramQuantile). v1 documents (no
// quantile fields) still validate.
inline constexpr int kRunReportVersion = 2;

/// One phase-boundary sample of the Eq. 3 objective decomposition. All four
/// cost components are in metres of equivalent wirelength; `total` equals
/// wl + ilv_cost + thermal_cost up to the evaluator's incremental float
/// bookkeeping.
struct PhaseSample {
  std::string phase;            // "global", "coarse", "detailed", ...
  int round = -1;               // legalization-repeat index; -1 outside
  double wl_m = 0.0;            // Σ WL_i
  double ilv_cost_m = 0.0;      // α_ILV · Σ ILV_i
  double thermal_cost_m = 0.0;  // α_TEMP · Σ R_j · P_j
  double total_m = 0.0;         // Eq. 3 value
  long long ilv = 0;            // raw interlayer via count
  long long commits = 0;        // moves+swaps committed since the last sample
  double t_s = 0.0;             // seconds since flow start (steady clock)
};

struct RunReport {
  // Input identity.
  std::string circuit;
  long long cells = 0;
  long long nets = 0;
  long long pins = 0;

  // Parameters that shaped the run (name -> JSON scalar), in emit order.
  std::vector<std::pair<std::string, JsonValue>> params;

  // Objective trajectory, one sample per phase boundary.
  std::vector<PhaseSample> phases;

  // Final quality of results (name -> value), e.g. hpwl_m, ilv, power_w.
  std::vector<std::pair<std::string, JsonValue>> qor;

  // Phase timings in seconds (name -> value), e.g. global/coarse/detailed.
  std::vector<std::pair<std::string, double>> timings;

  // Optional metrics snapshot; not owned.
  const MetricsRegistry* metrics = nullptr;

  JsonValue ToJson() const;
  /// Pretty-printed ToJson to `path`; false on I/O error.
  bool Write(const std::string& path) const;
};

/// Schema check of a parsed report.json. On failure returns false and, when
/// `error` is non-null, a one-line description of the first violation.
bool ValidateRunReport(const JsonValue& doc, std::string* error = nullptr);

/// Schema check of a parsed Chrome trace-event document: a "traceEvents"
/// array whose entries carry name/ph/pid/tid, with ts+dur on "X" spans.
bool ValidateChromeTrace(const JsonValue& doc, std::string* error = nullptr);

}  // namespace p3d::obs
