// MetricsRegistry — named counters, gauges, histograms, and series for the
// flight recorder (DESIGN.md "Observability").
//
// The registry is the metrics half of `src/obs`: subsystems record through
// the inline `MetricAdd`/`MetricObserve`/... helpers below, which are no-ops
// (one relaxed atomic load) unless a registry is installed. The placer core
// itself stays observer-clean: objective-trajectory sampling rides on the
// PhaseObserver/CommitListener hooks (see place/instrument.h), while
// subsystem statistics (FM passes, CG iterations, legalizer stats) are
// recorded at the call sites that already aggregate them.
//
// Determinism contract (mirrors the runtime policy of DESIGN.md §5): with a
// deterministic flow, every metric value is identical for any thread count.
// The rules that guarantee it:
//   * counters and histograms take integer values and are *commutative* —
//     they may be recorded from parallel workers in any order;
//   * gauges, accumulators (double), and series are order-sensitive and must
//     only be recorded from serial contexts (phase boundaries, post-pass
//     aggregation on the dispatching thread);
//   * wall-clock values never enter the registry — timings live in the trace
//     and the run report's `timings` section only.
// `DumpDeterministic()` serializes the registry sorted by name and is what
// tests/test_obs compares across thread counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace p3d::obs {

class MetricsRegistry {
 public:
  /// Power-of-two-bucket histogram of non-negative integer samples.
  struct Histogram {
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
    // buckets[i] counts samples in [2^(i-1), 2^i); buckets[0] counts 0.
    std::vector<std::int64_t> buckets;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- recording (see determinism rules in the file comment) --------------
  /// Adds `delta` to counter `name`. Thread-safe, commutative.
  void Add(const std::string& name, std::int64_t delta);
  /// Records one histogram sample (negative values clamp to 0). Thread-safe.
  void Observe(const std::string& name, std::int64_t value);
  /// Sets gauge `name` (last write wins). Serial contexts only.
  void Set(const std::string& name, double value);
  /// Adds `delta` to double accumulator `name`. Serial contexts only.
  void Accumulate(const std::string& name, double delta);
  /// Appends one sample to series `name`. Serial contexts only.
  void Append(const std::string& name, double value);

  // --- reading -------------------------------------------------------------
  std::int64_t Counter(const std::string& name) const;
  double Gauge(const std::string& name) const;
  const std::vector<double>* Series(const std::string& name) const;
  const Histogram* Hist(const std::string& name) const;

  /// Visits every counter, then every gauge and accumulator, then every
  /// histogram — name-sorted, under one lock, so renderers (Prometheus
  /// exposition, dumps) see a consistent snapshot. Callbacks must not
  /// reenter the registry. Null callbacks skip their section.
  void ForEach(
      const std::function<void(const std::string&, std::int64_t)>& counter,
      const std::function<void(const std::string&, double)>& gauge,
      const std::function<void(const std::string&, const Histogram&)>& hist)
      const;

  /// Sorted, text-serialized snapshot of every deterministic value. Two runs
  /// of the same flow at different thread counts must produce equal dumps.
  std::string DumpDeterministic() const;

  /// Full JSON snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}, "series": {...}}.
  JsonValue ToJson() const;

  void Clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, double> accumulators_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::vector<double>> series_;
};

/// Deterministic quantile estimate (q in [0, 1]) from a pow2 histogram:
/// finds the bucket holding the q-th rank and linearly interpolates inside
/// its value range, clamped to the observed [min, max]. A pure function of
/// the (thread-count-invariant) buckets, so p50/p95/p99 lines are safe in
/// DumpDeterministic.
double HistogramQuantile(const MetricsRegistry::Histogram& h, double q);

/// Prometheus text exposition (format 0.0.4) of the registry: counters map
/// to counter families, gauges and accumulators to gauge families, pow2
/// histograms to summaries with p50/p95/p99 quantiles plus _sum/_count.
/// Series are omitted (unbounded). Names are sanitized to [a-zA-Z0-9_] and
/// prefixed "placer3d_" ("cg/iters" -> "placer3d_cg_iters"). This is what
/// the telemetry server's /metrics endpoint returns.
std::string RenderPrometheus(const MetricsRegistry& registry);

/// Installs `registry` as the process-wide metrics destination (nullptr
/// disables recording). Returns the previous registry. Like the trace sink:
/// swap between parallel regions, not during one.
MetricsRegistry* InstallMetrics(MetricsRegistry* registry);

/// The calling thread's metrics destination: its thread-local override when
/// a ScopedThreadMetrics is active, the process-wide registry otherwise.
MetricsRegistry* CurrentMetrics();

/// RAII thread-local metrics override. A scheduler running several jobs
/// concurrently gives each worker its own registry so jobs' metrics never
/// interleave; the process-wide registry stays untouched for other threads.
/// The override does not propagate into ThreadPool workers — complete
/// per-job capture therefore requires the job to run with an inner thread
/// budget of 1, which is the serve engine's concurrent default (DESIGN.md
/// §5/§9). Passing nullptr silences recording on this thread.
class ScopedThreadMetrics {
 public:
  explicit ScopedThreadMetrics(MetricsRegistry* registry);
  ~ScopedThreadMetrics();

  ScopedThreadMetrics(const ScopedThreadMetrics&) = delete;
  ScopedThreadMetrics& operator=(const ScopedThreadMetrics&) = delete;

 private:
  MetricsRegistry* previous_;
  bool previous_active_;
};

#if defined(P3D_OBS_DISABLED)
inline void MetricAdd(const char*, std::int64_t) {}
inline void MetricObserve(const char*, std::int64_t) {}
inline void MetricSet(const char*, double) {}
inline void MetricAccumulate(const char*, double) {}
inline void MetricAppend(const char*, double) {}
#else
inline void MetricAdd(const char* name, std::int64_t delta) {
  if (MetricsRegistry* m = CurrentMetrics()) m->Add(name, delta);
}
inline void MetricObserve(const char* name, std::int64_t value) {
  if (MetricsRegistry* m = CurrentMetrics()) m->Observe(name, value);
}
inline void MetricSet(const char* name, double value) {
  if (MetricsRegistry* m = CurrentMetrics()) m->Set(name, value);
}
inline void MetricAccumulate(const char* name, double delta) {
  if (MetricsRegistry* m = CurrentMetrics()) m->Accumulate(name, delta);
}
inline void MetricAppend(const char* name, double value) {
  if (MetricsRegistry* m = CurrentMetrics()) m->Append(name, value);
}
#endif  // P3D_OBS_DISABLED

}  // namespace p3d::obs
