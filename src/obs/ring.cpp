#include "obs/ring.h"

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstring>

namespace p3d::obs {
namespace {

std::atomic<RingRecorder*> g_ring{nullptr};
std::atomic<std::uint64_t> g_next_ring_id{1};

// Per-thread cache of the ring registered with the current recorder. The id
// check makes a stale cache impossible to hit: ids are never reused.
struct ThreadCache {
  std::uint64_t ring_id = 0;
  void* ring = nullptr;
};
thread_local ThreadCache t_cache;

// Black-box dump destination. Written by SetBlackBoxPath (startup, serial),
// read by the (possibly signal-context) dump path: the length store/load
// pair orders the bytes.
char g_path[4000] = {0};
std::atomic<std::size_t> g_path_len{0};
std::atomic<std::int64_t> g_dumps{0};
std::atomic<bool> g_crash_handler_installed{false};

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 64;
  while (p < v) p <<= 1;
  return p;
}

// ----- async-signal-safe formatting ----------------------------------------
// A tiny append-only writer over a caller-owned buffer that flushes through
// write(2). No allocation, no stdio, no locale — usable from a handler.

struct FdWriter {
  int fd;
  char buf[1024];
  std::size_t len = 0;
  bool ok = true;

  void Flush() {
    std::size_t off = 0;
    while (ok && off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n < 0) {
        ok = false;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
  void Char(char c) {
    if (len == sizeof buf) Flush();
    buf[len++] = c;
  }
  void Raw(const char* s) {
    for (; *s != '\0'; ++s) Char(*s);
  }
  /// Quoted JSON string; non-printable / quote / backslash become '_'
  /// (names are our own literals, so nothing of value is lost).
  void Str(const char* s) {
    Char('"');
    for (; s != nullptr && *s != '\0'; ++s) {
      const char c = *s;
      Char(c >= 0x20 && c != '"' && c != '\\' && c != 0x7f ? c : '_');
    }
    Char('"');
  }
  void U64(std::uint64_t v) {
    char tmp[20];
    int n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) Char(tmp[--n]);
  }
  void I64(std::int64_t v) {
    if (v < 0) {
      Char('-');
      U64(static_cast<std::uint64_t>(-(v + 1)) + 1);
    } else {
      U64(static_cast<std::uint64_t>(v));
    }
  }
  /// Nanoseconds as fractional microseconds ("123.456") — trace-event `ts`
  /// units with full resolution, integer math only.
  void NsAsUs(std::uint64_t ns) {
    U64(ns / 1000);
    Char('.');
    const std::uint64_t frac = ns % 1000;
    Char(static_cast<char>('0' + frac / 100));
    Char(static_cast<char>('0' + frac / 10 % 10));
    Char(static_cast<char>('0' + frac % 10));
  }
};

void CrashHandler(int sig) {
  DumpBlackBox("fatal_signal");
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

RingRecorder* InstallRingRecorder(RingRecorder* recorder) {
  return g_ring.exchange(recorder, std::memory_order_acq_rel);
}

RingRecorder* CurrentRingRecorder() {
  return g_ring.load(std::memory_order_acquire);
}

RingRecorder::RingRecorder(const Options& options)
    : id_(g_next_ring_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(RoundUpPow2(options.capacity_per_thread)),
      epoch_(std::chrono::steady_clock::now()) {}

RingRecorder::~RingRecorder() {
  // Never leave a dangling global: uninstall if still installed.
  RingRecorder* expected = this;
  g_ring.compare_exchange_strong(expected, nullptr,
                                 std::memory_order_acq_rel);
  Ring* ring = rings_.load(std::memory_order_acquire);
  while (ring != nullptr) {
    Ring* next = ring->next;
    delete ring;
    ring = next;
  }
}

RingRecorder::Ring* RingRecorder::ThreadRing() {
  if (t_cache.ring_id == id_) {
    return static_cast<Ring*>(t_cache.ring);
  }
  Ring* ring = new Ring(capacity_);
  ring->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  // Lock-free push onto the list; publication (release) makes the ring's
  // immutable fields visible to dumpers.
  Ring* head = rings_.load(std::memory_order_relaxed);
  do {
    ring->next = head;
  } while (!rings_.compare_exchange_weak(head, ring,
                                         std::memory_order_release,
                                         std::memory_order_relaxed));
  t_cache.ring_id = id_;
  t_cache.ring = ring;
  return ring;
}

std::size_t RingRecorder::NumThreads() const {
  std::size_t n = 0;
  for (Ring* r = rings_.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    ++n;
  }
  return n;
}

std::size_t RingRecorder::NumEvents() const {
  std::size_t n = 0;
  for (Ring* r = rings_.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    n += static_cast<std::size_t>(head < capacity_ ? head : capacity_);
  }
  return n;
}

std::vector<RingRecorder::EventView> RingRecorder::Snapshot() const {
  std::vector<EventView> out;
  for (Ring* r = rings_.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    const std::uint64_t start = head > capacity_ ? head - capacity_ : 0;
    for (std::uint64_t seq = start; seq < head; ++seq) {
      const Slot& slot = r->slots[seq & (capacity_ - 1)];
      EventView v;
      v.name = slot.name.load(std::memory_order_relaxed);
      if (v.name == nullptr) continue;  // raced a writer mid-first-store
      v.kind = static_cast<Kind>(slot.kind.load(std::memory_order_relaxed));
      v.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
      v.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
      v.value = slot.value.load(std::memory_order_relaxed);
      v.seq = seq;
      v.tid = r->tid;
      out.push_back(v);
    }
  }
  return out;
}

bool RingRecorder::DumpToFd(int fd, const char* reason) const {
  FdWriter w{fd};
  w.Raw("{\"traceEvents\":[\n");
  w.Raw("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"placer3d-blackbox\"}}");
  for (Ring* r = rings_.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    const std::uint64_t start = head > capacity_ ? head - capacity_ : 0;
    for (std::uint64_t seq = start; seq < head; ++seq) {
      const Slot& slot = r->slots[seq & (capacity_ - 1)];
      const char* name = slot.name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;
      const auto kind =
          static_cast<Kind>(slot.kind.load(std::memory_order_relaxed));
      const std::uint64_t ts = slot.ts_ns.load(std::memory_order_relaxed);
      const std::uint64_t dur = slot.dur_ns.load(std::memory_order_relaxed);
      const std::int64_t value = slot.value.load(std::memory_order_relaxed);
      w.Raw(",\n{\"name\":");
      w.Str(name);
      w.Raw(",\"pid\":1,\"tid\":");
      w.U64(static_cast<std::uint64_t>(r->tid));
      w.Raw(",\"seq\":");
      w.U64(seq);
      w.Raw(",\"ts\":");
      switch (kind) {
        case Kind::kSpan:
          // Slots store the end time; trace ts is the start.
          w.NsAsUs(ts >= dur ? ts - dur : 0);
          w.Raw(",\"ph\":\"X\",\"dur\":");
          w.NsAsUs(dur);
          break;
        case Kind::kCounter:
          w.NsAsUs(ts);
          w.Raw(",\"ph\":\"C\",\"args\":{\"value\":");
          w.I64(value);
          w.Char('}');
          break;
        case Kind::kInstant:
          w.NsAsUs(ts);
          w.Raw(",\"ph\":\"i\",\"s\":\"t\",\"args\":{\"value\":");
          w.I64(value);
          w.Char('}');
          break;
      }
      w.Char('}');
    }
  }
  // The dump itself is the last event: a zero-length span stamped "now"
  // carrying the trigger, so every snapshot is a valid Chrome trace (the
  // validators require at least one "X" span) and the reason is visible in
  // Perfetto without a side channel.
  w.Raw(",\n{\"name\":\"blackbox.dump\",\"ph\":\"X\",\"pid\":1,\"tid\":0,"
        "\"ts\":");
  w.NsAsUs(NowNs());
  w.Raw(",\"dur\":0.001,\"args\":{\"reason\":");
  w.Str(reason != nullptr ? reason : "unspecified");
  w.Raw("}}\n],\"displayTimeUnit\":\"ms\"}\n");
  w.Flush();
  return w.ok;
}

bool RingRecorder::DumpToFile(const char* path, const char* reason) const {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = DumpToFd(fd, reason);
  return ::close(fd) == 0 && ok;
}

bool SetBlackBoxPath(const std::string& path) {
  if (path.size() >= sizeof g_path) return false;
  // Order matters for the (lock-free) readers: invalidate, copy, publish.
  g_path_len.store(0, std::memory_order_release);
  std::memcpy(g_path, path.data(), path.size());
  g_path[path.size()] = '\0';
  g_path_len.store(path.size(), std::memory_order_release);
  return true;
}

const char* BlackBoxPath() {
  return g_path_len.load(std::memory_order_acquire) > 0 ? g_path : "";
}

bool DumpBlackBox(const char* reason) {
  RingRecorder* recorder = CurrentRingRecorder();
  if (recorder == nullptr) return false;
  if (g_path_len.load(std::memory_order_acquire) == 0) return false;
  const bool ok = recorder->DumpToFile(g_path, reason);
  if (ok) g_dumps.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

std::int64_t BlackBoxDumps() {
  return g_dumps.load(std::memory_order_relaxed);
}

void InstallCrashHandler() {
  if (g_crash_handler_installed.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof action);
  action.sa_handler = &CrashHandler;
  sigemptyset(&action.sa_mask);
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    sigaction(sig, &action, nullptr);
  }
}

}  // namespace p3d::obs
