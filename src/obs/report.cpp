#include "obs/report.h"

#include <cstdio>

namespace p3d::obs {
namespace {

bool FailAt(std::string* error, const std::string& message) {
  if (error != nullptr && error->empty()) *error = message;
  return false;
}

bool RequireMember(const JsonValue& obj, const char* key,
                   JsonValue::Kind kind, std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return FailAt(error, std::string("missing member: ") + key);
  if (v->kind() != kind) {
    return FailAt(error, std::string("wrong type for member: ") + key);
  }
  return true;
}

}  // namespace

JsonValue RunReport::ToJson() const {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("schema", kRunReportSchema);
  doc.Set("version", kRunReportVersion);

  JsonValue run = JsonValue::MakeObject();
  run.Set("circuit", circuit);
  run.Set("cells", cells);
  run.Set("nets", nets);
  run.Set("pins", pins);
  doc.Set("run", std::move(run));

  JsonValue pj = JsonValue::MakeObject();
  for (const auto& [name, value] : params) pj.Set(name, value);
  doc.Set("params", std::move(pj));

  JsonValue phases_json = JsonValue::MakeArray();
  for (const PhaseSample& s : phases) {
    JsonValue ph = JsonValue::MakeObject();
    ph.Set("phase", s.phase);
    ph.Set("round", s.round);
    ph.Set("wl_m", s.wl_m);
    ph.Set("ilv_cost_m", s.ilv_cost_m);
    ph.Set("thermal_cost_m", s.thermal_cost_m);
    ph.Set("total_m", s.total_m);
    ph.Set("ilv", s.ilv);
    ph.Set("commits", s.commits);
    ph.Set("t_s", s.t_s);
    phases_json.Push(std::move(ph));
  }
  doc.Set("phases", std::move(phases_json));

  JsonValue qj = JsonValue::MakeObject();
  for (const auto& [name, value] : qor) qj.Set(name, value);
  doc.Set("qor", std::move(qj));

  JsonValue tj = JsonValue::MakeObject();
  for (const auto& [name, value] : timings) tj.Set(name, JsonValue(value));
  doc.Set("timings", std::move(tj));

  doc.Set("metrics", metrics != nullptr ? metrics->ToJson()
                                        : JsonValue::MakeObject());
  return doc;
}

bool RunReport::Write(const std::string& path) const {
  const std::string text = ToJson().SerializePretty();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  if (written != text.size()) {
    std::fclose(f);
    return false;
  }
  return std::fclose(f) == 0;
}

bool ValidateRunReport(const JsonValue& doc, std::string* error) {
  if (!doc.is_object()) return FailAt(error, "report is not an object");
  if (!RequireMember(doc, "schema", JsonValue::Kind::kString, error) ||
      !RequireMember(doc, "version", JsonValue::Kind::kNumber, error) ||
      !RequireMember(doc, "run", JsonValue::Kind::kObject, error) ||
      !RequireMember(doc, "params", JsonValue::Kind::kObject, error) ||
      !RequireMember(doc, "phases", JsonValue::Kind::kArray, error) ||
      !RequireMember(doc, "qor", JsonValue::Kind::kObject, error) ||
      !RequireMember(doc, "timings", JsonValue::Kind::kObject, error) ||
      !RequireMember(doc, "metrics", JsonValue::Kind::kObject, error)) {
    return false;
  }
  if (doc.Find("schema")->AsString() != kRunReportSchema) {
    return FailAt(error, "unexpected schema id");
  }
  const int version = static_cast<int>(doc.Find("version")->AsNumber());
  if (version < 1 || version > kRunReportVersion) {
    return FailAt(error, "unexpected schema version");
  }
  const JsonValue& run = *doc.Find("run");
  if (!RequireMember(run, "circuit", JsonValue::Kind::kString, error) ||
      !RequireMember(run, "cells", JsonValue::Kind::kNumber, error) ||
      !RequireMember(run, "nets", JsonValue::Kind::kNumber, error) ||
      !RequireMember(run, "pins", JsonValue::Kind::kNumber, error)) {
    return false;
  }
  for (const JsonValue& ph : doc.Find("phases")->AsArray()) {
    if (!ph.is_object()) return FailAt(error, "phase entry is not an object");
    for (const char* key : {"round", "wl_m", "ilv_cost_m", "thermal_cost_m",
                            "total_m", "ilv", "commits", "t_s"}) {
      if (!RequireMember(ph, key, JsonValue::Kind::kNumber, error)) {
        return false;
      }
    }
    if (!RequireMember(ph, "phase", JsonValue::Kind::kString, error)) {
      return false;
    }
  }
  const JsonValue& metrics = *doc.Find("metrics");
  if (!metrics.AsObject().empty()) {
    for (const char* key : {"counters", "gauges", "histograms", "series"}) {
      if (!RequireMember(metrics, key, JsonValue::Kind::kObject, error)) {
        return false;
      }
    }
    if (version >= 2) {
      // v2: every histogram snapshot carries the quantile summary.
      for (const auto& [name, hist] : metrics.Find("histograms")->AsObject()) {
        if (!hist.is_object()) {
          return FailAt(error, "histogram " + name + " is not an object");
        }
        for (const char* key : {"count", "sum", "min", "max", "p50", "p95",
                                "p99"}) {
          if (!RequireMember(hist, key, JsonValue::Kind::kNumber, error)) {
            return FailAt(error,
                          "histogram " + name + " missing v2 field " + key);
          }
        }
      }
    }
  }
  return true;
}

bool ValidateChromeTrace(const JsonValue& doc, std::string* error) {
  if (!doc.is_object()) return FailAt(error, "trace is not an object");
  if (!RequireMember(doc, "traceEvents", JsonValue::Kind::kArray, error)) {
    return false;
  }
  for (const JsonValue& ev : doc.Find("traceEvents")->AsArray()) {
    if (!ev.is_object()) return FailAt(error, "event is not an object");
    if (!RequireMember(ev, "name", JsonValue::Kind::kString, error) ||
        !RequireMember(ev, "ph", JsonValue::Kind::kString, error) ||
        !RequireMember(ev, "pid", JsonValue::Kind::kNumber, error) ||
        !RequireMember(ev, "tid", JsonValue::Kind::kNumber, error)) {
      return false;
    }
    const std::string& ph = ev.Find("ph")->AsString();
    if (ph == "X") {
      if (!RequireMember(ev, "ts", JsonValue::Kind::kNumber, error) ||
          !RequireMember(ev, "dur", JsonValue::Kind::kNumber, error)) {
        return false;
      }
      if (ev.Find("dur")->AsNumber() < 0.0) {
        return FailAt(error, "negative span duration");
      }
    } else if (ph == "C") {
      if (!RequireMember(ev, "ts", JsonValue::Kind::kNumber, error) ||
          !RequireMember(ev, "args", JsonValue::Kind::kObject, error)) {
        return false;
      }
    } else if (ph != "M" && ph != "i") {
      return FailAt(error, "unknown event phase: " + ph);
    }
  }
  return true;
}

}  // namespace p3d::obs
