#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"

namespace p3d::obs {
namespace {

std::atomic<TraceSink*> g_sink{nullptr};
std::atomic<std::uint64_t> g_next_sink_id{1};

// Per-thread cache of the buffer registered with the current sink. The id
// check makes a stale cache (sink destroyed, a new one possibly allocated at
// the same address) impossible to hit: ids are never reused.
struct ThreadCache {
  std::uint64_t sink_id = 0;
  void* buffer = nullptr;
};
thread_local ThreadCache t_cache;

}  // namespace

TraceSink* InstallTraceSink(TraceSink* sink) {
  return g_sink.exchange(sink, std::memory_order_acq_rel);
}

TraceSink* CurrentTraceSink() {
  return g_sink.load(std::memory_order_acquire);
}

TraceSink::TraceSink()
    : id_(g_next_sink_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceSink::~TraceSink() {
  // Never leave a dangling global: uninstall if still installed.
  TraceSink* expected = this;
  g_sink.compare_exchange_strong(expected, nullptr,
                                 std::memory_order_acq_rel);
}

TraceSink::Buffer* TraceSink::ThreadBuffer() {
  if (t_cache.sink_id == id_) {
    return static_cast<Buffer*>(t_cache.buffer);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<Buffer>());
  Buffer* buf = buffers_.back().get();
  buf->tid = static_cast<int>(buffers_.size() - 1);
  buf->events.reserve(256);
  t_cache.sink_id = id_;
  t_cache.buffer = buf;
  return buf;
}

void TraceSink::RecordSpan(const char* name, std::uint64_t start_ns,
                           std::uint64_t dur_ns) {
  ThreadBuffer()->events.push_back(
      Event{name, start_ns, dur_ns, 0, Kind::kSpan});
}

void TraceSink::RecordCounter(const char* name, std::int64_t value) {
  ThreadBuffer()->events.push_back(
      Event{name, NowNs(), 0, value, Kind::kCounter});
}

void TraceSink::RecordInstant(const char* name) {
  ThreadBuffer()->events.push_back(Event{name, NowNs(), 0, 0, Kind::kInstant});
}

std::size_t TraceSink::NumEvents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) n += buf->events.size();
  return n;
}

std::string TraceSink::SerializeChromeJson() const {
  // Chrome trace format: https://docs.google.com/document/d/1CvAClvFfyA5R-
  // PhYUmn5OOQtYMH4h6I0nSsKchNAySU — the subset Perfetto's JSON importer
  // reads: "X" (complete) spans with ts/dur, "C" counters, "i" instants,
  // and "M" metadata naming the process and per-thread tracks.
  JsonValue events = JsonValue::MakeArray();

  {
    JsonValue meta = JsonValue::MakeObject();
    meta.Set("name", "process_name");
    meta.Set("ph", "M");
    meta.Set("pid", 1);
    meta.Set("tid", 0);
    JsonValue args = JsonValue::MakeObject();
    args.Set("name", "placer3d");
    meta.Set("args", std::move(args));
    events.Push(std::move(meta));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buf : buffers_) {
    JsonValue meta = JsonValue::MakeObject();
    meta.Set("name", "thread_name");
    meta.Set("ph", "M");
    meta.Set("pid", 1);
    meta.Set("tid", buf->tid);
    JsonValue args = JsonValue::MakeObject();
    args.Set("name", buf->tid == 0 ? std::string("main")
                                   : "worker-" + std::to_string(buf->tid));
    meta.Set("args", std::move(args));
    events.Push(std::move(meta));
  }
  for (const auto& buf : buffers_) {
    // Span events of one thread must be emitted in start order so nested
    // scopes render as a proper stack. A scope's destructor runs after its
    // children's, so buffers hold children first; sort by (ts, -dur).
    std::vector<const Event*> order;
    order.reserve(buf->events.size());
    for (const Event& e : buf->events) order.push_back(&e);
    std::stable_sort(order.begin(), order.end(),
                     [](const Event* a, const Event* b) {
                       if (a->ts_ns != b->ts_ns) return a->ts_ns < b->ts_ns;
                       return a->dur_ns > b->dur_ns;
                     });
    for (const Event* e : order) {
      JsonValue ev = JsonValue::MakeObject();
      ev.Set("name", e->name);
      ev.Set("pid", 1);
      ev.Set("tid", buf->tid);
      // Trace-event timestamps are microseconds; fractional values keep the
      // nanosecond resolution.
      ev.Set("ts", static_cast<double>(e->ts_ns) / 1e3);
      switch (e->kind) {
        case Kind::kSpan:
          ev.Set("ph", "X");
          ev.Set("dur", static_cast<double>(e->dur_ns) / 1e3);
          break;
        case Kind::kCounter: {
          ev.Set("ph", "C");
          JsonValue args = JsonValue::MakeObject();
          args.Set("value", static_cast<long long>(e->value));
          ev.Set("args", std::move(args));
          break;
        }
        case Kind::kInstant:
          ev.Set("ph", "i");
          ev.Set("s", "t");
          break;
      }
      events.Push(std::move(ev));
    }
  }

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  return doc.Serialize();
}

bool TraceSink::WriteChromeJson(const std::string& path) const {
  const std::string text = SerializeChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = written == text.size() && std::fclose(f) == 0;
  if (written != text.size()) std::fclose(f);
  return ok;
}

}  // namespace p3d::obs
