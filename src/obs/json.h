// Minimal JSON value model, writer, and parser for the observability layer.
//
// This is deliberately not a general-purpose JSON library: it exists so that
// trace files, metric dumps, run reports, and BENCH_*.json outputs are
// produced (and round-trip parsed in tests) without an external dependency.
// Objects preserve insertion order, so serialized output is deterministic
// for a deterministic build sequence. Numbers are stored as double with
// shortest-round-trip formatting ("%.17g" fallback), which is lossless for
// every value we emit (timings, counters up to 2^53, QoR metrics).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace p3d::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}                // NOLINT
  JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}             // NOLINT
  JsonValue(int v) : kind_(Kind::kNumber), num_(v) {}                // NOLINT
  JsonValue(long long v)                                             // NOLINT
      : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  JsonValue(std::int64_t v)                                          // NOLINT
      : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  JsonValue(std::uint64_t v)                                         // NOLINT
      : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}        // NOLINT
  JsonValue(std::string s)                                           // NOLINT
      : kind_(Kind::kString), str_(std::move(s)) {}

  static JsonValue MakeArray() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue MakeObject() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return num_; }
  const std::string& AsString() const { return str_; }
  const Array& AsArray() const { return array_; }
  Array& AsArray() { return array_; }
  const Object& AsObject() const { return object_; }
  Object& AsObject() { return object_; }

  /// Appends to an array value (must be kArray).
  void Push(JsonValue v) { array_.push_back(std::move(v)); }
  /// Appends a member to an object value (must be kObject). Duplicate keys
  /// are not checked; emit each key once.
  void Set(std::string key, JsonValue v) {
    object_.emplace_back(std::move(key), std::move(v));
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    if (kind_ != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Compact single-line serialization (RFC 8259 escaping).
  std::string Serialize() const;
  /// Pretty serialization with two-space indentation (used for report.json
  /// so humans can diff it).
  std::string SerializePretty() const;

 private:
  void SerializeTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array array_;
  Object object_;
};

/// Parses a complete JSON document. Returns false (and fills `error` with a
/// byte offset + message, when non-null) on malformed input or trailing
/// garbage. Accepts the full JSON grammar our writer emits plus standard
/// escapes and scientific-notation numbers.
bool ParseJson(const std::string& text, JsonValue* out,
               std::string* error = nullptr);

}  // namespace p3d::obs
